// Experiment Fig. 1: regenerates the paper's overview table in every
// supported output format, and checks the structural counts the paper
// states (51 combinations, 44 descriptions).

#include <cstdio>
#include <iostream>

#include "data/dataset.hpp"
#include "render/render.hpp"

int main() {
  const mcmm::CompatibilityMatrix& m = mcmm::data::paper_matrix();

  std::cout << "=== Figure 1 — GPU programming model vs. vendor "
               "compatibility (reproduction) ===\n\n";
  std::cout << mcmm::render::figure1_text(m) << "\n";

  std::cout << "=== Markdown form ===\n\n"
            << mcmm::render::figure1_markdown(m) << "\n";

  std::cout << "=== LaTeX form ===\n\n"
            << mcmm::render::figure1_latex(m) << "\n";

  std::cout << "=== CSV form ===\n\n" << mcmm::render::matrix_csv(m) << "\n";

  const std::size_t html_bytes = mcmm::render::figure1_html(m).size();
  std::cout << "HTML form: " << html_bytes
            << " bytes (write with examples/quickstart or the library "
               "API)\n\n";

  std::cout << "Structural check: " << m.entry_count() << "/"
            << mcmm::kCombinationCount << " cells, " << m.description_count()
            << "/" << mcmm::kDescriptionCount << " descriptions, "
            << m.total_route_count() << " concrete routes recorded\n";
  const bool ok =
      m.entry_count() == mcmm::kCombinationCount &&
      m.description_count() == mcmm::kDescriptionCount &&
      m.total_route_count() > 50;
  std::cout << (ok ? "PASS" : "FAIL")
            << ": counts match the paper's abstract and Sec. 3\n";
  return ok ? 0 : 1;
}
