// Experiment Ext-T4: translator fidelity over a representative kernel
// corpus — how much of a CUDA/OpenACC codebase converts automatically
// through the HIPIFY / SYCLomatic / acc2omp routes, reproducing the
// paper's qualitative ranking (HIP near-1:1, SYCL style-changing, ACC->OMP
// directive-mappable).

#include <iomanip>
#include <iostream>
#include <vector>

#include "translate/translate.hpp"

namespace {

struct CorpusEntry {
  const char* name;
  const char* source;
};

const std::vector<CorpusEntry>& cuda_corpus() {
  static const std::vector<CorpusEntry> corpus = {
      {"memory management",
       "cudaMalloc(&p, n); cudaMemcpy(d, h, n, cudaMemcpyHostToDevice); "
       "cudaMemset(d, 0, n); cudaFree(p);"},
      {"streams and events",
       "cudaStream_t s; cudaStreamCreate(&s); cudaEvent_t e; "
       "cudaEventCreate(&e); cudaEventRecord(e, s); "
       "cudaStreamSynchronize(s); cudaStreamDestroy(s);"},
      {"saxpy launch",
       "cudax::cudaLaunch(grid, block, saxpy, a, x, y, n); "
       "cudaDeviceSynchronize();"},
      {"blas calls",
       "cublasCreate(&h); cublasSaxpy(h, n, &a, x, 1, y, 1); "
       "cublasDestroy(h);"},
      {"warp shuffle reduction",
       "for (int o = 16; o > 0; o /= 2) v += __shfl_down_sync(m, v, o); "
       "__syncwarp();"},
      {"managed memory", "cudaMallocManaged(&p, n);"},
      {"cooperative groups",
       "cooperative_groups::this_grid().sync();"},
      {"atomic accumulate", "atomicAdd(&sum, partial);"},
  };
  return corpus;
}

const std::vector<CorpusEntry>& acc_corpus() {
  static const std::vector<CorpusEntry> corpus = {
      {"parallel loop", "#pragma acc parallel loop\nfor (...) {}"},
      {"data region",
       "#pragma acc data copyin(a[0:n]) copyout(c[0:n])\n{ }"},
      {"reduction",
       "#pragma acc parallel loop reduction(+:sum)\nfor (...) {}"},
      {"update", "#pragma acc update self(x[0:n])\n"},
      {"gang/vector clauses",
       "#pragma acc parallel loop num_gangs(64) vector_length(128)\n"},
      {"async", "#pragma acc parallel loop async(2)\n"},
      {"runtime api", "int t = acc_get_device_type();"},
      {"cache directive", "#pragma acc cache(a[0:64])\n"},
  };
  return corpus;
}

struct ToolRow {
  const char* tool;
  std::size_t clean;
  std::size_t total;
  double rule_coverage;
};

}  // namespace

int main() {
  using namespace mcmm::translate;
  std::cout << "=== Ext-T4: translator coverage over kernel corpus ===\n\n";

  std::vector<ToolRow> rows;

  {
    std::size_t clean = 0;
    for (const CorpusEntry& e : cuda_corpus()) {
      const TranslationResult r = hipify(e.source);
      std::cout << std::left << std::setw(12) << "hipify" << std::setw(26)
                << e.name << (r.clean() ? "clean" : "needs manual work")
                << "\n";
      if (r.clean()) ++clean;
    }
    rows.push_back(
        {"hipify", clean, cuda_corpus().size(), hipify_coverage().ratio()});
  }
  {
    std::size_t clean = 0;
    for (const CorpusEntry& e : cuda_corpus()) {
      const TranslationResult r = cuda2sycl(e.source);
      std::cout << std::left << std::setw(12) << "cuda2sycl" << std::setw(26)
                << e.name << (r.clean() ? "clean" : "needs manual work")
                << "\n";
      if (r.clean()) ++clean;
    }
    rows.push_back({"cuda2sycl", clean, cuda_corpus().size(),
                    cuda2sycl_coverage().ratio()});
  }
  {
    std::size_t clean = 0;
    for (const CorpusEntry& e : acc_corpus()) {
      const TranslationResult r = acc2omp(e.source);
      std::cout << std::left << std::setw(12) << "acc2omp" << std::setw(26)
                << e.name << (r.clean() ? "clean" : "needs manual work")
                << "\n";
      if (r.clean()) ++clean;
    }
    rows.push_back({"acc2omp", clean, acc_corpus().size(),
                    acc2omp_coverage().ratio()});
  }

  std::cout << "\ntool        clean/total   rule-coverage\n";
  std::cout << std::fixed << std::setprecision(2);
  for (const ToolRow& r : rows) {
    std::cout << std::left << std::setw(12) << r.tool << r.clean << "/"
              << r.total << "           " << r.rule_coverage << "\n";
  }

  // Shape check: hipify converts strictly more of the corpus than
  // cuda2sycl (HIP is CUDA-shaped; SYCL is a different model).
  const bool ok = rows[0].clean > rows[1].clean &&
                  rows[0].rule_coverage > rows[1].rule_coverage;
  std::cout << "\n" << (ok ? "PASS" : "FAIL")
            << ": hipify coverage exceeds cuda2sycl coverage\n";
  return ok ? 0 : 1;
}
