// google-benchmark microbenchmarks of the substrate itself: wall-clock
// cost of the simulator's primitives (allocator, launch machinery, queue
// ops, translators, renderers). These measure the *host* cost of the
// simulation — complementary to the simulated-time figures.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_support/stream.hpp"
#include "data/dataset.hpp"
#include "gpusim/device.hpp"
#include "render/render.hpp"
#include "translate/translate.hpp"
#include "yamlx/matrix_yaml.hpp"

namespace {

using namespace mcmm;

void BM_AllocatorAllocFree(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 30));
  for (auto _ : state) {
    void* p = dev.allocate(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(p);
    dev.deallocate(p);
  }
}
BENCHMARK(BM_AllocatorAllocFree)->Range(64, 1 << 20);

void BM_KernelLaunchOverhead(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 20));
  gpusim::Queue& q = dev.default_queue();
  for (auto _ : state) {
    q.launch(gpusim::launch_1d(1, 1), gpusim::KernelCosts{},
             [](const gpusim::WorkItem&) {});
  }
}
BENCHMARK(BM_KernelLaunchOverhead);

void BM_KernelElementThroughput(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 28));
  gpusim::Queue& q = dev.default_queue();
  const auto n = static_cast<std::size_t>(state.range(0));
  auto* data = static_cast<double*>(dev.allocate(n * sizeof(double)));
  for (auto _ : state) {
    q.launch(gpusim::launch_1d(n, 256), gpusim::KernelCosts{},
             [data, n](const gpusim::WorkItem& item) {
               const std::size_t i = item.global_x();
               if (i < n) data[i] = data[i] * 1.000001 + 0.5;
             });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  dev.deallocate(data);
}
BENCHMARK(BM_KernelElementThroughput)->Range(1 << 10, 1 << 20);

void BM_QueueMemcpyH2D(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 28));
  gpusim::Queue& q = dev.default_queue();
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<char> host(bytes);
  void* d = dev.allocate(bytes);
  for (auto _ : state) {
    q.memcpy(d, host.data(), bytes, gpusim::CopyKind::HostToDevice);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  dev.deallocate(d);
}
BENCHMARK(BM_QueueMemcpyH2D)->Range(1 << 10, 1 << 24);

void BM_DatasetBuild(benchmark::State& state) {
  for (auto _ : state) {
    const CompatibilityMatrix m = data::build_paper_matrix();
    benchmark::DoNotOptimize(m.entry_count());
  }
}
BENCHMARK(BM_DatasetBuild);

void BM_RenderFigure1Text(benchmark::State& state) {
  const CompatibilityMatrix& m = data::paper_matrix();
  for (auto _ : state) {
    const std::string s = render::figure1_text(m);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_RenderFigure1Text);

void BM_YamlRoundTrip(benchmark::State& state) {
  const CompatibilityMatrix& m = data::paper_matrix();
  for (auto _ : state) {
    const CompatibilityMatrix round =
        yamlx::matrix_from_yaml_text(yamlx::matrix_to_yaml_text(m));
    benchmark::DoNotOptimize(round.entry_count());
  }
}
BENCHMARK(BM_YamlRoundTrip);

void BM_Hipify(benchmark::State& state) {
  const std::string source =
      "cudaMalloc(&p, n); cudaMemcpy(d, h, n, cudaMemcpyHostToDevice); "
      "cudax::cudaLaunch(grid, block, kernel, a, b, c); "
      "cublasSaxpy(handle, n, &alpha, x, 1, y, 1); cudaFree(p);";
  for (auto _ : state) {
    const auto r = translate::hipify(source);
    benchmark::DoNotOptimize(r.code.size());
  }
}
BENCHMARK(BM_Hipify);

void BM_StreamTriadFullCycle(benchmark::State& state) {
  auto benches = bench::stream_benchmarks_for(Vendor::NVIDIA);
  bench::StreamBenchmark& native = *benches.front();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto results = bench::run_stream(native, n, 1);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_StreamTriadFullCycle)->Range(1 << 12, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
