// google-benchmark microbenchmarks of the substrate itself: wall-clock
// cost of the simulator's primitives (allocator, launch machinery, queue
// ops, translators, renderers). These measure the *host* cost of the
// simulation — complementary to the simulated-time figures.
//
// The binary also carries the engine A/B harness: it re-runs the key
// launch paths against an in-process replica of the seed execution engine
// (bench/engine_baseline.hpp) and writes machine-readable speedup numbers
// to BENCH_gpusim.json. Flags (stripped before google-benchmark sees
// argv):
//
//   --engine-json=PATH       output path (default: BENCH_gpusim.json)
//   --engine-triad-log2n=K   Triad problem size 2^K (default: 24)
//   --engine-reps=R          repetitions per Triad measurement (default: 3)
//   --engine-only            run only the A/B harness, skip google-benchmark

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_support/stream.hpp"
#include "data/dataset.hpp"
#include "engine_baseline.hpp"
#include "gpuprof/gpuprof.hpp"
#include "gpusim/device.hpp"
#include "render/render.hpp"
#include "translate/translate.hpp"
#include "yamlx/matrix_yaml.hpp"

namespace {

using namespace mcmm;

void BM_AllocatorAllocFree(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 30));
  for (auto _ : state) {
    void* p = dev.allocate(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(p);
    dev.deallocate(p);
  }
}
BENCHMARK(BM_AllocatorAllocFree)->Range(64, 1 << 20);

void BM_KernelLaunchOverhead(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 20));
  gpusim::Queue& q = dev.default_queue();
  for (auto _ : state) {
    q.launch(gpusim::launch_1d(1, 1), gpusim::KernelCosts{},
             [](const gpusim::WorkItem&) {});
  }
}
BENCHMARK(BM_KernelLaunchOverhead);

void BM_KernelElementThroughput(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 28));
  gpusim::Queue& q = dev.default_queue();
  const auto n = static_cast<std::size_t>(state.range(0));
  auto* data = static_cast<double*>(dev.allocate(n * sizeof(double)));
  for (auto _ : state) {
    q.launch(gpusim::launch_1d(n, 256), gpusim::KernelCosts{},
             [data, n](const gpusim::WorkItem& item) {
               const std::size_t i = item.global_x();
               if (i < n) data[i] = data[i] * 1.000001 + 0.5;
             });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  dev.deallocate(data);
}
BENCHMARK(BM_KernelElementThroughput)->Range(1 << 10, 1 << 20);

void BM_QueueMemcpyH2D(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 28));
  gpusim::Queue& q = dev.default_queue();
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<char> host(bytes);
  void* d = dev.allocate(bytes);
  for (auto _ : state) {
    q.memcpy(d, host.data(), bytes, gpusim::CopyKind::HostToDevice);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  dev.deallocate(d);
}
BENCHMARK(BM_QueueMemcpyH2D)->Range(1 << 10, 1 << 24);

void BM_DatasetBuild(benchmark::State& state) {
  for (auto _ : state) {
    const CompatibilityMatrix m = data::build_paper_matrix();
    benchmark::DoNotOptimize(m.entry_count());
  }
}
BENCHMARK(BM_DatasetBuild);

void BM_RenderFigure1Text(benchmark::State& state) {
  const CompatibilityMatrix& m = data::paper_matrix();
  for (auto _ : state) {
    const std::string s = render::figure1_text(m);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_RenderFigure1Text);

void BM_YamlRoundTrip(benchmark::State& state) {
  const CompatibilityMatrix& m = data::paper_matrix();
  for (auto _ : state) {
    const CompatibilityMatrix round =
        yamlx::matrix_from_yaml_text(yamlx::matrix_to_yaml_text(m));
    benchmark::DoNotOptimize(round.entry_count());
  }
}
BENCHMARK(BM_YamlRoundTrip);

void BM_Hipify(benchmark::State& state) {
  const std::string source =
      "cudaMalloc(&p, n); cudaMemcpy(d, h, n, cudaMemcpyHostToDevice); "
      "cudax::cudaLaunch(grid, block, kernel, a, b, c); "
      "cublasSaxpy(handle, n, &alpha, x, 1, y, 1); cudaFree(p);";
  for (auto _ : state) {
    const auto r = translate::hipify(source);
    benchmark::DoNotOptimize(r.code.size());
  }
}
BENCHMARK(BM_Hipify);

void BM_StreamTriadFullCycle(benchmark::State& state) {
  auto benches = bench::stream_benchmarks_for(Vendor::NVIDIA);
  bench::StreamBenchmark& native = *benches.front();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto results = bench::run_stream(native, n, 1);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_StreamTriadFullCycle)->Range(1 << 12, 1 << 18);

// ---------------------------------------------------------------------------
// Engine A/B harness: rebuilt engine vs the seed replica, one process.
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct EngineReport {
  // Per-launch host overhead, empty kernel, N=1 (nanoseconds).
  double launch_overhead_ns_engine{0};
  double launch_overhead_ns_seed{0};
  // BabelStream Triad host wall-clock per repetition (milliseconds).
  std::uint64_t triad_n{0};
  int triad_reps{0};
  double triad_ms_engine{0};
  double triad_ms_seed{0};
  // Dynamic vs static self-scheduling on 64 deliberately-uneven chunks.
  double uneven_ms_static{0};
  double uneven_ms_dynamic{0};
  bool sim_time_identical{false};
  bool results_identical{false};
  // gpuprof A/B: per-launch overhead with hooks never installed, with the
  // profiler tracing, and after disable() (the hooks-off path must cost
  // the same whether gpuprof was ever on or not).
  double profiler_off_ns{0};
  double profiler_on_ns{0};
  double profiler_after_disable_ns{0};
};

/// gpuprof A/B: the disabled-path guarantee (hooks off = one atomic load
/// + branch) and the price of tracing. Mutates only gpuprof state; runs
/// after the engine harness so its enable/disable cannot perturb those
/// numbers.
void run_profiler_harness(EngineReport& rep) {
  constexpr int kLaunches = 40000;
  constexpr int kTimingReps = 5;
  const gpusim::DeviceDescriptor descriptor =
      gpusim::tiny_test_device(std::size_t{1} << 20);
  gpusim::Device dev(descriptor);
  gpusim::Queue& q = dev.default_queue();
  const gpusim::LaunchConfig cfg = gpusim::launch_1d(1, 1);
  const gpusim::KernelCosts empty{};
  const auto body = [](const gpusim::WorkItem&) {};

  // Min-of-reps, the same estimator as the engine launch-overhead A/B.
  const auto measure = [&] {
    for (int i = 0; i < 1000; ++i) q.launch(cfg, empty, body);
    double best = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kLaunches; ++i) q.launch(cfg, empty, body);
      best = std::min(best, seconds_since(t0) * 1e9 / kLaunches);
    }
    return best;
  };

  rep.profiler_off_ns = measure();
  gpuprof::Config cfg_prof;
  // Room for every traced launch: drops would short-circuit the hooks
  // and understate the tracing price.
  cfg_prof.max_events =
      std::size_t{2} * kTimingReps * kLaunches + 4096;
  gpuprof::enable(cfg_prof);
  rep.profiler_on_ns = measure();
  (void)gpuprof::finalize();
  gpuprof::reset();
  rep.profiler_after_disable_ns = measure();
}

[[nodiscard]] EngineReport run_engine_harness(std::uint64_t triad_n,
                                              int triad_reps) {
  EngineReport rep;
  rep.triad_n = triad_n;
  rep.triad_reps = triad_reps;

  const gpusim::DeviceDescriptor descriptor =
      gpusim::tiny_test_device(std::size_t{1} << 20);

  // --- Launch overhead: empty kernel, N=1, per-launch nanoseconds.
  // Min over several repetitions: robust against scheduler interference
  // on small shared machines, and the same estimator the gpuprof A/B
  // uses, so its hooks-off number is directly comparable. ---
  constexpr int kLaunches = 40000;
  constexpr int kTimingReps = 5;
  {
    gpusim::Device dev(descriptor);
    gpusim::Queue& q = dev.default_queue();
    bench::baseline::SeedThreadPool seed_pool;
    bench::baseline::SeedQueue seed_q(descriptor, seed_pool);
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(1, 1);
    const gpusim::KernelCosts empty{};
    const auto body = [](const gpusim::WorkItem&) {};
    // Warm-up, then measure; seed replica first so the rebuilt engine
    // cannot benefit from cache warm-up order.
    for (int i = 0; i < 1000; ++i) {
      seed_q.launch(cfg, empty, body);
      q.launch(cfg, empty, body);
    }
    rep.launch_overhead_ns_seed = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kLaunches; ++i) seed_q.launch(cfg, empty, body);
      rep.launch_overhead_ns_seed = std::min(
          rep.launch_overhead_ns_seed, seconds_since(t0) * 1e9 / kLaunches);
    }
    rep.launch_overhead_ns_engine = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kLaunches; ++i) q.launch(cfg, empty, body);
      rep.launch_overhead_ns_engine = std::min(
          rep.launch_overhead_ns_engine, seconds_since(t0) * 1e9 / kLaunches);
    }
    // Both engines must advance the simulated clock identically — the
    // rebuilt engine's fast paths are host-side only.
    rep.sim_time_identical =
        q.simulated_time_us() == seed_q.simulated_time_us();
  }

  // --- BabelStream Triad: a[i] = b[i] + scalar * c[i], host wall time. ---
  {
    const std::uint64_t n = triad_n;
    std::vector<double> a(n, 0.0), b(n, 1.5), c(n, 2.25);
    std::vector<double> a_seed(n, 0.0);
    constexpr double kScalar = 0.4;
    gpusim::KernelCosts costs;
    costs.bytes_read = 2.0 * static_cast<double>(n) * sizeof(double);
    costs.bytes_written = static_cast<double>(n) * sizeof(double);
    costs.flops = 2.0 * static_cast<double>(n);
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(n, 256);

    gpusim::Device dev(descriptor);
    gpusim::Queue& q = dev.default_queue();
    bench::baseline::SeedThreadPool seed_pool;
    bench::baseline::SeedQueue seed_q(descriptor, seed_pool);

    double* pa = a.data();
    double* pa_seed = a_seed.data();
    const double* pb = b.data();
    const double* pc = c.data();
    const auto triad = [=](const gpusim::WorkItem& item) {
      const std::uint64_t i = item.global_x();
      if (i < n) pa[i] = pb[i] + kScalar * pc[i];
    };
    const auto triad_seed = [=](const gpusim::WorkItem& item) {
      const std::uint64_t i = item.global_x();
      if (i < n) pa_seed[i] = pb[i] + kScalar * pc[i];
    };

    seed_q.launch(cfg, costs, triad_seed);  // warm-up + correctness input
    q.launch(cfg, costs, triad);
    rep.results_identical =
        std::memcmp(pa, pa_seed, n * sizeof(double)) == 0;

    auto t0 = Clock::now();
    for (int r = 0; r < triad_reps; ++r) seed_q.launch(cfg, costs, triad_seed);
    rep.triad_ms_seed = seconds_since(t0) * 1e3 / triad_reps;
    t0 = Clock::now();
    for (int r = 0; r < triad_reps; ++r) q.launch(cfg, costs, triad);
    rep.triad_ms_engine = seconds_since(t0) * 1e3 / triad_reps;
  }

  // --- Static vs dynamic self-scheduling on uneven chunks: the model
  // layers' reduction shape (few fat work items, one much fatter). ---
  {
    gpusim::Device dev(descriptor);
    gpusim::Queue& q = dev.default_queue();
    constexpr std::uint64_t kItems = 64;
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(kItems, 1);
    volatile double sink = 0;
    const auto uneven = [&sink](const gpusim::WorkItem& item) {
      const std::uint64_t i = item.global_x();
      if (i >= kItems) return;
      const std::uint64_t reps = (i == 0) ? 1 << 20 : 1 << 12;
      double acc = 0;
      for (std::uint64_t r = 0; r < reps; ++r) acc += 1e-9 * r;
      sink = sink + acc;
    };
    constexpr int kRounds = 20;
    for (int i = 0; i < 2; ++i) q.launch(cfg, gpusim::KernelCosts{}, uneven);
    auto t0 = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      q.launch(cfg, gpusim::KernelCosts{}, uneven,
               gpusim::LaunchPolicy{gpusim::Schedule::Static, 0});
    }
    rep.uneven_ms_static = seconds_since(t0) * 1e3 / kRounds;
    t0 = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      q.launch(cfg, gpusim::KernelCosts{}, uneven,
               gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
    }
    rep.uneven_ms_dynamic = seconds_since(t0) * 1e3 / kRounds;
  }

  return rep;
}

[[nodiscard]] bool write_engine_json(const EngineReport& r,
                                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const double launch_speedup =
      r.launch_overhead_ns_engine > 0
          ? r.launch_overhead_ns_seed / r.launch_overhead_ns_engine
          : 0.0;
  const double triad_speedup =
      r.triad_ms_engine > 0 ? r.triad_ms_seed / r.triad_ms_engine : 0.0;
  out << "{\n"
      << "  \"schema\": \"mcmm-engine-bench-v1\",\n"
      << "  \"workers\": " << gpusim::ThreadPool::global().worker_count()
      << ",\n"
      << "  \"launch_overhead\": {\n"
      << "    \"kernel\": \"empty, N=1\",\n"
      << "    \"engine_ns\": " << r.launch_overhead_ns_engine << ",\n"
      << "    \"seed_baseline_ns\": " << r.launch_overhead_ns_seed << ",\n"
      << "    \"speedup\": " << launch_speedup << "\n"
      << "  },\n"
      << "  \"triad\": {\n"
      << "    \"kernel\": \"a[i] = b[i] + scalar * c[i]\",\n"
      << "    \"n\": " << r.triad_n << ",\n"
      << "    \"reps\": " << r.triad_reps << ",\n"
      << "    \"engine_ms\": " << r.triad_ms_engine << ",\n"
      << "    \"seed_baseline_ms\": " << r.triad_ms_seed << ",\n"
      << "    \"speedup\": " << triad_speedup << "\n"
      << "  },\n"
      << "  \"uneven_chunks\": {\n"
      << "    \"kernel\": \"64 work items, item 0 is 256x heavier\",\n"
      << "    \"static_ms\": " << r.uneven_ms_static << ",\n"
      << "    \"dynamic_ms\": " << r.uneven_ms_dynamic << "\n"
      << "  },\n"
      << "  \"profiler\": {\n"
      << "    \"kernel\": \"empty, N=1\",\n"
      << "    \"hooks_off_ns\": " << r.profiler_off_ns << ",\n"
      << "    \"tracing_ns\": " << r.profiler_on_ns << ",\n"
      << "    \"after_disable_ns\": " << r.profiler_after_disable_ns << "\n"
      << "  },\n"
      << "  \"sim_time_identical\": "
      << (r.sim_time_identical ? "true" : "false") << ",\n"
      << "  \"results_identical\": "
      << (r.results_identical ? "true" : "false") << "\n"
      << "}\n";
  std::printf(
      "engine A/B: launch %.2f ns vs seed %.2f ns (%.1fx); "
      "triad(n=%llu) %.2f ms vs seed %.2f ms (%.1fx); "
      "uneven static %.2f ms vs dynamic %.2f ms; sim_time_identical=%s\n",
      r.launch_overhead_ns_engine, r.launch_overhead_ns_seed, launch_speedup,
      static_cast<unsigned long long>(r.triad_n), r.triad_ms_engine,
      r.triad_ms_seed, triad_speedup, r.uneven_ms_static, r.uneven_ms_dynamic,
      r.sim_time_identical ? "true" : "false");
  std::printf("engine A/B report written to %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_gpusim.json";
  int triad_log2n = 24;
  int triad_reps = 3;
  bool engine_only = false;

  // Strip --engine-* flags; forward the rest to google-benchmark.
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine-json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--engine-json="));
    } else if (arg.rfind("--engine-triad-log2n=", 0) == 0) {
      triad_log2n = std::stoi(arg.substr(std::strlen("--engine-triad-log2n=")));
    } else if (arg.rfind("--engine-reps=", 0) == 0) {
      triad_reps = std::stoi(arg.substr(std::strlen("--engine-reps=")));
    } else if (arg == "--engine-only") {
      engine_only = true;
    } else {
      fwd.push_back(argv[i]);
    }
  }
  if (triad_log2n < 1 || triad_log2n > 28) {
    std::fprintf(stderr, "error: --engine-triad-log2n must be in [1, 28]\n");
    return 1;
  }
  if (triad_reps < 1) {
    std::fprintf(stderr, "error: --engine-reps must be >= 1\n");
    return 1;
  }

  if (!engine_only) {
    int fwd_argc = static_cast<int>(fwd.size());
    benchmark::Initialize(&fwd_argc, fwd.data());
    if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  EngineReport report =
      run_engine_harness(std::uint64_t{1} << triad_log2n, triad_reps);
  run_profiler_harness(report);
  std::printf(
      "gpuprof A/B: hooks-off %.2f ns, tracing %.2f ns, after disable "
      "%.2f ns per launch\n",
      report.profiler_off_ns, report.profiler_on_ns,
      report.profiler_after_disable_ns);
  if (!write_engine_json(report, json_path)) return 1;
  return (report.sim_time_identical && report.results_identical) ? 0 : 2;
}
