// google-benchmark microbenchmarks of the substrate itself: wall-clock
// cost of the simulator's primitives (allocator, launch machinery, queue
// ops, translators, renderers). These measure the *host* cost of the
// simulation — complementary to the simulated-time figures.
//
// The binary also carries the engine A/B harness: it re-runs the key
// launch paths against an in-process replica of the seed execution engine
// (bench/engine_baseline.hpp) and writes machine-readable speedup numbers
// to BENCH_gpusim.json. Flags (stripped before google-benchmark sees
// argv):
//
//   --engine-json=PATH       output path (default: BENCH_gpusim.json)
//   --engine-triad-log2n=K   Triad problem size 2^K (default: 24)
//   --engine-reps=R          repetitions per Triad measurement (default: 3)
//   --engine-only            run only the A/B harness, skip google-benchmark

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>

#include "gpusim/graph.hpp"

#include "bench_support/stream.hpp"
#include "data/dataset.hpp"
#include "engine_baseline.hpp"
#include "gpuprof/gpuprof.hpp"
#include "gpusim/device.hpp"
#include "pstlx/host.hpp"
#include "render/render.hpp"
#include "translate/translate.hpp"
#include "yamlx/matrix_yaml.hpp"

namespace {

using namespace mcmm;

void BM_AllocatorAllocFree(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 30));
  for (auto _ : state) {
    void* p = dev.allocate(static_cast<std::size_t>(state.range(0)));
    benchmark::DoNotOptimize(p);
    dev.deallocate(p);
  }
}
BENCHMARK(BM_AllocatorAllocFree)->Range(64, 1 << 20);

void BM_KernelLaunchOverhead(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 20));
  gpusim::Queue& q = dev.default_queue();
  for (auto _ : state) {
    q.launch(gpusim::launch_1d(1, 1), gpusim::KernelCosts{},
             [](const gpusim::WorkItem&) {});
  }
}
BENCHMARK(BM_KernelLaunchOverhead);

void BM_KernelElementThroughput(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 28));
  gpusim::Queue& q = dev.default_queue();
  const auto n = static_cast<std::size_t>(state.range(0));
  auto* data = static_cast<double*>(dev.allocate(n * sizeof(double)));
  for (auto _ : state) {
    q.launch(gpusim::launch_1d(n, 256), gpusim::KernelCosts{},
             [data, n](const gpusim::WorkItem& item) {
               const std::size_t i = item.global_x();
               if (i < n) data[i] = data[i] * 1.000001 + 0.5;
             });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  dev.deallocate(data);
}
BENCHMARK(BM_KernelElementThroughput)->Range(1 << 10, 1 << 20);

void BM_QueueMemcpyH2D(benchmark::State& state) {
  gpusim::Device dev(gpusim::tiny_test_device(1 << 28));
  gpusim::Queue& q = dev.default_queue();
  const auto bytes = static_cast<std::size_t>(state.range(0));
  std::vector<char> host(bytes);
  void* d = dev.allocate(bytes);
  for (auto _ : state) {
    q.memcpy(d, host.data(), bytes, gpusim::CopyKind::HostToDevice);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  dev.deallocate(d);
}
BENCHMARK(BM_QueueMemcpyH2D)->Range(1 << 10, 1 << 24);

void BM_DatasetBuild(benchmark::State& state) {
  for (auto _ : state) {
    const CompatibilityMatrix m = data::build_paper_matrix();
    benchmark::DoNotOptimize(m.entry_count());
  }
}
BENCHMARK(BM_DatasetBuild);

void BM_RenderFigure1Text(benchmark::State& state) {
  const CompatibilityMatrix& m = data::paper_matrix();
  for (auto _ : state) {
    const std::string s = render::figure1_text(m);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_RenderFigure1Text);

void BM_YamlRoundTrip(benchmark::State& state) {
  const CompatibilityMatrix& m = data::paper_matrix();
  for (auto _ : state) {
    const CompatibilityMatrix round =
        yamlx::matrix_from_yaml_text(yamlx::matrix_to_yaml_text(m));
    benchmark::DoNotOptimize(round.entry_count());
  }
}
BENCHMARK(BM_YamlRoundTrip);

void BM_Hipify(benchmark::State& state) {
  const std::string source =
      "cudaMalloc(&p, n); cudaMemcpy(d, h, n, cudaMemcpyHostToDevice); "
      "cudax::cudaLaunch(grid, block, kernel, a, b, c); "
      "cublasSaxpy(handle, n, &alpha, x, 1, y, 1); cudaFree(p);";
  for (auto _ : state) {
    const auto r = translate::hipify(source);
    benchmark::DoNotOptimize(r.code.size());
  }
}
BENCHMARK(BM_Hipify);

void BM_StreamTriadFullCycle(benchmark::State& state) {
  auto benches = bench::stream_benchmarks_for(Vendor::NVIDIA);
  bench::StreamBenchmark& native = *benches.front();
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto results = bench::run_stream(native, n, 1);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_StreamTriadFullCycle)->Range(1 << 12, 1 << 18);

// ---------------------------------------------------------------------------
// Engine A/B harness: rebuilt engine vs the seed replica, one process.
// ---------------------------------------------------------------------------

using Clock = std::chrono::steady_clock;

[[nodiscard]] double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct EngineReport {
  // Per-launch host overhead, empty kernel, N=1 (nanoseconds).
  double launch_overhead_ns_engine{0};
  double launch_overhead_ns_seed{0};
  // BabelStream Triad host wall-clock per repetition (milliseconds).
  std::uint64_t triad_n{0};
  int triad_reps{0};
  double triad_ms_engine{0};
  double triad_ms_seed{0};
  // Dynamic vs static self-scheduling on 64 deliberately-uneven chunks.
  double uneven_ms_static{0};
  double uneven_ms_dynamic{0};
  bool sim_time_identical{false};
  bool results_identical{false};
  // gpuprof A/B: per-launch overhead with hooks never installed, with the
  // profiler tracing, and after disable() (the hooks-off path must cost
  // the same whether gpuprof was ever on or not).
  double profiler_off_ns{0};
  double profiler_on_ns{0};
  double profiler_after_disable_ns{0};
  // pstlx dogfood A/B #1: loadgen's percentile sort — std::sort vs the
  // pstlx host-parallel merge sort on the same latency-like u32 data.
  std::uint64_t psort_n{0};
  double psort_ms_std{0};
  double psort_ms_pstlx{0};
  bool psort_identical{false};
  // pstlx dogfood A/B #2: gpusan's shadow-log conflict scan — the old
  // unordered_map hash-grouping vs the pstlx stable_sort + group walk.
  std::uint64_t cscan_records{0};
  double cscan_ms_hashmap{0};
  double cscan_ms_pstlx{0};
  bool cscan_identical{false};
  // Graph replay A/B: per-node host overhead of replaying a pre-compiled
  // kernel chain vs eager launches of the same chain, plus the BabelStream
  // capture/replay identity check (results and simulated clock must match
  // the eager run bit-for-bit).
  std::uint64_t graph_nodes{0};
  double graph_eager_ns{0};   ///< eager ns per launch over the chain
  double graph_replay_ns{0};  ///< replay ns per node over the chain
  std::uint64_t graph_stream_n{0};
  bool graph_results_identical{false};
  bool graph_sim_time_identical{false};
  // Multi-device weak scaling: the Triad cycle on 1/2/4 devices at a fixed
  // n per device, with a P2P gather back to device 0.
  std::uint64_t md_n{0};
  double md_sim_us_1{0};
  double md_sim_us_2{0};
  double md_sim_us_4{0};
  double md_p2p_us{0};  ///< gather peer-link time of the 4-device run
  bool md_results_identical{false};
};

/// gpuprof A/B: the disabled-path guarantee (hooks off = one atomic load
/// + branch) and the price of tracing. Mutates only gpuprof state; runs
/// after the engine harness so its enable/disable cannot perturb those
/// numbers.
void run_profiler_harness(EngineReport& rep) {
  constexpr int kLaunches = 40000;
  constexpr int kTimingReps = 5;
  const gpusim::DeviceDescriptor descriptor =
      gpusim::tiny_test_device(std::size_t{1} << 20);
  gpusim::Device dev(descriptor);
  gpusim::Queue& q = dev.default_queue();
  const gpusim::LaunchConfig cfg = gpusim::launch_1d(1, 1);
  const gpusim::KernelCosts empty{};
  const auto body = [](const gpusim::WorkItem&) {};

  // Min-of-reps, the same estimator as the engine launch-overhead A/B.
  const auto measure = [&] {
    for (int i = 0; i < 1000; ++i) q.launch(cfg, empty, body);
    double best = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kLaunches; ++i) q.launch(cfg, empty, body);
      best = std::min(best, seconds_since(t0) * 1e9 / kLaunches);
    }
    return best;
  };

  rep.profiler_off_ns = measure();
  gpuprof::Config cfg_prof;
  // Room for every traced launch: drops would short-circuit the hooks
  // and understate the tracing price.
  cfg_prof.max_events =
      std::size_t{2} * kTimingReps * kLaunches + 4096;
  gpuprof::enable(cfg_prof);
  rep.profiler_on_ns = measure();
  (void)gpuprof::finalize();
  gpuprof::reset();
  rep.profiler_after_disable_ns = measure();
}

[[nodiscard]] EngineReport run_engine_harness(std::uint64_t triad_n,
                                              int triad_reps) {
  EngineReport rep;
  rep.triad_n = triad_n;
  rep.triad_reps = triad_reps;

  const gpusim::DeviceDescriptor descriptor =
      gpusim::tiny_test_device(std::size_t{1} << 20);

  // --- Launch overhead: empty kernel, N=1, per-launch nanoseconds.
  // Min over several repetitions: robust against scheduler interference
  // on small shared machines, and the same estimator the gpuprof A/B
  // uses, so its hooks-off number is directly comparable. ---
  constexpr int kLaunches = 40000;
  constexpr int kTimingReps = 5;
  {
    gpusim::Device dev(descriptor);
    gpusim::Queue& q = dev.default_queue();
    bench::baseline::SeedThreadPool seed_pool;
    bench::baseline::SeedQueue seed_q(descriptor, seed_pool);
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(1, 1);
    const gpusim::KernelCosts empty{};
    const auto body = [](const gpusim::WorkItem&) {};
    // Warm-up, then measure; seed replica first so the rebuilt engine
    // cannot benefit from cache warm-up order.
    for (int i = 0; i < 1000; ++i) {
      seed_q.launch(cfg, empty, body);
      q.launch(cfg, empty, body);
    }
    rep.launch_overhead_ns_seed = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kLaunches; ++i) seed_q.launch(cfg, empty, body);
      rep.launch_overhead_ns_seed = std::min(
          rep.launch_overhead_ns_seed, seconds_since(t0) * 1e9 / kLaunches);
    }
    rep.launch_overhead_ns_engine = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      for (int i = 0; i < kLaunches; ++i) q.launch(cfg, empty, body);
      rep.launch_overhead_ns_engine = std::min(
          rep.launch_overhead_ns_engine, seconds_since(t0) * 1e9 / kLaunches);
    }
    // Both engines must advance the simulated clock identically — the
    // rebuilt engine's fast paths are host-side only.
    rep.sim_time_identical =
        q.simulated_time_us() == seed_q.simulated_time_us();
  }

  // --- BabelStream Triad: a[i] = b[i] + scalar * c[i], host wall time. ---
  {
    const std::uint64_t n = triad_n;
    std::vector<double> a(n, 0.0), b(n, 1.5), c(n, 2.25);
    std::vector<double> a_seed(n, 0.0);
    constexpr double kScalar = 0.4;
    gpusim::KernelCosts costs;
    costs.bytes_read = 2.0 * static_cast<double>(n) * sizeof(double);
    costs.bytes_written = static_cast<double>(n) * sizeof(double);
    costs.flops = 2.0 * static_cast<double>(n);
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(n, 256);

    gpusim::Device dev(descriptor);
    gpusim::Queue& q = dev.default_queue();
    bench::baseline::SeedThreadPool seed_pool;
    bench::baseline::SeedQueue seed_q(descriptor, seed_pool);

    double* pa = a.data();
    double* pa_seed = a_seed.data();
    const double* pb = b.data();
    const double* pc = c.data();
    const auto triad = [=](const gpusim::WorkItem& item) {
      const std::uint64_t i = item.global_x();
      if (i < n) pa[i] = pb[i] + kScalar * pc[i];
    };
    const auto triad_seed = [=](const gpusim::WorkItem& item) {
      const std::uint64_t i = item.global_x();
      if (i < n) pa_seed[i] = pb[i] + kScalar * pc[i];
    };

    seed_q.launch(cfg, costs, triad_seed);  // warm-up + correctness input
    q.launch(cfg, costs, triad);
    rep.results_identical =
        std::memcmp(pa, pa_seed, n * sizeof(double)) == 0;

    auto t0 = Clock::now();
    for (int r = 0; r < triad_reps; ++r) seed_q.launch(cfg, costs, triad_seed);
    rep.triad_ms_seed = seconds_since(t0) * 1e3 / triad_reps;
    t0 = Clock::now();
    for (int r = 0; r < triad_reps; ++r) q.launch(cfg, costs, triad);
    rep.triad_ms_engine = seconds_since(t0) * 1e3 / triad_reps;
  }

  // --- Static vs dynamic self-scheduling on uneven chunks: the model
  // layers' reduction shape (few fat work items, one much fatter). ---
  {
    gpusim::Device dev(descriptor);
    gpusim::Queue& q = dev.default_queue();
    constexpr std::uint64_t kItems = 64;
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(kItems, 1);
    volatile double sink = 0;
    const auto uneven = [&sink](const gpusim::WorkItem& item) {
      const std::uint64_t i = item.global_x();
      if (i >= kItems) return;
      const std::uint64_t reps = (i == 0) ? 1 << 20 : 1 << 12;
      double acc = 0;
      for (std::uint64_t r = 0; r < reps; ++r) acc += 1e-9 * r;
      sink = sink + acc;
    };
    constexpr int kRounds = 20;
    for (int i = 0; i < 2; ++i) q.launch(cfg, gpusim::KernelCosts{}, uneven);
    auto t0 = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      q.launch(cfg, gpusim::KernelCosts{}, uneven,
               gpusim::LaunchPolicy{gpusim::Schedule::Static, 0});
    }
    rep.uneven_ms_static = seconds_since(t0) * 1e3 / kRounds;
    t0 = Clock::now();
    for (int i = 0; i < kRounds; ++i) {
      q.launch(cfg, gpusim::KernelCosts{}, uneven,
               gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
    }
    rep.uneven_ms_dynamic = seconds_since(t0) * 1e3 / kRounds;
  }

  return rep;
}

// ---------------------------------------------------------------------------
// pstlx dogfood A/B: the two production call sites that moved onto pstlx,
// each re-run against the code path it replaced (EXPERIMENTS.md).
// ---------------------------------------------------------------------------

/// Shape of a gpusan shadow-log entry, reproduced locally so the scan
/// A/B runs on synthetic data without touching sanitizer state.
struct MiniRecord {
  std::uintptr_t cell;
  std::uint64_t item;
  bool write;
};

/// Conflicted cells via the pre-pstlx approach: hash-group by cell.
[[nodiscard]] std::uint64_t conflicts_hashmap(
    const std::vector<MiniRecord>& records) {
  std::unordered_map<std::uintptr_t, std::vector<std::uint32_t>> by_cell;
  by_cell.reserve(records.size());
  for (std::uint32_t i = 0; i < records.size(); ++i) {
    by_cell[records[i].cell].push_back(i);
  }
  std::uint64_t conflicts = 0;
  for (const auto& [cell, idx] : by_cell) {
    bool conflict = false;
    for (std::size_t x = 0; x < idx.size() && !conflict; ++x) {
      for (std::size_t y = x + 1; y < idx.size() && !conflict; ++y) {
        const MiniRecord& a = records[idx[x]];
        const MiniRecord& b = records[idx[y]];
        conflict = a.item != b.item && (a.write || b.write);
      }
    }
    conflicts += conflict ? 1 : 0;
  }
  return conflicts;
}

/// Conflicted cells via the gpusan production path since the pstlx
/// rewrite: stable-sort a copy by cell, walk equal-cell groups.
[[nodiscard]] std::uint64_t conflicts_pstlx(std::vector<MiniRecord> records) {
  pstlx::stable_sort(
      pstlx::host_policy{}, records.begin(), records.end(),
      [](const MiniRecord& a, const MiniRecord& b) { return a.cell < b.cell; });
  std::uint64_t conflicts = 0;
  for (std::size_t lo = 0, hi = 0; lo < records.size(); lo = hi) {
    const std::uintptr_t cell = records[lo].cell;
    hi = lo + 1;
    while (hi < records.size() && records[hi].cell == cell) ++hi;
    bool conflict = false;
    for (std::size_t x = lo; x < hi && !conflict; ++x) {
      for (std::size_t y = x + 1; y < hi && !conflict; ++y) {
        conflict = records[x].item != records[y].item &&
                   (records[x].write || records[y].write);
      }
    }
    conflicts += conflict ? 1 : 0;
  }
  return conflicts;
}

void run_pstlx_harness(EngineReport& rep) {
  constexpr int kTimingReps = 5;
  const auto best_of = [&](auto&& body) {
    double best = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      body();
      best = std::min(best, seconds_since(t0) * 1e3);
    }
    return best;
  };

  // --- A/B #1: loadgen percentile sort (u32 latencies, ~1M samples). ---
  {
    constexpr std::uint64_t n = std::uint64_t{1} << 20;
    rep.psort_n = n;
    std::vector<std::uint32_t> latencies(n);
    std::uint64_t state = 0x10ad6e00b5eedull;
    for (auto& x : latencies) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      x = static_cast<std::uint32_t>(state >> 40);  // long-tailed-ish u24
    }
    std::vector<std::uint32_t> via_std, via_pstlx;
    rep.psort_ms_std = best_of([&] {
      via_std = latencies;
      std::sort(via_std.begin(), via_std.end());
    });
    rep.psort_ms_pstlx = best_of([&] {
      via_pstlx = latencies;
      pstlx::sort(pstlx::host_policy{}, via_pstlx.begin(), via_pstlx.end());
    });
    rep.psort_identical = via_std == via_pstlx;
  }

  // --- A/B #2: gpusan conflict scan (synthetic shadow log: many cells,
  // a few contended ones with real write conflicts). ---
  {
    constexpr std::uint64_t kRecords = 1 << 19;
    rep.cscan_records = kRecords;
    std::vector<MiniRecord> records(kRecords);
    std::uint64_t state = 0x5ca45cafull;
    for (std::uint64_t i = 0; i < kRecords; ++i) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t r = state >> 33;
      records[i].cell = 0x1000 + (r % (kRecords / 8)) * 8;
      records[i].item = (r >> 20) % 64;
      records[i].write = (r & 1) != 0;
    }
    std::uint64_t via_hash = 0, via_pstlx = 0;
    rep.cscan_ms_hashmap =
        best_of([&] { via_hash = conflicts_hashmap(records); });
    rep.cscan_ms_pstlx =
        best_of([&] { via_pstlx = conflicts_pstlx(records); });
    rep.cscan_identical = via_hash == via_pstlx && via_hash > 0;
  }
}

// ---------------------------------------------------------------------------
// Graph replay A/B and multi-device weak scaling (tentpole dogfood).
// ---------------------------------------------------------------------------

/// Per-node replay overhead vs eager launches, and the BabelStream
/// capture/replay identity check.
void run_graph_harness(EngineReport& rep) {
  constexpr int kTimingReps = 5;
  const gpusim::DeviceDescriptor descriptor =
      gpusim::tiny_test_device(std::size_t{1} << 26);

  // --- Host overhead: a chain of single-item empty kernels. The eager
  // path pays validation + hook probes + thunk setup per launch; replay
  // walks a pre-compiled op array (the chain fuses into one indirect
  // call). ---
  {
    constexpr std::uint64_t kNodes = 8192;
    rep.graph_nodes = kNodes;
    gpusim::Device dev(descriptor);
    gpusim::Queue& q = dev.default_queue();
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(1, 1);
    const gpusim::KernelCosts empty{};
    const auto body = [](const gpusim::WorkItem&) {};

    for (std::uint64_t i = 0; i < 1000; ++i) q.launch(cfg, empty, body);
    rep.graph_eager_ns = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      for (std::uint64_t i = 0; i < kNodes; ++i) q.launch(cfg, empty, body);
      rep.graph_eager_ns = std::min(
          rep.graph_eager_ns, seconds_since(t0) * 1e9 / kNodes);
    }

    gpusim::Graph graph;
    q.begin_capture(graph);
    for (std::uint64_t i = 0; i < kNodes; ++i) q.launch(cfg, empty, body);
    (void)q.end_capture();
    gpusim::ExecutableGraph exec(graph, q);
    (void)exec.replay(q);  // warm-up
    rep.graph_replay_ns = std::numeric_limits<double>::max();
    for (int r = 0; r < kTimingReps; ++r) {
      const auto t0 = Clock::now();
      (void)exec.replay(q);
      rep.graph_replay_ns = std::min(
          rep.graph_replay_ns, seconds_since(t0) * 1e9 / kNodes);
    }
  }

  // --- Identity: the full BabelStream Triad cycle (init + reps x
  // copy/mul/add/triad) captured from a fresh queue and replayed once on
  // a fresh device must match the eager run bit-for-bit — array contents
  // and final simulated clock. ---
  {
    constexpr std::uint64_t n = std::uint64_t{1} << 20;
    constexpr int reps = 3;
    constexpr double kScalar = 0.4;
    rep.graph_stream_n = n;
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(n, 256);
    gpusim::KernelCosts stream_costs;
    stream_costs.bytes_read = 2.0 * static_cast<double>(n) * sizeof(double);
    stream_costs.bytes_written = static_cast<double>(n) * sizeof(double);
    stream_costs.flops = 2.0 * static_cast<double>(n);

    const auto submit = [&](gpusim::Queue& q, double* a, double* b,
                            double* c) {
      (void)q.launch(cfg, stream_costs, [=](const gpusim::WorkItem& it) {
        const std::uint64_t i = it.global_x();
        if (i < n) {
          a[i] = 0.1;
          b[i] = 0.2;
          c[i] = 0.0;
        }
      });
      for (int r = 0; r < reps; ++r) {
        (void)q.launch(cfg, stream_costs, [=](const gpusim::WorkItem& it) {
          const std::uint64_t i = it.global_x();
          if (i < n) c[i] = a[i];
        });
        (void)q.launch(cfg, stream_costs, [=](const gpusim::WorkItem& it) {
          const std::uint64_t i = it.global_x();
          if (i < n) b[i] = kScalar * c[i];
        });
        (void)q.launch(cfg, stream_costs, [=](const gpusim::WorkItem& it) {
          const std::uint64_t i = it.global_x();
          if (i < n) c[i] = a[i] + b[i];
        });
        (void)q.launch(cfg, stream_costs, [=](const gpusim::WorkItem& it) {
          const std::uint64_t i = it.global_x();
          if (i < n) a[i] = b[i] + kScalar * c[i];
        });
      }
    };

    gpusim::Device eager_dev(descriptor);
    auto* ea = static_cast<double*>(eager_dev.allocate(n * sizeof(double)));
    auto* eb = static_cast<double*>(eager_dev.allocate(n * sizeof(double)));
    auto* ec = static_cast<double*>(eager_dev.allocate(n * sizeof(double)));
    submit(eager_dev.default_queue(), ea, eb, ec);
    const double eager_sim = eager_dev.default_queue().simulated_time_us();

    gpusim::Device replay_dev(descriptor);
    auto* ra = static_cast<double*>(replay_dev.allocate(n * sizeof(double)));
    auto* rb = static_cast<double*>(replay_dev.allocate(n * sizeof(double)));
    auto* rc = static_cast<double*>(replay_dev.allocate(n * sizeof(double)));
    gpusim::Queue& rq = replay_dev.default_queue();
    gpusim::Graph graph;
    rq.begin_capture(graph);
    submit(rq, ra, rb, rc);
    (void)rq.end_capture();
    gpusim::ExecutableGraph exec(graph, rq);
    (void)exec.replay(rq);

    rep.graph_sim_time_identical = rq.simulated_time_us() == eager_sim;
    rep.graph_results_identical =
        std::memcmp(ea, ra, n * sizeof(double)) == 0 &&
        std::memcmp(eb, rb, n * sizeof(double)) == 0 &&
        std::memcmp(ec, rc, n * sizeof(double)) == 0;

    eager_dev.deallocate(ea);
    eager_dev.deallocate(eb);
    eager_dev.deallocate(ec);
    replay_dev.deallocate(ra);
    replay_dev.deallocate(rb);
    replay_dev.deallocate(rc);
  }
}

/// Triad weak scaling on 1/2/4 local devices (fixed n per device), with a
/// P2P gather of each device's array head back to device 0 for the
/// cross-device identity check.
void run_multi_device_harness(EngineReport& rep) {
  constexpr std::uint64_t n = std::uint64_t{1} << 20;
  constexpr int reps = 3;
  constexpr double kScalar = 0.4;
  constexpr std::uint64_t kGatherDoubles = 1024;
  rep.md_n = n;
  const gpusim::DeviceDescriptor descriptor =
      gpusim::tiny_test_device(std::size_t{1} << 26);
  const gpusim::LaunchConfig cfg = gpusim::launch_1d(n, 256);
  gpusim::KernelCosts stream_costs;
  stream_costs.bytes_read = 2.0 * static_cast<double>(n) * sizeof(double);
  stream_costs.bytes_written = static_cast<double>(n) * sizeof(double);
  stream_costs.flops = 2.0 * static_cast<double>(n);

  rep.md_results_identical = true;
  for (const unsigned count : {1u, 2u, 4u}) {
    std::vector<std::unique_ptr<gpusim::Device>> devs;
    std::vector<double*> as(count), bs(count), cs(count);
    for (unsigned d = 0; d < count; ++d) {
      devs.push_back(std::make_unique<gpusim::Device>(descriptor, d));
      as[d] = static_cast<double*>(devs[d]->allocate(n * sizeof(double)));
      bs[d] = static_cast<double*>(devs[d]->allocate(n * sizeof(double)));
      cs[d] = static_cast<double*>(devs[d]->allocate(n * sizeof(double)));
    }
    auto* gather = static_cast<double*>(
        devs[0]->allocate(count * kGatherDoubles * sizeof(double)));

    for (unsigned d = 0; d < count; ++d) {
      gpusim::Queue& q = devs[d]->default_queue();
      double* a = as[d];
      double* b = bs[d];
      double* c = cs[d];
      (void)q.launch(cfg, stream_costs, [=](const gpusim::WorkItem& it) {
        const std::uint64_t i = it.global_x();
        if (i < n) {
          a[i] = 0.1;
          b[i] = 0.2;
          c[i] = 0.0;
        }
      });
      for (int r = 0; r < reps; ++r) {
        (void)q.launch(cfg, stream_costs, [=](const gpusim::WorkItem& it) {
          const std::uint64_t i = it.global_x();
          if (i < n) a[i] = b[i] + kScalar * c[i];
        });
      }
    }
    // Gather each device's array head to device 0 over the peer link.
    double p2p_us = 0;
    for (unsigned d = 0; d < count; ++d) {
      const gpusim::Event e = devs[d]->default_queue().memcpy_peer(
          gather + d * kGatherDoubles, *devs[0], as[d],
          kGatherDoubles * sizeof(double));
      if (d > 0) p2p_us += e.duration_us();
    }
    double t_max = 0;
    for (unsigned d = 0; d < count; ++d) {
      t_max = std::max(t_max, devs[d]->default_queue().simulated_time_us());
    }
    if (count == 1) rep.md_sim_us_1 = t_max;
    if (count == 2) rep.md_sim_us_2 = t_max;
    if (count == 4) {
      rep.md_sim_us_4 = t_max;
      rep.md_p2p_us = p2p_us;
    }
    // Every device ran identical data: the gathered heads must be
    // bitwise equal to device 0's.
    for (unsigned d = 1; d < count; ++d) {
      rep.md_results_identical =
          rep.md_results_identical &&
          std::memcmp(gather, gather + d * kGatherDoubles,
                      kGatherDoubles * sizeof(double)) == 0;
    }
    devs[0]->deallocate(gather);
    for (unsigned d = 0; d < count; ++d) {
      devs[d]->deallocate(as[d]);
      devs[d]->deallocate(bs[d]);
      devs[d]->deallocate(cs[d]);
    }
  }
}

[[nodiscard]] bool write_engine_json(const EngineReport& r,
                                     const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  const double launch_speedup =
      r.launch_overhead_ns_engine > 0
          ? r.launch_overhead_ns_seed / r.launch_overhead_ns_engine
          : 0.0;
  const double triad_speedup =
      r.triad_ms_engine > 0 ? r.triad_ms_seed / r.triad_ms_engine : 0.0;
  out << "{\n"
      << "  \"schema\": \"mcmm-engine-bench-v1\",\n"
      << "  \"workers\": " << gpusim::ThreadPool::global().worker_count()
      << ",\n"
      << "  \"launch_overhead\": {\n"
      << "    \"kernel\": \"empty, N=1\",\n"
      << "    \"engine_ns\": " << r.launch_overhead_ns_engine << ",\n"
      << "    \"seed_baseline_ns\": " << r.launch_overhead_ns_seed << ",\n"
      << "    \"speedup\": " << launch_speedup << "\n"
      << "  },\n"
      << "  \"triad\": {\n"
      << "    \"kernel\": \"a[i] = b[i] + scalar * c[i]\",\n"
      << "    \"n\": " << r.triad_n << ",\n"
      << "    \"reps\": " << r.triad_reps << ",\n"
      << "    \"engine_ms\": " << r.triad_ms_engine << ",\n"
      << "    \"seed_baseline_ms\": " << r.triad_ms_seed << ",\n"
      << "    \"speedup\": " << triad_speedup << "\n"
      << "  },\n"
      << "  \"uneven_chunks\": {\n"
      << "    \"kernel\": \"64 work items, item 0 is 256x heavier\",\n"
      << "    \"static_ms\": " << r.uneven_ms_static << ",\n"
      << "    \"dynamic_ms\": " << r.uneven_ms_dynamic << "\n"
      << "  },\n"
      << "  \"profiler\": {\n"
      << "    \"kernel\": \"empty, N=1\",\n"
      << "    \"hooks_off_ns\": " << r.profiler_off_ns << ",\n"
      << "    \"tracing_ns\": " << r.profiler_on_ns << ",\n"
      << "    \"after_disable_ns\": " << r.profiler_after_disable_ns << "\n"
      << "  },\n"
      << "  \"pstlx_percentile_sort\": {\n"
      << "    \"kernel\": \"loadgen u32 latency sort\",\n"
      << "    \"n\": " << r.psort_n << ",\n"
      << "    \"std_sort_ms\": " << r.psort_ms_std << ",\n"
      << "    \"pstlx_host_sort_ms\": " << r.psort_ms_pstlx << ",\n"
      << "    \"speedup\": "
      << (r.psort_ms_pstlx > 0 ? r.psort_ms_std / r.psort_ms_pstlx : 0.0)
      << ",\n"
      << "    \"results_identical\": "
      << (r.psort_identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"pstlx_conflict_scan\": {\n"
      << "    \"kernel\": \"gpusan shadow-log grouping\",\n"
      << "    \"records\": " << r.cscan_records << ",\n"
      << "    \"hashmap_ms\": " << r.cscan_ms_hashmap << ",\n"
      << "    \"pstlx_sort_walk_ms\": " << r.cscan_ms_pstlx << ",\n"
      << "    \"speedup\": "
      << (r.cscan_ms_pstlx > 0 ? r.cscan_ms_hashmap / r.cscan_ms_pstlx : 0.0)
      << ",\n"
      << "    \"results_identical\": "
      << (r.cscan_identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"graph_replay\": {\n"
      << "    \"kernel\": \"chain of empty single-item kernels\",\n"
      << "    \"nodes\": " << r.graph_nodes << ",\n"
      << "    \"eager_ns_per_launch\": " << r.graph_eager_ns << ",\n"
      << "    \"replay_ns_per_node\": " << r.graph_replay_ns << ",\n"
      << "    \"speedup\": "
      << (r.graph_replay_ns > 0 ? r.graph_eager_ns / r.graph_replay_ns : 0.0)
      << ",\n"
      << "    \"budget_ns_per_node\": " << r.graph_eager_ns / 5.0 << ",\n"
      << "    \"within_budget\": "
      << (r.graph_replay_ns * 5.0 <= r.graph_eager_ns ? "true" : "false")
      << ",\n"
      << "    \"stream_n\": " << r.graph_stream_n << ",\n"
      << "    \"results_identical\": "
      << (r.graph_results_identical ? "true" : "false") << ",\n"
      << "    \"sim_time_identical\": "
      << (r.graph_sim_time_identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"multi_device\": {\n"
      << "    \"kernel\": \"Triad weak scaling, n per device\",\n"
      << "    \"n_per_device\": " << r.md_n << ",\n"
      << "    \"sim_us_1\": " << r.md_sim_us_1 << ",\n"
      << "    \"sim_us_2\": " << r.md_sim_us_2 << ",\n"
      << "    \"sim_us_4\": " << r.md_sim_us_4 << ",\n"
      << "    \"gather_p2p_us\": " << r.md_p2p_us << ",\n"
      << "    \"weak_scaling_efficiency\": "
      << (r.md_sim_us_4 > 0 ? r.md_sim_us_1 / r.md_sim_us_4 : 0.0) << ",\n"
      << "    \"results_identical\": "
      << (r.md_results_identical ? "true" : "false") << "\n"
      << "  },\n"
      << "  \"sim_time_identical\": "
      << (r.sim_time_identical ? "true" : "false") << ",\n"
      << "  \"results_identical\": "
      << (r.results_identical ? "true" : "false") << "\n"
      << "}\n";
  std::printf(
      "engine A/B: launch %.2f ns vs seed %.2f ns (%.1fx); "
      "triad(n=%llu) %.2f ms vs seed %.2f ms (%.1fx); "
      "uneven static %.2f ms vs dynamic %.2f ms; sim_time_identical=%s\n",
      r.launch_overhead_ns_engine, r.launch_overhead_ns_seed, launch_speedup,
      static_cast<unsigned long long>(r.triad_n), r.triad_ms_engine,
      r.triad_ms_seed, triad_speedup, r.uneven_ms_static, r.uneven_ms_dynamic,
      r.sim_time_identical ? "true" : "false");
  std::printf(
      "pstlx A/B: percentile sort(n=%llu) std %.2f ms vs pstlx %.2f ms "
      "(identical=%s); conflict scan(%llu records) hashmap %.2f ms vs "
      "sort+walk %.2f ms (identical=%s)\n",
      static_cast<unsigned long long>(r.psort_n), r.psort_ms_std,
      r.psort_ms_pstlx, r.psort_identical ? "true" : "false",
      static_cast<unsigned long long>(r.cscan_records), r.cscan_ms_hashmap,
      r.cscan_ms_pstlx, r.cscan_identical ? "true" : "false");
  std::printf(
      "graph A/B: eager %.2f ns/launch vs replay %.2f ns/node (%.1fx, "
      "%llu nodes); stream capture/replay identical: results=%s "
      "sim_time=%s\n",
      r.graph_eager_ns, r.graph_replay_ns,
      r.graph_replay_ns > 0 ? r.graph_eager_ns / r.graph_replay_ns : 0.0,
      static_cast<unsigned long long>(r.graph_nodes),
      r.graph_results_identical ? "true" : "false",
      r.graph_sim_time_identical ? "true" : "false");
  std::printf(
      "multi-device: Triad weak scaling T1 %.1f us, T2 %.1f us, T4 %.1f "
      "us (gather p2p %.2f us); results_identical=%s\n",
      r.md_sim_us_1, r.md_sim_us_2, r.md_sim_us_4, r.md_p2p_us,
      r.md_results_identical ? "true" : "false");
  std::printf("engine A/B report written to %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_gpusim.json";
  int triad_log2n = 24;
  int triad_reps = 3;
  bool engine_only = false;

  // Strip --engine-* flags; forward the rest to google-benchmark.
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--engine-json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--engine-json="));
    } else if (arg.rfind("--engine-triad-log2n=", 0) == 0) {
      triad_log2n = std::stoi(arg.substr(std::strlen("--engine-triad-log2n=")));
    } else if (arg.rfind("--engine-reps=", 0) == 0) {
      triad_reps = std::stoi(arg.substr(std::strlen("--engine-reps=")));
    } else if (arg == "--engine-only") {
      engine_only = true;
    } else {
      fwd.push_back(argv[i]);
    }
  }
  if (triad_log2n < 1 || triad_log2n > 28) {
    std::fprintf(stderr, "error: --engine-triad-log2n must be in [1, 28]\n");
    return 1;
  }
  if (triad_reps < 1) {
    std::fprintf(stderr, "error: --engine-reps must be >= 1\n");
    return 1;
  }

  if (!engine_only) {
    int fwd_argc = static_cast<int>(fwd.size());
    benchmark::Initialize(&fwd_argc, fwd.data());
    if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }

  EngineReport report =
      run_engine_harness(std::uint64_t{1} << triad_log2n, triad_reps);
  run_profiler_harness(report);
  std::printf(
      "gpuprof A/B: hooks-off %.2f ns, tracing %.2f ns, after disable "
      "%.2f ns per launch\n",
      report.profiler_off_ns, report.profiler_on_ns,
      report.profiler_after_disable_ns);
  run_pstlx_harness(report);
  run_graph_harness(report);
  run_multi_device_harness(report);
  if (!write_engine_json(report, json_path)) return 1;
  const bool all_identical = report.sim_time_identical &&
                             report.results_identical &&
                             report.psort_identical &&
                             report.cscan_identical &&
                             report.graph_results_identical &&
                             report.graph_sim_time_identical &&
                             report.md_results_identical;
  return all_identical ? 0 : 2;
}
