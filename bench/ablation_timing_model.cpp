// Ablation Abl-2: validates the analytic timing model (DESIGN.md Sec. 6):
// simulated kernel time must decompose into launch latency + traffic /
// effective bandwidth, and the simulated bandwidth must converge to the
// descriptor's stream limit as sizes grow.
//
// Each row also reports the *host* wall time of the launch next to the
// simulated time: the two axes are independent (simulated time comes from
// the analytic model, host time from the execution engine), and printing
// both makes that visible — a faster engine must leave the sim column
// untouched.

#include <chrono>
#include <cmath>
#include <iomanip>
#include <iostream>

#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"

int main() {
  using namespace mcmm;
  using namespace mcmm::gpusim;
  using SteadyClock = std::chrono::steady_clock;

  std::cout << "=== Abl-2: analytic timing model validation ===\n\n";
  std::cout << std::fixed << std::setprecision(3);

  bool ok = true;
  for (const Vendor v : kFigureRowOrder) {
    const DeviceDescriptor desc = descriptor_for(v);
    Device dev(desc);
    Queue& q = dev.default_queue();

    std::cout << "--- " << desc.name << " ---\n";
    std::cout << "size_bytes,sim_time_us,model_time_us,host_time_us,"
                 "attained_gbps,limit_gbps\n";
    for (double bytes = 1e4; bytes <= 1e10; bytes *= 100) {
      KernelCosts costs;
      costs.bytes_read = bytes / 2;
      costs.bytes_written = bytes / 2;
      const auto t0 = SteadyClock::now();
      const Event e = q.launch(launch_1d(64, 64), costs,
                               [](const WorkItem&) {});
      const double host_us =
          std::chrono::duration<double, std::micro>(SteadyClock::now() - t0)
              .count();
      const double model = kernel_time_us(desc, q.backend_profile(), costs);
      const double attained = bytes / (e.duration_us() * 1e3);
      const double limit = desc.mem_bandwidth_gbps * kStreamEfficiency;
      std::cout << bytes << ',' << e.duration_us() << ',' << model << ','
                << host_us << ',' << attained << ',' << limit << "\n";
      // The queue must charge exactly the model's time.
      ok = ok && std::fabs(e.duration_us() - model) < 1e-9;
      // Attained bandwidth never exceeds the stream limit.
      ok = ok && attained <= limit * (1.0 + 1e-9);
    }

    // Latency floor: an empty kernel costs exactly the launch latency.
    const auto t0 = SteadyClock::now();
    const Event empty = q.launch(launch_1d(1, 1), KernelCosts{},
                                 [](const WorkItem&) {});
    const double empty_host_us =
        std::chrono::duration<double, std::micro>(SteadyClock::now() - t0)
            .count();
    ok = ok &&
         std::fabs(empty.duration_us() - desc.kernel_launch_latency_us) <
             1e-9;
    std::cout << "empty-kernel latency: " << empty.duration_us()
              << " us simulated (descriptor: " << desc.kernel_launch_latency_us
              << "), " << empty_host_us << " us host\n\n";
  }

  std::cout << (ok ? "PASS" : "FAIL")
            << ": simulated times equal the analytic model and respect "
               "bandwidth ceilings\n";
  return ok ? 0 : 1;
}
