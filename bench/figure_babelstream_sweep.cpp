// Experiment Ext-F2 (sweep): Triad bandwidth vs. array size per native
// model — the "crossover" view showing launch latency dominating small
// problems and bandwidth saturating large ones. Prints one CSV series per
// (vendor, route) suitable for plotting.

#include <iomanip>
#include <iostream>

#include "bench_support/stream.hpp"
#include "gpusim/costs.hpp"

int main() {
  using namespace mcmm;
  std::cout << "=== Ext-F2 sweep: Triad bandwidth vs. array size ===\n\n";
  std::cout << "vendor,route,n,triad_time_us,triad_gbps\n";
  std::cout << std::fixed << std::setprecision(3);

  bool saturation_seen = true;
  for (const Vendor v : kFigureRowOrder) {
    auto benches = bench::stream_benchmarks_for(v);
    // The first bench of each vendor is its most-native route.
    bench::StreamBenchmark& native = *benches.front();
    double last_bw = 0.0;
    for (std::size_t n = 1u << 14; n <= (1u << 24); n <<= 2) {
      const auto results = bench::run_stream(native, n, 3);
      for (const bench::StreamResult& r : results) {
        if (r.kernel != bench::StreamKernel::Triad) continue;
        std::cout << to_string(v) << ',' << r.label << ',' << n << ','
                  << r.best_time_us << ',' << r.bandwidth_gbps << "\n";
        last_bw = r.bandwidth_gbps;
      }
    }
    // At 16 Mi doubles the route must run near the device's stream limit.
    const double limit = gpusim::descriptor_for(v).mem_bandwidth_gbps *
                         gpusim::kStreamEfficiency;
    saturation_seen = saturation_seen && last_bw > 0.85 * limit;
  }

  std::cout << "\n" << (saturation_seen ? "PASS" : "FAIL")
            << ": every native route saturates its device at large sizes\n";
  return saturation_seen ? 0 : 1;
}
