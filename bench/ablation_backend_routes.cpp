// Ablation Abl-1: effect of the software route on attainable bandwidth —
// the same Triad kernel through every route that reaches each vendor,
// normalized to the native route. Quantifies the "backend route
// indirection" design choice (DESIGN.md Sec. 6).

#include <algorithm>
#include <iomanip>
#include <iostream>

#include "bench_support/stream.hpp"
#include "models/stdparx/stdparx.hpp"

int main() {
  using namespace mcmm;
  constexpr std::size_t kN = 1u << 22;
  constexpr int kReps = 3;

  stdparx::enable_experimental_roc_stdpar(true);
  std::cout << "=== Abl-1: Triad bandwidth by software route (normalized "
               "to the platform's best) ===\n\n";
  std::cout << std::fixed << std::setprecision(3);

  bool ordering_ok = true;
  for (const Vendor v : kFigureRowOrder) {
    struct Row {
      std::string label;
      double gbps;
    };
    std::vector<Row> rows;
    for (auto& benchmark : bench::stream_benchmarks_for(v)) {
      const auto results = bench::run_stream(*benchmark, kN, kReps);
      for (const bench::StreamResult& r : results) {
        if (r.kernel == bench::StreamKernel::Triad) {
          rows.push_back({r.label, r.bandwidth_gbps});
        }
      }
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row& a, const Row& b) { return a.gbps > b.gbps; });
    const double best = rows.front().gbps;
    std::cout << "--- " << to_string(v) << " ---\n";
    for (const Row& r : rows) {
      std::cout << "  " << std::left << std::setw(24) << r.label
                << std::right << std::setw(10) << r.gbps << " GB/s  ("
                << std::setprecision(2) << 100.0 * r.gbps / best
                << "% of best)\n"
                << std::setprecision(3);
    }
    std::cout << "\n";
    // The slowest route must still deliver > 50 % of best (no broken
    // routes), and there must be an actual spread (> 5 %).
    ordering_ok = ordering_ok && rows.back().gbps > 0.5 * best &&
                  rows.back().gbps < 0.98 * best;
  }
  stdparx::enable_experimental_roc_stdpar(false);

  std::cout << (ordering_ok ? "PASS" : "FAIL")
            << ": routes show a meaningful but bounded spread on every "
               "platform\n";
  return ordering_ok ? 0 : 1;
}
