// Experiment Ext-F3: the Python row of Fig. 1, executed — a NumPy-shaped
// workload (z = 2x + y; dot(x, y)) run through every package the paper
// names (items 17, 30, 44) on its simulated platform. Shape targets:
// every vendor is reachable from Python; NVIDIA's stack is both
// vendor-provided and community-carried; AMD's routes are experimental
// and visibly slower relative to their platform's native bandwidth.

#include <iomanip>
#include <iostream>
#include <map>

#include "gpusim/costs.hpp"
#include "models/pybindx/pybindx.hpp"

int main() {
  using namespace mcmm;
  using pybindx::Module;
  using pybindx::Package;

  constexpr std::size_t n = 1 << 20;

  std::cout << "=== Ext-F3: Python packages across simulated vendors ===\n";
  std::cout << "workload: z = 2x + y; s = dot(x, y); arrays of " << n
            << " float64\n\n";
  std::cout << std::left << std::setw(14) << "package" << std::setw(8)
            << "vendor" << std::setw(10) << "provider" << std::right
            << std::setw(14) << "sim time us" << std::setw(16)
            << "rel. bandwidth" << "\n";
  std::cout << std::string(62, '-') << "\n";
  std::cout << std::fixed << std::setprecision(1);

  std::map<Vendor, int> packages_per_vendor;
  bool all_correct = true;

  for (const Package pkg :
       {Package::CudaPython, Package::CuPy, Package::Numba,
        Package::CuNumeric, Package::CuPyROCm, Package::PyHIP,
        Package::Dpnp, Package::NumbaDpex}) {
    Module np(pkg);
    const double t0 = np.simulated_time_us();
    const pybindx::ndarray x = np.full(n, 2.0);
    const pybindx::ndarray y = np.full(n, 3.0);
    const pybindx::ndarray z = np.add(np.multiply(x, 2.0), y);
    const double s = np.dot(x, y);
    const double elapsed = np.simulated_time_us() - t0;

    const std::vector<double> host = np.asnumpy(z);
    const bool correct = host[0] == 7.0 && host[n - 1] == 7.0 &&
                         s == 6.0 * static_cast<double>(n);
    all_correct = all_correct && correct;

    const Vendor v = np.vendor();
    packages_per_vendor[v]++;

    // Relative bandwidth vs. the device's stream limit.
    const double limit = gpusim::descriptor_for(v).mem_bandwidth_gbps *
                         gpusim::kStreamEfficiency;
    const double traffic_gb = 10.0 * n * sizeof(double) / 1e9;
    const double gbps = traffic_gb / (elapsed / 1e6);
    std::cout << std::left << std::setw(14) << pybindx::to_string(pkg)
              << std::setw(8) << to_string(v) << std::setw(10)
              << (pybindx::package_vendor_provided(pkg) ? "vendor"
                                                        : "community")
              << std::right << std::setw(14) << elapsed << std::setw(14)
              << 100.0 * gbps / limit << " %"
              << (correct ? "" : "   WRONG RESULT") << "\n";
  }

  bool ok = all_correct;
  // "Python ... is well-supported by all three platforms" (Sec. 6).
  for (const Vendor v : kAllVendors) {
    if (packages_per_vendor[v] < 2) ok = false;
  }
  std::cout << "\npackages per vendor:";
  for (const Vendor v : kAllVendors) {
    std::cout << " " << to_string(v) << "=" << packages_per_vendor[v];
  }
  std::cout << "\n"
            << (ok ? "PASS" : "FAIL")
            << ": Python reaches all three platforms with correct results; "
               "AMD only through experimental community routes\n";
  return ok ? 0 : 1;
}
