// Experiment Ext-T6: the *executable* compatibility matrix — for every
// C++ cell of Fig. 1, attempt to construct the corresponding runtime
// embedding and print runs/translator-only/none next to the paper's
// rating. This audits DESIGN.md design choice 2 (fail-fast support gating
// at construction) across the whole table.

#include <iomanip>
#include <iostream>

#include "data/dataset.hpp"
#include "models/accx/accx.hpp"
#include "models/alpakax/alpakax.hpp"
#include "models/hipx/hipx.hpp"
#include "models/kokkosx/kokkosx.hpp"
#include "models/ompx/ompx.hpp"
#include "models/pybindx/pybindx.hpp"
#include "models/stdparx/stdparx.hpp"
#include "models/syclx/syclx.hpp"

namespace {

using namespace mcmm;

enum class Exec { Runs, TranslatorOnly, None };

[[nodiscard]] const char* to_label(Exec e) {
  switch (e) {
    case Exec::Runs:
      return "runs";
    case Exec::TranslatorOnly:
      return "translator";
    case Exec::None:
      return "none";
  }
  return "?";
}

[[nodiscard]] Exec probe(Model model, Vendor vendor) {
  switch (model) {
    case Model::CUDA:
      return vendor == Vendor::NVIDIA ? Exec::Runs : Exec::TranslatorOnly;
    case Model::HIP: {
      if (vendor != Vendor::Intel) return Exec::Runs;
      // chipStar: experimental opt-in runtime (item 33).
      hipx::enable_experimental_chipstar(true);
      hipx::set_platform(hipx::Platform::intel_chipstar);
      void* p = nullptr;
      const bool ok =
          hipx::hipMalloc(&p, 16) == hipx::hipError_t::hipSuccess;
      if (ok) (void)hipx::hipFree(p);
      hipx::set_platform(hipx::Platform::amd);
      hipx::enable_experimental_chipstar(false);
      return ok ? Exec::Runs : Exec::None;
    }
    case Model::SYCL:
      try {
        const syclx::queue q(vendor, syclx::Implementation::DPCpp);
        return Exec::Runs;
      } catch (const UnsupportedCombination&) {
        return Exec::None;
      }
    case Model::OpenACC:
      for (const auto c : {accx::Compiler::NVHPC, accx::Compiler::GCC,
                           accx::Compiler::Clacc, accx::Compiler::Cray}) {
        if (accx::compiler_targets(c, vendor)) return Exec::Runs;
      }
      return vendor == Vendor::Intel ? Exec::TranslatorOnly : Exec::None;
    case Model::OpenMP:
      for (const auto c :
           {ompx::Compiler::NVHPC, ompx::Compiler::GCC, ompx::Compiler::Clang,
            ompx::Compiler::Cray, ompx::Compiler::AOMP,
            ompx::Compiler::ICPX}) {
        if (ompx::compiler_info(c).targets.contains(vendor)) {
          return Exec::Runs;
        }
      }
      return Exec::None;
    case Model::Standard: {
      stdparx::enable_experimental_roc_stdpar(true);
      Exec result = Exec::None;
      for (const auto r :
           {stdparx::Runtime::NVHPC, stdparx::Runtime::OneDPL,
            stdparx::Runtime::RocStdpar, stdparx::Runtime::OpenSYCL}) {
        try {
          (void)stdparx::par_gpu(vendor, r);
          result = Exec::Runs;
          break;
        } catch (const UnsupportedCombination&) {
        }
      }
      stdparx::enable_experimental_roc_stdpar(false);
      return result;
    }
    case Model::Kokkos:
      for (const auto s :
           {kokkosx::ExecSpace::Cuda, kokkosx::ExecSpace::HIP,
            kokkosx::ExecSpace::SYCL, kokkosx::ExecSpace::OpenMPTarget}) {
        if (kokkosx::exec_space_targets(s, vendor)) return Exec::Runs;
      }
      return Exec::None;
    case Model::Alpaka:
      return Exec::Runs;
    case Model::Python:
      return Exec::Runs;  // pybindx packages exist for every vendor
  }
  return Exec::None;
}

}  // namespace

int main() {
  const CompatibilityMatrix& m = data::paper_matrix();

  std::cout << "=== Ext-T6: executable support matrix vs. Fig. 1 (C++ row "
               "+ Python) ===\n\n";
  std::cout << std::left << std::setw(10) << "model" << std::setw(8)
            << "vendor" << std::setw(26) << "Fig. 1 rating" << std::setw(12)
            << "executable" << "agreement\n";
  std::cout << std::string(66, '-') << "\n";

  bool all_agree = true;
  for (const Model model : kFigureColumnOrder) {
    for (const Vendor vendor : kFigureRowOrder) {
      const Language lang =
          model == Model::Python ? Language::Python : Language::Cpp;
      const SupportEntry& cell = m.at(vendor, model, lang);
      const SupportCategory cat = cell.best_category();
      const Exec exec = probe(model, vendor);

      // Agreement rule: usable cells must be reachable (runs or via a
      // translator pipeline); 'no support' cells must have nothing.
      const bool agree = usable(cat) ? exec != Exec::None
                                     : exec == Exec::None;
      all_agree = all_agree && agree;
      std::cout << std::left << std::setw(10) << to_string(model)
                << std::setw(8) << to_string(vendor) << std::setw(26)
                << category_name(cat) << std::setw(12) << to_label(exec)
                << (agree ? "ok" : "MISMATCH") << "\n";
    }
  }

  std::cout << "\n" << (all_agree ? "PASS" : "FAIL")
            << ": the executable ecosystem agrees with Fig. 1 cell by "
               "cell\n";
  return all_agree ? 0 : 1;
}
