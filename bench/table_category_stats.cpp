// Experiment Text-T3: category statistics behind the paper's narrative —
// per-vendor histograms ("support for NVIDIA GPUs is most comprehensive"),
// per-language coverage ("severely different for Fortran"), per-model
// platform reach.

#include <iostream>

#include "core/statistics.hpp"
#include "data/dataset.hpp"
#include "render/report.hpp"

int main() {
  using namespace mcmm;
  const Statistics stats(data::paper_matrix());
  std::cout << "=== Text-T3: category statistics ===\n\n";
  std::cout << render::statistics_report(stats);

  const bool ok =
      stats.most_comprehensive_vendor() == Vendor::NVIDIA &&
      stats.language(Language::Cpp).coverage_score >
          stats.language(Language::Fortran).coverage_score &&
      stats.model(Model::OpenMP).vendors_usable_fortran == 3;
  std::cout << "\n" << (ok ? "PASS" : "FAIL")
            << ": NVIDIA leads coverage; C++ >> Fortran; OpenMP reaches "
               "all platforms in Fortran\n";
  return ok ? 0 : 1;
}
