// Experiment Ext-T5: the OpenMP feature x compiler compliance matrix in
// the style of the ECP Community BoF support table the paper cites
// (item 9, reference [7]) and the SOLLVE V&V suite ([8], [51]). Every
// (compiler, vendor) pairing from the dataset's OpenMP routes is run
// through the functional battery.

#include <iostream>

#include "validate/validate.hpp"

int main() {
  using namespace mcmm;
  std::cout << "=== Ext-T5: OpenMP offload compliance matrix (SOLLVE-style "
               "V&V) ===\n\n";
  std::cout << validate::openmp_compliance_table() << "\n";

  bool ok = true;
  int pairings = 0;
  for (const validate::ComplianceRow& row :
       validate::openmp_compliance_rows()) {
    ++pairings;
    if (row.failed != 0) ok = false;
    std::cout << ompx::to_string(row.compiler) << "/"
              << to_string(row.vendor) << ": " << row.passed << " pass, "
              << row.unsupported << " unsupported, " << row.failed
              << " fail\n";
  }
  std::cout << "\n" << pairings << " (compiler, vendor) pairings validated\n";
  std::cout << (ok ? "PASS" : "FAIL")
            << ": no claimed feature fails its functional check; gaps are "
               "clean 'unsupported' rejections (the paper's 'subset' "
               "caveats)\n";
  return ok ? 0 : 1;
}
