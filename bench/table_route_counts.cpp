// Experiment Text-T1: the paper's route-counting results — "more than 50
// routes for programming a GPU device are identified when no further
// limitations (pre-)exist" (Sec. 1) and "51 possible combinations ...
// explained in 44 unique descriptions" (Sec. 3).

#include <iomanip>
#include <iostream>
#include <map>

#include "data/dataset.hpp"

int main() {
  using namespace mcmm;
  const CompatibilityMatrix& m = data::paper_matrix();

  std::cout << "=== Text-T1: route counting ===\n\n";

  std::map<Vendor, std::size_t> routes_per_vendor;
  std::map<RouteKind, std::size_t> routes_per_kind;
  std::map<Maturity, std::size_t> routes_per_maturity;
  for (const SupportEntry* e : m.entries()) {
    for (const Route& r : e->routes) {
      routes_per_vendor[e->combo.vendor]++;
      routes_per_kind[r.kind]++;
      routes_per_maturity[r.maturity]++;
    }
  }

  std::cout << "cells (combinations):        " << m.entry_count()
            << "   (paper: 51)\n";
  std::cout << "unique descriptions:         " << m.description_count()
            << "   (paper: 44)\n";
  std::cout << "concrete software routes:    " << m.total_route_count()
            << "   (paper: 'more than 50')\n\n";

  std::cout << "routes per vendor platform:\n";
  for (const auto& [v, n] : routes_per_vendor) {
    std::cout << "  " << std::setw(7) << to_string(v) << ": " << n << "\n";
  }
  std::cout << "routes per kind:\n";
  for (const auto& [k, n] : routes_per_kind) {
    std::cout << "  " << std::setw(11) << to_string(k) << ": " << n << "\n";
  }
  std::cout << "routes per maturity:\n";
  for (const auto& [k, n] : routes_per_maturity) {
    std::cout << "  " << std::setw(13) << to_string(k) << ": " << n << "\n";
  }

  const bool ok = m.entry_count() == 51 && m.description_count() == 44 &&
                  m.total_route_count() > 50;
  std::cout << "\n" << (ok ? "PASS" : "FAIL")
            << ": counts reproduce the paper's Sec. 1/Sec. 3 numbers\n";
  return ok ? 0 : 1;
}
