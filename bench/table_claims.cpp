// Experiment Text-T2: evaluates every structural claim of the paper's
// abstract / Sec. 6 conclusions against the dataset and reports
// paper-said vs. measured.

#include <iostream>

#include "core/claims.hpp"
#include "data/dataset.hpp"
#include "render/report.hpp"

int main() {
  const mcmm::Claims claims(mcmm::data::paper_matrix());
  std::cout << "=== Text-T2: paper claims vs. reproduced dataset ===\n\n";
  std::cout << mcmm::render::claims_report(claims);

  bool all = true;
  for (const mcmm::ClaimResult& r : claims.evaluate_all()) {
    all = all && r.holds;
  }
  std::cout << "\n" << (all ? "PASS" : "FAIL")
            << ": every conclusion of Sec. 6 holds on the reproduction\n";
  return all ? 0 : 1;
}
