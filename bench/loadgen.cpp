// loadgen: an epoll-based keep-alive HTTP load generator for `mcmm serve`
// and `mcmm gateway`, reporting req/s and latency percentiles per
// connection tier into BENCH_serve.json / BENCH_gateway.json
// (EXPERIMENTS.md "Serving the knowledge base" and "Fault injection").
//
//   loadgen [--host H] [--port P] [--connections N[,N2,...]]
//           [--requests M] [--total T] [--json PATH] [--path /v1/...]...
//           [--cluster R] [--fault] [--golden PATH] [--no-nodelay]
//
// One thread drives every connection through a readiness loop — the same
// shape as the server's transport — so a single loadgen process can hold
// tens of thousands of open keep-alive connections (RLIMIT_NOFILE is
// raised to the hard limit at startup). --connections accepts a
// comma-separated ladder of tiers ("8,512,10000"); each tier first ramps
// every connection open (in accept-backlog-sized waves), then issues its
// requests, so the peak concurrently-held connection count equals the
// tier size and is reported as max_held_connections.
//
// With no --port (or --port 0) it starts an in-process `serve::Server` on
// an ephemeral loopback port first — the CI perf job and the ctest smoke
// run need no orchestration. --cluster R instead forks R serve replicas
// and fronts them with an in-process `gateway::Gateway`, so the whole
// replicated stack runs from one binary. Every connection issues M
// pipeline-free keep-alive requests round-robin over the path mix (every
// 8th request is a conditional GET revalidating a captured ETag, so the
// 304 path is exercised under load too). Any response other than 200/304 —
// or any transport error — counts as a failure and fails the run.
//
// --total T divides T requests evenly over a tier's connections instead
// of the per-connection --requests M — the 10k-connection tier wants
// "many connections, a few requests each", not 10k x 5000.
//
// --fault SIGKILLs one replica once a third of the total requests have
// completed: through the gateway the run must still finish with zero
// failures (health ejection + budgeted retries absorb the crash). With an
// external target, the victim pid is discovered via /gateway/replicas.
// --golden FILE byte-compares every non-conditional 200 body on a
// "format=txt" path against FILE, proving proxied bytes are unmodified.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "gateway/gateway.hpp"
#include "gateway/supervisor.hpp"
#include "pstlx/host.hpp"
#include "serve/server.hpp"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = start an in-process server (or cluster)
  std::vector<unsigned> tiers{8};
  unsigned requests = 5000;  // per connection
  std::uint64_t total = 0;   // per tier; overrides --requests when set
  std::string json_path = "BENCH_serve.json";
  std::vector<std::string> paths;
  unsigned cluster = 0;  // replicas behind an in-process gateway
  bool fault = false;    // SIGKILL one replica mid-run
  bool nodelay = true;   // TCP_NODELAY on client sockets (--no-nodelay)
  std::string golden_path;  // byte-match 200 bodies on format=txt paths
};

struct TierResult {
  unsigned connections = 0;
  unsigned requests_per_connection = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t golden_mismatches = 0;
  unsigned max_held = 0;  // peak concurrently-open connections
  double ramp_seconds = 0.0;
  double elapsed_seconds = 0.0;
  double rps = 0.0;
  std::uint32_t p50 = 0, p90 = 0, p99 = 0, worst = 0;
  std::map<int, std::uint64_t> by_status;
};

/// Requests completed across all tiers, for fault-injection timing.
std::atomic<std::uint64_t> g_completed{0};

/// Raises RLIMIT_NOFILE soft -> hard; returns the effective soft limit.
unsigned long raise_nofile_limit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < lim.rlim_max) {
    rlimit want = lim;
    want.rlim_cur = lim.rlim_max;
    if (::setrlimit(RLIMIT_NOFILE, &want) == 0) lim = want;
  }
  if (lim.rlim_cur == RLIM_INFINITY) return 1u << 20;
  return static_cast<unsigned long>(lim.rlim_cur);
}

/// Minimal blocking HTTP/1.1 client over one keep-alive connection, for
/// the one-shot control-plane requests (pid discovery, /metrics scrape).
class Client {
 public:
  bool connect_to(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_request(const std::string& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one response; returns the status code (or -1 on transport
  /// error) and the body when `body` is non-null.
  int read_response(std::string* body = nullptr) {
    std::string headers;
    std::size_t header_end = std::string::npos;
    for (;;) {
      header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) break;
      if (!fill()) return -1;
    }
    headers = buffer_.substr(0, header_end + 4);
    buffer_.erase(0, header_end + 4);

    if (headers.rfind("HTTP/1.1 ", 0) != 0 || headers.size() < 12) return -1;
    const int status = std::atoi(headers.c_str() + 9);

    std::size_t content_length = 0;
    const std::size_t cl = headers.find("\r\nContent-Length: ");
    if (cl != std::string::npos) {
      content_length = std::strtoul(headers.c_str() + cl + 18, nullptr, 10);
    }
    while (buffer_.size() < content_length) {
      if (!fill()) return -1;
    }
    if (body != nullptr) body->assign(buffer_, 0, content_length);
    buffer_.erase(0, content_length);
    return status;
  }

 private:
  bool fill() {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_{-1};
  std::string buffer_;
};

/// One GET with Connection: close; empty string unless the answer is 200.
std::string http_get_once(const std::string& host, int port,
                          const std::string& path) {
  Client client;
  if (!client.connect_to(host, port)) return {};
  if (!client.send_request("GET " + path + " HTTP/1.1\r\nHost: " + host +
                           "\r\nConnection: close\r\n\r\n")) {
    return {};
  }
  std::string body;
  return client.read_response(&body) == 200 ? body : std::string{};
}

/// The readiness-loop engine: one thread, one epoll set, every connection
/// a small state machine (mirror of the server's transport). Connections
/// ramp open in waves no larger than the server's listen backlog, then
/// hold open for the whole tier; a connection that finishes its requests
/// idles instead of closing, so the tier's concurrency stays at its peak.
class LoadEngine {
 public:
  LoadEngine(const Options& opt, const std::string& golden)
      : opt_(opt), golden_(golden) {}

  TierResult run_tier(unsigned connections, unsigned per_conn) {
    out_ = TierResult{};
    TierResult& out = out_;
    out.connections = connections;
    out.requests_per_connection = per_conn;

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      out.failed = static_cast<std::uint64_t>(connections) * per_conn;
      return out;
    }
    conns_.assign(connections, Conn{});
    for (Conn& c : conns_) c.etags.assign(opt_.paths.size(), std::string{});
    per_conn_ = per_conn;
    latencies_.clear();
    latencies_.reserve(static_cast<std::size_t>(connections) * per_conn);
    held_ = 0;
    out.max_held = 0;

    // Phase 1: ramp every connection open. Waves stay below the server's
    // listen backlog so no SYN is dropped into a 1s kernel retry.
    const auto ramp_t0 = std::chrono::steady_clock::now();
    std::size_t next_dial = 0;
    std::size_t settled = 0;  // connected or failed
    std::size_t dialing = 0;
    constexpr std::size_t kWave = 256;
    while (settled < conns_.size()) {
      while (dialing < kWave && next_dial < conns_.size()) {
        Conn& c = conns_[next_dial];
        c.index = next_dial;
        ++next_dial;
        if (dial(c)) {
          ++dialing;
        } else {
          conn_failed(c, out);
          ++settled;
        }
      }
      if (dialing == 0) continue;
      epoll_event events[256];
      const int n = ::epoll_wait(epoll_fd_, events, 256, 1000);
      for (int i = 0; i < n; ++i) {
        Conn& c = *static_cast<Conn*>(events[i].data.ptr);
        if (c.phase != Phase::Connecting) continue;
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        --dialing;
        ++settled;
        if (err != 0) {
          conn_failed(c, out);
          continue;
        }
        c.phase = Phase::Ready;
        ++held_;
        out.max_held = std::max(out.max_held, held_);
      }
    }
    out.ramp_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      ramp_t0)
            .count();

    // Phase 2: every open connection issues its requests.
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t active = 0;
    for (Conn& c : conns_) {
      if (c.phase != Phase::Ready) continue;
      ++active;
      next_request(c);
    }
    auto last_progress = std::chrono::steady_clock::now();
    std::uint64_t last_completed = out.completed;
    while (active > 0) {
      epoll_event events[256];
      const int n = ::epoll_wait(epoll_fd_, events, 256, 1000);
      for (int i = 0; i < n; ++i) {
        Conn& c = *static_cast<Conn*>(events[i].data.ptr);
        const bool was_live = c.phase == Phase::Sending ||
                              c.phase == Phase::Receiving;
        if (!was_live) continue;
        if (c.phase == Phase::Sending) try_send(c, out);
        if (c.phase == Phase::Receiving) try_recv(c, out);
        if (c.phase == Phase::Idle || c.phase == Phase::Failed) --active;
      }
      const auto now = std::chrono::steady_clock::now();
      if (out.completed != last_completed) {
        last_completed = out.completed;
        last_progress = now;
      } else if (now - last_progress > std::chrono::seconds(30)) {
        // Total stall: fail whatever is still in flight rather than hang.
        for (Conn& c : conns_) {
          if (c.phase == Phase::Sending || c.phase == Phase::Receiving) {
            conn_failed(c, out);
            --active;
          }
        }
      }
    }
    out.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    out.rps = out.elapsed_seconds > 0
                  ? static_cast<double>(out.completed) / out.elapsed_seconds
                  : 0.0;

    for (Conn& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
      c.fd = -1;
    }
    ::close(epoll_fd_);
    epoll_fd_ = -1;

    // Parallel percentile sort (pstlx host path over the worker pool);
    // small runs take its serial cutoff, big sweeps fan out.
    mcmm::pstlx::sort(mcmm::pstlx::host_policy{}, latencies_.begin(),
                      latencies_.end());
    out.p50 = percentile(0.50);
    out.p90 = percentile(0.90);
    out.p99 = percentile(0.99);
    out.worst = latencies_.empty() ? 0 : latencies_.back();
    return out;
  }

 private:
  enum class Phase : std::uint8_t {
    Unused,
    Connecting,
    Ready,      // connected, no request in flight (barrier / all done)
    Sending,
    Receiving,
    Idle,       // finished all its requests; held open until tier end
    Failed
  };

  struct Conn {
    int fd{-1};
    Phase phase{Phase::Unused};
    std::size_t index{0};
    unsigned done{0};  // requests completed on this connection
    std::size_t send_off{0};
    bool conditional{false};
    bool check_golden{false};
    std::size_t which{0};
    std::string request;
    std::string buffer;
    std::vector<std::string> etags;
    std::chrono::steady_clock::time_point t0;
  };

  bool dial(Conn& c) {
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (c.fd < 0) return false;
    if (opt_.nodelay) {
      int one = 1;
      ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(opt_.port));
    if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
      return false;
    }
    const int rc =
        ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    if (rc != 0 && errno != EINPROGRESS) return false;
    c.phase = Phase::Connecting;
    epoll_event ev{};
    ev.events = EPOLLOUT;
    ev.data.ptr = &c;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c.fd, &ev);
    return true;
  }

  void rearm(Conn& c, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = &c;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
  }

  void conn_failed(Conn& c, TierResult& out) {
    if (c.fd >= 0) {
      ::close(c.fd);
      c.fd = -1;
    }
    if (c.phase == Phase::Sending || c.phase == Phase::Receiving ||
        c.phase == Phase::Ready) {
      // The rest of this connection's quota can never complete.
      out.failed += per_conn_ - c.done;
      if (held_ > 0) --held_;
    } else {
      out.failed += per_conn_;  // never connected
    }
    c.phase = Phase::Failed;
  }

  void next_request(Conn& c) {
    if (c.done >= per_conn_) {
      // Hold the connection open until tier end, but drop it from the
      // epoll set: a level-triggered EPOLLHUP from a server-side idle
      // eviction would otherwise spin the loop.
      c.phase = Phase::Idle;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
      return;
    }
    c.which = c.done % opt_.paths.size();
    c.conditional = (c.done % 8 == 7) && !c.etags[c.which].empty();
    c.check_golden = !golden_.empty() && !c.conditional &&
                     opt_.paths[c.which].find("format=txt") !=
                         std::string::npos;
    c.request = "GET " + opt_.paths[c.which] +
                " HTTP/1.1\r\nHost: " + opt_.host + "\r\n";
    if (c.conditional) {
      c.request += "If-None-Match: " + c.etags[c.which] + "\r\n";
    }
    c.request += "\r\n";
    c.send_off = 0;
    c.phase = Phase::Sending;
    c.t0 = std::chrono::steady_clock::now();
    try_send(c, out_);
  }

  void try_send(Conn& c, TierResult& out) {
    while (c.send_off < c.request.size()) {
      const ssize_t n = ::send(c.fd, c.request.data() + c.send_off,
                               c.request.size() - c.send_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          rearm(c, EPOLLOUT);
          return;
        }
        conn_failed(c, out);
        return;
      }
      c.send_off += static_cast<std::size_t>(n);
    }
    c.phase = Phase::Receiving;
    rearm(c, EPOLLIN | EPOLLRDHUP);
  }

  void try_recv(Conn& c, TierResult& out) {
    char chunk[16384];
    for (;;) {
      const ssize_t n = ::recv(c.fd, chunk, sizeof chunk, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        conn_failed(c, out);
        return;
      }
      if (n == 0) {
        conn_failed(c, out);
        return;
      }
      c.buffer.append(chunk, static_cast<std::size_t>(n));
      if (finish_response(c, out)) {
        if (c.phase != Phase::Receiving) return;  // idle/failed; stop reading
        continue;  // next request already sent; keep draining
      }
    }
  }

  /// Tries to complete the in-flight response from c.buffer. Returns true
  /// when a full response was consumed (and the next request started).
  bool finish_response(Conn& c, TierResult& out) {
    const std::size_t header_end = c.buffer.find("\r\n\r\n");
    if (header_end == std::string::npos) return false;
    const std::string_view headers(c.buffer.data(), header_end + 4);
    if (headers.substr(0, 9) != "HTTP/1.1 " || headers.size() < 12) {
      conn_failed(c, out);
      return true;
    }
    const int status = std::atoi(c.buffer.c_str() + 9);
    std::size_t content_length = 0;
    const std::size_t cl = headers.find("\r\nContent-Length: ");
    if (cl != std::string_view::npos) {
      content_length = std::strtoul(c.buffer.c_str() + cl + 18, nullptr, 10);
    }
    if (c.buffer.size() < header_end + 4 + content_length) return false;

    const auto usec = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - c.t0)
                          .count();
    std::string etag;
    const std::size_t at = headers.find("\r\nETag: ");
    if (at != std::string_view::npos) {
      const std::size_t start = at + 8;
      const std::size_t end = headers.find('\r', start);
      etag.assign(headers.substr(start, end - start));
    }

    ++out.by_status[status];
    const bool expected = c.conditional ? status == 304 : status == 200;
    if (!expected) ++out.failed;
    if (c.check_golden && status == 200) {
      const std::string_view body(c.buffer.data() + header_end + 4,
                                  content_length);
      if (body != golden_) {
        ++out.golden_mismatches;
        ++out.failed;
      }
    }
    if (!etag.empty()) c.etags[c.which] = etag;
    latencies_.push_back(static_cast<std::uint32_t>(usec));
    ++out.completed;
    g_completed.fetch_add(1, std::memory_order_relaxed);

    c.buffer.erase(0, header_end + 4 + content_length);
    ++c.done;
    next_request(c);
    return true;
  }

  std::uint32_t percentile(double p) {
    if (latencies_.empty()) return 0;
    const auto rank = static_cast<std::size_t>(
        p * static_cast<double>(latencies_.size() - 1) + 0.5);
    return latencies_[std::min(rank, latencies_.size() - 1)];
  }

  const Options& opt_;
  const std::string& golden_;
  int epoll_fd_{-1};
  unsigned per_conn_{0};
  unsigned held_{0};
  std::vector<Conn> conns_;
  std::vector<std::uint32_t> latencies_;
  TierResult out_;  // the in-progress tier; next_request() feeds it
};

/// Extracts the integer after `"key":` in a flat JSON object; -1 if absent.
long json_long_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtol(body.c_str() + at + needle.size(), nullptr, 10);
}

/// Value of an un-labelled Prometheus sample, or 0 when absent.
std::uint64_t scrape_counter(const std::string& text,
                             const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::strtoull(line.c_str() + name.size() + 1, nullptr, 10);
    }
  }
  return 0;
}

int usage() {
  std::cerr << "usage: loadgen [--host H] [--port P]\n"
               "               [--connections N[,N2,...]] [--requests M]\n"
               "               [--total T] [--json PATH] [--path /v1/..]\n"
               "               [--cluster R] [--fault] [--golden FILE]\n"
               "               [--no-nodelay]\n"
               "(no --port: starts an in-process mcmm serve first;\n"
               " --connections accepts a comma-separated tier ladder;\n"
               " --total T: T requests per tier, divided over connections;\n"
               " --cluster R: forks R replicas behind an in-process "
               "gateway;\n"
               " --fault: SIGKILL one replica once a third of the run is "
               "done;\n"
               " --golden FILE: byte-match 200 format=txt bodies against "
               "FILE)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--host") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.host = v;
    } else if (a == "--port") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.port = std::atoi(v);
    } else if (a == "--connections") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.tiers.clear();
      std::istringstream list(v);
      std::string item;
      while (std::getline(list, item, ',')) {
        const int n = std::atoi(item.c_str());
        if (n <= 0) return usage();
        opt.tiers.push_back(static_cast<unsigned>(n));
      }
      if (opt.tiers.empty()) return usage();
    } else if (a == "--requests") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.requests = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--total") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.total = std::strtoull(v, nullptr, 10);
    } else if (a == "--json") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.json_path = v;
    } else if (a == "--path") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.paths.emplace_back(v);
    } else if (a == "--cluster") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.cluster = static_cast<unsigned>(std::atoi(v));
      if (opt.cluster == 0 || opt.cluster > 64) return usage();
    } else if (a == "--fault") {
      opt.fault = true;
    } else if (a == "--no-nodelay") {
      opt.nodelay = false;
    } else if (a == "--golden") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.golden_path = v;
    } else {
      return usage();
    }
  }
  if (opt.tiers.empty() || (opt.requests == 0 && opt.total == 0)) {
    return usage();
  }
  if (opt.cluster > 0 && opt.port != 0) {
    std::cerr << "loadgen: --cluster starts its own gateway; drop --port\n";
    return 2;
  }
  if (opt.fault && opt.cluster == 0 && opt.port == 0) {
    std::cerr << "loadgen: --fault needs --cluster or a gateway --port\n";
    return 2;
  }
  if (opt.paths.empty()) {
    // Default mix: the acceptance-criterion render, a cell lookup, the
    // claims document, and the cheap liveness probe.
    opt.paths = {"/v1/matrix?format=txt", "/v1/cell/AMD/SYCL/C%2B%2B",
                 "/v1/claims", "/healthz"};
  }

  const unsigned long fd_budget = raise_nofile_limit();
  const unsigned biggest_tier =
      *std::max_element(opt.tiers.begin(), opt.tiers.end());
  const bool in_process = opt.port == 0;  // server shares this fd table
  const unsigned long fd_needed =
      static_cast<unsigned long>(biggest_tier) * (in_process ? 2 : 1) + 256;
  if (fd_needed > fd_budget) {
    std::cerr << "loadgen: tier of " << biggest_tier << " connections needs ~"
              << fd_needed << " fds but RLIMIT_NOFILE allows " << fd_budget
              << (in_process
                      ? "; target an external server (--host/--port) so "
                        "client and server draw on separate fd tables, or "
                        "raise ulimit -n\n"
                      : "; raise ulimit -n\n");
    return 2;
  }

  std::string golden;
  if (!opt.golden_path.empty()) {
    std::ifstream in(opt.golden_path, std::ios::binary);
    if (!in) {
      std::cerr << "loadgen: cannot read " << opt.golden_path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    golden = buf.str();
  }

  // In-process targets. The forked cluster must exist before any thread
  // does (gateway construction starts the health prober).
  std::vector<mcmm::gateway::ReplicaProcess> replicas;
  std::unique_ptr<mcmm::gateway::Gateway> gateway;
  std::unique_ptr<mcmm::serve::Server> server;
  if (opt.cluster > 0) {
    mcmm::gateway::SupervisorConfig sup;
    replicas = mcmm::gateway::spawn_replicas(opt.cluster, sup);
    std::vector<mcmm::gateway::ReplicaEndpoint> backends;
    backends.reserve(replicas.size());
    for (const auto& r : replicas) {
      backends.push_back(mcmm::gateway::ReplicaEndpoint{"127.0.0.1", r.port});
    }
    mcmm::gateway::GatewayConfig cfg;
    cfg.port = 0;
    gateway =
        std::make_unique<mcmm::gateway::Gateway>(std::move(backends), cfg);
    gateway->start();
    opt.port = gateway->port();
    opt.host = "127.0.0.1";
    std::cout << "loadgen: started " << opt.cluster
              << "-replica in-process gateway on 127.0.0.1:" << opt.port
              << "\n";
  } else if (opt.port == 0) {
    mcmm::serve::ServerConfig cfg;
    cfg.port = 0;
    server = std::make_unique<mcmm::serve::Server>(
        mcmm::data::paper_matrix(), cfg);
    server->start();
    opt.port = server->port();
    opt.host = "127.0.0.1";
    std::cout << "loadgen: started in-process mcmm serve on 127.0.0.1:"
              << opt.port << "\n";
  }

  // Per-tier request quota.
  const auto tier_per_conn = [&opt](unsigned conns) -> unsigned {
    if (opt.total == 0) return opt.requests;
    const std::uint64_t per = opt.total / conns;
    return static_cast<unsigned>(std::max<std::uint64_t>(per, 1));
  };

  // Fault injection: once a third of the run has completed, SIGKILL one
  // replica — a forked one directly, an external one via the pid the
  // gateway's /gateway/replicas endpoint reports.
  std::uint64_t total = 0;
  for (const unsigned conns : opt.tiers) {
    total += static_cast<std::uint64_t>(conns) * tier_per_conn(conns);
  }
  std::atomic<bool> fault_stop{false};
  long fault_pid = -1;
  std::thread fault_thread;
  if (opt.fault) {
    if (!replicas.empty()) {
      fault_pid = replicas.front().pid;
    } else {
      const std::string body =
          http_get_once(opt.host, opt.port, "/gateway/replicas");
      fault_pid = json_long_field(body, "pid");
      if (fault_pid <= 0) {
        std::cerr << "loadgen: --fault could not discover a replica pid "
                     "from /gateway/replicas\n";
        return 2;
      }
    }
    fault_thread = std::thread([&fault_stop, fault_pid, total] {
      while (!fault_stop.load(std::memory_order_relaxed)) {
        if (g_completed.load(std::memory_order_relaxed) >= total / 3) {
          ::kill(static_cast<pid_t>(fault_pid), SIGKILL);
          std::cout << "loadgen: FAULT injected — SIGKILLed replica pid "
                    << fault_pid << "\n";
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  LoadEngine engine(opt, golden);
  std::vector<TierResult> results;
  std::uint64_t failures = 0;
  std::uint64_t golden_mismatches = 0;
  std::uint64_t completed = 0;
  std::map<int, std::uint64_t> by_status;
  for (const unsigned conns : opt.tiers) {
    const unsigned per_conn = tier_per_conn(conns);
    TierResult tier = engine.run_tier(conns, per_conn);
    std::cout << "loadgen: tier " << conns << " connections x " << per_conn
              << " keep-alive requests: held " << tier.max_held
              << " open, completed " << tier.completed << ", failed "
              << tier.failed << ", "
              << static_cast<std::uint64_t>(tier.rps) << " req/s\n"
              << "  latency usec: p50 " << tier.p50 << ", p90 " << tier.p90
              << ", p99 " << tier.p99 << ", max " << tier.worst << "\n";
    failures += tier.failed;
    golden_mismatches += tier.golden_mismatches;
    completed += tier.completed;
    for (const auto& [code, n] : tier.by_status) by_status[code] += n;
    results.push_back(std::move(tier));
  }

  if (fault_thread.joinable()) {
    fault_stop.store(true, std::memory_order_relaxed);
    fault_thread.join();
  }

  // Resiliency counters, captured before teardown: directly from the
  // in-process gateway, or scraped from an external gateway's /metrics.
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t budget_exhausted = 0;
  const bool gateway_run = opt.cluster > 0 || opt.fault;
  if (gateway != nullptr) {
    const auto& m = gateway->gateway_metrics();
    retries = m.retries_total();
    hedges = m.hedges_total();
    hedge_wins = m.hedge_wins_total();
    budget_exhausted = m.budget_exhausted_total();
  } else if (gateway_run) {
    const std::string text = http_get_once(opt.host, opt.port, "/metrics");
    retries = scrape_counter(text, "mcmm_gateway_retries_total");
    hedges = scrape_counter(text, "mcmm_gateway_hedges_total");
    hedge_wins = scrape_counter(text, "mcmm_gateway_hedge_wins_total");
    budget_exhausted =
        scrape_counter(text, "mcmm_gateway_retry_budget_exhausted_total");
  }

  if (gateway != nullptr) {
    gateway->shutdown();
    gateway->join();
  }
  if (!replicas.empty()) {
    mcmm::gateway::terminate_replicas(replicas, 5000);
  }
  if (server != nullptr) {
    server->shutdown();
    server->join();
  }

  std::cout << "loadgen: all tiers: completed " << completed << ", failed "
            << failures << "\n";
  for (const auto& [code, n] : by_status) {
    std::cout << "  status " << code << ": " << n << "\n";
  }
  if (gateway_run) {
    std::cout << "  gateway: retries " << retries << ", hedges " << hedges
              << " (won " << hedge_wins << "), budget-exhausted "
              << budget_exhausted << "\n";
  }
  if (!golden.empty()) {
    std::cout << "  golden: " << golden_mismatches << " mismatch(es)\n";
  }

  std::ofstream json(opt.json_path);
  json << "{\n  \"schema\": \""
       << (gateway_run ? "mcmm-gateway-bench-v2" : "mcmm-serve-bench-v2")
       << "\",\n"
       << "  \"completed_requests\": " << completed << ",\n"
       << "  \"failed_requests\": " << failures << ",\n"
       << "  \"nodelay\": " << (opt.nodelay ? "true" : "false") << ",\n"
       << "  \"tiers\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TierResult& t = results[i];
    char rps_text[32];
    std::snprintf(rps_text, sizeof rps_text, "%.0f", t.rps);
    json << "    {\"connections\": " << t.connections
         << ", \"requests_per_connection\": " << t.requests_per_connection
         << ", \"max_held_connections\": " << t.max_held
         << ", \"completed\": " << t.completed
         << ", \"failed\": " << t.failed
         << ", \"ramp_seconds\": " << t.ramp_seconds
         << ", \"elapsed_seconds\": " << t.elapsed_seconds
         << ", \"requests_per_second\": " << rps_text
         << ", \"latency_usec\": {\"p50\": " << t.p50 << ", \"p90\": "
         << t.p90 << ", \"p99\": " << t.p99 << ", \"max\": " << t.worst
         << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  if (gateway_run) {
    json << "  \"replicas\": " << (opt.cluster > 0 ? opt.cluster : 0)
         << ",\n"
         << "  \"fault_injected\": " << (opt.fault ? "true" : "false")
         << ",\n"
         << "  \"retries\": " << retries << ",\n"
         << "  \"hedges\": " << hedges << ",\n"
         << "  \"hedge_wins\": " << hedge_wins << ",\n"
         << "  \"retry_budget_exhausted\": " << budget_exhausted << ",\n";
  }
  if (!golden.empty()) {
    json << "  \"golden_mismatches\": " << golden_mismatches << ",\n";
  }
  json << "  \"status_counts\": {";
  bool first = true;
  for (const auto& [code, n] : by_status) {
    if (!first) json << ", ";
    first = false;
    json << "\"" << code << "\": " << n;
  }
  json << "},\n  \"paths\": [";
  first = true;
  for (const std::string& p : opt.paths) {
    if (!first) json << ", ";
    first = false;
    json << "\"" << p << "\"";
  }
  json << "]\n}\n";
  std::cout << "wrote " << opt.json_path << "\n";

  return failures == 0 ? 0 : 1;
}
