// loadgen: a multi-connection keep-alive HTTP load generator for
// `mcmm serve`, reporting req/s and latency percentiles into
// BENCH_serve.json (EXPERIMENTS.md "Serving the knowledge base").
//
//   loadgen [--host H] [--port P] [--connections N] [--requests M]
//           [--json PATH] [--path /v1/...]...
//
// With no --port (or --port 0) it starts an in-process `serve::Server` on
// an ephemeral loopback port first — the CI perf job and the ctest smoke
// run need no orchestration. Every connection issues M pipeline-free
// keep-alive requests round-robin over the path mix (every 8th request is
// a conditional GET revalidating a captured ETag, so the 304 path is
// exercised under load too). Any response other than 200/304 — or any
// transport error — counts as a failure and fails the run.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "serve/server.hpp"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = start an in-process server
  unsigned connections = 8;
  unsigned requests = 5000;  // per connection
  std::string json_path = "BENCH_serve.json";
  std::vector<std::string> paths;
};

struct ConnectionStats {
  std::vector<std::uint32_t> latencies_usec;
  std::map<int, std::uint64_t> by_status;
  std::uint64_t failures = 0;  // transport errors + unexpected statuses
};

/// Minimal blocking HTTP/1.1 client over one keep-alive connection.
class Client {
 public:
  bool connect_to(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_request(const std::string& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one response; returns the status code (or -1 on transport
  /// error) and stores the ETag header value when present.
  int read_response(std::string* etag) {
    std::string headers;
    std::size_t header_end = std::string::npos;
    for (;;) {
      header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) break;
      if (!fill()) return -1;
    }
    headers = buffer_.substr(0, header_end + 4);
    buffer_.erase(0, header_end + 4);

    if (headers.rfind("HTTP/1.1 ", 0) != 0 || headers.size() < 12) return -1;
    const int status = std::atoi(headers.c_str() + 9);

    if (etag != nullptr) {
      const std::size_t pos = headers.find("\r\nETag: ");
      if (pos != std::string::npos) {
        const std::size_t start = pos + 8;
        const std::size_t end = headers.find('\r', start);
        *etag = headers.substr(start, end - start);
      }
    }

    std::size_t content_length = 0;
    const std::size_t cl = headers.find("\r\nContent-Length: ");
    if (cl != std::string::npos) {
      content_length = std::strtoul(headers.c_str() + cl + 18, nullptr, 10);
    }
    while (buffer_.size() < content_length) {
      if (!fill()) return -1;
    }
    buffer_.erase(0, content_length);
    return status;
  }

 private:
  bool fill() {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_{-1};
  std::string buffer_;
};

void run_connection(const Options& opt, ConnectionStats& stats) {
  Client client;
  if (!client.connect_to(opt.host, opt.port)) {
    stats.failures += opt.requests;
    return;
  }
  stats.latencies_usec.reserve(opt.requests);
  std::vector<std::string> etags(opt.paths.size());
  for (unsigned i = 0; i < opt.requests; ++i) {
    const std::size_t which = i % opt.paths.size();
    const bool conditional = (i % 8 == 7) && !etags[which].empty();
    std::string request = "GET " + opt.paths[which] +
                          " HTTP/1.1\r\nHost: " + opt.host + "\r\n";
    if (conditional) request += "If-None-Match: " + etags[which] + "\r\n";
    request += "\r\n";

    const auto t0 = std::chrono::steady_clock::now();
    std::string etag;
    const int status =
        client.send_request(request) ? client.read_response(&etag) : -1;
    const auto usec = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (status < 0) {
      // Connection is unusable from here on; count the remainder as failed.
      stats.failures += opt.requests - i;
      return;
    }
    ++stats.by_status[status];
    const bool expected = conditional ? status == 304 : status == 200;
    if (!expected) ++stats.failures;
    if (!etag.empty()) etags[which] = etag;
    stats.latencies_usec.push_back(static_cast<std::uint32_t>(usec));
  }
}

std::uint32_t percentile(std::vector<std::uint32_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

int usage() {
  std::cerr << "usage: loadgen [--host H] [--port P] [--connections N]\n"
               "               [--requests M] [--json PATH] [--path /v1/..]\n"
               "(no --port: starts an in-process mcmm serve first)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--host") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.host = v;
    } else if (a == "--port") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.port = std::atoi(v);
    } else if (a == "--connections") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.connections = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--requests") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.requests = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--json") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.json_path = v;
    } else if (a == "--path") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.paths.emplace_back(v);
    } else {
      return usage();
    }
  }
  if (opt.connections == 0 || opt.requests == 0) return usage();
  if (opt.paths.empty()) {
    // Default mix: the acceptance-criterion render, a cell lookup, the
    // claims document, and the cheap liveness probe.
    opt.paths = {"/v1/matrix?format=txt", "/v1/cell/AMD/SYCL/C%2B%2B",
                 "/v1/claims", "/healthz"};
  }

  // In-process server when no target was given.
  std::unique_ptr<mcmm::serve::Server> server;
  if (opt.port == 0) {
    mcmm::serve::ServerConfig cfg;
    cfg.port = 0;
    server = std::make_unique<mcmm::serve::Server>(
        mcmm::data::paper_matrix(), cfg);
    server->start();
    opt.port = server->port();
    opt.host = "127.0.0.1";
    std::cout << "loadgen: started in-process mcmm serve on 127.0.0.1:"
              << opt.port << "\n";
  }

  std::vector<ConnectionStats> stats(opt.connections);
  std::vector<std::thread> threads;
  threads.reserve(opt.connections);
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < opt.connections; ++c) {
    threads.emplace_back(
        [&opt, &stats, c] { run_connection(opt, stats[c]); });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (server != nullptr) {
    server->shutdown();
    server->join();
  }

  std::vector<std::uint32_t> all;
  std::map<int, std::uint64_t> by_status;
  std::uint64_t failures = 0;
  for (const ConnectionStats& s : stats) {
    all.insert(all.end(), s.latencies_usec.begin(), s.latencies_usec.end());
    for (const auto& [code, n] : s.by_status) by_status[code] += n;
    failures += s.failures;
  }
  std::sort(all.begin(), all.end());
  const std::uint64_t completed = all.size();
  const double rps =
      elapsed > 0 ? static_cast<double>(completed) / elapsed : 0.0;
  const std::uint32_t p50 = percentile(all, 0.50);
  const std::uint32_t p90 = percentile(all, 0.90);
  const std::uint32_t p99 = percentile(all, 0.99);
  const std::uint32_t worst = all.empty() ? 0 : all.back();

  char rps_text[32];
  std::snprintf(rps_text, sizeof rps_text, "%.0f", rps);
  std::cout << "loadgen: " << opt.connections << " connections x "
            << opt.requests << " keep-alive requests over " << elapsed
            << " s\n"
            << "  completed " << completed << ", failed " << failures << ", "
            << rps_text << " req/s\n"
            << "  latency usec: p50 " << p50 << ", p90 " << p90 << ", p99 "
            << p99 << ", max " << worst << "\n";
  for (const auto& [code, n] : by_status) {
    std::cout << "  status " << code << ": " << n << "\n";
  }

  std::ofstream json(opt.json_path);
  json << "{\n  \"schema\": \"mcmm-serve-bench-v1\",\n"
       << "  \"connections\": " << opt.connections << ",\n"
       << "  \"requests_per_connection\": " << opt.requests << ",\n"
       << "  \"completed_requests\": " << completed << ",\n"
       << "  \"failed_requests\": " << failures << ",\n"
       << "  \"elapsed_seconds\": " << elapsed << ",\n"
       << "  \"requests_per_second\": " << rps_text << ",\n"
       << "  \"latency_usec\": {\"p50\": " << p50 << ", \"p90\": " << p90
       << ", \"p99\": " << p99 << ", \"max\": " << worst << "},\n"
       << "  \"status_counts\": {";
  bool first = true;
  for (const auto& [code, n] : by_status) {
    if (!first) json << ", ";
    first = false;
    json << "\"" << code << "\": " << n;
  }
  json << "},\n  \"paths\": [";
  first = true;
  for (const std::string& p : opt.paths) {
    if (!first) json << ", ";
    first = false;
    json << "\"" << p << "\"";
  }
  json << "]\n}\n";
  std::cout << "wrote " << opt.json_path << "\n";

  return failures == 0 ? 0 : 1;
}
