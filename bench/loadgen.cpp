// loadgen: a multi-connection keep-alive HTTP load generator for
// `mcmm serve` and `mcmm gateway`, reporting req/s and latency percentiles
// into BENCH_serve.json / BENCH_gateway.json (EXPERIMENTS.md "Serving the
// knowledge base" and "Fault injection").
//
//   loadgen [--host H] [--port P] [--connections N] [--requests M]
//           [--json PATH] [--path /v1/...]... [--cluster R] [--fault]
//           [--golden PATH]
//
// With no --port (or --port 0) it starts an in-process `serve::Server` on
// an ephemeral loopback port first — the CI perf job and the ctest smoke
// run need no orchestration. --cluster R instead forks R serve replicas
// and fronts them with an in-process `gateway::Gateway`, so the whole
// replicated stack runs from one binary. Every connection issues M
// pipeline-free keep-alive requests round-robin over the path mix (every
// 8th request is a conditional GET revalidating a captured ETag, so the
// 304 path is exercised under load too). Any response other than 200/304 —
// or any transport error — counts as a failure and fails the run.
//
// --fault SIGKILLs one replica once a third of the total requests have
// completed: through the gateway the run must still finish with zero
// failures (health ejection + budgeted retries absorb the crash). With an
// external target, the victim pid is discovered via /gateway/replicas.
// --golden FILE byte-compares every non-conditional 200 body on a
// "format=txt" path against FILE, proving proxied bytes are unmodified.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.hpp"
#include "gateway/gateway.hpp"
#include "gateway/supervisor.hpp"
#include "serve/server.hpp"

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = start an in-process server (or cluster)
  unsigned connections = 8;
  unsigned requests = 5000;  // per connection
  std::string json_path = "BENCH_serve.json";
  std::vector<std::string> paths;
  unsigned cluster = 0;  // replicas behind an in-process gateway
  bool fault = false;    // SIGKILL one replica mid-run
  std::string golden_path;  // byte-match 200 bodies on format=txt paths
};

struct ConnectionStats {
  std::vector<std::uint32_t> latencies_usec;
  std::map<int, std::uint64_t> by_status;
  std::uint64_t failures = 0;  // transport errors + unexpected statuses
  std::uint64_t golden_mismatches = 0;
};

/// Requests completed across all connections, for fault-injection timing.
std::atomic<std::uint64_t> g_completed{0};

/// Minimal blocking HTTP/1.1 client over one keep-alive connection.
class Client {
 public:
  bool connect_to(const std::string& host, int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return false;
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) ==
           0;
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool send_request(const std::string& wire) {
    std::size_t off = 0;
    while (off < wire.size()) {
      const ssize_t n =
          ::send(fd_, wire.data() + off, wire.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Reads one response; returns the status code (or -1 on transport
  /// error), stores the ETag header value when present, and the body when
  /// `body` is non-null (it is skipped otherwise).
  int read_response(std::string* etag, std::string* body = nullptr) {
    std::string headers;
    std::size_t header_end = std::string::npos;
    for (;;) {
      header_end = buffer_.find("\r\n\r\n");
      if (header_end != std::string::npos) break;
      if (!fill()) return -1;
    }
    headers = buffer_.substr(0, header_end + 4);
    buffer_.erase(0, header_end + 4);

    if (headers.rfind("HTTP/1.1 ", 0) != 0 || headers.size() < 12) return -1;
    const int status = std::atoi(headers.c_str() + 9);

    if (etag != nullptr) {
      const std::size_t pos = headers.find("\r\nETag: ");
      if (pos != std::string::npos) {
        const std::size_t start = pos + 8;
        const std::size_t end = headers.find('\r', start);
        *etag = headers.substr(start, end - start);
      }
    }

    std::size_t content_length = 0;
    const std::size_t cl = headers.find("\r\nContent-Length: ");
    if (cl != std::string::npos) {
      content_length = std::strtoul(headers.c_str() + cl + 18, nullptr, 10);
    }
    while (buffer_.size() < content_length) {
      if (!fill()) return -1;
    }
    if (body != nullptr) body->assign(buffer_, 0, content_length);
    buffer_.erase(0, content_length);
    return status;
  }

 private:
  bool fill() {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_{-1};
  std::string buffer_;
};

/// One GET with Connection: close; empty string unless the answer is 200.
std::string http_get_once(const std::string& host, int port,
                          const std::string& path) {
  Client client;
  if (!client.connect_to(host, port)) return {};
  if (!client.send_request("GET " + path + " HTTP/1.1\r\nHost: " + host +
                           "\r\nConnection: close\r\n\r\n")) {
    return {};
  }
  std::string body;
  return client.read_response(nullptr, &body) == 200 ? body : std::string{};
}

void run_connection(const Options& opt, const std::string& golden,
                    ConnectionStats& stats) {
  Client client;
  if (!client.connect_to(opt.host, opt.port)) {
    stats.failures += opt.requests;
    return;
  }
  stats.latencies_usec.reserve(opt.requests);
  std::vector<std::string> etags(opt.paths.size());
  for (unsigned i = 0; i < opt.requests; ++i) {
    const std::size_t which = i % opt.paths.size();
    const bool conditional = (i % 8 == 7) && !etags[which].empty();
    const bool check_golden =
        !golden.empty() && !conditional &&
        opt.paths[which].find("format=txt") != std::string::npos;
    std::string request = "GET " + opt.paths[which] +
                          " HTTP/1.1\r\nHost: " + opt.host + "\r\n";
    if (conditional) request += "If-None-Match: " + etags[which] + "\r\n";
    request += "\r\n";

    const auto t0 = std::chrono::steady_clock::now();
    std::string etag;
    std::string body;
    const int status =
        client.send_request(request)
            ? client.read_response(&etag, check_golden ? &body : nullptr)
            : -1;
    const auto usec = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (status < 0) {
      // Connection is unusable from here on; count the remainder as failed.
      stats.failures += opt.requests - i;
      return;
    }
    ++stats.by_status[status];
    const bool expected = conditional ? status == 304 : status == 200;
    if (!expected) ++stats.failures;
    if (check_golden && status == 200 && body != golden) {
      ++stats.golden_mismatches;
      ++stats.failures;
    }
    if (!etag.empty()) etags[which] = etag;
    stats.latencies_usec.push_back(static_cast<std::uint32_t>(usec));
    g_completed.fetch_add(1, std::memory_order_relaxed);
  }
}

std::uint32_t percentile(std::vector<std::uint32_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// Extracts the integer after `"key":` in a flat JSON object; -1 if absent.
long json_long_field(const std::string& body, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return -1;
  return std::strtol(body.c_str() + at + needle.size(), nullptr, 10);
}

/// Value of an un-labelled Prometheus sample, or 0 when absent.
std::uint64_t scrape_counter(const std::string& text,
                             const std::string& name) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(name + " ", 0) == 0) {
      return std::strtoull(line.c_str() + name.size() + 1, nullptr, 10);
    }
  }
  return 0;
}

int usage() {
  std::cerr << "usage: loadgen [--host H] [--port P] [--connections N]\n"
               "               [--requests M] [--json PATH] [--path /v1/..]\n"
               "               [--cluster R] [--fault] [--golden FILE]\n"
               "(no --port: starts an in-process mcmm serve first;\n"
               " --cluster R: forks R replicas behind an in-process "
               "gateway;\n"
               " --fault: SIGKILL one replica once a third of the run is "
               "done;\n"
               " --golden FILE: byte-match 200 format=txt bodies against "
               "FILE)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--host") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.host = v;
    } else if (a == "--port") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.port = std::atoi(v);
    } else if (a == "--connections") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.connections = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--requests") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.requests = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--json") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.json_path = v;
    } else if (a == "--path") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.paths.emplace_back(v);
    } else if (a == "--cluster") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.cluster = static_cast<unsigned>(std::atoi(v));
      if (opt.cluster == 0 || opt.cluster > 64) return usage();
    } else if (a == "--fault") {
      opt.fault = true;
    } else if (a == "--golden") {
      const char* v = value();
      if (v == nullptr) return usage();
      opt.golden_path = v;
    } else {
      return usage();
    }
  }
  if (opt.connections == 0 || opt.requests == 0) return usage();
  if (opt.cluster > 0 && opt.port != 0) {
    std::cerr << "loadgen: --cluster starts its own gateway; drop --port\n";
    return 2;
  }
  if (opt.fault && opt.cluster == 0 && opt.port == 0) {
    std::cerr << "loadgen: --fault needs --cluster or a gateway --port\n";
    return 2;
  }
  if (opt.paths.empty()) {
    // Default mix: the acceptance-criterion render, a cell lookup, the
    // claims document, and the cheap liveness probe.
    opt.paths = {"/v1/matrix?format=txt", "/v1/cell/AMD/SYCL/C%2B%2B",
                 "/v1/claims", "/healthz"};
  }

  std::string golden;
  if (!opt.golden_path.empty()) {
    std::ifstream in(opt.golden_path, std::ios::binary);
    if (!in) {
      std::cerr << "loadgen: cannot read " << opt.golden_path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    golden = buf.str();
  }

  // In-process targets. The forked cluster must exist before any thread
  // does (gateway construction starts the health prober).
  std::vector<mcmm::gateway::ReplicaProcess> replicas;
  std::unique_ptr<mcmm::gateway::Gateway> gateway;
  std::unique_ptr<mcmm::serve::Server> server;
  if (opt.cluster > 0) {
    mcmm::gateway::SupervisorConfig sup;
    replicas = mcmm::gateway::spawn_replicas(opt.cluster, sup);
    std::vector<mcmm::gateway::ReplicaEndpoint> backends;
    backends.reserve(replicas.size());
    for (const auto& r : replicas) {
      backends.push_back(mcmm::gateway::ReplicaEndpoint{"127.0.0.1", r.port});
    }
    mcmm::gateway::GatewayConfig cfg;
    cfg.port = 0;
    gateway =
        std::make_unique<mcmm::gateway::Gateway>(std::move(backends), cfg);
    gateway->start();
    opt.port = gateway->port();
    opt.host = "127.0.0.1";
    std::cout << "loadgen: started " << opt.cluster
              << "-replica in-process gateway on 127.0.0.1:" << opt.port
              << "\n";
  } else if (opt.port == 0) {
    mcmm::serve::ServerConfig cfg;
    cfg.port = 0;
    server = std::make_unique<mcmm::serve::Server>(
        mcmm::data::paper_matrix(), cfg);
    server->start();
    opt.port = server->port();
    opt.host = "127.0.0.1";
    std::cout << "loadgen: started in-process mcmm serve on 127.0.0.1:"
              << opt.port << "\n";
  }

  // Fault injection: once a third of the run has completed, SIGKILL one
  // replica — a forked one directly, an external one via the pid the
  // gateway's /gateway/replicas endpoint reports.
  const std::uint64_t total =
      static_cast<std::uint64_t>(opt.connections) * opt.requests;
  std::atomic<bool> fault_stop{false};
  long fault_pid = -1;
  std::thread fault_thread;
  if (opt.fault) {
    if (!replicas.empty()) {
      fault_pid = replicas.front().pid;
    } else {
      const std::string body =
          http_get_once(opt.host, opt.port, "/gateway/replicas");
      fault_pid = json_long_field(body, "pid");
      if (fault_pid <= 0) {
        std::cerr << "loadgen: --fault could not discover a replica pid "
                     "from /gateway/replicas\n";
        return 2;
      }
    }
    fault_thread = std::thread([&fault_stop, fault_pid, total] {
      while (!fault_stop.load(std::memory_order_relaxed)) {
        if (g_completed.load(std::memory_order_relaxed) >= total / 3) {
          ::kill(static_cast<pid_t>(fault_pid), SIGKILL);
          std::cout << "loadgen: FAULT injected — SIGKILLed replica pid "
                    << fault_pid << "\n";
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  std::vector<ConnectionStats> stats(opt.connections);
  std::vector<std::thread> threads;
  threads.reserve(opt.connections);
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < opt.connections; ++c) {
    threads.emplace_back(
        [&opt, &golden, &stats, c] { run_connection(opt, golden, stats[c]); });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (fault_thread.joinable()) {
    fault_stop.store(true, std::memory_order_relaxed);
    fault_thread.join();
  }

  // Resiliency counters, captured before teardown: directly from the
  // in-process gateway, or scraped from an external gateway's /metrics.
  std::uint64_t retries = 0;
  std::uint64_t hedges = 0;
  std::uint64_t hedge_wins = 0;
  std::uint64_t budget_exhausted = 0;
  const bool gateway_run = opt.cluster > 0 || opt.fault;
  if (gateway != nullptr) {
    const auto& m = gateway->gateway_metrics();
    retries = m.retries_total();
    hedges = m.hedges_total();
    hedge_wins = m.hedge_wins_total();
    budget_exhausted = m.budget_exhausted_total();
  } else if (gateway_run) {
    const std::string text = http_get_once(opt.host, opt.port, "/metrics");
    retries = scrape_counter(text, "mcmm_gateway_retries_total");
    hedges = scrape_counter(text, "mcmm_gateway_hedges_total");
    hedge_wins = scrape_counter(text, "mcmm_gateway_hedge_wins_total");
    budget_exhausted =
        scrape_counter(text, "mcmm_gateway_retry_budget_exhausted_total");
  }

  if (gateway != nullptr) {
    gateway->shutdown();
    gateway->join();
  }
  if (!replicas.empty()) {
    mcmm::gateway::terminate_replicas(replicas, 5000);
  }
  if (server != nullptr) {
    server->shutdown();
    server->join();
  }

  std::vector<std::uint32_t> all;
  std::map<int, std::uint64_t> by_status;
  std::uint64_t failures = 0;
  std::uint64_t golden_mismatches = 0;
  for (const ConnectionStats& s : stats) {
    all.insert(all.end(), s.latencies_usec.begin(), s.latencies_usec.end());
    for (const auto& [code, n] : s.by_status) by_status[code] += n;
    failures += s.failures;
    golden_mismatches += s.golden_mismatches;
  }
  std::sort(all.begin(), all.end());
  const std::uint64_t completed = all.size();
  const double rps =
      elapsed > 0 ? static_cast<double>(completed) / elapsed : 0.0;
  const std::uint32_t p50 = percentile(all, 0.50);
  const std::uint32_t p90 = percentile(all, 0.90);
  const std::uint32_t p99 = percentile(all, 0.99);
  const std::uint32_t worst = all.empty() ? 0 : all.back();

  char rps_text[32];
  std::snprintf(rps_text, sizeof rps_text, "%.0f", rps);
  std::cout << "loadgen: " << opt.connections << " connections x "
            << opt.requests << " keep-alive requests over " << elapsed
            << " s\n"
            << "  completed " << completed << ", failed " << failures << ", "
            << rps_text << " req/s\n"
            << "  latency usec: p50 " << p50 << ", p90 " << p90 << ", p99 "
            << p99 << ", max " << worst << "\n";
  for (const auto& [code, n] : by_status) {
    std::cout << "  status " << code << ": " << n << "\n";
  }
  if (gateway_run) {
    std::cout << "  gateway: retries " << retries << ", hedges " << hedges
              << " (won " << hedge_wins << "), budget-exhausted "
              << budget_exhausted << "\n";
  }
  if (!golden.empty()) {
    std::cout << "  golden: " << golden_mismatches << " mismatch(es)\n";
  }

  std::ofstream json(opt.json_path);
  json << "{\n  \"schema\": \""
       << (gateway_run ? "mcmm-gateway-bench-v1" : "mcmm-serve-bench-v1")
       << "\",\n"
       << "  \"connections\": " << opt.connections << ",\n"
       << "  \"requests_per_connection\": " << opt.requests << ",\n"
       << "  \"completed_requests\": " << completed << ",\n"
       << "  \"failed_requests\": " << failures << ",\n"
       << "  \"elapsed_seconds\": " << elapsed << ",\n"
       << "  \"requests_per_second\": " << rps_text << ",\n"
       << "  \"latency_usec\": {\"p50\": " << p50 << ", \"p90\": " << p90
       << ", \"p99\": " << p99 << ", \"max\": " << worst << "},\n";
  if (gateway_run) {
    json << "  \"replicas\": " << (opt.cluster > 0 ? opt.cluster : 0)
         << ",\n"
         << "  \"fault_injected\": " << (opt.fault ? "true" : "false")
         << ",\n"
         << "  \"retries\": " << retries << ",\n"
         << "  \"hedges\": " << hedges << ",\n"
         << "  \"hedge_wins\": " << hedge_wins << ",\n"
         << "  \"retry_budget_exhausted\": " << budget_exhausted << ",\n";
  }
  if (!golden.empty()) {
    json << "  \"golden_mismatches\": " << golden_mismatches << ",\n";
  }
  json << "  \"status_counts\": {";
  bool first = true;
  for (const auto& [code, n] : by_status) {
    if (!first) json << ", ";
    first = false;
    json << "\"" << code << "\": " << n;
  }
  json << "},\n  \"paths\": [";
  first = true;
  for (const std::string& p : opt.paths) {
    if (!first) json << ", ";
    first = false;
    json << "\"" << p << "\"";
  }
  json << "]\n}\n";
  std::cout << "wrote " << opt.json_path << "\n";

  return failures == 0 ? 0 : 1;
}
