#pragma once
// A faithful in-process replica of the seed execution engine, kept so the
// perf harness can A/B the rebuilt engine against its predecessor inside
// one binary (no cross-run noise, no git checkout). Reproduces the seed's
// host-side costs exactly:
//
//   - mutex + condition_variable fork-join with a shared task vector
//     (one lock round-trip to enqueue, one per chunk completion, one to
//     join) and a shared remaining_/first_error_ per-pool state;
//   - std::function chunk bodies constructed per launch;
//   - per-element work_item_from_linear div/mod decomposition;
//   - the seed's single-chunk inline shortcut and its degenerate-chunk
//     skip (begin >= end chunks are dropped);
//   - the seed kernel_time_us arithmetic with no zero-cost fast path.
//
// This is benchmark scaffolding, not production code: nothing outside the
// harness should include it.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "gpusim/costs.hpp"
#include "gpusim/descriptor.hpp"
#include "gpusim/dim3.hpp"

namespace mcmm::bench::baseline {

class SeedThreadPool {
 public:
  explicit SeedThreadPool(unsigned workers = 0) {
    if (workers == 0) {
      workers = std::max(2u, std::thread::hardware_concurrency());
    }
    threads_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~SeedThreadPool() {
    {
      const std::lock_guard lock(mutex_);
      stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  SeedThreadPool(const SeedThreadPool&) = delete;
  SeedThreadPool& operator=(const SeedThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  void parallel_for_chunks(
      std::uint64_t n,
      const std::function<void(std::uint64_t, std::uint64_t)>& body) {
    if (n == 0) return;
    const std::uint64_t workers = worker_count();
    const std::uint64_t chunks = std::min<std::uint64_t>(workers, n);
    const std::uint64_t chunk_size = (n + chunks - 1) / chunks;

    if (chunks == 1) {
      body(0, n);
      return;
    }

    {
      const std::lock_guard lock(mutex_);
      for (std::uint64_t c = 0; c < chunks; ++c) {
        const std::uint64_t begin = c * chunk_size;
        const std::uint64_t end = std::min(n, begin + chunk_size);
        if (begin >= end) continue;
        tasks_.push_back(Task{&body, begin, end});
        ++remaining_;
      }
    }
    work_ready_.notify_all();

    std::unique_lock lock(mutex_);
    work_done_.wait(lock, [this] { return remaining_ == 0; });
    if (first_error_) {
      const std::exception_ptr error = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  struct Task {
    const std::function<void(std::uint64_t, std::uint64_t)>* body{};
    std::uint64_t begin{};
    std::uint64_t end{};
  };

  void worker_loop() {
    for (;;) {
      Task task;
      {
        std::unique_lock lock(mutex_);
        work_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
        if (stop_ && tasks_.empty()) return;
        task = tasks_.back();
        tasks_.pop_back();
      }
      std::exception_ptr error;
      try {
        (*task.body)(task.begin, task.end);
      } catch (...) {
        error = std::current_exception();
      }
      {
        const std::lock_guard lock(mutex_);
        if (error && !first_error_) first_error_ = error;
        if (--remaining_ == 0) work_done_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> tasks_;
  std::size_t remaining_{0};
  std::exception_ptr first_error_;
  bool stop_{false};
};

/// The seed kernel_time_us: always runs the divides, no zero-cost branch.
[[nodiscard]] inline double seed_kernel_time_us(
    const gpusim::DeviceDescriptor& dev, const gpusim::BackendProfile& profile,
    const gpusim::KernelCosts& costs) {
  const double bw_gbps = dev.mem_bandwidth_gbps * gpusim::kStreamEfficiency *
                         profile.bandwidth_efficiency;
  const double mem_us = costs.total_bytes() / (bw_gbps * 1e3);
  const double flops_per_us =
      dev.peak_tflops_fp64 * 1e6 * profile.compute_efficiency;
  const double compute_us =
      flops_per_us > 0 ? costs.flops / flops_per_us : 0.0;
  return dev.kernel_launch_latency_us + profile.extra_launch_latency_us +
         std::max(mem_us, compute_us);
}

/// A seed Queue stand-in: just the launch host path and the simulated
/// clock (the parts the harness times). Memory stays caller-managed.
class SeedQueue {
 public:
  SeedQueue(const gpusim::DeviceDescriptor& descriptor, SeedThreadPool& pool)
      : descriptor_(&descriptor), pool_(&pool) {}

  template <typename Body>
  double launch(const gpusim::LaunchConfig& cfg,
                const gpusim::KernelCosts& costs, Body&& body) {
    const std::uint64_t total = cfg.total_threads();
    const std::function<void(std::uint64_t, std::uint64_t)> chunk =
        [&](std::uint64_t begin, std::uint64_t end) {
          for (std::uint64_t i = begin; i < end; ++i) {
            body(gpusim::work_item_from_linear(cfg, i));
          }
        };
    pool_->parallel_for_chunks(total, chunk);
    sim_time_us_ += seed_kernel_time_us(*descriptor_, profile_, costs);
    return sim_time_us_;
  }

  [[nodiscard]] double simulated_time_us() const noexcept {
    return sim_time_us_;
  }

 private:
  const gpusim::DeviceDescriptor* descriptor_;
  SeedThreadPool* pool_;
  gpusim::BackendProfile profile_{};
  double sim_time_us_{0};
};

}  // namespace mcmm::bench::baseline
