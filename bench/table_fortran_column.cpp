// Experiment Text-T7: the paper's Fortran conclusion as a table — "While
// the C++ support appears to be well on the way to good compatibility and
// portability, the situation looks severely different for Fortran. The
// only natively supported programming model on all three platforms is
// OpenMP" (Sec. 6).

#include <iomanip>
#include <iostream>

#include "core/statistics.hpp"
#include "data/dataset.hpp"

int main() {
  using namespace mcmm;
  const CompatibilityMatrix& m = data::paper_matrix();

  std::cout << "=== Text-T7: the Fortran column, model by model ===\n\n";
  std::cout << std::left << std::setw(10) << "model";
  for (const Vendor v : kFigureRowOrder) {
    std::cout << std::setw(26) << to_string(v);
  }
  std::cout << "\n" << std::string(88, '-') << "\n";

  Model vendor_native_everywhere = Model::Python;  // sentinel
  int count_native_everywhere = 0;
  for (const Model model : kFigureColumnOrder) {
    if (model == Model::Python) continue;
    std::cout << std::left << std::setw(10) << to_string(model);
    int native_vendors = 0;
    for (const Vendor v : kFigureRowOrder) {
      const SupportEntry& e = m.at(v, model, Language::Fortran);
      std::string cell(category_name(e.best_category()));
      const bool native = std::any_of(
          e.ratings.begin(), e.ratings.end(),
          [](const Rating& r) { return vendor_provided(r.category); });
      if (native) {
        cell += " (vendor)";
        ++native_vendors;
      }
      std::cout << std::setw(26) << cell;
    }
    std::cout << "\n";
    if (native_vendors == 3) {
      vendor_native_everywhere = model;
      ++count_native_everywhere;
    }
  }

  const Statistics stats(m);
  const LanguageStats& cpp = stats.language(Language::Cpp);
  const LanguageStats& f = stats.language(Language::Fortran);
  std::cout << "\nC++ cells usable:     " << cpp.usable_cells << "/"
            << cpp.total_cells << " (mean score " << std::fixed
            << std::setprecision(2) << cpp.coverage_score << ")\n";
  std::cout << "Fortran cells usable: " << f.usable_cells << "/"
            << f.total_cells << " (mean score " << f.coverage_score
            << ")\n";
  std::cout << "models vendor-native in Fortran on all three platforms: "
            << count_native_everywhere << " ("
            << (count_native_everywhere == 1
                    ? std::string(to_string(vendor_native_everywhere))
                    : "?")
            << ")\n";

  const bool ok = count_native_everywhere == 1 &&
                  vendor_native_everywhere == Model::OpenMP &&
                  f.coverage_score < 0.6 * cpp.coverage_score;
  std::cout << "\n" << (ok ? "PASS" : "FAIL")
            << ": OpenMP is the only vendor-native Fortran model on all "
               "three platforms; Fortran coverage is severely thinner\n";
  return ok ? 0 : 1;
}
