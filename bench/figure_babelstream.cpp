// Experiment Ext-F2: the BabelStream-style performance-portability figure
// the paper names as its natural extension (Sec. 5 "Performance
// Evaluation", Sec. 6 future work). One row per (model route, vendor,
// kernel) with attainable simulated bandwidth.
//
// Shape targets (from the BabelStream literature the paper cites):
//   - the native model attains the highest bandwidth on its platform;
//   - mature portability layers are within ~10 % of native;
//   - experimental/translated routes trail visibly;
//   - the H100-class device leads in absolute bandwidth.

#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_support/stream.hpp"
#include "models/stdparx/stdparx.hpp"
#include "yamlx/device_yaml.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;
  std::size_t n = 1u << 22;  // 4 Mi doubles per array, BabelStream-ish
  int reps = 5;
  if (argc > 1) n = static_cast<std::size_t>(std::stoull(argv[1]));
  if (argc > 2) reps = std::stoi(argv[2]);
  // Optional: benchmark a custom device configuration ("what would this
  // look like on next year's part?") — replaces the vendor's simulated
  // device for this run.
  if (argc > 4 && std::string(argv[3]) == "--device") {
    std::ifstream in(argv[4]);
    if (!in) {
      std::cerr << "cannot read device config " << argv[4] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const gpusim::DeviceDescriptor custom =
        yamlx::descriptor_from_yaml_text(buffer.str());
    gpusim::Platform::instance().reset_device(custom.vendor, custom);
    std::cout << "custom device loaded: " << custom.name << " ("
              << custom.mem_bandwidth_gbps << " GB/s)\n";
  }

  // Include AMD's in-development stdpar route so the figure shows the
  // 'limited support' tier too.
  stdparx::enable_experimental_roc_stdpar(true);

  std::cout << "=== Ext-F2: BabelStream across models and simulated "
               "vendors ===\n";
  std::cout << "arrays: 3 x " << n << " doubles, " << reps
            << " repetitions, best simulated time per kernel\n\n";

  bool all_verified = true;
  for (const Vendor v : kFigureRowOrder) {
    std::vector<bench::StreamResult> results;
    for (auto& benchmark : bench::stream_benchmarks_for(v)) {
      const auto r = bench::run_stream(*benchmark, n, reps);
      results.insert(results.end(), r.begin(), r.end());
      for (const bench::StreamResult& s : r) {
        all_verified = all_verified && s.verified;
      }
    }
    std::cout << "--- " << to_string(v) << " (simulated "
              << gpusim::descriptor_for(v).name << ") ---\n";
    std::cout << bench::format_stream_table(results) << "\n";
  }

  stdparx::enable_experimental_roc_stdpar(false);
  std::cout << (all_verified ? "PASS" : "FAIL")
            << ": all routes produced verified results\n";
  return all_verified ? 0 : 1;
}
