// Experiment Ext-F2: the BabelStream-style performance-portability figure
// the paper names as its natural extension (Sec. 5 "Performance
// Evaluation", Sec. 6 future work). One row per (model route, vendor,
// kernel) with attainable simulated bandwidth.
//
// Shape targets (from the BabelStream literature the paper cites):
//   - the native model attains the highest bandwidth on its platform;
//   - mature portability layers are within ~10 % of native;
//   - experimental/translated routes trail visibly;
//   - the H100-class device leads in absolute bandwidth.

#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_support/stream.hpp"
#include "gpuprof/gpuprof.hpp"
#include "models/stdparx/stdparx.hpp"
#include "yamlx/device_yaml.hpp"

int main(int argc, char** argv) {
  using namespace mcmm;
  // gpuprof flags first (position-independent): --profile traces the whole
  // sweep and appends the per-kernel roofline attribution per vendor;
  // --profile-trace additionally writes the chrome://tracing timeline.
  bool profile = false;
  std::string trace_path;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--profile") {
      profile = true;
    } else if (a == "--profile-trace" && i + 1 < argc) {
      profile = true;
      trace_path = argv[++i];
    } else {
      args.push_back(a);
    }
  }
  std::size_t n = 1u << 22;  // 4 Mi doubles per array, BabelStream-ish
  int reps = 5;
  if (args.size() > 0) n = static_cast<std::size_t>(std::stoull(args[0]));
  if (args.size() > 1) reps = std::stoi(args[1]);
  // Optional: benchmark a custom device configuration ("what would this
  // look like on next year's part?") — replaces the vendor's simulated
  // device for this run.
  if (args.size() > 3 && args[2] == "--device") {
    std::ifstream in(args[3]);
    if (!in) {
      std::cerr << "cannot read device config " << args[3] << "\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const gpusim::DeviceDescriptor custom =
        yamlx::descriptor_from_yaml_text(buffer.str());
    gpusim::Platform::instance().reset_device(custom.vendor, custom);
    std::cout << "custom device loaded: " << custom.name << " ("
              << custom.mem_bandwidth_gbps << " GB/s)\n";
  }

  // Include AMD's in-development stdpar route so the figure shows the
  // 'limited support' tier too.
  stdparx::enable_experimental_roc_stdpar(true);

  if (profile) {
    gpuprof::reset();
    gpuprof::enable();
  }

  std::cout << "=== Ext-F2: BabelStream across models and simulated "
               "vendors ===\n";
  std::cout << "arrays: 3 x " << n << " doubles, " << reps
            << " repetitions, best simulated time per kernel\n\n";

  bool all_verified = true;
  for (const Vendor v : kFigureRowOrder) {
    std::vector<bench::StreamResult> results;
    for (auto& benchmark : bench::stream_benchmarks_for(v)) {
      const auto r = bench::run_stream(*benchmark, n, reps);
      results.insert(results.end(), r.begin(), r.end());
      for (const bench::StreamResult& s : r) {
        all_verified = all_verified && s.verified;
      }
    }
    std::cout << "--- " << to_string(v) << " (simulated "
              << gpusim::descriptor_for(v).name << ") ---\n";
    std::cout << bench::format_stream_table(results) << "\n";
  }

  stdparx::enable_experimental_roc_stdpar(false);

  if (profile) {
    const gpuprof::Trace trace = gpuprof::finalize();
    std::cout << trace.text_report();
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "cannot write " << trace_path << "\n";
        return 2;
      }
      out << trace.chrome_json();
      std::cout << "chrome trace written to " << trace_path << "\n";
    }
    all_verified = all_verified && !trace.empty();
  }

  std::cout << (all_verified ? "PASS" : "FAIL")
            << ": all routes produced verified results\n";
  return all_verified ? 0 : 1;
}
