// mcmm: the command-line front door to the compatibility knowledge base —
// the "concise table and detailed comments" of the paper as a tool.
//
//   mcmm table [text|markdown|html|latex|csv]   print Fig. 1
//   mcmm describe <item|vendor model language>  one Sec. 4 description
//   mcmm advise <language> [vendors...] [--vendor-only] [--min tier]
//   mcmm claims                                 evaluate the paper claims
//   mcmm stats                                  category statistics
//   mcmm excluded                               Sec. 5 excluded models
//   mcmm export <dir>                           YAML + rendered artifacts
//   mcmm diff <before.yaml> <after.yaml>        snapshot changelog
//   mcmm sanitize [...]                         gpusan the simulated GPU
//   mcmm profile [...]                          gpuprof trace & roofline
//   mcmm perfbench [...]                        perf-portability campaign (Fig. 2)
//   mcmm graph [...]                            kernel-graph capture/replay demo
//   mcmm serve [--port N] [--threads N]         HTTP/JSON query service
//   mcmm gateway --backend host:port [...]      reverse proxy over replicas
//   mcmm cluster <replicas> [...]               forked replica fleet + proxy

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support/stream.hpp"
#include "core/claims.hpp"
#include "core/diff.hpp"
#include "gpuprof/gpuprof.hpp"
#include "core/error.hpp"
#include "core/planner.hpp"
#include "core/statistics.hpp"
#include "data/dataset.hpp"
#include "data/excluded.hpp"
#include "gpusan/fixtures.hpp"
#include "gpusan/gpusan.hpp"
#include "gpusim/descriptor.hpp"
#include "gpusim/device.hpp"
#include "gpusim/graph.hpp"
#include "perfport/perfport.hpp"
#include "render/perf.hpp"
#include "render/render.hpp"
#include "render/report.hpp"
#include "gateway/gateway.hpp"
#include "gateway/supervisor.hpp"
#include "serve/server.hpp"
#include "yamlx/matrix_yaml.hpp"

#include <csignal>

namespace {

using namespace mcmm;

int usage() {
  std::cout <<
      R"(usage: mcmm <command> [args]

commands:
  table [text|markdown|html|latex|csv]   print the overview table (Fig. 1)
  describe <item-number>                 print one Sec. 4 description
  describe <vendor> <model> <language>   look up a cell's description
  advise <language> [vendors...] [--vendor-only] [--min <tier>]
                                         rank programming-model routes
  claims                                 evaluate the paper's claims
  stats                                  category statistics
  excluded                               models the paper excluded and why
  export <directory>                     write YAML/HTML/LaTeX/MD/CSV
  diff <before.yaml> <after.yaml>        changelog between two snapshots
  sanitize [--passes p1,p2] [--json] [--report <path>]
           [--fixture oob|uaf|race|race-clean|leak|pstlx]
           [-- <command> [args...]]
                                         run gpusan (memcheck/racecheck/
                                         leakcheck) over the clean suite, a
                                         defect fixture, or a wrapped
                                         command; exits non-zero on findings
  perfbench [--json] [--format json|txt|md|csv|html|latex|yaml]
            [--out <path>] [--vendor <v1,v2>] [--model <m1,m2>]
            [--kernel <k1,k2>] [--sizes <n1,n2>] [--reps <n>]
            [--schedule static|dynamic|both]
            [--weak-scaling] [--devices <d1,d2>]
                                         run the BabelStream perf-
                                         portability campaign over every
                                         allowed (model x vendor x
                                         schedule) route and print Fig. 2:
                                         efficiency vs vendor peak per
                                         cell, harmonic-mean PP per row;
                                         --out writes the JSON report
                                         (BENCH_perfport.json); exits
                                         non-zero if any route fails
                                         numerical verification;
                                         --weak-scaling appends the
                                         multi-device section (graph
                                         replay on --devices devices per
                                         vendor, default 1,2,4, with P2P
                                         result gather)
  graph [--vendor <v>] [--n <doubles>] [--reps <n>]
                                         kernel-graph capture & replay
                                         demo: captures the BabelStream
                                         triad cycle into a graph,
                                         validates + instantiates it, and
                                         replays it against the eager
                                         queue — printing node/wave
                                         counts and checking results and
                                         simulated time are bit-identical;
                                         exits non-zero on any mismatch
  serve [--port <n>] [--threads <n>] [--host <addr>] [--max-in-flight <n>]
        [--idle-timeout-ms <n>] [--backlog <n>] [--perf]
                                         HTTP/JSON API over the knowledge
                                         base: GET /v1/matrix (+?format=),
                                         GET /v1/cell/{v}/{m}/{l},
                                         POST /v1/plan, GET /v1/claims,
                                         /healthz, /metrics; --perf runs
                                         the perfbench campaign at startup
                                         and serves it at GET /v1/perf
                                         (+?format=); drains gracefully on
                                         SIGTERM/SIGINT; --max-in-flight
                                         sheds overload with 503 +
                                         Retry-After
  gateway --backend <host:port> [--backend ...] [--port <n>] [--host <addr>]
          [--threads <n>] [--policy rr|p2c] [--retries <n>]
          [--hedge-ms <n>] [--no-hedge] [--idle-timeout-ms <n>]
          [--backlog <n>]
                                         reverse proxy over running mcmm
                                         serve replicas: health-checked
                                         balancing, per-replica circuit
                                         breakers, budgeted retries of
                                         idempotent requests, latency
                                         hedging for /v1/matrix and
                                         /v1/perf; adds /gateway/healthz
                                         /gateway/replicas and a combined
                                         /metrics
  cluster <replicas> [--port <n>] [--host <addr>] [--threads <n>]
          [--replica-threads <n>] [--max-in-flight <n>] [--policy rr|p2c]
          [--retries <n>] [--hedge-ms <n>] [--no-hedge] [--no-perf]
                                         fork <replicas> serve processes on
                                         ephemeral ports and front them
                                         with the gateway; each replica
                                         serves GET /v1/perf unless
                                         --no-perf skips the startup
                                         campaign; SIGTERM drains the
                                         gateway then stops replicas
  profile [--chrome <path>] [--csv <path>] [--json] [--report <path>]
          [--allow-empty] [-- <command> [args...]]
                                         gpuprof: trace kernels/copies with
                                         per-kernel roofline attribution;
                                         wraps a command or runs the
                                         built-in BabelStream demo on all
                                         three simulated vendors; a wrapped
                                         run with an empty trace exits
                                         non-zero unless --allow-empty
)";
  return 2;
}

int cmd_table(const std::vector<std::string>& args) {
  const CompatibilityMatrix& m = data::paper_matrix();
  const std::string format = args.empty() ? "text" : args[0];
  if (format == "text") {
    std::cout << render::figure1_text(m);
  } else if (format == "markdown" || format == "md") {
    std::cout << render::figure1_markdown(m);
  } else if (format == "html") {
    std::cout << render::figure1_html(m);
  } else if (format == "latex" || format == "tex") {
    std::cout << render::figure1_latex(m);
  } else if (format == "csv") {
    std::cout << render::matrix_csv(m);
  } else {
    std::cerr << "unknown format: " << format << "\n";
    return 2;
  }
  return 0;
}

int cmd_describe(const std::vector<std::string>& args) {
  const CompatibilityMatrix& m = data::paper_matrix();
  if (args.size() == 1) {
    try {
      const int id = std::stoi(args[0]);
      std::cout << render::description_text(m, id);
      return 0;
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }
  if (args.size() == 3) {
    const auto vendor = parse_vendor(args[0]);
    const auto model = parse_model(args[1]);
    const auto language = parse_language(args[2]);
    if (!vendor || !model || !language) {
      std::cerr << "cannot parse combination\n";
      return 2;
    }
    const SupportEntry* cell =
        m.find(Combination{*vendor, *model, *language});
    if (cell == nullptr) {
      std::cerr << "no such cell (does the language apply to the model?)\n";
      return 1;
    }
    std::cout << render::description_text(m, cell->description_id);
    return 0;
  }
  return usage();
}

int cmd_advise(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  PlannerQuery q;
  const auto language = parse_language(args[0]);
  if (!language) {
    std::cerr << "unknown language: " << args[0] << "\n";
    return 2;
  }
  q.language = *language;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--vendor-only") {
      q.require_vendor_support = true;
    } else if (args[i] == "--no-translators") {
      q.allow_translators = false;
    } else if (args[i] == "--min" && i + 1 < args.size()) {
      const auto tier = parse_category(args[++i]);
      if (!tier) {
        std::cerr << "unknown tier: " << args[i] << "\n";
        return 2;
      }
      q.minimum_category = *tier;
    } else if (const auto vendor = parse_vendor(args[i])) {
      q.must_run_on.push_back(*vendor);
    } else {
      std::cerr << "unknown argument: " << args[i] << "\n";
      return 2;
    }
  }
  const RoutePlanner planner(data::paper_matrix());
  const auto plans = planner.plan(q);
  std::cout << render::plan_report(plans);
  return plans.empty() ? 1 : 0;
}

int cmd_claims() {
  const Claims claims(data::paper_matrix());
  std::cout << render::claims_report(claims);
  for (const ClaimResult& r : claims.evaluate_all()) {
    if (!r.holds) return 1;
  }
  return 0;
}

int cmd_stats() {
  const Statistics stats(data::paper_matrix());
  std::cout << render::statistics_report(stats);
  return 0;
}

int cmd_excluded() {
  std::cout << data::excluded_models_note();
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string dir = args[0];
  const CompatibilityMatrix& m = data::paper_matrix();
  const auto write = [&](const std::string& name,
                         const std::string& content) {
    std::ofstream out(dir + "/" + name);
    if (!out) {
      std::cerr << "cannot write " << dir << "/" << name << "\n";
      std::exit(1);
    }
    out << content;
    std::cout << "wrote " << dir << "/" << name << "\n";
  };
  write("gpu_compat.yaml", yamlx::matrix_to_yaml_text(m));
  write("figure1.html", render::figure1_html(m));
  write("figure1.tex", render::figure1_latex(m));
  write("figure1.md", render::figure1_markdown(m));
  write("figure1.csv", render::matrix_csv(m));
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const auto load = [](const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return yamlx::matrix_from_yaml_text(buffer.str());
  };
  try {
    const CompatibilityMatrix before = load(args[0]);
    const CompatibilityMatrix after = load(args[1]);
    const MatrixDiff d = diff_matrices(before, after);
    std::cout << format_diff(d);
    return d.empty() ? 0 : 3;  // 3 = differences found (like diff(1) = 1)
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}

// --- mcmm sanitize -------------------------------------------------------

/// POSIX-shell single-quote escaping for the wrapper command line.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

/// Extracts "total_findings": N from a gpusan JSON report; -1 if absent.
long parse_total_findings(const std::string& json) {
  const std::string key = "\"total_findings\":";
  const std::size_t pos = json.find(key);
  if (pos == std::string::npos) return -1;
  return std::strtol(json.c_str() + pos + key.size(), nullptr, 10);
}

/// Wrapper mode: re-runs `command` with MCMM_GPUSAN set (the target binary
/// links the gpusan autoinit object, so the env enables the passes and
/// writes a JSON report at exit) and turns the report into an exit code —
/// the compute-sanitizer usage shape.
int sanitize_wrapped(const std::vector<std::string>& command,
                     const std::string& passes_spec,
                     const std::string& report_path, bool json) {
  const std::string report_file =
      report_path.empty() ? ".mcmm_gpusan_report.json" : report_path;
  std::string cmdline = "MCMM_GPUSAN=" + shell_quote(passes_spec) +
                        " MCMM_GPUSAN_REPORT=" + shell_quote(report_file);
  for (const std::string& word : command) {
    cmdline += " " + shell_quote(word);
  }
  const int child_status = std::system(cmdline.c_str());

  std::string report_json;
  {
    std::ifstream in(report_file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    report_json = buffer.str();
  }
  if (report_path.empty()) std::remove(report_file.c_str());

  const long findings = parse_total_findings(report_json);
  if (json) std::cout << report_json;
  if (findings < 0) {
    std::cerr << "mcmm sanitize: no gpusan report produced — is the "
                 "wrapped binary built with mcmm_make_sanitizable?\n";
    return 2;
  }
  std::cout << "mcmm sanitize: " << findings << " finding(s), child "
            << (child_status == 0 ? "exited cleanly" : "failed") << "\n";
  if (child_status != 0) return 1;
  return findings == 0 ? 0 : 1;
}

int cmd_sanitize(const std::vector<std::string>& args) {
  gpusan::Config cfg;
  std::string passes_spec = "all";
  std::string report_path;
  std::string fixture;
  bool json = false;
  std::vector<std::string> wrapped;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--") {
      wrapped.assign(args.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     args.end());
      if (wrapped.empty()) return usage();
      break;
    }
    if (a == "--json") {
      json = true;
    } else if (a == "--report" && i + 1 < args.size()) {
      report_path = args[++i];
    } else if (a == "--fixture" && i + 1 < args.size()) {
      fixture = args[++i];
    } else if (a == "--passes" && i + 1 < args.size()) {
      passes_spec = args[++i];
      cfg.memcheck = passes_spec.find("memcheck") != std::string::npos;
      cfg.racecheck = passes_spec.find("racecheck") != std::string::npos;
      cfg.leakcheck = passes_spec.find("leakcheck") != std::string::npos;
      if (passes_spec == "all") cfg = gpusan::Config{};
      if (!cfg.memcheck && !cfg.racecheck && !cfg.leakcheck) {
        std::cerr << "no known pass in: " << passes_spec << "\n";
        return 2;
      }
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return usage();
    }
  }

  if (!wrapped.empty()) {
    return sanitize_wrapped(wrapped, passes_spec, report_path, json);
  }

  gpusan::enable(cfg);
  try {
    if (fixture.empty()) {
      gpusan::fixtures::clean_suite();
    } else if (fixture == "oob") {
      gpusan::fixtures::oob_write();
    } else if (fixture == "uaf") {
      gpusan::fixtures::use_after_free();
    } else if (fixture == "race") {
      gpusan::fixtures::racy_histogram(gpusim::Schedule::Static);
      gpusan::fixtures::racy_histogram(gpusim::Schedule::Dynamic);
    } else if (fixture == "race-clean") {
      gpusan::fixtures::privatized_histogram(gpusim::Schedule::Static);
      gpusan::fixtures::privatized_histogram(gpusim::Schedule::Dynamic);
    } else if (fixture == "leak") {
      gpusan::fixtures::leak();
    } else if (fixture == "pstlx") {
      gpusan::fixtures::pstlx_suite(gpusim::Schedule::Static);
      gpusan::fixtures::pstlx_suite(gpusim::Schedule::Dynamic);
    } else {
      std::cerr << "unknown fixture: " << fixture << "\n";
      return 2;
    }
  } catch (const std::exception& e) {
    // Fixtures plant *detectable* defects, not crashes; a throw here is a
    // real bug worth surfacing alongside the report.
    std::cerr << "fixture threw: " << e.what() << "\n";
  }
  const gpusan::Report report = gpusan::finalize();
  if (!report_path.empty()) {
    std::ofstream out(report_path);
    out << report.json();
  }
  std::cout << (json ? report.json() : report.text());
  return report.clean() ? 0 : 1;
}

// --- mcmm profile --------------------------------------------------------

/// Extracts "events": N from a gpuprof JSON report; -1 if absent.
long parse_event_count(const std::string& json) {
  const std::string key = "\"events\":";
  const std::size_t pos = json.find(key);
  if (pos == std::string::npos) return -1;
  return std::strtol(json.c_str() + pos + key.size(), nullptr, 10);
}

/// Wrapper mode: re-runs `command` with MCMM_GPUPROF set (the target
/// binary links the gpuprof autoinit object, so the env enables tracing
/// and writes the requested artifacts at exit) — the
/// `nsys profile`/`rocprof` usage shape. Exits non-zero when the child
/// fails or the trace comes back empty.
int profile_wrapped(const std::vector<std::string>& command,
                    const std::string& chrome_path,
                    const std::string& csv_path,
                    const std::string& report_path, bool json,
                    bool allow_empty) {
  const std::string report_file =
      report_path.empty() ? ".mcmm_gpuprof_report.json" : report_path;
  std::string cmdline =
      "MCMM_GPUPROF=1 MCMM_GPUPROF_REPORT=" + shell_quote(report_file);
  if (!chrome_path.empty()) {
    cmdline += " MCMM_GPUPROF_TRACE=" + shell_quote(chrome_path);
  }
  if (!csv_path.empty()) {
    cmdline += " MCMM_GPUPROF_CSV=" + shell_quote(csv_path);
  }
  for (const std::string& word : command) {
    cmdline += " " + shell_quote(word);
  }
  const int child_status = std::system(cmdline.c_str());

  std::string report_json;
  {
    std::ifstream in(report_file);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    report_json = buffer.str();
  }
  if (report_path.empty()) std::remove(report_file.c_str());

  const long events = parse_event_count(report_json);
  if (json) std::cout << report_json;
  if (events < 0) {
    std::cerr << "mcmm profile: no gpuprof report produced — is the "
                 "wrapped binary built with mcmm_make_profilable?\n";
    return 2;
  }
  std::cout << "mcmm profile: " << events << " event(s) traced, child "
            << (child_status == 0 ? "exited cleanly" : "failed") << "\n";
  if (!chrome_path.empty()) {
    std::cout << "chrome trace written to " << chrome_path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (child_status != 0) return 1;
  // An empty trace from a profiled binary usually means "wrong binary" —
  // fail unless the caller knows the workload has no device activity.
  return (events > 0 || allow_empty) ? 0 : 1;
}

int cmd_profile(const std::vector<std::string>& args) {
  std::string chrome_path;
  std::string csv_path;
  std::string report_path;
  bool json = false;
  bool allow_empty = false;
  std::vector<std::string> wrapped;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--") {
      wrapped.assign(args.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                     args.end());
      if (wrapped.empty()) return usage();
      break;
    }
    if (a == "--json") {
      json = true;
    } else if (a == "--allow-empty") {
      allow_empty = true;
    } else if (a == "--chrome" && i + 1 < args.size()) {
      chrome_path = args[++i];
    } else if (a == "--csv" && i + 1 < args.size()) {
      csv_path = args[++i];
    } else if (a == "--report" && i + 1 < args.size()) {
      report_path = args[++i];
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return usage();
    }
  }

  if (!wrapped.empty()) {
    return profile_wrapped(wrapped, chrome_path, csv_path, report_path, json,
                           allow_empty);
  }

  // Built-in demo workload: the native BabelStream route on each simulated
  // vendor, traced end to end — per-kernel roofline attribution with
  // achieved GB/s and %-of-peak across all three vendors in one report.
  gpuprof::enable();
  constexpr std::size_t kDemoN = 1 << 18;
  bool all_verified = true;
  for (const Vendor v : {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA}) {
    auto benches = bench::stream_benchmarks_for(v);
    if (benches.empty()) continue;
    for (const bench::StreamResult& r :
         bench::run_stream(*benches.front(), kDemoN, 2)) {
      all_verified = all_verified && r.verified;
    }
  }
  const gpuprof::Trace trace = gpuprof::finalize();

  const auto write_artifact = [](const std::string& path,
                                 const std::string& content) {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      std::exit(1);
    }
    out << content;
    std::cout << "wrote " << path << "\n";
  };
  write_artifact(chrome_path, trace.chrome_json());
  write_artifact(csv_path, trace.summary_csv());
  write_artifact(report_path, trace.summary_json());
  std::cout << (json ? trace.summary_json() : trace.text_report());
  return (all_verified && !trace.empty()) ? 0 : 1;
}

// --- mcmm perfbench ------------------------------------------------------

/// Splits "a,b,c" into its non-empty fields.
std::vector<std::string> split_commas(const std::string& spec) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::size_t end = comma == std::string::npos ? spec.size() : comma;
    if (end > start) out.push_back(spec.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

std::string ascii_lower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

std::optional<perfport::PerfKernel> parse_perf_kernel(const std::string& s) {
  const std::string lower = ascii_lower(s);
  for (const perfport::PerfKernel k : perfport::kAllPerfKernels) {
    if (lower == ascii_lower(std::string(perfport::to_string(k)))) return k;
  }
  return std::nullopt;
}

int cmd_perfbench(const std::vector<std::string>& args) {
  perfport::CampaignConfig cfg;
  perfport::WeakScalingConfig weak_cfg;
  bool weak_scaling = false;
  std::string format = "txt";
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--json") {
      format = "json";
    } else if (a == "--weak-scaling") {
      weak_scaling = true;
    } else if (a == "--devices" && i + 1 < args.size()) {
      weak_cfg.device_counts.clear();
      for (const std::string& word : split_commas(args[++i])) {
        char* end = nullptr;
        const long d = std::strtol(word.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || d < 1 || d > 8) {
          std::cerr << "--devices wants device counts in 1..8\n";
          return 2;
        }
        weak_cfg.device_counts.push_back(static_cast<unsigned>(d));
      }
      if (weak_cfg.device_counts.empty()) {
        std::cerr << "--devices wants a comma list\n";
        return 2;
      }
    } else if (a == "--format" && i + 1 < args.size()) {
      format = args[++i];
    } else if (a == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (a == "--vendor" && i + 1 < args.size()) {
      cfg.vendors.clear();
      for (const std::string& word : split_commas(args[++i])) {
        const auto vendor = parse_vendor(word);
        if (!vendor) {
          std::cerr << "unknown vendor: " << word << "\n";
          return 2;
        }
        cfg.vendors.push_back(*vendor);
      }
    } else if (a == "--model" && i + 1 < args.size()) {
      for (const std::string& word : split_commas(args[++i])) {
        const auto model = parse_model(word);
        if (!model) {
          std::cerr << "unknown model: " << word << "\n";
          return 2;
        }
        cfg.models.push_back(*model);
      }
    } else if (a == "--kernel" && i + 1 < args.size()) {
      for (const std::string& word : split_commas(args[++i])) {
        const auto kernel = parse_perf_kernel(word);
        if (!kernel) {
          std::cerr << "unknown kernel: " << word
                    << " (want copy|mul|add|triad|dot|reduce|uneven)\n";
          return 2;
        }
        cfg.kernels.push_back(*kernel);
      }
    } else if (a == "--sizes" && i + 1 < args.size()) {
      cfg.sizes.clear();
      for (const std::string& word : split_commas(args[++i])) {
        char* end = nullptr;
        const long n = std::strtol(word.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n < 1 || n > (1L << 24)) {
          std::cerr << "--sizes wants doubles-per-array in 1..16777216\n";
          return 2;
        }
        cfg.sizes.push_back(static_cast<std::size_t>(n));
      }
      if (cfg.sizes.empty()) {
        std::cerr << "--sizes wants a comma list\n";
        return 2;
      }
    } else if (a == "--reps" && i + 1 < args.size()) {
      char* end = nullptr;
      const long n = std::strtol(args[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 1 || n > 64) {
        std::cerr << "--reps wants 1..64\n";
        return 2;
      }
      cfg.reps = static_cast<std::size_t>(n);
    } else if (a == "--schedule" && i + 1 < args.size()) {
      const std::string& spec = args[++i];
      if (spec == "static") {
        cfg.schedules = {gpusim::Schedule::Static};
      } else if (spec == "dynamic") {
        cfg.schedules = {gpusim::Schedule::Dynamic};
      } else if (spec != "both") {
        std::cerr << "--schedule wants static, dynamic, or both\n";
        return 2;
      }
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return usage();
    }
  }
  if (format == "text") format = "txt";
  if (format == "markdown") format = "md";
  if (format == "tex") format = "latex";
  const bool known_format =
      format == "json" || format == "txt" || format == "md" ||
      format == "csv" || format == "html" || format == "latex" ||
      format == "yaml";
  if (!known_format) {  // reject before paying for the campaign
    std::cerr << "unknown format: " << format
              << " (want json|txt|md|csv|html|latex|yaml)\n";
    return 2;
  }
  try {
    perfport::PerfReport report = perfport::run_campaign(cfg);
    if (weak_scaling) {
      weak_cfg.vendors = cfg.vendors;
      report.weak_scaling = perfport::run_weak_scaling(weak_cfg);
    }
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "cannot write " << out_path << "\n";
        return 1;
      }
      out << perfport::report_json(report);
      std::cerr << "mcmm perfbench: wrote " << out_path << "\n";
    }
    if (format == "json") {
      std::cout << perfport::report_json(report);
    } else if (format == "txt") {
      std::cout << render::figure2_text(report);
    } else if (format == "md") {
      std::cout << render::figure2_markdown(report);
    } else if (format == "csv") {
      std::cout << render::figure2_csv(report);
    } else if (format == "html") {
      std::cout << render::figure2_html(report);
    } else if (format == "latex") {
      std::cout << render::figure2_latex(report);
    } else {
      std::cout << render::figure2_yaml(report);
    }
    std::size_t unverified = 0;
    for (const perfport::RouteSample& s : report.samples) {
      if (!s.verified) ++unverified;
    }
    for (const perfport::WeakScalingSample& w : report.weak_scaling) {
      if (!w.verified) ++unverified;
    }
    // Stats go to stderr so a redirected stdout stays byte-comparable to
    // the committed golden / served /v1/perf body.
    std::cerr << "mcmm perfbench: " << report.route_count << " route(s), "
              << report.samples.size() << " sample(s), "
              << report.rows.size() << " figure row(s), "
              << report.weak_scaling.size() << " weak-scaling point(s), "
              << unverified << " unverified\n";
    return unverified == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "mcmm perfbench: " << e.what() << "\n";
    return 1;
  }
}

// --- mcmm graph ----------------------------------------------------------

/// Capture/replay demo: the BabelStream triad cycle (init + reps x
/// copy/mul/add/triad) is run once eagerly and once as a captured graph
/// replayed from a fresh queue; both the array contents and the final
/// simulated clock must agree bit-for-bit.
int cmd_graph(const std::vector<std::string>& args) {
  Vendor vendor = Vendor::NVIDIA;
  std::size_t n = 1u << 20;
  int reps = 3;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--vendor" && i + 1 < args.size()) {
      const auto v = parse_vendor(args[++i]);
      if (!v) {
        std::cerr << "unknown vendor: " << args[i] << "\n";
        return 2;
      }
      vendor = *v;
    } else if (a == "--n" && i + 1 < args.size()) {
      char* end = nullptr;
      const long v = std::strtol(args[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > (1L << 24)) {
        std::cerr << "--n wants doubles-per-array in 1..16777216\n";
        return 2;
      }
      n = static_cast<std::size_t>(v);
    } else if (a == "--reps" && i + 1 < args.size()) {
      char* end = nullptr;
      const long v = std::strtol(args[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v < 1 || v > 64) {
        std::cerr << "--reps wants 1..64\n";
        return 2;
      }
      reps = static_cast<int>(v);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return usage();
    }
  }

  try {
    using gpusim::KernelCosts;
    const auto cfg = gpusim::launch_1d(n, 256);
    const double nd = static_cast<double>(n) * sizeof(double);
    KernelCosts copy_c;
    copy_c.bytes_read = nd;
    copy_c.bytes_written = nd;
    KernelCosts mul_c = copy_c;
    mul_c.flops = static_cast<double>(n);
    KernelCosts add_c;
    add_c.bytes_read = 2 * nd;
    add_c.bytes_written = nd;
    add_c.flops = static_cast<double>(n);
    KernelCosts triad_c = add_c;
    triad_c.flops = 2.0 * static_cast<double>(n);

    // Submits init + the full reps cycle to `q` — either executing
    // eagerly or, with the queue in capture mode, recording the graph.
    const auto submit = [&](gpusim::Queue& q, double* a, double* b,
                            double* c) {
      {
        gpusim::KernelLabelScope label("Init");
        (void)q.launch(cfg, copy_c, [=](const gpusim::WorkItem& it) {
          const std::size_t i = it.global_x();
          if (i < n) {
            a[i] = bench::kInitA;
            b[i] = bench::kInitB;
            c[i] = bench::kInitC;
          }
        });
      }
      for (int r = 0; r < reps; ++r) {
        {
          gpusim::KernelLabelScope label("Copy");
          (void)q.launch(cfg, copy_c, [=](const gpusim::WorkItem& it) {
            const std::size_t i = it.global_x();
            if (i < n) c[i] = a[i];
          });
        }
        {
          gpusim::KernelLabelScope label("Mul");
          (void)q.launch(cfg, mul_c, [=](const gpusim::WorkItem& it) {
            const std::size_t i = it.global_x();
            if (i < n) b[i] = bench::kScalar * c[i];
          });
        }
        {
          gpusim::KernelLabelScope label("Add");
          (void)q.launch(cfg, add_c, [=](const gpusim::WorkItem& it) {
            const std::size_t i = it.global_x();
            if (i < n) c[i] = a[i] + b[i];
          });
        }
        {
          gpusim::KernelLabelScope label("Triad");
          (void)q.launch(cfg, triad_c, [=](const gpusim::WorkItem& it) {
            const std::size_t i = it.global_x();
            if (i < n) a[i] = b[i] + bench::kScalar * c[i];
          });
        }
      }
    };

    struct RunResult {
      std::vector<double> a, b, c;
      double sim_us{};
    };
    const auto read_back = [&](gpusim::Device& dev, gpusim::Queue& q,
                               double* a, double* b, double* c) {
      RunResult r;
      r.sim_us = q.simulated_time_us();  // before the D2H reads
      r.a.resize(n);
      r.b.resize(n);
      r.c.resize(n);
      (void)q.memcpy(r.a.data(), a, n * sizeof(double),
                     gpusim::CopyKind::DeviceToHost);
      (void)q.memcpy(r.b.data(), b, n * sizeof(double),
                     gpusim::CopyKind::DeviceToHost);
      (void)q.memcpy(r.c.data(), c, n * sizeof(double),
                     gpusim::CopyKind::DeviceToHost);
      dev.deallocate(a);
      dev.deallocate(b);
      dev.deallocate(c);
      return r;
    };

    gpusim::Platform& platform = gpusim::Platform::instance();

    // Eager reference on a pristine device (simulated clock at zero).
    gpusim::Device& eager_dev =
        platform.reset_device(vendor, gpusim::descriptor_for(vendor));
    {
      auto* a = static_cast<double*>(eager_dev.allocate(n * sizeof(double)));
      auto* b = static_cast<double*>(eager_dev.allocate(n * sizeof(double)));
      auto* c = static_cast<double*>(eager_dev.allocate(n * sizeof(double)));
      submit(eager_dev.default_queue(), a, b, c);
      const RunResult eager =
          read_back(eager_dev, eager_dev.default_queue(), a, b, c);

      // Captured + replayed on another pristine device.
      gpusim::Device& dev =
          platform.reset_device(vendor, gpusim::descriptor_for(vendor));
      auto* ga = static_cast<double*>(dev.allocate(n * sizeof(double)));
      auto* gb = static_cast<double*>(dev.allocate(n * sizeof(double)));
      auto* gc = static_cast<double*>(dev.allocate(n * sizeof(double)));
      gpusim::Queue& q = dev.default_queue();
      gpusim::Graph graph;
      q.begin_capture(graph);
      submit(q, ga, gb, gc);
      const std::size_t captured = q.end_capture();
      gpusim::ExecutableGraph exec(graph, q);
      (void)exec.replay(q);
      const RunResult replay = read_back(dev, q, ga, gb, gc);

      const bool results_identical =
          std::memcmp(eager.a.data(), replay.a.data(),
                      n * sizeof(double)) == 0 &&
          std::memcmp(eager.b.data(), replay.b.data(),
                      n * sizeof(double)) == 0 &&
          std::memcmp(eager.c.data(), replay.c.data(),
                      n * sizeof(double)) == 0;
      const bool time_identical = eager.sim_us == replay.sim_us;

      std::cout << "mcmm graph: " << to_string(vendor) << " '"
                << dev.descriptor().name << "', n=" << n
                << " doubles, reps=" << reps << "\n";
      std::cout << "captured " << captured << " node(s), "
                << exec.wave_count() << " wave(s), validation checked "
                << exec.validation().pairs_checked
                << " unordered pair(s)\n";
      char line[160];
      std::snprintf(line, sizeof line,
                    "eager : %.3f us simulated\n"
                    "replay: %.3f us simulated (one replay, %.3f us "
                    "critical path)\n",
                    eager.sim_us, replay.sim_us, exec.duration_us());
      std::cout << line;
      std::cout << "results bit-identical: "
                << (results_identical ? "yes" : "NO")
                << "; simulated time bit-identical: "
                << (time_identical ? "yes" : "NO") << "\n";
      return results_identical && time_identical ? 0 : 1;
    }
  } catch (const std::exception& e) {
    std::cerr << "mcmm graph: " << e.what() << "\n";
    return 1;
  }
}

// --- mcmm serve ----------------------------------------------------------

/// The running server, for the signal handler. Writes happen before the
/// handler is installed; the handler only calls the async-signal-safe
/// Server::shutdown().
serve::Server* g_server = nullptr;

extern "C" void serve_signal_handler(int) {
  if (g_server != nullptr) g_server->shutdown();
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::ServerConfig cfg;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto int_arg = [&](long min, long max) -> std::optional<long> {
      if (i + 1 >= args.size()) return std::nullopt;
      char* end = nullptr;
      const long v = std::strtol(args[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v < min || v > max) {
        return std::nullopt;
      }
      return v;
    };
    if (a == "--port") {
      const auto port = int_arg(0, 65535);
      if (!port) {
        std::cerr << "--port wants 0..65535\n";
        return 2;
      }
      cfg.port = static_cast<std::uint16_t>(*port);
    } else if (a == "--threads") {
      const auto threads = int_arg(1, 256);
      if (!threads) {
        std::cerr << "--threads wants 1..256\n";
        return 2;
      }
      cfg.threads = static_cast<unsigned>(*threads);
    } else if (a == "--host" && i + 1 < args.size()) {
      cfg.host = args[++i];
    } else if (a == "--max-in-flight") {
      const auto cap = int_arg(0, 1 << 20);
      if (!cap) {
        std::cerr << "--max-in-flight wants 0..1048576\n";
        return 2;
      }
      cfg.max_in_flight = static_cast<unsigned>(*cap);
    } else if (a == "--idle-timeout-ms") {
      const auto ms = int_arg(100, 3600000);
      if (!ms) {
        std::cerr << "--idle-timeout-ms wants 100..3600000\n";
        return 2;
      }
      cfg.idle_timeout_ms = static_cast<int>(*ms);
    } else if (a == "--backlog") {
      const auto depth = int_arg(1, 65535);
      if (!depth) {
        std::cerr << "--backlog wants 1..65535\n";
        return 2;
      }
      cfg.backlog = static_cast<int>(*depth);
    } else if (a == "--perf") {
      cfg.enable_perf = true;
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return usage();
    }
  }
  cfg.log_fd_limit = true;
  if (cfg.enable_perf) {
    std::cout << "mcmm serve: running the perf-portability campaign "
                 "(seconds of simulated kernels)...\n"
              << std::flush;
  }
  try {
    serve::Server server(data::paper_matrix(), cfg);
    server.start();
    g_server = &server;
    std::signal(SIGTERM, serve_signal_handler);
    std::signal(SIGINT, serve_signal_handler);
    std::cout << "mcmm serve: listening on http://" << cfg.host << ":"
              << server.port() << "\n"
              << "endpoints: /v1/matrix /v1/cell/{vendor}/{model}/{language} "
                 "/v1/plan /v1/claims "
              << (cfg.enable_perf ? "/v1/perf " : "")
              << "/healthz /metrics\n"
              << std::flush;
    server.join();
    std::cout << "mcmm serve: drained after "
              << server.metrics().requests_total() << " request(s) on "
              << server.metrics().connections_total()
              << " connection(s), exiting cleanly\n";
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mcmm serve: " << e.what() << "\n";
    return 1;
  }
}

// --- mcmm gateway / mcmm cluster -----------------------------------------

/// The running gateway, for the signal handler (same pattern as g_server).
gateway::Gateway* g_gateway = nullptr;

extern "C" void gateway_signal_handler(int) {
  if (g_gateway != nullptr) g_gateway->shutdown();
}

/// Shared flag parsing for `gateway` and `cluster`. Returns 0 on success,
/// a process exit code otherwise. Flags both commands understand land in
/// `cfg`; `cluster`-only knobs are the out-parameters.
int parse_gateway_args(const std::vector<std::string>& args,
                       std::size_t first, gateway::GatewayConfig& cfg,
                       std::vector<gateway::ReplicaEndpoint>* backends,
                       unsigned* replica_threads, unsigned* max_in_flight,
                       bool* replica_perf) {
  for (std::size_t i = first; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto int_arg = [&](long min, long max) -> std::optional<long> {
      if (i + 1 >= args.size()) return std::nullopt;
      char* end = nullptr;
      const long v = std::strtol(args[++i].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v < min || v > max) {
        return std::nullopt;
      }
      return v;
    };
    if (a == "--backend" && backends != nullptr && i + 1 < args.size()) {
      const std::string& spec = args[++i];
      const std::size_t colon = spec.rfind(':');
      char* end = nullptr;
      const long port =
          colon == std::string::npos
              ? 0
              : std::strtol(spec.c_str() + colon + 1, &end, 10);
      if (colon == std::string::npos || colon == 0 || end == nullptr ||
          *end != '\0' || port < 1 || port > 65535) {
        std::cerr << "--backend wants host:port, got: " << spec << "\n";
        return 2;
      }
      backends->push_back(gateway::ReplicaEndpoint{
          spec.substr(0, colon), static_cast<std::uint16_t>(port)});
    } else if (a == "--port") {
      const auto port = int_arg(0, 65535);
      if (!port) {
        std::cerr << "--port wants 0..65535\n";
        return 2;
      }
      cfg.port = static_cast<std::uint16_t>(*port);
    } else if (a == "--host" && i + 1 < args.size()) {
      cfg.host = args[++i];
    } else if (a == "--threads") {
      const auto threads = int_arg(1, 256);
      if (!threads) {
        std::cerr << "--threads wants 1..256\n";
        return 2;
      }
      cfg.threads = static_cast<unsigned>(*threads);
    } else if (a == "--replica-threads" && replica_threads != nullptr) {
      const auto threads = int_arg(1, 256);
      if (!threads) {
        std::cerr << "--replica-threads wants 1..256\n";
        return 2;
      }
      *replica_threads = static_cast<unsigned>(*threads);
    } else if (a == "--max-in-flight" && max_in_flight != nullptr) {
      const auto cap = int_arg(0, 1 << 20);
      if (!cap) {
        std::cerr << "--max-in-flight wants 0..1048576\n";
        return 2;
      }
      *max_in_flight = static_cast<unsigned>(*cap);
    } else if (a == "--policy" && i + 1 < args.size()) {
      const auto policy = gateway::parse_policy(args[++i]);
      if (!policy) {
        std::cerr << "--policy wants rr or p2c\n";
        return 2;
      }
      cfg.policy = *policy;
    } else if (a == "--retries") {
      const auto retries = int_arg(0, 16);
      if (!retries) {
        std::cerr << "--retries wants 0..16\n";
        return 2;
      }
      cfg.max_retries = static_cast<int>(*retries);
    } else if (a == "--hedge-ms") {
      const auto ms = int_arg(1, 60000);
      if (!ms) {
        std::cerr << "--hedge-ms wants 1..60000\n";
        return 2;
      }
      cfg.hedge_after_ms = static_cast<int>(*ms);
    } else if (a == "--no-hedge") {
      cfg.hedge_after_ms = 0;
    } else if (a == "--no-perf" && replica_perf != nullptr) {
      *replica_perf = false;
    } else if (a == "--idle-timeout-ms") {
      const auto ms = int_arg(100, 3600000);
      if (!ms) {
        std::cerr << "--idle-timeout-ms wants 100..3600000\n";
        return 2;
      }
      cfg.idle_timeout_ms = static_cast<int>(*ms);
    } else if (a == "--backlog") {
      const auto depth = int_arg(1, 65535);
      if (!depth) {
        std::cerr << "--backlog wants 1..65535\n";
        return 2;
      }
      cfg.backlog = static_cast<int>(*depth);
    } else {
      std::cerr << "unknown argument: " << a << "\n";
      return usage();
    }
  }
  return 0;
}

/// Runs an already-constructed gateway to completion under SIGTERM/SIGINT.
int run_gateway(gateway::Gateway& gw, const gateway::GatewayConfig& cfg) {
  gw.start();
  g_gateway = &gw;
  std::signal(SIGTERM, gateway_signal_handler);
  std::signal(SIGINT, gateway_signal_handler);
  std::cout << "mcmm gateway: listening on http://" << cfg.host << ":"
            << gw.port() << " policy=" << gateway::to_string(cfg.policy)
            << " replicas=" << gw.registry().size() << "\n"
            << "endpoints: proxied /v1/* /healthz, plus /gateway/healthz "
               "/gateway/replicas /metrics\n"
            << std::flush;
  gw.join();
  g_gateway = nullptr;
  const auto& m = gw.gateway_metrics();
  std::cout << "mcmm gateway: drained after "
            << m.client.requests_total() << " request(s), "
            << m.retries_total() << " retried, " << m.hedges_total()
            << " hedged, exiting cleanly\n";
  return 0;
}

int cmd_gateway(const std::vector<std::string>& args) {
  gateway::GatewayConfig cfg;
  std::vector<gateway::ReplicaEndpoint> backends;
  const int rc =
      parse_gateway_args(args, 0, cfg, &backends, nullptr, nullptr, nullptr);
  if (rc != 0) return rc;
  if (backends.empty()) {
    std::cerr << "mcmm gateway: at least one --backend host:port needed\n";
    return 2;
  }
  cfg.log_fd_limit = true;
  try {
    gateway::Gateway gw(std::move(backends), cfg);
    return run_gateway(gw, cfg);
  } catch (const std::exception& e) {
    std::cerr << "mcmm gateway: " << e.what() << "\n";
    return 1;
  }
}

int cmd_cluster(const std::vector<std::string>& args) {
  if (args.empty()) {
    std::cerr << "mcmm cluster: how many replicas?\n";
    return 2;
  }
  char* end = nullptr;
  const long count = std::strtol(args[0].c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || count < 1 || count > 64) {
    std::cerr << "mcmm cluster: replica count wants 1..64\n";
    return 2;
  }
  gateway::GatewayConfig cfg;
  gateway::SupervisorConfig sup;
  // A user-run cluster serves the full API, Figure 2 included; test fleets
  // construct SupervisorConfig directly and keep the default (off).
  sup.enable_perf = true;
  const int rc = parse_gateway_args(args, 1, cfg, nullptr,
                                    &sup.threads_per_replica,
                                    &sup.max_in_flight, &sup.enable_perf);
  if (rc != 0) return rc;
  cfg.log_fd_limit = true;
  sup.host = "127.0.0.1";
  try {
    // fork() before any thread exists (the gateway constructor spawns the
    // health prober, start() the worker pool).
    std::vector<gateway::ReplicaProcess> replicas =
        gateway::spawn_replicas(static_cast<unsigned>(count), sup);
    std::vector<gateway::ReplicaEndpoint> backends;
    backends.reserve(replicas.size());
    for (const gateway::ReplicaProcess& r : replicas) {
      std::cout << "mcmm cluster: replica pid=" << r.pid
                << " port=" << r.port << "\n";
      backends.push_back(gateway::ReplicaEndpoint{"127.0.0.1", r.port});
    }
    int exit_code = 1;
    {
      gateway::Gateway gw(std::move(backends), cfg);
      exit_code = run_gateway(gw, cfg);
    }
    const int killed = gateway::terminate_replicas(replicas, 5000);
    if (killed > 0) {
      std::cout << "mcmm cluster: " << killed
                << " replica(s) needed SIGKILL\n";
    }
    // The gateway drained cleanly; a replica that was deliberately killed
    // (fault injection) must not turn that into a failing exit.
    return exit_code;
  } catch (const std::exception& e) {
    std::cerr << "mcmm cluster: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "--help" || command == "-h" || command == "help") {
    usage();  // same text; asking for help is not an error
    return 0;
  }
  if (command == "table") return cmd_table(args);
  if (command == "describe") return cmd_describe(args);
  if (command == "advise") return cmd_advise(args);
  if (command == "claims") return cmd_claims();
  if (command == "stats") return cmd_stats();
  if (command == "excluded") return cmd_excluded();
  if (command == "export") return cmd_export(args);
  if (command == "diff") return cmd_diff(args);
  if (command == "sanitize") return cmd_sanitize(args);
  if (command == "profile") return cmd_profile(args);
  if (command == "perfbench") return cmd_perfbench(args);
  if (command == "graph") return cmd_graph(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "gateway") return cmd_gateway(args);
  if (command == "cluster") return cmd_cluster(args);
  return usage();
}
