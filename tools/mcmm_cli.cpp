// mcmm: the command-line front door to the compatibility knowledge base —
// the "concise table and detailed comments" of the paper as a tool.
//
//   mcmm table [text|markdown|html|latex|csv]   print Fig. 1
//   mcmm describe <item|vendor model language>  one Sec. 4 description
//   mcmm advise <language> [vendors...] [--vendor-only] [--min tier]
//   mcmm claims                                 evaluate the paper claims
//   mcmm stats                                  category statistics
//   mcmm excluded                               Sec. 5 excluded models
//   mcmm export <dir>                           YAML + rendered artifacts
//   mcmm diff <before.yaml> <after.yaml>        snapshot changelog

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/claims.hpp"
#include "core/diff.hpp"
#include "core/error.hpp"
#include "core/planner.hpp"
#include "core/statistics.hpp"
#include "data/dataset.hpp"
#include "data/excluded.hpp"
#include "render/render.hpp"
#include "render/report.hpp"
#include "yamlx/matrix_yaml.hpp"

namespace {

using namespace mcmm;

int usage() {
  std::cout <<
      R"(usage: mcmm <command> [args]

commands:
  table [text|markdown|html|latex|csv]   print the overview table (Fig. 1)
  describe <item-number>                 print one Sec. 4 description
  describe <vendor> <model> <language>   look up a cell's description
  advise <language> [vendors...] [--vendor-only] [--min <tier>]
                                         rank programming-model routes
  claims                                 evaluate the paper's claims
  stats                                  category statistics
  excluded                               models the paper excluded and why
  export <directory>                     write YAML/HTML/LaTeX/MD/CSV
  diff <before.yaml> <after.yaml>        changelog between two snapshots
)";
  return 2;
}

int cmd_table(const std::vector<std::string>& args) {
  const CompatibilityMatrix& m = data::paper_matrix();
  const std::string format = args.empty() ? "text" : args[0];
  if (format == "text") {
    std::cout << render::figure1_text(m);
  } else if (format == "markdown" || format == "md") {
    std::cout << render::figure1_markdown(m);
  } else if (format == "html") {
    std::cout << render::figure1_html(m);
  } else if (format == "latex" || format == "tex") {
    std::cout << render::figure1_latex(m);
  } else if (format == "csv") {
    std::cout << render::matrix_csv(m);
  } else {
    std::cerr << "unknown format: " << format << "\n";
    return 2;
  }
  return 0;
}

int cmd_describe(const std::vector<std::string>& args) {
  const CompatibilityMatrix& m = data::paper_matrix();
  if (args.size() == 1) {
    try {
      const int id = std::stoi(args[0]);
      std::cout << render::description_text(m, id);
      return 0;
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }
  }
  if (args.size() == 3) {
    const auto vendor = parse_vendor(args[0]);
    const auto model = parse_model(args[1]);
    const auto language = parse_language(args[2]);
    if (!vendor || !model || !language) {
      std::cerr << "cannot parse combination\n";
      return 2;
    }
    const SupportEntry* cell =
        m.find(Combination{*vendor, *model, *language});
    if (cell == nullptr) {
      std::cerr << "no such cell (does the language apply to the model?)\n";
      return 1;
    }
    std::cout << render::description_text(m, cell->description_id);
    return 0;
  }
  return usage();
}

int cmd_advise(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  PlannerQuery q;
  const auto language = parse_language(args[0]);
  if (!language) {
    std::cerr << "unknown language: " << args[0] << "\n";
    return 2;
  }
  q.language = *language;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--vendor-only") {
      q.require_vendor_support = true;
    } else if (args[i] == "--no-translators") {
      q.allow_translators = false;
    } else if (args[i] == "--min" && i + 1 < args.size()) {
      const auto tier = parse_category(args[++i]);
      if (!tier) {
        std::cerr << "unknown tier: " << args[i] << "\n";
        return 2;
      }
      q.minimum_category = *tier;
    } else if (const auto vendor = parse_vendor(args[i])) {
      q.must_run_on.push_back(*vendor);
    } else {
      std::cerr << "unknown argument: " << args[i] << "\n";
      return 2;
    }
  }
  const RoutePlanner planner(data::paper_matrix());
  const auto plans = planner.plan(q);
  std::cout << render::plan_report(plans);
  return plans.empty() ? 1 : 0;
}

int cmd_claims() {
  const Claims claims(data::paper_matrix());
  std::cout << render::claims_report(claims);
  for (const ClaimResult& r : claims.evaluate_all()) {
    if (!r.holds) return 1;
  }
  return 0;
}

int cmd_stats() {
  const Statistics stats(data::paper_matrix());
  std::cout << render::statistics_report(stats);
  return 0;
}

int cmd_excluded() {
  std::cout << data::excluded_models_note();
  return 0;
}

int cmd_export(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string dir = args[0];
  const CompatibilityMatrix& m = data::paper_matrix();
  const auto write = [&](const std::string& name,
                         const std::string& content) {
    std::ofstream out(dir + "/" + name);
    if (!out) {
      std::cerr << "cannot write " << dir << "/" << name << "\n";
      std::exit(1);
    }
    out << content;
    std::cout << "wrote " << dir << "/" << name << "\n";
  };
  write("gpu_compat.yaml", yamlx::matrix_to_yaml_text(m));
  write("figure1.html", render::figure1_html(m));
  write("figure1.tex", render::figure1_latex(m));
  write("figure1.md", render::figure1_markdown(m));
  write("figure1.csv", render::matrix_csv(m));
  return 0;
}

int cmd_diff(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const auto load = [](const std::string& path) {
    std::ifstream in(path);
    if (!in) throw Error("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return yamlx::matrix_from_yaml_text(buffer.str());
  };
  try {
    const CompatibilityMatrix before = load(args[0]);
    const CompatibilityMatrix after = load(args[1]);
    const MatrixDiff d = diff_matrices(before, after);
    std::cout << format_diff(d);
    return d.empty() ? 0 : 3;  // 3 = differences found (like diff(1) = 1)
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "table") return cmd_table(args);
  if (command == "describe") return cmd_describe(args);
  if (command == "advise") return cmd_advise(args);
  if (command == "claims") return cmd_claims();
  if (command == "stats") return cmd_stats();
  if (command == "excluded") return cmd_excluded();
  if (command == "export") return cmd_export(args);
  if (command == "diff") return cmd_diff(args);
  return usage();
}
