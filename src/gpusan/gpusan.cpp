#include "gpusan/gpusan.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <tuple>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/sanitizer.hpp"
#include "pstlx/host.hpp"

namespace mcmm::gpusan {
namespace {

constexpr Vendor kVendors[] = {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA};

/// A launch currently being tracked (begin seen, end not yet).
struct LaunchInfo {
  std::string desc;
  gpusim::Queue* queue{};
};

/// One sampled shadow-log entry: an instrumented access inside a tracked
/// kernel. `cell` is the address of the accessed element (element
/// granularity — overlapping accesses at different start addresses are
/// distinct cells).
struct AccessRecord {
  std::uintptr_t cell{};
  std::uint64_t item{};
  std::uint64_t launch{};
  bool write{};
};

/// Singleton pass state. Leaked deliberately: hooks and the at-exit
/// reporter may run during static destruction, after a normal static's
/// lifetime would have ended.
struct State {
  std::mutex mu;
  Config cfg;
  bool enabled{false};
  std::vector<Finding> findings;
  std::uint64_t total_findings{0};
  std::uint64_t suppressed{0};
  std::uint64_t launches_checked{0};
  std::uint64_t accesses_checked{0};
  std::uint64_t accesses_dropped{0};
  std::uint64_t next_launch_id{1};
  std::map<std::uint64_t, LaunchInfo> active_launches;
  std::vector<AccessRecord> log;
  /// Memcheck dedup: (vendor, status|kind code, allocation id, launch id).
  std::set<std::tuple<int, int, std::uint64_t, std::uint64_t>> access_seen;
  /// Canary dedup: (allocator identity, allocation id, front?).
  std::set<std::tuple<std::uintptr_t, std::uint64_t, bool>> canary_seen;
};

State& state() {
  static State* s = new State;
  return *s;
}

[[nodiscard]] std::string dim3_str(const gpusim::Dim3& d) {
  return "(" + std::to_string(d.x) + "," + std::to_string(d.y) + "," +
         std::to_string(d.z) + ")";
}

[[nodiscard]] std::string describe_launch(const gpusim::LaunchConfig& cfg,
                                          gpusim::Schedule schedule) {
  return "grid=" + dim3_str(cfg.grid) + " block=" + dim3_str(cfg.block) +
         " schedule=" +
         (schedule == gpusim::Schedule::Static ? "static" : "dynamic");
}

[[nodiscard]] std::string describe_allocation(std::uint64_t id,
                                              const std::string& origin,
                                              std::size_t bytes) {
  return "allocation #" + std::to_string(id) + " ('" +
         (origin.empty() ? std::string("untagged") : origin) + "', " +
         std::to_string(bytes) + " bytes)";
}

/// Locates the device whose allocator knows this range. Returns the vendor
/// index (-1 when no device claims it) and the allocator's classification.
[[nodiscard]] std::pair<int, gpusim::RangeQuery> classify_range(
    const void* p, std::size_t bytes) {
  for (Vendor v : kVendors) {
    for (gpusim::Device* dev : gpusim::Platform::instance().devices_of(v)) {
      gpusim::RangeQuery q = dev->allocator().query_range(p, bytes);
      if (q.status != gpusim::RangeStatus::Unknown) {
        return {static_cast<int>(v), std::move(q)};
      }
    }
  }
  return {-1, gpusim::RangeQuery{}};
}

/// Must be called with s.mu held.
void add_finding(State& s, Finding f) {
  ++s.total_findings;
  if (s.findings.size() < s.cfg.max_findings) {
    s.findings.push_back(std::move(f));
  }
}

[[nodiscard]] const char* access_kind_noun(gpusim::AccessKind kind) {
  switch (kind) {
    case gpusim::AccessKind::Read:
      return "read";
    case gpusim::AccessKind::Write:
      return "write";
    case gpusim::AccessKind::Unknown:
      break;
  }
  return "access";
}

/// The launch description for findings raised inside launch `lid` (with
/// s.mu held); empty when the launch is unknown.
[[nodiscard]] std::string launch_desc(State& s, std::uint64_t lid) {
  const auto it = s.active_launches.find(lid);
  return it == s.active_launches.end() ? std::string{} : it->second.desc;
}

/// Memcheck strict pass over one instrumented access (s.mu held).
void check_access(State& s, const void* p, std::size_t bytes,
                  gpusim::AccessKind kind) {
  const auto [vendor, q] = classify_range(p, bytes);
  if (q.status == gpusim::RangeStatus::Ok) return;

  const std::uint64_t lid = gpusim::current_launch_id();
  const int code = static_cast<int>(q.status) * 8 + static_cast<int>(kind);
  if (!s.access_seen.emplace(vendor, code, q.id, lid).second) {
    ++s.suppressed;
    return;
  }

  Finding f;
  f.pass = Pass::Memcheck;
  f.launch_id = lid;
  f.launch = launch_desc(s, lid);
  const std::string noun = access_kind_noun(kind);
  const std::string where =
      " of " + std::to_string(bytes) + " bytes at offset " +
      std::to_string(q.offset);
  const std::string item_ctx =
      lid != 0 ? " by work item " +
                     std::to_string(gpusim::current_work_item()) +
                     " of launch #" + std::to_string(lid) +
                     (f.launch.empty() ? "" : " [" + f.launch + "]")
               : "";
  switch (q.status) {
    case gpusim::RangeStatus::OutOfBounds:
      f.kind = "out-of-bounds-" + noun;
      f.origin = q.origin;
      f.allocation_id = q.id;
      f.message = "out-of-bounds " + noun + where + " into " +
                  describe_allocation(q.id, q.origin, q.bytes) + item_ctx;
      break;
    case gpusim::RangeStatus::UseAfterFree:
      f.kind = "use-after-free-" + noun;
      f.origin = q.origin;
      f.allocation_id = q.id;
      f.message = "use-after-free " + noun + where + " into freed " +
                  describe_allocation(q.id, q.origin, q.bytes) + item_ctx;
      break;
    default:
      f.kind = "wild-" + noun;
      f.message = "wild " + noun + " of " + std::to_string(bytes) +
                  " bytes: address is not (and was not recently) simulated "
                  "device memory" +
                  item_ctx;
      break;
  }
  add_finding(s, std::move(f));
}

/// Canary sweep of one device's allocator (s.mu held). `context` names the
/// checkpoint ("sync point", "launch #N [...]", "device teardown").
void verify_device_canaries(State& s, gpusim::Device& device,
                            const std::string& context,
                            std::uint64_t launch_id) {
  if (!s.cfg.memcheck) return;
  const auto key_base =
      reinterpret_cast<std::uintptr_t>(&device.allocator());
  for (const gpusim::CanaryViolation& v :
       device.allocator().verify_canaries()) {
    if (!s.canary_seen.emplace(key_base, v.id, v.front).second) {
      ++s.suppressed;
      continue;
    }
    Finding f;
    f.pass = Pass::Memcheck;
    f.kind = "redzone-corruption";
    f.origin = v.origin;
    f.allocation_id = v.id;
    f.launch_id = launch_id;
    f.message = std::string("red-zone corruption (out-of-bounds write) ") +
                (v.front ? "before " : "past the end of ") +
                describe_allocation(v.id, v.origin, v.bytes) +
                " at offset " + std::to_string(v.offset) +
                ", detected at " + context;
    add_finding(s, std::move(f));
  }
}

/// Leak sweep of one device (s.mu held).
void sweep_device_leaks(State& s, gpusim::Device& device,
                        const std::string& context) {
  if (!s.cfg.leakcheck) return;
  for (const gpusim::LiveBlock& b : device.allocator().live_blocks()) {
    Finding f;
    f.pass = Pass::Leakcheck;
    f.kind = "leak";
    f.origin = b.origin;
    f.allocation_id = b.id;
    f.message = "leaked " + describe_allocation(b.id, b.origin, b.bytes) +
                " still live on device '" + device.descriptor().name +
                "' at " + context;
    add_finding(s, std::move(f));
  }
}

/// Race analysis of one finished launch (s.mu held): extracts the
/// launch's records from the shadow log, groups them by cell, and reports
/// one aggregated finding per (allocation, conflict kind).
void analyze_launch_races(State& s, std::uint64_t lid,
                          const std::string& desc) {
  if (!s.cfg.racecheck) return;

  std::vector<AccessRecord> records;
  std::erase_if(s.log, [&](const AccessRecord& r) {
    if (r.launch != lid) return false;
    records.push_back(r);
    return true;
  });
  // Group by cell with a parallel stable sort on the cell address (the
  // pstlx host fallback — this scan is one of its dogfood sites; see
  // BENCH_gpusim.json's conflict-scan A/B). Stability keeps each cell's
  // records in log order, so first-writer detection below behaves
  // exactly like the per-cell vectors this replaces, and cells are now
  // visited in deterministic address order instead of hash order.
  pstlx::stable_sort(pstlx::host_policy{}, records.begin(), records.end(),
                     [](const AccessRecord& x, const AccessRecord& y) {
                       return x.cell < y.cell;
                     });

  struct Conflict {
    std::uint64_t conflicting_cells{0};
    std::ptrdiff_t example_offset{};
    std::uint64_t example_item_a{};
    std::uint64_t example_item_b{};
  };
  // Keyed by (allocation id, write-write?); allocation 0 = unattributed.
  std::map<std::pair<std::uint64_t, bool>, Conflict> conflicts;
  std::map<std::uint64_t, std::pair<std::string, std::size_t>> alloc_info;

  for (std::size_t lo = 0, hi = 0; lo < records.size(); lo = hi) {
    const std::uintptr_t cell = records[lo].cell;
    hi = lo + 1;
    while (hi < records.size() && records[hi].cell == cell) ++hi;

    // Distinct work items that wrote / touched this cell.
    std::uint64_t writer = gpusim::kNoWorkItem;
    bool write_write = false;
    bool conflict = false;
    std::uint64_t other = gpusim::kNoWorkItem;
    for (std::size_t k = lo; k < hi; ++k) {
      const AccessRecord& r = records[k];
      if (!r.write) continue;
      if (writer == gpusim::kNoWorkItem) {
        writer = r.item;
      } else if (r.item != writer) {
        write_write = true;
        conflict = true;
        other = r.item;
      }
    }
    if (writer == gpusim::kNoWorkItem) continue;  // read-only cell
    if (!write_write) {
      for (std::size_t k = lo; k < hi; ++k) {
        if (records[k].item != writer) {
          conflict = true;
          other = records[k].item;
          break;
        }
      }
    }
    if (!conflict) continue;

    const auto [vendor, q] =
        classify_range(reinterpret_cast<const void*>(cell), 1);
    (void)vendor;
    const std::uint64_t alloc =
        q.status == gpusim::RangeStatus::Ok ? q.id : 0;
    if (alloc != 0) alloc_info[alloc] = {q.origin, q.bytes};
    Conflict& c = conflicts[{alloc, write_write}];
    if (c.conflicting_cells++ == 0) {
      c.example_offset = q.offset;
      c.example_item_a = writer;
      c.example_item_b = other;
    }
  }

  for (const auto& [key, c] : conflicts) {
    const auto [alloc, write_write] = key;
    Finding f;
    f.pass = Pass::Racecheck;
    f.kind = write_write ? "write-write-race" : "read-write-race";
    f.launch_id = lid;
    f.launch = desc;
    f.allocation_id = alloc;
    std::string target = "device memory";
    if (alloc != 0) {
      const auto& [origin, bytes] = alloc_info[alloc];
      f.origin = origin;
      target = describe_allocation(alloc, origin, bytes);
    }
    f.message =
        std::string(write_write ? "write-write" : "read-write") +
        " race on " + target + ": " + std::to_string(c.conflicting_cells) +
        " cell(s) accessed by multiple work items of launch #" +
        std::to_string(lid) + " [" + desc + "]; e.g. work items " +
        std::to_string(c.example_item_a) + " and " +
        std::to_string(c.example_item_b) +
        " both touched the element at offset " +
        std::to_string(c.example_offset);
    add_finding(s, std::move(f));
  }
}

// --- hook entry points (installed into gpusim) ---------------------------

std::uint64_t hook_launch_begin(void*, gpusim::Queue& queue,
                                const gpusim::LaunchConfig& cfg,
                                gpusim::Schedule schedule) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return 0;
  ++s.launches_checked;
  const std::uint64_t id = s.next_launch_id++;
  s.active_launches.emplace(
      id, LaunchInfo{describe_launch(cfg, schedule), &queue});
  return id;
}

void hook_launch_end(void*, gpusim::Queue& queue, std::uint64_t lid) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  const std::string desc = launch_desc(s, lid);
  verify_device_canaries(s, queue.device(),
                         "end of launch #" + std::to_string(lid) +
                             (desc.empty() ? "" : " [" + desc + "]"),
                         lid);
  analyze_launch_races(s, lid, desc);
  s.active_launches.erase(lid);
}

void hook_sync(void*, gpusim::Queue& queue) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return;
  verify_device_canaries(s, queue.device(), "queue sync point", 0);
}

void hook_device_teardown(void*, gpusim::Device& device) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return;
  verify_device_canaries(s, device, "device teardown", 0);
  sweep_device_leaks(s, device, "device teardown");
}

void hook_device_access(void*, const void* p, std::size_t bytes,
                        gpusim::AccessKind kind) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return;
  ++s.accesses_checked;
  if (s.cfg.memcheck) check_access(s, p, bytes, kind);
  if (s.cfg.racecheck && kind != gpusim::AccessKind::Unknown) {
    const std::uint64_t lid = gpusim::current_launch_id();
    if (lid != 0) {
      if (s.log.size() < s.cfg.max_access_records) {
        s.log.push_back(AccessRecord{reinterpret_cast<std::uintptr_t>(p),
                                     gpusim::current_work_item(), lid,
                                     kind == gpusim::AccessKind::Write});
      } else {
        ++s.accesses_dropped;
      }
    }
  }
}

constexpr gpusim::SanitizerHooks kHooks{
    nullptr,           &hook_launch_begin, &hook_launch_end,
    &hook_sync,        &hook_device_teardown,
    &hook_device_access,
};

/// Builds a report snapshot (s.mu held).
[[nodiscard]] Report snapshot(const State& s) {
  Report r;
  r.findings = s.findings;
  r.total_findings = s.total_findings;
  r.suppressed_duplicates = s.suppressed;
  r.launches_checked = s.launches_checked;
  r.accesses_checked = s.accesses_checked;
  r.accesses_dropped = s.accesses_dropped;
  return r;
}

void json_escape(std::string& out, const std::string& in) {
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string_view to_string(Pass p) noexcept {
  switch (p) {
    case Pass::Memcheck:
      return "memcheck";
    case Pass::Racecheck:
      return "racecheck";
    case Pass::Leakcheck:
      return "leakcheck";
  }
  return "?";
}

void enable(const Config& config) {
  State& s = state();
  {
    const std::lock_guard lock(s.mu);
    s.cfg = config;
    s.enabled = true;
  }
  const std::size_t guard = config.memcheck ? config.redzone_bytes : 0;
  gpusim::DeviceAllocator::set_default_guard_bytes(guard);
  for (Vendor v : kVendors) {
    for (gpusim::Device* dev : gpusim::Platform::instance().devices_of(v)) {
      dev->allocator().set_guard_bytes(guard);
    }
  }
  gpusim::install_sanitizer_hooks(&kHooks);
}

void disable() {
  gpusim::install_sanitizer_hooks(nullptr);
  gpusim::DeviceAllocator::set_default_guard_bytes(0);
  for (Vendor v : kVendors) {
    for (gpusim::Device* dev : gpusim::Platform::instance().devices_of(v)) {
      dev->allocator().set_guard_bytes(0);
    }
  }
  State& s = state();
  const std::lock_guard lock(s.mu);
  s.enabled = false;
}

bool enabled() noexcept {
  State& s = state();
  const std::lock_guard lock(s.mu);
  return s.enabled;
}

Config current_config() {
  State& s = state();
  const std::lock_guard lock(s.mu);
  return s.cfg;
}

Report current_report() {
  State& s = state();
  const std::lock_guard lock(s.mu);
  return snapshot(s);
}

Report finalize() {
  // Uninstall first so the sweep itself (and any device teardown that
  // follows) cannot re-enter the hooks.
  gpusim::install_sanitizer_hooks(nullptr);
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (s.enabled) {
    for (Vendor v : kVendors) {
      for (gpusim::Device* dev : gpusim::Platform::instance().devices_of(v)) {
        verify_device_canaries(s, *dev, "finalize", 0);
        sweep_device_leaks(s, *dev, "end of program");
      }
    }
    s.enabled = false;
  }
  gpusim::DeviceAllocator::set_default_guard_bytes(0);
  return snapshot(s);
}

void reset() {
  // Drain canary violations already queued inside the allocators (e.g. a
  // corrupted block freed just before the reset) so they cannot leak into
  // the next run's report.
  for (Vendor v : kVendors) {
    for (gpusim::Device* dev : gpusim::Platform::instance().devices_of(v)) {
      (void)dev->allocator().verify_canaries();
    }
  }
  State& s = state();
  const std::lock_guard lock(s.mu);
  s.findings.clear();
  s.total_findings = 0;
  s.suppressed = 0;
  s.launches_checked = 0;
  s.accesses_checked = 0;
  s.accesses_dropped = 0;
  s.log.clear();
  s.active_launches.clear();
  s.access_seen.clear();
  s.canary_seen.clear();
}

std::string Report::text() const {
  std::ostringstream out;
  out << "========= gpusan =========\n";
  if (clean()) {
    out << "clean: no findings\n";
  } else {
    out << total_findings << " finding(s)";
    if (findings.size() < total_findings) {
      out << " (" << findings.size() << " stored)";
    }
    if (suppressed_duplicates != 0) {
      out << ", " << suppressed_duplicates << " duplicate(s) suppressed";
    }
    out << "\n";
  }
  out << "launches checked: " << launches_checked
      << ", accesses checked: " << accesses_checked;
  if (accesses_dropped != 0) {
    out << " (" << accesses_dropped << " dropped by sampling)";
  }
  out << "\n";
  std::size_t i = 1;
  for (const Finding& f : findings) {
    out << "  " << i++ << ". [" << to_string(f.pass) << "] " << f.kind
        << ": " << f.message << "\n";
  }
  return std::move(out).str();
}

std::string Report::json() const {
  std::string out = "{\n";
  out += "  \"total_findings\": " + std::to_string(total_findings) + ",\n";
  out += "  \"suppressed_duplicates\": " +
         std::to_string(suppressed_duplicates) + ",\n";
  out += "  \"launches_checked\": " + std::to_string(launches_checked) +
         ",\n";
  out += "  \"accesses_checked\": " + std::to_string(accesses_checked) +
         ",\n";
  out += "  \"accesses_dropped\": " + std::to_string(accesses_dropped) +
         ",\n";
  out += "  \"findings\": [";
  bool first = true;
  for (const Finding& f : findings) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"pass\": \"";
    out += to_string(f.pass);
    out += "\", \"kind\": \"";
    json_escape(out, f.kind);
    out += "\", \"origin\": \"";
    json_escape(out, f.origin);
    out += "\", \"allocation_id\": " + std::to_string(f.allocation_id);
    out += ", \"launch_id\": " + std::to_string(f.launch_id);
    out += ", \"launch\": \"";
    json_escape(out, f.launch);
    out += "\", \"message\": \"";
    json_escape(out, f.message);
    out += "\"}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

void init_from_env() {
  const char* spec = std::getenv("MCMM_GPUSAN");
  if (spec == nullptr || *spec == '\0') return;

  Config cfg;
  const std::string value(spec);
  if (value != "1" && value != "all") {
    cfg.memcheck = value.find("memcheck") != std::string::npos;
    cfg.racecheck = value.find("racecheck") != std::string::npos;
    cfg.leakcheck = value.find("leakcheck") != std::string::npos;
    if (!cfg.memcheck && !cfg.racecheck && !cfg.leakcheck) return;
  }

  // Construct the Platform now so its static destructor (which tears the
  // devices down) is registered before our at-exit reporter: atexit runs
  // LIFO, so the reporter then sees the devices still alive.
  (void)gpusim::Platform::instance();
  enable(cfg);
  std::atexit(+[] {
    const Report report = finalize();
    if (const char* path = std::getenv("MCMM_GPUSAN_REPORT");
        path != nullptr && *path != '\0') {
      std::ofstream out(path);
      out << report.json();
    }
    std::fputs(report.text().c_str(), stderr);
  });
}

}  // namespace mcmm::gpusan
