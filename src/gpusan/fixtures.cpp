#include "gpusan/fixtures.hpp"

#include <cstdint>
#include <numeric>
#include <optional>
#include <vector>

#include "core/error.hpp"
#include "models/kokkosx/kokkosx.hpp"
#include "models/pybindx/pybindx.hpp"
#include "models/syclx/buffers.hpp"
#include "models/syclx/syclx.hpp"

namespace mcmm::gpusan::fixtures {
namespace {

constexpr std::size_t kN = 1024;
constexpr std::size_t kBins = 8;

}  // namespace

void oob_write() {
  syclx::queue q(Vendor::NVIDIA);
  std::vector<float> host(kN, 0.0f);
  syclx::buffer<float> buf(host.data(), kN);
  syclx::submit(q, [&](syclx::handler& h) {
    auto acc = h.get_access(buf, syclx::access_mode::write);
    h.parallel_for(syclx::range{kN}, [=](syclx::id i) {
      // Off-by-one: the last work item stores one element past the end.
      acc[i + 1] = 1.0f;
    });
  });
  q.wait();
}

void use_after_free() {
  syclx::queue q(Vendor::AMD, syclx::Implementation::OpenSYCL);
  std::vector<float> host(kN, 1.0f);
  std::optional<syclx::accessor<float>> stale;
  {
    syclx::buffer<float> buf(host.data(), kN);
    syclx::submit(q, [&](syclx::handler& h) {
      auto acc = h.get_access(buf, syclx::access_mode::read);
      stale = acc;  // the accessor escapes the buffer's lifetime
      h.parallel_for(syclx::range{kN}, [=](syclx::id i) {
        volatile float v = acc[i];
        (void)v;
      });
    });
  }  // buffer destroyed: its device block is freed (and quarantined)
  q.parallel_for(syclx::range{kN}, gpusim::KernelCosts{},
                 [acc = *stale](syclx::id i) {
                   volatile float v = acc[i];  // reads freed device memory
                   (void)v;
                 });
  q.wait();
}

void racy_histogram(gpusim::Schedule schedule) {
  syclx::queue q(Vendor::Intel);
  std::vector<std::uint32_t> bins(kBins, 0);
  syclx::buffer<std::uint32_t> hist(bins.data(), kBins);
  auto acc = hist.get_access(q, syclx::access_mode::write);
  // Every work item stores to bin i % kBins with no privatization or
  // atomics: many work items hit each bin. (The stores all write the same
  // value, so the *host* execution is benign; the inter-work-item conflict
  // is what racecheck must flag.)
  q.parallel_for(syclx::range{kN}, gpusim::KernelCosts{},
                 gpusim::LaunchPolicy{schedule, 0},
                 [=](syclx::id i) { acc[i % kBins] = 1u; });
  q.wait();
}

void privatized_histogram(gpusim::Schedule schedule) {
  syclx::queue q(Vendor::Intel);
  std::vector<std::uint32_t> slots(kN, 0);
  {
    syclx::buffer<std::uint32_t> priv(slots.data(), kN);
    auto acc = priv.get_access(q, syclx::access_mode::write);
    // The privatized rewrite: work item i owns slot i exclusively.
    q.parallel_for(syclx::range{kN}, gpusim::KernelCosts{},
                   gpusim::LaunchPolicy{schedule, 0},
                   [=](syclx::id i) { acc[i] = 1u; });
    q.wait();
  }
  // Bin combination happens on the host after download, as the rewrite
  // would do in real SYCL.
  std::vector<std::uint32_t> bins(kBins, 0);
  for (std::size_t i = 0; i < kN; ++i) bins[i % kBins] += slots[i];
}

void leak() {
  syclx::queue q(Vendor::NVIDIA);
  auto* p = q.malloc_device<double>(256, "gpusan-fixture/leak");
  (void)p;  // never freed: leakcheck reports it at end of program
}

namespace {

void clean_syclx(Vendor vendor, gpusim::Schedule schedule) {
  syclx::queue q(vendor);
  std::vector<double> x(kN), y(kN, 1.0);
  std::iota(x.begin(), x.end(), 0.0);
  {
    syclx::buffer<double> bx(x.data(), kN);
    syclx::buffer<double> by(y.data(), kN);
    auto ax = bx.get_access(q, syclx::access_mode::read);
    auto ay = by.get_access(q, syclx::access_mode::read_write);
    q.parallel_for(syclx::range{kN}, gpusim::KernelCosts{},
                   gpusim::LaunchPolicy{schedule, 0},
                   [=](syclx::id i) { ay[i] = ay[i] + 2.0 * ax[i]; });
    q.wait();
  }
  // USM path with an explicit free.
  double* usm = q.malloc_device<double>(kN);
  q.memcpy(usm, x.data(), kN * sizeof(double));
  const double total = q.reduce(
      syclx::range{kN}, 0.0, gpusim::KernelCosts{},
      [usm](std::size_t i) { return usm[i]; },
      [](double a, double b) { return a + b; });
  (void)total;
  q.free(usm);
}

void clean_kokkosx(kokkosx::ExecSpace space, Vendor vendor,
                   gpusim::Schedule schedule) {
  kokkosx::Execution exec(space, vendor);
  kokkosx::View<double> a(exec, "clean/a", kN);
  kokkosx::View<double> b(exec, "clean/b", kN);
  std::vector<double> host(kN, 3.0);
  kokkosx::deep_copy_to_device(a, host.data());
  kokkosx::parallel_for(exec, kokkosx::RangePolicy{0, kN},
                        gpusim::KernelCosts{},
                        gpusim::LaunchPolicy{schedule, 0},
                        [&](std::size_t i) { b(i) = 2.0 * a(i); });
  double sum = 0.0;
  kokkosx::parallel_reduce(
      exec, kokkosx::RangePolicy{0, kN}, gpusim::KernelCosts{},
      [&](std::size_t i, double& update) { update += b(i); }, sum);
  exec.fence();
}

void clean_pybindx(pybindx::Package package) {
  pybindx::Module mod(package);
  const pybindx::ndarray a = mod.arange(kN);
  const pybindx::ndarray b = mod.full(kN, 2.0);
  const pybindx::ndarray c = mod.multiply(a, b);
  const double total = mod.sum(c);
  (void)total;
  const std::vector<double> back = mod.asnumpy(c);
  (void)back;
}

}  // namespace

void clean_suite() {
  constexpr gpusim::Schedule kSchedules[] = {gpusim::Schedule::Static,
                                             gpusim::Schedule::Dynamic};
  for (const gpusim::Schedule s : kSchedules) {
    for (const Vendor v : {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA}) {
      try {
        clean_syclx(v, s);
      } catch (const UnsupportedCombination&) {
        // Fig. 1 gaps are expected, not defects.
      }
    }
    clean_kokkosx(kokkosx::ExecSpace::Cuda, Vendor::NVIDIA, s);
    clean_kokkosx(kokkosx::ExecSpace::HIP, Vendor::AMD, s);
    clean_kokkosx(kokkosx::ExecSpace::SYCL, Vendor::Intel, s);
  }
  clean_pybindx(pybindx::Package::CuPy);
  clean_pybindx(pybindx::Package::Dpnp);
  clean_pybindx(pybindx::Package::PyHIP);
}

}  // namespace mcmm::gpusan::fixtures
