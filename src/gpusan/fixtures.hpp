#pragma once
// Deliberately buggy (and deliberately clean) device workloads used to
// prove the gpusan passes fire: each defect fixture plants exactly one
// class of bug for one pass to find, and the clean fixtures establish the
// true-negative side. They run through the public model embeddings (syclx
// buffers/USM, kokkosx views, pybindx ndarrays) — the same accessor
// surfaces production code uses — not through sanitizer internals.
//
// The fixtures only *run* the workload; callers (the `mcmm sanitize` CLI,
// tests) enable gpusan first and read the report afterwards.

#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusan::fixtures {

/// memcheck true positive: a syclx kernel writes one element past the end
/// of a buffer (strict accessor check + red-zone canary corruption).
void oob_write();

/// memcheck true positive: the classic SYCL dangling-accessor bug — an
/// accessor escapes its buffer's lifetime and a later kernel reads through
/// it after the device block was freed.
void use_after_free();

/// racecheck true positive: a histogram whose work items all store to the
/// same few bins (write-write conflicts between work items).
void racy_histogram(gpusim::Schedule schedule);

/// racecheck true negative: the privatized rewrite of the same histogram —
/// every work item owns its output slot, so no conflicts exist.
void privatized_histogram(gpusim::Schedule schedule);

/// leakcheck true positive: a tagged USM allocation that is never freed.
void leak();

/// True negative for all passes: in-bounds, race-free, fully-freed
/// workloads across syclx, kokkosx, and pybindx on every reachable vendor,
/// under both launch schedules. `mcmm sanitize` runs this by default and
/// CI asserts the report is clean.
void clean_suite();

/// True negative across the pstlx device algorithms (sort, stable_sort,
/// merge, inclusive/exclusive scan, reduce, transform_reduce, for_each,
/// transform) on every constructible stdparx route: blocked tiles and
/// co-rank merge segments partition their inputs and outputs, so the
/// shadow log must show zero inter-work-item conflicts under the given
/// schedule. `mcmm sanitize --fixture pstlx` runs it under both.
void pstlx_suite(gpusim::Schedule schedule);

}  // namespace mcmm::gpusan::fixtures
