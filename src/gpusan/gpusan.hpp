#pragma once
// gpusan: a compute-sanitizer-style correctness layer for the simulated
// GPU. Every vendor column of the paper's Figure 1 ships a correctness
// tool next to its compiler (compute-sanitizer, rocgdb/rocprof, Intel's
// Inspector lineage); gpusan is that tool for gpusim, so the class of
// memory/race defects that cross-vendor porting studies (Reguly's SYCL
// study, Fridman et al.'s OpenMP-offload evaluation) blame for most
// porting effort is checkable on all three simulated vendors at once.
//
// Three passes, modelled on `compute-sanitizer --tool <t>`:
//
//   memcheck  — red-zone guard bands around every DeviceAllocator
//               allocation with canary verification at queue sync points,
//               deallocate, and device teardown; plus strict-mode accessor
//               interception (syclx buffers, kokkosx Views, pybindx
//               ndarrays) that classifies every access against the block
//               map and reports out-of-bounds / use-after-free with the
//               owning allocation, offset, and launch configuration.
//   racecheck — a per-launch shadow access log (writes/reads keyed by
//               address and work-item id, sampled up to a cap) that flags
//               write-write and read-write conflicts between work items of
//               one kernel, independent of which LaunchPolicy schedule the
//               host used.
//   leakcheck — an end-of-program report of live allocations per device,
//               with the origin tag and allocation id of each block.
//
// Enable programmatically (enable/finalize) or via the environment
// (MCMM_GPUSAN=memcheck,racecheck,leakcheck or =all), which any binary
// linking this library honours — that is how `mcmm sanitize -- <command>`
// wraps unmodified example binaries. MCMM_GPUSAN_REPORT=<path> writes the
// JSON report at exit for the wrapper to consume.
//
// Hooks run inside kernel worker threads and noexcept sync points, so the
// passes record findings instead of throwing; CI asserts a clean report.

#include <cstdint>
#include <string>
#include <vector>

namespace mcmm::gpusan {

enum class Pass : std::uint8_t { Memcheck, Racecheck, Leakcheck };

[[nodiscard]] std::string_view to_string(Pass p) noexcept;

struct Config {
  bool memcheck{true};
  bool racecheck{true};
  bool leakcheck{true};
  /// Red-zone size malloc'd on each side of every device allocation.
  std::size_t redzone_bytes{64};
  /// Shadow access log cap; accesses beyond it are counted as dropped
  /// (sampling — keeps pathological kernels bounded).
  std::size_t max_access_records{1u << 20};
  /// Cap on stored findings (further ones are counted, not stored).
  std::size_t max_findings{256};
};

/// One defect. `origin`/`allocation_id` name the owning allocation where
/// one is known; `launch`/`launch_id` name the kernel launch in whose
/// scope the defect was observed (empty/0 outside any launch).
struct Finding {
  Pass pass{Pass::Memcheck};
  std::string kind;     ///< "out-of-bounds-write", "write-write-race", ...
  std::string message;  ///< full human-readable diagnostic
  std::string origin;
  std::uint64_t allocation_id{0};
  std::uint64_t launch_id{0};
  std::string launch;   ///< "grid=(..) block=(..) schedule=.."
};

struct Report {
  std::vector<Finding> findings;
  std::uint64_t total_findings{0};  ///< includes ones beyond max_findings
  std::uint64_t suppressed_duplicates{0};
  std::uint64_t launches_checked{0};
  std::uint64_t accesses_checked{0};
  std::uint64_t accesses_dropped{0};  ///< sampling-cap overflow

  [[nodiscard]] bool clean() const noexcept { return total_findings == 0; }
  [[nodiscard]] std::string text() const;
  [[nodiscard]] std::string json() const;
};

/// Installs the passes: sets allocator guard bands (existing and future
/// devices) and the gpusim sanitizer hooks. Idempotent re-enable replaces
/// the config but keeps accumulated findings (use reset() to clear).
void enable(const Config& config = {});

/// Uninstalls the hooks and removes guard bands from future allocations.
/// Findings and counters are kept for current_report().
void disable();

[[nodiscard]] bool enabled() noexcept;
[[nodiscard]] Config current_config();

/// Snapshot of findings so far (no leak sweep).
[[nodiscard]] Report current_report();

/// End-of-program checkpoint: verifies canaries and sweeps live
/// allocations on every constructed device (leakcheck), uninstalls the
/// hooks, and returns the full report.
[[nodiscard]] Report finalize();

/// Clears findings and counters (fixtures and tests run back to back).
void reset();

/// Reads MCMM_GPUSAN / MCMM_GPUSAN_REPORT and, when set, enables the
/// configured passes and registers an at-exit report writer. Called from a
/// static initializer in this library, so merely linking gpusan makes a
/// binary wrappable by `mcmm sanitize -- <command>`.
void init_from_env();

}  // namespace mcmm::gpusan
