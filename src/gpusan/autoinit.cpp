// Environment-driven gpusan activation, as a standalone object file.
//
// Kept out of gpusan.cpp on purpose: a static initializer inside a static
// library member is only linked in when some symbol of that member is
// referenced, and a binary wrapped by `mcmm sanitize -- <command>` does not
// reference gpusan at all. CMake injects this object directly into each
// wrappable target's link ($<TARGET_OBJECTS:mcmm_gpusan_autoinit>, see
// mcmm_make_sanitizable), which unconditionally runs the initializer.

#include "gpusan/gpusan.hpp"

namespace {

const bool g_env_initialized = [] {
  mcmm::gpusan::init_from_env();
  return true;
}();

}  // namespace
