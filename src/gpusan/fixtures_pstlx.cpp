// Clean-fixture workload for the pstlx device algorithms: every
// algorithm, odd sizes (non-power-of-two tiles, short tail tiles), on
// every stdparx route the Figure 1 gate admits. The pstlx kernels note
// their per-task input/output ranges through the sanitizer seam, so
// racecheck sees exactly which work item touched which range and must
// find the partitions disjoint; memcheck strict-checks every noted
// range against the owning allocations.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "gpusan/fixtures.hpp"
#include "pstlx/pstlx.hpp"

namespace mcmm::gpusan::fixtures {
namespace {

/// Odd on purpose: exercises ceil-split tiles with a short tail.
constexpr std::size_t kPstlxN = 4097;

/// Seeded deterministic fill (same shape the differential tests use).
[[nodiscard]] std::vector<int> pstlx_input(std::uint64_t seed) {
  std::vector<int> data(kPstlxN);
  std::uint64_t state = seed;
  for (auto& x : data) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    x = static_cast<int>((state >> 33) % 100000);
  }
  return data;
}

void pstlx_workload(const stdparx::execution_policy& pol) {
  const std::vector<int> host_a = pstlx_input(7);
  const std::vector<int> host_b = pstlx_input(11);

  stdparx::device_vector<int> a(pol, kPstlxN);
  stdparx::device_vector<int> b(pol, kPstlxN);
  stdparx::device_vector<int> out(pol, kPstlxN);
  stdparx::device_vector<long> scanned(pol, kPstlxN);
  stdparx::device_vector<int> merged(pol, 2 * kPstlxN);

  a.upload(host_a.data(), kPstlxN);
  b.upload(host_b.data(), kPstlxN);

  pstlx::for_each(pol, a.begin(), a.end(), [](int& x) { x += 1; });
  pstlx::transform(pol, a.begin(), a.end(), out.begin(),
                   [](int x) { return x * 2; });
  pstlx::transform(pol, a.begin(), a.end(), b.begin(), out.begin(),
                   [](int x, int y) { return x + y; });

  (void)pstlx::reduce(pol, a.begin(), a.end(), 0L);
  (void)pstlx::transform_reduce(pol, a.begin(), a.end(), b.begin(), 0L);

  pstlx::inclusive_scan(pol, a.begin(), a.end(), scanned.begin());
  pstlx::exclusive_scan(pol, a.begin(), a.end(), scanned.begin(), 0L);

  pstlx::sort(pol, a.begin(), a.end());
  pstlx::stable_sort(pol, b.begin(), b.end());
  pstlx::merge(pol, a.begin(), a.end(), b.begin(), b.end(),
               merged.begin());
}

}  // namespace

void pstlx_suite(gpusim::Schedule schedule) {
  pstlx::schedule_guard guard(schedule);
  const std::pair<Vendor, stdparx::Runtime> routes[] = {
      {Vendor::NVIDIA, stdparx::Runtime::NVHPC},
      {Vendor::Intel, stdparx::Runtime::OneDPL},
      {Vendor::NVIDIA, stdparx::Runtime::OneDPL},
      {Vendor::AMD, stdparx::Runtime::OpenSYCL},
  };
  for (const auto& [vendor, runtime] : routes) {
    try {
      const stdparx::execution_policy pol(vendor, runtime);
      pstlx_workload(pol);
      pol.queue().synchronize();
    } catch (const UnsupportedCombination&) {
      // Gate says no on this simulated testbed; the suite covers what
      // the Figure 1 Standard column admits.
    }
  }
}

}  // namespace mcmm::gpusan::fixtures
