#pragma once
// The models the paper deliberately excludes (Sec. 5, "Model Selection"),
// with the paper's stated reasons — part of the reproduced artifact, since
// the selection itself is a result readers rely on.

#include <string>
#include <vector>

namespace mcmm::data {

struct ExcludedModel {
  std::string name;
  std::string reason;       ///< the paper's justification
  bool deprecated{false};   ///< the model itself is discontinued
};

/// RAJA, OpenCL, HPX, C++AMP, libtorch, libompx — in the paper's order.
[[nodiscard]] const std::vector<ExcludedModel>& excluded_models();

/// Footnote-style text block for renderers.
[[nodiscard]] std::string excluded_models_note();

}  // namespace mcmm::data
