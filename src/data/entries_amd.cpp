// AMD row of Fig. 1: 17 cells (items 18..30 plus shared items 4, 6, 14, 16).

#include "data/builders.hpp"
#include "data/dataset.hpp"

namespace mcmm::data::detail {

void add_amd_entries(CompatibilityMatrix& m) {
  constexpr Vendor V = Vendor::AMD;

  // 18: CUDA / C++ — vendor translation via HIPIFY.
  EntryBuilder(V, Model::CUDA, Language::Cpp, 18)
      .rated(SupportCategory::IndirectGood, Provider::PlatformVendor,
             "AMD's HIPIFY semi-automatically translates CUDA to the native "
             "HIP model")
      .route(translator_route("HIPIFY + hipcc", Provider::PlatformVendor,
                              Maturity::Production, "hipify-perl",
                              "translated code runs via hipcc with "
                              "HIP_PLATFORM=amd"))
      .add_to(m);

  // 19: CUDA / Fortran — GPUFORT only.
  EntryBuilder(V, Model::CUDA, Language::Fortran, 19)
      .rated(SupportCategory::Limited, Provider::PlatformVendor,
             "GPUFORT converts some CUDA Fortran; use-case-driven coverage, "
             "unmaintained for two years")
      .route(translator_route("GPUFORT", Provider::PlatformVendor,
                              Maturity::Unmaintained, "gpufort",
                              "to Fortran+OpenMP (AOMP) or Fortran+hipfort "
                              "with extracted C kernels"))
      .add_to(m);

  // 20: HIP / C++ — the native model.
  EntryBuilder(V, Model::HIP, Language::Cpp, 20)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "HIP is the native model of the ROCm platform")
      .pinned()
      .route(compiler_route("ROCm / hipcc", Provider::PlatformVendor,
                            Maturity::Production, "hipcc",
                            {"--offload-arch=gfx90a"},
                            {"HIP_PLATFORM=amd"},
                            "compiler driver calling AMD Clang (AMDGPU "
                            "backend)"))
      .add_to(m);

  // 4 (shared): HIP / Fortran — hipfort, vendor-provided on AMD.
  EntryBuilder(V, Model::HIP, Language::Fortran, 4)
      .rated(SupportCategory::Some, Provider::PlatformVendor,
             "hipfort is AMD's own bindings set; covers the C API surface "
             "but offers no Fortran kernel language")
      .route(bindings_route("hipfort", Provider::PlatformVendor,
                            Maturity::Stable, "hipfc",
                            "MIT-licensed interfaces to HIP API and ROCm "
                            "libraries"))
      .add_to(m);

  // 21: SYCL / C++.
  EntryBuilder(V, Model::SYCL, Language::Cpp, 21)
      .rated(SupportCategory::NonVendorGood, Provider::Community,
             "Open SYCL and DPC++ (ROCm plugin) provide comprehensive "
             "third-party support; no SYCLomatic-like conversion tool")
      .route(compiler_route("Open SYCL", Provider::Community, Maturity::Stable,
                            "syclcc", {}, {},
                            "relies on HIP/ROCm support in Clang"))
      .route(compiler_route("DPC++ (ROCm plugin)", Provider::OtherVendor,
                            Maturity::Stable, "clang++ (intel/llvm)",
                            {"-fsycl",
                             "-fsycl-targets=amdgcn-amd-amdhsa"}))
      .add_to(m);

  // 6 (shared): SYCL / Fortran.
  EntryBuilder(V, Model::SYCL, Language::Fortran, 6)
      .rated(SupportCategory::None, Provider::Nobody,
             "SYCL is C++17-based; no pre-made bindings exist")
      .add_to(m);

  // 22: OpenACC / C++.
  EntryBuilder(V, Model::OpenACC, Language::Cpp, 22)
      .rated(SupportCategory::NonVendorGood, Provider::Community,
             "GCC and Clacc support OpenACC C/C++ on AMD GPUs; nothing from "
             "AMD itself")
      .route(compiler_route("GCC", Provider::Community, Maturity::Stable,
                            "g++",
                            {"-fopenacc",
                             "-foffload=amdgcn-amdhsa=\"-march=gfx906\""}))
      .route(compiler_route("Clacc", Provider::Community,
                            Maturity::Experimental, "clang (clacc)",
                            {"-fopenacc",
                             "-fopenmp-targets=amdgcn-amd-amdhsa"},
                            {}, "translates OpenACC to OpenMP"))
      .route(translator_route("Intel OpenACC->OpenMP migration tool",
                              Provider::OtherVendor, Maturity::Stable,
                              "intel-application-migration-tool",
                              "source translation also usable for AMD"))
      .add_to(m);

  // 23: OpenACC / Fortran.
  EntryBuilder(V, Model::OpenACC, Language::Fortran, 23)
      .rated(SupportCategory::NonVendorGood, Provider::Community,
             "gfortran and the HPE Cray PE carry OpenACC Fortran on AMD; "
             "AMD's own GPUFORT is an unmaintained research project")
      .route(compiler_route("GCC", Provider::Community, Maturity::Stable,
                            "gfortran", {"-fopenacc"}))
      .route(compiler_route("HPE Cray PE", Provider::OtherVendor,
                            Maturity::Production, "ftn", {"-hacc"}))
      .route(compiler_route("LLVM Flang (Flacc)", Provider::Community,
                            Maturity::Experimental, "flang-new"))
      .route(translator_route("GPUFORT", Provider::PlatformVendor,
                              Maturity::Unmaintained, "gpufort"))
      .route(translator_route("Intel OpenACC->OpenMP migration tool",
                              Provider::OtherVendor, Maturity::Stable,
                              "intel-application-migration-tool"))
      .add_to(m);

  // 24: OpenMP / C++ — AOMP.
  EntryBuilder(V, Model::OpenMP, Language::Cpp, 24)
      .rated(SupportCategory::Some, Provider::PlatformVendor,
             "AOMP supports most OpenMP 4.5 and some 5.0 features")
      .route(compiler_route("AOMP", Provider::PlatformVendor,
                            Maturity::Production, "aompcc", {"-fopenmp"},
                            {}, "Clang-based, usually shipped with ROCm"))
      .route(compiler_route("HPE Cray PE", Provider::OtherVendor,
                            Maturity::Production, "CC", {"-fopenmp"}))
      .add_to(m);

  // 25: OpenMP / Fortran.
  EntryBuilder(V, Model::OpenMP, Language::Fortran, 25)
      .rated(SupportCategory::Some, Provider::PlatformVendor,
             "AOMP's flang supports OpenMP offloading in Fortran")
      .route(compiler_route("AOMP (flang)", Provider::PlatformVendor,
                            Maturity::Production, "flang", {"-fopenmp"}))
      .route(compiler_route("HPE Cray PE", Provider::OtherVendor,
                            Maturity::Production, "ftn", {"-fopenmp"}))
      .add_to(m);

  // 26: Standard / C++ — "most ambivalence" per Sec. 5.
  EntryBuilder(V, Model::Standard, Language::Cpp, 26)
      .rated(SupportCategory::Limited, Provider::PlatformVendor,
             "no production-grade vendor solution yet; roc-stdpar is in "
             "development, Open SYCL and oneDPL routes are experimental")
      .pinned()
      .route(runtime_route("roc-stdpar", Provider::PlatformVendor,
                           Maturity::Experimental, "clang++ (roc-stdpar)",
                           {"-stdpar"},
                           "aims to merge into upstream LLVM"))
      .route(compiler_route("Open SYCL stdpar", Provider::Community,
                            Maturity::Experimental, "syclcc",
                            {"--hipsycl-stdpar"}))
      .route(library_route("oneDPL via DPC++", Provider::OtherVendor,
                           Maturity::Experimental, "clang++ (intel/llvm)",
                           "DPC++ has experimental AMD support"))
      .add_to(m);

  // 27: Standard / Fortran — nothing.
  EntryBuilder(V, Model::Standard, Language::Fortran, 27)
      .rated(SupportCategory::None, Provider::Nobody,
             "no known way to launch Fortran standard parallelism on AMD "
             "GPUs")
      .add_to(m);

  // 28: Kokkos / C++.
  EntryBuilder(V, Model::Kokkos, Language::Cpp, 28)
      .rated(SupportCategory::NonVendorGood, Provider::Community,
             "mature HIP/ROCm backend, plus an OpenMP offload backend")
      .route(library_route("Kokkos HIP backend", Provider::Community,
                           Maturity::Production, "hipcc"))
      .route(library_route("Kokkos OpenMP offload backend",
                           Provider::Community, Maturity::Experimental,
                           "clang++"))
      .add_to(m);

  // 14 (shared): Kokkos / Fortran.
  EntryBuilder(V, Model::Kokkos, Language::Fortran, 14)
      .rated(SupportCategory::Limited, Provider::Community,
             "only via the Fortran Language Compatibility Layer")
      .route(bindings_route("Kokkos FLCL", Provider::Community,
                            Maturity::Stable, "flcl"))
      .add_to(m);

  // 29: Alpaka / C++.
  EntryBuilder(V, Model::Alpaka, Language::Cpp, 29)
      .rated(SupportCategory::NonVendorGood, Provider::Community,
             "HIP backend or OpenMP backend")
      .route(library_route("Alpaka HIP backend", Provider::Community,
                           Maturity::Production, "hipcc"))
      .route(library_route("Alpaka OpenMP backend", Provider::Community,
                           Maturity::Stable, "clang++"))
      .add_to(m);

  // 16 (shared): Alpaka / Fortran.
  EntryBuilder(V, Model::Alpaka, Language::Fortran, 16)
      .rated(SupportCategory::None, Provider::Nobody,
             "C++ model; no ready-made Fortran support")
      .add_to(m);

  // 30: Python — third-party, partly unmaintained.
  EntryBuilder(V, Model::Python, Language::Python, 30)
      .rated(SupportCategory::Limited, Provider::Community,
             "no official AMD support; CuPy/ROCm is experimental, Numba's "
             "AMD target is unmaintained, PyHIP is low-level")
      .route(library_route("CuPy (ROCm)", Provider::Community,
                           Maturity::Experimental,
                           "pip install cupy-rocm-5-0"))
      .route(bindings_route("PyHIP", Provider::Community,
                            Maturity::Experimental,
                            "pip install pyhip-interface"))
      .route(library_route("Numba (ROCm)", Provider::Community,
                           Maturity::Unmaintained, "pip install numba",
                           "AMD support no longer maintained"))
      .route(bindings_route("PyOpenCL", Provider::Community, Maturity::Stable,
                            "pip install pyopencl"))
      .add_to(m);
}

}  // namespace mcmm::data::detail
