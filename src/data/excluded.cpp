#include "data/excluded.hpp"

#include <sstream>

namespace mcmm::data {

const std::vector<ExcludedModel>& excluded_models() {
  static const std::vector<ExcludedModel> models = {
      {"RAJA",
       "similar in spirit to, albeit not as popular as Kokkos (about "
       "one-third as many GitHub stars)",
       false},
      {"OpenCL",
       "never gained much traction in the HPC-GPU space, mostly due to "
       "the lukewarm support by NVIDIA",
       false},
      {"HPX",
       "similar to pSTL support, arguably more extensive, but less "
       "'standard'",
       false},
      {"C++AMP", "deprecated in 2022", true},
      {"libtorch",
       "in principle the core of PyTorch can be used as a form of "
       "programming model",
       false},
      {"libompx",
       "a compatibility-library prototype implementing vendor-agnostic "
       "pSTL-like algorithms; no compatibility libraries were included",
       false},
  };
  return models;
}

std::string excluded_models_note() {
  std::ostringstream out;
  out << "Models considered but excluded (paper Sec. 5, Model "
         "Selection):\n";
  for (const ExcludedModel& m : excluded_models()) {
    out << "  - " << m.name << (m.deprecated ? " [deprecated]" : "")
        << ": " << m.reason << "\n";
  }
  return out.str();
}

}  // namespace mcmm::data
