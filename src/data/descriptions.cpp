// The 44 numbered descriptions of the paper's Sec. 4, condensed. Item ids
// match the paper's reference numbers exactly (1..44). Where one item covers
// several cells (items 4, 6, 14, 16) the title lists all platforms, as in
// the paper.

#include "data/dataset.hpp"

namespace mcmm::data::detail {

void add_descriptions(CompatibilityMatrix& m) {
  const auto add = [&m](int id, std::string title, std::string text,
                        std::vector<std::string> refs) {
    m.add_description(
        Description{id, std::move(title), std::move(text), std::move(refs)});
  };

  add(1, "NVIDIA - CUDA - C++",
      "CUDA C/C++ is supported on NVIDIA GPUs through the CUDA Toolkit "
      "(first released 2007, current version 12.2). The toolkit covers "
      "nearly all aspects of the platform: programming API with language "
      "extensions, libraries, profiling/debugging tools, compiler, and "
      "management tools. Higher languages are translated to the PTX ISA, "
      "then compiled to SASS device binary. As the platform reference, the "
      "support is very comprehensive. NVIDIA GPUs can also be used via "
      "Clang's CUDA support in the LLVM toolchain.",
      {"NVIDIA CUDA Toolkit"});
  add(2, "NVIDIA - CUDA - Fortran",
      "CUDA Fortran, a proprietary Fortran extension by NVIDIA, is "
      "supported via the NVIDIA HPC SDK (NVHPC), activated through the "
      "-cuda switch of nvfortran. It models the CUDA C/C++ definitions "
      "closely, supports explicit Fortran kernels and 'cuf kernels' "
      "(compiler-generated parallel code). CUDA Fortran support was "
      "recently merged into Flang, the LLVM-based Fortran compiler.",
      {"NVIDIA CUDA Fortran"});
  add(3, "NVIDIA - HIP - C++",
      "HIP programs can directly use NVIDIA GPUs via a CUDA backend. API "
      "calls are named similarly (hipMalloc() for cudaMalloc()) and kernel "
      "syntax keywords are identical; HIP also interfaces CUDA libraries "
      "(hipblasSaxpy() for cublasSaxpy()). Target NVIDIA GPUs through "
      "hipcc with HIP_PLATFORM=nvidia. AMD offers the HIPIFY conversion "
      "tool to create HIP code from CUDA.",
      {"AMD HIP"});
  add(4, "NVIDIA, AMD - HIP - Fortran",
      "No Fortran version of HIP exists; HIP is solely a C/C++ model. But "
      "AMD offers an extensive set of ready-made interfaces to the HIP API "
      "and HIP/ROCm libraries with hipfort (MIT-licensed). All interfaces "
      "implement C functionality; CUDA-like Fortran kernel extensions are "
      "not available.",
      {"AMD hipfort"});
  add(5, "NVIDIA - SYCL - C++",
      "No direct support by NVIDIA, but SYCL runs on NVIDIA GPUs through "
      "multiple venues: DPC++ (Intel-led open-source LLVM compiler; also a "
      "oneAPI plugin), Open SYCL (previously hipSYCL; via LLVM CUDA "
      "support or NVHPC nvc++), and formerly ComputeCpp by CodePlay "
      "(unsupported since September 2023). Intel offers the SYCLomatic "
      "tool to translate CUDA code to SYCL.",
      {"Intel DPC++", "Open SYCL"});
  add(6, "NVIDIA, AMD, Intel - SYCL - Fortran",
      "SYCL is a C++-based programming model (C++17) and by its nature "
      "does not support Fortran. No pre-made bindings are available.",
      {"Khronos SYCL"});
  add(7, "NVIDIA - OpenACC - C++",
      "OpenACC C/C++ is supported most extensively through the NVIDIA HPC "
      "SDK (nvc/nvc++ with -acc -gpu), conforming to OpenACC 2.7. Good "
      "support also in GCC since 5.0 (OpenACC 2.6, -fopenacc, nvptx "
      "architecture) and through Clacc, which adapts LLVM/Clang and "
      "translates OpenACC to OpenMP during compilation.",
      {"NVIDIA HPC SDK", "GCC OpenACC", "Clacc"});
  add(8, "NVIDIA - OpenACC - Fortran",
      "Similar to OpenACC C/C++ but not identical: NVHPC nvfortran, GCC "
      "gfortran (identical options to C/C++), LLVM Flang (initially via "
      "the Flacc project, now in main LLVM), and the HPE Cray Programming "
      "Environment (ftn -hacc).",
      {"NVIDIA HPC SDK", "GCC OpenACC", "Flacc", "HPE Cray PE"});
  add(9, "NVIDIA - OpenMP - C++",
      "OpenMP offloading to NVIDIA GPUs through multiple venues: NVHPC "
      "nvc/nvc++ (-mp; only a subset of OpenMP 5.0), GCC (-fopenmp with "
      "-foffload; OpenMP 4.5 complete, 5.x in progress), Clang (-fopenmp "
      "-fopenmp-targets=...; 4.5 plus selected 5.0/5.1), HPE Cray PE "
      "(subset of 5.0/5.1), and AMD's AOMP.",
      {"NVIDIA HPC SDK", "GCC OpenMP", "Clang OpenMP", "HPE Cray PE"});
  add(10, "NVIDIA - OpenMP - Fortran",
      "Nearly identical to C/C++: NVHPC nvfortran (-mp), GCC gfortran, "
      "LLVM Flang (-mp, when compiled via Clang), and the HPE Cray "
      "Programming Environment.",
      {"NVIDIA HPC SDK", "GCC OpenMP", "Flang", "HPE Cray PE"});
  add(11, "NVIDIA - Standard - C++",
      "Parallel algorithms and data structures of the C++ parallel STL "
      "are supported through nvc++ of the NVIDIA HPC SDK via "
      "-stdpar=gpu. Open SYCL is implementing pSTL support "
      "(--hipsycl-stdpar), and Intel's DPC++/oneDPL can target NVIDIA "
      "GPUs as well.",
      {"NVIDIA HPC SDK", "Open SYCL", "Intel oneDPL"});
  add(12, "NVIDIA - Standard - Fortran",
      "Standard language parallelism of Fortran, mainly do concurrent, is "
      "supported through nvfortran of the NVIDIA HPC SDK, enabled via "
      "-stdpar=gpu.",
      {"NVIDIA HPC SDK"});
  add(13, "NVIDIA - Kokkos - C++",
      "Kokkos supports NVIDIA GPUs with multiple backends: native CUDA "
      "C/C++ (nvcc), NVIDIA HPC SDK (CUDA support in nvc++), and Clang "
      "(direct CUDA support or OpenMP offloading, clang++).",
      {"Kokkos"});
  add(14, "NVIDIA, AMD, Intel - Kokkos - Fortran",
      "Kokkos is a C++ programming model, but an official Fortran Language "
      "Compatibility Layer (FLCL) is available. Through this layer, GPUs "
      "can be used as supported by Kokkos C++.",
      {"Kokkos FLCL"});
  add(15, "NVIDIA - Alpaka - C++",
      "Alpaka supports NVIDIA GPUs in C++ (C++17), either through nvcc or "
      "LLVM/Clang's CUDA support (clang++).",
      {"Alpaka"});
  add(16, "NVIDIA, AMD, Intel - Alpaka - Fortran",
      "Alpaka is a C++ programming model and no ready-made Fortran support "
      "exists.",
      {"Alpaka"});
  add(17, "NVIDIA - etc - Python",
      "Multiple venues: CUDA Python (NVIDIA's low-level interfaces to CUDA "
      "C/C++; PyPI cuda-python), PyCUDA (community; higher-level features "
      "with its own C++ base layer), CuPy (NumPy-compatible GPU "
      "primitives, custom kernels, library bindings; cupy-cuda12x), Numba "
      "(decorator-based JIT acceleration), and cuNumeric (NVIDIA; "
      "NumPy-inspired, scales to multiple GPUs via Legate).",
      {"CUDA Python", "PyCUDA", "CuPy", "Numba", "cuNumeric"});
  add(18, "AMD - CUDA - C++",
      "CUDA is not directly supported on AMD GPUs, but it can be "
      "translated to HIP through AMD's HIPIFY. Using hipcc and "
      "HIP_PLATFORM=amd, CUDA-to-HIP-translated code can be executed.",
      {"AMD HIPIFY"});
  add(19, "AMD - CUDA - Fortran",
      "No direct support, but AMD offers GPUFORT, a source-to-source "
      "translator converting some CUDA Fortran to Fortran+OpenMP (via "
      "AOMP) or Fortran with HIP bindings and extracted C kernels (via "
      "hipfort). Covered functionality is driven by use-case requirements; "
      "the last commit is two years old.",
      {"AMD GPUFORT"});
  add(20, "AMD - HIP - C++",
      "HIP C++ is the native programming model for AMD GPUs and fully "
      "supports the devices. Part of the ROCm platform (compilers, "
      "libraries, tools, drivers; mostly open source). Compile with hipcc "
      "(a compiler-driver wrapper finally calling AMD's Clang with the "
      "AMDGPU backend), HIP_PLATFORM=amd, --offload-arch=gfx90a etc.",
      {"AMD HIP", "AMD ROCm"});
  add(21, "AMD - SYCL - C++",
      "No direct support by AMD, but third-party software: Open SYCL "
      "(previously hipSYCL; relies on HIP/ROCm support in Clang, all "
      "internal compilation models can target AMD) and DPC++ (open source "
      "or via the oneAPI ROCm plugin). Unlike for CUDA, no conversion "
      "tool like SYCLomatic exists.",
      {"Open SYCL", "Intel DPC++"});
  add(22, "AMD - OpenACC - C++",
      "Not supported by AMD itself; third-party support through GCC "
      "(-fopenacc, -foffload=amdgcn-amdhsa=\"-march=gfx906\") or Clacc "
      "(translating OpenACC to OpenMP, -fopenacc with "
      "-fopenmp-targets=amdgcn-amd-amdhsa). Intel's OpenACC-to-OpenMP "
      "source translator can also be used for AMD's platform.",
      {"GCC OpenACC", "Clacc"});
  add(23, "AMD - OpenACC - Fortran",
      "No native AMD support, but AMD supplies GPUFORT (research project; "
      "source-to-source to Fortran+OpenMP or Fortran+hipfort with "
      "extracted C kernels; use-case-driven, last commit two years old). "
      "Community support through GCC gfortran, upcoming in LLVM (Flacc), "
      "the HPE Cray Programming Environment, and Intel's OpenACC-to-OpenMP "
      "translator.",
      {"AMD GPUFORT", "GCC OpenACC", "Flacc", "HPE Cray PE"});
  add(24, "AMD - OpenMP - C++",
      "AMD offers AOMP, a dedicated Clang-based compiler for OpenMP "
      "C/C++ offloading, usually shipped with ROCm. Supports most OpenMP "
      "4.5 and some 5.0 features; usual Clang options apply (-fopenmp). "
      "The HPE Cray Programming Environment also supports OpenMP on AMD "
      "GPUs.",
      {"AMD AOMP", "HPE Cray PE"});
  add(25, "AMD - OpenMP - Fortran",
      "Through AOMP, AMD supports OpenMP offloading in Fortran using the "
      "flang executable and Clang-typical options (foremost -fopenmp). "
      "Also available through the HPE Cray Programming Environment.",
      {"AMD AOMP", "HPE Cray PE"});
  add(26, "AMD - Standard - C++",
      "AMD does not yet provide production-grade pSTL support. Under "
      "development is roc-stdpar (ROCm Standard Parallelism Runtime, "
      "-stdpar, aiming at upstream LLVM). Open SYCL is adding pSTL "
      "support (--hipsycl-stdpar) usable on AMD backends; Intel's oneDPL "
      "via DPC++ has experimental AMD support.",
      {"AMD roc-stdpar", "Open SYCL", "Intel oneDPL"});
  add(27, "AMD - Standard - Fortran",
      "There is no (known) way to launch Standard-based parallel "
      "algorithms in Fortran on AMD GPUs.",
      {});
  add(28, "AMD - Kokkos - C++",
      "Kokkos supports AMD GPUs mainly through the HIP/ROCm backend; an "
      "OpenMP offloading backend is also available.",
      {"Kokkos"});
  add(29, "AMD - Alpaka - C++",
      "Alpaka supports AMD GPUs in C++ through HIP or through an OpenMP "
      "backend.",
      {"Alpaka"});
  add(30, "AMD - etc - Python",
      "AMD does not officially support GPU programming with Python; "
      "third-party solutions exist: CuPy experimentally supports "
      "ROCm (cupy-rocm-5-0), Numba once had AMD support (unmaintained), "
      "low-level bindings exist with PyHIP (pyhip-interface), and "
      "PyOpenCL binds OpenCL.",
      {"CuPy", "PyHIP", "PyOpenCL"});
  add(31, "Intel - CUDA - C++",
      "Intel does not support CUDA C/C++ on their GPUs, but offers "
      "SYCLomatic, an open-source CUDA-to-SYCL translator (commercially "
      "the DPC++ Compatibility Tool). The community project chipStar "
      "(previously CHIP-SPV, 1.0 released) targets Intel GPUs from CUDA "
      "via Clang's CUDA support and a cuspv wrapper. ZLUDA implemented "
      "CUDA on Intel GPUs but is not maintained anymore.",
      {"Intel SYCLomatic", "chipStar", "ZLUDA"});
  add(32, "Intel - CUDA - Fortran",
      "No direct support for CUDA Fortran on Intel GPUs. A simple example "
      "binding SYCL to a (CUDA) Fortran program via ISO_C_BINDING can be "
      "found on GitHub.",
      {});
  add(33, "Intel - HIP - C++",
      "No native HIP support on Intel GPUs. The open-source project "
      "chipStar supports HIP by mapping it to OpenCL or Intel's Level "
      "Zero runtime, using an LLVM-based toolchain with HIP and SPIR-V "
      "functionality.",
      {"chipStar"});
  add(34, "Intel - HIP - Fortran",
      "HIP for Fortran does not exist, and there are no translation "
      "efforts for Intel GPUs.",
      {});
  add(35, "Intel - SYCL - C++",
      "SYCL (C++17-based) is Intel's prime programming model for their "
      "GPUs, implemented via DPC++, an LLVM-based toolchain (own LLVM "
      "fork, upstreaming planned). Intel releases the commercial Intel "
      "oneAPI DPC++ compiler on top. Open SYCL also supports Intel GPUs "
      "(SPIR-V or Level Zero). ComputeCpp was a previous solution, "
      "unsupported since September 2023.",
      {"Intel DPC++", "Intel oneAPI", "Open SYCL"});
  add(36, "Intel - OpenACC - C++",
      "No direct OpenACC C/C++ support for Intel GPUs. Intel offers a "
      "Python-based source translator, the Application Migration Tool for "
      "OpenACC to OpenMP API.",
      {"Intel OpenACC migration tool"});
  add(37, "Intel - OpenACC - Fortran",
      "No direct support either; Intel's OpenACC-to-OpenMP source "
      "translation tool also supports Fortran.",
      {"Intel OpenACC migration tool"});
  add(38, "Intel - OpenMP - C++",
      "OpenMP is a second key programming model for Intel GPUs and "
      "well-supported: built into Intel oneAPI DPC++/C++. All OpenMP 4.5 "
      "and most 5.0/5.1 features are supported. Enable with -qopenmp of "
      "icpx and -fopenmp-targets=spir64.",
      {"Intel oneAPI"});
  add(39, "Intel - OpenMP - Fortran",
      "OpenMP in Fortran is Intel's main route for Fortran applications "
      "on their GPUs, supported through the LLVM-based Intel Fortran "
      "Compiler ifx (not the Classic compiler), part of the oneAPI HPC "
      "Toolkit; enabled via -qopenmp and -fopenmp-targets=spir64.",
      {"Intel oneAPI"});
  add(40, "Intel - Standard - C++",
      "Intel supports C++ standard parallelism through the open-source "
      "oneDPL (oneAPI DPC++ Library), implementing the pSTL on top of the "
      "DPC++ compiler; algorithms, data structures, and policies live in "
      "the oneapi::dpl:: namespace. Open SYCL is adding pSTL support "
      "(--hipsycl-stdpar).",
      {"Intel oneDPL", "Open SYCL"});
  add(41, "Intel - Standard - Fortran",
      "Fortran standard parallelism (do concurrent) is supported through "
      "the Intel Fortran Compiler ifx (oneAPI HPC toolkit); support added "
      "in oneAPI 2022.1 and extended since. Use -qopenmp together with "
      "-fopenmp-target-do-concurrent and -fopenmp-targets=spir64.",
      {"Intel oneAPI"});
  add(42, "Intel - Kokkos - C++",
      "No direct support by Intel, but Kokkos supports Intel GPUs through "
      "an experimental SYCL backend.",
      {"Kokkos"});
  add(43, "Intel - Alpaka - C++",
      "Since v0.9.0, Alpaka contains experimental SYCL support with which "
      "Intel GPUs can be targeted. Alpaka can also fall back to an OpenMP "
      "backend.",
      {"Alpaka"});
  add(44, "Intel - etc - Python",
      "Three notable packages: dpctl (Data Parallel Control; low-level "
      "Python bindings to SYCL), numba-dpex (Data-parallel Extension to "
      "Numba; JIT for Intel GPUs), and dpnp (Data Parallel Extension for "
      "NumPy; NumPy API with Intel GPU support).",
      {"Intel dpctl", "Intel numba-dpex", "Intel dpnp"});
}

}  // namespace mcmm::data::detail
