// Intel row of Fig. 1: 17 cells (items 31..44 plus shared items 6, 14, 16).

#include "data/builders.hpp"
#include "data/dataset.hpp"

namespace mcmm::data::detail {

void add_intel_entries(CompatibilityMatrix& m) {
  constexpr Vendor V = Vendor::Intel;

  // 31: CUDA / C++ — dual-rated, pinned by Sec. 5 ("double-rating ...
  // honors chipStar besides the CUDA-to-SYCL conversion tool").
  EntryBuilder(V, Model::CUDA, Language::Cpp, 31)
      .rated(SupportCategory::IndirectGood, Provider::PlatformVendor,
             "SYCLomatic / DPC++ Compatibility Tool translate CUDA to the "
             "native SYCL model")
      .rated(SupportCategory::Limited, Provider::Community,
             "chipStar runs CUDA via Clang + SPIR-V; young (1.0); ZLUDA is "
             "unmaintained")
      .pinned()
      .route(translator_route("SYCLomatic", Provider::PlatformVendor,
                              Maturity::Production, "c2s",
                              "open-source CUDA -> SYCL translator"))
      .route(translator_route("DPC++ Compatibility Tool",
                              Provider::PlatformVendor, Maturity::Production,
                              "dpct", "commercial SYCLomatic variant"))
      .route(compiler_route("chipStar (cuspv)", Provider::Community,
                            Maturity::Experimental, "cuspv", {}, {},
                            "CUDA via Clang's CUDA support and SPIR-V"))
      .route(runtime_route("ZLUDA", Provider::Community,
                           Maturity::Unmaintained, "zluda", {},
                           "CUDA implementation for Intel GPUs; abandoned"))
      .add_to(m);

  // 32: CUDA / Fortran — nothing real.
  EntryBuilder(V, Model::CUDA, Language::Fortran, 32)
      .rated(SupportCategory::None, Provider::Nobody,
             "only a GitHub example binding SYCL into Fortran via "
             "ISO_C_BINDING — the paper's definition of 'no support'")
      .add_to(m);

  // 33: HIP / C++ — chipStar.
  EntryBuilder(V, Model::HIP, Language::Cpp, 33)
      .rated(SupportCategory::Limited, Provider::Community,
             "chipStar maps HIP to OpenCL or Level Zero; LLVM-based, young")
      .route(compiler_route("chipStar", Provider::Community,
                            Maturity::Experimental, "hipcc (chipStar)", {},
                            {}, "HIP -> OpenCL / Level Zero via SPIR-V"))
      .add_to(m);

  // 34: HIP / Fortran — nothing.
  EntryBuilder(V, Model::HIP, Language::Fortran, 34)
      .rated(SupportCategory::None, Provider::Nobody,
             "HIP for Fortran does not exist; no translation efforts for "
             "Intel GPUs")
      .add_to(m);

  // 35: SYCL / C++ — the prime model.
  EntryBuilder(V, Model::SYCL, Language::Cpp, 35)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "SYCL is Intel's prime model, implemented via DPC++ and the "
             "commercial oneAPI DPC++ compiler")
      .pinned()
      .route(compiler_route("DPC++ (intel/llvm)", Provider::PlatformVendor,
                            Maturity::Production, "clang++ (intel/llvm)",
                            {"-fsycl"}))
      .route(compiler_route("Intel oneAPI DPC++/C++",
                            Provider::PlatformVendor, Maturity::Production,
                            "icpx", {"-fsycl"}))
      .route(compiler_route("Open SYCL", Provider::Community, Maturity::Stable,
                            "syclcc", {}, {}, "SPIR-V or Level Zero"))
      .route(compiler_route("ComputeCpp", Provider::Community,
                            Maturity::Retired, "compute++", {}, {},
                            "unsupported since Sep 2023"))
      .add_to(m);

  // 6 (shared): SYCL / Fortran.
  EntryBuilder(V, Model::SYCL, Language::Fortran, 6)
      .rated(SupportCategory::None, Provider::Nobody,
             "SYCL is C++17-based; no pre-made bindings exist")
      .add_to(m);

  // 36: OpenACC / C++ — migration tool only.
  EntryBuilder(V, Model::OpenACC, Language::Cpp, 36)
      .rated(SupportCategory::Limited, Provider::PlatformVendor,
             "no direct support; only a one-shot Python-based source "
             "translator to OpenMP")
      .route(translator_route("Intel Application Migration Tool for OpenACC "
                              "to OpenMP API",
                              Provider::PlatformVendor, Maturity::Stable,
                              "intel-application-migration-tool"))
      .add_to(m);

  // 37: OpenACC / Fortran — same tool.
  EntryBuilder(V, Model::OpenACC, Language::Fortran, 37)
      .rated(SupportCategory::Limited, Provider::PlatformVendor,
             "the OpenACC-to-OpenMP migration tool also handles Fortran")
      .route(translator_route("Intel Application Migration Tool for OpenACC "
                              "to OpenMP API",
                              Provider::PlatformVendor, Maturity::Stable,
                              "intel-application-migration-tool"))
      .add_to(m);

  // 38: OpenMP / C++ — second key model.
  EntryBuilder(V, Model::OpenMP, Language::Cpp, 38)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "all OpenMP 4.5 and most 5.0/5.1 features in oneAPI DPC++/C++")
      .route(compiler_route("Intel oneAPI DPC++/C++",
                            Provider::PlatformVendor, Maturity::Production,
                            "icpx",
                            {"-qopenmp", "-fopenmp-targets=spir64"}))
      .add_to(m);

  // 39: OpenMP / Fortran — the main Fortran route.
  EntryBuilder(V, Model::OpenMP, Language::Fortran, 39)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "ifx (LLVM-based) is Intel's main route for Fortran "
             "applications on their GPUs")
      .route(compiler_route("Intel Fortran Compiler (ifx)",
                            Provider::PlatformVendor, Maturity::Production,
                            "ifx",
                            {"-qopenmp", "-fopenmp-targets=spir64"}))
      .add_to(m);

  // 40: Standard / C++ — pinned 'some' by Sec. 5 ("all pSTL functionality
  // currently resides in a custom namespace").
  EntryBuilder(V, Model::Standard, Language::Cpp, 40)
      .rated(SupportCategory::Some, Provider::PlatformVendor,
             "oneDPL implements the pSTL on DPC++, but in the "
             "oneapi::dpl:: namespace rather than std::")
      .pinned()
      .route(library_route("oneDPL", Provider::PlatformVendor,
                           Maturity::Production, "icpx",
                           "algorithms/policies in oneapi::dpl::"))
      .route(compiler_route("Open SYCL stdpar", Provider::Community,
                            Maturity::Experimental, "syclcc",
                            {"--hipsycl-stdpar"}))
      .add_to(m);

  // 41: Standard / Fortran — ifx do concurrent.
  EntryBuilder(V, Model::Standard, Language::Fortran, 41)
      .rated(SupportCategory::Some, Provider::PlatformVendor,
             "do concurrent offload added in oneAPI 2022.1 and extended "
             "since; needs an OpenMP flag combination")
      .route(compiler_route("Intel Fortran Compiler (ifx)",
                            Provider::PlatformVendor, Maturity::Production,
                            "ifx",
                            {"-qopenmp", "-fopenmp-target-do-concurrent",
                             "-fopenmp-targets=spir64"}))
      .add_to(m);

  // 42: Kokkos / C++ — experimental SYCL backend.
  EntryBuilder(V, Model::Kokkos, Language::Cpp, 42)
      .rated(SupportCategory::Limited, Provider::Community,
             "Kokkos targets Intel GPUs only through an experimental SYCL "
             "backend")
      .route(library_route("Kokkos SYCL backend", Provider::Community,
                           Maturity::Experimental, "icpx"))
      .add_to(m);

  // 14 (shared): Kokkos / Fortran.
  EntryBuilder(V, Model::Kokkos, Language::Fortran, 14)
      .rated(SupportCategory::Limited, Provider::Community,
             "only via the Fortran Language Compatibility Layer")
      .route(bindings_route("Kokkos FLCL", Provider::Community,
                            Maturity::Stable, "flcl"))
      .add_to(m);

  // 43: Alpaka / C++ — experimental since v0.9.0.
  EntryBuilder(V, Model::Alpaka, Language::Cpp, 43)
      .rated(SupportCategory::Limited, Provider::Community,
             "experimental SYCL support since v0.9.0; OpenMP fallback")
      .route(library_route("Alpaka SYCL backend", Provider::Community,
                           Maturity::Experimental, "icpx"))
      .route(library_route("Alpaka OpenMP backend", Provider::Community,
                           Maturity::Stable, "icpx"))
      .add_to(m);

  // 16 (shared): Alpaka / Fortran.
  EntryBuilder(V, Model::Alpaka, Language::Fortran, 16)
      .rated(SupportCategory::None, Provider::Nobody,
             "C++ model; no ready-made Fortran support")
      .add_to(m);

  // 44: Python — three vendor packages.
  EntryBuilder(V, Model::Python, Language::Python, 44)
      .rated(SupportCategory::Some, Provider::PlatformVendor,
             "dpctl, numba-dpex, and dpnp are vendor-provided but younger "
             "and narrower than the NVIDIA Python stack")
      .route(bindings_route("dpctl", Provider::PlatformVendor,
                            Maturity::Stable, "pip install dpctl",
                            "low-level bindings to SYCL"))
      .route(library_route("numba-dpex", Provider::PlatformVendor,
                           Maturity::Stable, "conda install numba-dpex",
                           "JIT extension of Numba"))
      .route(library_route("dpnp", Provider::PlatformVendor, Maturity::Stable,
                           "pip install dpnp",
                           "NumPy API with Intel GPU support"))
      .add_to(m);
}

}  // namespace mcmm::data::detail
