// NVIDIA row of Fig. 1: 17 cells (items 1..17 of Sec. 4, plus shared items
// 4, 6, 14, 16 for the Fortran columns of C++-only models).

#include "data/builders.hpp"
#include "data/dataset.hpp"

namespace mcmm::data::detail {

void add_nvidia_entries(CompatibilityMatrix& m) {
  constexpr Vendor V = Vendor::NVIDIA;

  // 1: CUDA / C++ — the platform reference.
  EntryBuilder(V, Model::CUDA, Language::Cpp, 1)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "CUDA Toolkit is the platform reference; very comprehensive")
      .pinned()
      .route(compiler_route("CUDA Toolkit", Provider::PlatformVendor,
                            Maturity::Production, "nvcc", {},
                            {}, "reference implementation, PTX -> SASS"))
      .route(compiler_route("Clang CUDA", Provider::Community,
                            Maturity::Stable, "clang++",
                            {"--cuda-gpu-arch=sm_90"}, {},
                            "LLVM emits PTX; needs CUDA toolkit for final "
                            "compilation"))
      .add_to(m);

  // 2: CUDA / Fortran — NVHPC CUDA Fortran.
  EntryBuilder(V, Model::CUDA, Language::Fortran, 2)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "CUDA Fortran via NVHPC implements most CUDA API features "
             "including explicit kernels and cuf kernels")
      .route(compiler_route("NVIDIA HPC SDK (CUDA Fortran)",
                            Provider::PlatformVendor, Maturity::Production,
                            "nvfortran", {"-cuda"}))
      .route(compiler_route("LLVM Flang (CUDA Fortran)", Provider::Community,
                            Maturity::Experimental, "flang-new", {},
                            {}, "support recently merged into Flang"))
      .add_to(m);

  // 3: HIP / C++ — AMD's model with a CUDA backend.
  EntryBuilder(V, Model::HIP, Language::Cpp, 3)
      .rated(SupportCategory::NonVendorGood, Provider::OtherVendor,
             "HIP's CUDA backend maps near-1:1 onto CUDA; maintained by AMD, "
             "not by NVIDIA")
      .route(compiler_route("hipcc (CUDA backend)", Provider::OtherVendor,
                            Maturity::Production, "hipcc", {},
                            {"HIP_PLATFORM=nvidia"}))
      .route(translator_route("HIPIFY (CUDA -> HIP)", Provider::OtherVendor,
                              Maturity::Production, "hipify-perl",
                              "to initially create HIP code from CUDA"))
      .add_to(m);

  // 4 (shared with AMD): HIP / Fortran — hipfort bindings only.
  EntryBuilder(V, Model::HIP, Language::Fortran, 4)
      .rated(SupportCategory::Limited, Provider::OtherVendor,
             "hipfort interfaces cover the C API surface but no Fortran "
             "kernel language; on NVIDIA additionally routed through the "
             "CUDA backend")
      .route(bindings_route("hipfort", Provider::OtherVendor,
                            Maturity::Stable, "hipfc",
                            "MIT-licensed interfaces to HIP API and ROCm "
                            "libraries"))
      .add_to(m);

  // 5: SYCL / C++ — DPC++ / Open SYCL.
  EntryBuilder(V, Model::SYCL, Language::Cpp, 5)
      .rated(SupportCategory::NonVendorGood, Provider::OtherVendor,
             "comprehensive via Intel's DPC++ (CUDA plugin) and Open SYCL; "
             "no support by NVIDIA itself")
      .route(compiler_route("DPC++ (CUDA plugin)", Provider::OtherVendor,
                            Maturity::Production, "clang++ (intel/llvm)",
                            {"-fsycl",
                             "-fsycl-targets=nvptx64-nvidia-cuda"}))
      .route(compiler_route("Open SYCL", Provider::Community, Maturity::Stable,
                            "syclcc", {},
                            {}, "via LLVM CUDA support or NVHPC nvc++"))
      .route(compiler_route("ComputeCpp", Provider::Community,
                            Maturity::Retired, "compute++", {}, {},
                            "CodePlay product, unsupported since Sep 2023"))
      .route(translator_route("SYCLomatic (CUDA -> SYCL)",
                              Provider::OtherVendor, Maturity::Production,
                              "c2s"))
      .add_to(m);

  // 6 (shared): SYCL / Fortran — none anywhere.
  EntryBuilder(V, Model::SYCL, Language::Fortran, 6)
      .rated(SupportCategory::None, Provider::Nobody,
             "SYCL is C++17-based; no pre-made bindings exist")
      .add_to(m);

  // 7: OpenACC / C++ — pinned 'full' by the paper's Sec. 5 discussion.
  EntryBuilder(V, Model::OpenACC, Language::Cpp, 7)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "NVHPC conforms to OpenACC 2.7; rated complete by the paper")
      .pinned()
      .route(compiler_route("NVIDIA HPC SDK", Provider::PlatformVendor,
                            Maturity::Production, "nvc++",
                            {"-acc", "-gpu"}))
      .route(compiler_route("GCC", Provider::Community, Maturity::Stable,
                            "g++", {"-fopenacc"}, {},
                            "OpenACC 2.6 via nvptx since GCC 5.0"))
      .route(compiler_route("Clacc", Provider::Community,
                            Maturity::Experimental, "clang (clacc)",
                            {"-fopenacc"}, {},
                            "translates OpenACC to OpenMP inside LLVM"))
      .add_to(m);

  // 8: OpenACC / Fortran.
  EntryBuilder(V, Model::OpenACC, Language::Fortran, 8)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "nvfortran mirrors the C/C++ OpenACC support")
      .route(compiler_route("NVIDIA HPC SDK", Provider::PlatformVendor,
                            Maturity::Production, "nvfortran",
                            {"-acc", "-gpu"}))
      .route(compiler_route("GCC", Provider::Community, Maturity::Stable,
                            "gfortran", {"-fopenacc"}))
      .route(compiler_route("LLVM Flang (Flacc)", Provider::Community,
                            Maturity::Experimental, "flang-new", {},
                            {}, "initially contributed by the Flacc project"))
      .route(compiler_route("HPE Cray PE", Provider::OtherVendor,
                            Maturity::Production, "ftn", {"-hacc"}))
      .add_to(m);

  // 9: OpenMP / C++ — pinned 'some' by the Sec. 5 discussion.
  EntryBuilder(V, Model::OpenMP, Language::Cpp, 9)
      .rated(SupportCategory::Some, Provider::PlatformVendor,
             "NVHPC implements only a subset of OpenMP 5.0 and is upfront "
             "about missing offloading features")
      .pinned()
      .route(compiler_route("NVIDIA HPC SDK", Provider::PlatformVendor,
                            Maturity::Production, "nvc++", {"-mp=gpu"}, {},
                            "subset of OpenMP 5.0"))
      .route(compiler_route("GCC", Provider::Community, Maturity::Stable,
                            "g++", {"-fopenmp", "-foffload=nvptx-none"}, {},
                            "OpenMP 4.5 complete; 5.x in progress"))
      .route(compiler_route("Clang", Provider::Community, Maturity::Stable,
                            "clang++",
                            {"-fopenmp",
                             "-fopenmp-targets=nvptx64-nvidia-cuda"},
                            {}, "4.5 plus selected 5.0/5.1 features"))
      .route(compiler_route("HPE Cray PE", Provider::OtherVendor,
                            Maturity::Production, "CC", {"-fopenmp"}))
      .route(compiler_route("AOMP", Provider::OtherVendor, Maturity::Stable,
                            "aompcc", {"-fopenmp"}, {},
                            "AMD's Clang/LLVM compiler also targets NVIDIA"))
      .add_to(m);

  // 10: OpenMP / Fortran.
  EntryBuilder(V, Model::OpenMP, Language::Fortran, 10)
      .rated(SupportCategory::Some, Provider::PlatformVendor,
             "nearly identical to the C/C++ OpenMP situation")
      .route(compiler_route("NVIDIA HPC SDK", Provider::PlatformVendor,
                            Maturity::Production, "nvfortran", {"-mp=gpu"}))
      .route(compiler_route("GCC", Provider::Community, Maturity::Stable,
                            "gfortran", {"-fopenmp"}))
      .route(compiler_route("LLVM Flang", Provider::Community,
                            Maturity::Experimental, "flang-new", {"-mp"},
                            {}, "only when Flang is compiled via Clang"))
      .route(compiler_route("HPE Cray PE", Provider::OtherVendor,
                            Maturity::Production, "ftn", {"-fopenmp"}))
      .add_to(m);

  // 11: Standard / C++ — nvc++ -stdpar.
  EntryBuilder(V, Model::Standard, Language::Cpp, 11)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "pSTL offloading is production-supported in nvc++")
      .route(compiler_route("NVIDIA HPC SDK", Provider::PlatformVendor,
                            Maturity::Production, "nvc++",
                            {"-stdpar=gpu"}))
      .route(compiler_route("Open SYCL stdpar", Provider::Community,
                            Maturity::Experimental, "syclcc",
                            {"--hipsycl-stdpar"}))
      .route(library_route("oneDPL via DPC++", Provider::OtherVendor,
                           Maturity::Experimental, "clang++ (intel/llvm)",
                           "pSTL algorithms usable on NVIDIA GPUs"))
      .add_to(m);

  // 12: Standard / Fortran — do concurrent.
  EntryBuilder(V, Model::Standard, Language::Fortran, 12)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "do concurrent offloading via nvfortran -stdpar=gpu")
      .route(compiler_route("NVIDIA HPC SDK", Provider::PlatformVendor,
                            Maturity::Production, "nvfortran",
                            {"-stdpar=gpu"}))
      .add_to(m);

  // 13: Kokkos / C++.
  EntryBuilder(V, Model::Kokkos, Language::Cpp, 13)
      .rated(SupportCategory::NonVendorGood, Provider::Community,
             "multiple mature Kokkos backends target NVIDIA GPUs")
      .route(library_route("Kokkos CUDA backend", Provider::Community,
                           Maturity::Production, "nvcc"))
      .route(library_route("Kokkos NVHPC backend", Provider::Community,
                           Maturity::Stable, "nvc++"))
      .route(library_route("Kokkos Clang backend", Provider::Community,
                           Maturity::Stable, "clang++",
                           "direct CUDA support or OpenMP offloading"))
      .add_to(m);

  // 14 (shared): Kokkos / Fortran — FLCL.
  EntryBuilder(V, Model::Kokkos, Language::Fortran, 14)
      .rated(SupportCategory::Limited, Provider::Community,
             "only via the Fortran Language Compatibility Layer")
      .route(bindings_route("Kokkos FLCL", Provider::Community,
                            Maturity::Stable, "flcl"))
      .add_to(m);

  // 15: Alpaka / C++.
  EntryBuilder(V, Model::Alpaka, Language::Cpp, 15)
      .rated(SupportCategory::NonVendorGood, Provider::Community,
             "CUDA backend via nvcc or clang++")
      .route(library_route("Alpaka CUDA backend", Provider::Community,
                           Maturity::Production, "nvcc"))
      .route(library_route("Alpaka Clang-CUDA backend", Provider::Community,
                           Maturity::Stable, "clang++"))
      .add_to(m);

  // 16 (shared): Alpaka / Fortran — none.
  EntryBuilder(V, Model::Alpaka, Language::Fortran, 16)
      .rated(SupportCategory::None, Provider::Nobody,
             "C++ model; no ready-made Fortran support")
      .add_to(m);

  // 17: Python — dual-rated (vendor full + community good), pinned by Sec. 5.
  EntryBuilder(V, Model::Python, Language::Python, 17)
      .rated(SupportCategory::Full, Provider::PlatformVendor,
             "CUDA Python and cuNumeric are vendor-provided and "
             "comprehensive")
      .rated(SupportCategory::NonVendorGood, Provider::Community,
             "the open-source pick-up (PyCUDA, CuPy, Numba) is acknowledged "
             "with a second, non-vendor rating")
      .pinned()
      .route(bindings_route("CUDA Python", Provider::PlatformVendor,
                            Maturity::Production, "pip install cuda-python"))
      .route(library_route("CuPy", Provider::Community, Maturity::Production,
                           "pip install cupy-cuda12x"))
      .route(library_route("PyCUDA", Provider::Community, Maturity::Stable,
                           "pip install pycuda"))
      .route(library_route("Numba", Provider::Community, Maturity::Production,
                           "pip install numba"))
      .route(library_route("cuNumeric", Provider::PlatformVendor,
                           Maturity::Stable, "pip install cunumeric",
                           "NumPy-inspired; scales via Legate"))
      .add_to(m);
}

}  // namespace mcmm::data::detail
