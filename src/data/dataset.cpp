#include "data/dataset.hpp"

namespace mcmm::data {

CompatibilityMatrix build_paper_matrix() {
  CompatibilityMatrix m;
  detail::add_descriptions(m);
  detail::add_nvidia_entries(m);
  detail::add_amd_entries(m);
  detail::add_intel_entries(m);
  m.validate();
  return m;
}

const CompatibilityMatrix& paper_matrix() {
  static const CompatibilityMatrix matrix = build_paper_matrix();
  return matrix;
}

}  // namespace mcmm::data
