#pragma once
// Small fluent builder used by the per-vendor dataset translation units to
// keep the 51 cell definitions readable.

#include <utility>

#include "core/entry.hpp"
#include "core/matrix.hpp"

namespace mcmm::data::detail {

class EntryBuilder {
 public:
  EntryBuilder(Vendor v, Model m, Language l, int description_id) {
    entry_.combo = Combination{v, m, l};
    entry_.description_id = description_id;
  }

  EntryBuilder& rated(SupportCategory c, Provider p, std::string rationale) {
    entry_.ratings.push_back(Rating{c, p, std::move(rationale)});
    return *this;
  }

  EntryBuilder& route(Route r) {
    entry_.routes.push_back(std::move(r));
    return *this;
  }

  /// Marks the rating as pinned by the paper's Sec. 5 discussion (not merely
  /// inferred from the description text).
  EntryBuilder& pinned() {
    entry_.inferred = false;
    return *this;
  }

  void add_to(CompatibilityMatrix& m) { m.add_entry(std::move(entry_)); }

 private:
  SupportEntry entry_;
};

/// Shorthand route constructors.
[[nodiscard]] inline Route compiler_route(std::string name, Provider p,
                                          Maturity mat, std::string toolchain,
                                          std::vector<std::string> flags = {},
                                          std::vector<std::string> env = {},
                                          std::string notes = {}) {
  Route r;
  r.name = std::move(name);
  r.kind = RouteKind::Compiler;
  r.provider = p;
  r.maturity = mat;
  r.toolchain = std::move(toolchain);
  r.flags = std::move(flags);
  r.environment = std::move(env);
  r.notes = std::move(notes);
  return r;
}

[[nodiscard]] inline Route translator_route(std::string name, Provider p,
                                            Maturity mat,
                                            std::string toolchain,
                                            std::string notes = {}) {
  Route r;
  r.name = std::move(name);
  r.kind = RouteKind::Translator;
  r.provider = p;
  r.maturity = mat;
  r.toolchain = std::move(toolchain);
  r.notes = std::move(notes);
  return r;
}

[[nodiscard]] inline Route bindings_route(std::string name, Provider p,
                                          Maturity mat, std::string toolchain,
                                          std::string notes = {}) {
  Route r;
  r.name = std::move(name);
  r.kind = RouteKind::Bindings;
  r.provider = p;
  r.maturity = mat;
  r.toolchain = std::move(toolchain);
  r.notes = std::move(notes);
  return r;
}

[[nodiscard]] inline Route library_route(std::string name, Provider p,
                                         Maturity mat, std::string toolchain,
                                         std::string notes = {}) {
  Route r;
  r.name = std::move(name);
  r.kind = RouteKind::Library;
  r.provider = p;
  r.maturity = mat;
  r.toolchain = std::move(toolchain);
  r.notes = std::move(notes);
  return r;
}

[[nodiscard]] inline Route runtime_route(std::string name, Provider p,
                                         Maturity mat, std::string toolchain,
                                         std::vector<std::string> flags = {},
                                         std::string notes = {}) {
  Route r;
  r.name = std::move(name);
  r.kind = RouteKind::Runtime;
  r.provider = p;
  r.maturity = mat;
  r.toolchain = std::move(toolchain);
  r.flags = std::move(flags);
  r.notes = std::move(notes);
  return r;
}

}  // namespace mcmm::data::detail
