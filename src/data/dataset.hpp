#pragma once
// The paper's full dataset: Fig. 1's 51 cells and Sec. 4's 44 descriptions,
// encoded as a validated CompatibilityMatrix.
//
// Provenance: ratings reconstructed from the Sec. 4 descriptions and the
// Sec. 5 discussion (see DESIGN.md Sec. 5); every entry carries
// `inferred = true` except the cells the discussion pins explicitly.

#include "core/matrix.hpp"

namespace mcmm::data {

/// The singleton paper dataset; built and validated on first use.
[[nodiscard]] const CompatibilityMatrix& paper_matrix();

/// Builds a fresh copy (used by mutation-style tests and the YAML pipeline).
[[nodiscard]] CompatibilityMatrix build_paper_matrix();

// Internal builders, one translation unit per vendor row (plus the shared
// Sec. 4 descriptions).
namespace detail {
void add_descriptions(CompatibilityMatrix& m);
void add_nvidia_entries(CompatibilityMatrix& m);
void add_amd_entries(CompatibilityMatrix& m);
void add_intel_entries(CompatibilityMatrix& m);
}  // namespace detail

}  // namespace mcmm::data
