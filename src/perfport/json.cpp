// BENCH_perfport.json writer (schema "mcmm-perfport-v1"): raw route
// samples plus the aggregated Figure 2 rows. Only simulated-clock
// quantities appear, so the payload is byte-deterministic across host
// thread counts — asserted by tests and diffed by the perf-trajectory CI
// job.

#include <cstdio>

#include "perfport/perfport.hpp"

namespace mcmm::perfport {
namespace {

[[nodiscard]] std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

[[nodiscard]] std::string json_str(std::string_view v) {
  // Route labels and enum names contain no characters needing escapes.
  return "\"" + std::string(v) + "\"";
}

}  // namespace

std::string report_json(const PerfReport& report) {
  std::string out = "{\n  \"schema\": \"mcmm-perfport-v1\",\n";

  out += "  \"config\": {\"sizes\": [";
  for (std::size_t i = 0; i < report.config.sizes.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(report.config.sizes[i]);
  }
  out += "], \"reps\": " + std::to_string(report.config.reps);
  out += ", \"schedules\": [";
  for (std::size_t i = 0; i < report.config.schedules.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_str(to_string(report.config.schedules[i]));
  }
  out += "], \"vendors\": [";
  for (std::size_t i = 0; i < report.config.vendors.size(); ++i) {
    if (i > 0) out += ", ";
    out += json_str(to_string(report.config.vendors[i]));
  }
  out += "]},\n";

  out += "  \"route_count\": " + std::to_string(report.route_count) + ",\n";
  out += "  \"kernel_count\": " +
         std::to_string(report.config.kernels.empty()
                            ? kAllPerfKernels.size()
                            : report.config.kernels.size()) +
         ",\n";

  // The weak-scaling section only appears when the report carries one, so
  // campaign-only payloads stay byte-identical to the committed goldens.
  if (!report.weak_scaling.empty()) {
    out += "  \"weak_scaling\": [\n";
    for (std::size_t i = 0; i < report.weak_scaling.size(); ++i) {
      const WeakScalingSample& w = report.weak_scaling[i];
      out += "    {\"vendor\": " + json_str(to_string(w.vendor));
      out += ", \"devices\": " + std::to_string(w.devices);
      out += ", \"n_per_device\": " + std::to_string(w.n_per_device);
      out += ", \"reps\": " + std::to_string(w.reps);
      out += ", \"graph_nodes\": " + std::to_string(w.graph_nodes);
      out += ", \"sim_us\": " + json_num(w.sim_us);
      out += ", \"p2p_us\": " + json_num(w.p2p_us);
      out += ", \"efficiency\": " + json_num(w.efficiency);
      out += std::string(", \"verified\": ") +
             (w.verified ? "true" : "false");
      out += ", \"shares\": [";
      for (std::size_t j = 0; j < w.shares.size(); ++j) {
        const DeviceShare& s = w.shares[j];
        if (j > 0) out += ", ";
        out += "{\"device\": " + json_str(s.device);
        out += ", \"ordinal\": " + std::to_string(s.ordinal);
        out += ", \"sim_us\": " + json_num(s.sim_us);
        out += ", \"achieved_gbps\": " + json_num(s.achieved_gbps);
        out += ", \"pct_of_peak\": " + json_num(s.pct_of_peak) + "}";
      }
      out += "]}";
      if (i + 1 < report.weak_scaling.size()) out += ",";
      out += "\n";
    }
    out += "  ],\n";
  }

  out += "  \"samples\": [\n";
  for (std::size_t i = 0; i < report.samples.size(); ++i) {
    const RouteSample& s = report.samples[i];
    out += "    {\"route\": " + json_str(s.route);
    out += ", \"model\": " + json_str(to_string(s.model));
    out += ", \"vendor\": " + json_str(to_string(s.vendor));
    out += ", \"schedule\": " + json_str(s.schedule);
    out += ", \"kernel\": " + json_str(to_string(s.kernel));
    out += ", \"n\": " + std::to_string(s.n);
    out += ", \"launches\": " + std::to_string(s.launches);
    out += ", \"sim_us\": " + json_num(s.sim_us);
    out += ", \"achieved_gbps\": " + json_num(s.achieved_gbps);
    out += ", \"pct_of_peak\": " + json_num(s.pct_of_peak);
    out += ", \"peak_gbps\": " + json_num(s.peak_gbps);
    out += std::string(", \"verified\": ") +
           (s.verified ? "true" : "false") + "}";
    if (i + 1 < report.samples.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";

  out += "  \"rows\": [\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const PerfRow& r = report.rows[i];
    out += "    {\"model\": " + json_str(to_string(r.model));
    out += ", \"kernel\": " + json_str(to_string(r.kernel));
    out += ", \"pp\": " + json_num(r.pp);
    out += ", \"cells\": [";
    for (std::size_t j = 0; j < r.cells.size(); ++j) {
      const PerfCell& c = r.cells[j];
      if (j > 0) out += ", ";
      out += "{\"vendor\": " + json_str(to_string(c.vendor));
      out += std::string(", \"supported\": ") +
             (c.supported ? "true" : "false");
      out += ", \"efficiency\": " + json_num(c.efficiency);
      out += ", \"route\": " + json_str(c.route);
      out += ", \"achieved_gbps\": " + json_num(c.achieved_gbps) + "}";
    }
    out += "]}";
    if (i + 1 < report.rows.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace mcmm::perfport
