#pragma once
// perfport: the BabelStream performance-portability campaign — the paper's
// named future work (Sec. 5/6). It runs the extended stream suite
// (Copy/Mul/Add/Triad/Dot + Reduce + Uneven) over every (model x vendor x
// schedule) route the compatibility matrix allows on gpusim, measures each
// route through gpuprof's per-kernel roofline summaries (achieved GB/s vs
// the vendor's peak — the ProfilerHooks path, not re-instrumentation), and
// derives the two literature metrics:
//
//   - efficiency-vs-peak per (model, kernel, vendor) cell, as in Fridman
//     et al.'s OpenMP-offloading study: achieved bandwidth / vendor peak;
//   - Reguly's harmonic-mean performance portability per (model, kernel):
//       PP(a, p, H) = |H| / sum_{i in H} 1/e_i   if a is supported on all
//       of H, else 0 (the Pennycook convention for unsupported platforms).
//
// The result renders as "Figure 2" next to the compatibility matrix's
// Figure 1 (src/render/perf.hpp) and serves at GET /v1/perf.
//
// This header is deliberately self-contained over core + the gpusim
// Schedule enum so the render layer can consume the report types without
// linking the campaign (which pulls in the model embeddings).

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "gpusim/thread_pool.hpp"  // gpusim::Schedule

namespace mcmm::perfport {

/// Kernels of the campaign, in run order within one repetition.
enum class PerfKernel : std::uint8_t {
  Copy,
  Mul,
  Add,
  Triad,
  Dot,
  Reduce,
  Uneven,
};

inline constexpr std::array<PerfKernel, 7> kAllPerfKernels{
    PerfKernel::Copy, PerfKernel::Mul,    PerfKernel::Add,   PerfKernel::Triad,
    PerfKernel::Dot,  PerfKernel::Reduce, PerfKernel::Uneven};

[[nodiscard]] constexpr std::string_view to_string(PerfKernel k) noexcept {
  switch (k) {
    case PerfKernel::Copy:
      return "Copy";
    case PerfKernel::Mul:
      return "Mul";
    case PerfKernel::Add:
      return "Add";
    case PerfKernel::Triad:
      return "Triad";
    case PerfKernel::Dot:
      return "Dot";
    case PerfKernel::Reduce:
      return "Reduce";
    case PerfKernel::Uneven:
      return "Uneven";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(
    gpusim::Schedule s) noexcept {
  return s == gpusim::Schedule::Static ? "static" : "dynamic";
}

/// Campaign parameters. The defaults are what the committed Figure 2
/// golden, `mcmm perfbench`, and GET /v1/perf all use — they must agree
/// for the golden-byte gates to hold.
struct CampaignConfig {
  /// Problem-size ladder, ascending; cells are scored at the last entry.
  std::vector<std::size_t> sizes{1u << 16, 1u << 18, 1u << 20};
  int reps{2};
  /// Vendor set H of the PP metric, in report order.
  std::vector<Vendor> vendors{Vendor::AMD, Vendor::Intel, Vendor::NVIDIA};
  /// Host-side launch schedules to sweep (models without a schedule knob
  /// run identically under both; simulated time is schedule-invariant).
  std::vector<gpusim::Schedule> schedules{gpusim::Schedule::Static,
                                          gpusim::Schedule::Dynamic};
  /// Empty = all models with a stream embedding / all suite kernels.
  std::vector<Model> models{};
  std::vector<PerfKernel> kernels{};
};

/// One measured (route, schedule, size, kernel) point, straight from the
/// gpuprof roofline summary of that route's capture. Only simulated-clock
/// quantities are recorded, so a campaign is bit-deterministic across
/// host thread counts.
struct RouteSample {
  std::string route;  ///< e.g. "SYCL(DPC++)"
  Model model{};
  Vendor vendor{};
  std::string schedule;  ///< "static" / "dynamic"
  PerfKernel kernel{};
  std::size_t n{};
  std::uint64_t launches{};
  double sim_us{};
  double achieved_gbps{};
  double pct_of_peak{};  ///< 0..100
  double peak_gbps{};
  bool verified{};
};

/// One (model, kernel, vendor) cell: best efficiency-vs-peak over that
/// model's routes and schedules at the top ladder size.
struct PerfCell {
  Vendor vendor{};
  bool supported{false};
  double efficiency{0};  ///< 0..1; 0 when unsupported
  std::string route;     ///< winning route label; empty when unsupported
  double achieved_gbps{0};
};

/// One Figure 2 row: a (model, kernel) pair with per-vendor cells and the
/// Reguly PP over the campaign's vendor set.
struct PerfRow {
  Model model{};
  PerfKernel kernel{};
  std::vector<PerfCell> cells;  ///< aligned with PerfReport::vendors
  double pp{0};
};

/// Weak-scaling campaign parameters: the BabelStream cycle plus
/// Reduce/Uneven at a fixed problem size *per device*, captured once into
/// a per-device kernel graph and replayed `reps` times on 1/2/4 devices
/// of each vendor. Dot/Reduce partial results are gathered to device 0
/// over the simulated peer link.
struct WeakScalingConfig {
  std::size_t n_per_device{1u << 20};
  int reps{2};
  std::vector<unsigned> device_counts{1, 2, 4};
  std::vector<Vendor> vendors{Vendor::AMD, Vendor::Intel, Vendor::NVIDIA};
};

/// One device's share of a weak-scaling scenario, from the gpuprof
/// roofline attribution of its folded graph-replay samples.
struct DeviceShare {
  std::string device;  ///< ordinal-suffixed name, e.g. "... MI250X-like #1"
  unsigned ordinal{};
  double sim_us{};         ///< kernel+memset simulated time on this device
  double bytes{};          ///< declared traffic across the suite kernels
  double achieved_gbps{};  ///< bytes / sim time, aggregate over the suite
  double pct_of_peak{};    ///< achieved vs the device's nominal peak
};

/// One (vendor, device count) weak-scaling point. sim_us is T_N: the
/// maximum simulated queue time over the scenario's devices after the
/// result gather (replays + P2P communication; verification D2H reads are
/// excluded). Weak-scaling efficiency is T_1 / T_N, ideal 1.0 — the gap
/// is the inter-device gather cost.
struct WeakScalingSample {
  Vendor vendor{};
  unsigned devices{};
  std::size_t n_per_device{};
  int reps{};
  std::size_t graph_nodes{};  ///< nodes in each per-device captured graph
  double sim_us{};            ///< T_N, microseconds
  double p2p_us{};            ///< simulated peer-link time of the gather
  double efficiency{};        ///< T_1 / T_N in [0, 1]
  bool verified{};
  std::vector<DeviceShare> shares;  ///< ordinal order
};

struct PerfReport {
  CampaignConfig config;
  std::size_t route_count{0};  ///< distinct (route, vendor) pairs run
  std::vector<RouteSample> samples;
  std::vector<PerfRow> rows;  ///< model-major, kernel-minor
  /// Multi-device weak-scaling section (run_weak_scaling); empty unless
  /// requested — an empty vector is omitted from the JSON payload and the
  /// Figure 2 renders, keeping the single-device goldens byte-stable.
  std::vector<WeakScalingSample> weak_scaling;
};

/// Reguly's performance-portability metric over a platform set's
/// efficiencies: the harmonic mean |H| / sum(1/e_i) when every e_i > 0,
/// and 0 as soon as any platform is unsupported (e_i <= 0). Efficiencies
/// are fractions in [0, 1].
[[nodiscard]] double performance_portability(
    const std::vector<double>& efficiencies) noexcept;

/// Aggregates raw samples into Figure 2 rows (best route per cell at
/// `top_n`, PP over `vendors`). Exposed separately from run_campaign for
/// metric-math tests.
[[nodiscard]] std::vector<PerfRow> build_rows(
    const std::vector<RouteSample>& samples,
    const std::vector<Vendor>& vendors, std::size_t top_n);

/// Runs the campaign: every stream route of every requested vendor, under
/// every requested schedule and size, measured via
/// gpuprof::capture_kernel_summaries. Takes exclusive use of the profiler
/// for the duration (see that function's contract). The AMD stdpar route
/// (roc-stdpar) is toggled on for the campaign and restored afterwards,
/// mirroring the executable-matrix benches.
[[nodiscard]] PerfReport run_campaign(const CampaignConfig& config = {});

/// Runs the multi-device weak-scaling campaign on pristine devices: per
/// (vendor, device count) the suite graph is captured once per device and
/// replayed, partials are gathered to device 0 over the peer link, and
/// per-device roofline shares come from gpuprof's folded graph-replay
/// attribution. Takes exclusive use of the profiler; materialized sibling
/// devices are trimmed back (one pristine device per vendor remains).
[[nodiscard]] std::vector<WeakScalingSample> run_weak_scaling(
    const WeakScalingConfig& config = {});

/// BENCH_perfport.json payload (schema "mcmm-perfport-v1").
[[nodiscard]] std::string report_json(const PerfReport& report);

}  // namespace mcmm::perfport
