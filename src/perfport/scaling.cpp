// The multi-device weak-scaling campaign: the BabelStream cycle plus
// Reduce/Uneven at a fixed n *per device*, dogfooding the gpusim graph
// layer — each device's repetition suite is captured once into a Graph,
// instantiated, and replayed, so the per-device roofline attribution
// flows through gpuprof's folded graph-replay path rather than per-launch
// events. Dot/Reduce partials are gathered to device 0 over the simulated
// peer link (memcpy_peer), whose cost is the only thing separating T_N
// from T_1 — the weak-scaling efficiency story.

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "bench_support/stream.hpp"
#include "gpuprof/gpuprof.hpp"
#include "gpusim/descriptor.hpp"
#include "gpusim/device.hpp"
#include "gpusim/graph.hpp"
#include "gpusim/profiler.hpp"
#include "perfport/perfport.hpp"

namespace mcmm::perfport {
namespace {

using gpusim::KernelCosts;

/// Chunk count of the two-phase Dot/Reduce reductions; fixed so the
/// double-precision combine order (and thus the bits) never depends on
/// the host pool size.
constexpr std::uint32_t kChunks = 64;

[[nodiscard]] KernelCosts elementwise_costs(bench::StreamKernel k,
                                            std::size_t n) {
  const double nd = static_cast<double>(n) * sizeof(double);
  KernelCosts c;
  switch (k) {
    case bench::StreamKernel::Copy:
      c.bytes_read = nd;
      c.bytes_written = nd;
      break;
    case bench::StreamKernel::Mul:
      c.bytes_read = nd;
      c.bytes_written = nd;
      c.flops = static_cast<double>(n);
      break;
    case bench::StreamKernel::Add:
      c.bytes_read = 2 * nd;
      c.bytes_written = nd;
      c.flops = static_cast<double>(n);
      break;
    case bench::StreamKernel::Triad:
      c.bytes_read = 2 * nd;
      c.bytes_written = nd;
      c.flops = 2.0 * static_cast<double>(n);
      break;
    case bench::StreamKernel::Dot:
      c.bytes_read = 2 * nd;
      c.bytes_written = kChunks * sizeof(double);
      c.flops = 2.0 * static_cast<double>(n);
      break;
    case bench::StreamKernel::Reduce:
      c.bytes_read = nd;
      c.bytes_written = kChunks * sizeof(double);
      c.flops = 2.0 * static_cast<double>(n);
      break;
    case bench::StreamKernel::Uneven: {
      const double span =
          static_cast<double>(bench::uneven_span_total(n)) * sizeof(double);
      c.bytes_read = span;
      c.bytes_written = nd;
      c.flops = span / sizeof(double);
      break;
    }
  }
  return c;
}

[[nodiscard]] KernelCosts combine_costs() {
  KernelCosts c;
  c.bytes_read = kChunks * sizeof(double);
  c.bytes_written = sizeof(double);
  c.flops = kChunks;
  return c;
}

/// One scenario device: its buffers and the captured/instantiated suite
/// graph. results[0] holds the device's Dot value, results[1] its Reduce
/// value, both overwritten per repetition by the combine nodes.
struct ScenarioDevice {
  gpusim::Device* dev{nullptr};
  gpusim::Queue* q{nullptr};
  double* a{nullptr};
  double* b{nullptr};
  double* c{nullptr};
  double* partials{nullptr};
  double* results{nullptr};
  gpusim::Graph graph;
  std::vector<gpusim::ExecutableGraph> exec;  ///< 0 or 1; Graph is move-only

  void alloc(std::size_t n) {
    a = static_cast<double*>(dev->allocate(n * sizeof(double)));
    b = static_cast<double*>(dev->allocate(n * sizeof(double)));
    c = static_cast<double*>(dev->allocate(n * sizeof(double)));
    partials = static_cast<double*>(dev->allocate(kChunks * sizeof(double)));
    results = static_cast<double*>(dev->allocate(2 * sizeof(double)));
  }
  void free_all() {
    for (void* p : {static_cast<void*>(a), static_cast<void*>(b),
                    static_cast<void*>(c), static_cast<void*>(partials),
                    static_cast<void*>(results)}) {
      if (p != nullptr) dev->deallocate(p);
    }
    a = b = c = partials = results = nullptr;
  }
};

/// Captures one repetition of the suite — Copy, Mul, Add, Triad, Dot
/// (partials + combine), Reduce (partials + combine), Uneven — from the
/// device's queue into d.graph, then instantiates it.
void capture_suite(ScenarioDevice& d, std::size_t n) {
  using bench::StreamKernel;
  const auto cfg = gpusim::launch_1d(n, 256);
  const auto chunk_cfg = gpusim::launch_1d(kChunks, 1);
  const auto one_cfg = gpusim::launch_1d(1, 1);
  const std::size_t chunk = (n + kChunks - 1) / kChunks;

  d.q->begin_capture(d.graph);
  {
    gpusim::KernelLabelScope label("Copy");
    (void)d.q->launch(cfg, elementwise_costs(StreamKernel::Copy, n),
                      [a = d.a, c = d.c, n](const gpusim::WorkItem& it) {
                        const std::size_t i = it.global_x();
                        if (i < n) c[i] = a[i];
                      });
  }
  {
    gpusim::KernelLabelScope label("Mul");
    (void)d.q->launch(cfg, elementwise_costs(StreamKernel::Mul, n),
                      [b = d.b, c = d.c, n](const gpusim::WorkItem& it) {
                        const std::size_t i = it.global_x();
                        if (i < n) b[i] = bench::kScalar * c[i];
                      });
  }
  {
    gpusim::KernelLabelScope label("Add");
    (void)d.q->launch(cfg, elementwise_costs(StreamKernel::Add, n),
                      [a = d.a, b = d.b, c = d.c,
                       n](const gpusim::WorkItem& it) {
                        const std::size_t i = it.global_x();
                        if (i < n) c[i] = a[i] + b[i];
                      });
  }
  {
    gpusim::KernelLabelScope label("Triad");
    (void)d.q->launch(cfg, elementwise_costs(StreamKernel::Triad, n),
                      [a = d.a, b = d.b, c = d.c,
                       n](const gpusim::WorkItem& it) {
                        const std::size_t i = it.global_x();
                        if (i < n) a[i] = b[i] + bench::kScalar * c[i];
                      });
  }
  {
    gpusim::KernelLabelScope label("Dot");
    (void)d.q->launch(chunk_cfg, elementwise_costs(StreamKernel::Dot, n),
                      [a = d.a, b = d.b, p = d.partials, n,
                       chunk](const gpusim::WorkItem& it) {
                        const std::size_t cidx = it.global_x();
                        if (cidx >= kChunks) return;
                        const std::size_t begin = cidx * chunk;
                        const std::size_t end = std::min(n, begin + chunk);
                        double acc = 0.0;
                        for (std::size_t i = begin; i < end; ++i) {
                          acc += a[i] * b[i];
                        }
                        p[cidx] = acc;
                      });
    (void)d.q->launch(one_cfg, combine_costs(),
                      [p = d.partials, r = d.results](const gpusim::WorkItem&) {
                        double acc = 0.0;
                        for (std::uint32_t i = 0; i < kChunks; ++i) {
                          acc += p[i];
                        }
                        r[0] = acc;
                      });
  }
  {
    gpusim::KernelLabelScope label("Reduce");
    (void)d.q->launch(chunk_cfg, elementwise_costs(StreamKernel::Reduce, n),
                      [a = d.a, p = d.partials, n,
                       chunk](const gpusim::WorkItem& it) {
                        const std::size_t cidx = it.global_x();
                        if (cidx >= kChunks) return;
                        const std::size_t begin = cidx * chunk;
                        const std::size_t end = std::min(n, begin + chunk);
                        double acc = 0.0;
                        for (std::size_t i = begin; i < end; ++i) {
                          acc += a[i] * a[i];
                        }
                        p[cidx] = acc;
                      });
    (void)d.q->launch(one_cfg, combine_costs(),
                      [p = d.partials, r = d.results](const gpusim::WorkItem&) {
                        double acc = 0.0;
                        for (std::uint32_t i = 0; i < kChunks; ++i) {
                          acc += p[i];
                        }
                        r[1] = acc;
                      });
  }
  {
    gpusim::KernelLabelScope label("Uneven");
    (void)d.q->launch(cfg, elementwise_costs(StreamKernel::Uneven, n),
                      [a = d.a, c = d.c, n](const gpusim::WorkItem& it) {
                        const std::size_t i = it.global_x();
                        if (i >= n) return;
                        const std::size_t start =
                            i - (i % bench::kUnevenTile);
                        double acc = 0.0;
                        for (std::size_t j = start; j <= i; ++j) {
                          acc += a[j];
                        }
                        c[i] = acc;
                      });
  }
  (void)d.q->end_capture();
  d.exec.emplace_back(d.graph, *d.q);
}

/// Scalar model of the per-device suite after `reps` repetitions (every
/// element of a device evolves identically; all devices run identical
/// data). Mirrors the eager campaign's verifier.
struct ScalarModel {
  double va{bench::kInitA};
  double vb{bench::kInitB};
  double dot{0};
  double reduce{0};

  explicit ScalarModel(std::size_t n, int reps) {
    double vc = bench::kInitC;
    for (int r = 0; r < reps; ++r) {
      vc = va;
      vb = bench::kScalar * vc;
      vc = va + vb;
      va = vb + bench::kScalar * vc;
    }
    dot = va * vb * static_cast<double>(n);
    reduce = va * va * static_cast<double>(n);
  }
};

[[nodiscard]] bool close(double x, double y, double tol) {
  const double scale = std::max({std::fabs(x), std::fabs(y), 1e-30});
  return std::fabs(x - y) / scale < tol;
}

[[nodiscard]] WeakScalingSample run_scenario(Vendor vendor, unsigned count,
                                             const WeakScalingConfig& cfg) {
  gpusim::Platform& platform = gpusim::Platform::instance();
  // Fresh devices (clocks at zero) with the canonical ordinal naming:
  // scenario timing depends only on (vendor, count, n, reps).
  platform.trim_devices(vendor, 0);
  (void)platform.device(vendor, count - 1);

  const std::size_t n = cfg.n_per_device;
  std::vector<ScenarioDevice> devs(count);
  for (unsigned d = 0; d < count; ++d) {
    devs[d].dev = &platform.device(vendor, d);
    devs[d].q = &devs[d].dev->default_queue();
    devs[d].alloc(n);
  }
  // Gather target on device 0: (dot, reduce) per device, ordinal order.
  auto* gather = static_cast<double*>(
      devs[0].dev->allocate(2 * count * sizeof(double)));

  WeakScalingSample sample;
  sample.vendor = vendor;
  sample.devices = count;
  sample.n_per_device = n;
  sample.reps = cfg.reps;
  sample.p2p_us = 0.0;

  // Eager init (not part of the replayed graph), then capture one
  // repetition per device and instantiate. Both happen outside the
  // profiler capture below so the roofline shares contain exactly the
  // folded graph-replay attribution.
  for (ScenarioDevice& d : devs) {
    gpusim::KernelLabelScope label("Init");
    (void)d.q->launch(gpusim::launch_1d(n, 256),
                      elementwise_costs(bench::StreamKernel::Copy, n),
                      [a = d.a, b = d.b, c = d.c,
                       n](const gpusim::WorkItem& it) {
                        const std::size_t i = it.global_x();
                        if (i < n) {
                          a[i] = bench::kInitA;
                          b[i] = bench::kInitB;
                          c[i] = bench::kInitC;
                        }
                      });
    capture_suite(d, n);
  }
  sample.graph_nodes = devs[0].exec.front().node_count();

  const gpuprof::Trace trace = gpuprof::capture_trace([&] {
    for (int r = 0; r < cfg.reps; ++r) {
      for (ScenarioDevice& d : devs) {
        (void)d.exec.front().replay(*d.q);
      }
    }
    // Gather every device's (dot, reduce) pair to device 0: the peer-link
    // traffic that separates T_N from T_1.
    (void)devs[0].q->memcpy(gather, devs[0].results, 2 * sizeof(double),
                            gpusim::CopyKind::DeviceToDevice);
    for (unsigned d = 1; d < count; ++d) {
      const gpusim::Event e = devs[d].q->memcpy_peer(
          gather + 2 * d, *devs[0].dev, devs[d].results, 2 * sizeof(double));
      sample.p2p_us += e.duration_us();
    }
  });

  // T_N: the scenario ends when the slowest device (including its gather
  // contribution) finishes. Verification D2H reads below are excluded.
  sample.sim_us = 0.0;
  for (const ScenarioDevice& d : devs) {
    sample.sim_us = std::max(sample.sim_us, d.q->simulated_time_us());
  }

  // Verify: device 0's arrays against the scalar recurrence, and every
  // device's gathered Dot/Reduce values.
  const ScalarModel model(n, cfg.reps);
  std::vector<double> a(n), b(n), c(n), totals(2 * count);
  (void)devs[0].q->memcpy(a.data(), devs[0].a, n * sizeof(double),
                          gpusim::CopyKind::DeviceToHost);
  (void)devs[0].q->memcpy(b.data(), devs[0].b, n * sizeof(double),
                          gpusim::CopyKind::DeviceToHost);
  (void)devs[0].q->memcpy(c.data(), devs[0].c, n * sizeof(double),
                          gpusim::CopyKind::DeviceToHost);
  (void)devs[0].q->memcpy(totals.data(), gather,
                          2 * count * sizeof(double),
                          gpusim::CopyKind::DeviceToHost);
  bool ok = true;
  for (std::size_t i = 0; i < n && ok; ++i) {
    const double span = static_cast<double>(i % bench::kUnevenTile + 1);
    ok = close(a[i], model.va, 1e-8) && close(b[i], model.vb, 1e-8) &&
         close(c[i], span * model.va, 1e-8);
  }
  for (unsigned d = 0; d < count && ok; ++d) {
    ok = close(totals[2 * d], model.dot, 1e-6) &&
         close(totals[2 * d + 1], model.reduce, 1e-6);
  }
  sample.verified = ok;

  // Per-device roofline shares from the folded graph-replay attribution.
  const std::vector<gpuprof::KernelSummary> summaries =
      trace.kernel_summaries();
  for (unsigned d = 0; d < count; ++d) {
    DeviceShare share;
    share.device = devs[d].dev->descriptor().name;
    share.ordinal = d;
    for (const gpuprof::KernelSummary& s : summaries) {
      if (s.device != share.device) continue;
      share.sim_us += s.sim_us;
      share.bytes += s.bytes;
    }
    share.achieved_gbps =
        share.sim_us > 0 ? share.bytes / (share.sim_us * 1e3) : 0.0;
    const double peak = devs[d].dev->descriptor().mem_bandwidth_gbps;
    share.pct_of_peak =
        peak > 0 ? 100.0 * share.achieved_gbps / peak : 0.0;
    sample.shares.push_back(std::move(share));
  }

  devs[0].dev->deallocate(gather);
  for (ScenarioDevice& d : devs) d.free_all();
  return sample;
}

}  // namespace

std::vector<WeakScalingSample> run_weak_scaling(
    const WeakScalingConfig& config) {
  if (config.n_per_device == 0 || config.reps < 1 ||
      config.device_counts.empty() || config.vendors.empty()) {
    throw std::invalid_argument("perfport: empty weak-scaling dimension");
  }
  for (const unsigned count : config.device_counts) {
    if (count == 0) {
      throw std::invalid_argument("perfport: zero-device scenario");
    }
  }

  std::vector<WeakScalingSample> samples;
  for (const Vendor vendor : config.vendors) {
    double t1 = 0.0;
    for (const unsigned count : config.device_counts) {
      WeakScalingSample sample = run_scenario(vendor, count, config);
      // Weak-scaling efficiency is T_1 / T_N. The baseline is the
      // single-device scenario when the sweep has one, else the first
      // (smallest) scenario of this vendor.
      if (t1 == 0.0 || count == 1) t1 = sample.sim_us;
      sample.efficiency = sample.sim_us > 0 ? t1 / sample.sim_us : 0.0;
      samples.push_back(std::move(sample));
    }
    // Leave one pristine device on the vendor's rail, like the eager
    // campaign's reset_device discipline.
    gpusim::Platform::instance().trim_devices(vendor, 0);
    (void)gpusim::Platform::instance().device(vendor, 0);
  }
  return samples;
}

}  // namespace mcmm::perfport
