// The perf-portability campaign driver: every stream route the matrix
// allows, under every requested (schedule, size), measured through
// gpuprof's ProfilerHooks trace rather than fresh instrumentation.

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "bench_support/stream.hpp"
#include "gpuprof/gpuprof.hpp"
#include "gpusim/descriptor.hpp"
#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"
#include "models/stdparx/stdparx.hpp"
#include "perfport/perfport.hpp"

namespace mcmm::perfport {
namespace {

/// Route labels are "<model>(<flavor>)"; the prefix names the Fig. 1
/// column. stdpar routes belong to the Standard (pSTL) column.
[[nodiscard]] Model model_for_route(std::string_view label) {
  const auto has = [&](std::string_view prefix) {
    return label.substr(0, prefix.size()) == prefix;
  };
  if (has("CUDA")) return Model::CUDA;
  if (has("HIP")) return Model::HIP;
  if (has("SYCL")) return Model::SYCL;
  if (has("OpenMP")) return Model::OpenMP;
  if (has("OpenACC")) return Model::OpenACC;
  if (has("stdpar")) return Model::Standard;
  if (has("Kokkos")) return Model::Kokkos;
  if (has("Alpaka")) return Model::Alpaka;
  throw std::runtime_error("perfport: unknown route label: " +
                           std::string(label));
}

/// Restores the roc-stdpar experiment toggle on scope exit; the campaign
/// turns it on so the AMD pSTL route is covered, like the matrix benches.
class RocStdparGuard {
 public:
  RocStdparGuard() : saved_(stdparx::roc_stdpar_enabled()) {
    stdparx::enable_experimental_roc_stdpar(true);
  }
  ~RocStdparGuard() { stdparx::enable_experimental_roc_stdpar(saved_); }
  RocStdparGuard(const RocStdparGuard&) = delete;
  RocStdparGuard& operator=(const RocStdparGuard&) = delete;

 private:
  bool saved_;
};

/// Scalar replay of the extended cycle (all elements evolve identically):
/// per repetition copy, mul, add, triad, dot, reduce, uneven. Uneven
/// clobbers c with tile prefix sums of the post-triad a; the next
/// repetition's copy rewrites c before mul reads it, so the classic a/b
/// recurrence is untouched.
[[nodiscard]] bool verify_suite(const std::vector<double>& a,
                                const std::vector<double>& b,
                                const std::vector<double>& c, double dot,
                                double reduce, std::size_t n, int reps) {
  double va = bench::kInitA, vb = bench::kInitB, vc = bench::kInitC;
  for (int r = 0; r < reps; ++r) {
    vc = va;                          // copy
    vb = bench::kScalar * vc;         // mul
    vc = va + vb;                     // add
    va = vb + bench::kScalar * vc;    // triad
  }
  const double expected_dot = va * vb * static_cast<double>(n);
  const double expected_reduce = va * va * static_cast<double>(n);

  const auto close = [](double x, double y, double tol) {
    const double scale = std::max({std::fabs(x), std::fabs(y), 1e-30});
    return std::fabs(x - y) / scale < tol;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const double span = static_cast<double>(i % bench::kUnevenTile + 1);
    if (!close(a[i], va, 1e-8) || !close(b[i], vb, 1e-8) ||
        !close(c[i], span * va, 1e-8)) {
      return false;
    }
  }
  return close(dot, expected_dot, 1e-6) &&
         close(reduce, expected_reduce, 1e-6);
}

/// One (route, schedule, size) measurement: the suite runs under
/// gpuprof::capture_trace and each kernel's roofline row comes out of the
/// trace's kernel summaries. The pSTL route expresses Copy as std::copy —
/// a device-to-device memcpy with no kernel row — so its Copy summary is
/// rebuilt from the capture's D2D copy events (same declared traffic).
struct SuiteRun {
  std::vector<gpuprof::KernelSummary> summaries;
  bool verified{false};
};

[[nodiscard]] SuiteRun run_suite(bench::StreamBenchmark& bench,
                                 std::size_t n, int reps,
                                 gpusim::Schedule schedule) {
  bench.set_schedule(schedule);
  double dot_value = 0.0;
  double reduce_value = 0.0;
  std::vector<double> a, b, c;
  const gpuprof::Trace trace = gpuprof::capture_trace([&] {
    bench.alloc(n);
    {
      gpusim::KernelLabelScope label("Init");
      bench.init_arrays();
    }
    for (int r = 0; r < reps; ++r) {
      {
        gpusim::KernelLabelScope label("Copy");
        bench.copy();
      }
      {
        gpusim::KernelLabelScope label("Mul");
        bench.mul();
      }
      {
        gpusim::KernelLabelScope label("Add");
        bench.add();
      }
      {
        gpusim::KernelLabelScope label("Triad");
        bench.triad();
      }
      {
        gpusim::KernelLabelScope label("Dot");
        dot_value = bench.dot();
      }
      {
        gpusim::KernelLabelScope label("Reduce");
        reduce_value = bench.reduce();
      }
      {
        gpusim::KernelLabelScope label("Uneven");
        bench.uneven();
      }
    }
    bench.read_arrays(a, b, c);
  });

  SuiteRun run;
  run.summaries = trace.kernel_summaries();
  const bool has_copy =
      std::any_of(run.summaries.begin(), run.summaries.end(),
                  [](const gpuprof::KernelSummary& s) {
                    return s.name == "Copy";
                  });
  if (!has_copy) {
    gpuprof::KernelSummary copy;
    copy.name = "Copy";
    for (const gpuprof::TraceEvent& e : trace.events) {
      if (e.kind != gpuprof::OpKind::MemcpyD2D) continue;
      copy.vendor = e.vendor;
      copy.device = e.device;
      copy.model = e.model;
      ++copy.launches;
      copy.bytes += e.total_bytes();
      copy.sim_us += e.sim_duration_us();
      copy.pct_of_peak = e.peak_gbps;  // holds peak until fixed below
    }
    const double peak = copy.pct_of_peak;
    copy.achieved_gbps =
        copy.sim_us > 0 ? copy.bytes / (copy.sim_us * 1e3) : 0.0;
    copy.pct_of_peak =
        peak > 0 ? 100.0 * copy.achieved_gbps / peak : 0.0;
    run.summaries.push_back(std::move(copy));
  }
  run.verified = verify_suite(a, b, c, dot_value, reduce_value, n, reps);
  return run;
}

[[nodiscard]] const gpuprof::KernelSummary& summary_for(
    const SuiteRun& run, const std::string& route, PerfKernel kernel) {
  const std::string_view name = to_string(kernel);
  for (const gpuprof::KernelSummary& s : run.summaries) {
    if (s.name == name) return s;
  }
  throw std::runtime_error("perfport: route " + route +
                           " produced no roofline row for kernel " +
                           std::string(name));
}

template <typename T>
[[nodiscard]] bool wanted(const std::vector<T>& filter, T value) {
  return filter.empty() ||
         std::find(filter.begin(), filter.end(), value) != filter.end();
}

}  // namespace

PerfReport run_campaign(const CampaignConfig& config) {
  if (config.sizes.empty() || config.reps < 1 || config.vendors.empty() ||
      config.schedules.empty()) {
    throw std::invalid_argument("perfport: empty campaign dimension");
  }
  const RocStdparGuard roc_guard;

  PerfReport report;
  report.config = config;

  for (const Vendor vendor : config.vendors) {
    bool counted_routes = false;
    const std::size_t n_routes = bench::stream_benchmarks_for(vendor).size();
    for (const std::size_t n : config.sizes) {
      for (const gpusim::Schedule schedule : config.schedules) {
        for (std::size_t i = 0; i < n_routes; ++i) {
          // A pristine device (simulated clock at zero) per suite: every
          // sample depends only on (route, kernel, n, reps), never on what
          // ran before it. Without the reset the shared Platform device's
          // clock carries across suites and (t + d) - t rounds differently
          // at each epoch, breaking bitwise schedule invariance. The reset
          // must precede benchmark construction — model runtimes capture
          // the Device pointer in their constructors.
          gpusim::Platform::instance().reset_device(
              vendor, gpusim::descriptor_for(vendor));
          const auto benches = bench::stream_benchmarks_for(vendor);
          bench::StreamBenchmark* bench_ptr = benches[i].get();
          const std::string route = bench_ptr->label();
          const Model model = model_for_route(route);
          if (!wanted(config.models, model)) continue;
          if (!counted_routes) ++report.route_count;

          const SuiteRun run =
              run_suite(*bench_ptr, n, config.reps, schedule);
          for (const PerfKernel kernel : kAllPerfKernels) {
            if (!wanted(config.kernels, kernel)) continue;
            const gpuprof::KernelSummary& s =
                summary_for(run, route, kernel);
            RouteSample sample;
            sample.route = route;
            sample.model = model;
            sample.vendor = vendor;
            sample.schedule = std::string(to_string(schedule));
            sample.kernel = kernel;
            sample.n = n;
            sample.launches = s.launches;
            sample.sim_us = s.sim_us;
            sample.achieved_gbps = s.achieved_gbps;
            sample.pct_of_peak = s.pct_of_peak;
            sample.peak_gbps =
                s.pct_of_peak > 0
                    ? s.achieved_gbps * 100.0 / s.pct_of_peak
                    : 0.0;
            sample.verified = run.verified;
            report.samples.push_back(std::move(sample));
          }
        }
        counted_routes = true;
      }
    }
  }

  report.rows = build_rows(report.samples, config.vendors,
                           config.sizes.back());
  return report;
}

}  // namespace mcmm::perfport
