// The two perf-portability metrics over raw campaign samples: Fridman-
// style efficiency-vs-peak per cell and Reguly's harmonic-mean PP per
// (model, kernel) row.

#include <algorithm>

#include "perfport/perfport.hpp"

namespace mcmm::perfport {

double performance_portability(
    const std::vector<double>& efficiencies) noexcept {
  // PP(a, p, H) = |H| / sum_{i in H} 1/e_i(a, p), and 0 when any platform
  // in H is unsupported (Reguly/Pennycook: the harmonic mean goes to zero
  // as any e_i does, so unsupported platforms zero the metric).
  if (efficiencies.empty()) return 0.0;
  double inv_sum = 0.0;
  for (const double e : efficiencies) {
    if (e <= 0.0) return 0.0;
    inv_sum += 1.0 / e;
  }
  return static_cast<double>(efficiencies.size()) / inv_sum;
}

std::vector<PerfRow> build_rows(const std::vector<RouteSample>& samples,
                                const std::vector<Vendor>& vendors,
                                std::size_t top_n) {
  // Row order: Fig. 1 column order for models, run order for kernels —
  // both restricted to what the samples actually cover, so CLI filters
  // narrow the table instead of leaving empty rows.
  std::vector<Model> models;
  for (const Model m : kFigureColumnOrder) {
    const bool present =
        std::any_of(samples.begin(), samples.end(),
                    [&](const RouteSample& s) { return s.model == m; });
    if (present) models.push_back(m);
  }
  std::vector<PerfKernel> kernels;
  for (const PerfKernel k : kAllPerfKernels) {
    const bool present =
        std::any_of(samples.begin(), samples.end(),
                    [&](const RouteSample& s) { return s.kernel == k; });
    if (present) kernels.push_back(k);
  }

  std::vector<PerfRow> rows;
  rows.reserve(models.size() * kernels.size());
  for (const Model model : models) {
    for (const PerfKernel kernel : kernels) {
      PerfRow row;
      row.model = model;
      row.kernel = kernel;
      std::vector<double> efficiencies;
      efficiencies.reserve(vendors.size());
      for (const Vendor vendor : vendors) {
        PerfCell cell;
        cell.vendor = vendor;
        // Best route x schedule at the scoring size wins the cell.
        for (const RouteSample& s : samples) {
          if (s.model != model || s.kernel != kernel ||
              s.vendor != vendor || s.n != top_n) {
            continue;
          }
          const double eff =
              std::clamp(s.pct_of_peak / 100.0, 0.0, 1.0);
          if (!cell.supported || eff > cell.efficiency) {
            cell.supported = true;
            cell.efficiency = eff;
            cell.route = s.route;
            cell.achieved_gbps = s.achieved_gbps;
          }
        }
        efficiencies.push_back(cell.supported ? cell.efficiency : 0.0);
        row.cells.push_back(std::move(cell));
      }
      row.pp = performance_portability(efficiencies);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace mcmm::perfport
