// HTML rendition of Fig. 1 plus the Sec. 4 description list, with anchor
// links in both directions (the paper: "both numbers can be clicked and
// move between table and description").

#include <sstream>

#include "render/render.hpp"

namespace mcmm::render {
namespace {

[[nodiscard]] std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string css_class(SupportCategory c) {
  switch (c) {
    case SupportCategory::Full:
      return "full";
    case SupportCategory::IndirectGood:
      return "indirect";
    case SupportCategory::Some:
      return "some";
    case SupportCategory::NonVendorGood:
      return "nonvendor";
    case SupportCategory::Limited:
      return "limited";
    case SupportCategory::None:
      return "none";
  }
  return "none";
}

}  // namespace

std::string figure1_html(const CompatibilityMatrix& m, const Options& opts) {
  std::ostringstream out;
  out << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
      << "<title>GPU Programming Model / Vendor Compatibility</title>\n"
      << "<style>\n"
      << "table { border-collapse: collapse; }\n"
      << "th, td { border: 1px solid #999; padding: 0.3em 0.6em; "
         "text-align: center; }\n"
      << "td.full { background: #2e7d32; color: white; }\n"
      << "td.indirect { background: #66bb6a; }\n"
      << "td.some { background: #ffe082; }\n"
      << "td.nonvendor { background: #64b5f6; }\n"
      << "td.limited { background: #ffab91; }\n"
      << "td.none { background: #eeeeee; color: #888; }\n"
      << "</style>\n</head>\n<body>\n"
      << "<h1>GPU Programming Model vs. Vendor Compatibility</h1>\n";

  out << "<table>\n<tr><th rowspan=\"2\">Vendor</th>";
  for (const Model model : kFigureColumnOrder) {
    if (model == Model::Python) {
      out << "<th rowspan=\"2\">Python</th>";
    } else {
      out << "<th colspan=\"2\">" << to_string(model) << "</th>";
    }
  }
  out << "</tr>\n<tr>";
  for (const Model model : kFigureColumnOrder) {
    if (model == Model::Python) continue;
    out << "<th>C++</th><th>Fortran</th>";
  }
  out << "</tr>\n";

  for (const Vendor v : kFigureRowOrder) {
    out << "<tr><th>" << to_string(v) << "</th>";
    for (const Model model : kFigureColumnOrder) {
      const auto languages =
          model == Model::Python
              ? std::vector<Language>{Language::Python}
              : std::vector<Language>{Language::Cpp, Language::Fortran};
      for (const Language l : languages) {
        const SupportEntry& e = m.at(v, model, l);
        out << "<td class=\"" << css_class(e.primary().category)
            << "\" title=\"" << escape(e.ratings[0].rationale) << "\">"
            << cell_symbol(e, opts);
        out << " <a href=\"#item-" << e.description_id << "\">["
            << e.description_id << "]</a></td>";
      }
    }
    out << "</tr>\n";
  }
  out << "</table>\n";

  if (opts.legend) {
    out << "<h2>Legend</h2>\n<ul>\n";
    for (const SupportCategory c : kAllCategories) {
      out << "<li>" << category_symbol(c) << " — " << category_name(c)
          << "</li>\n";
    }
    out << "</ul>\n";
  }

  out << "<h2>Descriptions</h2>\n<dl>\n";
  for (const Description* d : m.descriptions()) {
    out << "<dt id=\"item-" << d->id << "\"><b>" << d->id << "</b> "
        << escape(d->title) << "</dt>\n<dd>" << escape(d->text);
    if (!d->references.empty()) {
      out << "<br><i>References:</i> ";
      for (std::size_t i = 0; i < d->references.size(); ++i) {
        if (i > 0) out << ", ";
        out << escape(d->references[i]);
      }
    }
    out << "</dd>\n";
  }
  out << "</dl>\n</body>\n</html>\n";
  return out.str();
}

}  // namespace mcmm::render
