#pragma once
// Text reports for the paper's derived results: claim evaluation and the
// category statistics behind the narrative.

#include <string>

#include "core/claims.hpp"
#include "core/planner.hpp"
#include "core/statistics.hpp"

namespace mcmm::render {

/// Pass/fail report over all paper claims.
[[nodiscard]] std::string claims_report(const Claims& claims);

/// Category histograms per vendor / language / model.
[[nodiscard]] std::string statistics_report(const Statistics& stats);

/// Human-readable route-planner output.
[[nodiscard]] std::string plan_report(const std::vector<PlannedRoute>& plans);

/// One description rendered as plain text (title, body, routes of its
/// cells).
[[nodiscard]] std::string description_text(const CompatibilityMatrix& m,
                                           int description_id);

}  // namespace mcmm::render
