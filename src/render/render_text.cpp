// Text, Markdown, and CSV renditions of Fig. 1.

#include <algorithm>
#include <sstream>
#include <vector>

#include "render/render.hpp"

namespace mcmm::render {
namespace {

/// Display width of a UTF-8 string: all code points used here are width 1.
[[nodiscard]] std::size_t display_width(const std::string& s) {
  std::size_t w = 0;
  for (const char c : s) {
    if ((static_cast<unsigned char>(c) & 0xC0) != 0x80) ++w;
  }
  return w;
}

[[nodiscard]] std::string pad_to(const std::string& s, std::size_t width) {
  std::string out = s;
  const std::size_t w = display_width(s);
  if (w < width) out.append(width - w, ' ');
  return out;
}

struct Column {
  Model model;
  Language language;
};

[[nodiscard]] std::vector<Column> figure_columns() {
  std::vector<Column> cols;
  for (const Model m : kFigureColumnOrder) {
    if (m == Model::Python) {
      cols.push_back(Column{m, Language::Python});
    } else {
      cols.push_back(Column{m, Language::Cpp});
      cols.push_back(Column{m, Language::Fortran});
    }
  }
  return cols;
}

[[nodiscard]] std::string symbol_for(const Rating& r, const Options& opts) {
  return std::string(opts.unicode ? category_symbol(r.category)
                                  : category_symbol_ascii(r.category));
}

}  // namespace

std::string cell_symbol(const SupportEntry& e, const Options& opts) {
  std::string out = symbol_for(e.ratings[0], opts);
  if (e.ratings.size() > 1) {
    out += "/";
    out += symbol_for(e.ratings[1], opts);
  }
  if (opts.item_numbers) {
    out += " ";
    out += std::to_string(e.description_id);
  }
  return out;
}

std::string legend_text(const Options& opts) {
  std::ostringstream out;
  out << "Legend:\n";
  for (const SupportCategory c : kAllCategories) {
    out << "  "
        << (opts.unicode ? category_symbol(c) : category_symbol_ascii(c))
        << "  " << category_name(c) << "\n";
  }
  return out.str();
}

std::string figure1_text(const CompatibilityMatrix& m, const Options& opts) {
  const std::vector<Column> cols = figure_columns();

  // Column contents per vendor row.
  std::vector<std::vector<std::string>> cells(kFigureRowOrder.size());
  for (std::size_t r = 0; r < kFigureRowOrder.size(); ++r) {
    for (const Column& col : cols) {
      cells[r].push_back(cell_symbol(
          m.at(kFigureRowOrder[r], col.model, col.language), opts));
    }
  }

  // Width per column: max of language header and cell contents.
  std::vector<std::size_t> widths(cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    widths[c] = display_width(std::string(to_string(cols[c].language)));
    for (std::size_t r = 0; r < cells.size(); ++r) {
      widths[c] = std::max(widths[c], display_width(cells[r][c]));
    }
  }
  std::size_t vendor_width = 6;  // "Vendor"
  for (const Vendor v : kFigureRowOrder) {
    vendor_width =
        std::max(vendor_width, display_width(std::string(to_string(v))));
  }

  std::ostringstream out;
  // Header row 1: model names spanning their sub-columns.
  out << pad_to("", vendor_width) << " |";
  for (std::size_t c = 0; c < cols.size();) {
    const Model model = cols[c].model;
    std::size_t span_width = widths[c];
    std::size_t span = 1;
    if (model != Model::Python && c + 1 < cols.size() &&
        cols[c + 1].model == model) {
      span_width += 3 + widths[c + 1];  // " | " separator
      span = 2;
    }
    out << " " << pad_to(std::string(to_string(model)), span_width) << " |";
    c += span;
  }
  out << "\n";
  // Header row 2: languages.
  out << pad_to("Vendor", vendor_width) << " |";
  for (std::size_t c = 0; c < cols.size(); ++c) {
    out << " "
        << pad_to(std::string(to_string(cols[c].language)), widths[c])
        << " |";
  }
  out << "\n";
  // Separator.
  out << std::string(vendor_width, '-') << "-+";
  for (std::size_t c = 0; c < cols.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "+";
  }
  out << "\n";
  // Data rows.
  for (std::size_t r = 0; r < kFigureRowOrder.size(); ++r) {
    out << pad_to(std::string(to_string(kFigureRowOrder[r])), vendor_width)
        << " |";
    for (std::size_t c = 0; c < cols.size(); ++c) {
      out << " " << pad_to(cells[r][c], widths[c]) << " |";
    }
    out << "\n";
  }
  if (opts.legend) {
    out << "\n" << legend_text(opts);
  }
  return out.str();
}

std::string figure1_markdown(const CompatibilityMatrix& m,
                             const Options& opts) {
  const std::vector<Column> cols = figure_columns();
  std::ostringstream out;
  out << "| Vendor |";
  for (const Column& c : cols) {
    out << " " << to_string(c.model);
    if (c.model != Model::Python) out << " (" << to_string(c.language) << ")";
    out << " |";
  }
  out << "\n|---|";
  for (std::size_t c = 0; c < cols.size(); ++c) out << "---|";
  out << "\n";
  for (const Vendor v : kFigureRowOrder) {
    out << "| " << to_string(v) << " |";
    for (const Column& c : cols) {
      out << " " << cell_symbol(m.at(v, c.model, c.language), opts) << " |";
    }
    out << "\n";
  }
  if (opts.legend) {
    out << "\n";
    for (const SupportCategory c : kAllCategories) {
      out << "- "
          << (opts.unicode ? category_symbol(c) : category_symbol_ascii(c))
          << " — " << category_name(c) << "\n";
    }
  }
  return out.str();
}

std::string matrix_csv(const CompatibilityMatrix& m) {
  std::ostringstream out;
  out << "vendor,model,language,category,provider,category2,provider2,"
         "description_id,routes\n";
  for (const SupportEntry* e : m.entries()) {
    out << to_string(e->combo.vendor) << ',' << to_string(e->combo.model)
        << ',' << to_string(e->combo.language) << ','
        << category_name(e->ratings[0].category) << ','
        << to_string(e->ratings[0].provider) << ',';
    if (e->ratings.size() > 1) {
      out << category_name(e->ratings[1].category) << ','
          << to_string(e->ratings[1].provider);
    } else {
      out << ',';
    }
    out << ',' << e->description_id << ',' << e->routes.size() << "\n";
  }
  return out.str();
}

}  // namespace mcmm::render
