// Figure 2 renderers. All output is deterministic for a given report: the
// txt form is compared byte-for-byte against its committed golden and the
// serve layer caches every form with a strong ETag.

#include <cstdio>

#include "render/perf.hpp"

namespace mcmm::render {
namespace {

using perfport::PerfCell;
using perfport::PerfReport;
using perfport::PerfRow;

[[nodiscard]] std::string fixed(double v, int decimals = 3) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

[[nodiscard]] std::string pad_left(std::string s, std::size_t width) {
  if (s.size() < width) s.insert(0, width - s.size(), ' ');
  return s;
}

[[nodiscard]] std::string pad_right(std::string s, std::size_t width) {
  if (s.size() < width) s.append(width - s.size(), ' ');
  return s;
}

[[nodiscard]] std::string cell_text(const PerfCell& c) {
  return c.supported ? fixed(c.efficiency) : std::string("-");
}

/// Weak-scaling appendix (text form), present only when the report
/// carries weak-scaling samples — campaign-only reports render exactly as
/// before, keeping the committed golden byte-stable.
[[nodiscard]] std::string weak_scaling_text(const PerfReport& r) {
  if (r.weak_scaling.empty()) return {};
  std::string out =
      "\nWeak scaling (graph replay; BabelStream + Reduce/Uneven, n per "
      "device)\n";
  out += "n = " + std::to_string(r.weak_scaling.front().n_per_device) +
         " doubles/device x " +
         std::to_string(r.weak_scaling.front().reps) +
         " reps; efficiency = T1 / TN\n\n";
  std::string header = pad_right("Vendor", 10);
  header += pad_left("Devices", 9);
  header += pad_left("TN(us)", 14);
  header += pad_left("P2P(us)", 10);
  header += pad_left("Eff", 8);
  out += header + "\n" + std::string(header.size(), '-') + "\n";
  for (const perfport::WeakScalingSample& w : r.weak_scaling) {
    out += pad_right(std::string(to_string(w.vendor)), 10);
    out += pad_left(std::to_string(w.devices), 9);
    out += pad_left(fixed(w.sim_us, 1), 14);
    out += pad_left(fixed(w.p2p_us, 3), 10);
    out += pad_left(fixed(w.efficiency), 8);
    out += "\n";
  }
  return out;
}

/// "n = 1048576 doubles x 2 reps; schedules: static, dynamic"
[[nodiscard]] std::string config_line(const PerfReport& r) {
  std::string out = "n = " + std::to_string(r.config.sizes.back()) +
                    " doubles x " + std::to_string(r.config.reps) +
                    " reps; schedules:";
  for (std::size_t i = 0; i < r.config.schedules.size(); ++i) {
    out += i == 0 ? " " : ", ";
    out += std::string(perfport::to_string(r.config.schedules[i]));
  }
  return out;
}

}  // namespace

std::string figure2_text(const PerfReport& r) {
  constexpr std::size_t kModelW = 10;
  constexpr std::size_t kKernelW = 8;
  constexpr std::size_t kCellW = 8;

  std::string out;
  out += "Figure 2: BabelStream efficiency matrix (perf-portability "
         "campaign)\n";
  out += config_line(r) + "; best route per cell\n";
  out += "efficiency = achieved GB/s / vendor peak; PP = harmonic mean "
         "over vendors (0 when unsupported)\n\n";

  std::string header = pad_right("Model", kModelW);
  header += pad_right("Kernel", kKernelW);
  for (const Vendor v : r.config.vendors) {
    header += pad_left(std::string(to_string(v)), kCellW);
  }
  header += pad_left("PP", kCellW);
  out += header + "\n";
  out += std::string(header.size(), '-') + "\n";

  for (const PerfRow& row : r.rows) {
    out += pad_right(std::string(to_string(row.model)), kModelW);
    out += pad_right(std::string(to_string(row.kernel)), kKernelW);
    for (const PerfCell& c : row.cells) {
      out += pad_left(cell_text(c), kCellW);
    }
    out += pad_left(fixed(row.pp), kCellW);
    out += "\n";
  }
  out += weak_scaling_text(r);
  return out;
}

std::string figure2_markdown(const PerfReport& r) {
  std::string out =
      "# Figure 2: BabelStream efficiency matrix\n\n" + config_line(r) +
      "; best route per cell. Efficiency = achieved GB/s / vendor peak; "
      "PP = harmonic mean over vendors (0 when unsupported).\n\n";
  out += "| Model | Kernel |";
  for (const Vendor v : r.config.vendors) {
    out += " " + std::string(to_string(v)) + " |";
  }
  out += " PP |\n|---|---|";
  for (std::size_t i = 0; i < r.config.vendors.size(); ++i) out += "---:|";
  out += "---:|\n";
  for (const PerfRow& row : r.rows) {
    out += "| " + std::string(to_string(row.model)) + " | " +
           std::string(to_string(row.kernel)) + " |";
    for (const PerfCell& c : row.cells) out += " " + cell_text(c) + " |";
    out += " " + fixed(row.pp) + " |\n";
  }
  if (!r.weak_scaling.empty()) {
    out += "\n## Weak scaling (graph replay)\n\n";
    out += "n = " +
           std::to_string(r.weak_scaling.front().n_per_device) +
           " doubles/device x " +
           std::to_string(r.weak_scaling.front().reps) +
           " reps; efficiency = T1 / TN.\n\n";
    out += "| Vendor | Devices | TN (us) | P2P (us) | Efficiency |\n";
    out += "|---|---:|---:|---:|---:|\n";
    for (const perfport::WeakScalingSample& w : r.weak_scaling) {
      out += "| " + std::string(to_string(w.vendor)) + " | " +
             std::to_string(w.devices) + " | " + fixed(w.sim_us, 1) +
             " | " + fixed(w.p2p_us, 3) + " | " + fixed(w.efficiency) +
             " |\n";
    }
  }
  return out;
}

std::string figure2_csv(const PerfReport& r) {
  std::string out =
      "model,kernel,vendor,supported,efficiency,route,achieved_gbps,pp\n";
  for (const PerfRow& row : r.rows) {
    for (const PerfCell& c : row.cells) {
      out += std::string(to_string(row.model)) + ',' +
             std::string(to_string(row.kernel)) + ',' +
             std::string(to_string(c.vendor)) + ',' +
             (c.supported ? "1" : "0") + ',' + fixed(c.efficiency, 6) +
             ',' + c.route + ',' + fixed(c.achieved_gbps, 6) + ',' +
             fixed(row.pp, 6) + "\n";
    }
  }
  return out;
}

std::string figure2_html(const PerfReport& r) {
  std::string out =
      "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
      "<meta charset=\"utf-8\">\n"
      "<title>Figure 2: BabelStream efficiency matrix</title>\n"
      "<style>\n"
      "table { border-collapse: collapse; font-family: sans-serif; }\n"
      "th, td { border: 1px solid #999; padding: 0.3em 0.6em; "
      "text-align: right; }\n"
      "th, td.name { text-align: left; }\n"
      "td.unsupported { color: #999; }\n"
      "</style>\n</head>\n<body>\n"
      "<h1>Figure 2: BabelStream efficiency matrix</h1>\n"
      "<p>" +
      config_line(r) +
      "; best route per cell. Efficiency = achieved GB/s / vendor peak; "
      "PP = harmonic mean over vendors (0 when unsupported).</p>\n"
      "<table>\n<tr><th>Model</th><th>Kernel</th>";
  for (const Vendor v : r.config.vendors) {
    out += "<th>" + std::string(to_string(v)) + "</th>";
  }
  out += "<th>PP</th></tr>\n";
  for (const PerfRow& row : r.rows) {
    out += "<tr><td class=\"name\">" + std::string(to_string(row.model)) +
           "</td><td class=\"name\">" +
           std::string(to_string(row.kernel)) + "</td>";
    for (const PerfCell& c : row.cells) {
      out += c.supported
                 ? "<td title=\"" + c.route + "\">" + fixed(c.efficiency) +
                       "</td>"
                 : std::string("<td class=\"unsupported\">-</td>");
    }
    out += "<td>" + fixed(row.pp) + "</td></tr>\n";
  }
  out += "</table>\n</body>\n</html>\n";
  return out;
}

std::string figure2_latex(const PerfReport& r) {
  std::string out = "% Figure 2: BabelStream efficiency matrix\n% " +
                    config_line(r) + "\n\\begin{tabular}{ll";
  for (std::size_t i = 0; i < r.config.vendors.size(); ++i) out += "r";
  out += "r}\n\\hline\nModel & Kernel";
  for (const Vendor v : r.config.vendors) {
    out += " & " + std::string(to_string(v));
  }
  out += " & $\\mathrm{PP}$ \\\\\n\\hline\n";
  for (const PerfRow& row : r.rows) {
    out += std::string(to_string(row.model)) + " & " +
           std::string(to_string(row.kernel));
    for (const PerfCell& c : row.cells) {
      out += " & " + (c.supported ? fixed(c.efficiency)
                                  : std::string("--"));
    }
    out += " & " + fixed(row.pp) + " \\\\\n";
  }
  out += "\\hline\n\\end{tabular}\n";
  return out;
}

std::string figure2_yaml(const PerfReport& r) {
  std::string out = "figure2:\n  vendors: [";
  for (std::size_t i = 0; i < r.config.vendors.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::string(to_string(r.config.vendors[i]));
  }
  out += "]\n  n: " + std::to_string(r.config.sizes.back());
  out += "\n  reps: " + std::to_string(r.config.reps);
  out += "\n  rows:\n";
  for (const PerfRow& row : r.rows) {
    out += "    - model: " + std::string(to_string(row.model)) + "\n";
    out += "      kernel: " + std::string(to_string(row.kernel)) + "\n";
    out += "      pp: " + fixed(row.pp, 6) + "\n";
    out += "      cells:\n";
    for (const PerfCell& c : row.cells) {
      out += "        - vendor: " + std::string(to_string(c.vendor)) +
             "\n          supported: " +
             (c.supported ? "true" : "false") +
             "\n          efficiency: " + fixed(c.efficiency, 6) + "\n";
      if (c.supported) {
        out += "          route: " + c.route + "\n";
      }
    }
  }
  return out;
}

}  // namespace mcmm::render
