#include "render/report.hpp"

#include <iomanip>
#include <sstream>

namespace mcmm::render {

std::string claims_report(const Claims& claims) {
  std::ostringstream out;
  out << "Paper claims vs. dataset:\n";
  int pass = 0;
  const auto results = claims.evaluate_all();
  for (const ClaimResult& r : results) {
    out << "  [" << (r.holds ? "PASS" : "FAIL") << "] " << r.id << ": "
        << r.statement << "\n         evidence: " << r.evidence << "\n";
    if (r.holds) ++pass;
  }
  out << pass << "/" << results.size() << " claims hold\n";
  return out.str();
}

std::string statistics_report(const Statistics& stats) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2);
  out << "Per-vendor support statistics (17 cells each):\n";
  for (const VendorStats& vs : stats.vendors()) {
    out << "  " << std::setw(6) << to_string(vs.vendor)
        << ": coverage=" << vs.coverage_score
        << "  usable=" << vs.usable_cells
        << "  comprehensive=" << vs.comprehensive_cells
        << "  vendor-provided=" << vs.vendor_provided_cells << "\n";
    out << "          histogram:";
    for (const SupportCategory c : kAllCategories) {
      const auto it = vs.histogram.find(c);
      const int n = it == vs.histogram.end() ? 0 : it->second;
      out << " " << category_symbol(c) << "=" << n;
    }
    out << "\n";
  }
  out << "Overall: " << stats.usable_combinations() << "/"
      << kCombinationCount << " combinations usable, "
      << stats.dual_rated_cells() << " dual-rated cells\n";
  out << "Primary-rating providers:";
  for (const auto& [provider, n] : stats.provider_histogram()) {
    out << " " << to_string(provider) << "=" << n;
  }
  out << "\n";
  out << "Per-language coverage:\n";
  for (const LanguageStats& ls : stats.languages()) {
    out << "  " << std::setw(7) << to_string(ls.language) << ": usable "
        << ls.usable_cells << "/" << ls.total_cells
        << ", mean score " << ls.coverage_score << "\n";
  }
  out << "Per-model platform reach (C++ / Fortran usable vendors):\n";
  for (const ModelStats& ms : stats.models()) {
    out << "  " << std::setw(8) << to_string(ms.model) << ": C++ on "
        << ms.vendors_usable_cpp << "/3";
    if (ms.model != Model::Python) {
      out << ", Fortran on " << ms.vendors_usable_fortran << "/3";
    }
    out << ", vendor-native on " << ms.vendors_vendor_native << "/3\n";
  }
  return out.str();
}

std::string plan_report(const std::vector<PlannedRoute>& plans) {
  std::ostringstream out;
  if (plans.empty()) {
    out << "No programming model satisfies the given constraints.\n";
    return out.str();
  }
  int i = 1;
  for (const PlannedRoute& p : plans) {
    out << i++ << ". " << to_string(p.model) << " (rank " << p.rank << ")\n";
    for (const auto& pv : p.platforms) {
      out << "     " << std::setw(6) << to_string(pv.vendor) << ": "
          << category_name(pv.category) << " via " << pv.route.name << " ("
          << pv.route.toolchain;
      for (const std::string& f : pv.route.flags) out << " " << f;
      out << ")";
      if (!pv.route.environment.empty()) {
        out << " env:";
        for (const std::string& e : pv.route.environment) out << " " << e;
      }
      out << "\n";
    }
    out << "     " << p.rationale << "\n";
  }
  return out.str();
}

std::string description_text(const CompatibilityMatrix& m,
                             int description_id) {
  const Description& d = m.description(description_id);
  std::ostringstream out;
  out << "[" << d.id << "] " << d.title << "\n" << d.text << "\n";
  for (const SupportEntry* e : m.cells_of_description(description_id)) {
    out << "  cell " << to_string(e->combo) << ": ";
    for (std::size_t i = 0; i < e->ratings.size(); ++i) {
      if (i > 0) out << " + ";
      out << category_name(e->ratings[i].category);
    }
    out << "\n";
    for (const Route& r : e->routes) {
      out << "    route: " << r.name << " [" << to_string(r.kind) << ", "
          << to_string(r.maturity) << "]\n";
    }
  }
  if (!d.references.empty()) {
    out << "  references:";
    for (const std::string& r : d.references) out << " " << r << ";";
    out << "\n";
  }
  return out.str();
}

}  // namespace mcmm::render
