#pragma once
// Renderers regenerating the paper's Fig. 1 (and the Sec. 4 description
// list) in several output formats — the reproduction of the author's
// YAML -> HTML/TeX pipeline plus terminal-friendly forms.

#include <string>

#include "core/matrix.hpp"

namespace mcmm::render {

struct Options {
  bool unicode = true;    ///< category symbols vs ASCII letters
  bool legend = true;     ///< append the six-category legend
  bool item_numbers = true;  ///< print Sec. 4 reference numbers in cells
};

/// Fig. 1 as a fixed-width text grid (the terminal rendition).
[[nodiscard]] std::string figure1_text(const CompatibilityMatrix& m,
                                       const Options& opts = {});

/// Fig. 1 as a GitHub-flavoured Markdown table.
[[nodiscard]] std::string figure1_markdown(const CompatibilityMatrix& m,
                                           const Options& opts = {});

/// Fig. 1 as a standalone HTML page (table + Sec. 4 descriptions, with
/// anchor links between them like the paper's clickable references).
[[nodiscard]] std::string figure1_html(const CompatibilityMatrix& m,
                                       const Options& opts = {});

/// Fig. 1 as a LaTeX tabular environment.
[[nodiscard]] std::string figure1_latex(const CompatibilityMatrix& m,
                                        const Options& opts = {});

/// The full matrix as CSV (one row per cell; machine-readable form).
[[nodiscard]] std::string matrix_csv(const CompatibilityMatrix& m);

/// The six-category legend as text.
[[nodiscard]] std::string legend_text(const Options& opts = {});

/// One cell's symbol string ("●", "◑/△" for dual ratings, ...).
[[nodiscard]] std::string cell_symbol(const SupportEntry& e,
                                      const Options& opts = {});

}  // namespace mcmm::render
