#pragma once
// Renderers for "Figure 2" — the BabelStream efficiency matrix produced
// by the perf-portability campaign (src/perfport). Same format family as
// the Figure 1 renderers; the txt form is golden-gated byte-for-byte
// (tests/render/golden/figure2.txt) and all forms serve at GET /v1/perf.
//
// Only the perfport report *types* are consumed (a header-only include),
// so mcmm_render keeps linking against mcmm_core alone.

#include <string>

#include "perfport/perfport.hpp"

namespace mcmm::render {

/// Fig. 2 as a fixed-width text grid: one row per (model, kernel), one
/// efficiency column per vendor, PP last.
[[nodiscard]] std::string figure2_text(const perfport::PerfReport& r);

/// Fig. 2 as a GitHub-flavoured Markdown table.
[[nodiscard]] std::string figure2_markdown(const perfport::PerfReport& r);

/// Long-form CSV: one row per (model, kernel, vendor) cell.
[[nodiscard]] std::string figure2_csv(const perfport::PerfReport& r);

/// Fig. 2 as a standalone HTML page.
[[nodiscard]] std::string figure2_html(const perfport::PerfReport& r);

/// Fig. 2 as a LaTeX tabular environment.
[[nodiscard]] std::string figure2_latex(const perfport::PerfReport& r);

/// Fig. 2 as YAML (rows with per-vendor cell mappings).
[[nodiscard]] std::string figure2_yaml(const perfport::PerfReport& r);

}  // namespace mcmm::render
