#pragma once
// stdparx: a C++ standard-parallelism (pSTL) embedding (paper Sec. 4,
// items 11, 26, 40). Algorithms take an execution policy bound to a
// simulated device through one of the real-world runtimes:
//
//   NVHPC      — nvc++ -stdpar=gpu, vendor-complete on NVIDIA (item 11)
//   OneDPL     — Intel's oneAPI DPC++ Library; native on Intel but in the
//                oneapi::dpl:: namespace (the paper's 'some support'
//                caveat, exposed as policy.custom_namespace()); it also
//                reaches NVIDIA/AMD experimentally through DPC++ plugins
//   RocStdpar  — AMD's in-development runtime; must be explicitly enabled
//                (enable_experimental_roc_stdpar), mirroring its
//                not-yet-production status (item 26)
//   OpenSYCL   — the --hipsycl-stdpar route, experimental on all three
//
// Data lives in device_vector<T>, the simulation's stand-in for the
// unified/managed memory the real runtimes rely on.

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <string_view>

#include "core/error.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"

namespace mcmm::stdparx {

enum class Runtime { NVHPC, OneDPL, RocStdpar, OpenSYCL };

[[nodiscard]] std::string_view to_string(Runtime r) noexcept;

/// Opt-in switch for AMD's in-development roc-stdpar route.
void enable_experimental_roc_stdpar(bool enabled) noexcept;
[[nodiscard]] bool roc_stdpar_enabled() noexcept;

/// A device-bound parallel execution policy (the moral equivalent of
/// std::execution::par on a -stdpar=gpu compiler).
class execution_policy {
 public:
  /// Throws UnsupportedCombination per Fig. 1's Standard column.
  execution_policy(Vendor vendor, Runtime runtime);

  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }
  [[nodiscard]] Runtime runtime() const noexcept { return runtime_; }
  /// True when the pSTL entry points live in a custom namespace rather
  /// than std:: (the paper's Intel 'some support' rationale).
  [[nodiscard]] bool custom_namespace() const noexcept {
    return runtime_ == Runtime::OneDPL;
  }

  /// Re-checks the Figure 1 gate this policy was constructed under.
  /// The roc-stdpar opt-in is a process-global switch that can flip
  /// *after* construction; algorithms call this before their first
  /// launch so a newly unsupported combination throws
  /// UnsupportedCombination without consuming any queue time — the
  /// queue's simulated clock and pending state are exactly as before
  /// the call (strong guarantee, no partially-consumed queue).
  void validate() const;

  [[nodiscard]] gpusim::Device& device() const noexcept { return *device_; }
  [[nodiscard]] gpusim::Queue& queue() const noexcept { return *queue_; }
  [[nodiscard]] double simulated_time_us() const noexcept {
    return queue_->simulated_time_us();
  }

 private:
  Vendor vendor_;
  Runtime runtime_;
  gpusim::Device* device_;
  std::shared_ptr<gpusim::Queue> queue_;
};

/// Convenience factory, reading like std::execution::par.
[[nodiscard]] inline execution_policy par_gpu(Vendor vendor, Runtime runtime) {
  return execution_policy(vendor, runtime);
}

/// Device-resident array managed through a policy's device.
template <typename T>
class device_vector {
 public:
  device_vector(const execution_policy& policy, std::size_t count)
      : device_(&policy.device()),
        queue_(&policy.queue()),
        size_(count),
        data_(static_cast<T*>(device_->allocate(count * sizeof(T)))) {}

  ~device_vector() {
    if (data_ != nullptr) device_->deallocate(data_);
  }

  device_vector(const device_vector&) = delete;
  device_vector& operator=(const device_vector&) = delete;
  device_vector(device_vector&& other) noexcept
      : device_(other.device_),
        queue_(other.queue_),
        size_(other.size_),
        data_(other.data_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void upload(const T* host, std::size_t count) {
    queue_->memcpy(data_, host, count * sizeof(T),
                   gpusim::CopyKind::HostToDevice);
  }
  void download(T* host, std::size_t count) const {
    queue_->memcpy(host, data_, count * sizeof(T),
                   gpusim::CopyKind::DeviceToHost);
  }

 private:
  gpusim::Device* device_;
  gpusim::Queue* queue_;
  std::size_t size_;
  T* data_;
};

// --- Algorithms (pSTL shapes; `first`/`last` are device pointers). ---

template <typename T, typename F>
void for_each(const execution_policy& pol, T* first, T* last, F&& f) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * sizeof(T));
  costs.bytes_written = static_cast<double>(n * sizeof(T));
  pol.queue().launch(gpusim::launch_1d(n, 256), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t i = item.global_x();
                       if (i < n) f(first[i]);
                     });
}

template <typename T, typename U, typename F>
void transform(const execution_policy& pol, const T* first, const T* last,
               U* out, F&& f) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * sizeof(T));
  costs.bytes_written = static_cast<double>(n * sizeof(U));
  pol.queue().launch(gpusim::launch_1d(n, 256), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t i = item.global_x();
                       if (i < n) out[i] = f(first[i]);
                     });
}

template <typename T, typename U, typename V, typename F>
void transform(const execution_policy& pol, const T* first1, const T* last1,
               const U* first2, V* out, F&& f) {
  const std::size_t n = static_cast<std::size_t>(last1 - first1);
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * (sizeof(T) + sizeof(U)));
  costs.bytes_written = static_cast<double>(n * sizeof(V));
  pol.queue().launch(gpusim::launch_1d(n, 256), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t i = item.global_x();
                       if (i < n) out[i] = f(first1[i], first2[i]);
                     });
}

template <typename T>
void fill(const execution_policy& pol, T* first, T* last, const T& value) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  gpusim::KernelCosts costs;
  costs.bytes_written = static_cast<double>(n * sizeof(T));
  pol.queue().launch(gpusim::launch_1d(n, 256), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t i = item.global_x();
                       if (i < n) first[i] = value;
                     });
}

template <typename T>
void copy(const execution_policy& pol, const T* first, const T* last,
          T* out) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  pol.queue().memcpy(out, first, n * sizeof(T),
                     gpusim::CopyKind::DeviceToDevice);
}

namespace detail {

template <typename T, typename Transform, typename Combine>
T chunked_reduce(const execution_policy& pol, std::size_t n, T init,
                 const gpusim::KernelCosts& costs, Transform&& transform,
                 Combine&& combine) {
  constexpr std::size_t kChunks = 64;
  std::array<T, kChunks> partials;
  std::array<bool, kChunks> used{};
  const std::size_t chunk = (n + kChunks - 1) / kChunks;
  // Chunks self-schedule (dynamic grain 1): the offload runtimes behind
  // stdpar balance uneven iterations, and so does the engine here.
  pol.queue().launch(gpusim::launch_1d(kChunks, 1), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t c = item.global_x();
                       if (c >= kChunks) return;
                       const std::size_t begin = c * chunk;
                       const std::size_t end = std::min(n, begin + chunk);
                       if (begin >= end) return;
                       T acc = transform(begin);
                       for (std::size_t i = begin + 1; i < end; ++i) {
                         acc = combine(acc, transform(i));
                       }
                       partials[c] = acc;
                       used[c] = true;
                     },
                     gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
  T result = init;
  for (std::size_t c = 0; c < kChunks; ++c) {
    if (used[c]) result = combine(result, partials[c]);
  }
  return result;
}

}  // namespace detail

template <typename T, typename Combine>
T reduce(const execution_policy& pol, const T* first, const T* last, T init,
         Combine&& combine) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * sizeof(T));
  costs.flops = static_cast<double>(n);
  return detail::chunked_reduce(
      pol, n, init, costs, [&](std::size_t i) { return first[i]; },
      std::forward<Combine>(combine));
}

template <typename T>
T reduce(const execution_policy& pol, const T* first, const T* last, T init) {
  return reduce(pol, first, last, init,
                [](const T& a, const T& b) { return a + b; });
}

template <typename T, typename U, typename R>
R transform_reduce(const execution_policy& pol, const T* first1,
                   const T* last1, const U* first2, R init) {
  const std::size_t n = static_cast<std::size_t>(last1 - first1);
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * (sizeof(T) + sizeof(U)));
  costs.flops = static_cast<double>(2 * n);
  return detail::chunked_reduce(
      pol, n, init, costs,
      [&](std::size_t i) { return static_cast<R>(first1[i] * first2[i]); },
      [](const R& a, const R& b) { return a + b; });
}

template <typename T, typename Pred>
std::size_t count_if(const execution_policy& pol, const T* first,
                     const T* last, Pred&& pred) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * sizeof(T));
  costs.flops = static_cast<double>(n);
  return detail::chunked_reduce(
      pol, n, std::size_t{0}, costs,
      [&](std::size_t i) -> std::size_t { return pred(first[i]) ? 1 : 0; },
      [](std::size_t a, std::size_t b) { return a + b; });
}

template <typename T>
void iota(const execution_policy& pol, T* first, T* last, T start) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  gpusim::KernelCosts costs;
  costs.bytes_written = static_cast<double>(n * sizeof(T));
  pol.queue().launch(gpusim::launch_1d(n, 256), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t i = item.global_x();
                       if (i < n) first[i] = start + static_cast<T>(i);
                     });
}

/// Two-pass chunked inclusive scan (the standard GPU decomposition:
/// per-chunk sums, exclusive prefix over chunk sums, re-scan).
template <typename T>
void inclusive_scan(const execution_policy& pol, const T* first,
                    const T* last, T* out) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  constexpr std::size_t kChunks = 64;
  std::array<T, kChunks> sums{};
  const std::size_t chunk = (n + kChunks - 1) / kChunks;
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * sizeof(T));
  costs.bytes_written = static_cast<double>(n * sizeof(T));
  pol.queue().launch(gpusim::launch_1d(kChunks, 1), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t c = item.global_x();
                       if (c >= kChunks) return;
                       const std::size_t b = c * chunk;
                       const std::size_t e = std::min(n, b + chunk);
                       T acc{};
                       for (std::size_t i = b; i < e; ++i) acc += first[i];
                       sums[c] = acc;
                     },
                     gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
  std::array<T, kChunks> offsets{};
  T running{};
  for (std::size_t c = 0; c < kChunks; ++c) {
    offsets[c] = running;
    running += sums[c];
  }
  pol.queue().launch(gpusim::launch_1d(kChunks, 1), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t c = item.global_x();
                       if (c >= kChunks) return;
                       const std::size_t b = c * chunk;
                       const std::size_t e = std::min(n, b + chunk);
                       T acc = offsets[c];
                       for (std::size_t i = b; i < e; ++i) {
                         acc += first[i];
                         out[i] = acc;
                       }
                     },
                     gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
}

template <typename T>
[[nodiscard]] T max_element_value(const execution_policy& pol,
                                  const T* first, const T* last) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * sizeof(T));
  costs.flops = static_cast<double>(n);
  return detail::chunked_reduce(
      pol, n, std::numeric_limits<T>::lowest(), costs,
      [&](std::size_t i) { return first[i]; },
      [](const T& a, const T& b) { return a > b ? a : b; });
}

template <typename T>
[[nodiscard]] T min_element_value(const execution_policy& pol,
                                  const T* first, const T* last) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * sizeof(T));
  costs.flops = static_cast<double>(n);
  return detail::chunked_reduce(
      pol, n, std::numeric_limits<T>::max(), costs,
      [&](std::size_t i) { return first[i]; },
      [](const T& a, const T& b) { return a < b ? a : b; });
}

/// Offloaded sort (the simulation sorts in device memory; costs follow an
/// n log n radix/merge hybrid's traffic).
template <typename T>
void sort(const execution_policy& pol, T* first, T* last) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  gpusim::KernelCosts costs;
  const double passes = std::max(1.0, std::log2(static_cast<double>(n)) / 2);
  costs.bytes_read = static_cast<double>(n * sizeof(T)) * passes;
  costs.bytes_written = static_cast<double>(n * sizeof(T)) * passes;
  pol.queue().launch(gpusim::launch_1d(1, 1), costs,
                     [&](const gpusim::WorkItem& item) {
                       if (item.global_x() == 0) std::sort(first, last);
                     });
}

}  // namespace mcmm::stdparx
