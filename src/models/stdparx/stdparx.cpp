#include "models/stdparx/stdparx.hpp"

#include <atomic>

#include "models/profiles.hpp"

namespace mcmm::stdparx {
namespace {

std::atomic<bool> g_roc_stdpar_enabled{false};

[[nodiscard]] gpusim::BackendProfile profile_for(Vendor vendor,
                                                 Runtime runtime) {
  const Combination combo{vendor, Model::Standard, Language::Cpp};
  switch (runtime) {
    case Runtime::NVHPC:
      if (vendor != Vendor::NVIDIA) {
        throw UnsupportedCombination(
            combo, "nvc++ -stdpar=gpu targets NVIDIA GPUs only");
      }
      return models::native_profile("stdpar/NVHPC");
    case Runtime::OneDPL:
      switch (vendor) {
        case Vendor::Intel:
          // Production, but in the oneapi::dpl:: namespace (item 40).
          return models::layered_profile("stdpar/oneDPL");
        case Vendor::NVIDIA:
        case Vendor::AMD:
          // DPC++ plugin routes; experimental per items 11/26.
          return models::experimental_profile("stdpar/oneDPL-plugin");
      }
      break;
    case Runtime::RocStdpar:
      if (vendor != Vendor::AMD) {
        throw UnsupportedCombination(combo,
                                     "roc-stdpar targets AMD GPUs only");
      }
      if (!roc_stdpar_enabled()) {
        throw UnsupportedCombination(
            combo,
            "roc-stdpar is in development and not production-enabled; call "
            "enable_experimental_roc_stdpar(true) to opt in (item 26)");
      }
      return models::experimental_profile("stdpar/roc-stdpar");
    case Runtime::OpenSYCL:
      // --hipsycl-stdpar is under construction on all three platforms.
      return models::experimental_profile("stdpar/OpenSYCL");
  }
  throw UnsupportedCombination(combo, "unknown stdpar runtime");
}

}  // namespace

std::string_view to_string(Runtime r) noexcept {
  switch (r) {
    case Runtime::NVHPC:
      return "NVHPC";
    case Runtime::OneDPL:
      return "oneDPL";
    case Runtime::RocStdpar:
      return "roc-stdpar";
    case Runtime::OpenSYCL:
      return "Open SYCL";
  }
  return "?";
}

void enable_experimental_roc_stdpar(bool enabled) noexcept {
  g_roc_stdpar_enabled.store(enabled);
}

bool roc_stdpar_enabled() noexcept { return g_roc_stdpar_enabled.load(); }

execution_policy::execution_policy(Vendor vendor, Runtime runtime)
    : vendor_(vendor), runtime_(runtime) {
  const gpusim::BackendProfile profile = profile_for(vendor, runtime);
  device_ = &gpusim::Platform::instance().device(vendor);
  queue_ = device_->create_queue();
  queue_->set_backend_profile(profile);
}

void execution_policy::validate() const {
  (void)profile_for(vendor_, runtime_);  // throws when the gate closed
}

}  // namespace mcmm::stdparx
