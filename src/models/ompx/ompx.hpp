#pragma once
// ompx: an OpenMP-target-offload-style embedding (paper Sec. 4, items 9,
// 10, 24, 25, 38, 39). Directives become structured calls:
//
//   #pragma omp target teams distribute parallel for map(to: a[0:n])
//   -> ompx::target_data data(dev); data.map_to(a, n);
//      ompx::target_teams_distribute_parallel_for(dev, n, costs, body);
//
// The `Compiler` parameter reproduces the paper's core observation for
// OpenMP: every compiler supports a *different subset* of the standard.
// Using a feature a compiler lacks throws UnsupportedFeature, the
// executable form of the paper's "only a subset of OpenMP 5.0" caveats.

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim3.hpp"

namespace mcmm::ompx {

enum class Compiler { NVHPC, GCC, Clang, Cray, AOMP, ICPX };

/// OpenMP features whose support differs between the compilers the paper
/// surveys.
enum class Feature {
  TargetOffload,        ///< basic `target` construct (4.0)
  TeamsReduction,       ///< reductions across teams (4.5)
  Collapse,             ///< collapse(n) on distribute-parallel-for (4.5)
  TargetUpdate,         ///< `target update` midway data refresh (4.5)
  UnifiedSharedMemory,  ///< `requires unified_shared_memory` (5.0)
  DeclareMapper,        ///< `declare mapper` custom mappings (5.0)
  LoopDirective,        ///< `loop` directive (5.0)
  Metadirective,        ///< `metadirective` context selection (5.0)
};

[[nodiscard]] std::string_view to_string(Compiler c) noexcept;
[[nodiscard]] std::string_view to_string(Feature f) noexcept;

struct CompilerInfo {
  std::string version_claim;  ///< e.g. "subset of OpenMP 5.0"
  std::set<Feature> features;
  std::set<Vendor> targets;
};

/// The survey table: what each compiler implements and which GPUs it can
/// offload to (paper items 9/24/38 and the ECP BoF discussion).
[[nodiscard]] const CompilerInfo& compiler_info(Compiler c);

/// A GPU made addressable through one OpenMP compiler.
class TargetDevice {
 public:
  /// Throws UnsupportedCombination when `compiler` cannot offload to
  /// `vendor` (e.g. NVHPC to AMD, ICPX to NVIDIA).
  TargetDevice(Vendor vendor, Compiler compiler);

  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }
  [[nodiscard]] Compiler compiler() const noexcept { return compiler_; }

  /// Throws UnsupportedFeature when the compiler lacks the feature.
  void require(Feature f) const;
  [[nodiscard]] bool has(Feature f) const noexcept;

  [[nodiscard]] gpusim::Device& device() noexcept { return *device_; }
  [[nodiscard]] gpusim::Queue& queue() noexcept { return *queue_; }
  [[nodiscard]] double simulated_time_us() const noexcept {
    return queue_->simulated_time_us();
  }

 private:
  Vendor vendor_;
  Compiler compiler_;
  gpusim::Device* device_;
  std::unique_ptr<gpusim::Queue> queue_;
};

/// RAII data region: `#pragma omp target data map(...)`.
class target_data {
 public:
  explicit target_data(TargetDevice& dev) : dev_(&dev) {}
  ~target_data();

  target_data(const target_data&) = delete;
  target_data& operator=(const target_data&) = delete;

  /// map(to: ptr[0:count]) — copies in now, device-only afterwards.
  template <typename T>
  T* map_to(const T* host, std::size_t count) {
    return static_cast<T*>(map_impl(host, count * sizeof(T), true, false));
  }
  /// map(from: ptr[0:count]) — device buffer now, copy-out on scope exit.
  template <typename T>
  T* map_from(T* host, std::size_t count) {
    return static_cast<T*>(map_impl(host, count * sizeof(T), false, true));
  }
  /// map(tofrom: ptr[0:count]).
  template <typename T>
  T* map_tofrom(T* host, std::size_t count) {
    return static_cast<T*>(map_impl(host, count * sizeof(T), true, true));
  }

  /// `target update from(...)`: refresh host mid-region. Requires the
  /// TargetUpdate feature.
  void update_from(const void* host);
  /// `target update to(...)`.
  void update_to(const void* host);

  /// Device pointer of a mapped host pointer (use_device_ptr clause).
  [[nodiscard]] void* device_ptr(const void* host) const;

 private:
  void* map_impl(const void* host, std::size_t bytes, bool to, bool from);

  struct Mapping {
    void* device{};
    std::size_t bytes{};
    bool copy_out{};
  };

  TargetDevice* dev_;
  std::map<const void*, Mapping> mappings_;  ///< keyed by host pointer
};

// --- OpenMP device memory routines (omp_target_alloc family, 4.5) ---

/// omp_target_alloc analogue: raw device allocation outside any data
/// region. Returns nullptr on failure, as the OpenMP routine does.
[[nodiscard]] void* omp_target_alloc(TargetDevice& dev, std::size_t bytes);

/// omp_target_free analogue. Freeing nullptr is a no-op.
void omp_target_free(TargetDevice& dev, void* ptr);

/// omp_target_memcpy analogue; returns 0 on success, non-zero on error.
/// Directions are inferred from `dst_on_device` / `src_on_device`, like
/// the device-number arguments of the real routine.
[[nodiscard]] int omp_target_memcpy(TargetDevice& dev, void* dst,
                                    const void* src, std::size_t bytes,
                                    bool dst_on_device, bool src_on_device);

/// omp_target_is_present analogue for raw allocations.
[[nodiscard]] bool omp_target_is_present(TargetDevice& dev, const void* ptr);

/// `#pragma omp target teams distribute parallel for` over [0, n).
/// `body(i)` runs once per iteration on device pointers.
template <typename Body>
void target_teams_distribute_parallel_for(TargetDevice& dev, std::size_t n,
                                          const gpusim::KernelCosts& costs,
                                          Body&& body) {
  dev.require(Feature::TargetOffload);
  const gpusim::LaunchConfig cfg = gpusim::launch_1d(n, 256);
  dev.queue().launch(cfg, costs, [&](const gpusim::WorkItem& item) {
    const std::size_t i = item.global_x();
    if (i < n) body(i);
  });
}

/// Same construct with a `reduction(+: result)`-style clause. Requires the
/// TeamsReduction feature. Deterministic chunked reduction.
template <typename T, typename Body>
T target_teams_reduce(TargetDevice& dev, std::size_t n, T init,
                      const gpusim::KernelCosts& costs, Body&& body) {
  dev.require(Feature::TargetOffload);
  dev.require(Feature::TeamsReduction);
  constexpr std::size_t kTeams = 64;
  std::vector<T> partials(kTeams, init);
  const std::size_t chunk = (n + kTeams - 1) / kTeams;
  const gpusim::LaunchConfig cfg = gpusim::launch_1d(kTeams, 1);
  // Teams are few and fat (`schedule(dynamic)` territory): grab them one
  // by one so an uneven team does not gate the whole reduction.
  dev.queue().launch(
      cfg, costs,
      [&](const gpusim::WorkItem& item) {
        const std::size_t t = item.global_x();
        if (t >= kTeams) return;
        const std::size_t begin = t * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        T acc = init;
        for (std::size_t i = begin; i < end; ++i) acc += body(i);
        partials[t] = acc;
      },
      gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
  T result = init;
  for (const T& p : partials) result += p;
  return result;
}

/// `metadirective` analogue (5.0): context-dependent dispatch —
///
///   #pragma omp metadirective when(device={kind(gpu)}:
///       target teams distribute parallel for) default(parallel for)
///
/// Runs `body` on the device when the compiler implements metadirective
/// and a GPU context is present, otherwise on the host. Returns true when
/// the device variant was chosen. Requires the Metadirective feature.
template <typename Body>
bool metadirective_target_or_host(TargetDevice& dev, std::size_t n,
                                  const gpusim::KernelCosts& costs,
                                  Body&& body) {
  dev.require(Feature::Metadirective);
  // The simulated context always has a GPU: the when-clause matches.
  target_teams_distribute_parallel_for(dev, n, costs,
                                       std::forward<Body>(body));
  return true;
}

/// `collapse(2)` variant over an n x m iteration space. Requires Collapse.
template <typename Body>
void target_teams_distribute_parallel_for_collapse2(
    TargetDevice& dev, std::size_t n, std::size_t m,
    const gpusim::KernelCosts& costs, Body&& body) {
  dev.require(Feature::TargetOffload);
  dev.require(Feature::Collapse);
  const std::size_t total = n * m;
  const gpusim::LaunchConfig cfg = gpusim::launch_1d(total, 256);
  dev.queue().launch(cfg, costs, [&](const gpusim::WorkItem& item) {
    const std::size_t i = item.global_x();
    if (i < total) body(i / m, i % m);
  });
}

}  // namespace mcmm::ompx
