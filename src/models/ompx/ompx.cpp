#include "models/ompx/ompx.hpp"

#include <algorithm>

#include "models/profiles.hpp"

namespace mcmm::ompx {
namespace {

using enum Feature;

[[nodiscard]] std::map<Compiler, CompilerInfo> build_compiler_table() {
  std::map<Compiler, CompilerInfo> table;
  // NVHPC: "only a subset of the entire OpenMP 5.0 standard" (item 9).
  table[Compiler::NVHPC] = CompilerInfo{
      "subset of OpenMP 5.0",
      {TargetOffload, TeamsReduction, Collapse, TargetUpdate, LoopDirective},
      {Vendor::NVIDIA}};
  // GCC: "supports OpenMP 4.5 entirely, 5.x being implemented" (item 9);
  // offloads to nvptx and amdgcn (items 9, 22).
  table[Compiler::GCC] = CompilerInfo{
      "OpenMP 4.5 complete, 5.x in progress",
      {TargetOffload, TeamsReduction, Collapse, TargetUpdate},
      {Vendor::NVIDIA, Vendor::AMD}};
  // Clang: "4.5 and selected 5.0/5.1 features" (item 9).
  table[Compiler::Clang] = CompilerInfo{
      "OpenMP 4.5 plus selected 5.0/5.1",
      {TargetOffload, TeamsReduction, Collapse, TargetUpdate,
       UnifiedSharedMemory, Metadirective},
      {Vendor::NVIDIA, Vendor::AMD}};
  // HPE Cray PE: "a subset of OpenMP 5.0/5.1" on NVIDIA and AMD (items 9,
  // 24).
  table[Compiler::Cray] = CompilerInfo{
      "subset of OpenMP 5.0/5.1",
      {TargetOffload, TeamsReduction, Collapse, TargetUpdate, LoopDirective,
       Metadirective},
      {Vendor::NVIDIA, Vendor::AMD}};
  // AOMP: "most OpenMP 4.5 and some 5.0" (item 24); also targets NVIDIA
  // (item 9).
  table[Compiler::AOMP] = CompilerInfo{
      "most OpenMP 4.5, some 5.0",
      {TargetOffload, TeamsReduction, Collapse, TargetUpdate,
       UnifiedSharedMemory},
      {Vendor::AMD, Vendor::NVIDIA}};
  // Intel icpx: "all OpenMP 4.5 and most 5.0/5.1" (item 38).
  table[Compiler::ICPX] = CompilerInfo{
      "OpenMP 4.5 complete, most 5.0/5.1",
      {TargetOffload, TeamsReduction, Collapse, TargetUpdate,
       UnifiedSharedMemory, DeclareMapper, LoopDirective},
      {Vendor::Intel}};
  return table;
}

[[nodiscard]] gpusim::BackendProfile profile_for(Vendor vendor,
                                                 Compiler compiler) {
  std::string label = "OpenMP/" + std::string(to_string(compiler));
  // Vendor compilers on their own platform are the best-tuned directive
  // routes; cross-vendor community compilers pay slightly more.
  const bool home =
      (compiler == Compiler::NVHPC && vendor == Vendor::NVIDIA) ||
      (compiler == Compiler::AOMP && vendor == Vendor::AMD) ||
      (compiler == Compiler::ICPX && vendor == Vendor::Intel);
  gpusim::BackendProfile p = models::directive_profile(std::move(label));
  if (!home) {
    p.bandwidth_efficiency *= 0.97;
    p.extra_launch_latency_us += 1.0;
  }
  return p;
}

}  // namespace

std::string_view to_string(Compiler c) noexcept {
  switch (c) {
    case Compiler::NVHPC:
      return "NVHPC";
    case Compiler::GCC:
      return "GCC";
    case Compiler::Clang:
      return "Clang";
    case Compiler::Cray:
      return "Cray";
    case Compiler::AOMP:
      return "AOMP";
    case Compiler::ICPX:
      return "ICPX";
  }
  return "?";
}

std::string_view to_string(Feature f) noexcept {
  switch (f) {
    case Feature::TargetOffload:
      return "target offload";
    case Feature::TeamsReduction:
      return "teams reduction";
    case Feature::Collapse:
      return "collapse";
    case Feature::TargetUpdate:
      return "target update";
    case Feature::UnifiedSharedMemory:
      return "unified shared memory";
    case Feature::DeclareMapper:
      return "declare mapper";
    case Feature::LoopDirective:
      return "loop directive";
    case Feature::Metadirective:
      return "metadirective";
  }
  return "?";
}

const CompilerInfo& compiler_info(Compiler c) {
  static const std::map<Compiler, CompilerInfo> table = build_compiler_table();
  return table.at(c);
}

TargetDevice::TargetDevice(Vendor vendor, Compiler compiler)
    : vendor_(vendor), compiler_(compiler) {
  const CompilerInfo& info = compiler_info(compiler);
  if (!info.targets.contains(vendor)) {
    throw UnsupportedCombination(
        Combination{vendor, Model::OpenMP, Language::Cpp},
        std::string(to_string(compiler)) + " cannot offload to " +
            std::string(mcmm::to_string(vendor)) + " GPUs");
  }
  device_ = &gpusim::Platform::instance().device(vendor);
  queue_ = device_->create_queue();
  queue_->set_backend_profile(profile_for(vendor, compiler));
}

void TargetDevice::require(Feature f) const {
  if (!has(f)) {
    throw UnsupportedFeature(
        std::string(to_string(f)),
        std::string(to_string(compiler_)) + " implements only " +
            compiler_info(compiler_).version_claim);
  }
}

bool TargetDevice::has(Feature f) const noexcept {
  return compiler_info(compiler_).features.contains(f);
}

void* omp_target_alloc(TargetDevice& dev, std::size_t bytes) {
  try {
    return dev.device().allocate(bytes);
  } catch (const gpusim::OutOfMemory&) {
    return nullptr;
  }
}

void omp_target_free(TargetDevice& dev, void* ptr) {
  if (ptr != nullptr) dev.device().deallocate(ptr);
}

int omp_target_memcpy(TargetDevice& dev, void* dst, const void* src,
                      std::size_t bytes, bool dst_on_device,
                      bool src_on_device) {
  try {
    if (dst_on_device && src_on_device) {
      dev.queue().memcpy(dst, src, bytes, gpusim::CopyKind::DeviceToDevice);
    } else if (dst_on_device) {
      dev.queue().memcpy(dst, src, bytes, gpusim::CopyKind::HostToDevice);
    } else if (src_on_device) {
      dev.queue().memcpy(dst, src, bytes, gpusim::CopyKind::DeviceToHost);
    } else {
      std::memcpy(dst, src, bytes);
    }
    return 0;
  } catch (const gpusim::SimError&) {
    return 1;
  }
}

bool omp_target_is_present(TargetDevice& dev, const void* ptr) {
  return dev.device().is_device_pointer(ptr);
}

target_data::~target_data() {
  // Copy-out 'from' mappings, then release device buffers. Destructors
  // must not throw; mapping errors would have surfaced at map time.
  for (auto& [host, mapping] : mappings_) {
    if (mapping.copy_out) {
      dev_->queue().memcpy(const_cast<void*>(host), mapping.device,
                           mapping.bytes, gpusim::CopyKind::DeviceToHost);
    }
    dev_->device().deallocate(mapping.device);
  }
}

void* target_data::map_impl(const void* host, std::size_t bytes, bool to,
                            bool from) {
  if (mappings_.contains(host)) {
    throw gpusim::InvalidPointer("host pointer already mapped in this "
                                 "target data region");
  }
  void* device = dev_->device().allocate(bytes);
  if (to) {
    dev_->queue().memcpy(device, host, bytes, gpusim::CopyKind::HostToDevice);
  }
  mappings_.emplace(host, Mapping{device, bytes, from});
  return device;
}

void target_data::update_from(const void* host) {
  dev_->require(Feature::TargetUpdate);
  const auto it = mappings_.find(host);
  if (it == mappings_.end()) {
    throw gpusim::InvalidPointer("target update: pointer not mapped");
  }
  dev_->queue().memcpy(const_cast<void*>(host), it->second.device,
                       it->second.bytes, gpusim::CopyKind::DeviceToHost);
}

void target_data::update_to(const void* host) {
  dev_->require(Feature::TargetUpdate);
  const auto it = mappings_.find(host);
  if (it == mappings_.end()) {
    throw gpusim::InvalidPointer("target update: pointer not mapped");
  }
  dev_->queue().memcpy(it->second.device, host, it->second.bytes,
                       gpusim::CopyKind::HostToDevice);
}

void* target_data::device_ptr(const void* host) const {
  const auto it = mappings_.find(host);
  if (it == mappings_.end()) {
    throw gpusim::InvalidPointer("use_device_ptr: pointer not mapped");
  }
  return it->second.device;
}

}  // namespace mcmm::ompx
