#pragma once
// syclx buffer/accessor layer: the second half of the SYCL programming
// model (items 5, 21, 35). Buffers own data whose device copies are
// managed implicitly; command groups request access through accessors and
// the runtime performs the transfers — the "buffers and accessors" style
// that distinguishes SYCL source from CUDA/HIP source.
//
// Semantics modelled: host data is copied in when a kernel first accesses
// a buffer on the device, and written back when the buffer is destroyed
// (or host_accessor is taken), as in SYCL's RAII data management.

#include <cstring>
#include <vector>

#include "gpusim/sanitizer.hpp"
#include "models/syclx/syclx.hpp"

namespace mcmm::syclx {

enum class access_mode { read, write, read_write };

template <typename T>
class buffer;

/// Device-side view of a buffer inside a command group. Every element
/// access is a sanitizer probe: the access mode gives gpusan the read/write
/// direction (read_write cannot distinguish the two, so it is bounds-checked
/// but excluded from race analysis).
template <typename T>
class accessor {
 public:
  [[nodiscard]] T& operator[](std::size_t i) const noexcept {
    gpusim::note_device_access(data_ + i, sizeof(T),
                               mode_ == access_mode::read
                                   ? gpusim::AccessKind::Read
                               : mode_ == access_mode::write
                                   ? gpusim::AccessKind::Write
                                   : gpusim::AccessKind::Unknown);
    return data_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] access_mode mode() const noexcept { return mode_; }

 private:
  template <typename U>
  friend class buffer;
  accessor(T* data, std::size_t size, access_mode mode)
      : data_(data), size_(size), mode_(mode) {}

  T* data_;
  std::size_t size_;
  access_mode mode_;
};

/// A SYCL-style buffer: wraps host memory, lazily materializes a device
/// copy, writes back on destruction.
template <typename T>
class buffer {
 public:
  buffer(T* host_data, std::size_t count)
      : host_(host_data), size_(count) {}

  buffer(const buffer&) = delete;
  buffer& operator=(const buffer&) = delete;

  ~buffer() {
    if (device_ != nullptr) {
      if (device_dirty_) {
        bound_queue_->memcpy(host_, device_, size_ * sizeof(T));
      }
      bound_queue_->free(device_);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Requests device access inside a command group (handler::get_access
  /// analogue). Materializes/refreshes the device copy as the access mode
  /// requires.
  [[nodiscard]] accessor<T> get_access(queue& q, access_mode mode) {
    materialize(q);
    if (mode != access_mode::read) device_dirty_ = true;
    return accessor<T>(device_, size_, mode);
  }

  /// Host access (sycl::host_accessor): synchronizes the host copy.
  [[nodiscard]] T* get_host_access() {
    if (device_ != nullptr && device_dirty_) {
      bound_queue_->memcpy(host_, device_, size_ * sizeof(T));
      device_dirty_ = false;
      host_dirty_ = false;
    }
    host_dirty_ = true;  // host may now be written
    return host_;
  }

  /// True when a device copy currently exists (introspection for tests).
  [[nodiscard]] bool on_device() const noexcept { return device_ != nullptr; }

 private:
  void materialize(queue& q) {
    if (device_ == nullptr) {
      bound_queue_ = &q;
      device_ = q.malloc_device<T>(size_, "syclx::buffer");
      q.memcpy(device_, host_, size_ * sizeof(T));
      host_dirty_ = false;
      return;
    }
    if (bound_queue_ != &q) {
      throw UnsupportedCombination(
          Combination{q.vendor(), Model::SYCL, Language::Cpp},
          "buffer is bound to a different queue/device; SYCL would "
          "migrate, this embedding rejects");
    }
    if (host_dirty_) {
      q.memcpy(device_, host_, size_ * sizeof(T));
      host_dirty_ = false;
    }
  }

  T* host_;
  std::size_t size_;
  queue* bound_queue_{nullptr};
  T* device_{nullptr};
  bool device_dirty_{false};
  bool host_dirty_{true};
};

/// Command-group handler: collects accessors and launches the kernel
/// (sycl::handler analogue).
class handler {
 public:
  explicit handler(queue& q) : queue_(&q) {}

  template <typename T>
  [[nodiscard]] accessor<T> get_access(buffer<T>& buf, access_mode mode) {
    return buf.get_access(*queue_, mode);
  }

  template <typename Body>
  void parallel_for(range r, const gpusim::KernelCosts& costs, Body&& body) {
    event_ = queue_->parallel_for(r, costs, std::forward<Body>(body));
  }

  template <typename Body>
  void parallel_for(range r, Body&& body) {
    event_ = queue_->parallel_for(r, std::forward<Body>(body));
  }

  [[nodiscard]] event last_event() const noexcept { return event_; }

 private:
  queue* queue_;
  event event_{};
};

/// queue::submit analogue as a free function (keeps queue itself USM-only).
template <typename CommandGroup>
event submit(queue& q, CommandGroup&& cg) {
  handler h(q);
  cg(h);
  return h.last_event();
}

}  // namespace mcmm::syclx
