#pragma once
// syclx: a SYCL-style API embedding (paper Sec. 4, items 5, 21, 35).
// Queue-centric, exception-based, USM pointers, lambdas over an nd-range.
// The `Implementation` parameter mirrors the real-world choice between
// DPC++ (Intel's LLVM toolchain with CUDA/ROCm plugins), Open SYCL
// (community, previously hipSYCL), and the retired ComputeCpp; support per
// simulated vendor follows Fig. 1.

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>

#include "core/error.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim3.hpp"

namespace mcmm::syclx {

enum class Implementation { DPCpp, OpenSYCL, ComputeCpp };

[[nodiscard]] std::string_view to_string(Implementation i) noexcept;

struct range {
  std::size_t size{};
};

struct id {
  std::size_t value{};
  constexpr operator std::size_t() const noexcept { return value; }  // NOLINT
};

class event {
 public:
  event() = default;
  explicit event(gpusim::Event e) : event_(e) {}
  [[nodiscard]] double duration_us() const noexcept {
    return event_.duration_us();
  }
  void wait() const noexcept {}

 private:
  gpusim::Event event_{};
};

/// A SYCL-style in-order queue bound to one simulated device through one
/// implementation route.
class queue {
 public:
  /// Throws UnsupportedCombination when the implementation cannot target
  /// the vendor (e.g. any ComputeCpp queue — retired; see Fig. 1 notes).
  explicit queue(Vendor vendor, Implementation impl = Implementation::DPCpp);

  queue(const queue&) = delete;
  queue& operator=(const queue&) = delete;
  queue(queue&&) = default;

  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }
  [[nodiscard]] Implementation implementation() const noexcept {
    return impl_;
  }
  [[nodiscard]] const gpusim::BackendProfile& backend_profile() const {
    return queue_->backend_profile();
  }

  /// USM device allocation. `origin` tags the block in sanitizer reports.
  template <typename T>
  [[nodiscard]] T* malloc_device(std::size_t count,
                                 std::string_view origin =
                                     "syclx::malloc_device") {
    return static_cast<T*>(device_->allocate(count * sizeof(T), origin));
  }
  void free(void* ptr) {
    if (ptr != nullptr) device_->deallocate(ptr);
  }

  /// USM memcpy: direction inferred from pointer provenance, as in SYCL.
  event memcpy(void* dst, const void* src, std::size_t bytes);

  event fill_bytes(void* dst, int value, std::size_t bytes) {
    return event(queue_->memset(dst, value, bytes));
  }

  /// parallel_for over a 1-D range; body receives the work-item id. The
  /// policy overload exposes the host-side schedule knob (gpusan's race
  /// fixtures run under both schedules to show detection is
  /// schedule-independent).
  template <typename Body>
  event parallel_for(range r, const gpusim::KernelCosts& costs,
                     gpusim::LaunchPolicy policy, Body&& body) {
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(r.size, 256);
    const std::size_t n = r.size;
    return event(
        queue_->launch(
            cfg, costs,
            [&](const gpusim::WorkItem& item) {
              const std::size_t i = item.global_x();
              if (i < n) body(id{i});
            },
            policy));
  }

  template <typename Body>
  event parallel_for(range r, const gpusim::KernelCosts& costs, Body&& body) {
    return parallel_for(r, costs, gpusim::LaunchPolicy{},
                        std::forward<Body>(body));
  }

  template <typename Body>
  event parallel_for(range r, Body&& body) {
    return parallel_for(r, gpusim::KernelCosts{}, std::forward<Body>(body));
  }

  /// Reduction: result = reduce(init, combine, transform(i) for i in range),
  /// the shape of sycl::reduction with a transform lambda. Deterministic
  /// two-phase implementation (per-chunk partials, ordered combine).
  template <typename T, typename Transform, typename Combine>
  T reduce(range r, T init, const gpusim::KernelCosts& costs,
           Transform&& transform, Combine&& combine);

  void wait() const noexcept { queue_->synchronize(); }

  /// Simulated time consumed by this queue, microseconds.
  [[nodiscard]] double simulated_time_us() const noexcept {
    return queue_->simulated_time_us();
  }

  [[nodiscard]] gpusim::Device& device() noexcept { return *device_; }

 private:
  Vendor vendor_{};
  Implementation impl_{};
  gpusim::Device* device_{};
  std::unique_ptr<gpusim::Queue> queue_;
};

template <typename T, typename Transform, typename Combine>
T queue::reduce(range r, T init, const gpusim::KernelCosts& costs,
                Transform&& transform, Combine&& combine) {
  constexpr std::size_t kChunks = 64;
  const std::size_t n = r.size;
  std::array<T, kChunks> partials;
  std::array<bool, kChunks> used{};
  partials.fill(init);
  const std::size_t chunk = (n + kChunks - 1) / kChunks;
  const gpusim::LaunchConfig cfg = gpusim::launch_1d(kChunks, 1);
  // Few fat work items: let the pool self-schedule them one by one so a
  // slow chunk does not serialize behind a static partition.
  constexpr gpusim::LaunchPolicy kDynamic{gpusim::Schedule::Dynamic, 1};
  queue_->launch(
      cfg, costs,
      [&](const gpusim::WorkItem& item) {
        const std::size_t c = item.global_x();
        if (c >= kChunks) return;
        const std::size_t begin = c * chunk;
        const std::size_t end = std::min(n, begin + chunk);
        if (begin >= end) return;
        T acc = transform(begin);
        for (std::size_t i = begin + 1; i < end; ++i) {
          acc = combine(acc, transform(i));
        }
        partials[c] = acc;
        used[c] = true;
      },
      kDynamic);
  T result = init;
  for (std::size_t c = 0; c < kChunks; ++c) {
    if (used[c]) result = combine(result, partials[c]);
  }
  return result;
}

}  // namespace mcmm::syclx
