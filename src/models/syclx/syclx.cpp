#include "models/syclx/syclx.hpp"

#include "models/profiles.hpp"

namespace mcmm::syclx {
namespace {

/// Which implementation reaches which vendor, and through what profile —
/// the executable form of Fig. 1's SYCL column.
[[nodiscard]] gpusim::BackendProfile profile_for(Vendor vendor,
                                                 Implementation impl) {
  const Combination combo{vendor, Model::SYCL, Language::Cpp};
  switch (impl) {
    case Implementation::DPCpp:
      switch (vendor) {
        case Vendor::Intel:
          // SYCL via DPC++ is the native model on Intel (item 35).
          return models::native_profile("DPC++/LevelZero");
        case Vendor::NVIDIA:
          // CUDA plugin (item 5).
          return models::layered_profile("DPC++/CUDA-plugin");
        case Vendor::AMD:
          // ROCm plugin (item 21).
          return models::layered_profile("DPC++/ROCm-plugin");
      }
      break;
    case Implementation::OpenSYCL:
      // Open SYCL reaches all three platforms through LLVM (items 5, 21,
      // 35); community-maintained layered route.
      switch (vendor) {
        case Vendor::Intel:
          return models::layered_profile("OpenSYCL/LevelZero");
        case Vendor::NVIDIA:
          return models::layered_profile("OpenSYCL/CUDA");
        case Vendor::AMD:
          return models::layered_profile("OpenSYCL/ROCm");
      }
      break;
    case Implementation::ComputeCpp:
      // Unsupported since September 2023 (items 5, 35).
      throw UnsupportedCombination(
          combo, "ComputeCpp is retired (unsupported since Sep 2023)");
  }
  throw UnsupportedCombination(combo, "unknown SYCL implementation");
}

}  // namespace

std::string_view to_string(Implementation i) noexcept {
  switch (i) {
    case Implementation::DPCpp:
      return "DPC++";
    case Implementation::OpenSYCL:
      return "Open SYCL";
    case Implementation::ComputeCpp:
      return "ComputeCpp";
  }
  return "?";
}

queue::queue(Vendor vendor, Implementation impl)
    : vendor_(vendor), impl_(impl) {
  const gpusim::BackendProfile profile = profile_for(vendor, impl);
  device_ = &gpusim::Platform::instance().device(vendor);
  queue_ = device_->create_queue();
  queue_->set_backend_profile(profile);
}

event queue::memcpy(void* dst, const void* src, std::size_t bytes) {
  const bool dst_dev = device_->is_device_pointer(dst);
  const bool src_dev = device_->is_device_pointer(src);
  if (dst_dev && src_dev) {
    return event(
        queue_->memcpy(dst, src, bytes, gpusim::CopyKind::DeviceToDevice));
  }
  if (dst_dev) {
    return event(
        queue_->memcpy(dst, src, bytes, gpusim::CopyKind::HostToDevice));
  }
  if (src_dev) {
    return event(
        queue_->memcpy(dst, src, bytes, gpusim::CopyKind::DeviceToHost));
  }
  std::memcpy(dst, src, bytes);  // host-to-host, permitted by SYCL USM
  return event{};
}

}  // namespace mcmm::syclx
