#pragma once
// cublasx: a cuBLAS-style library embedding on top of the cudax runtime
// (paper item 1: "the toolkit covers ... libraries"). Handle-based,
// error-code API over device pointers; the subset implemented is the one
// the paper's item 3 names for the HIP interface story (axpy, dot, gemm).

#include <cstddef>

#include "models/cudax/cudax.hpp"

namespace mcmm::cudax {

enum class cublasStatus_t {
  CUBLAS_STATUS_SUCCESS = 0,
  CUBLAS_STATUS_NOT_INITIALIZED,
  CUBLAS_STATUS_INVALID_VALUE,
  CUBLAS_STATUS_EXECUTION_FAILED,
};

struct cublasContext;
using cublasHandle_t = cublasContext*;

cublasStatus_t cublasCreate(cublasHandle_t* handle) noexcept;
cublasStatus_t cublasDestroy(cublasHandle_t handle) noexcept;
cublasStatus_t cublasSetStream(cublasHandle_t handle,
                               cudaStream_t stream) noexcept;

/// y = alpha * x + y (single precision).
cublasStatus_t cublasSaxpy(cublasHandle_t handle, int n, const float* alpha,
                           const float* x, int incx, float* y,
                           int incy) noexcept;
/// y = alpha * x + y (double precision).
cublasStatus_t cublasDaxpy(cublasHandle_t handle, int n, const double* alpha,
                           const double* x, int incx, double* y,
                           int incy) noexcept;

/// result = x . y (dot product, double precision).
cublasStatus_t cublasDdot(cublasHandle_t handle, int n, const double* x,
                          int incx, const double* y, int incy,
                          double* result) noexcept;

/// C = alpha * A * B + beta * C, all column-major m x k, k x n, m x n
/// (no transposes — the subset the examples need).
cublasStatus_t cublasDgemm(cublasHandle_t handle, int m, int n, int k,
                           const double* alpha, const double* A, int lda,
                           const double* B, int ldb, const double* beta,
                           double* C, int ldc) noexcept;

}  // namespace mcmm::cudax
