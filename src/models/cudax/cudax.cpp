#include "models/cudax/cudax.hpp"

#include "models/profiles.hpp"

namespace mcmm::cudax {
namespace {

/// The CUDA runtime drives the simulated NVIDIA device with the native
/// profile.
gpusim::Device& nvidia_device() {
  gpusim::Device& dev = gpusim::Platform::instance().device(Vendor::NVIDIA);
  return dev;
}

thread_local int g_current_device = 0;

}  // namespace

const char* cudaGetErrorString(cudaError_t err) noexcept {
  switch (err) {
    case cudaError_t::cudaSuccess:
      return "no error";
    case cudaError_t::cudaErrorMemoryAllocation:
      return "out of memory";
    case cudaError_t::cudaErrorInvalidValue:
      return "invalid argument";
    case cudaError_t::cudaErrorInvalidDevice:
      return "invalid device ordinal";
    case cudaError_t::cudaErrorInvalidDevicePointer:
      return "invalid device pointer";
    case cudaError_t::cudaErrorInvalidConfiguration:
      return "invalid configuration argument";
    case cudaError_t::cudaErrorUnknown:
      return "unknown error";
  }
  return "unrecognized error code";
}

cudaError_t cudaGetDeviceCount(int* count) noexcept {
  if (count == nullptr) return cudaError_t::cudaErrorInvalidValue;
  *count = 1;
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaSetDevice(int device) noexcept {
  if (device != 0) return cudaError_t::cudaErrorInvalidDevice;
  g_current_device = device;
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaGetDevice(int* device) noexcept {
  if (device == nullptr) return cudaError_t::cudaErrorInvalidValue;
  *device = g_current_device;
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaDeviceSynchronize() noexcept {
  nvidia_device().default_queue().synchronize();
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaMalloc(void** ptr, std::size_t bytes) noexcept {
  if (ptr == nullptr) return cudaError_t::cudaErrorInvalidValue;
  try {
    *ptr = nvidia_device().allocate(bytes);
    return cudaError_t::cudaSuccess;
  } catch (const gpusim::OutOfMemory&) {
    *ptr = nullptr;
    return cudaError_t::cudaErrorMemoryAllocation;
  }
}

cudaError_t cudaFree(void* ptr) noexcept {
  if (ptr == nullptr) return cudaError_t::cudaSuccess;  // CUDA allows this
  try {
    nvidia_device().deallocate(ptr);
    return cudaError_t::cudaSuccess;
  } catch (const gpusim::InvalidPointer&) {
    return cudaError_t::cudaErrorInvalidDevicePointer;
  }
}

namespace {

cudaError_t do_memcpy(gpusim::Queue& q, void* dst, const void* src,
                      std::size_t bytes, cudaMemcpyKind kind) noexcept {
  try {
    switch (kind) {
      case cudaMemcpyHostToDevice:
        q.memcpy(dst, src, bytes, gpusim::CopyKind::HostToDevice);
        break;
      case cudaMemcpyDeviceToHost:
        q.memcpy(dst, src, bytes, gpusim::CopyKind::DeviceToHost);
        break;
      case cudaMemcpyDeviceToDevice:
        q.memcpy(dst, src, bytes, gpusim::CopyKind::DeviceToDevice);
        break;
    }
    return cudaError_t::cudaSuccess;
  } catch (const gpusim::InvalidPointer&) {
    return cudaError_t::cudaErrorInvalidDevicePointer;
  } catch (const gpusim::SimError&) {
    return cudaError_t::cudaErrorUnknown;
  }
}

}  // namespace

cudaError_t cudaMemcpy(void* dst, const void* src, std::size_t bytes,
                       cudaMemcpyKind kind) noexcept {
  return do_memcpy(nvidia_device().default_queue(), dst, src, bytes, kind);
}

cudaError_t cudaMemcpyAsync(void* dst, const void* src, std::size_t bytes,
                            cudaMemcpyKind kind,
                            cudaStream_t stream) noexcept {
  return do_memcpy(queue_of(stream), dst, src, bytes, kind);
}

cudaError_t cudaMemset(void* dst, int value, std::size_t bytes) noexcept {
  try {
    nvidia_device().default_queue().memset(dst, value, bytes);
    return cudaError_t::cudaSuccess;
  } catch (const gpusim::InvalidPointer&) {
    return cudaError_t::cudaErrorInvalidDevicePointer;
  }
}

cudaError_t cudaStreamCreate(cudaStream_t* stream) noexcept {
  if (stream == nullptr) return cudaError_t::cudaErrorInvalidValue;
  *stream = nvidia_device().create_queue().release();
  (*stream)->set_backend_profile(models::native_profile("CUDA"));
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaStreamDestroy(cudaStream_t stream) noexcept {
  if (stream == nullptr) return cudaError_t::cudaErrorInvalidValue;
  delete stream;
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaStreamSynchronize(cudaStream_t stream) noexcept {
  queue_of(stream).synchronize();
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaEventCreate(cudaEvent_t* event) noexcept {
  if (event == nullptr) return cudaError_t::cudaErrorInvalidValue;
  *event = new cudaEvent_impl{};
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaEventDestroy(cudaEvent_t event) noexcept {
  if (event == nullptr) return cudaError_t::cudaErrorInvalidValue;
  delete event;
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaEventRecord(cudaEvent_t event, cudaStream_t stream) noexcept {
  if (event == nullptr) return cudaError_t::cudaErrorInvalidValue;
  event->event = queue_of(stream).record();
  event->recorded = true;
  return cudaError_t::cudaSuccess;
}

cudaError_t cudaEventElapsedTime(float* ms, cudaEvent_t start,
                                 cudaEvent_t stop) noexcept {
  if (ms == nullptr || start == nullptr || stop == nullptr ||
      !start->recorded || !stop->recorded) {
    return cudaError_t::cudaErrorInvalidValue;
  }
  *ms = static_cast<float>(
      (stop->event.sim_begin_us - start->event.sim_begin_us) / 1000.0);
  return cudaError_t::cudaSuccess;
}

gpusim::Device& current_device() { return nvidia_device(); }

gpusim::Queue& queue_of(cudaStream_t stream) {
  if (stream != nullptr) return *stream;
  gpusim::Queue& q = nvidia_device().default_queue();
  // The default stream always runs the native CUDA profile.
  if (q.backend_profile().label != "CUDA") {
    q.set_backend_profile(models::native_profile("CUDA"));
  }
  return q;
}

}  // namespace mcmm::cudax
