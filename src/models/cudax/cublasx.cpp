#include "models/cudax/cublasx.hpp"

#include <set>

namespace mcmm::cudax {

/// A cuBLAS handle: the stream its kernels are enqueued on.
struct cublasContext {
  cudaStream_t stream{nullptr};
};

namespace {

std::set<cublasContext*>& live_handles() {
  static std::set<cublasContext*> handles;
  return handles;
}

[[nodiscard]] bool valid(cublasHandle_t h) {
  return h != nullptr && live_handles().contains(h);
}

[[nodiscard]] gpusim::KernelCosts axpy_costs(int n, std::size_t elem) {
  gpusim::KernelCosts c;
  c.bytes_read = 2.0 * n * elem;
  c.bytes_written = 1.0 * n * elem;
  c.flops = 2.0 * n;
  return c;
}

}  // namespace

cublasStatus_t cublasCreate(cublasHandle_t* handle) noexcept {
  if (handle == nullptr) return cublasStatus_t::CUBLAS_STATUS_INVALID_VALUE;
  auto* ctx = new cublasContext{};
  live_handles().insert(ctx);
  *handle = ctx;
  return cublasStatus_t::CUBLAS_STATUS_SUCCESS;
}

cublasStatus_t cublasDestroy(cublasHandle_t handle) noexcept {
  if (!valid(handle)) return cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED;
  live_handles().erase(handle);
  delete handle;
  return cublasStatus_t::CUBLAS_STATUS_SUCCESS;
}

cublasStatus_t cublasSetStream(cublasHandle_t handle,
                               cudaStream_t stream) noexcept {
  if (!valid(handle)) return cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED;
  handle->stream = stream;
  return cublasStatus_t::CUBLAS_STATUS_SUCCESS;
}

namespace {

template <typename T>
cublasStatus_t axpy(cublasHandle_t handle, int n, const T* alpha, const T* x,
                    int incx, T* y, int incy) {
  if (!valid(handle)) return cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED;
  if (n < 0 || alpha == nullptr || incx == 0 || incy == 0) {
    return cublasStatus_t::CUBLAS_STATUS_INVALID_VALUE;
  }
  const T a = *alpha;
  const dim3 block{256, 1, 1};
  const dim3 grid{static_cast<std::uint32_t>((n + 255) / 256), 1, 1};
  const cudaError_t err = cudaLaunch(
      grid, block, axpy_costs(n, sizeof(T)), handle->stream,
      [a, x, incx, y, incy, n](const KernelCtx& ctx) {
        const std::size_t i = ctx.global_x();
        if (i < static_cast<std::size_t>(n)) {
          y[i * incy] = a * x[i * incx] + y[i * incy];
        }
      });
  return err == cudaError_t::cudaSuccess
             ? cublasStatus_t::CUBLAS_STATUS_SUCCESS
             : cublasStatus_t::CUBLAS_STATUS_EXECUTION_FAILED;
}

}  // namespace

cublasStatus_t cublasSaxpy(cublasHandle_t handle, int n, const float* alpha,
                           const float* x, int incx, float* y,
                           int incy) noexcept {
  return axpy(handle, n, alpha, x, incx, y, incy);
}

cublasStatus_t cublasDaxpy(cublasHandle_t handle, int n, const double* alpha,
                           const double* x, int incx, double* y,
                           int incy) noexcept {
  return axpy(handle, n, alpha, x, incx, y, incy);
}

cublasStatus_t cublasDdot(cublasHandle_t handle, int n, const double* x,
                          int incx, const double* y, int incy,
                          double* result) noexcept {
  if (!valid(handle)) return cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED;
  if (n < 0 || result == nullptr || incx == 0 || incy == 0) {
    return cublasStatus_t::CUBLAS_STATUS_INVALID_VALUE;
  }
  constexpr std::uint32_t kChunks = 64;
  double partials[kChunks] = {};
  const std::size_t chunk =
      (static_cast<std::size_t>(n) + kChunks - 1) / kChunks;
  gpusim::KernelCosts costs;
  costs.bytes_read = 2.0 * n * sizeof(double);
  costs.flops = 2.0 * n;
  const cudaError_t err = cudaLaunch(
      dim3{kChunks, 1, 1}, dim3{1, 1, 1}, costs, handle->stream,
      [x, incx, y, incy, n, chunk, &partials](const KernelCtx& ctx) {
        const std::size_t c = ctx.global_x();
        if (c >= kChunks) return;
        const std::size_t begin = c * chunk;
        const std::size_t end =
            std::min(static_cast<std::size_t>(n), begin + chunk);
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          acc += x[i * incx] * y[i * incy];
        }
        partials[c] = acc;
      });
  if (err != cudaError_t::cudaSuccess) {
    return cublasStatus_t::CUBLAS_STATUS_EXECUTION_FAILED;
  }
  double sum = 0.0;
  for (const double p : partials) sum += p;
  *result = sum;
  return cublasStatus_t::CUBLAS_STATUS_SUCCESS;
}

cublasStatus_t cublasDgemm(cublasHandle_t handle, int m, int n, int k,
                           const double* alpha, const double* A, int lda,
                           const double* B, int ldb, const double* beta,
                           double* C, int ldc) noexcept {
  if (!valid(handle)) return cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED;
  if (m < 0 || n < 0 || k < 0 || alpha == nullptr || beta == nullptr ||
      lda < m || ldb < k || ldc < m) {
    return cublasStatus_t::CUBLAS_STATUS_INVALID_VALUE;
  }
  const double a = *alpha;
  const double b = *beta;
  gpusim::KernelCosts costs;
  costs.bytes_read =
      (static_cast<double>(m) * k + static_cast<double>(k) * n +
       static_cast<double>(m) * n) *
      sizeof(double);
  costs.bytes_written = static_cast<double>(m) * n * sizeof(double);
  costs.flops = 2.0 * m * n * k;
  const std::size_t total = static_cast<std::size_t>(m) * n;
  const dim3 block{256, 1, 1};
  const dim3 grid{static_cast<std::uint32_t>((total + 255) / 256), 1, 1};
  const cudaError_t err = cudaLaunch(
      grid, block, costs, handle->stream,
      [=](const KernelCtx& ctx) {
        const std::size_t idx = ctx.global_x();
        if (idx >= total) return;
        const std::size_t col = idx / m;  // column-major
        const std::size_t row = idx % m;
        double acc = 0.0;
        for (int kk = 0; kk < k; ++kk) {
          acc += A[row + static_cast<std::size_t>(kk) * lda] *
                 B[kk + col * ldb];
        }
        C[row + col * ldc] = a * acc + b * C[row + col * ldc];
      });
  return err == cudaError_t::cudaSuccess
             ? cublasStatus_t::CUBLAS_STATUS_SUCCESS
             : cublasStatus_t::CUBLAS_STATUS_EXECUTION_FAILED;
}

}  // namespace mcmm::cudax
