#pragma once
// cudax: a CUDA-runtime-style API embedding over the simulated NVIDIA
// device (paper Sec. 4, item 1). Mirrors the error-code discipline, naming,
// and launch semantics of the CUDA runtime API; the `<<<>>>` launch syntax
// is replaced by cudaLaunch(grid, block, costs, kernel) — the one seam the
// simulation needs (kernels declare their traffic for the timing model).

#include <cstddef>
#include <string>
#include <tuple>
#include <type_traits>

#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim3.hpp"

namespace mcmm::cudax {

enum class cudaError_t {
  cudaSuccess = 0,
  cudaErrorMemoryAllocation,
  cudaErrorInvalidValue,
  cudaErrorInvalidDevice,
  cudaErrorInvalidDevicePointer,
  cudaErrorInvalidConfiguration,
  cudaErrorUnknown,
};

using dim3 = gpusim::Dim3;

enum cudaMemcpyKind {
  cudaMemcpyHostToDevice,
  cudaMemcpyDeviceToHost,
  cudaMemcpyDeviceToDevice,
};

/// Streams are simulated queues; the default stream (nullptr) is the
/// device's default queue.
using cudaStream_t = gpusim::Queue*;

/// Events capture positions on a stream's simulated timeline.
struct cudaEvent_impl {
  gpusim::Event event{};
  bool recorded{false};
};
using cudaEvent_t = cudaEvent_impl*;

/// Kernel bodies receive the CUDA built-in coordinates via this context.
struct KernelCtx {
  dim3 threadIdx;
  dim3 blockIdx;
  dim3 blockDim;
  dim3 gridDim;

  [[nodiscard]] std::size_t global_x() const noexcept {
    return static_cast<std::size_t>(blockIdx.x) * blockDim.x + threadIdx.x;
  }
};

[[nodiscard]] const char* cudaGetErrorString(cudaError_t err) noexcept;

/// Device management. The simulated platform exposes exactly one NVIDIA
/// device (ordinal 0).
cudaError_t cudaGetDeviceCount(int* count) noexcept;
cudaError_t cudaSetDevice(int device) noexcept;
cudaError_t cudaGetDevice(int* device) noexcept;
cudaError_t cudaDeviceSynchronize() noexcept;

/// Memory management.
cudaError_t cudaMalloc(void** ptr, std::size_t bytes) noexcept;
cudaError_t cudaFree(void* ptr) noexcept;
cudaError_t cudaMemcpy(void* dst, const void* src, std::size_t bytes,
                       cudaMemcpyKind kind) noexcept;
cudaError_t cudaMemcpyAsync(void* dst, const void* src, std::size_t bytes,
                            cudaMemcpyKind kind, cudaStream_t stream) noexcept;
cudaError_t cudaMemset(void* dst, int value, std::size_t bytes) noexcept;

/// Streams and events.
cudaError_t cudaStreamCreate(cudaStream_t* stream) noexcept;
cudaError_t cudaStreamDestroy(cudaStream_t stream) noexcept;
cudaError_t cudaStreamSynchronize(cudaStream_t stream) noexcept;
cudaError_t cudaEventCreate(cudaEvent_t* event) noexcept;
cudaError_t cudaEventDestroy(cudaEvent_t event) noexcept;
cudaError_t cudaEventRecord(cudaEvent_t event, cudaStream_t stream) noexcept;
/// Simulated milliseconds between two recorded events.
cudaError_t cudaEventElapsedTime(float* ms, cudaEvent_t start,
                                 cudaEvent_t stop) noexcept;

/// Internal: the simulated device behind the CUDA runtime, and the queue a
/// stream handle denotes. Exposed for layered models (HIP's CUDA backend,
/// Kokkos' CUDA execution space) — mirroring how real stacks share the CUDA
/// context.
[[nodiscard]] gpusim::Device& current_device();
[[nodiscard]] gpusim::Queue& queue_of(cudaStream_t stream);

/// Kernel launch, replacing `kernel<<<grid, block, 0, stream>>>(args...)`.
/// `kernel` is a callable `void(const KernelCtx&, Args...)`.
template <typename Kernel, typename... Args>
cudaError_t cudaLaunch(dim3 grid, dim3 block, const gpusim::KernelCosts& costs,
                       cudaStream_t stream, Kernel&& kernel,
                       Args&&... args) noexcept {
  try {
    gpusim::LaunchConfig cfg{grid, block};
    queue_of(stream).launch(cfg, costs, [&](const gpusim::WorkItem& item) {
      KernelCtx ctx{item.thread_idx, item.block_idx, item.block_dim,
                    item.grid_dim};
      kernel(ctx, args...);
    });
    return cudaError_t::cudaSuccess;
  } catch (const gpusim::InvalidLaunch&) {
    return cudaError_t::cudaErrorInvalidConfiguration;
  } catch (const gpusim::SimError&) {
    return cudaError_t::cudaErrorUnknown;
  }
}

namespace detail {
/// Guards the convenience overload against swallowing the explicit-costs
/// call (first variadic argument being KernelCosts means the caller meant
/// the full overload).
template <typename... Args>
inline constexpr bool first_arg_is_costs = [] {
  if constexpr (sizeof...(Args) == 0) {
    return false;
  } else {
    return std::is_same_v<
        std::remove_cvref_t<std::tuple_element_t<0, std::tuple<Args...>>>,
        gpusim::KernelCosts>;
  }
}();
}  // namespace detail

/// Default-stream, default-costs convenience overload. The constraint
/// keeps the explicit-costs call (whose 3rd argument is KernelCosts) from
/// recursively matching this overload.
template <typename Kernel, typename... Args>
  requires(!std::is_same_v<std::remove_cvref_t<Kernel>, gpusim::KernelCosts>)
cudaError_t cudaLaunch(dim3 grid, dim3 block, Kernel&& kernel,
                       Args&&... args) noexcept {
  return cudaLaunch(grid, block, gpusim::KernelCosts{},
                    static_cast<cudaStream_t>(nullptr),
                    std::forward<Kernel>(kernel),
                    std::forward<Args>(args)...);
}

}  // namespace mcmm::cudax
