#include "models/hipx/hipx.hpp"

#include <atomic>

#include "models/profiles.hpp"

namespace mcmm::hipx {
namespace {

std::atomic<Platform> g_platform{Platform::amd};
std::atomic<bool> g_chipstar_enabled{false};

gpusim::Device& amd_device() {
  return gpusim::Platform::instance().device(Vendor::AMD);
}

gpusim::Device& intel_device() {
  return gpusim::Platform::instance().device(Vendor::Intel);
}

/// The device behind the non-NVIDIA platforms.
gpusim::Device& local_device() {
  return g_platform.load() == Platform::intel_chipstar ? intel_device()
                                                       : amd_device();
}

/// True when the chipStar route is selected but not opted into.
[[nodiscard]] bool chipstar_blocked() {
  return g_platform.load() == Platform::intel_chipstar &&
         !g_chipstar_enabled.load();
}

[[nodiscard]] gpusim::BackendProfile local_profile() {
  if (g_platform.load() == Platform::intel_chipstar) {
    // Item 33: HIP mapped to OpenCL / Level Zero; young, experimental.
    return models::experimental_profile("chipStar");
  }
  return models::native_profile("HIP");
}

[[nodiscard]] const char* local_profile_label() {
  return g_platform.load() == Platform::intel_chipstar ? "chipStar" : "HIP";
}

[[nodiscard]] hipError_t from_cuda(cudax::cudaError_t err) noexcept {
  switch (err) {
    case cudax::cudaError_t::cudaSuccess:
      return hipError_t::hipSuccess;
    case cudax::cudaError_t::cudaErrorMemoryAllocation:
      return hipError_t::hipErrorOutOfMemory;
    case cudax::cudaError_t::cudaErrorInvalidValue:
      return hipError_t::hipErrorInvalidValue;
    case cudax::cudaError_t::cudaErrorInvalidDevice:
      return hipError_t::hipErrorInvalidDevice;
    case cudax::cudaError_t::cudaErrorInvalidDevicePointer:
      return hipError_t::hipErrorInvalidDevicePointer;
    case cudax::cudaError_t::cudaErrorInvalidConfiguration:
      return hipError_t::hipErrorInvalidConfiguration;
    case cudax::cudaError_t::cudaErrorUnknown:
      return hipError_t::hipErrorUnknown;
  }
  return hipError_t::hipErrorUnknown;
}

}  // namespace

void set_platform(Platform p) noexcept { g_platform.store(p); }
Platform platform() noexcept { return g_platform.load(); }

void enable_experimental_chipstar(bool enabled) noexcept {
  g_chipstar_enabled.store(enabled);
}
bool chipstar_enabled() noexcept { return g_chipstar_enabled.load(); }

const char* hipGetErrorString(hipError_t err) noexcept {
  switch (err) {
    case hipError_t::hipSuccess:
      return "no error";
    case hipError_t::hipErrorOutOfMemory:
      return "out of memory";
    case hipError_t::hipErrorInvalidValue:
      return "invalid argument";
    case hipError_t::hipErrorInvalidDevice:
      return "invalid device ordinal";
    case hipError_t::hipErrorInvalidDevicePointer:
      return "invalid device pointer";
    case hipError_t::hipErrorInvalidConfiguration:
      return "invalid configuration";
    case hipError_t::hipErrorUnknown:
      return "unknown error";
  }
  return "unrecognized error code";
}

hipError_t hipGetDeviceCount(int* count) noexcept {
  if (platform() == Platform::nvidia) {
    return from_cuda(cudax::cudaGetDeviceCount(count));
  }
  if (count == nullptr) return hipError_t::hipErrorInvalidValue;
  if (chipstar_blocked()) {
    *count = 0;  // chipStar absent: no HIP devices visible on Intel
    return hipError_t::hipSuccess;
  }
  *count = 1;
  return hipError_t::hipSuccess;
}

hipError_t hipSetDevice(int device) noexcept {
  if (platform() == Platform::nvidia) {
    return from_cuda(cudax::cudaSetDevice(device));
  }
  if (chipstar_blocked()) return hipError_t::hipErrorInvalidDevice;
  return device == 0 ? hipError_t::hipSuccess
                     : hipError_t::hipErrorInvalidDevice;
}

hipError_t hipDeviceSynchronize() noexcept {
  if (platform() == Platform::nvidia) {
    return from_cuda(cudax::cudaDeviceSynchronize());
  }
  if (chipstar_blocked()) return hipError_t::hipErrorInvalidDevice;
  local_device().default_queue().synchronize();
  return hipError_t::hipSuccess;
}

hipError_t hipMalloc(void** ptr, std::size_t bytes) noexcept {
  if (platform() == Platform::nvidia) {
    return from_cuda(cudax::cudaMalloc(ptr, bytes));
  }
  if (ptr == nullptr) return hipError_t::hipErrorInvalidValue;
  if (chipstar_blocked()) {
    *ptr = nullptr;
    return hipError_t::hipErrorInvalidDevice;
  }
  try {
    *ptr = local_device().allocate(bytes);
    return hipError_t::hipSuccess;
  } catch (const gpusim::OutOfMemory&) {
    *ptr = nullptr;
    return hipError_t::hipErrorOutOfMemory;
  }
}

hipError_t hipFree(void* ptr) noexcept {
  if (platform() == Platform::nvidia) {
    return from_cuda(cudax::cudaFree(ptr));
  }
  if (ptr == nullptr) return hipError_t::hipSuccess;
  if (chipstar_blocked()) return hipError_t::hipErrorInvalidDevice;
  try {
    local_device().deallocate(ptr);
    return hipError_t::hipSuccess;
  } catch (const gpusim::InvalidPointer&) {
    return hipError_t::hipErrorInvalidDevicePointer;
  }
}

hipError_t hipMemcpy(void* dst, const void* src, std::size_t bytes,
                     hipMemcpyKind kind) noexcept {
  if (platform() == Platform::nvidia) {
    return from_cuda(cudax::cudaMemcpy(
        dst, src, bytes, static_cast<cudax::cudaMemcpyKind>(kind)));
  }
  if (chipstar_blocked()) return hipError_t::hipErrorInvalidDevice;
  try {
    gpusim::Queue& q = local_device().default_queue();
    switch (kind) {
      case hipMemcpyHostToDevice:
        q.memcpy(dst, src, bytes, gpusim::CopyKind::HostToDevice);
        break;
      case hipMemcpyDeviceToHost:
        q.memcpy(dst, src, bytes, gpusim::CopyKind::DeviceToHost);
        break;
      case hipMemcpyDeviceToDevice:
        q.memcpy(dst, src, bytes, gpusim::CopyKind::DeviceToDevice);
        break;
    }
    return hipError_t::hipSuccess;
  } catch (const gpusim::InvalidPointer&) {
    return hipError_t::hipErrorInvalidDevicePointer;
  } catch (const gpusim::SimError&) {
    return hipError_t::hipErrorUnknown;
  }
}

hipError_t hipMemset(void* dst, int value, std::size_t bytes) noexcept {
  if (platform() == Platform::nvidia) {
    return from_cuda(cudax::cudaMemset(dst, value, bytes));
  }
  if (chipstar_blocked()) return hipError_t::hipErrorInvalidDevice;
  try {
    local_device().default_queue().memset(dst, value, bytes);
    return hipError_t::hipSuccess;
  } catch (const gpusim::InvalidPointer&) {
    return hipError_t::hipErrorInvalidDevicePointer;
  }
}

hipError_t hipStreamCreate(hipStream_t* stream) noexcept {
  if (stream == nullptr) return hipError_t::hipErrorInvalidValue;
  if (platform() == Platform::nvidia) {
    cudax::cudaStream_t s = nullptr;
    const hipError_t err = from_cuda(cudax::cudaStreamCreate(&s));
    if (err != hipError_t::hipSuccess) return err;
    // HIP's CUDA backend is a thin layer over the CUDA runtime.
    s->set_backend_profile(models::layered_profile("HIP-on-CUDA"));
    *stream = s;
    return hipError_t::hipSuccess;
  }
  if (chipstar_blocked()) {
    *stream = nullptr;
    return hipError_t::hipErrorInvalidDevice;
  }
  *stream = local_device().create_queue().release();
  (*stream)->set_backend_profile(local_profile());
  return hipError_t::hipSuccess;
}

hipError_t hipStreamDestroy(hipStream_t stream) noexcept {
  if (stream == nullptr) return hipError_t::hipErrorInvalidValue;
  delete stream;
  return hipError_t::hipSuccess;
}

hipError_t hipStreamSynchronize(hipStream_t stream) noexcept {
  if (stream == nullptr && chipstar_blocked()) {
    return hipError_t::hipErrorInvalidDevice;
  }
  queue_of(stream).synchronize();
  return hipError_t::hipSuccess;
}

gpusim::Device& current_device() {
  if (platform() == Platform::nvidia) return cudax::current_device();
  return local_device();
}

gpusim::Queue& queue_of(hipStream_t stream) {
  if (stream != nullptr) return *stream;
  if (platform() == Platform::nvidia) {
    return cudax::queue_of(nullptr);
  }
  gpusim::Queue& q = local_device().default_queue();
  if (q.backend_profile().label != local_profile_label()) {
    q.set_backend_profile(local_profile());
  }
  return q;
}

}  // namespace mcmm::hipx
