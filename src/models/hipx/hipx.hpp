#pragma once
// hipx: a HIP-style API embedding (paper Sec. 4, items 3 and 20). HIP is
// CUDA-shaped by design; this embedding mirrors that: identical call
// surface with hip- prefixes, plus the platform switch HIP_PLATFORM —
// `amd` drives the simulated AMD device natively, `nvidia` lowers every
// call onto the cudax runtime exactly like real HIP's CUDA backend.

#include <cstddef>

#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"
#include "gpusim/dim3.hpp"
#include "models/cudax/cudax.hpp"

namespace mcmm::hipx {

enum class hipError_t {
  hipSuccess = 0,
  hipErrorOutOfMemory,
  hipErrorInvalidValue,
  hipErrorInvalidDevice,
  hipErrorInvalidDevicePointer,
  hipErrorInvalidConfiguration,
  hipErrorUnknown,
};

using dim3 = gpusim::Dim3;
using KernelCtx = cudax::KernelCtx;  // kernel syntax is identical to CUDA

enum hipMemcpyKind {
  hipMemcpyHostToDevice,
  hipMemcpyDeviceToHost,
  hipMemcpyDeviceToDevice,
};

using hipStream_t = gpusim::Queue*;

/// The HIP_PLATFORM environment switch (paper: HIP_PLATFORM=amd|nvidia),
/// extended with the chipStar route to Intel GPUs (item 33: HIP mapped to
/// OpenCL / Level Zero; 'limited support', community, experimental).
enum class Platform { amd, nvidia, intel_chipstar };

/// Selects the platform for subsequent HIP calls (process-wide, like the
/// environment variable). Default: amd.
void set_platform(Platform p) noexcept;
[[nodiscard]] Platform platform() noexcept;

/// Opt-in gate for the chipStar route, mirroring its
/// not-production-grade status. Without it, HIP calls on the
/// intel_chipstar platform fail with hipErrorInvalidDevice.
void enable_experimental_chipstar(bool enabled) noexcept;
[[nodiscard]] bool chipstar_enabled() noexcept;

[[nodiscard]] const char* hipGetErrorString(hipError_t err) noexcept;

hipError_t hipGetDeviceCount(int* count) noexcept;
hipError_t hipSetDevice(int device) noexcept;
hipError_t hipDeviceSynchronize() noexcept;

hipError_t hipMalloc(void** ptr, std::size_t bytes) noexcept;
hipError_t hipFree(void* ptr) noexcept;
hipError_t hipMemcpy(void* dst, const void* src, std::size_t bytes,
                     hipMemcpyKind kind) noexcept;
hipError_t hipMemset(void* dst, int value, std::size_t bytes) noexcept;

hipError_t hipStreamCreate(hipStream_t* stream) noexcept;
hipError_t hipStreamDestroy(hipStream_t stream) noexcept;
hipError_t hipStreamSynchronize(hipStream_t stream) noexcept;

/// Internal: device and queue behind the current platform (for layered
/// models: Kokkos' HIP backend, Open SYCL's ROCm path, ...).
[[nodiscard]] gpusim::Device& current_device();
[[nodiscard]] gpusim::Queue& queue_of(hipStream_t stream);

/// Kernel launch, replacing `hipLaunchKernelGGL(kernel, grid, block, ...)`.
template <typename Kernel, typename... Args>
hipError_t hipLaunchKernelGGL(Kernel&& kernel, dim3 grid, dim3 block,
                              const gpusim::KernelCosts& costs,
                              hipStream_t stream, Args&&... args) noexcept {
  try {
    gpusim::LaunchConfig cfg{grid, block};
    queue_of(stream).launch(cfg, costs, [&](const gpusim::WorkItem& item) {
      KernelCtx ctx{item.thread_idx, item.block_idx, item.block_dim,
                    item.grid_dim};
      kernel(ctx, args...);
    });
    return hipError_t::hipSuccess;
  } catch (const gpusim::InvalidLaunch&) {
    return hipError_t::hipErrorInvalidConfiguration;
  } catch (const gpusim::SimError&) {
    return hipError_t::hipErrorUnknown;
  }
}

/// Default-stream, default-costs convenience overload.
template <typename Kernel, typename... Args>
  requires(!cudax::detail::first_arg_is_costs<Args...>)
hipError_t hipLaunchKernelGGL(Kernel&& kernel, dim3 grid, dim3 block,
                              Args&&... args) noexcept {
  return hipLaunchKernelGGL(std::forward<Kernel>(kernel), grid, block,
                            gpusim::KernelCosts{},
                            static_cast<hipStream_t>(nullptr),
                            std::forward<Args>(args)...);
}

}  // namespace mcmm::hipx
