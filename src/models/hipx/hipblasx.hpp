#pragma once
// hipblasx: the hipBLAS-style interface layer (paper item 3: "HIP also
// supports some CUDA libraries and creates interfaces to them, like
// hipblasSaxpy() instead of cublasSaxpy()"). On the amd platform the
// kernels run natively; on the nvidia platform calls delegate to cublasx,
// exactly like real hipBLAS wraps cuBLAS.

#include "models/cudax/cublasx.hpp"
#include "models/hipx/hipx.hpp"

namespace mcmm::hipx {

enum class hipblasStatus_t {
  HIPBLAS_STATUS_SUCCESS = 0,
  HIPBLAS_STATUS_NOT_INITIALIZED,
  HIPBLAS_STATUS_INVALID_VALUE,
  HIPBLAS_STATUS_EXECUTION_FAILED,
};

struct hipblasContext;
using hipblasHandle_t = hipblasContext*;

hipblasStatus_t hipblasCreate(hipblasHandle_t* handle) noexcept;
hipblasStatus_t hipblasDestroy(hipblasHandle_t handle) noexcept;

hipblasStatus_t hipblasSaxpy(hipblasHandle_t handle, int n,
                             const float* alpha, const float* x, int incx,
                             float* y, int incy) noexcept;
hipblasStatus_t hipblasDaxpy(hipblasHandle_t handle, int n,
                             const double* alpha, const double* x, int incx,
                             double* y, int incy) noexcept;
hipblasStatus_t hipblasDdot(hipblasHandle_t handle, int n, const double* x,
                            int incx, const double* y, int incy,
                            double* result) noexcept;
hipblasStatus_t hipblasDgemm(hipblasHandle_t handle, int m, int n, int k,
                             const double* alpha, const double* A, int lda,
                             const double* B, int ldb, const double* beta,
                             double* C, int ldc) noexcept;

/// True when this handle delegates to cuBLAS (the nvidia-platform route).
[[nodiscard]] bool hipblas_uses_cublas_backend(hipblasHandle_t h) noexcept;

}  // namespace mcmm::hipx
