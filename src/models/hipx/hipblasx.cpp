#include "models/hipx/hipblasx.hpp"

#include <set>

#include "models/profiles.hpp"

namespace mcmm::hipx {

/// A hipBLAS handle. On the nvidia platform it owns a cuBLAS handle and
/// delegates; on the amd platform it owns a native HIP stream.
struct hipblasContext {
  Platform platform{Platform::amd};
  cudax::cublasHandle_t cublas{nullptr};  // nvidia route
  hipStream_t stream{nullptr};            // amd route
};

namespace {

std::set<hipblasContext*>& live_handles() {
  static std::set<hipblasContext*> handles;
  return handles;
}

[[nodiscard]] bool valid(hipblasHandle_t h) {
  return h != nullptr && live_handles().contains(h);
}

[[nodiscard]] hipblasStatus_t from_cublas(cudax::cublasStatus_t s) {
  switch (s) {
    case cudax::cublasStatus_t::CUBLAS_STATUS_SUCCESS:
      return hipblasStatus_t::HIPBLAS_STATUS_SUCCESS;
    case cudax::cublasStatus_t::CUBLAS_STATUS_NOT_INITIALIZED:
      return hipblasStatus_t::HIPBLAS_STATUS_NOT_INITIALIZED;
    case cudax::cublasStatus_t::CUBLAS_STATUS_INVALID_VALUE:
      return hipblasStatus_t::HIPBLAS_STATUS_INVALID_VALUE;
    case cudax::cublasStatus_t::CUBLAS_STATUS_EXECUTION_FAILED:
      return hipblasStatus_t::HIPBLAS_STATUS_EXECUTION_FAILED;
  }
  return hipblasStatus_t::HIPBLAS_STATUS_EXECUTION_FAILED;
}

template <typename T>
hipblasStatus_t native_axpy(hipblasContext* h, int n, const T* alpha,
                            const T* x, int incx, T* y, int incy) {
  if (n < 0 || alpha == nullptr || incx == 0 || incy == 0) {
    return hipblasStatus_t::HIPBLAS_STATUS_INVALID_VALUE;
  }
  const T a = *alpha;
  gpusim::KernelCosts costs;
  costs.bytes_read = 2.0 * n * sizeof(T);
  costs.bytes_written = 1.0 * n * sizeof(T);
  costs.flops = 2.0 * n;
  const hipError_t err = hipLaunchKernelGGL(
      [a, x, incx, y, incy, n](const KernelCtx& ctx) {
        const std::size_t i = ctx.global_x();
        if (i < static_cast<std::size_t>(n)) {
          y[i * incy] = a * x[i * incx] + y[i * incy];
        }
      },
      dim3{static_cast<std::uint32_t>((n + 255) / 256), 1, 1},
      dim3{256, 1, 1}, costs, h->stream);
  return err == hipError_t::hipSuccess
             ? hipblasStatus_t::HIPBLAS_STATUS_SUCCESS
             : hipblasStatus_t::HIPBLAS_STATUS_EXECUTION_FAILED;
}

}  // namespace

hipblasStatus_t hipblasCreate(hipblasHandle_t* handle) noexcept {
  if (handle == nullptr) {
    return hipblasStatus_t::HIPBLAS_STATUS_INVALID_VALUE;
  }
  auto* ctx = new hipblasContext{};
  ctx->platform = platform();
  if (ctx->platform == Platform::nvidia) {
    // hipBLAS on the nvidia platform is a wrapper over cuBLAS (item 3).
    if (cudax::cublasCreate(&ctx->cublas) !=
        cudax::cublasStatus_t::CUBLAS_STATUS_SUCCESS) {
      delete ctx;
      return hipblasStatus_t::HIPBLAS_STATUS_NOT_INITIALIZED;
    }
  } else {
    if (hipStreamCreate(&ctx->stream) != hipError_t::hipSuccess) {
      delete ctx;
      return hipblasStatus_t::HIPBLAS_STATUS_NOT_INITIALIZED;
    }
  }
  live_handles().insert(ctx);
  *handle = ctx;
  return hipblasStatus_t::HIPBLAS_STATUS_SUCCESS;
}

hipblasStatus_t hipblasDestroy(hipblasHandle_t handle) noexcept {
  if (!valid(handle)) {
    return hipblasStatus_t::HIPBLAS_STATUS_NOT_INITIALIZED;
  }
  if (handle->cublas != nullptr) (void)cudax::cublasDestroy(handle->cublas);
  if (handle->stream != nullptr) (void)hipStreamDestroy(handle->stream);
  live_handles().erase(handle);
  delete handle;
  return hipblasStatus_t::HIPBLAS_STATUS_SUCCESS;
}

bool hipblas_uses_cublas_backend(hipblasHandle_t h) noexcept {
  return valid(h) && h->cublas != nullptr;
}

hipblasStatus_t hipblasSaxpy(hipblasHandle_t handle, int n,
                             const float* alpha, const float* x, int incx,
                             float* y, int incy) noexcept {
  if (!valid(handle)) {
    return hipblasStatus_t::HIPBLAS_STATUS_NOT_INITIALIZED;
  }
  if (handle->cublas != nullptr) {
    return from_cublas(
        cudax::cublasSaxpy(handle->cublas, n, alpha, x, incx, y, incy));
  }
  return native_axpy(handle, n, alpha, x, incx, y, incy);
}

hipblasStatus_t hipblasDaxpy(hipblasHandle_t handle, int n,
                             const double* alpha, const double* x, int incx,
                             double* y, int incy) noexcept {
  if (!valid(handle)) {
    return hipblasStatus_t::HIPBLAS_STATUS_NOT_INITIALIZED;
  }
  if (handle->cublas != nullptr) {
    return from_cublas(
        cudax::cublasDaxpy(handle->cublas, n, alpha, x, incx, y, incy));
  }
  return native_axpy(handle, n, alpha, x, incx, y, incy);
}

hipblasStatus_t hipblasDdot(hipblasHandle_t handle, int n, const double* x,
                            int incx, const double* y, int incy,
                            double* result) noexcept {
  if (!valid(handle)) {
    return hipblasStatus_t::HIPBLAS_STATUS_NOT_INITIALIZED;
  }
  if (handle->cublas != nullptr) {
    return from_cublas(
        cudax::cublasDdot(handle->cublas, n, x, incx, y, incy, result));
  }
  if (n < 0 || result == nullptr || incx == 0 || incy == 0) {
    return hipblasStatus_t::HIPBLAS_STATUS_INVALID_VALUE;
  }
  constexpr std::uint32_t kChunks = 64;
  double partials[kChunks] = {};
  const std::size_t chunk =
      (static_cast<std::size_t>(n) + kChunks - 1) / kChunks;
  gpusim::KernelCosts costs;
  costs.bytes_read = 2.0 * n * sizeof(double);
  costs.flops = 2.0 * n;
  const hipError_t err = hipLaunchKernelGGL(
      [x, incx, y, incy, n, chunk, &partials](const KernelCtx& ctx) {
        const std::size_t c = ctx.global_x();
        if (c >= kChunks) return;
        const std::size_t begin = c * chunk;
        const std::size_t end =
            std::min(static_cast<std::size_t>(n), begin + chunk);
        double acc = 0.0;
        for (std::size_t i = begin; i < end; ++i) {
          acc += x[i * incx] * y[i * incy];
        }
        partials[c] = acc;
      },
      dim3{kChunks, 1, 1}, dim3{1, 1, 1}, costs, handle->stream);
  if (err != hipError_t::hipSuccess) {
    return hipblasStatus_t::HIPBLAS_STATUS_EXECUTION_FAILED;
  }
  double sum = 0.0;
  for (const double p : partials) sum += p;
  *result = sum;
  return hipblasStatus_t::HIPBLAS_STATUS_SUCCESS;
}

hipblasStatus_t hipblasDgemm(hipblasHandle_t handle, int m, int n, int k,
                             const double* alpha, const double* A, int lda,
                             const double* B, int ldb, const double* beta,
                             double* C, int ldc) noexcept {
  if (!valid(handle)) {
    return hipblasStatus_t::HIPBLAS_STATUS_NOT_INITIALIZED;
  }
  if (handle->cublas != nullptr) {
    return from_cublas(cudax::cublasDgemm(handle->cublas, m, n, k, alpha, A,
                                          lda, B, ldb, beta, C, ldc));
  }
  if (m < 0 || n < 0 || k < 0 || alpha == nullptr || beta == nullptr ||
      lda < m || ldb < k || ldc < m) {
    return hipblasStatus_t::HIPBLAS_STATUS_INVALID_VALUE;
  }
  const double a = *alpha;
  const double b = *beta;
  gpusim::KernelCosts costs;
  costs.bytes_read =
      (static_cast<double>(m) * k + static_cast<double>(k) * n +
       static_cast<double>(m) * n) *
      sizeof(double);
  costs.bytes_written = static_cast<double>(m) * n * sizeof(double);
  costs.flops = 2.0 * m * n * k;
  const std::size_t total = static_cast<std::size_t>(m) * n;
  const hipError_t err = hipLaunchKernelGGL(
      [=](const KernelCtx& ctx) {
        const std::size_t idx = ctx.global_x();
        if (idx >= total) return;
        const std::size_t col = idx / m;
        const std::size_t row = idx % m;
        double acc = 0.0;
        for (int kk = 0; kk < k; ++kk) {
          acc += A[row + static_cast<std::size_t>(kk) * lda] *
                 B[kk + col * ldb];
        }
        C[row + col * ldc] = a * acc + b * C[row + col * ldc];
      },
      dim3{static_cast<std::uint32_t>((total + 255) / 256), 1, 1},
      dim3{256, 1, 1}, costs, handle->stream);
  return err == hipError_t::hipSuccess
             ? hipblasStatus_t::HIPBLAS_STATUS_SUCCESS
             : hipblasStatus_t::HIPBLAS_STATUS_EXECUTION_FAILED;
}

}  // namespace mcmm::hipx
