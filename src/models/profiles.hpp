#pragma once
// Backend efficiency profiles shared by the programming-model embeddings.
// The overhead bands follow the performance-portability literature the
// paper cites (BabelStream [53], Deakin et al. [54], Hammond [6]): native
// models attain ~full STREAM bandwidth, mature portability layers sit
// within a few percent, translated or experimental routes pay more.

#include <string>

#include "gpusim/costs.hpp"

namespace mcmm::models {

/// The vendor-native route (CUDA on NVIDIA, HIP on AMD, SYCL on Intel).
[[nodiscard]] inline gpusim::BackendProfile native_profile(std::string label) {
  gpusim::BackendProfile p;
  p.label = std::move(label);
  return p;
}

/// A mature portability layer over a native backend (Kokkos/CUDA,
/// DPC++-plugin, HIP-on-CUDA, ...): ~3 % bandwidth cost, one extra hop of
/// launch latency.
[[nodiscard]] inline gpusim::BackendProfile layered_profile(std::string label) {
  gpusim::BackendProfile p;
  p.label = std::move(label);
  p.bandwidth_efficiency = 0.97;
  p.compute_efficiency = 0.97;
  p.extra_launch_latency_us = 1.5;
  return p;
}

/// A directive-based route (OpenMP / OpenACC offloading): good but not
/// peak streaming performance.
[[nodiscard]] inline gpusim::BackendProfile directive_profile(
    std::string label) {
  gpusim::BackendProfile p;
  p.label = std::move(label);
  p.bandwidth_efficiency = 0.93;
  p.compute_efficiency = 0.95;
  p.extra_launch_latency_us = 2.5;
  return p;
}

/// A source-translated route (HIPIFY'd CUDA, SYCLomatic output, Clacc's
/// ACC->OMP lowering): the translated code runs through another model's
/// backend and inherits its profile; this adds the translation residue.
[[nodiscard]] inline gpusim::BackendProfile translated_profile(
    std::string label) {
  gpusim::BackendProfile p;
  p.label = std::move(label);
  p.bandwidth_efficiency = 0.95;
  p.compute_efficiency = 0.95;
  p.extra_launch_latency_us = 1.0;
  return p;
}

/// An explicitly experimental route (Kokkos-SYCL, Alpaka-SYCL, roc-stdpar,
/// chipStar): noticeably off peak.
[[nodiscard]] inline gpusim::BackendProfile experimental_profile(
    std::string label) {
  gpusim::BackendProfile p;
  p.label = std::move(label);
  p.bandwidth_efficiency = 0.80;
  p.compute_efficiency = 0.85;
  p.extra_launch_latency_us = 6.0;
  return p;
}

/// Combines two stacked routes (e.g. translated code over a layered
/// backend): efficiencies multiply, latencies add.
[[nodiscard]] inline gpusim::BackendProfile stack_profiles(
    const gpusim::BackendProfile& outer, const gpusim::BackendProfile& inner) {
  gpusim::BackendProfile p;
  p.label = outer.label + "+" + inner.label;
  p.bandwidth_efficiency =
      outer.bandwidth_efficiency * inner.bandwidth_efficiency;
  p.compute_efficiency = outer.compute_efficiency * inner.compute_efficiency;
  p.extra_launch_latency_us =
      outer.extra_launch_latency_us + inner.extra_launch_latency_us;
  return p;
}

}  // namespace mcmm::models
