#include "models/pybindx/pybindx.hpp"

#include <algorithm>
#include <cstddef>

#include "gpusim/sanitizer.hpp"
#include "models/profiles.hpp"

namespace mcmm::pybindx {
namespace {

[[nodiscard]] gpusim::BackendProfile profile_for(Package p) {
  switch (p) {
    case Package::CudaPython:
      // Low-level vendor bindings — essentially native.
      return models::native_profile("Python/cuda-python");
    case Package::CuPy:
      // Mature community layer over the CUDA toolkit.
      return models::layered_profile("Python/CuPy");
    case Package::Numba:
      // JIT through decorators; an extra compilation hop.
      return models::layered_profile("Python/Numba");
    case Package::CuNumeric:
      // Vendor, but routed through the Legate tasking layer.
      return models::layered_profile("Python/cuNumeric");
    case Package::CuPyROCm:
      // Item 30: "CuPy experimentally supports AMD GPUs/ROCm".
      return models::experimental_profile("Python/CuPy-ROCm");
    case Package::PyHIP:
      // Low-level bindings; thin but young.
      return models::experimental_profile("Python/PyHIP");
    case Package::Dpnp:
      // Item 44: vendor packages, younger ('some support').
      return models::layered_profile("Python/dpnp");
    case Package::NumbaDpex:
      return models::layered_profile("Python/numba-dpex");
  }
  throw PyError("unknown package");
}

template <typename T>
void fill_typed(gpusim::Queue& q, void* data, std::size_t n, double value,
                const gpusim::KernelCosts& costs) {
  auto* p = static_cast<T*>(data);
  q.launch(gpusim::launch_1d(n, 256), costs,
           [p, n, value](const gpusim::WorkItem& item) {
             const std::size_t i = item.global_x();
             if (i < n) {
               gpusim::note_device_access(p + i, sizeof(T),
                                          gpusim::AccessKind::Write);
               p[i] = static_cast<T>(value);
             }
           });
}

template <typename T>
void iota_typed(gpusim::Queue& q, void* data, std::size_t n,
                const gpusim::KernelCosts& costs) {
  auto* p = static_cast<T*>(data);
  q.launch(gpusim::launch_1d(n, 256), costs,
           [p, n](const gpusim::WorkItem& item) {
             const std::size_t i = item.global_x();
             if (i < n) {
               gpusim::note_device_access(p + i, sizeof(T),
                                          gpusim::AccessKind::Write);
               p[i] = static_cast<T>(i);
             }
           });
}

/// Reads element i of a dtype-erased array as double.
[[nodiscard]] double load_as_double(const void* data, DType dtype,
                                    std::size_t i) {
  switch (dtype) {
    case DType::Float32:
      return static_cast<const float*>(data)[i];
    case DType::Float64:
      return static_cast<const double*>(data)[i];
    case DType::Int32:
      return static_cast<const std::int32_t*>(data)[i];
  }
  return 0.0;
}

void store_from_double(void* data, DType dtype, std::size_t i, double v) {
  switch (dtype) {
    case DType::Float32:
      static_cast<float*>(data)[i] = static_cast<float>(v);
      break;
    case DType::Float64:
      static_cast<double*>(data)[i] = v;
      break;
    case DType::Int32:
      static_cast<std::int32_t*>(data)[i] = static_cast<std::int32_t>(v);
      break;
  }
}

/// Instrumented element accessors for device kernels: a sanitizer probe at
/// dtype granularity, then the plain load/store. asnumpy's host-side widen
/// loop deliberately uses load_as_double directly — it reads a host staging
/// buffer, which the sanitizer must not classify as a device access.
[[nodiscard]] double load_elem(const void* data, DType dtype,
                               std::size_t i) {
  gpusim::note_device_access(
      static_cast<const std::byte*>(data) + i * dtype_size(dtype),
      dtype_size(dtype), gpusim::AccessKind::Read);
  return load_as_double(data, dtype, i);
}

void store_elem(void* data, DType dtype, std::size_t i, double v) {
  gpusim::note_device_access(
      static_cast<std::byte*>(data) + i * dtype_size(dtype),
      dtype_size(dtype), gpusim::AccessKind::Write);
  store_from_double(data, dtype, i, v);
}

}  // namespace

std::string_view to_string(Package p) noexcept {
  switch (p) {
    case Package::CudaPython:
      return "cuda-python";
    case Package::CuPy:
      return "CuPy";
    case Package::Numba:
      return "Numba";
    case Package::CuNumeric:
      return "cuNumeric";
    case Package::CuPyROCm:
      return "CuPy-ROCm";
    case Package::PyHIP:
      return "PyHIP";
    case Package::Dpnp:
      return "dpnp";
    case Package::NumbaDpex:
      return "numba-dpex";
  }
  return "?";
}

Vendor package_vendor(Package p) noexcept {
  switch (p) {
    case Package::CudaPython:
    case Package::CuPy:
    case Package::Numba:
    case Package::CuNumeric:
      return Vendor::NVIDIA;
    case Package::CuPyROCm:
    case Package::PyHIP:
      return Vendor::AMD;
    case Package::Dpnp:
    case Package::NumbaDpex:
      return Vendor::Intel;
  }
  return Vendor::NVIDIA;
}

bool package_vendor_provided(Package p) noexcept {
  return p == Package::CudaPython || p == Package::CuNumeric ||
         p == Package::Dpnp || p == Package::NumbaDpex;
}

std::string_view to_string(DType d) noexcept {
  switch (d) {
    case DType::Float32:
      return "float32";
    case DType::Float64:
      return "float64";
    case DType::Int32:
      return "int32";
  }
  return "?";
}

std::size_t dtype_size(DType d) noexcept {
  switch (d) {
    case DType::Float32:
      return 4;
    case DType::Float64:
      return 8;
    case DType::Int32:
      return 4;
  }
  return 8;
}

Module::Module(Package package)
    : package_(package), vendor_(package_vendor(package)) {
  device_ = &gpusim::Platform::instance().device(vendor_);
  queue_ = std::shared_ptr<gpusim::Queue>(device_->create_queue().release());
  queue_->set_backend_profile(profile_for(package));
}

DType Module::promote(DType a, DType b) noexcept {
  if (a == DType::Float64 || b == DType::Float64) return DType::Float64;
  if (a == DType::Float32 || b == DType::Float32) return DType::Float32;
  return DType::Int32;
}

ndarray Module::make(std::size_t n, DType dtype) {
  ndarray out;
  std::string origin = "pybindx/";
  origin += to_string(package_);
  void* raw = device_->allocate(n * dtype_size(dtype), origin);
  out.data_ = std::shared_ptr<void>(
      raw, [dev = device_](void* p) { dev->deallocate(p); });
  out.size_ = n;
  out.dtype_ = dtype;
  out.module_ = this;
  return out;
}

void Module::check_same_size(const ndarray& a, const ndarray& b) const {
  if (a.size() != b.size()) {
    throw PyError("ValueError: operands could not be broadcast together "
                  "with shapes (" +
                  std::to_string(a.size()) + ",) (" +
                  std::to_string(b.size()) + ",)");
  }
}

void Module::check_owned(const ndarray& a) const {
  if (!a.defined()) throw PyError("TypeError: operation on undefined array");
  if (a.module_ != this) {
    throw PyError("ValueError: array belongs to a different module/device "
                  "(implicit cross-device transfer is not allowed)");
  }
}

ndarray Module::zeros(std::size_t n, DType dtype) {
  ndarray out = make(n, dtype);
  gpusim::KernelCosts costs;
  costs.bytes_written = static_cast<double>(n * dtype_size(dtype));
  switch (dtype) {
    case DType::Float32:
      fill_typed<float>(*queue_, out.data_.get(), n, 0.0, costs);
      break;
    case DType::Float64:
      fill_typed<double>(*queue_, out.data_.get(), n, 0.0, costs);
      break;
    case DType::Int32:
      fill_typed<std::int32_t>(*queue_, out.data_.get(), n, 0.0, costs);
      break;
  }
  return out;
}

ndarray Module::full(std::size_t n, double value, DType dtype) {
  ndarray out = make(n, dtype);
  gpusim::KernelCosts costs;
  costs.bytes_written = static_cast<double>(n * dtype_size(dtype));
  switch (dtype) {
    case DType::Float32:
      fill_typed<float>(*queue_, out.data_.get(), n, value, costs);
      break;
    case DType::Float64:
      fill_typed<double>(*queue_, out.data_.get(), n, value, costs);
      break;
    case DType::Int32:
      fill_typed<std::int32_t>(*queue_, out.data_.get(), n, value, costs);
      break;
  }
  return out;
}

ndarray Module::asarray(const std::vector<double>& host) {
  ndarray out = make(host.size(), DType::Float64);
  queue_->memcpy(out.data_.get(), host.data(), host.size() * sizeof(double),
                 gpusim::CopyKind::HostToDevice);
  return out;
}

ndarray Module::arange(std::size_t n, DType dtype) {
  ndarray out = make(n, dtype);
  gpusim::KernelCosts costs;
  costs.bytes_written = static_cast<double>(n * dtype_size(dtype));
  switch (dtype) {
    case DType::Float32:
      iota_typed<float>(*queue_, out.data_.get(), n, costs);
      break;
    case DType::Float64:
      iota_typed<double>(*queue_, out.data_.get(), n, costs);
      break;
    case DType::Int32:
      iota_typed<std::int32_t>(*queue_, out.data_.get(), n, costs);
      break;
  }
  return out;
}

ndarray Module::binary_op(const ndarray& a, const ndarray& b, BinOp op) {
  check_owned(a);
  check_owned(b);
  check_same_size(a, b);
  const DType out_dtype = promote(a.dtype(), b.dtype());
  ndarray out = make(a.size(), out_dtype);
  const std::size_t n = a.size();
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(
      n * (dtype_size(a.dtype()) + dtype_size(b.dtype())));
  costs.bytes_written = static_cast<double>(n * dtype_size(out_dtype));
  costs.flops = static_cast<double>(n);
  const void* pa = a.data_.get();
  const void* pb = b.data_.get();
  void* po = out.data_.get();
  const DType da = a.dtype(), db = b.dtype();
  queue_->launch(gpusim::launch_1d(n, 256), costs,
                 [=](const gpusim::WorkItem& item) {
                   const std::size_t i = item.global_x();
                   if (i >= n) return;
                   const double x = load_elem(pa, da, i);
                   const double y = load_elem(pb, db, i);
                   double r = 0.0;
                   switch (op) {
                     case BinOp::Add:
                       r = x + y;
                       break;
                     case BinOp::Sub:
                       r = x - y;
                       break;
                     case BinOp::Mul:
                       r = x * y;
                       break;
                   }
                   store_elem(po, out_dtype, i, r);
                 });
  return out;
}

ndarray Module::add(const ndarray& a, const ndarray& b) {
  return binary_op(a, b, BinOp::Add);
}

ndarray Module::subtract(const ndarray& a, const ndarray& b) {
  return binary_op(a, b, BinOp::Sub);
}

ndarray Module::multiply(const ndarray& a, const ndarray& b) {
  return binary_op(a, b, BinOp::Mul);
}

ndarray Module::multiply(const ndarray& a, double scalar) {
  check_owned(a);
  ndarray out = make(a.size(), a.dtype());
  const std::size_t n = a.size();
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * dtype_size(a.dtype()));
  costs.bytes_written = costs.bytes_read;
  costs.flops = static_cast<double>(n);
  const void* pa = a.data_.get();
  void* po = out.data_.get();
  const DType da = a.dtype();
  queue_->launch(gpusim::launch_1d(n, 256), costs,
                 [=](const gpusim::WorkItem& item) {
                   const std::size_t i = item.global_x();
                   if (i < n) {
                     store_elem(po, da, i, load_elem(pa, da, i) * scalar);
                   }
                 });
  return out;
}

double Module::sum(const ndarray& a) {
  check_owned(a);
  const std::size_t n = a.size();
  constexpr std::size_t kChunks = 64;
  std::array<double, kChunks> partials{};
  const std::size_t chunk = (n + kChunks - 1) / kChunks;
  gpusim::KernelCosts costs;
  costs.bytes_read = static_cast<double>(n * dtype_size(a.dtype()));
  costs.flops = static_cast<double>(n);
  const void* pa = a.data_.get();
  const DType da = a.dtype();
  queue_->launch(gpusim::launch_1d(kChunks, 1), costs,
                 [&, pa, da, n, chunk](const gpusim::WorkItem& item) {
                   const std::size_t c = item.global_x();
                   if (c >= kChunks) return;
                   const std::size_t begin = c * chunk;
                   const std::size_t end = std::min(n, begin + chunk);
                   double acc = 0.0;
                   for (std::size_t i = begin; i < end; ++i) {
                     acc += load_elem(pa, da, i);
                   }
                   partials[c] = acc;
                 });
  double total = 0.0;
  for (const double p : partials) total += p;
  return total;
}

double Module::dot(const ndarray& a, const ndarray& b) {
  check_owned(a);
  check_owned(b);
  check_same_size(a, b);
  const ndarray products = multiply(a, b);
  return sum(products);
}

std::vector<double> Module::asnumpy(const ndarray& a) {
  check_owned(a);
  std::vector<double> out(a.size());
  if (a.dtype() == DType::Float64) {
    queue_->memcpy(out.data(), a.data_.get(), a.size() * sizeof(double),
                   gpusim::CopyKind::DeviceToHost);
    return out;
  }
  // Converting download: stage the raw bytes, then widen on the host.
  std::vector<std::byte> raw(a.size() * dtype_size(a.dtype()));
  queue_->memcpy(raw.data(), a.data_.get(), raw.size(),
                 gpusim::CopyKind::DeviceToHost);
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = load_as_double(raw.data(), a.dtype(), i);
  }
  return out;
}

}  // namespace mcmm::pybindx
