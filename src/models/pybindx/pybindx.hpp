#pragma once
// pybindx: the Python column of Fig. 1 (items 17, 30, 44) as an executable
// embedding. Python GPU programming is NumPy-shaped: dynamically-typed
// n-d arrays with whole-array operations dispatched to a device backend.
// This module reproduces that shape in C++ — a dtype-erased `ndarray`
// plus a `Module` object standing in for `import cupy as cp` — with one
// Package per route the paper names:
//
//   CudaPython (NVIDIA, vendor)     CuPy (NVIDIA, community)
//   Numba      (NVIDIA, community)  cuNumeric (NVIDIA, vendor)
//   CuPyROCm   (AMD, experimental)  PyHIP (AMD, low-level bindings)
//   dpnp       (Intel, vendor)      numba-dpex (Intel, vendor)
//
// Packages exist exactly where Fig. 1's Python cells are usable; their
// profiles mirror the cells' maturity (AMD's routes are experimental, the
// paper's 'limited support' rating).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"

namespace mcmm::pybindx {

enum class Package {
  CudaPython,
  CuPy,
  Numba,
  CuNumeric,
  CuPyROCm,
  PyHIP,
  Dpnp,
  NumbaDpex,
};

[[nodiscard]] std::string_view to_string(Package p) noexcept;

/// Which vendor a package drives (Fig. 1's Python row).
[[nodiscard]] Vendor package_vendor(Package p) noexcept;

/// True for the vendor-provided packages (CUDA Python, cuNumeric, dpnp,
/// numba-dpex).
[[nodiscard]] bool package_vendor_provided(Package p) noexcept;

/// Python's dynamic typing, reduced to the dtypes the examples need.
enum class DType : std::uint8_t { Float32, Float64, Int32 };

[[nodiscard]] std::string_view to_string(DType d) noexcept;
[[nodiscard]] std::size_t dtype_size(DType d) noexcept;

/// Raised where Python would raise TypeError/ValueError.
class PyError : public Error {
 public:
  using Error::Error;
};

class Module;

/// A device-resident, dtype-erased 1-D array (the NumPy/CuPy shape).
class ndarray {
 public:
  ndarray() = default;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] DType dtype() const noexcept { return dtype_; }
  [[nodiscard]] bool defined() const noexcept { return data_ != nullptr; }

 private:
  friend class Module;
  std::shared_ptr<void> data_;
  std::size_t size_{};
  DType dtype_{DType::Float64};
  Module* module_{};
};

/// The imported package: factory and operations on ndarrays.
class Module {
 public:
  /// `import <package>`. Throws UnsupportedCombination when the package's
  /// platform is unavailable (there is none in Fig. 1's Python row — every
  /// package has a platform — but PyHIP/Numba-ROCm maturities surface in
  /// the profile).
  explicit Module(Package package);

  [[nodiscard]] Package package() const noexcept { return package_; }
  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }
  [[nodiscard]] const gpusim::BackendProfile& profile() const {
    return queue_->backend_profile();
  }

  // --- array creation (cp.zeros, cp.asarray, ...) ---
  [[nodiscard]] ndarray zeros(std::size_t n, DType dtype = DType::Float64);
  [[nodiscard]] ndarray full(std::size_t n, double value,
                             DType dtype = DType::Float64);
  [[nodiscard]] ndarray asarray(const std::vector<double>& host);
  [[nodiscard]] ndarray arange(std::size_t n, DType dtype = DType::Float64);

  // --- elementwise ops (cp.add, cp.multiply, scalar broadcast) ---
  [[nodiscard]] ndarray add(const ndarray& a, const ndarray& b);
  [[nodiscard]] ndarray multiply(const ndarray& a, const ndarray& b);
  [[nodiscard]] ndarray multiply(const ndarray& a, double scalar);
  [[nodiscard]] ndarray subtract(const ndarray& a, const ndarray& b);

  // --- reductions (cp.sum, cp.dot) ---
  [[nodiscard]] double sum(const ndarray& a);
  [[nodiscard]] double dot(const ndarray& a, const ndarray& b);

  // --- transfer (cp.asnumpy) ---
  [[nodiscard]] std::vector<double> asnumpy(const ndarray& a);

  /// dtype promotion following NumPy: f64 > f32 > i32.
  [[nodiscard]] static DType promote(DType a, DType b) noexcept;

  [[nodiscard]] double simulated_time_us() const noexcept {
    return queue_->simulated_time_us();
  }

 private:
  [[nodiscard]] ndarray make(std::size_t n, DType dtype);
  void check_same_size(const ndarray& a, const ndarray& b) const;
  void check_owned(const ndarray& a) const;

  enum class BinOp { Add, Sub, Mul };
  [[nodiscard]] ndarray binary_op(const ndarray& a, const ndarray& b,
                                  BinOp op);

  Package package_;
  Vendor vendor_;
  gpusim::Device* device_;
  std::shared_ptr<gpusim::Queue> queue_;
};

}  // namespace mcmm::pybindx
