#pragma once
// accx: an OpenACC-style embedding (paper Sec. 4, items 7, 22, 36).
// Directive shapes become structured calls:
//
//   #pragma acc data copyin(a[0:n]) copyout(c[0:n])
//   #pragma acc parallel loop
//   -> accx::data_region data(acc); auto* da = data.copyin(a, n); ...
//      acc.parallel_loop(n, costs, body);
//
// Compiler choice reproduces the paper's routes: NVHPC (NVIDIA, vendor,
// complete), GCC (NVIDIA + AMD, community), Clacc (NVIDIA + AMD — and it
// genuinely *lowers onto the OpenMP embedding*, as the real Clacc lowers
// OpenACC to OpenMP), HPE Cray PE (NVIDIA + AMD). There is no Intel entry:
// constructing an accelerator for Vendor::Intel throws, which is Fig. 1's
// "no direct support" cell; Intel's one-shot migration tool lives in
// mcmm::translate.

#include <map>
#include <memory>
#include <optional>

#include "core/error.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"
#include "models/ompx/ompx.hpp"

namespace mcmm::accx {

enum class Compiler { NVHPC, GCC, Clacc, Cray };

[[nodiscard]] std::string_view to_string(Compiler c) noexcept;

/// Which compilers can target which vendor (items 7, 8, 22, 23).
[[nodiscard]] bool compiler_targets(Compiler c, Vendor v) noexcept;

/// An accelerator reached through one OpenACC compiler.
class Accelerator {
 public:
  /// Throws UnsupportedCombination when the compiler cannot target the
  /// vendor — including every compiler for Vendor::Intel.
  Accelerator(Vendor vendor, Compiler compiler);

  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }
  [[nodiscard]] Compiler compiler() const noexcept { return compiler_; }
  /// True when this accelerator lowers through the OpenMP embedding
  /// (the Clacc route).
  [[nodiscard]] bool lowers_to_openmp() const noexcept {
    return omp_.has_value();
  }

  [[nodiscard]] gpusim::Device& device();
  [[nodiscard]] gpusim::Queue& queue();
  [[nodiscard]] double simulated_time_us();

  /// `#pragma acc parallel loop` over [0, n).
  template <typename Body>
  void parallel_loop(std::size_t n, const gpusim::KernelCosts& costs,
                     Body&& body) {
    if (omp_.has_value()) {
      // Clacc: OpenACC -> OpenMP target teams distribute parallel for.
      ompx::target_teams_distribute_parallel_for(*omp_, n, costs,
                                                 std::forward<Body>(body));
      return;
    }
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(n, 256);
    queue().launch(cfg, costs, [&](const gpusim::WorkItem& item) {
      const std::size_t i = item.global_x();
      if (i < n) body(i);
    });
  }

  /// `#pragma acc parallel loop reduction(+: acc)`.
  template <typename T, typename Body>
  T parallel_loop_reduce(std::size_t n, T init,
                         const gpusim::KernelCosts& costs, Body&& body) {
    if (omp_.has_value()) {
      return ompx::target_teams_reduce(*omp_, n, init, costs,
                                       std::forward<Body>(body));
    }
    constexpr std::size_t kGangs = 64;
    std::vector<T> partials(kGangs, init);
    const std::size_t chunk = (n + kGangs - 1) / kGangs;
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(kGangs, 1);
    // Gangs self-schedule: one fat gang must not gate the reduction.
    queue().launch(
        cfg, costs,
        [&](const gpusim::WorkItem& item) {
          const std::size_t g = item.global_x();
          if (g >= kGangs) return;
          const std::size_t begin = g * chunk;
          const std::size_t end = std::min(n, begin + chunk);
          T acc = init;
          for (std::size_t i = begin; i < end; ++i) acc += body(i);
          partials[g] = acc;
        },
        gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
    T result = init;
    for (const T& p : partials) result += p;
    return result;
  }

  /// `#pragma acc parallel loop async(id)`: enqueue on a named async
  /// queue. The simulator executes eagerly, so the observable effect is
  /// the separate simulated timeline per async id.
  template <typename Body>
  void parallel_loop_async(int async_id, std::size_t n,
                           const gpusim::KernelCosts& costs, Body&& body) {
    gpusim::Queue& q = async_queue(async_id);
    const gpusim::LaunchConfig cfg = gpusim::launch_1d(n, 256);
    q.launch(cfg, costs, [&](const gpusim::WorkItem& item) {
      const std::size_t i = item.global_x();
      if (i < n) body(i);
    });
  }

  /// `#pragma acc wait(id)`.
  void wait(int async_id);
  /// `#pragma acc wait` (all queues).
  void wait_all();
  /// Simulated time consumed on one async queue.
  [[nodiscard]] double async_time_us(int async_id);

 private:
  [[nodiscard]] gpusim::Queue& async_queue(int async_id);

  Vendor vendor_;
  Compiler compiler_;
  gpusim::Device* device_{};                 ///< direct routes
  std::unique_ptr<gpusim::Queue> queue_;     ///< direct routes
  std::optional<ompx::TargetDevice> omp_;    ///< the Clacc lowering
  std::map<int, std::unique_ptr<gpusim::Queue>> async_queues_;
};

/// RAII `#pragma acc data` region.
class data_region {
 public:
  explicit data_region(Accelerator& acc) : acc_(&acc) {}
  ~data_region();

  data_region(const data_region&) = delete;
  data_region& operator=(const data_region&) = delete;

  /// copyin(ptr[0:count]).
  template <typename T>
  T* copyin(const T* host, std::size_t count) {
    return static_cast<T*>(map(host, count * sizeof(T), true, false));
  }
  /// copyout(ptr[0:count]).
  template <typename T>
  T* copyout(T* host, std::size_t count) {
    return static_cast<T*>(map(host, count * sizeof(T), false, true));
  }
  /// copy(ptr[0:count]) — in and out.
  template <typename T>
  T* copy(T* host, std::size_t count) {
    return static_cast<T*>(map(host, count * sizeof(T), true, true));
  }
  /// create(ptr[0:count]) — device-only scratch.
  template <typename T>
  T* create(const T* host, std::size_t count) {
    return static_cast<T*>(map(host, count * sizeof(T), false, false));
  }

 private:
  void* map(const void* host, std::size_t bytes, bool in, bool out);

  struct Mapping {
    const void* host{};
    void* device{};
    std::size_t bytes{};
    bool copy_out{};
  };

  Accelerator* acc_;
  std::vector<Mapping> mappings_;
};

}  // namespace mcmm::accx
