#include "models/accx/accx.hpp"

#include "models/profiles.hpp"

namespace mcmm::accx {

std::string_view to_string(Compiler c) noexcept {
  switch (c) {
    case Compiler::NVHPC:
      return "NVHPC";
    case Compiler::GCC:
      return "GCC";
    case Compiler::Clacc:
      return "Clacc";
    case Compiler::Cray:
      return "Cray";
  }
  return "?";
}

bool compiler_targets(Compiler c, Vendor v) noexcept {
  switch (c) {
    case Compiler::NVHPC:
      return v == Vendor::NVIDIA;
    case Compiler::GCC:
    case Compiler::Clacc:
    case Compiler::Cray:
      return v == Vendor::NVIDIA || v == Vendor::AMD;
  }
  return false;
}

Accelerator::Accelerator(Vendor vendor, Compiler compiler)
    : vendor_(vendor), compiler_(compiler) {
  if (!compiler_targets(compiler, vendor)) {
    throw UnsupportedCombination(
        Combination{vendor, Model::OpenACC, Language::Cpp},
        vendor == Vendor::Intel
            ? "no OpenACC support for Intel GPUs exists; Intel only offers "
              "a one-shot OpenACC-to-OpenMP migration tool"
            : std::string(to_string(compiler)) + " cannot target " +
                  std::string(mcmm::to_string(vendor)));
  }
  if (compiler == Compiler::Clacc) {
    // Clacc translates OpenACC to OpenMP within LLVM (item 7/22); the
    // embedding mirrors this by lowering onto the ompx Clang route.
    omp_.emplace(vendor, ompx::Compiler::Clang);
    return;
  }
  device_ = &gpusim::Platform::instance().device(vendor);
  queue_ = device_->create_queue();
  gpusim::BackendProfile p = models::directive_profile(
      "OpenACC/" + std::string(to_string(compiler)));
  if (compiler == Compiler::NVHPC) {
    // The vendor-complete route (rated 'full' in Fig. 1): best directive
    // performance.
    p.bandwidth_efficiency = 0.95;
    p.extra_launch_latency_us = 2.0;
  }
  queue_->set_backend_profile(p);
}

gpusim::Device& Accelerator::device() {
  if (omp_.has_value()) return omp_->device();
  return *device_;
}

gpusim::Queue& Accelerator::queue() {
  if (omp_.has_value()) return omp_->queue();
  return *queue_;
}

double Accelerator::simulated_time_us() {
  return queue().simulated_time_us();
}

gpusim::Queue& Accelerator::async_queue(int async_id) {
  auto& slot = async_queues_[async_id];
  if (!slot) {
    slot = device().create_queue();
    slot->set_backend_profile(queue().backend_profile());
  }
  return *slot;
}

void Accelerator::wait(int async_id) {
  const auto it = async_queues_.find(async_id);
  if (it != async_queues_.end()) it->second->synchronize();
}

void Accelerator::wait_all() {
  for (auto& [id, q] : async_queues_) q->synchronize();
  queue().synchronize();
}

double Accelerator::async_time_us(int async_id) {
  return async_queue(async_id).simulated_time_us();
}

data_region::~data_region() {
  for (auto it = mappings_.rbegin(); it != mappings_.rend(); ++it) {
    if (it->copy_out) {
      acc_->queue().memcpy(const_cast<void*>(it->host), it->device, it->bytes,
                           gpusim::CopyKind::DeviceToHost);
    }
    acc_->device().deallocate(it->device);
  }
}

void* data_region::map(const void* host, std::size_t bytes, bool in,
                       bool out) {
  void* device = acc_->device().allocate(bytes);
  if (in) {
    acc_->queue().memcpy(device, host, bytes, gpusim::CopyKind::HostToDevice);
  }
  mappings_.push_back(Mapping{host, device, bytes, out});
  return device;
}

}  // namespace mcmm::accx
