#pragma once
// fortranx: the Fortran binding layers of Fig. 1's Fortran columns,
// modelled as data plus an ISO_C_BINDING-style dispatch bridge.
//
// The paper's Fortran story is about *interface availability*: hipfort
// (item 4) ships ready-made interfaces to the HIP API and ROCm libraries;
// Kokkos' FLCL (item 14) hands views between Fortran and C++. This module
// records those interface surfaces (names, arity, the C symbols they bind
// to) and provides an executable bridge: calling a bound symbol through
// the layer dispatches onto the corresponding C++ embedding — the way a
// Fortran program reaches the device through ISO_C_BINDING.

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/support.hpp"
#include "core/types.hpp"

namespace mcmm::fortranx {

/// One bound procedure of a binding layer.
struct BindingEntry {
  std::string fortran_name;  ///< e.g. "hipMalloc" (Fortran interface name)
  std::string c_symbol;      ///< bound C symbol
  int arity{};               ///< number of dummy arguments
  bool is_function{};        ///< function (returns status) vs subroutine
};

/// A Fortran binding layer (hipfort, FLCL, ...).
class BindingLayer {
 public:
  BindingLayer(std::string name, Provider provider, std::string license,
               std::vector<BindingEntry> entries);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Provider provider() const noexcept { return provider_; }
  [[nodiscard]] const std::string& license() const noexcept {
    return license_;
  }
  [[nodiscard]] const std::vector<BindingEntry>& entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] const BindingEntry* find(
      const std::string& fortran_name) const;

  /// Fraction of `api_surface` covered by this layer's bindings.
  [[nodiscard]] double coverage(
      const std::vector<std::string>& api_surface) const;

 private:
  std::string name_;
  Provider provider_;
  std::string license_;
  std::vector<BindingEntry> entries_;
  std::map<std::string, std::size_t> index_;
};

/// AMD's hipfort (item 4): MIT-licensed interfaces to the HIP API and
/// ROCm libraries. "All interfaces implement C functionality"; there is
/// no Fortran kernel language.
[[nodiscard]] const BindingLayer& hipfort();

/// Kokkos' Fortran Language Compatibility Layer (item 14).
[[nodiscard]] const BindingLayer& flcl();

/// The HIP C API surface used for coverage measurements.
[[nodiscard]] const std::vector<std::string>& hip_api_surface();

// ---------------------------------------------------------------------
// Executable bridge: a tiny ISO_C_BINDING-style call interface. Values
// are passed as an argument pack of raw addresses/sizes, the way a
// Fortran compiler marshals `type(c_ptr)` and `integer(c_size_t)`.

struct CValue {
  enum class Kind { Pointer, Size, DoublePtr } kind{Kind::Pointer};
  void* ptr{};
  std::size_t size{};

  [[nodiscard]] static CValue pointer(void* p) {
    return CValue{Kind::Pointer, p, 0};
  }
  [[nodiscard]] static CValue bytes(std::size_t n) {
    return CValue{Kind::Size, nullptr, n};
  }
};

/// Invokes a hipfort-bound procedure by Fortran name; dispatches to the
/// hipx embedding. Returns the C status code. Throws LookupError for
/// names outside the binding surface and Error for arity mismatches —
/// the errors a Fortran interface block would raise at compile time.
[[nodiscard]] int call_hipfort(const std::string& fortran_name,
                               std::vector<CValue> args);

}  // namespace mcmm::fortranx
