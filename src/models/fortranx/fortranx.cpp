#include "models/fortranx/fortranx.hpp"

#include <algorithm>

#include "models/hipx/hipx.hpp"

namespace mcmm::fortranx {

BindingLayer::BindingLayer(std::string name, Provider provider,
                           std::string license,
                           std::vector<BindingEntry> entries)
    : name_(std::move(name)),
      provider_(provider),
      license_(std::move(license)),
      entries_(std::move(entries)) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    index_.emplace(entries_[i].fortran_name, i);
  }
}

const BindingEntry* BindingLayer::find(
    const std::string& fortran_name) const {
  const auto it = index_.find(fortran_name);
  return it == index_.end() ? nullptr : &entries_[it->second];
}

double BindingLayer::coverage(
    const std::vector<std::string>& api_surface) const {
  if (api_surface.empty()) return 1.0;
  std::size_t covered = 0;
  for (const std::string& symbol : api_surface) {
    if (find(symbol) != nullptr) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(api_surface.size());
}

const BindingLayer& hipfort() {
  static const BindingLayer layer(
      "hipfort", Provider::OtherVendor, "MIT",
      {
          {"hipMalloc", "hipMalloc", 2, true},
          {"hipFree", "hipFree", 1, true},
          {"hipMemcpy", "hipMemcpy", 4, true},
          {"hipMemset", "hipMemset", 3, true},
          {"hipDeviceSynchronize", "hipDeviceSynchronize", 0, true},
          {"hipGetDeviceCount", "hipGetDeviceCount", 1, true},
          {"hipSetDevice", "hipSetDevice", 1, true},
          {"hipStreamCreate", "hipStreamCreate", 1, true},
          {"hipStreamDestroy", "hipStreamDestroy", 1, true},
          {"hipStreamSynchronize", "hipStreamSynchronize", 1, true},
          // ROCm library interfaces (item 4: "interfaces to ... HIP and
          // ROCm libraries").
          {"hipblasCreate", "hipblasCreate", 1, true},
          {"hipblasDestroy", "hipblasDestroy", 1, true},
          {"hipblasSaxpy", "hipblasSaxpy", 7, true},
          {"hipblasDaxpy", "hipblasDaxpy", 7, true},
          {"hipblasDdot", "hipblasDdot", 7, true},
      });
  return layer;
}

const BindingLayer& flcl() {
  static const BindingLayer layer(
      "Kokkos FLCL", Provider::Community, "BSD-3",
      {
          {"kokkos_initialize", "flcl_kokkos_initialize", 0, false},
          {"kokkos_finalize", "flcl_kokkos_finalize", 0, false},
          {"kokkos_allocate_view", "flcl_allocate_v1d", 3, false},
          {"kokkos_deallocate_view", "flcl_deallocate_v1d", 1, false},
          {"kokkos_deep_copy", "flcl_deep_copy", 2, false},
          {"kokkos_parallel_for", "flcl_parallel_for", 3, false},
          {"kokkos_parallel_reduce", "flcl_parallel_reduce", 4, false},
      });
  return layer;
}

const std::vector<std::string>& hip_api_surface() {
  static const std::vector<std::string> surface = {
      "hipMalloc",        "hipFree",
      "hipMemcpy",        "hipMemset",
      "hipDeviceSynchronize", "hipGetDeviceCount",
      "hipSetDevice",     "hipStreamCreate",
      "hipStreamDestroy", "hipStreamSynchronize",
      // Not covered by hipfort in this model (kernel-side API):
      "hipLaunchKernelGGL", "hipEventCreate", "hipEventRecord",
  };
  return surface;
}

int call_hipfort(const std::string& fortran_name, std::vector<CValue> args) {
  const BindingEntry* entry = hipfort().find(fortran_name);
  if (entry == nullptr) {
    throw LookupError("hipfort has no interface named '" + fortran_name +
                      "' (HIP offers no Fortran kernel language — item 4)");
  }
  if (static_cast<int>(args.size()) != entry->arity) {
    throw Error("arity mismatch calling " + fortran_name + ": expected " +
                std::to_string(entry->arity) + " arguments, got " +
                std::to_string(args.size()));
  }

  using hipx::hipError_t;
  if (fortran_name == "hipMalloc") {
    return static_cast<int>(hipx::hipMalloc(
        static_cast<void**>(args[0].ptr), args[1].size));
  }
  if (fortran_name == "hipFree") {
    return static_cast<int>(hipx::hipFree(args[0].ptr));
  }
  if (fortran_name == "hipMemcpy") {
    // args: dst, src, bytes, kind (kind passed via size field).
    return static_cast<int>(hipx::hipMemcpy(
        args[0].ptr, args[1].ptr, args[2].size,
        static_cast<hipx::hipMemcpyKind>(args[3].size)));
  }
  if (fortran_name == "hipMemset") {
    return static_cast<int>(hipx::hipMemset(
        args[0].ptr, static_cast<int>(args[1].size), args[2].size));
  }
  if (fortran_name == "hipDeviceSynchronize") {
    return static_cast<int>(hipx::hipDeviceSynchronize());
  }
  if (fortran_name == "hipGetDeviceCount") {
    return static_cast<int>(
        hipx::hipGetDeviceCount(static_cast<int*>(args[0].ptr)));
  }
  if (fortran_name == "hipSetDevice") {
    return static_cast<int>(
        hipx::hipSetDevice(static_cast<int>(args[0].size)));
  }
  // The remaining bound symbols exist in the interface table but have no
  // dispatch in this executable subset.
  throw Error("hipfort interface '" + fortran_name +
              "' is declared but not dispatched in this subset");
}

}  // namespace mcmm::fortranx
