#pragma once
// kokkosx: a Kokkos-style embedding (paper Sec. 4, items 13, 28, 42).
// Views + parallel_for / parallel_reduce / parallel_scan over execution
// spaces. Each execution space mirrors a real Kokkos backend — Cuda (on
// NVIDIA), HIP (on AMD), SYCL (on Intel, experimental: item 42), and
// OpenMPTarget — and its queue stacks the Kokkos layer's profile on top of
// the underlying runtime's, reproducing the layered software stack.

#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include <algorithm>

#include "gpusim/sanitizer.hpp"

#include "core/error.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"
#include "models/profiles.hpp"

namespace mcmm::kokkosx {

enum class ExecSpace { Cuda, HIP, SYCL, OpenMPTarget };

[[nodiscard]] std::string_view to_string(ExecSpace s) noexcept;

/// Which vendors an execution space reaches (Fig. 1's Kokkos column).
[[nodiscard]] bool exec_space_targets(ExecSpace s, Vendor v) noexcept;

/// One initialized backend instance (Kokkos::initialize analogue, but
/// scoped). Owns the queue all views/kernels of this space use.
class Execution {
 public:
  /// Throws UnsupportedCombination when the space cannot reach the vendor
  /// (e.g. ExecSpace::Cuda on AMD).
  Execution(ExecSpace space, Vendor vendor);

  [[nodiscard]] ExecSpace space() const noexcept { return space_; }
  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }
  [[nodiscard]] bool experimental() const noexcept {
    return space_ == ExecSpace::SYCL;  // item 42: experimental backend
  }

  [[nodiscard]] gpusim::Device& device() noexcept { return *device_; }
  [[nodiscard]] gpusim::Queue& queue() noexcept { return *queue_; }
  [[nodiscard]] double simulated_time_us() const noexcept {
    return queue_->simulated_time_us();
  }
  void fence() noexcept { queue_->synchronize(); }

 private:
  ExecSpace space_;
  Vendor vendor_;
  gpusim::Device* device_;
  std::unique_ptr<gpusim::Queue> queue_;
};

/// A 1-D device view (Kokkos::View<T*>). Reference-counted like the real
/// thing; deallocates when the last copy goes away.
template <typename T>
class View {
 public:
  View(Execution& exec, std::string label, std::size_t count)
      : exec_(&exec),
        label_(std::move(label)),
        size_(count),
        data_(static_cast<T*>(
                  exec.device().allocate(count * sizeof(T), label_)),
              [dev = &exec.device()](T* p) { dev->deallocate(p); }) {}

  [[nodiscard]] T* data() const noexcept { return data_.get(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] const std::string& label() const noexcept { return label_; }
  /// A view reference cannot tell a read from a write, so the sanitizer
  /// probe reports AccessKind::Unknown: bounds-checked by memcheck, skipped
  /// by racecheck (see gpusim::AccessKind).
  [[nodiscard]] T& operator()(std::size_t i) const noexcept {
    gpusim::note_device_access(data_.get() + i, sizeof(T),
                               gpusim::AccessKind::Unknown);
    return data_.get()[i];
  }
  [[nodiscard]] long use_count() const noexcept { return data_.use_count(); }

  [[nodiscard]] Execution& execution() const noexcept { return *exec_; }

 private:
  Execution* exec_;
  std::string label_;
  std::size_t size_;
  std::shared_ptr<T> data_;
};

/// deep_copy between a host buffer and a view (Kokkos::deep_copy analogue).
template <typename T>
void deep_copy_to_device(View<T>& dst, const T* host_src) {
  dst.execution().queue().memcpy(dst.data(), host_src,
                                 dst.size() * sizeof(T),
                                 gpusim::CopyKind::HostToDevice);
}

template <typename T>
void deep_copy_to_host(T* host_dst, const View<T>& src) {
  src.execution().queue().memcpy(host_dst, src.data(),
                                 src.size() * sizeof(T),
                                 gpusim::CopyKind::DeviceToHost);
}

/// Device-to-device deep copy between views of one execution space.
template <typename T>
void deep_copy(View<T>& dst, const View<T>& src) {
  dst.execution().queue().memcpy(dst.data(), src.data(),
                                 dst.size() * sizeof(T),
                                 gpusim::CopyKind::DeviceToDevice);
}

struct RangePolicy {
  std::size_t begin{};
  std::size_t end{};
};

/// Kokkos::MDRangePolicy<Rank<2>> analogue: a rectangular 2-D iteration
/// space.
struct MDRangePolicy2D {
  std::size_t begin0{};
  std::size_t end0{};
  std::size_t begin1{};
  std::size_t end1{};

  [[nodiscard]] std::size_t extent0() const noexcept {
    return end0 - begin0;
  }
  [[nodiscard]] std::size_t extent1() const noexcept {
    return end1 - begin1;
  }
};

/// parallel_for over a 2-D MDRange; body(i, j).
template <typename Body>
void parallel_for(Execution& exec, const MDRangePolicy2D& policy,
                  const gpusim::KernelCosts& costs, Body&& body) {
  const std::size_t n0 = policy.extent0();
  const std::size_t n1 = policy.extent1();
  const std::size_t total = n0 * n1;
  exec.queue().launch(gpusim::launch_1d(total, 256), costs,
                      [&, n1, total](const gpusim::WorkItem& item) {
                        const std::size_t flat = item.global_x();
                        if (flat >= total) return;
                        body(policy.begin0 + flat / n1,
                             policy.begin1 + flat % n1);
                      });
}

/// parallel_reduce over a 2-D MDRange; body(i, j, update).
template <typename T, typename Body>
void parallel_reduce(Execution& exec, const MDRangePolicy2D& policy,
                     const gpusim::KernelCosts& costs, Body&& body,
                     T& result) {
  const std::size_t n1 = policy.extent1();
  const std::size_t total = policy.extent0() * n1;
  constexpr std::size_t kLeagues = 64;
  std::vector<T> partials(kLeagues, T{});
  const std::size_t chunk = (total + kLeagues - 1) / kLeagues;
  // Leagues self-schedule (dynamic grain 1): a fat league must not gate
  // the reduction behind a static partition.
  exec.queue().launch(gpusim::launch_1d(kLeagues, 1), costs,
                      [&, n1, total, chunk](const gpusim::WorkItem& item) {
                        const std::size_t l = item.global_x();
                        if (l >= kLeagues) return;
                        const std::size_t b = l * chunk;
                        const std::size_t e = std::min(total, b + chunk);
                        T update{};
                        for (std::size_t flat = b; flat < e; ++flat) {
                          body(policy.begin0 + flat / n1,
                               policy.begin1 + flat % n1, update);
                        }
                        partials[l] = update;
                      },
                      gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
  T total_value{};
  for (const T& p : partials) total_value += p;
  result = total_value;
}

/// Kokkos::parallel_for over a 1-D range; body(i). The launch-policy form
/// mirrors Kokkos's Schedule<Static/Dynamic> template parameter.
template <typename Body>
void parallel_for(Execution& exec, const RangePolicy& policy,
                  const gpusim::KernelCosts& costs,
                  gpusim::LaunchPolicy launch_policy, Body&& body) {
  const std::size_t n = policy.end - policy.begin;
  const std::size_t begin = policy.begin;
  exec.queue().launch(gpusim::launch_1d(n, 256), costs,
                      [&](const gpusim::WorkItem& item) {
                        const std::size_t i = item.global_x();
                        if (i < n) body(begin + i);
                      },
                      launch_policy);
}

template <typename Body>
void parallel_for(Execution& exec, const RangePolicy& policy,
                  const gpusim::KernelCosts& costs, Body&& body) {
  parallel_for(exec, policy, costs, gpusim::LaunchPolicy{},
               std::forward<Body>(body));
}

/// Kokkos::parallel_reduce; body(i, update) accumulates into update.
template <typename T, typename Body>
void parallel_reduce(Execution& exec, const RangePolicy& policy,
                     const gpusim::KernelCosts& costs, Body&& body,
                     T& result) {
  const std::size_t n = policy.end - policy.begin;
  const std::size_t begin = policy.begin;
  constexpr std::size_t kLeagues = 64;
  std::vector<T> partials(kLeagues, T{});
  const std::size_t chunk = (n + kLeagues - 1) / kLeagues;
  exec.queue().launch(gpusim::launch_1d(kLeagues, 1), costs,
                      [&](const gpusim::WorkItem& item) {
                        const std::size_t l = item.global_x();
                        if (l >= kLeagues) return;
                        const std::size_t b = l * chunk;
                        const std::size_t e = std::min(n, b + chunk);
                        T update{};
                        for (std::size_t i = b; i < e; ++i) {
                          body(begin + i, update);
                        }
                        partials[l] = update;
                      },
                      gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
  T total{};
  for (const T& p : partials) total += p;
  result = total;
}

/// Kokkos::parallel_scan (inclusive); body(i, update, final) in the Kokkos
/// two-pass idiom. Writes happen only in the final pass.
template <typename T, typename Body>
void parallel_scan(Execution& exec, const RangePolicy& policy,
                   const gpusim::KernelCosts& costs, Body&& body) {
  const std::size_t n = policy.end - policy.begin;
  const std::size_t begin = policy.begin;
  constexpr std::size_t kLeagues = 64;
  std::vector<T> partials(kLeagues, T{});
  const std::size_t chunk = (n + kLeagues - 1) / kLeagues;
  // Pass 1: per-league sums (final = false).
  exec.queue().launch(gpusim::launch_1d(kLeagues, 1), costs,
                      [&](const gpusim::WorkItem& item) {
                        const std::size_t l = item.global_x();
                        if (l >= kLeagues) return;
                        const std::size_t b = l * chunk;
                        const std::size_t e = std::min(n, b + chunk);
                        T update{};
                        for (std::size_t i = b; i < e; ++i) {
                          body(begin + i, update, false);
                        }
                        partials[l] = update;
                      },
                      gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
  // Exclusive prefix over league sums.
  std::vector<T> offsets(kLeagues, T{});
  T running{};
  for (std::size_t l = 0; l < kLeagues; ++l) {
    offsets[l] = running;
    running += partials[l];
  }
  // Pass 2: final scan with league offsets.
  exec.queue().launch(gpusim::launch_1d(kLeagues, 1), costs,
                      [&](const gpusim::WorkItem& item) {
                        const std::size_t l = item.global_x();
                        if (l >= kLeagues) return;
                        const std::size_t b = l * chunk;
                        const std::size_t e = std::min(n, b + chunk);
                        T update = offsets[l];
                        for (std::size_t i = b; i < e; ++i) {
                          body(begin + i, update, true);
                        }
                      },
                      gpusim::LaunchPolicy{gpusim::Schedule::Dynamic, 1});
}

}  // namespace mcmm::kokkosx
