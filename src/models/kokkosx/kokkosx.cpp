#include "models/kokkosx/kokkosx.hpp"

namespace mcmm::kokkosx {

std::string_view to_string(ExecSpace s) noexcept {
  switch (s) {
    case ExecSpace::Cuda:
      return "Cuda";
    case ExecSpace::HIP:
      return "HIP";
    case ExecSpace::SYCL:
      return "SYCL";
    case ExecSpace::OpenMPTarget:
      return "OpenMPTarget";
  }
  return "?";
}

bool exec_space_targets(ExecSpace s, Vendor v) noexcept {
  switch (s) {
    case ExecSpace::Cuda:
      return v == Vendor::NVIDIA;  // item 13
    case ExecSpace::HIP:
      return v == Vendor::AMD;  // item 28
    case ExecSpace::SYCL:
      return v == Vendor::Intel;  // item 42 (experimental)
    case ExecSpace::OpenMPTarget:
      return v == Vendor::NVIDIA || v == Vendor::AMD;  // items 13, 28
  }
  return false;
}

Execution::Execution(ExecSpace space, Vendor vendor)
    : space_(space), vendor_(vendor) {
  if (!exec_space_targets(space, vendor)) {
    throw UnsupportedCombination(
        Combination{vendor, Model::Kokkos, Language::Cpp},
        "Kokkos' " + std::string(to_string(space)) +
            " backend cannot target " + std::string(mcmm::to_string(vendor)));
  }
  device_ = &gpusim::Platform::instance().device(vendor);
  queue_ = device_->create_queue();
  // Each backend inherits the character of the runtime it sits on.
  switch (space) {
    case ExecSpace::Cuda:
      queue_->set_backend_profile(models::stack_profiles(
          models::layered_profile("Kokkos"), models::native_profile("CUDA")));
      break;
    case ExecSpace::HIP:
      queue_->set_backend_profile(models::stack_profiles(
          models::layered_profile("Kokkos"), models::native_profile("HIP")));
      break;
    case ExecSpace::SYCL:
      queue_->set_backend_profile(
          models::experimental_profile("Kokkos-SYCL"));
      break;
    case ExecSpace::OpenMPTarget:
      queue_->set_backend_profile(models::stack_profiles(
          models::layered_profile("Kokkos"),
          models::directive_profile("OpenMP")));
      break;
  }
}

}  // namespace mcmm::kokkosx
