#include "models/alpakax/alpakax.hpp"

namespace mcmm::alpakax {

WorkDiv work_div_for(std::size_t n, std::size_t threads_per_block) {
  WorkDiv wd;
  wd.threads_per_block = threads_per_block;
  wd.blocks = (n + threads_per_block - 1) / threads_per_block;
  if (wd.blocks == 0) wd.blocks = 1;
  return wd;
}

namespace detail {

gpusim::BackendProfile tag_profile(std::string_view tag, bool experimental) {
  if (experimental) {
    // AccGpuSyclIntel: experimental since v0.9.0 (item 43).
    return models::experimental_profile("Alpaka/" + std::string(tag));
  }
  // Mature Alpaka backends are thin template layers over the native
  // runtimes (items 15, 29).
  return models::stack_profiles(
      models::layered_profile("Alpaka"),
      models::native_profile(std::string(tag)));
}

}  // namespace detail
}  // namespace mcmm::alpakax
