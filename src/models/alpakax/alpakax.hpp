#pragma once
// alpakax: an Alpaka-style embedding (paper Sec. 4, items 15, 29, 43).
// Alpaka's signature idiom is the accelerator *tag type*: kernels and
// buffers are templated on the accelerator, and switching hardware is a
// template-parameter change. The tags here mirror the real ones —
// AccGpuCudaRt (NVIDIA), AccGpuHipRt (AMD), AccGpuSyclIntel (Intel,
// experimental since v0.9.0), AccCpuOmp (the OpenMP fallback that runs on
// NVIDIA/AMD offload routes in Fig. 1's reading).

#include <cstddef>
#include <memory>
#include <string_view>

#include "core/error.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/device.hpp"
#include "models/profiles.hpp"

namespace mcmm::alpakax {

// --- Accelerator tags ---

struct AccGpuCudaRt {
  static constexpr Vendor vendor = Vendor::NVIDIA;
  static constexpr std::string_view name = "AccGpuCudaRt";
  static constexpr bool experimental = false;
};

struct AccGpuHipRt {
  static constexpr Vendor vendor = Vendor::AMD;
  static constexpr std::string_view name = "AccGpuHipRt";
  static constexpr bool experimental = false;
};

struct AccGpuSyclIntel {
  static constexpr Vendor vendor = Vendor::Intel;
  static constexpr std::string_view name = "AccGpuSyclIntel";
  static constexpr bool experimental = true;  // since v0.9.0 (item 43)
};

/// The OpenMP offload fallback; vendor chosen at runtime.
struct AccOmp {
  static constexpr std::string_view name = "AccOmp";
  static constexpr bool experimental = false;
};

/// Work division: blocks x threads-per-block (alpaka's WorkDivMembers).
struct WorkDiv {
  std::size_t blocks{};
  std::size_t threads_per_block{};

  [[nodiscard]] std::size_t total() const noexcept {
    return blocks * threads_per_block;
  }
};

[[nodiscard]] WorkDiv work_div_for(std::size_t n,
                                   std::size_t threads_per_block = 256);

namespace detail {
[[nodiscard]] gpusim::BackendProfile tag_profile(std::string_view tag,
                                                 bool experimental);
}

/// A device handle + queue for an accelerator tag.
template <typename TAcc>
class Queue {
 public:
  Queue()
      : device_(&gpusim::Platform::instance().device(TAcc::vendor)),
        queue_(device_->create_queue()) {
    queue_->set_backend_profile(
        detail::tag_profile(TAcc::name, TAcc::experimental));
  }

  [[nodiscard]] static constexpr Vendor vendor() noexcept {
    return TAcc::vendor;
  }
  [[nodiscard]] gpusim::Device& device() noexcept { return *device_; }
  [[nodiscard]] gpusim::Queue& queue() noexcept { return *queue_; }
  [[nodiscard]] double simulated_time_us() const noexcept {
    return queue_->simulated_time_us();
  }
  void wait() noexcept { queue_->synchronize(); }

 private:
  gpusim::Device* device_;
  std::unique_ptr<gpusim::Queue> queue_;
};

/// The OpenMP-offload fallback picks its platform at runtime (items 29 and
/// 43: Alpaka "can fall back to an OpenMP backend").
template <>
class Queue<AccOmp> {
 public:
  explicit Queue(Vendor vendor)
      : vendor_(vendor),
        device_(&gpusim::Platform::instance().device(vendor)),
        queue_(device_->create_queue()) {
    queue_->set_backend_profile(models::stack_profiles(
        models::layered_profile("Alpaka"),
        models::directive_profile("OpenMP")));
  }

  [[nodiscard]] Vendor vendor() const noexcept { return vendor_; }
  [[nodiscard]] gpusim::Device& device() noexcept { return *device_; }
  [[nodiscard]] gpusim::Queue& queue() noexcept { return *queue_; }
  [[nodiscard]] double simulated_time_us() const noexcept {
    return queue_->simulated_time_us();
  }
  void wait() noexcept { queue_->synchronize(); }

 private:
  Vendor vendor_;
  gpusim::Device* device_;
  std::unique_ptr<gpusim::Queue> queue_;
};

/// A device buffer bound to an accelerator's device.
template <typename T, typename TAcc>
class Buf {
 public:
  Buf(Queue<TAcc>& queue, std::size_t count)
      : device_(&queue.device()),
        size_(count),
        data_(static_cast<T*>(device_->allocate(count * sizeof(T)))) {}

  ~Buf() {
    if (data_ != nullptr) device_->deallocate(data_);
  }

  Buf(const Buf&) = delete;
  Buf& operator=(const Buf&) = delete;
  Buf(Buf&& other) noexcept
      : device_(other.device_), size_(other.size_), data_(other.data_) {
    other.data_ = nullptr;
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  gpusim::Device* device_;
  std::size_t size_;
  T* data_;
};

template <typename T, typename TAcc>
[[nodiscard]] Buf<T, TAcc> alloc_buf(Queue<TAcc>& queue, std::size_t count) {
  return Buf<T, TAcc>(queue, count);
}

template <typename T, typename TAcc>
void memcpy_to_device(Queue<TAcc>& queue, Buf<T, TAcc>& dst, const T* src,
                      std::size_t count) {
  queue.queue().memcpy(dst.data(), src, count * sizeof(T),
                       gpusim::CopyKind::HostToDevice);
}

template <typename T, typename TAcc>
void memcpy_to_host(Queue<TAcc>& queue, T* dst, const Buf<T, TAcc>& src,
                    std::size_t count) {
  queue.queue().memcpy(dst, src.data(), count * sizeof(T),
                       gpusim::CopyKind::DeviceToHost);
}

/// Per-thread accelerator context passed to kernels (thread index access,
/// like alpaka's `acc` parameter).
struct AccCtx {
  std::size_t global_thread_idx{};
  std::size_t total_threads{};
};

/// Executes `kernel(acc, args...)` once per thread of the work division
/// (alpaka::exec analogue).
template <typename TAcc, typename Kernel, typename... Args>
void exec(Queue<TAcc>& queue, const WorkDiv& work_div,
          const gpusim::KernelCosts& costs, Kernel&& kernel, Args&&... args) {
  const std::size_t total = work_div.total();
  const gpusim::LaunchConfig cfg = gpusim::launch_1d(
      total, static_cast<std::uint32_t>(work_div.threads_per_block));
  queue.queue().launch(cfg, costs, [&](const gpusim::WorkItem& item) {
    const std::size_t i = item.global_x();
    if (i < total) {
      kernel(AccCtx{i, total}, args...);
    }
  });
}

}  // namespace mcmm::alpakax
