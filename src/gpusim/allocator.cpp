#include "gpusim/allocator.hpp"

#include <cstdlib>
#include <new>

namespace mcmm::gpusim {

DeviceAllocator::~DeviceAllocator() {
  // Free any leaked blocks; leak *detection* is the caller's job via
  // live_allocations().
  for (const auto& [base, block] : blocks_) {
    std::free(const_cast<void*>(base));
  }
}

void* DeviceAllocator::allocate(std::size_t bytes) {
  const std::lock_guard lock(mutex_);
  if (fault_plan_.fail_allocation_after >= 0) {
    if (fault_plan_.fail_allocation_after == 0) {
      fault_plan_.fail_allocation_after = -1;
      throw OutOfMemory(bytes, capacity_ - used_);
    }
    --fault_plan_.fail_allocation_after;
  }
  if (bytes > capacity_ || used_ > capacity_ - bytes) {
    throw OutOfMemory(bytes, capacity_ - used_);
  }
  // Zero-byte allocations still get a unique address.
  void* p = std::malloc(bytes == 0 ? 1 : bytes);
  if (p == nullptr) throw std::bad_alloc();
  blocks_.emplace(p, Block{bytes});
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  return p;
}

void DeviceAllocator::deallocate(void* p) {
  const std::lock_guard lock(mutex_);
  const auto it = blocks_.find(p);
  if (it == blocks_.end()) {
    throw InvalidPointer("deallocate: pointer is not a live device "
                         "allocation (double free or foreign pointer)");
  }
  used_ -= it->second.bytes;
  blocks_.erase(it);
  std::free(p);
}

bool DeviceAllocator::owns(const void* p) const {
  const std::lock_guard lock(mutex_);
  if (blocks_.empty()) return false;
  auto it = blocks_.upper_bound(p);
  if (it == blocks_.begin()) return false;
  --it;
  const auto* base = static_cast<const std::byte*>(it->first);
  const auto* probe = static_cast<const std::byte*>(p);
  return probe < base + (it->second.bytes == 0 ? 1 : it->second.bytes);
}

void DeviceAllocator::check_range(const void* p, std::size_t bytes) const {
  const std::lock_guard lock(mutex_);
  auto it = blocks_.upper_bound(p);
  if (it == blocks_.begin()) {
    throw InvalidPointer("range check: pointer is not device memory");
  }
  --it;
  const auto* base = static_cast<const std::byte*>(it->first);
  const auto* probe = static_cast<const std::byte*>(p);
  if (probe >= base + it->second.bytes ||
      bytes > it->second.bytes -
                  static_cast<std::size_t>(probe - base)) {
    throw InvalidPointer("range check: access runs past the end of the "
                         "device allocation");
  }
}

std::size_t DeviceAllocator::used_bytes() const {
  const std::lock_guard lock(mutex_);
  return used_;
}

std::size_t DeviceAllocator::peak_bytes() const {
  const std::lock_guard lock(mutex_);
  return peak_;
}

std::size_t DeviceAllocator::live_allocations() const {
  const std::lock_guard lock(mutex_);
  return blocks_.size();
}

void DeviceAllocator::set_fault_plan(const FaultPlan& plan) {
  const std::lock_guard lock(mutex_);
  fault_plan_ = plan;
}

}  // namespace mcmm::gpusim
