#include "gpusim/allocator.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

namespace mcmm::gpusim {
namespace {

std::atomic<std::size_t> g_default_guard_bytes{0};

[[nodiscard]] std::size_t padded_size(std::size_t bytes) noexcept {
  // Zero-byte allocations still occupy one byte so they get a unique
  // address.
  return bytes == 0 ? 1 : bytes;
}

[[nodiscard]] std::string describe(std::uint64_t id,
                                   const std::string& origin,
                                   std::size_t bytes) {
  std::string s = "allocation #" + std::to_string(id) + " ('" +
                  (origin.empty() ? std::string("untagged") : origin) +
                  "', " + std::to_string(bytes) + " bytes)";
  return s;
}

}  // namespace

DeviceAllocator::DeviceAllocator(std::size_t capacity_bytes)
    : capacity_(capacity_bytes),
      guard_(g_default_guard_bytes.load(std::memory_order_relaxed)) {}

DeviceAllocator::~DeviceAllocator() {
  // Free any leaked blocks; leak *detection* is the caller's job via
  // live_blocks()/live_allocations().
  for (const auto& [base, block] : blocks_) {
    std::free(static_cast<std::byte*>(const_cast<void*>(base)) -
              block.guard);
  }
  for (const FreedBlock& f : quarantine_) {
    if (f.raw != nullptr) std::free(f.raw);
  }
}

void DeviceAllocator::set_default_guard_bytes(std::size_t guard) noexcept {
  g_default_guard_bytes.store(guard, std::memory_order_relaxed);
}

void* DeviceAllocator::allocate(std::size_t bytes, std::string_view origin) {
  const std::lock_guard lock(mutex_);
  if (fault_plan_.fail_allocation_after == 0) {
    fault_plan_.fail_allocation_after = -1;  // one-shot
    throw OutOfMemory(bytes, capacity_ - used_);
  }
  if (bytes > capacity_ || used_ > capacity_ - bytes) {
    throw OutOfMemory(bytes, capacity_ - used_);
  }
  const std::size_t guard = guard_;
  auto* raw =
      static_cast<std::byte*>(std::malloc(padded_size(bytes) + 2 * guard));
  if (raw == nullptr) throw std::bad_alloc();
  if (guard != 0) {
    std::memset(raw, kCanaryByte, guard);
    std::memset(raw + guard + bytes, kCanaryByte, guard);
  }
  std::byte* p = raw + guard;
  blocks_.emplace(p, Block{bytes, guard, next_id_++, std::string(origin)});
  used_ += bytes;
  peak_ = std::max(peak_, used_);
  // The countdown advances only on success, and only here, under the same
  // mutex hold that made the allocation — so concurrent allocators observe
  // exactly one injected fault after exactly N successes.
  if (fault_plan_.fail_allocation_after > 0) {
    --fault_plan_.fail_allocation_after;
  }
  return p;
}

void DeviceAllocator::deallocate(void* p) {
  const std::lock_guard lock(mutex_);
  const auto it = blocks_.find(p);
  if (it == blocks_.end()) {
    for (const FreedBlock& f : quarantine_) {
      if (f.base == p) {
        throw InvalidPointer(
            "deallocate: double free of " +
            describe(f.id, f.origin, f.bytes));
      }
    }
    throw InvalidPointer("deallocate: pointer is not a live device "
                         "allocation (double free or foreign pointer)");
  }
  check_block_canaries(it->first, it->second, pending_violations_);
  used_ -= it->second.bytes;
  std::byte* raw = static_cast<std::byte*>(p) - it->second.guard;
  FreedBlock freed{p, it->second.bytes, it->second.id, it->second.origin,
                   nullptr};
  if (it->second.guard != 0) {
    // Sanitizer mode: keep the backing store alive while quarantined so an
    // instrumented use-after-free access stays a *simulated* defect.
    std::memset(raw, kCanaryByte,
                padded_size(it->second.bytes) + 2 * it->second.guard);
    freed.raw = raw;
  } else {
    std::free(raw);
  }
  quarantine_.push_back(std::move(freed));
  if (quarantine_.size() > kQuarantineEntries) {
    if (quarantine_.front().raw != nullptr) {
      std::free(quarantine_.front().raw);
    }
    quarantine_.pop_front();
  }
  blocks_.erase(it);
}

bool DeviceAllocator::owns(const void* p) const {
  const std::lock_guard lock(mutex_);
  if (blocks_.empty()) return false;
  auto it = blocks_.upper_bound(p);
  if (it == blocks_.begin()) return false;
  --it;
  const auto* base = static_cast<const std::byte*>(it->first);
  const auto* probe = static_cast<const std::byte*>(p);
  return probe < base + padded_size(it->second.bytes);
}

RangeQuery DeviceAllocator::query_range(const void* p,
                                        std::size_t bytes) const {
  const std::lock_guard lock(mutex_);
  const auto* probe = static_cast<const std::byte*>(p);

  // Candidate live block: the last block whose *red-zone-extended* range
  // could contain p. Check the preceding block first (covers interior and
  // back red zone), then the following one (front red zone).
  auto consider = [&](std::map<const void*, Block>::const_iterator it)
      -> RangeQuery {
    const auto* base = static_cast<const std::byte*>(it->first);
    const Block& b = it->second;
    const std::byte* lo = base - b.guard;
    const std::byte* hi = base + padded_size(b.bytes) + b.guard;
    if (probe < lo || probe >= hi) return RangeQuery{};
    RangeQuery q;
    q.id = b.id;
    q.origin = b.origin;
    q.bytes = b.bytes;
    q.offset = probe - base;
    const bool inside = probe >= base && bytes <= b.bytes &&
                        static_cast<std::size_t>(probe - base) <=
                            b.bytes - bytes;
    q.status = inside ? RangeStatus::Ok : RangeStatus::OutOfBounds;
    return q;
  };

  if (!blocks_.empty()) {
    auto it = blocks_.upper_bound(p);
    if (it != blocks_.begin()) {
      auto prev = it;
      --prev;
      RangeQuery q = consider(prev);
      if (q.status != RangeStatus::Unknown) return q;
    }
    if (it != blocks_.end()) {
      RangeQuery q = consider(it);
      if (q.status != RangeStatus::Unknown) return q;
    }
  }
  // Not live: was it freed recently? (Newest match wins: the address may
  // have been recycled through several quarantined blocks.)
  for (auto it = quarantine_.rbegin(); it != quarantine_.rend(); ++it) {
    const auto* base = static_cast<const std::byte*>(it->base);
    if (probe >= base && probe < base + padded_size(it->bytes)) {
      RangeQuery q;
      q.status = RangeStatus::UseAfterFree;
      q.id = it->id;
      q.origin = it->origin;
      q.bytes = it->bytes;
      q.offset = probe - base;
      return q;
    }
  }
  return RangeQuery{};
}

void DeviceAllocator::check_range(const void* p, std::size_t bytes) const {
  const RangeQuery q = query_range(p, bytes);
  switch (q.status) {
    case RangeStatus::Ok:
      return;
    case RangeStatus::OutOfBounds:
      throw InvalidPointer(
          "range check: access of " + std::to_string(bytes) +
          " bytes at offset " + std::to_string(q.offset) + " runs past " +
          describe(q.id, q.origin, q.bytes));
    case RangeStatus::UseAfterFree:
      throw InvalidPointer("range check: use-after-free of " +
                           describe(q.id, q.origin, q.bytes) +
                           " at offset " + std::to_string(q.offset));
    case RangeStatus::Unknown:
      break;
  }
  throw InvalidPointer("range check: pointer is not device memory");
}

void DeviceAllocator::set_guard_bytes(std::size_t guard) {
  const std::lock_guard lock(mutex_);
  guard_ = guard;
}

std::size_t DeviceAllocator::guard_bytes() const {
  const std::lock_guard lock(mutex_);
  return guard_;
}

void DeviceAllocator::check_block_canaries(
    const void* base, const Block& block,
    std::vector<CanaryViolation>& out) const {
  if (block.guard == 0) return;
  const auto* user = static_cast<const std::byte*>(base);
  const auto canary = static_cast<std::byte>(kCanaryByte);
  auto report = [&](bool front, const std::byte* zone) {
    for (std::size_t i = 0; i < block.guard; ++i) {
      if (zone[i] != canary) {
        CanaryViolation v;
        v.base = base;
        v.bytes = block.bytes;
        v.id = block.id;
        v.origin = block.origin;
        v.front = front;
        v.offset = (zone + i) - user;
        out.push_back(std::move(v));
        return;  // first corrupted byte per zone is enough
      }
    }
  };
  report(/*front=*/true, user - block.guard);
  report(/*front=*/false, user + block.bytes);
}

std::vector<CanaryViolation> DeviceAllocator::verify_canaries() const {
  const std::lock_guard lock(mutex_);
  std::vector<CanaryViolation> out = std::move(pending_violations_);
  pending_violations_.clear();
  for (const auto& [base, block] : blocks_) {
    check_block_canaries(base, block, out);
  }
  return out;
}

std::vector<LiveBlock> DeviceAllocator::live_blocks() const {
  const std::lock_guard lock(mutex_);
  std::vector<LiveBlock> out;
  out.reserve(blocks_.size());
  for (const auto& [base, block] : blocks_) {
    out.push_back(LiveBlock{base, block.bytes, block.id, block.origin});
  }
  return out;
}

std::size_t DeviceAllocator::used_bytes() const {
  const std::lock_guard lock(mutex_);
  return used_;
}

std::size_t DeviceAllocator::peak_bytes() const {
  const std::lock_guard lock(mutex_);
  return peak_;
}

std::size_t DeviceAllocator::live_allocations() const {
  const std::lock_guard lock(mutex_);
  return blocks_.size();
}

void DeviceAllocator::set_fault_plan(const FaultPlan& plan) {
  const std::lock_guard lock(mutex_);
  fault_plan_ = plan;
}

}  // namespace mcmm::gpusim
