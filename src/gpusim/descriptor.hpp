#pragma once
// Device descriptors for the three simulated HPC GPU platforms. The numbers
// are modelled on the public spec sheets of the devices the paper names
// (MI250X for Frontier, Ponte Vecchio for Aurora, and an H100-class NVIDIA
// part); only *relative* magnitudes matter for the reproduced figures.

#include <cstddef>
#include <string>

#include "core/types.hpp"

namespace mcmm::gpusim {

struct DeviceDescriptor {
  Vendor vendor{Vendor::NVIDIA};
  std::string name;
  int compute_units{};              ///< SMs / CUs / Xe cores
  double clock_ghz{};
  std::size_t memory_bytes{};
  double mem_bandwidth_gbps{};      ///< device memory bandwidth, GB/s
  double pcie_bandwidth_gbps{};     ///< host <-> device link, GB/s
  double p2p_bandwidth_gbps{};      ///< device <-> device link, GB/s
  double kernel_launch_latency_us{};
  double copy_latency_us{};
  double peak_tflops_fp64{};
  std::uint32_t max_threads_per_block{1024};
  std::uint32_t warp_size{32};
};

/// AMD Instinct MI250X-like descriptor (one GCD).
[[nodiscard]] DeviceDescriptor mi250x_like();

/// Intel Data Center GPU Max (Ponte Vecchio)-like descriptor.
[[nodiscard]] DeviceDescriptor ponte_vecchio_like();

/// NVIDIA H100 (SXM)-like descriptor.
[[nodiscard]] DeviceDescriptor h100_like();

/// The default simulated device of a vendor platform.
[[nodiscard]] DeviceDescriptor descriptor_for(Vendor v);

/// A deliberately small descriptor for memory-pressure tests.
[[nodiscard]] DeviceDescriptor tiny_test_device(std::size_t memory_bytes);

}  // namespace mcmm::gpusim
