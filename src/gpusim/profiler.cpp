#include "gpusim/profiler.hpp"

namespace mcmm::gpusim {
namespace profiler_detail {

std::atomic<const ProfilerHooks*> g_hooks{nullptr};
thread_local const char* t_kernel_label = nullptr;

}  // namespace profiler_detail

void install_profiler_hooks(const ProfilerHooks* hooks) noexcept {
  profiler_detail::g_hooks.store(hooks, std::memory_order_release);
}

}  // namespace mcmm::gpusim
