#pragma once
// Simulated device-memory allocator. Device memory is host memory, but every
// allocation is tracked so the runtime can validate pointer provenance,
// detect leaks, account capacity, and inject failures — the properties real
// GPU runtimes enforce and tests want to exercise.

#include <cstddef>
#include <map>
#include <mutex>

#include "gpusim/error.hpp"

namespace mcmm::gpusim {

/// Deterministic fault injection: the Nth allocation from now fails.
struct FaultPlan {
  /// -1 = no injected faults; 0 = next allocation fails, etc.
  long long fail_allocation_after{-1};
};

class DeviceAllocator {
 public:
  explicit DeviceAllocator(std::size_t capacity_bytes)
      : capacity_(capacity_bytes) {}
  ~DeviceAllocator();

  DeviceAllocator(const DeviceAllocator&) = delete;
  DeviceAllocator& operator=(const DeviceAllocator&) = delete;

  /// Allocates `bytes` of simulated device memory. Throws OutOfMemory when
  /// capacity would be exceeded or an injected fault triggers. Zero-byte
  /// allocations return a unique non-null pointer (like cudaMalloc).
  [[nodiscard]] void* allocate(std::size_t bytes);

  /// Frees a pointer previously returned by allocate. Throws InvalidPointer
  /// for unknown or double-freed pointers.
  void deallocate(void* p);

  /// True when p points into a live allocation (interior pointers count).
  [[nodiscard]] bool owns(const void* p) const;

  /// Validates that [p, p + bytes) lies within one live allocation; throws
  /// InvalidPointer otherwise.
  void check_range(const void* p, std::size_t bytes) const;

  [[nodiscard]] std::size_t used_bytes() const;
  [[nodiscard]] std::size_t peak_bytes() const;
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t live_allocations() const;

  void set_fault_plan(const FaultPlan& plan);

 private:
  struct Block {
    std::size_t bytes{};
  };

  mutable std::mutex mutex_;
  std::map<const void*, Block> blocks_;  ///< keyed by base pointer
  std::size_t capacity_;
  std::size_t used_{0};
  std::size_t peak_{0};
  FaultPlan fault_plan_{};
};

}  // namespace mcmm::gpusim
