#pragma once
// Simulated device-memory allocator. Device memory is host memory, but every
// allocation is tracked so the runtime can validate pointer provenance,
// detect leaks, account capacity, and inject failures — the properties real
// GPU runtimes enforce and tests want to exercise.
//
// Sanitizer support (gpusan memcheck/leakcheck): when guard bytes are
// configured, each allocation is surrounded by canary-filled red zones that
// are verified at queue sync points, on deallocate, and at device teardown;
// every block additionally carries an origin tag and a monotonically
// increasing allocation id so findings can name the offending allocation.
// A bounded quarantine of recently freed blocks lets range checks attribute
// use-after-free accesses to the allocation they once belonged to.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "gpusim/error.hpp"

namespace mcmm::gpusim {

/// Deterministic fault injection: after `fail_allocation_after` further
/// *successful* allocations, the next allocation fails (one-shot).
/// Allocations that fail for other reasons (capacity) do not advance the
/// countdown, so the injected fault always lands on the same logical
/// allocation regardless of how capacity pressure interleaves — and, since
/// the countdown is advanced under the allocator mutex, exactly one fault
/// fires even when many threads allocate concurrently.
struct FaultPlan {
  /// -1 = no injected faults; 0 = next allocation fails, N = fail after N
  /// more successful allocations.
  long long fail_allocation_after{-1};
};

/// A live allocation, as reported to leakcheck.
struct LiveBlock {
  const void* base{};
  std::size_t bytes{};
  std::uint64_t id{};     ///< allocation sequence number (1-based)
  std::string origin;     ///< tag supplied at allocation ("" = untagged)
};

/// A corrupted red zone, as reported to memcheck.
struct CanaryViolation {
  const void* base{};         ///< user base pointer of the allocation
  std::size_t bytes{};        ///< user-visible size
  std::uint64_t id{};
  std::string origin;
  bool front{};               ///< corrupted zone precedes the allocation
  std::ptrdiff_t offset{};    ///< first corrupted byte, relative to base
};

/// Non-throwing classification of a [p, p+bytes) range (gpusan strict
/// accessor checks run in noexcept kernel bodies, so they cannot use the
/// throwing check_range).
enum class RangeStatus : std::uint8_t {
  Ok,            ///< inside one live allocation
  OutOfBounds,   ///< overlaps a live allocation but escapes it
  UseAfterFree,  ///< inside a quarantined (recently freed) allocation
  Unknown,       ///< not this allocator's memory at all
};

struct RangeQuery {
  RangeStatus status{RangeStatus::Unknown};
  std::uint64_t id{};         ///< owning/former allocation, when known
  std::string origin;
  std::size_t bytes{};        ///< that allocation's user size
  std::ptrdiff_t offset{};    ///< p relative to the allocation base
};

class DeviceAllocator {
 public:
  explicit DeviceAllocator(std::size_t capacity_bytes);
  ~DeviceAllocator();

  DeviceAllocator(const DeviceAllocator&) = delete;
  DeviceAllocator& operator=(const DeviceAllocator&) = delete;

  /// Byte value the red zones are filled with.
  static constexpr std::uint8_t kCanaryByte = 0xCB;

  /// Allocates `bytes` of simulated device memory. Throws OutOfMemory when
  /// capacity would be exceeded or an injected fault triggers. Zero-byte
  /// allocations return a unique non-null pointer (like cudaMalloc).
  /// `origin` tags the allocation for sanitizer reports (a Kokkos view
  /// label, "syclx::buffer", ...).
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::string_view origin = {});

  /// Frees a pointer previously returned by allocate. Throws InvalidPointer
  /// for unknown or double-freed pointers. Verifies the block's red zones
  /// first; corruption found here is queued for the next verify_canaries().
  void deallocate(void* p);

  /// True when p points into a live allocation (interior pointers count).
  [[nodiscard]] bool owns(const void* p) const;

  /// Validates that [p, p + bytes) lies within one live allocation; throws
  /// InvalidPointer otherwise, naming the nearest allocation (including
  /// quarantined ones for use-after-free).
  void check_range(const void* p, std::size_t bytes) const;

  /// Non-throwing form of check_range with attribution (sanitizer path).
  [[nodiscard]] RangeQuery query_range(const void* p,
                                       std::size_t bytes) const;

  /// Red-zone size applied to subsequent allocations (0 disables guards).
  void set_guard_bytes(std::size_t guard);
  [[nodiscard]] std::size_t guard_bytes() const;

  /// Process-wide default guard size for newly constructed allocators
  /// (gpusan sets this before lazily constructed Platform devices exist).
  static void set_default_guard_bytes(std::size_t guard) noexcept;

  /// Scans every live block's red zones and returns all corrupted ones,
  /// including corruption detected earlier at deallocate time. Violations
  /// are reported once per scan; the consumer deduplicates across scans by
  /// allocation id and side.
  [[nodiscard]] std::vector<CanaryViolation> verify_canaries() const;

  /// Snapshot of all live allocations (leakcheck input).
  [[nodiscard]] std::vector<LiveBlock> live_blocks() const;

  [[nodiscard]] std::size_t used_bytes() const;
  [[nodiscard]] std::size_t peak_bytes() const;
  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t live_allocations() const;

  void set_fault_plan(const FaultPlan& plan);

 private:
  struct Block {
    std::size_t bytes{};    ///< user-visible size
    std::size_t guard{};    ///< red-zone size on each side at allocation
    std::uint64_t id{};
    std::string origin;
  };

  /// Quarantine entry for use-after-free attribution. Guarded blocks
  /// (sanitizer mode) keep their backing memory alive while quarantined —
  /// `raw` owns it and is freed on eviction — so an instrumented
  /// use-after-free access reads poisoned-but-valid host memory instead of
  /// genuinely freed heap (ASan's quarantine does the same). Unguarded
  /// blocks free immediately and keep raw null.
  struct FreedBlock {
    const void* base{};
    std::size_t bytes{};
    std::uint64_t id{};
    std::string origin;
    void* raw{};  ///< deferred-freed backing store, null if freed already
  };

  static constexpr std::size_t kQuarantineEntries = 64;

  void check_block_canaries(const void* base, const Block& block,
                            std::vector<CanaryViolation>& out) const;

  mutable std::mutex mutex_;
  std::map<const void*, Block> blocks_;  ///< keyed by user base pointer
  std::deque<FreedBlock> quarantine_;    ///< most recent frees, bounded
  mutable std::vector<CanaryViolation> pending_violations_;
  std::size_t capacity_;
  std::size_t used_{0};
  std::size_t peak_{0};
  std::size_t guard_{0};
  std::uint64_t next_id_{1};
  FaultPlan fault_plan_{};
};

}  // namespace mcmm::gpusim
