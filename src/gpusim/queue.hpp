#pragma once
// In-order execution queue of a simulated device. Operations execute
// eagerly in submission order (the semantics of a synchronized-on-every-op
// stream); each operation advances the queue's simulated clock according to
// the analytic cost model and returns timing via Event.
//
// Kernel dispatch is allocation-free: the body is handed to the fork-join
// engine as a function pointer + stack context (no std::function), and the
// 3-D work-item coordinates are advanced by incremental carry instead of a
// per-element div/mod chain.

#include <cstring>
#include <type_traits>

#include "gpusim/allocator.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/sanitizer.hpp"
#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusim {

class Device;

/// A completed operation's position on the simulated timeline.
struct Event {
  double sim_begin_us{0};
  double sim_end_us{0};

  [[nodiscard]] double duration_us() const noexcept {
    return sim_end_us - sim_begin_us;
  }
};

/// Direction of an explicit memcpy.
enum class CopyKind { HostToDevice, DeviceToHost, DeviceToDevice };

/// Host-side scheduling of a launch (how the work-item range is handed to
/// the pool's threads). Purely an execution knob: it never changes the
/// simulated time or the set of work items executed. Dynamic scheduling
/// pays a little ticket traffic to keep imbalanced kernels (reductions
/// with few fat work items, stencils with ragged rows) off the critical
/// path of the slowest static chunk.
struct LaunchPolicy {
  Schedule schedule{Schedule::Static};
  std::uint64_t grain{0};  ///< dynamic sub-range size; 0 = engine default
};

class Queue {
 public:
  /// Created via Device::create_queue() / Device::default_queue().
  explicit Queue(Device& device);

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  [[nodiscard]] Device& device() noexcept { return *device_; }
  [[nodiscard]] const Device& device() const noexcept { return *device_; }

  /// Backend profile applied to subsequent kernel launches (set by the
  /// programming-model layer to reflect its software route).
  void set_backend_profile(BackendProfile profile) {
    profile_ = std::move(profile);
  }
  [[nodiscard]] const BackendProfile& backend_profile() const noexcept {
    return profile_;
  }

  /// Launches a kernel: body(item) runs once per work item, partitioned
  /// over the worker pool. Validates the configuration against device
  /// limits. Returns the simulated timing of the launch.
  template <typename Body>
  Event launch(const LaunchConfig& cfg, const KernelCosts& costs, Body&& body,
               LaunchPolicy policy = {}) {
    const std::uint64_t total = cfg.total_threads();
    if (total == 0 || cfg.block.volume() > max_threads_per_block_) {
      fail_launch(cfg);  // [[noreturn]]: empty shape or block over limit
    }
    using Thunk = LaunchThunk<std::remove_reference_t<Body>>;
    Thunk thunk{cfg, std::addressof(body), 0};
    const SanitizerHooks* hooks = sanitizer_hooks();
    if (hooks != nullptr && hooks->on_launch_begin != nullptr) {
      thunk.launch_id =
          hooks->on_launch_begin(hooks->ctx, *this, cfg, policy.schedule);
    }
    const ProfilerHooks* prof = profiler_hooks();
    std::uint64_t trace_id = 0;
    if (prof != nullptr && prof->on_launch_begin != nullptr) {
      trace_id = prof->on_launch_begin(prof->ctx, *this, cfg, policy.schedule,
                                       costs, kernel_label());
    }
    pool_->run_batch(total, &Thunk::run, &thunk, policy.schedule,
                     policy.grain);
    if (thunk.launch_id != 0 && hooks->on_launch_end != nullptr) {
      hooks->on_launch_end(hooks->ctx, *this, thunk.launch_id);
    }
    const Event e = advance_kernel(costs);
    if (trace_id != 0 && prof->on_launch_end != nullptr) {
      prof->on_launch_end(prof->ctx, *this, trace_id, e);
    }
    return e;
  }

  /// Explicit memcpy with direction validation: device pointers must come
  /// from this device's allocator, host pointers must not. Large copies
  /// are striped over the worker pool.
  Event memcpy(void* dst, const void* src, std::size_t bytes, CopyKind kind);

  /// memset on device memory (striped over the pool above a threshold).
  Event memset(void* dst, int value, std::size_t bytes);

  /// Records the current simulated time (an event-record marker on the
  /// profiler timeline).
  [[nodiscard]] Event record() const {
    if (const ProfilerHooks* prof = profiler_hooks();
        prof != nullptr && prof->on_event_record != nullptr) {
      prof->on_event_record(prof->ctx, *this, sim_time_us_);
    }
    return Event{sim_time_us_, sim_time_us_};
  }

  /// Barrier. Execution-wise a no-op: the queue is eager and in-order, and
  /// the fork-join engine joins every launch before it returns, so all
  /// submitted work is already complete here. Kept because real code
  /// synchronizes at these points and the model layers mirror that shape —
  /// and because the sanitizer verifies allocation red zones here, exactly
  /// where compute-sanitizer reports deferred memory errors.
  void synchronize() noexcept {
    const SanitizerHooks* hooks = sanitizer_hooks();
    if (hooks != nullptr && hooks->on_sync != nullptr) {
      hooks->on_sync(hooks->ctx, *this);
    }
    if (const ProfilerHooks* prof = profiler_hooks();
        prof != nullptr && prof->on_sync != nullptr) {
      prof->on_sync(prof->ctx, *this, sim_time_us_);
    }
  }

  /// Total simulated time consumed by this queue, microseconds.
  [[nodiscard]] double simulated_time_us() const noexcept {
    return sim_time_us_;
  }

 private:
  /// Stack-allocated bridge from the typed kernel body to the engine's
  /// type-erased ChunkFn. The body pointer refers to the caller's frame;
  /// the engine joins before launch() returns, so it never dangles.
  /// When the sanitizer tracks this launch (launch_id != 0), the thunk
  /// publishes the executing work item's linear id in a thread-local so
  /// instrumented accessors can attribute each access to a work item; the
  /// untracked path pays one predictable branch per item.
  template <typename Body>
  struct LaunchThunk {
    LaunchConfig cfg;
    Body* body;
    std::uint64_t launch_id;

    static void run(void* ctx, std::uint64_t begin, std::uint64_t end) {
      auto* self = static_cast<LaunchThunk*>(ctx);
      Body& body = *self->body;
      const std::uint64_t launch_id = self->launch_id;
      WorkItem item = begin == 0 ? first_work_item(self->cfg)
                                 : work_item_from_linear(self->cfg, begin);
      for (std::uint64_t i = begin;;) {
        if (launch_id != 0) set_current_work_item(launch_id, i);
        body(item);
        if (++i == end) break;
        advance_work_item(self->cfg, item);
      }
      if (launch_id != 0) clear_current_work_item();
    }
  };

  [[noreturn]] void fail_launch(const LaunchConfig& cfg) const;

  Event advance_kernel(const KernelCosts& costs) {
    return advance(kernel_time_us(*descriptor_, profile_, costs));
  }

  Event advance(double duration_us) {
    Event e;
    e.sim_begin_us = sim_time_us_;
    sim_time_us_ += duration_us;
    e.sim_end_us = sim_time_us_;
    return e;
  }

  Device* device_;
  const DeviceDescriptor* descriptor_;  ///< cached: hot path, Device opaque
  ThreadPool* pool_;
  std::uint64_t max_threads_per_block_;
  BackendProfile profile_{};
  double sim_time_us_{0};
};

}  // namespace mcmm::gpusim
