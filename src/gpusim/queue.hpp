#pragma once
// In-order execution queue of a simulated device. Operations execute
// eagerly in submission order (the semantics of a synchronized-on-every-op
// stream); each operation advances the queue's simulated clock according to
// the analytic cost model and returns timing via Event.
//
// Kernel dispatch is allocation-free: the body is handed to the fork-join
// engine as a function pointer + stack context (no std::function), and the
// 3-D work-item coordinates are advanced by incremental carry instead of a
// per-element div/mod chain.

#include <cstring>
#include <type_traits>

#include "gpusim/allocator.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/graph.hpp"
#include "gpusim/ops.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/sanitizer.hpp"
#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusim {

class Device;

class Queue {
 public:
  /// Created via Device::create_queue() / Device::default_queue().
  explicit Queue(Device& device);

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  [[nodiscard]] Device& device() noexcept { return *device_; }
  [[nodiscard]] const Device& device() const noexcept { return *device_; }

  /// Backend profile applied to subsequent kernel launches (set by the
  /// programming-model layer to reflect its software route).
  void set_backend_profile(BackendProfile profile) {
    profile_ = std::move(profile);
  }
  [[nodiscard]] const BackendProfile& backend_profile() const noexcept {
    return profile_;
  }

  /// Launches a kernel: body(item) runs once per work item, partitioned
  /// over the worker pool. Validates the configuration against device
  /// limits. Returns the simulated timing of the launch.
  template <typename Body>
  Event launch(const LaunchConfig& cfg, const KernelCosts& costs, Body&& body,
               LaunchPolicy policy = {}) {
    const std::uint64_t total = cfg.total_threads();
    if (total == 0 || cfg.block.volume() > max_threads_per_block_) {
      fail_launch(cfg);  // [[noreturn]]: empty shape or block over limit
    }
    if (capture_ != nullptr) {
      // Capture mode: record instead of executing. The clock does not move
      // (nothing ran); the duration is baked at graph instantiate from the
      // same descriptor/profile the eager path would have used here.
      capture_->record_kernel(cfg, costs, std::forward<Body>(body), policy,
                              kernel_label());
      return Event{sim_time_us_, sim_time_us_};
    }
    using Thunk = LaunchThunk<std::remove_reference_t<Body>>;
    Thunk thunk{cfg, std::addressof(body), 0};
    const SanitizerHooks* hooks = sanitizer_hooks();
    if (hooks != nullptr && hooks->on_launch_begin != nullptr) {
      thunk.launch_id =
          hooks->on_launch_begin(hooks->ctx, *this, cfg, policy.schedule);
    }
    const ProfilerHooks* prof = profiler_hooks();
    std::uint64_t trace_id = 0;
    if (prof != nullptr && prof->on_launch_begin != nullptr) {
      trace_id = prof->on_launch_begin(prof->ctx, *this, cfg, policy.schedule,
                                       costs, kernel_label());
    }
    pool_->run_batch(total, &Thunk::run, &thunk, policy.schedule,
                     policy.grain);
    if (thunk.launch_id != 0 && hooks->on_launch_end != nullptr) {
      hooks->on_launch_end(hooks->ctx, *this, thunk.launch_id);
    }
    const Event e = advance_kernel(costs);
    if (trace_id != 0 && prof->on_launch_end != nullptr) {
      prof->on_launch_end(prof->ctx, *this, trace_id, e);
    }
    return e;
  }

  /// Explicit memcpy with direction validation: device pointers must come
  /// from this device's allocator, host pointers must not. Large copies
  /// are striped over the worker pool.
  Event memcpy(void* dst, const void* src, std::size_t bytes, CopyKind kind);

  /// memset on device memory (striped over the pool above a threshold).
  Event memset(void* dst, int value, std::size_t bytes);

  /// Copies device memory of this queue's device into device memory of
  /// `dst_device` over the simulated inter-device link (NVLink / Infinity
  /// Fabric / Xe Link), billed by p2p_time_us against the slower endpoint.
  /// Same-device calls degrade to an ordinary DeviceToDevice memcpy. Not
  /// capturable into a graph (a graph is compiled for one device).
  Event memcpy_peer(void* dst, Device& dst_device, const void* src,
                    std::size_t bytes);

  /// Records the current simulated time (an event-record marker on the
  /// profiler timeline). In capture mode the marker is recorded as a
  /// zero-duration graph node instead.
  [[nodiscard]] Event record() const {
    if (capture_ != nullptr) {
      capture_->record_marker("event");
      return Event{sim_time_us_, sim_time_us_};
    }
    if (const ProfilerHooks* prof = profiler_hooks();
        prof != nullptr && prof->on_event_record != nullptr) {
      prof->on_event_record(prof->ctx, *this, sim_time_us_);
    }
    return Event{sim_time_us_, sim_time_us_};
  }

  /// Barrier. Execution-wise a no-op: the queue is eager and in-order, and
  /// the fork-join engine joins every launch before it returns, so all
  /// submitted work is already complete here. Kept because real code
  /// synchronizes at these points and the model layers mirror that shape —
  /// and because the sanitizer verifies allocation red zones here, exactly
  /// where compute-sanitizer reports deferred memory errors. In capture
  /// mode it records an event-wait marker node (CUDA stream capture treats
  /// in-stream synchronization points the same way).
  void synchronize() noexcept {
    if (capture_ != nullptr) {
      try {
        capture_->record_marker("sync");
      } catch (...) {  // vector growth OOM; the barrier itself cannot fail
      }
      return;
    }
    const SanitizerHooks* hooks = sanitizer_hooks();
    if (hooks != nullptr && hooks->on_sync != nullptr) {
      hooks->on_sync(hooks->ctx, *this);
    }
    if (const ProfilerHooks* prof = profiler_hooks();
        prof != nullptr && prof->on_sync != nullptr) {
      prof->on_sync(prof->ctx, *this, sim_time_us_);
    }
  }

  /// Puts the queue into capture mode: subsequent launches, memcpies,
  /// memsets, and event records are recorded into `graph` as a linear chain
  /// instead of executing. Throws CaptureError when this queue is already
  /// capturing (capture-while-capturing), the graph is being captured into
  /// by another queue, or the graph is not empty.
  void begin_capture(Graph& graph);

  /// Ends capture mode and returns the number of captured nodes. Throws
  /// CaptureError when the queue is not capturing.
  std::size_t end_capture();

  [[nodiscard]] bool capturing() const noexcept { return capture_ != nullptr; }

  /// Total simulated time consumed by this queue, microseconds.
  [[nodiscard]] double simulated_time_us() const noexcept {
    return sim_time_us_;
  }

 private:
  /// Stack-allocated bridge from the typed kernel body to the engine's
  /// type-erased ChunkFn. The body pointer refers to the caller's frame;
  /// the engine joins before launch() returns, so it never dangles.
  /// When the sanitizer tracks this launch (launch_id != 0), the thunk
  /// publishes the executing work item's linear id in a thread-local so
  /// instrumented accessors can attribute each access to a work item; the
  /// untracked path pays one predictable branch per item.
  template <typename Body>
  struct LaunchThunk {
    LaunchConfig cfg;
    Body* body;
    std::uint64_t launch_id;

    static void run(void* ctx, std::uint64_t begin, std::uint64_t end) {
      auto* self = static_cast<LaunchThunk*>(ctx);
      Body& body = *self->body;
      const std::uint64_t launch_id = self->launch_id;
      WorkItem item = begin == 0 ? first_work_item(self->cfg)
                                 : work_item_from_linear(self->cfg, begin);
      for (std::uint64_t i = begin;;) {
        if (launch_id != 0) set_current_work_item(launch_id, i);
        body(item);
        if (++i == end) break;
        advance_work_item(self->cfg, item);
      }
      if (launch_id != 0) clear_current_work_item();
    }
  };

  [[noreturn]] void fail_launch(const LaunchConfig& cfg) const;

  Event advance_kernel(const KernelCosts& costs) {
    return advance(kernel_time_us(*descriptor_, profile_, costs));
  }

  Event advance(double duration_us) {
    Event e;
    e.sim_begin_us = sim_time_us_;
    sim_time_us_ += duration_us;
    e.sim_end_us = sim_time_us_;
    return e;
  }

  /// ExecutableGraph replays through the queue's private clock/pool seam
  /// (advance + pool_) — the whole point is to bypass the per-launch path.
  friend class ExecutableGraph;

  Device* device_;
  const DeviceDescriptor* descriptor_;  ///< cached: hot path, Device opaque
  ThreadPool* pool_;
  std::uint64_t max_threads_per_block_;
  BackendProfile profile_{};
  double sim_time_us_{0};
  Graph* capture_{nullptr};  ///< non-null while in capture mode
};

}  // namespace mcmm::gpusim
