#pragma once
// In-order execution queue of a simulated device. Operations execute
// eagerly in submission order (the semantics of a synchronized-on-every-op
// stream); each operation advances the queue's simulated clock according to
// the analytic cost model and returns timing via Event.

#include <cstring>
#include <functional>

#include "gpusim/allocator.hpp"
#include "gpusim/costs.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusim {

class Device;

/// A completed operation's position on the simulated timeline.
struct Event {
  double sim_begin_us{0};
  double sim_end_us{0};

  [[nodiscard]] double duration_us() const noexcept {
    return sim_end_us - sim_begin_us;
  }
};

/// Direction of an explicit memcpy.
enum class CopyKind { HostToDevice, DeviceToHost, DeviceToDevice };

class Queue {
 public:
  /// Created via Device::create_queue() / Device::default_queue().
  explicit Queue(Device& device);

  Queue(const Queue&) = delete;
  Queue& operator=(const Queue&) = delete;

  [[nodiscard]] Device& device() noexcept { return *device_; }

  /// Backend profile applied to subsequent kernel launches (set by the
  /// programming-model layer to reflect its software route).
  void set_backend_profile(BackendProfile profile) {
    profile_ = std::move(profile);
  }
  [[nodiscard]] const BackendProfile& backend_profile() const noexcept {
    return profile_;
  }

  /// Launches a kernel: body(item) runs once per work item, partitioned
  /// over the worker pool. Validates the configuration against device
  /// limits. Returns the simulated timing of the launch.
  template <typename Body>
  Event launch(const LaunchConfig& cfg, const KernelCosts& costs,
               Body&& body) {
    validate_launch(cfg);
    const std::uint64_t total = cfg.total_threads();
    const std::function<void(std::uint64_t, std::uint64_t)> chunk =
        [&](std::uint64_t begin, std::uint64_t end) {
          for (std::uint64_t i = begin; i < end; ++i) {
            body(work_item_from_linear(cfg, i));
          }
        };
    pool_->parallel_for_chunks(total, chunk);
    return advance_kernel(costs);
  }

  /// Explicit memcpy with direction validation: device pointers must come
  /// from this device's allocator, host pointers must not.
  Event memcpy(void* dst, const void* src, std::size_t bytes, CopyKind kind);

  /// memset on device memory.
  Event memset(void* dst, int value, std::size_t bytes);

  /// Records the current simulated time.
  [[nodiscard]] Event record() const {
    return Event{sim_time_us_, sim_time_us_};
  }

  /// Waits for all submitted work (a no-op under eager execution, kept for
  /// API fidelity — model layers call it where real code would).
  void synchronize() const noexcept {}

  /// Total simulated time consumed by this queue, microseconds.
  [[nodiscard]] double simulated_time_us() const noexcept {
    return sim_time_us_;
  }

 private:
  void validate_launch(const LaunchConfig& cfg) const;
  Event advance_kernel(const KernelCosts& costs);
  Event advance(double duration_us);

  Device* device_;
  ThreadPool* pool_;
  BackendProfile profile_{};
  double sim_time_us_{0};
};

}  // namespace mcmm::gpusim
