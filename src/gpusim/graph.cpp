#include "gpusim/graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "gpusim/device.hpp"
#include "gpusim/queue.hpp"
#include "gpusim/sanitizer.hpp"
#include "gpusim/stripe.hpp"

namespace mcmm::gpusim {
namespace {

/// "node #3 (memcpy 'triad')" — how findings name a node.
std::string node_name(NodeId id, GraphNodeKind kind,
                      const std::string& label) {
  const char* what = "marker";
  switch (kind) {
    case GraphNodeKind::Kernel: what = "kernel"; break;
    case GraphNodeKind::Memcpy: what = "memcpy"; break;
    case GraphNodeKind::Memset: what = "memset"; break;
    case GraphNodeKind::Marker: what = "marker"; break;
  }
  std::string name = "node #" + std::to_string(id) + " (" + what;
  if (!label.empty()) name += " '" + label + "'";
  name += ")";
  return name;
}

bool spans_overlap(const MemSpan& a, const MemSpan& b) noexcept {
  if (a.bytes == 0 || b.bytes == 0) return false;
  const auto a0 = reinterpret_cast<std::uintptr_t>(a.ptr);
  const auto b0 = reinterpret_cast<std::uintptr_t>(b.ptr);
  return a0 < b0 + b.bytes && b0 < a0 + a.bytes;
}

bool any_overlap(const std::vector<MemSpan>& xs, const std::vector<MemSpan>& ys,
                 MemSpan* where) noexcept {
  for (const MemSpan& x : xs) {
    for (const MemSpan& y : ys) {
      if (spans_overlap(x, y)) {
        if (where != nullptr) *where = x;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

std::string GraphValidationError::compose_message(const GraphValidation& v) {
  if (v.findings.empty()) return "graph validation failed";
  std::string msg = "graph validation failed: " + v.findings.front().kind +
                    ": " + v.findings.front().message;
  if (v.findings.size() > 1) {
    msg += " (+" + std::to_string(v.findings.size() - 1) + " more)";
  }
  return msg;
}

NodeId Graph::add_memcpy(void* dst, const void* src, std::size_t bytes,
                         CopyKind kind, std::vector<NodeId> deps) {
  if (kind == CopyKind::PeerToPeer) {
    throw GraphError(
        "add_memcpy: PeerToPeer copies span two devices and cannot be "
        "captured into a single-device graph");
  }
  check_deps(deps);
  Node node;
  node.kind = GraphNodeKind::Memcpy;
  node.dst = dst;
  node.src = src;
  node.bytes = bytes;
  node.copy_kind = kind;
  node.access.reads.push_back({src, bytes});
  node.access.writes.push_back({dst, bytes});
  node.deps = std::move(deps);
  return push_node(std::move(node));
}

NodeId Graph::add_memset(void* dst, int value, std::size_t bytes,
                         std::vector<NodeId> deps) {
  check_deps(deps);
  Node node;
  node.kind = GraphNodeKind::Memset;
  node.dst = dst;
  node.fill_value = value;
  node.bytes = bytes;
  node.access.writes.push_back({dst, bytes});
  node.deps = std::move(deps);
  return push_node(std::move(node));
}

NodeId Graph::add_marker(std::vector<NodeId> deps, std::string label) {
  check_deps(deps);
  Node node;
  node.kind = GraphNodeKind::Marker;
  node.label = std::move(label);
  node.deps = std::move(deps);
  return push_node(std::move(node));
}

void Graph::add_dependency(NodeId before, NodeId after) {
  if (before >= nodes_.size() || after >= nodes_.size()) {
    throw GraphError("add_dependency: unknown node id");
  }
  if (before == after) {
    throw GraphError("add_dependency: node cannot depend on itself");
  }
  nodes_[after].deps.push_back(before);
}

void Graph::start_capture_session() {
  if (in_capture_) {
    throw CaptureError("begin_capture: graph is already being captured into");
  }
  if (!nodes_.empty()) {
    throw CaptureError("begin_capture: capture requires an empty graph");
  }
  in_capture_ = true;
  last_captured_ = kNoNode;
}

void Graph::record_memcpy(void* dst, const void* src, std::size_t bytes,
                          CopyKind kind) {
  Node node;
  node.kind = GraphNodeKind::Memcpy;
  node.dst = dst;
  node.src = src;
  node.bytes = bytes;
  node.copy_kind = kind;
  node.access.reads.push_back({src, bytes});
  node.access.writes.push_back({dst, bytes});
  record_node(std::move(node));
}

void Graph::record_memset(void* dst, int value, std::size_t bytes) {
  Node node;
  node.kind = GraphNodeKind::Memset;
  node.dst = dst;
  node.fill_value = value;
  node.bytes = bytes;
  node.access.writes.push_back({dst, bytes});
  record_node(std::move(node));
}

void Graph::record_marker(const char* label) {
  Node node;
  node.kind = GraphNodeKind::Marker;
  if (label != nullptr) node.label = label;
  record_node(std::move(node));
}

void Graph::record_node(Node&& node) {
  if (last_captured_ != kNoNode) node.deps.push_back(last_captured_);
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  last_captured_ = id;
}

NodeId Graph::push_node(Node&& node) {
  if (in_capture_) {
    throw CaptureError(
        "graph is being captured into; submit through the capturing queue");
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return id;
}

void Graph::check_deps(const std::vector<NodeId>& deps) const {
  for (const NodeId d : deps) {
    if (d >= nodes_.size()) {
      throw GraphError("unknown dependency node #" + std::to_string(d));
    }
  }
}

const Graph::Node& Graph::at(NodeId id) const {
  if (id >= nodes_.size()) {
    throw GraphError("unknown node #" + std::to_string(id));
  }
  return nodes_[id];
}

Graph::Topo Graph::compute_topo(const std::vector<Node>& nodes,
                                GraphValidation* findings) {
  const std::size_t n = nodes.size();
  Topo topo;
  topo.order.reserve(n);
  topo.wave.assign(n, 1);

  std::vector<std::vector<NodeId>> children(n);
  std::vector<std::uint32_t> indeg(n, 0);
  for (NodeId id = 0; id < n; ++id) {
    for (const NodeId d : nodes[id].deps) {
      children[d].push_back(id);
      ++indeg[id];
    }
  }
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId id = 0; id < n; ++id) {
    if (indeg[id] == 0) ready.push(id);
  }
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    topo.order.push_back(u);
    for (const NodeId c : children[u]) {
      topo.wave[c] = std::max(topo.wave[c], topo.wave[u] + 1);
      if (--indeg[c] == 0) ready.push(c);
    }
  }
  if (topo.order.size() < n && findings != nullptr) {
    NodeId first = kNoNode;
    std::size_t stuck = 0;
    for (NodeId id = 0; id < n; ++id) {
      if (indeg[id] != 0) {
        ++stuck;
        first = std::min(first, id);
      }
    }
    findings->findings.push_back(GraphFinding{
        "cycle",
        std::to_string(stuck) + " node(s) form a dependency cycle through " +
            node_name(first, nodes[first].kind,
                      nodes[first].label),
        first, first});
  }
  return topo;
}

GraphValidation Graph::validate(const std::vector<Node>& nodes,
                                Device& device) {
  GraphValidation out;
  const std::size_t n = nodes.size();
  const Topo topo = compute_topo(nodes, &out);
  const DeviceAllocator& alloc = device.allocator();
  const std::uint64_t max_block = device.descriptor().max_threads_per_block;

  // Per-node checks: launch-config limits and buffer lifetime through the
  // allocator (query_range is the sanitizer's non-throwing classifier).
  auto classify = [&](NodeId id, const Node& nd, const void* p,
                      std::size_t bytes, const char* role,
                      bool require_device) {
    const RangeQuery q = alloc.query_range(p, bytes);
    const std::string who = node_name(id, nd.kind, nd.label);
    switch (q.status) {
      case RangeStatus::Ok:
        break;
      case RangeStatus::UseAfterFree:
        out.findings.push_back(GraphFinding{
            "freed-buffer",
            who + ": " + role + " points into freed allocation #" +
                std::to_string(q.id) +
                (q.origin.empty() ? std::string{} : " ('" + q.origin + "')"),
            id, id});
        break;
      case RangeStatus::OutOfBounds:
        out.findings.push_back(GraphFinding{
            "out-of-bounds",
            who + ": " + role + " runs past allocation #" +
                std::to_string(q.id) + " of " + std::to_string(q.bytes) +
                " bytes",
            id, id});
        break;
      case RangeStatus::Unknown:
        if (require_device) {
          out.findings.push_back(GraphFinding{
              "unknown-pointer",
              who + ": " + role + " is not device memory of this device", id,
              id});
        }
        break;
    }
  };

  for (NodeId id = 0; id < n; ++id) {
    const Node& nd = nodes[id];
    switch (nd.kind) {
      case GraphNodeKind::Kernel: {
        if (nd.cfg.total_threads() == 0 || nd.cfg.block.volume() > max_block) {
          out.findings.push_back(GraphFinding{
              "invalid-launch",
              node_name(id, nd.kind, nd.label) +
                  ": empty shape or block of " +
                  std::to_string(nd.cfg.block.volume()) +
                  " threads exceeds device limit of " +
                  std::to_string(max_block),
              id, id});
        }
        // Declared spans may legitimately be host memory (Unknown); only
        // dead or escaping device ranges are defects.
        for (const MemSpan& s : nd.access.reads) {
          classify(id, nd, s.ptr, s.bytes, "declared read", false);
        }
        for (const MemSpan& s : nd.access.writes) {
          classify(id, nd, s.ptr, s.bytes, "declared write", false);
        }
        break;
      }
      case GraphNodeKind::Memcpy: {
        const bool src_device = nd.copy_kind != CopyKind::HostToDevice;
        const bool dst_device = nd.copy_kind != CopyKind::DeviceToHost;
        classify(id, nd, nd.src, nd.bytes, "source", src_device);
        classify(id, nd, nd.dst, nd.bytes, "destination", dst_device);
        if (!src_device && alloc.owns(nd.src)) {
          out.findings.push_back(GraphFinding{
              "direction-mismatch",
              node_name(id, nd.kind, nd.label) +
                  ": H2D source is device memory",
              id, id});
        }
        if (!dst_device && alloc.owns(nd.dst)) {
          out.findings.push_back(GraphFinding{
              "direction-mismatch",
              node_name(id, nd.kind, nd.label) +
                  ": D2H destination is device memory",
              id, id});
        }
        break;
      }
      case GraphNodeKind::Memset:
        classify(id, nd, nd.dst, nd.bytes, "destination", true);
        break;
      case GraphNodeKind::Marker:
        break;
    }
  }

  // Race pass: unordered node pairs whose declared accesses overlap with at
  // least one write. Needs the full order relation, so skip under a cycle.
  if (topo.order.size() == n) {
    const std::size_t words = (n + 63) / 64;
    std::vector<std::uint64_t> anc(n * words, 0);
    for (const NodeId u : topo.order) {
      std::uint64_t* row = anc.data() + std::size_t{u} * words;
      for (const NodeId d : nodes[u].deps) {
        const std::uint64_t* drow = anc.data() + std::size_t{d} * words;
        for (std::size_t w = 0; w < words; ++w) row[w] |= drow[w];
        row[d / 64] |= std::uint64_t{1} << (d % 64);
      }
    }
    const auto is_ancestor = [&](NodeId a, NodeId b) {
      return (anc[std::size_t{b} * words + a / 64] >> (a % 64)) & 1;
    };
    const auto has_access = [&](const Node& nd) {
      return !nd.access.reads.empty() || !nd.access.writes.empty();
    };
    for (NodeId i = 0; i < n; ++i) {
      if (!has_access(nodes[i])) continue;
      for (NodeId j = i + 1; j < n; ++j) {
        if (!has_access(nodes[j])) continue;
        if (is_ancestor(i, j) || is_ancestor(j, i)) continue;
        ++out.pairs_checked;
        const Node& a = nodes[i];
        const Node& b = nodes[j];
        MemSpan where{};
        const char* how = nullptr;
        if (any_overlap(a.access.writes, b.access.writes, &where)) {
          how = "write-write";
        } else if (any_overlap(a.access.writes, b.access.reads, &where)) {
          how = "write-read";
        } else if (any_overlap(a.access.reads, b.access.writes, &where)) {
          how = "read-write";
        }
        if (how != nullptr) {
          out.findings.push_back(GraphFinding{
              "race",
              std::string(how) + " race between unordered " +
                  node_name(i, a.kind, a.label) + " and " +
                  node_name(j, b.kind, b.label) + " on " +
                  std::to_string(where.bytes) + " bytes",
              i, j});
        }
      }
    }
  }
  return out;
}

GraphValidation validate_graph(const Graph& graph, Device& device) {
  return Graph::validate(graph.nodes_, device);
}

ExecutableGraph::ExecutableGraph(const Graph& graph, Queue& queue)
    : device_(&queue.device()), pool_(queue.pool_) {
  validation_ = Graph::validate(graph.nodes_, *device_);
  if (!validation_.clean()) throw GraphValidationError(validation_);

  const std::vector<Graph::Node>& nodes = graph.nodes_;
  const std::size_t n = nodes.size();
  node_count_ = n;

  const Graph::Topo topo = Graph::compute_topo(nodes, nullptr);
  for (const std::uint32_t w : topo.wave) {
    wave_count_ = std::max<std::size_t>(wave_count_, w);
  }
  if (n == 0) wave_count_ = 0;

  // Execution order: wave-major, id-minor. A captured linear chain
  // degenerates to submission order; host work within a wave runs in id
  // order, keeping replay deterministic for any DAG.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    if (topo.wave[a] != topo.wave[b]) return topo.wave[a] < topo.wave[b];
    return a < b;
  });

  // Bake durations with the same cost-model calls the eager queue makes,
  // then chain per-node offsets from base 0 in dependency order. For a
  // captured chain this reproduces the eager clock's FP addition sequence
  // exactly, so replay onto a fresh queue lands on a bit-identical time.
  const DeviceDescriptor& desc = device_->descriptor();
  const BackendProfile& profile = queue.backend_profile();
  begin_off_us_.assign(n, 0.0);
  end_off_us_.assign(n, 0.0);
  std::size_t kernel_nodes = 0;
  for (const NodeId id : order) {
    const Graph::Node& nd = nodes[id];
    double duration = 0.0;
    switch (nd.kind) {
      case GraphNodeKind::Kernel:
        duration = kernel_time_us(desc, profile, nd.costs);
        ++kernel_nodes;
        break;
      case GraphNodeKind::Memcpy:
        duration = nd.copy_kind == CopyKind::DeviceToDevice
                       ? d2d_time_us(desc, static_cast<double>(nd.bytes))
                       : copy_time_us(desc, static_cast<double>(nd.bytes));
        break;
      case GraphNodeKind::Memset: {
        KernelCosts costs;
        costs.bytes_written = static_cast<double>(nd.bytes);
        duration = kernel_time_us(desc, profile, costs);
        break;
      }
      case GraphNodeKind::Marker:
        break;
    }
    double begin = 0.0;
    for (const NodeId d : nd.deps) begin = std::max(begin, end_off_us_[d]);
    begin_off_us_[id] = begin;
    end_off_us_[id] = begin + duration;
    total_duration_us_ = std::max(total_duration_us_, end_off_us_[id]);
  }

  // Pre-resolve every dispatch. execs_ is sized exactly first: Op::exec
  // pointers into it must survive the build loop.
  execs_.reserve(kernel_nodes);
  bodies_.reserve(kernel_nodes);
  ops_.reserve(n);
  for (const NodeId id : order) {
    const Graph::Node& nd = nodes[id];
    switch (nd.kind) {
      case GraphNodeKind::Kernel: {
        bodies_.push_back(nd.body);
        const std::uint64_t total = nd.cfg.total_threads();
        if (total == 1) {
          // Single-item node: pre-build its work item and fuse it into a
          // run of adjacent same-body-type nodes — one indirect call per
          // run, bodies inlined in the per-type run_fused instantiation.
          fused_bodies_.push_back(nd.body.get());
          fused_items_.push_back(first_work_item(nd.cfg));
          if (!ops_.empty() && ops_.back().code == OpCode::Fused &&
              ops_.back().fused == nd.fused) {
            ++ops_.back().fused_count;
          } else {
            Op op;
            op.code = OpCode::Fused;
            op.fused = nd.fused;
            op.fused_first =
                static_cast<std::uint32_t>(fused_bodies_.size() - 1);
            op.fused_count = 1;
            ops_.push_back(op);
          }
        } else {
          execs_.push_back(Graph::KernelExec{nd.cfg, nd.body.get()});
          Op op;
          op.code = OpCode::Kernel;
          op.chunk = nd.chunk;
          op.exec = &execs_.back();
          op.total = total;
          op.schedule = nd.policy.schedule;
          op.grain = nd.policy.grain;
          ops_.push_back(op);
        }
        break;
      }
      case GraphNodeKind::Memcpy: {
        Op op;
        op.code = OpCode::Copy;
        op.dst = nd.dst;
        op.src = nd.src;
        op.bytes = nd.bytes;
        ops_.push_back(op);
        break;
      }
      case GraphNodeKind::Memset: {
        Op op;
        op.code = OpCode::Fill;
        op.dst = nd.dst;
        op.value = nd.fill_value;
        op.bytes = nd.bytes;
        ops_.push_back(op);
        break;
      }
      case GraphNodeKind::Marker:
        break;
    }
  }

  // Per-node attribution handed to the profiler in bulk at each replay end.
  // Labels are copied first (label pointers must not move afterwards).
  labels_.reserve(n);
  for (NodeId id = 0; id < n; ++id) labels_.push_back(nodes[id].label);
  samples_.reserve(n);
  for (NodeId id = 0; id < n; ++id) {
    const Graph::Node& nd = nodes[id];
    GraphNodeSample s;
    s.label = labels_[id].empty() ? nullptr : labels_[id].c_str();
    s.kind = nd.kind;
    s.copy_kind = nd.copy_kind;
    switch (nd.kind) {
      case GraphNodeKind::Kernel:
        s.items = nd.cfg.total_threads();
        s.bytes_read = nd.costs.bytes_read;
        s.bytes_written = nd.costs.bytes_written;
        s.flops = nd.costs.flops;
        break;
      case GraphNodeKind::Memcpy:
        s.bytes_read = static_cast<double>(nd.bytes);
        s.bytes_written = static_cast<double>(nd.bytes);
        break;
      case GraphNodeKind::Memset:
        s.bytes_written = static_cast<double>(nd.bytes);
        break;
      case GraphNodeKind::Marker:
        break;
    }
    samples_.push_back(s);
  }
}

Event ExecutableGraph::replay(Queue& queue) {
  if (&queue.device() != device_) {
    throw GraphError(
        "replay: queue belongs to a different device than the graph was "
        "instantiated for");
  }
  if (queue.capturing()) {
    throw CaptureError("replay: queue is in capture mode");
  }
  const ProfilerHooks* prof = profiler_hooks();
  std::uint64_t trace_id = 0;
  if (prof != nullptr && prof->on_graph_replay_begin != nullptr) {
    trace_id = prof->on_graph_replay_begin(prof->ctx, queue, node_count_);
  }
  // The replay hot loop: flat pre-resolved ops, no per-node hook probes, no
  // allocation, no sanitizer bookkeeping (validated once at instantiate).
  ThreadPool& pool = *pool_;
  void* const* fused_bodies = fused_bodies_.data();
  const WorkItem* fused_items = fused_items_.data();
  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::Fused:
        op.fused(fused_bodies + op.fused_first, fused_items + op.fused_first,
                 op.fused_count);
        break;
      case OpCode::Kernel:
        pool.run_batch(op.total, op.chunk, op.exec, op.schedule, op.grain);
        break;
      case OpCode::Copy:
        stripe::run_copy(pool, op.dst, op.src, op.bytes);
        break;
      case OpCode::Fill:
        stripe::run_fill(pool, op.dst, op.value, op.bytes);
        break;
    }
  }
  // One clock step for the whole graph: T0 + critical-path duration. The
  // eager path would have summed the same per-node durations in the same
  // order, so from T0 = 0 the final time is bit-identical.
  const Event e = queue.advance(total_duration_us_);
  // One sanitizer sync per replay: red-zone verification at the same point
  // the eager path's final synchronize() would check them.
  if (const SanitizerHooks* hooks = sanitizer_hooks();
      hooks != nullptr && hooks->on_sync != nullptr) {
    hooks->on_sync(hooks->ctx, queue);
  }
  if (trace_id != 0 && prof->on_graph_replay_end != nullptr) {
    for (std::size_t i = 0; i < samples_.size(); ++i) {
      samples_[i].sim_begin_us = e.sim_begin_us + begin_off_us_[i];
      samples_[i].sim_end_us = e.sim_begin_us + end_off_us_[i];
    }
    prof->on_graph_replay_end(prof->ctx, queue, trace_id, e, samples_.data(),
                              samples_.size());
  }
  return e;
}

}  // namespace mcmm::gpusim
