#pragma once
// Index-space vocabulary of the simulated GPU: 3-component extents, launch
// configurations, and per-work-item coordinates (the common denominator of
// CUDA/HIP grids, SYCL nd-ranges, and OpenMP league/team shapes).

#include <cstddef>
#include <cstdint>

namespace mcmm::gpusim {

struct Dim3 {
  std::uint32_t x{1};
  std::uint32_t y{1};
  std::uint32_t z{1};

  [[nodiscard]] constexpr std::uint64_t volume() const noexcept {
    return static_cast<std::uint64_t>(x) * y * z;
  }

  [[nodiscard]] friend constexpr bool operator==(const Dim3&,
                                                 const Dim3&) = default;
};

/// Grid-of-blocks launch shape (CUDA terminology; other models map onto it).
struct LaunchConfig {
  Dim3 grid{};
  Dim3 block{};

  [[nodiscard]] constexpr std::uint64_t total_threads() const noexcept {
    return grid.volume() * block.volume();
  }
};

/// Coordinates handed to a kernel body for one work item.
struct WorkItem {
  Dim3 block_idx{};   ///< position of the block in the grid
  Dim3 thread_idx{};  ///< position of the thread in the block
  Dim3 grid_dim{};
  Dim3 block_dim{};
  std::uint64_t global_linear{};  ///< linearised global thread id

  /// Global x-coordinate for the common 1-D case.
  [[nodiscard]] constexpr std::uint64_t global_x() const noexcept {
    return static_cast<std::uint64_t>(block_idx.x) * block_dim.x +
           thread_idx.x;
  }
};

/// Reconstructs the 3-D work-item coordinates from a linear id.
[[nodiscard]] constexpr WorkItem work_item_from_linear(
    const LaunchConfig& cfg, std::uint64_t linear) noexcept {
  const std::uint64_t threads_per_block = cfg.block.volume();
  const std::uint64_t block_linear = linear / threads_per_block;
  const std::uint64_t thread_linear = linear % threads_per_block;

  WorkItem item;
  item.grid_dim = cfg.grid;
  item.block_dim = cfg.block;
  item.global_linear = linear;

  item.block_idx.x = static_cast<std::uint32_t>(block_linear % cfg.grid.x);
  const std::uint64_t block_rest = block_linear / cfg.grid.x;
  item.block_idx.y = static_cast<std::uint32_t>(block_rest % cfg.grid.y);
  item.block_idx.z = static_cast<std::uint32_t>(block_rest / cfg.grid.y);

  item.thread_idx.x = static_cast<std::uint32_t>(thread_linear % cfg.block.x);
  const std::uint64_t thread_rest = thread_linear / cfg.block.x;
  item.thread_idx.y = static_cast<std::uint32_t>(thread_rest % cfg.block.y);
  item.thread_idx.z = static_cast<std::uint32_t>(thread_rest / cfg.block.y);
  return item;
}

/// The work item at linear id 0 (no div/mod — all indices are zero).
[[nodiscard]] constexpr WorkItem first_work_item(
    const LaunchConfig& cfg) noexcept {
  WorkItem item;
  item.block_idx = {0, 0, 0};
  item.thread_idx = {0, 0, 0};
  item.grid_dim = cfg.grid;
  item.block_dim = cfg.block;
  return item;
}

/// Advances `item` to the next linear id by incremental carry. Equivalent
/// to `work_item_from_linear(cfg, item.global_linear + 1)` but costs a few
/// increments instead of a chain of six 64-bit div/mod — the hot-loop form
/// used by the kernel dispatcher.
constexpr void advance_work_item(const LaunchConfig& cfg,
                                 WorkItem& item) noexcept {
  ++item.global_linear;
  if (++item.thread_idx.x < cfg.block.x) return;
  item.thread_idx.x = 0;
  if (++item.thread_idx.y < cfg.block.y) return;
  item.thread_idx.y = 0;
  if (++item.thread_idx.z < cfg.block.z) return;
  item.thread_idx.z = 0;
  if (++item.block_idx.x < cfg.grid.x) return;
  item.block_idx.x = 0;
  if (++item.block_idx.y < cfg.grid.y) return;
  item.block_idx.y = 0;
  ++item.block_idx.z;
}

/// 1-D helper: blocks covering `n` items with `block_size` threads each.
[[nodiscard]] constexpr LaunchConfig launch_1d(std::uint64_t n,
                                               std::uint32_t block_size) {
  LaunchConfig cfg;
  cfg.block.x = block_size;
  cfg.grid.x = static_cast<std::uint32_t>((n + block_size - 1) / block_size);
  if (cfg.grid.x == 0) cfg.grid.x = 1;
  return cfg;
}

}  // namespace mcmm::gpusim
