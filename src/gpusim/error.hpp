#pragma once
// Error taxonomy of the simulated GPU runtime.

#include <cstddef>
#include <stdexcept>
#include <string>

namespace mcmm::gpusim {

class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Device memory exhausted (or an injected allocation fault).
class OutOfMemory : public SimError {
 public:
  OutOfMemory(std::size_t requested, std::size_t available)
      : SimError("device out of memory: requested " +
                 std::to_string(requested) + " bytes, " +
                 std::to_string(available) + " available"),
        requested_(requested),
        available_(available) {}

  [[nodiscard]] std::size_t requested() const noexcept { return requested_; }
  [[nodiscard]] std::size_t available() const noexcept { return available_; }

 private:
  std::size_t requested_;
  std::size_t available_;
};

/// A pointer handed to the runtime is not (or no longer) a live device
/// allocation of this device, or the access would run past its end.
class InvalidPointer : public SimError {
 public:
  using SimError::SimError;
};

/// A launch configuration violates device limits.
class InvalidLaunch : public SimError {
 public:
  using SimError::SimError;
};

}  // namespace mcmm::gpusim
