#pragma once
// Analytic cost model of the simulated GPU. A kernel declares its traffic
// and arithmetic; the device descriptor and the backend profile translate
// that into simulated time. See DESIGN.md (Abl-2) for the validation of
// this model against measured wall time.

#include <algorithm>
#include <string>

#include "gpusim/descriptor.hpp"

namespace mcmm::gpusim {

/// Work a kernel performs, declared by the launching model layer.
struct KernelCosts {
  double bytes_read{0};
  double bytes_written{0};
  double flops{0};

  [[nodiscard]] double total_bytes() const noexcept {
    return bytes_read + bytes_written;
  }
};

/// Efficiency profile of the software route a kernel arrives through.
/// Native backends run at ~ full efficiency; portability layers and
/// translated routes pay the small overheads reported by the BabelStream
/// literature the paper cites.
struct BackendProfile {
  std::string label{"native"};
  double bandwidth_efficiency{1.0};  ///< fraction of peak DRAM bandwidth
  double compute_efficiency{1.0};    ///< fraction of peak FLOP/s
  double extra_launch_latency_us{0.0};

  [[nodiscard]] friend bool operator==(const BackendProfile&,
                                       const BackendProfile&) = default;
};

/// STREAM-class kernels attain ~85-92 % of nominal DRAM bandwidth on real
/// hardware; the simulator folds that into the device-side efficiency.
inline constexpr double kStreamEfficiency = 0.88;

/// Simulated execution time of one kernel, in microseconds.
[[nodiscard]] inline double kernel_time_us(const DeviceDescriptor& dev,
                                           const BackendProfile& profile,
                                           const KernelCosts& costs) {
  if (costs.bytes_read == 0 && costs.bytes_written == 0 && costs.flops == 0) {
    // Zero-cost kernels pay only the launch latency. Bit-identical to the
    // general formula (0/x == +0.0) but skips two FP divides — this is the
    // per-launch hot path of every empty or latency-bound kernel.
    return dev.kernel_launch_latency_us + profile.extra_launch_latency_us;
  }
  const double bw_gbps =
      dev.mem_bandwidth_gbps * kStreamEfficiency * profile.bandwidth_efficiency;
  const double mem_us = costs.total_bytes() / (bw_gbps * 1e3);  // GB/s -> B/us
  const double flops_per_us =
      dev.peak_tflops_fp64 * 1e6 * profile.compute_efficiency;
  const double compute_us =
      flops_per_us > 0 ? costs.flops / flops_per_us : 0.0;
  return dev.kernel_launch_latency_us + profile.extra_launch_latency_us +
         std::max(mem_us, compute_us);
}

/// Simulated duration of a host<->device copy, in microseconds.
[[nodiscard]] inline double copy_time_us(const DeviceDescriptor& dev,
                                         double bytes) {
  return dev.copy_latency_us + bytes / (dev.pcie_bandwidth_gbps * 1e3);
}

/// Simulated duration of a device-to-device copy (through DRAM both ways).
[[nodiscard]] inline double d2d_time_us(const DeviceDescriptor& dev,
                                        double bytes) {
  return dev.copy_latency_us +
         2.0 * bytes / (dev.mem_bandwidth_gbps * kStreamEfficiency * 1e3);
}

/// Simulated duration of a peer-to-peer copy between two devices over the
/// inter-device link (NVLink / Infinity Fabric / Xe Link). Device-initiated
/// — no host bounce — so it pays one copy-latency hop (the slower
/// endpoint's) and is bounded by the slower endpoint's link bandwidth.
[[nodiscard]] inline double p2p_time_us(const DeviceDescriptor& src,
                                        const DeviceDescriptor& dst,
                                        double bytes) {
  const double link_gbps =
      std::min(src.p2p_bandwidth_gbps, dst.p2p_bandwidth_gbps);
  return std::max(src.copy_latency_us, dst.copy_latency_us) +
         bytes / (link_gbps * 1e3);
}

}  // namespace mcmm::gpusim
