#include "gpusim/queue.hpp"

#include "gpusim/device.hpp"
#include "gpusim/error.hpp"
#include "gpusim/stripe.hpp"

namespace mcmm::gpusim {

Queue::Queue(Device& device)
    : device_(&device),
      descriptor_(&device.descriptor()),
      pool_(&ThreadPool::global()),
      max_threads_per_block_(device.descriptor().max_threads_per_block) {}

void Queue::fail_launch(const LaunchConfig& cfg) const {
  if (cfg.grid.volume() == 0 || cfg.block.volume() == 0) {
    throw InvalidLaunch("launch with empty grid or block");
  }
  throw InvalidLaunch("block of " + std::to_string(cfg.block.volume()) +
                      " threads exceeds device limit of " +
                      std::to_string(max_threads_per_block_));
}

Event Queue::memcpy(void* dst, const void* src, std::size_t bytes,
                    CopyKind kind) {
  const DeviceAllocator& alloc = device_->allocator();
  switch (kind) {
    case CopyKind::HostToDevice:
      alloc.check_range(dst, bytes);
      if (alloc.owns(src)) {
        throw InvalidPointer("memcpy H2D: source is device memory");
      }
      break;
    case CopyKind::DeviceToHost:
      alloc.check_range(src, bytes);
      if (alloc.owns(dst)) {
        throw InvalidPointer("memcpy D2H: destination is device memory");
      }
      break;
    case CopyKind::DeviceToDevice:
      alloc.check_range(src, bytes);
      alloc.check_range(dst, bytes);
      break;
    case CopyKind::PeerToPeer:
      throw InvalidPointer("memcpy: PeerToPeer copies go through memcpy_peer");
  }
  if (capture_ != nullptr) {
    capture_->record_memcpy(dst, src, bytes, kind);
    return Event{sim_time_us_, sim_time_us_};
  }
  const ProfilerHooks* prof = profiler_hooks();
  std::uint64_t trace_id = 0;
  if (prof != nullptr && prof->on_copy_begin != nullptr) {
    trace_id = prof->on_copy_begin(prof->ctx, *this, kind, bytes);
  }
  stripe::run_copy(*pool_, dst, src, bytes);
  if (const SanitizerHooks* hooks = sanitizer_hooks();
      hooks != nullptr && hooks->on_sync != nullptr) {
    hooks->on_sync(hooks->ctx, *this);
  }
  const double us = kind == CopyKind::DeviceToDevice
                        ? d2d_time_us(device_->descriptor(),
                                      static_cast<double>(bytes))
                        : copy_time_us(device_->descriptor(),
                                       static_cast<double>(bytes));
  const Event e = advance(us);
  if (trace_id != 0 && prof->on_copy_end != nullptr) {
    prof->on_copy_end(prof->ctx, *this, trace_id, e);
  }
  return e;
}

Event Queue::memcpy_peer(void* dst, Device& dst_device, const void* src,
                         std::size_t bytes) {
  if (capture_ != nullptr) {
    throw CaptureError(
        "memcpy_peer: PeerToPeer copies span two devices and cannot be "
        "captured into a single-device graph");
  }
  device_->allocator().check_range(src, bytes);
  dst_device.allocator().check_range(dst, bytes);
  if (&dst_device == device_) {
    // Same device on both ends: there is no inter-device link to bill, so
    // this is an ordinary device copy (cudaMemcpyPeer does the same).
    return memcpy(dst, src, bytes, CopyKind::DeviceToDevice);
  }
  const ProfilerHooks* prof = profiler_hooks();
  std::uint64_t trace_id = 0;
  if (prof != nullptr && prof->on_copy_begin != nullptr) {
    trace_id =
        prof->on_copy_begin(prof->ctx, *this, CopyKind::PeerToPeer, bytes);
  }
  stripe::run_copy(*pool_, dst, src, bytes);
  if (const SanitizerHooks* hooks = sanitizer_hooks();
      hooks != nullptr && hooks->on_sync != nullptr) {
    hooks->on_sync(hooks->ctx, *this);
  }
  // The source queue owns the transfer: its clock advances by the link
  // time; the destination device's queues are unaffected (the consumer
  // orders against the producer by reading the returned Event).
  const Event e = advance(p2p_time_us(device_->descriptor(),
                                      dst_device.descriptor(),
                                      static_cast<double>(bytes)));
  if (trace_id != 0 && prof->on_copy_end != nullptr) {
    prof->on_copy_end(prof->ctx, *this, trace_id, e);
  }
  return e;
}

Event Queue::memset(void* dst, int value, std::size_t bytes) {
  device_->allocator().check_range(dst, bytes);
  if (capture_ != nullptr) {
    capture_->record_memset(dst, value, bytes);
    return Event{sim_time_us_, sim_time_us_};
  }
  const ProfilerHooks* prof = profiler_hooks();
  std::uint64_t trace_id = 0;
  if (prof != nullptr && prof->on_fill_begin != nullptr) {
    trace_id = prof->on_fill_begin(prof->ctx, *this, bytes);
  }
  stripe::run_fill(*pool_, dst, value, bytes);
  if (const SanitizerHooks* hooks = sanitizer_hooks();
      hooks != nullptr && hooks->on_sync != nullptr) {
    hooks->on_sync(hooks->ctx, *this);
  }
  KernelCosts costs;
  costs.bytes_written = static_cast<double>(bytes);
  const Event e = advance_kernel(costs);
  if (trace_id != 0 && prof->on_fill_end != nullptr) {
    prof->on_fill_end(prof->ctx, *this, trace_id, e);
  }
  return e;
}

void Queue::begin_capture(Graph& graph) {
  if (capture_ != nullptr) {
    throw CaptureError("begin_capture: queue is already capturing");
  }
  graph.start_capture_session();  // throws on busy or non-empty graph
  capture_ = &graph;
}

std::size_t Queue::end_capture() {
  if (capture_ == nullptr) {
    throw CaptureError("end_capture: queue is not capturing");
  }
  Graph* graph = capture_;
  capture_ = nullptr;
  graph->end_capture_session();
  return graph->node_count();
}

}  // namespace mcmm::gpusim

namespace mcmm::gpusim {

Platform& Platform::instance() {
  static Platform platform;
  return platform;
}

Device& Platform::device(Vendor v, unsigned ordinal) {
  auto& rail = devices_[static_cast<std::size_t>(v)];
  while (rail.size() <= ordinal) {
    DeviceDescriptor descriptor = descriptor_for(v);
    if (!rail.empty()) {
      // Ordinal 0 keeps the spec-sheet name (golden traces and roofline
      // summaries key on it); siblings get a " #k" suffix so per-device
      // attribution stays distinguishable in summaries and reports.
      descriptor.name += " #" + std::to_string(rail.size());
    }
    rail.push_back(std::make_unique<Device>(std::move(descriptor),
                                            static_cast<unsigned>(rail.size())));
  }
  return *rail[ordinal];
}

Device* Platform::try_device(Vendor v, unsigned ordinal) noexcept {
  const auto& rail = devices_[static_cast<std::size_t>(v)];
  return ordinal < rail.size() ? rail[ordinal].get() : nullptr;
}

unsigned Platform::device_count(Vendor v) const noexcept {
  return static_cast<unsigned>(devices_[static_cast<std::size_t>(v)].size());
}

std::vector<Device*> Platform::devices_of(Vendor v) noexcept {
  std::vector<Device*> out;
  const auto& rail = devices_[static_cast<std::size_t>(v)];
  out.reserve(rail.size());
  for (const auto& d : rail) out.push_back(d.get());
  return out;
}

Device& Platform::reset_device(Vendor v, const DeviceDescriptor& descriptor,
                               unsigned ordinal) {
  auto& rail = devices_[static_cast<std::size_t>(v)];
  if (ordinal > rail.size()) {
    // Materialize the rail up to the requested ordinal first so device
    // ordinals stay dense (ordinal == index invariant).
    static_cast<void>(device(v, ordinal - 1));
  }
  auto replacement = std::make_unique<Device>(descriptor, ordinal);
  if (ordinal == rail.size()) {
    rail.push_back(std::move(replacement));
  } else {
    rail[ordinal] = std::move(replacement);
  }
  return *rail[ordinal];
}

void Platform::trim_devices(Vendor v, unsigned keep) {
  auto& rail = devices_[static_cast<std::size_t>(v)];
  while (rail.size() > keep) rail.pop_back();
}

}  // namespace mcmm::gpusim
