#include "gpusim/queue.hpp"

#include "gpusim/device.hpp"
#include "gpusim/error.hpp"

namespace mcmm::gpusim {
namespace {

/// Copies and fills at or above this size are striped over the pool (the
/// BabelStream init/read paths move hundreds of MiB through them); smaller
/// ones stay serial — the fork-join round trip would dominate.
constexpr std::size_t kParallelBytesThreshold = std::size_t{1} << 22;

struct CopyCtx {
  unsigned char* dst;
  const unsigned char* src;
};

void copy_chunk(void* ctx, std::uint64_t begin, std::uint64_t end) {
  auto* c = static_cast<CopyCtx*>(ctx);
  std::memcpy(c->dst + begin, c->src + begin, end - begin);
}

struct FillCtx {
  unsigned char* dst;
  int value;
};

void fill_chunk(void* ctx, std::uint64_t begin, std::uint64_t end) {
  auto* f = static_cast<FillCtx*>(ctx);
  std::memset(f->dst + begin, f->value, end - begin);
}

/// Striping a memory-bound loop pays only when distinct cores sit behind
/// the workers; on an oversubscribed single-core host it just adds context
/// switches, so the copy stays serial there.
bool parallel_copies_profitable(const ThreadPool& pool) {
  static const bool multi_core = std::thread::hardware_concurrency() > 1;
  return multi_core && pool.worker_count() > 1;
}

}  // namespace

Queue::Queue(Device& device)
    : device_(&device),
      descriptor_(&device.descriptor()),
      pool_(&ThreadPool::global()),
      max_threads_per_block_(device.descriptor().max_threads_per_block) {}

void Queue::fail_launch(const LaunchConfig& cfg) const {
  if (cfg.grid.volume() == 0 || cfg.block.volume() == 0) {
    throw InvalidLaunch("launch with empty grid or block");
  }
  throw InvalidLaunch("block of " + std::to_string(cfg.block.volume()) +
                      " threads exceeds device limit of " +
                      std::to_string(max_threads_per_block_));
}

Event Queue::memcpy(void* dst, const void* src, std::size_t bytes,
                    CopyKind kind) {
  const DeviceAllocator& alloc = device_->allocator();
  switch (kind) {
    case CopyKind::HostToDevice:
      alloc.check_range(dst, bytes);
      if (alloc.owns(src)) {
        throw InvalidPointer("memcpy H2D: source is device memory");
      }
      break;
    case CopyKind::DeviceToHost:
      alloc.check_range(src, bytes);
      if (alloc.owns(dst)) {
        throw InvalidPointer("memcpy D2H: destination is device memory");
      }
      break;
    case CopyKind::DeviceToDevice:
      alloc.check_range(src, bytes);
      alloc.check_range(dst, bytes);
      break;
  }
  const ProfilerHooks* prof = profiler_hooks();
  std::uint64_t trace_id = 0;
  if (prof != nullptr && prof->on_copy_begin != nullptr) {
    trace_id = prof->on_copy_begin(prof->ctx, *this, kind, bytes);
  }
  if (bytes >= kParallelBytesThreshold && parallel_copies_profitable(*pool_)) {
    CopyCtx ctx{static_cast<unsigned char*>(dst),
                static_cast<const unsigned char*>(src)};
    pool_->run_batch(bytes, &copy_chunk, &ctx);
  } else {
    std::memcpy(dst, src, bytes);
  }
  if (const SanitizerHooks* hooks = sanitizer_hooks();
      hooks != nullptr && hooks->on_sync != nullptr) {
    hooks->on_sync(hooks->ctx, *this);
  }
  const double us = kind == CopyKind::DeviceToDevice
                        ? d2d_time_us(device_->descriptor(),
                                      static_cast<double>(bytes))
                        : copy_time_us(device_->descriptor(),
                                       static_cast<double>(bytes));
  const Event e = advance(us);
  if (trace_id != 0 && prof->on_copy_end != nullptr) {
    prof->on_copy_end(prof->ctx, *this, trace_id, e);
  }
  return e;
}

Event Queue::memset(void* dst, int value, std::size_t bytes) {
  device_->allocator().check_range(dst, bytes);
  const ProfilerHooks* prof = profiler_hooks();
  std::uint64_t trace_id = 0;
  if (prof != nullptr && prof->on_fill_begin != nullptr) {
    trace_id = prof->on_fill_begin(prof->ctx, *this, bytes);
  }
  if (bytes >= kParallelBytesThreshold && parallel_copies_profitable(*pool_)) {
    FillCtx ctx{static_cast<unsigned char*>(dst), value};
    pool_->run_batch(bytes, &fill_chunk, &ctx);
  } else {
    std::memset(dst, value, bytes);
  }
  if (const SanitizerHooks* hooks = sanitizer_hooks();
      hooks != nullptr && hooks->on_sync != nullptr) {
    hooks->on_sync(hooks->ctx, *this);
  }
  KernelCosts costs;
  costs.bytes_written = static_cast<double>(bytes);
  const Event e = advance_kernel(costs);
  if (trace_id != 0 && prof->on_fill_end != nullptr) {
    prof->on_fill_end(prof->ctx, *this, trace_id, e);
  }
  return e;
}

}  // namespace mcmm::gpusim

namespace mcmm::gpusim {

Platform& Platform::instance() {
  static Platform platform;
  return platform;
}

Device& Platform::device(Vendor v) {
  const auto idx = static_cast<std::size_t>(v);
  if (!devices_[idx]) {
    devices_[idx] = std::make_unique<Device>(descriptor_for(v));
  }
  return *devices_[idx];
}

Device* Platform::try_device(Vendor v) noexcept {
  return devices_[static_cast<std::size_t>(v)].get();
}

Device& Platform::reset_device(Vendor v, const DeviceDescriptor& descriptor) {
  const auto idx = static_cast<std::size_t>(v);
  devices_[idx] = std::make_unique<Device>(descriptor);
  return *devices_[idx];
}

}  // namespace mcmm::gpusim
