#include "gpusim/queue.hpp"

#include "gpusim/device.hpp"
#include "gpusim/error.hpp"

namespace mcmm::gpusim {

Queue::Queue(Device& device)
    : device_(&device), pool_(&ThreadPool::global()) {}

void Queue::validate_launch(const LaunchConfig& cfg) const {
  if (cfg.grid.volume() == 0 || cfg.block.volume() == 0) {
    throw InvalidLaunch("launch with empty grid or block");
  }
  if (cfg.block.volume() > device_->descriptor().max_threads_per_block) {
    throw InvalidLaunch(
        "block of " + std::to_string(cfg.block.volume()) +
        " threads exceeds device limit of " +
        std::to_string(device_->descriptor().max_threads_per_block));
  }
}

Event Queue::advance_kernel(const KernelCosts& costs) {
  return advance(kernel_time_us(device_->descriptor(), profile_, costs));
}

Event Queue::advance(double duration_us) {
  Event e;
  e.sim_begin_us = sim_time_us_;
  sim_time_us_ += duration_us;
  e.sim_end_us = sim_time_us_;
  return e;
}

Event Queue::memcpy(void* dst, const void* src, std::size_t bytes,
                    CopyKind kind) {
  const DeviceAllocator& alloc = device_->allocator();
  switch (kind) {
    case CopyKind::HostToDevice:
      alloc.check_range(dst, bytes);
      if (alloc.owns(src)) {
        throw InvalidPointer("memcpy H2D: source is device memory");
      }
      break;
    case CopyKind::DeviceToHost:
      alloc.check_range(src, bytes);
      if (alloc.owns(dst)) {
        throw InvalidPointer("memcpy D2H: destination is device memory");
      }
      break;
    case CopyKind::DeviceToDevice:
      alloc.check_range(src, bytes);
      alloc.check_range(dst, bytes);
      break;
  }
  std::memcpy(dst, src, bytes);
  const double us = kind == CopyKind::DeviceToDevice
                        ? d2d_time_us(device_->descriptor(),
                                      static_cast<double>(bytes))
                        : copy_time_us(device_->descriptor(),
                                       static_cast<double>(bytes));
  return advance(us);
}

Event Queue::memset(void* dst, int value, std::size_t bytes) {
  device_->allocator().check_range(dst, bytes);
  std::memset(dst, value, bytes);
  KernelCosts costs;
  costs.bytes_written = static_cast<double>(bytes);
  return advance_kernel(costs);
}

}  // namespace mcmm::gpusim

namespace mcmm::gpusim {

Platform& Platform::instance() {
  static Platform platform;
  return platform;
}

Device& Platform::device(Vendor v) {
  const auto idx = static_cast<std::size_t>(v);
  if (!devices_[idx]) {
    devices_[idx] = std::make_unique<Device>(descriptor_for(v));
  }
  return *devices_[idx];
}

Device& Platform::reset_device(Vendor v, const DeviceDescriptor& descriptor) {
  const auto idx = static_cast<std::size_t>(v);
  devices_[idx] = std::make_unique<Device>(descriptor);
  return *devices_[idx];
}

}  // namespace mcmm::gpusim
