#include "gpusim/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace mcmm::gpusim {
namespace {

inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// Brief spins before parking. Kept small: the host may be oversubscribed
// (the simulator runs more workers than cores on small machines), where
// long spins only steal cycles from the thread being waited on.
constexpr int kSpinIters = 64;

}  // namespace

/// One in-flight fork-join batch, living on the submitter's stack.
struct ThreadPool::Batch {
  ChunkFn fn{};
  void* ctx{};
  std::uint64_t n{};
  std::uint64_t chunk_count{};
  std::uint64_t base{};  ///< static: floor chunk size; dynamic: grain
  std::uint64_t rem{};   ///< static: first `rem` chunks get one extra index
  Schedule schedule{Schedule::Static};
  std::atomic<std::uint64_t> next{0};       ///< chunk ticket dispenser
  std::atomic<std::uint64_t> remaining{0};  ///< chunks not yet finished
  std::atomic<bool> has_error{false};
  std::exception_ptr error;  ///< written by the has_error winner only

  /// Bounds of chunk `c`. Static chunks tile [0, n) exactly: the first
  /// `rem` chunks carry one extra index, so no chunk is ever empty.
  void bounds(std::uint64_t c, std::uint64_t& begin,
              std::uint64_t& end) const noexcept {
    if (schedule == Schedule::Static) {
      begin = c * base + std::min(c, rem);
      end = begin + base + (c < rem ? 1 : 0);
    } else {
      begin = c * base;
      end = std::min(n, begin + base);
    }
  }
};

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::max(2u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::execute(Batch& batch) {
  bool did_work = false;
  for (;;) {
    const std::uint64_t c = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= batch.chunk_count) return did_work;
    did_work = true;
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
    batch.bounds(c, begin, end);
    try {
      batch.fn(batch.ctx, begin, end);
    } catch (...) {
      if (!batch.has_error.exchange(true, std::memory_order_acq_rel)) {
        batch.error = std::current_exception();
      }
    }
    // The final decrement releases every chunk's effects (including the
    // error slot) to the submitter's acquire load of remaining == 0.
    if (batch.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      batch.remaining.notify_all();
    }
  }
}

bool ThreadPool::try_execute_from(Slot& slot) {
  if (slot.batch.load(std::memory_order_acquire) == nullptr) return false;
  // Pin the slot before re-reading the pointer: the submitter retires the
  // descriptor only once `readers` drops to zero, so a non-null pointer
  // observed under the pin stays valid until we unpin.
  slot.readers.fetch_add(1, std::memory_order_acq_rel);
  Batch* batch = slot.batch.load(std::memory_order_acquire);
  bool did_work = false;
  if (batch != nullptr) did_work = execute(*batch);
  slot.readers.fetch_sub(1, std::memory_order_release);
  return did_work;
}

void ThreadPool::worker_loop() {
  for (;;) {
    // Load the epoch before scanning: work published after the scan bumps
    // the epoch, so the wait below returns immediately (no lost wake-up).
    const std::uint64_t seen = epoch_.load(std::memory_order_acquire);
    if (stop_.load(std::memory_order_acquire)) return;
    bool did_work = false;
    for (Slot& slot : slots_) did_work |= try_execute_from(slot);
    if (did_work) continue;
    bool bumped = false;
    for (int i = 0; i < kSpinIters; ++i) {
      if (epoch_.load(std::memory_order_acquire) != seen) {
        bumped = true;
        break;
      }
      cpu_relax();
    }
    if (!bumped) epoch_.wait(seen, std::memory_order_acquire);
  }
}

ThreadPool::Slot* ThreadPool::claim_slot(Batch* batch) {
  for (Slot& slot : slots_) {
    Batch* expected = nullptr;
    if (slot.batch.load(std::memory_order_relaxed) == nullptr &&
        slot.batch.compare_exchange_strong(expected, batch,
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
      return &slot;
    }
  }
  return nullptr;
}

void ThreadPool::run_batch_parallel(std::uint64_t n, ChunkFn fn, void* ctx,
                                    Schedule schedule, std::uint64_t grain) {
  const std::uint64_t participants = worker_count() + 1;  // workers + caller

  Batch batch;
  batch.fn = fn;
  batch.ctx = ctx;
  batch.n = n;
  batch.schedule = schedule;
  if (schedule == Schedule::Static) {
    const std::uint64_t parts = std::min<std::uint64_t>(n, participants);
    batch.chunk_count = parts;
    batch.base = n / parts;
    batch.rem = n % parts;
  } else {
    if (grain == 0) {
      // Default grain: ~8 grabs per participant, clamped so tiny batches
      // still self-balance and huge ones keep the ticket traffic low.
      grain = std::max<std::uint64_t>(1, n / (participants * 8));
    }
    batch.base = grain;
    batch.chunk_count = (n + grain - 1) / grain;
  }
  batch.remaining.store(batch.chunk_count, std::memory_order_relaxed);

  // Single-chunk batches run inline on the caller: no publication, no
  // wake-up, and exceptions propagate directly.
  if (batch.chunk_count == 1) {
    fn(ctx, 0, n);
    return;
  }

  Slot* slot = claim_slot(&batch);
  if (slot == nullptr) {
    // More concurrent submissions than slots (pathological): degrade to a
    // serial inline run rather than blocking — still correct, never stuck.
    fn(ctx, 0, n);
    return;
  }
  epoch_.fetch_add(1, std::memory_order_release);
  epoch_.notify_all();

  // The submitter works too: on the common path every chunk is consumed
  // here or by an already-spinning worker without any syscall.
  execute(batch);

  for (int i = 0;
       i < kSpinIters && batch.remaining.load(std::memory_order_acquire) != 0;
       ++i) {
    cpu_relax();
  }
  for (std::uint64_t r;
       (r = batch.remaining.load(std::memory_order_acquire)) != 0;) {
    batch.remaining.wait(r, std::memory_order_acquire);
  }

  // Retire the slot, then wait out any worker still pinning the pointer
  // (a bounded window: pinned workers only grab empty tickets by now).
  slot->batch.store(nullptr, std::memory_order_release);
  while (slot->readers.load(std::memory_order_acquire) != 0) cpu_relax();

  if (batch.has_error.load(std::memory_order_acquire)) {
    std::rethrow_exception(batch.error);
  }
}

ThreadPool& ThreadPool::global() {
  // MCMM_NUM_THREADS pins the worker count (the OMP_NUM_THREADS idiom).
  // The determinism battery runs the same workload at 1, 4, and
  // hardware_concurrency workers and asserts bit-identical simulated time;
  // out-of-range values fall back to the hardware default.
  static ThreadPool pool([] {
    if (const char* env = std::getenv("MCMM_NUM_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0 && v <= 4096) return static_cast<unsigned>(v);
    }
    return 0u;
  }());
  return pool;
}

}  // namespace mcmm::gpusim
