#include "gpusim/thread_pool.hpp"

#include <algorithm>

namespace mcmm::gpusim {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::max(2u, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = tasks_.back();
      tasks_.pop_back();
    }
    std::exception_ptr error;
    try {
      (*task.body)(task.begin, task.end);
    } catch (...) {
      error = std::current_exception();
    }
    {
      const std::lock_guard lock(mutex_);
      if (error && !first_error_) first_error_ = error;
      if (--remaining_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(
    std::uint64_t n,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (n == 0) return;
  const std::uint64_t workers = worker_count();
  const std::uint64_t chunks = std::min<std::uint64_t>(workers, n);
  const std::uint64_t chunk_size = (n + chunks - 1) / chunks;

  // Run single-chunk batches inline: no synchronization needed.
  if (chunks == 1) {
    body(0, n);
    return;
  }

  {
    const std::lock_guard lock(mutex_);
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::uint64_t begin = c * chunk_size;
      const std::uint64_t end = std::min(n, begin + chunk_size);
      if (begin >= end) continue;
      tasks_.push_back(Task{&body, begin, end});
      ++remaining_;
    }
  }
  work_ready_.notify_all();

  std::unique_lock lock(mutex_);
  work_done_.wait(lock, [this] { return remaining_ == 0; });
  if (first_error_) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mcmm::gpusim
