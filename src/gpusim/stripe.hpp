#pragma once
// Shared host-side execution of bulk memory operations: copies and fills at
// or above kParallelBytesThreshold are striped over the fork-join pool (the
// BabelStream init/read paths move hundreds of MiB through them); smaller
// ones stay serial — the fork-join round trip would dominate. Used by the
// eager queue (queue.cpp) and by graph replay (graph.cpp), which must move
// bytes exactly the way the eager path does so replayed results stay
// bit-identical.

#include <cstring>
#include <thread>

#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusim::stripe {

inline constexpr std::size_t kParallelBytesThreshold = std::size_t{1} << 22;

struct CopyCtx {
  unsigned char* dst;
  const unsigned char* src;
};

inline void copy_chunk(void* ctx, std::uint64_t begin, std::uint64_t end) {
  auto* c = static_cast<CopyCtx*>(ctx);
  std::memcpy(c->dst + begin, c->src + begin, end - begin);
}

struct FillCtx {
  unsigned char* dst;
  int value;
};

inline void fill_chunk(void* ctx, std::uint64_t begin, std::uint64_t end) {
  auto* f = static_cast<FillCtx*>(ctx);
  std::memset(f->dst + begin, f->value, end - begin);
}

/// Striping a memory-bound loop pays only when distinct cores sit behind
/// the workers; on an oversubscribed single-core host it just adds context
/// switches, so the copy stays serial there.
inline bool parallel_profitable(const ThreadPool& pool) {
  static const bool multi_core = std::thread::hardware_concurrency() > 1;
  return multi_core && pool.worker_count() > 1;
}

inline void run_copy(ThreadPool& pool, void* dst, const void* src,
                     std::size_t bytes) {
  if (bytes >= kParallelBytesThreshold && parallel_profitable(pool)) {
    CopyCtx ctx{static_cast<unsigned char*>(dst),
                static_cast<const unsigned char*>(src)};
    pool.run_batch(bytes, &copy_chunk, &ctx);
  } else {
    std::memcpy(dst, src, bytes);
  }
}

inline void run_fill(ThreadPool& pool, void* dst, int value,
                     std::size_t bytes) {
  if (bytes >= kParallelBytesThreshold && parallel_profitable(pool)) {
    FillCtx ctx{static_cast<unsigned char*>(dst), value};
    pool.run_batch(bytes, &fill_chunk, &ctx);
  } else {
    std::memset(dst, value, bytes);
  }
}

}  // namespace mcmm::gpusim::stripe
