#pragma once
// A simulated GPU device: descriptor + memory + queues. The Platform holds
// one device per vendor, standing in for the three-machine testbed the
// paper's ecosystem spans.

#include <memory>
#include <string_view>
#include <vector>

#include "gpusim/allocator.hpp"
#include "gpusim/descriptor.hpp"
#include "gpusim/queue.hpp"
#include "gpusim/sanitizer.hpp"

namespace mcmm::gpusim {

class Device {
 public:
  explicit Device(DeviceDescriptor descriptor)
      : descriptor_(std::move(descriptor)),
        allocator_(descriptor_.memory_bytes),
        default_queue_(std::make_unique<Queue>(*this)) {}

  /// Teardown is a sanitizer checkpoint: red zones of still-live blocks
  /// are verified and leaks reported before the allocator reclaims them.
  ~Device() {
    if (const SanitizerHooks* hooks = sanitizer_hooks();
        hooks != nullptr && hooks->on_device_teardown != nullptr) {
      hooks->on_device_teardown(hooks->ctx, *this);
    }
  }

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceDescriptor& descriptor() const noexcept {
    return descriptor_;
  }
  [[nodiscard]] Vendor vendor() const noexcept { return descriptor_.vendor; }

  [[nodiscard]] DeviceAllocator& allocator() noexcept { return allocator_; }
  [[nodiscard]] const DeviceAllocator& allocator() const noexcept {
    return allocator_;
  }

  /// Device-memory management (see DeviceAllocator for semantics).
  /// `origin` tags the allocation for sanitizer reports.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::string_view origin = {}) {
    return allocator_.allocate(bytes, origin);
  }
  void deallocate(void* p) { allocator_.deallocate(p); }
  [[nodiscard]] bool is_device_pointer(const void* p) const {
    return allocator_.owns(p);
  }

  [[nodiscard]] Queue& default_queue() noexcept { return *default_queue_; }
  [[nodiscard]] std::unique_ptr<Queue> create_queue() {
    return std::make_unique<Queue>(*this);
  }

 private:
  DeviceDescriptor descriptor_;
  DeviceAllocator allocator_;
  std::unique_ptr<Queue> default_queue_;
};

/// The simulated machine room: one device per vendor, lazily constructed.
class Platform {
 public:
  [[nodiscard]] static Platform& instance();

  [[nodiscard]] Device& device(Vendor v);

  /// The vendor's device if it has been constructed, else nullptr. Lets
  /// the sanitizer sweep existing devices without forcing all three into
  /// existence.
  [[nodiscard]] Device* try_device(Vendor v) noexcept;

  /// Replaces a vendor's device with a custom-descriptor one (tests use
  /// this for tiny-memory devices); returns the new device.
  Device& reset_device(Vendor v, const DeviceDescriptor& descriptor);

 private:
  Platform() = default;
  std::unique_ptr<Device> devices_[3];
};

}  // namespace mcmm::gpusim
