#pragma once
// A simulated GPU device: descriptor + memory + queues. The Platform holds
// N devices per vendor (lazily grown, ordinal 0 by default), standing in
// for the multi-GPU nodes of the three-machine testbed the paper's
// ecosystem spans.

#include <memory>
#include <string_view>
#include <vector>

#include "gpusim/allocator.hpp"
#include "gpusim/descriptor.hpp"
#include "gpusim/queue.hpp"
#include "gpusim/sanitizer.hpp"

namespace mcmm::gpusim {

class Device {
 public:
  explicit Device(DeviceDescriptor descriptor, unsigned ordinal = 0)
      : descriptor_(std::move(descriptor)),
        ordinal_(ordinal),
        allocator_(descriptor_.memory_bytes),
        default_queue_(std::make_unique<Queue>(*this)) {}

  /// Teardown is a sanitizer checkpoint: red zones of still-live blocks
  /// are verified and leaks reported before the allocator reclaims them.
  ~Device() {
    if (const SanitizerHooks* hooks = sanitizer_hooks();
        hooks != nullptr && hooks->on_device_teardown != nullptr) {
      hooks->on_device_teardown(hooks->ctx, *this);
    }
  }

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceDescriptor& descriptor() const noexcept {
    return descriptor_;
  }
  [[nodiscard]] Vendor vendor() const noexcept { return descriptor_.vendor; }

  /// Position of this device on its vendor's Platform rail (0 = the
  /// default device real runtimes select with cudaSetDevice(0)).
  [[nodiscard]] unsigned ordinal() const noexcept { return ordinal_; }

  [[nodiscard]] DeviceAllocator& allocator() noexcept { return allocator_; }
  [[nodiscard]] const DeviceAllocator& allocator() const noexcept {
    return allocator_;
  }

  /// Device-memory management (see DeviceAllocator for semantics).
  /// `origin` tags the allocation for sanitizer reports.
  [[nodiscard]] void* allocate(std::size_t bytes,
                               std::string_view origin = {}) {
    return allocator_.allocate(bytes, origin);
  }
  void deallocate(void* p) { allocator_.deallocate(p); }
  [[nodiscard]] bool is_device_pointer(const void* p) const {
    return allocator_.owns(p);
  }

  [[nodiscard]] Queue& default_queue() noexcept { return *default_queue_; }
  [[nodiscard]] std::unique_ptr<Queue> create_queue() {
    return std::make_unique<Queue>(*this);
  }

 private:
  DeviceDescriptor descriptor_;
  unsigned ordinal_{0};
  DeviceAllocator allocator_;
  std::unique_ptr<Queue> default_queue_;
};

/// The simulated machine room: N devices per vendor on a dense ordinal
/// rail, lazily constructed. Ordinal 0 is the device single-GPU code has
/// always used; requesting a higher ordinal materializes every device up
/// to it (each with its own allocator, default queue, and sanitizer/
/// profiler state). Sibling descriptors get a " #k" name suffix so
/// per-device attribution stays distinguishable in profiler summaries.
class Platform {
 public:
  [[nodiscard]] static Platform& instance();

  [[nodiscard]] Device& device(Vendor v, unsigned ordinal = 0);

  /// The vendor's device at `ordinal` if it has been constructed, else
  /// nullptr. Lets the sanitizer sweep existing devices without forcing
  /// any into existence.
  [[nodiscard]] Device* try_device(Vendor v, unsigned ordinal = 0) noexcept;

  /// Number of constructed devices on the vendor's rail.
  [[nodiscard]] unsigned device_count(Vendor v) const noexcept;

  /// All constructed devices of a vendor, ordinal order (sanitizer and
  /// teardown sweeps).
  [[nodiscard]] std::vector<Device*> devices_of(Vendor v) noexcept;

  /// Replaces the vendor's device at `ordinal` with a custom-descriptor
  /// one (tests use this for tiny-memory devices; weak-scaling runs use it
  /// for pristine per-device clocks); returns the new device. Materializes
  /// lower ordinals as defaults if needed so the rail stays dense.
  Device& reset_device(Vendor v, const DeviceDescriptor& descriptor,
                       unsigned ordinal = 0);

  /// Destroys devices above ordinal `keep - 1` (teardown checkpoints fire
  /// for each). Weak-scaling scenarios shrink rails back after a run.
  void trim_devices(Vendor v, unsigned keep);

 private:
  Platform() = default;
  std::vector<std::unique_ptr<Device>> devices_[3];
};

}  // namespace mcmm::gpusim
