#pragma once
// A small fork-join thread pool used as the execution engine behind all
// simulated kernels. Follows the classic static-partition data-parallel
// pattern (one contiguous chunk per worker).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mcmm::gpusim {

class ThreadPool {
 public:
  /// Creates `workers` persistent threads (0 = one per hardware thread,
  /// minimum 2 so parallel paths are exercised even on 1-core hosts).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Runs body(begin, end) on the workers over a static partition of
  /// [0, n) and blocks until every chunk finished. Exceptions from chunks
  /// are rethrown (first one wins).
  void parallel_for_chunks(
      std::uint64_t n,
      const std::function<void(std::uint64_t, std::uint64_t)>& body);

  /// The process-wide pool shared by all simulated devices.
  [[nodiscard]] static ThreadPool& global();

 private:
  struct Task {
    const std::function<void(std::uint64_t, std::uint64_t)>* body{};
    std::uint64_t begin{};
    std::uint64_t end{};
  };

  void worker_loop();

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  std::vector<Task> tasks_;     ///< pending chunks of the current batch
  std::size_t remaining_{0};    ///< chunks not yet finished
  std::exception_ptr first_error_;
  bool stop_{false};
};

}  // namespace mcmm::gpusim
