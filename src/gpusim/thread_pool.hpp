#pragma once
// The fork-join execution engine behind all simulated kernels.
//
// Design (see DESIGN.md Sec. 3, "Execution engine"): each submission builds
// one batch descriptor on the submitter's stack — kernel thunk, index range,
// an atomic chunk ticket and an atomic completion countdown — and publishes
// it into a small array of slots with a single CAS. Workers are woken
// through an atomic epoch counter (futex-backed C++20 atomic wait), grab
// chunks by ticket fetch_add, and the last finisher notifies the countdown.
// The steady-state path therefore takes no mutex and performs no heap
// allocation; the submitting thread itself participates in chunk execution,
// which both cuts latency and guarantees progress even when every worker is
// busy (nested submission from a worker thread cannot deadlock).
//
// Concurrent submission from multiple host threads is safe by construction:
// each in-flight batch owns a distinct descriptor/slot, so neither the
// chunk tickets nor the error state of overlapping batches can interleave.

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <thread>
#include <vector>

namespace mcmm::gpusim {

/// How a batch's index range is handed out to the participating threads.
enum class Schedule : std::uint8_t {
  Static,   ///< one contiguous chunk per participant, fixed at submit time
  Dynamic,  ///< participants atomically grab `grain`-sized sub-ranges
};

class ThreadPool {
 public:
  /// Type-erased chunk entry point: fn(ctx, begin, end).
  using ChunkFn = void (*)(void*, std::uint64_t, std::uint64_t);

  /// Creates `workers` persistent threads (0 = one per hardware thread,
  /// minimum 2 so parallel paths are exercised even on 1-core hosts).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Fork-join over [0, n): runs fn(ctx, begin, end) on sub-ranges that
  /// exactly tile [0, n) (never empty, each index covered once) and blocks
  /// until every chunk finished. The first exception thrown by a chunk is
  /// rethrown here, exactly once; the pool stays usable and concurrent
  /// batches are unaffected. `grain` bounds the sub-range size under
  /// Schedule::Dynamic (0 picks a cache-friendly default). Single-index
  /// batches short-circuit to a direct call — the per-launch overhead of
  /// tiny kernels is one branch, not a descriptor hand-off.
  void run_batch(std::uint64_t n, ChunkFn fn, void* ctx,
                 Schedule schedule = Schedule::Static,
                 std::uint64_t grain = 0) {
    if (n <= 1) {
      if (n == 1) fn(ctx, 0, 1);
      return;
    }
    run_batch_parallel(n, fn, ctx, schedule, grain);
  }

  /// Convenience wrapper over run_batch for any callable body(begin, end).
  /// Dispatches through a stack thunk — no std::function, no allocation.
  template <typename Body>
  void parallel_for_chunks(std::uint64_t n, const Body& body,
                           Schedule schedule = Schedule::Static,
                           std::uint64_t grain = 0) {
    run_batch(
        n,
        [](void* ctx, std::uint64_t begin, std::uint64_t end) {
          (*static_cast<const Body*>(ctx))(begin, end);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(body))),
        schedule, grain);
  }

  /// The process-wide pool shared by all simulated devices. Worker count
  /// honours MCMM_NUM_THREADS (read once, at first use).
  [[nodiscard]] static ThreadPool& global();

 private:
  struct Batch;

  /// One publication slot. `batch` is claimed by submitters via CAS;
  /// `readers` counts workers currently holding the batch pointer so the
  /// submitter can retire the stack descriptor safely.
  struct alignas(64) Slot {
    std::atomic<Batch*> batch{nullptr};
    std::atomic<std::uint32_t> readers{0};
  };

  static constexpr std::size_t kSlots = 16;

  void run_batch_parallel(std::uint64_t n, ChunkFn fn, void* ctx,
                          Schedule schedule, std::uint64_t grain);
  void worker_loop();
  bool try_execute_from(Slot& slot);
  static bool execute(Batch& batch);
  Slot* claim_slot(Batch* batch);

  std::vector<std::thread> threads_;
  alignas(64) std::atomic<std::uint64_t> epoch_{0};
  std::atomic<bool> stop_{false};
  Slot slots_[kSlots];
};

}  // namespace mcmm::gpusim
