#pragma once
// Queue-operation vocabulary shared by the eager queue (queue.hpp) and the
// kernel-graph layer (graph.hpp): completed-operation timing, memcpy
// directions, and the host-side launch policy. Factored out of queue.hpp so
// graph.hpp can name these types without pulling in the full Queue (which
// itself includes graph.hpp for capture mode).

#include <cstdint>

#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusim {

/// A completed operation's position on the simulated timeline.
struct Event {
  double sim_begin_us{0};
  double sim_end_us{0};

  [[nodiscard]] double duration_us() const noexcept {
    return sim_end_us - sim_begin_us;
  }
};

/// Direction of an explicit memcpy. PeerToPeer moves device memory between
/// two distinct devices over the simulated interconnect (Queue::memcpy_peer)
/// and is billed against the link bandwidth, not DRAM or PCIe.
enum class CopyKind { HostToDevice, DeviceToHost, DeviceToDevice, PeerToPeer };

/// What a captured graph node does when replayed. Shared vocabulary between
/// graph.hpp (node storage) and profiler.hpp (bulk per-node attribution).
enum class GraphNodeKind : std::uint8_t { Kernel, Memcpy, Memset, Marker };

/// Host-side scheduling of a launch (how the work-item range is handed to
/// the pool's threads). Purely an execution knob: it never changes the
/// simulated time or the set of work items executed. Dynamic scheduling
/// pays a little ticket traffic to keep imbalanced kernels (reductions
/// with few fat work items, stencils with ragged rows) off the critical
/// path of the slowest static chunk.
struct LaunchPolicy {
  Schedule schedule{Schedule::Static};
  std::uint64_t grain{0};  ///< dynamic sub-range size; 0 = engine default
};

}  // namespace mcmm::gpusim
