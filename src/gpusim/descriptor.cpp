#include "gpusim/descriptor.hpp"

namespace mcmm::gpusim {

DeviceDescriptor mi250x_like() {
  DeviceDescriptor d;
  d.vendor = Vendor::AMD;
  d.name = "Simulated AMD Instinct MI250X (1 GCD)";
  d.compute_units = 110;
  d.clock_ghz = 1.7;
  d.memory_bytes = std::size_t{64} * 1024 * 1024 * 1024;
  d.mem_bandwidth_gbps = 1638.0;  // half of the dual-GCD 3.2 TB/s
  d.pcie_bandwidth_gbps = 36.0;   // Infinity Fabric host link
  d.p2p_bandwidth_gbps = 100.0;   // Infinity Fabric GCD<->GCD
  d.kernel_launch_latency_us = 6.0;
  d.copy_latency_us = 8.0;
  d.peak_tflops_fp64 = 23.9;
  d.max_threads_per_block = 1024;
  d.warp_size = 64;  // wavefront
  return d;
}

DeviceDescriptor ponte_vecchio_like() {
  DeviceDescriptor d;
  d.vendor = Vendor::Intel;
  d.name = "Simulated Intel Data Center GPU Max 1550 (1 stack)";
  d.compute_units = 448;  // Xe cores across stacks / 2
  d.clock_ghz = 1.6;
  d.memory_bytes = std::size_t{64} * 1024 * 1024 * 1024;
  d.mem_bandwidth_gbps = 1638.0;
  d.pcie_bandwidth_gbps = 64.0;  // PCIe gen5 x16
  d.p2p_bandwidth_gbps = 53.0;   // Xe Link
  d.kernel_launch_latency_us = 8.0;
  d.copy_latency_us = 10.0;
  d.peak_tflops_fp64 = 26.0;
  d.max_threads_per_block = 1024;
  d.warp_size = 32;  // sub-group
  return d;
}

DeviceDescriptor h100_like() {
  DeviceDescriptor d;
  d.vendor = Vendor::NVIDIA;
  d.name = "Simulated NVIDIA H100 SXM";
  d.compute_units = 132;
  d.clock_ghz = 1.8;
  d.memory_bytes = std::size_t{80} * 1024 * 1024 * 1024;
  d.mem_bandwidth_gbps = 3350.0;
  d.pcie_bandwidth_gbps = 64.0;
  d.p2p_bandwidth_gbps = 450.0;  // NVLink gen4
  d.kernel_launch_latency_us = 4.0;
  d.copy_latency_us = 6.0;
  d.peak_tflops_fp64 = 33.5;
  d.max_threads_per_block = 1024;
  d.warp_size = 32;
  return d;
}

DeviceDescriptor descriptor_for(Vendor v) {
  switch (v) {
    case Vendor::AMD:
      return mi250x_like();
    case Vendor::Intel:
      return ponte_vecchio_like();
    case Vendor::NVIDIA:
      return h100_like();
  }
  return h100_like();
}

DeviceDescriptor tiny_test_device(std::size_t memory_bytes) {
  DeviceDescriptor d = h100_like();
  d.name = "Simulated tiny test device";
  d.memory_bytes = memory_bytes;
  return d;
}

}  // namespace mcmm::gpusim
