#pragma once
// Instrumentation seam between the simulated runtime and the gpusan
// sanitizer (src/gpusan). gpusim itself implements only the mechanisms a
// sanitizer needs — guard bands in the allocator, hook points on the queue,
// a thread-local current-work-item id maintained by the launch thunk — and
// stays ignorant of the passes built on top. gpusan installs a hook table
// here; when none is installed every probe is one relaxed atomic load and a
// predicted-not-taken branch, so uninstrumented runs keep the engine's
// allocation-free hot path.
//
// Hook contract: hooks are invoked from kernel worker threads and from
// noexcept sync points, so they must not throw; they record findings
// instead. Install/uninstall must not run concurrently with kernel
// launches.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "gpusim/dim3.hpp"
#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusim {

class Queue;
class Device;

/// How an instrumented model-layer access touches device memory. Unknown
/// marks accessor surfaces that cannot distinguish read from write (a
/// Kokkos-style `view(i)` reference); such accesses take part in bounds
/// checking but are excluded from race analysis, which would otherwise
/// flag shared read-only tables as write conflicts.
enum class AccessKind : std::uint8_t { Read, Write, Unknown };

/// Callback table a sanitizer installs. Any entry may be null.
struct SanitizerHooks {
  void* ctx{nullptr};

  /// A kernel launch passed validation; returns a nonzero launch id to
  /// track its work items (0 = do not track this launch).
  std::uint64_t (*on_launch_begin)(void* ctx, Queue& queue,
                                   const LaunchConfig& cfg,
                                   Schedule schedule){nullptr};
  /// The launch's fork-join completed (all work items ran).
  void (*on_launch_end)(void* ctx, Queue& queue,
                        std::uint64_t launch_id){nullptr};
  /// A queue sync point completed (memcpy, memset, synchronize).
  void (*on_sync)(void* ctx, Queue& queue){nullptr};
  /// A device is being destroyed with its allocations still live.
  void (*on_device_teardown)(void* ctx, Device& device){nullptr};
  /// An instrumented accessor touched [p, p+bytes).
  void (*on_device_access)(void* ctx, const void* p, std::size_t bytes,
                           AccessKind kind){nullptr};
};

namespace sanitizer_detail {
extern std::atomic<const SanitizerHooks*> g_hooks;
extern thread_local std::uint64_t t_work_item;
extern thread_local std::uint64_t t_launch_id;
}  // namespace sanitizer_detail

/// Sentinel work-item id outside any tracked kernel body.
inline constexpr std::uint64_t kNoWorkItem = ~std::uint64_t{0};

[[nodiscard]] inline const SanitizerHooks* sanitizer_hooks() noexcept {
  return sanitizer_detail::g_hooks.load(std::memory_order_acquire);
}

[[nodiscard]] inline bool sanitizer_active() noexcept {
  return sanitizer_hooks() != nullptr;
}

/// Installs (or, with nullptr, uninstalls) the hook table. The table must
/// outlive its installation.
void install_sanitizer_hooks(const SanitizerHooks* hooks) noexcept;

/// The linear id of the work item this thread is currently executing, or
/// kNoWorkItem outside a tracked kernel body.
[[nodiscard]] inline std::uint64_t current_work_item() noexcept {
  return sanitizer_detail::t_work_item;
}

/// The launch id of the tracked kernel this thread is executing, 0 if none.
[[nodiscard]] inline std::uint64_t current_launch_id() noexcept {
  return sanitizer_detail::t_launch_id;
}

inline void set_current_work_item(std::uint64_t launch_id,
                                  std::uint64_t item) noexcept {
  sanitizer_detail::t_launch_id = launch_id;
  sanitizer_detail::t_work_item = item;
}

inline void clear_current_work_item() noexcept {
  sanitizer_detail::t_launch_id = 0;
  sanitizer_detail::t_work_item = kNoWorkItem;
}

/// Model-layer accessor instrumentation entry point: strict-mode bounds
/// and race recording. No-op (load + branch) unless hooks are installed.
inline void note_device_access(const void* p, std::size_t bytes,
                               AccessKind kind) noexcept {
  const SanitizerHooks* hooks = sanitizer_hooks();
  if (hooks != nullptr && hooks->on_device_access != nullptr) {
    hooks->on_device_access(hooks->ctx, p, bytes, kind);
  }
}

}  // namespace mcmm::gpusim
