#pragma once
// Instrumentation seam between the simulated runtime and the gpuprof
// profiler (src/gpuprof), the CUPTI/rocprof-shaped sibling of the
// sanitizer seam in sanitizer.hpp. gpusim exposes only the mechanisms a
// profiler needs — begin/end hook points around every queue operation and
// a thread-local kernel-label channel — and stays ignorant of the tracer
// built on top. When no hook table is installed every probe is one relaxed
// atomic load and a predicted-not-taken branch: the launch hot path stays
// allocation-free and lock-free, and no clock is ever read.
//
// Hook contract: begin hooks run on the submitting thread immediately
// before the operation's fork-join (or copy loop) starts, end hooks
// immediately after the simulated clock advanced, so a profiler can
// timestamp both the host wall-time span and record the simulated span
// from the Event it is handed. A begin hook returns a nonzero correlation
// id to receive the matching end call (0 = do not trace this op). Hooks
// must not throw and must not launch work on the queue they observe.
// Install/uninstall must not run concurrently with queue operations.

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "gpusim/dim3.hpp"
#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusim {

class Queue;
struct KernelCosts;
struct Event;
enum class CopyKind;
enum class GraphNodeKind : std::uint8_t;

/// Per-node attribution handed to on_graph_replay_end in bulk: one array
/// for the whole replay instead of a begin/end hook pair per node (that
/// per-node hook traffic is exactly the overhead graph replay removes).
/// Sim spans are rebased onto the replay's position on the queue timeline.
struct GraphNodeSample {
  const char* label{nullptr};  ///< node label, may be null
  GraphNodeKind kind{};
  CopyKind copy_kind{};        ///< valid when kind == GraphNodeKind::Memcpy
  std::uint64_t items{0};      ///< kernel work items (0 for non-kernels)
  double bytes_read{0};
  double bytes_written{0};
  double flops{0};
  double sim_begin_us{0};
  double sim_end_us{0};
};

/// Callback table a profiler installs. Any entry may be null.
struct ProfilerHooks {
  void* ctx{nullptr};

  /// A kernel launch passed validation and is about to fork. `label` is
  /// the thread-local kernel label (see kernel_label()), may be null.
  /// Returns a nonzero correlation id to receive on_launch_end.
  std::uint64_t (*on_launch_begin)(void* ctx, Queue& queue,
                                   const LaunchConfig& cfg, Schedule schedule,
                                   const KernelCosts& costs,
                                   const char* label){nullptr};
  /// The launch completed and advanced the simulated clock by `sim`.
  void (*on_launch_end)(void* ctx, Queue& queue, std::uint64_t id,
                        const Event& sim){nullptr};

  /// An explicit memcpy passed validation and is about to run.
  std::uint64_t (*on_copy_begin)(void* ctx, Queue& queue, CopyKind kind,
                                 std::size_t bytes){nullptr};
  void (*on_copy_end)(void* ctx, Queue& queue, std::uint64_t id,
                      const Event& sim){nullptr};

  /// A memset passed validation and is about to run.
  std::uint64_t (*on_fill_begin)(void* ctx, Queue& queue,
                                 std::size_t bytes){nullptr};
  void (*on_fill_end)(void* ctx, Queue& queue, std::uint64_t id,
                      const Event& sim){nullptr};

  /// Queue::record() captured the simulated time `sim_us` (an event-record
  /// marker on the timeline; zero-duration).
  void (*on_event_record)(void* ctx, const Queue& queue,
                          double sim_us){nullptr};
  /// Queue::synchronize() completed at simulated time `sim_us` (an
  /// event-wait/sync marker; all submitted work is already joined here).
  void (*on_sync)(void* ctx, Queue& queue, double sim_us){nullptr};

  /// An ExecutableGraph replay is about to dispatch `node_count`
  /// pre-resolved nodes on `queue`. One begin/end pair covers the whole
  /// replay — there are no per-node hook calls. Returns a nonzero
  /// correlation id to receive on_graph_replay_end.
  std::uint64_t (*on_graph_replay_begin)(void* ctx, Queue& queue,
                                         std::size_t node_count){nullptr};
  /// The replay completed and advanced the simulated clock by `sim`.
  /// `nodes[0..count)` carries per-node attribution in submission order for
  /// bulk folding into summaries; the array is owned by the caller and
  /// valid only for the duration of the call.
  void (*on_graph_replay_end)(void* ctx, Queue& queue, std::uint64_t id,
                              const Event& sim, const GraphNodeSample* nodes,
                              std::size_t count){nullptr};
};

namespace profiler_detail {
extern std::atomic<const ProfilerHooks*> g_hooks;
extern thread_local const char* t_kernel_label;
}  // namespace profiler_detail

[[nodiscard]] inline const ProfilerHooks* profiler_hooks() noexcept {
  return profiler_detail::g_hooks.load(std::memory_order_acquire);
}

[[nodiscard]] inline bool profiler_active() noexcept {
  return profiler_hooks() != nullptr;
}

/// Installs (or, with nullptr, uninstalls) the hook table. The table must
/// outlive its installation.
void install_profiler_hooks(const ProfilerHooks* hooks) noexcept;

/// The label the submitting thread has attached to subsequent kernel
/// launches (nullptr = unlabelled). Consumed by profilers to name trace
/// events the way CUPTI reports kernel symbol names.
[[nodiscard]] inline const char* kernel_label() noexcept {
  return profiler_detail::t_kernel_label;
}

inline void set_kernel_label(const char* label) noexcept {
  profiler_detail::t_kernel_label = label;
}

/// RAII kernel label: names every launch submitted by this thread within
/// the scope (the NVTX push/pop idiom). The string must outlive the scope;
/// labels nest by restoring the previous one.
class KernelLabelScope {
 public:
  explicit KernelLabelScope(const char* label) noexcept
      : previous_(kernel_label()) {
    set_kernel_label(label);
  }
  ~KernelLabelScope() { set_kernel_label(previous_); }

  KernelLabelScope(const KernelLabelScope&) = delete;
  KernelLabelScope& operator=(const KernelLabelScope&) = delete;

 private:
  const char* previous_;
};

}  // namespace mcmm::gpusim
