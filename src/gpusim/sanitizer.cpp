#include "gpusim/sanitizer.hpp"

namespace mcmm::gpusim {
namespace sanitizer_detail {

std::atomic<const SanitizerHooks*> g_hooks{nullptr};
thread_local std::uint64_t t_work_item = kNoWorkItem;
thread_local std::uint64_t t_launch_id = 0;

}  // namespace sanitizer_detail

void install_sanitizer_hooks(const SanitizerHooks* hooks) noexcept {
  sanitizer_detail::g_hooks.store(hooks, std::memory_order_release);
}

}  // namespace mcmm::gpusim
