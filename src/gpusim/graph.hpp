#pragma once
// Kernel-graph capture & replay (the CUDA Graphs / hipGraph shape).
//
// A `Graph` is a device-agnostic IR: a DAG of kernel launches, memcpies,
// memsets, and event-wait markers. It is built either explicitly
// (add_kernel/add_memcpy/... with declared memory-access sets and
// dependencies) or by putting a `Queue` into capture mode, where every
// submitted operation is recorded as a node chained after the previous one
// instead of executing — stream-capture semantics: an in-order queue
// captures a linear chain.
//
// `ExecutableGraph` compiles the IR for one device. Construction runs the
// one-shot gpusan-style validation pass (cycle detection, launch-config
// limits, buffer lifetime through the device allocator, and overlap/race
// edges between unordered nodes with declared accesses), bakes every node's
// simulated duration from the same cost model the eager queue uses, chains
// per-node simulated offsets in submission order (so one replay reproduces
// the eager clock arithmetic bit-for-bit from a fresh queue), and
// pre-resolves every dispatch into a flat op array in topological-wavefront
// order. Replay then walks that array with near-zero per-node overhead: no
// allocation, no hook re-lookup per node, no per-launch sanitizer
// bookkeeping (the graph was validated once), and runs of adjacent
// single-item kernel nodes of the same body type are fused into one
// indirect call over pre-built work items. The profiler sees one begin/end
// pair per replay with bulk per-node attribution (GraphNodeSample), not one
// event per node.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "gpusim/costs.hpp"
#include "gpusim/dim3.hpp"
#include "gpusim/error.hpp"
#include "gpusim/ops.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/thread_pool.hpp"

namespace mcmm::gpusim {

class Device;
class Queue;
class ExecutableGraph;

using NodeId = std::uint32_t;

/// Base of all graph-layer errors.
class GraphError : public SimError {
 public:
  using SimError::SimError;
};

/// Capture-mode misuse: capture-while-capturing, capturing into a non-empty
/// graph, ending a capture that never began, replaying during capture.
class CaptureError : public GraphError {
 public:
  using GraphError::GraphError;
};

/// A byte range a kernel node declares it touches. Declared accesses feed
/// the one-shot race validation; nodes without declarations are still
/// ordered by their dependencies but contribute no race edges.
struct MemSpan {
  const void* ptr{nullptr};
  std::size_t bytes{0};
};

struct GraphAccess {
  std::vector<MemSpan> reads;
  std::vector<MemSpan> writes;
};

/// One defect found by the instantiate-time validation pass.
struct GraphFinding {
  std::string kind;     ///< "cycle", "invalid-launch", "freed-buffer",
                        ///< "out-of-bounds", "unknown-pointer",
                        ///< "direction-mismatch", "race"
  std::string message;  ///< human-readable, names the offending node(s)
  NodeId a{0};          ///< primary node
  NodeId b{0};          ///< second node of a race pair (else == a)
};

/// Result of the one-shot validation pass over a captured graph.
struct GraphValidation {
  std::vector<GraphFinding> findings;
  std::size_t pairs_checked{0};  ///< unordered node pairs examined for races

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Thrown by ExecutableGraph construction when validation finds defects.
class GraphValidationError : public GraphError {
 public:
  explicit GraphValidationError(GraphValidation validation)
      : GraphError(compose_message(validation)),
        validation_(std::move(validation)) {}

  [[nodiscard]] const GraphValidation& validation() const noexcept {
    return validation_;
  }

 private:
  static std::string compose_message(const GraphValidation& v);

  GraphValidation validation_;
};

class Graph {
 public:
  Graph() = default;

  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Adds a kernel node. `access` declares the device-memory footprint used
  /// by the race validation; `deps` are nodes that must complete first.
  /// The body is copied into the graph and owned by it (and by every
  /// ExecutableGraph instantiated from it).
  template <typename Body>
  NodeId add_kernel(const LaunchConfig& cfg, const KernelCosts& costs,
                    Body body, GraphAccess access = {},
                    std::vector<NodeId> deps = {}, LaunchPolicy policy = {},
                    std::string label = {}) {
    check_deps(deps);
    Node node;
    node.kind = GraphNodeKind::Kernel;
    node.cfg = cfg;
    node.costs = costs;
    node.policy = policy;
    node.label = std::move(label);
    node.access = std::move(access);
    node.deps = std::move(deps);
    attach_body(node, std::move(body));
    return push_node(std::move(node));
  }

  /// Adds a memcpy node. PeerToPeer copies are not graphable (they span two
  /// devices; an ExecutableGraph is compiled for one) — GraphError.
  NodeId add_memcpy(void* dst, const void* src, std::size_t bytes,
                    CopyKind kind, std::vector<NodeId> deps = {});

  /// Adds a memset node over device memory.
  NodeId add_memset(void* dst, int value, std::size_t bytes,
                    std::vector<NodeId> deps = {});

  /// Adds a zero-duration event-wait/marker node (a pure ordering point).
  NodeId add_marker(std::vector<NodeId> deps = {}, std::string label = {});

  /// Declares that `before` must complete before `after` starts.
  void add_dependency(NodeId before, NodeId after);

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

  [[nodiscard]] GraphNodeKind node_kind(NodeId id) const {
    return at(id).kind;
  }
  [[nodiscard]] const std::string& node_label(NodeId id) const {
    return at(id).label;
  }
  [[nodiscard]] const std::vector<NodeId>& node_deps(NodeId id) const {
    return at(id).deps;
  }

  /// True while a Queue in capture mode is recording into this graph.
  [[nodiscard]] bool capturing() const noexcept { return in_capture_; }

 private:
  friend class Queue;
  friend class ExecutableGraph;

  static constexpr NodeId kNoNode = ~NodeId{0};

  /// Per-node dispatch context handed to the pool as the type-erased
  /// ChunkFn ctx. Stable storage lives in ExecutableGraph::execs_.
  struct KernelExec {
    LaunchConfig cfg;
    void* body{nullptr};
  };

  /// Fused dispatch over a run of single-item kernel nodes sharing one
  /// body type: bodies[i] runs on items[i], inlined in one indirect call.
  using FusedFn = void (*)(void* const* bodies, const WorkItem* items,
                           std::uint32_t n);

  /// Static per-Body-type runners. Unlike the eager LaunchThunk, replay
  /// never publishes per-item sanitizer state: the graph was validated once
  /// at instantiate, which is exactly the per-launch cost replay removes.
  template <typename Body>
  struct GraphThunk {
    static void run(void* ctx, std::uint64_t begin, std::uint64_t end) {
      auto* exec = static_cast<KernelExec*>(ctx);
      Body& body = *static_cast<Body*>(exec->body);
      WorkItem item = begin == 0 ? first_work_item(exec->cfg)
                                 : work_item_from_linear(exec->cfg, begin);
      for (std::uint64_t i = begin;;) {
        body(item);
        if (++i == end) break;
        advance_work_item(exec->cfg, item);
      }
    }

    static void run_fused(void* const* bodies, const WorkItem* items,
                          std::uint32_t n) {
      for (std::uint32_t i = 0; i < n; ++i) {
        (*static_cast<Body*>(bodies[i]))(items[i]);
      }
    }
  };

  struct Node {
    GraphNodeKind kind{GraphNodeKind::Marker};
    // Kernel
    LaunchConfig cfg{};
    KernelCosts costs{};
    LaunchPolicy policy{};
    std::shared_ptr<void> body{};
    ThreadPool::ChunkFn chunk{nullptr};
    FusedFn fused{nullptr};
    // Memcpy / Memset
    void* dst{nullptr};
    const void* src{nullptr};
    std::size_t bytes{0};
    int fill_value{0};
    CopyKind copy_kind{CopyKind::HostToDevice};
    // Common
    std::string label;
    GraphAccess access;
    std::vector<NodeId> deps;
  };

  template <typename Body>
  void attach_body(Node& node, Body&& body) {
    using Stored = std::decay_t<Body>;
    auto owned = std::make_shared<Stored>(std::forward<Body>(body));
    node.body = owned;
    node.chunk = &GraphThunk<Stored>::run;
    node.fused = &GraphThunk<Stored>::run_fused;
  }

  // --- capture plumbing (called by Queue in capture mode) -----------------

  void start_capture_session();
  void end_capture_session() noexcept { in_capture_ = false; }

  /// Records one captured operation chained after the previously captured
  /// node (an in-order queue captures a linear chain). The duration is
  /// baked later, at instantiate, from the target queue's descriptor and
  /// backend profile — the same inputs the eager path would have used.
  template <typename Body>
  void record_kernel(const LaunchConfig& cfg, const KernelCosts& costs,
                     Body&& body, LaunchPolicy policy, const char* label) {
    Node node;
    node.kind = GraphNodeKind::Kernel;
    node.cfg = cfg;
    node.costs = costs;
    node.policy = policy;
    if (label != nullptr) node.label = label;
    attach_body(node, std::forward<Body>(body));
    record_node(std::move(node));
  }

  void record_memcpy(void* dst, const void* src, std::size_t bytes,
                     CopyKind kind);
  void record_memset(void* dst, int value, std::size_t bytes);
  void record_marker(const char* label);

  void record_node(Node&& node);
  NodeId push_node(Node&& node);
  void check_deps(const std::vector<NodeId>& deps) const;
  [[nodiscard]] const Node& at(NodeId id) const;

  /// Topological order (Kahn, smallest-id-first for determinism) and the
  /// 1-based wavefront of every node (wave = 1 + max wave of its deps).
  struct Topo {
    std::vector<NodeId> order;        ///< partial when a cycle exists
    std::vector<std::uint32_t> wave;  ///< indexed by NodeId
  };
  static Topo compute_topo(const std::vector<Node>& nodes,
                           GraphValidation* findings);
  static GraphValidation validate(const std::vector<Node>& nodes,
                                  Device& device);

  friend GraphValidation validate_graph(const Graph& graph, Device& device);

  std::vector<Node> nodes_;
  NodeId last_captured_{kNoNode};
  bool in_capture_{false};
};

/// A graph compiled for one device: validated exactly once, durations and
/// dispatch order pre-resolved. Replays any number of times on queues of
/// that device.
class ExecutableGraph {
 public:
  /// Validates `graph` against `queue`'s device (cycles, launch limits,
  /// buffer lifetime, races between unordered nodes) and compiles the
  /// replay schedule using the queue's current backend profile for kernel
  /// durations. Throws GraphValidationError when validation finds defects.
  ExecutableGraph(const Graph& graph, Queue& queue);

  ExecutableGraph(ExecutableGraph&&) noexcept = default;
  ExecutableGraph& operator=(ExecutableGraph&&) noexcept = default;
  ExecutableGraph(const ExecutableGraph&) = delete;
  ExecutableGraph& operator=(const ExecutableGraph&) = delete;

  /// Dispatches every node and advances the queue's simulated clock by the
  /// graph's critical-path duration in one step. Replaying a graph captured
  /// from a fresh queue onto a fresh queue reproduces the eager results and
  /// final simulated time bit-for-bit. The queue must belong to the device
  /// the graph was instantiated for.
  Event replay(Queue& queue);

  [[nodiscard]] std::size_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::size_t wave_count() const noexcept { return wave_count_; }

  /// Simulated span of one replay (critical-path end offset), microseconds.
  [[nodiscard]] double duration_us() const noexcept {
    return total_duration_us_;
  }

  /// The (clean) validation result, with pairs_checked accounting.
  [[nodiscard]] const GraphValidation& validation() const noexcept {
    return validation_;
  }

 private:
  enum class OpCode : std::uint8_t { Fused, Kernel, Copy, Fill };

  /// One pre-resolved dispatch in execution order (wave-major, id-minor).
  struct Op {
    OpCode code{OpCode::Kernel};
    Schedule schedule{Schedule::Static};
    std::uint32_t fused_first{0};
    std::uint32_t fused_count{0};
    ThreadPool::ChunkFn chunk{nullptr};
    Graph::KernelExec* exec{nullptr};
    Graph::FusedFn fused{nullptr};
    std::uint64_t total{0};
    std::uint64_t grain{0};
    void* dst{nullptr};
    const void* src{nullptr};
    std::size_t bytes{0};
    int value{0};
  };

  Device* device_{nullptr};
  ThreadPool* pool_{nullptr};
  std::vector<Graph::KernelExec> execs_;       ///< stable ChunkFn contexts
  std::vector<std::shared_ptr<void>> bodies_;  ///< keeps captured bodies alive
  std::vector<Op> ops_;
  std::vector<void*> fused_bodies_;
  std::vector<WorkItem> fused_items_;
  std::vector<std::string> labels_;            ///< owns sample label strings
  std::vector<GraphNodeSample> samples_;       ///< id-order, rebased per replay
  std::vector<double> begin_off_us_;           ///< id-order sim offsets
  std::vector<double> end_off_us_;
  double total_duration_us_{0};
  std::size_t wave_count_{0};
  std::size_t node_count_{0};
  GraphValidation validation_;
};

/// Runs the validation pass alone (what ExecutableGraph construction does,
/// without compiling). Lets tests and tools inspect findings that would
/// make instantiation throw.
[[nodiscard]] GraphValidation validate_graph(const Graph& graph,
                                             Device& device);

}  // namespace mcmm::gpusim
