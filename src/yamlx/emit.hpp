#pragma once
// Deterministic emitter for the yamlx YAML subset. emit(parse(emit(n)))
// == emit(n) for every node tree (round-trip property, tested).

#include <string>

#include "yamlx/node.hpp"

namespace mcmm::yamlx {

/// Serializes a node tree as a YAML document (two-space indentation,
/// insertion order preserved, scalars quoted only when necessary).
[[nodiscard]] std::string emit(const Node& node);

/// True when a scalar can be emitted without quotes.
[[nodiscard]] bool plain_safe(const std::string& s);

}  // namespace mcmm::yamlx
