#include "yamlx/emit.hpp"

#include <cctype>

namespace mcmm::yamlx {
namespace {

[[nodiscard]] std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

[[nodiscard]] std::string scalar_token(const std::string& s) {
  return plain_safe(s) ? s : quoted(s);
}

void emit_node(const Node& n, std::string& out, int indent);

void emit_children(const Node& n, std::string& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  if (n.is_mapping()) {
    for (const auto& [key, value] : n.as_mapping()) {
      out += pad;
      out += scalar_token(key);
      out += ':';
      if (value.is_scalar()) {
        out += ' ';
        out += scalar_token(value.as_string());
        out += '\n';
      } else if (value.size() == 0) {
        // Empty containers degrade to an empty scalar on re-parse; emit a
        // blank value to keep the document in-subset.
        out += '\n';
      } else {
        out += '\n';
        emit_children(value, out, indent + 2);
      }
    }
  } else if (n.is_sequence()) {
    for (const Node& item : n.as_sequence()) {
      out += pad;
      out += "- ";
      if (item.is_scalar()) {
        out += scalar_token(item.as_string());
        out += '\n';
      } else if (item.is_mapping() && item.size() > 0) {
        // Inline the first mapping entry after the dash.
        bool first = true;
        for (const auto& [key, value] : item.as_mapping()) {
          if (first) {
            out += scalar_token(key);
            out += ':';
            if (value.is_scalar()) {
              out += ' ';
              out += scalar_token(value.as_string());
              out += '\n';
            } else if (value.size() == 0) {
              out += '\n';
            } else {
              out += '\n';
              emit_children(value, out, indent + 4);
            }
            first = false;
            continue;
          }
          const std::string pad2(static_cast<std::size_t>(indent + 2), ' ');
          out += pad2;
          out += scalar_token(key);
          out += ':';
          if (value.is_scalar()) {
            out += ' ';
            out += scalar_token(value.as_string());
            out += '\n';
          } else if (value.size() == 0) {
            out += '\n';
          } else {
            out += '\n';
            emit_children(value, out, indent + 4);
          }
        }
      } else if (item.is_sequence() && item.size() > 0) {
        out += '\n';
        emit_children(item, out, indent + 2);
      } else {
        out += '\n';
      }
    }
  }
}

void emit_node(const Node& n, std::string& out, int indent) {
  if (n.is_scalar()) {
    out += scalar_token(n.as_string());
    out += '\n';
    return;
  }
  emit_children(n, out, indent);
}

}  // namespace

bool plain_safe(const std::string& s) {
  if (s.empty()) return false;
  if (std::isspace(static_cast<unsigned char>(s.front())) != 0 ||
      std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    return false;
  }
  const char first = s.front();
  if (first == '-' || first == '?' || first == '&' || first == '*' ||
      first == '!' || first == '|' || first == '>' || first == '\'' ||
      first == '"' || first == '%' || first == '@' || first == '[' ||
      first == '{' || first == '#') {
    return false;
  }
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\n' || c == '\t') return false;
    if (c == ':' && (i + 1 == s.size() || s[i + 1] == ' ')) return false;
    if (c == '#' && i > 0 && s[i - 1] == ' ') return false;
  }
  return true;
}

std::string emit(const Node& node) {
  std::string out;
  emit_node(node, out, 0);
  return out;
}

}  // namespace mcmm::yamlx
