#include "yamlx/device_yaml.hpp"

#include <set>

#include "yamlx/emit.hpp"
#include "yamlx/parse.hpp"

namespace mcmm::yamlx {
namespace {

[[nodiscard]] std::string format_double(double v) {
  std::string s = std::to_string(v);
  // Trim trailing zeros but keep one decimal.
  const std::size_t dot = s.find('.');
  std::size_t end = s.find_last_not_of('0');
  if (end == dot) ++end;
  return s.substr(0, end + 1);
}

}  // namespace

Node descriptor_to_yaml(const gpusim::DeviceDescriptor& d) {
  Node n = Node::mapping();
  n.set("vendor", Node::scalar(std::string(to_string(d.vendor))));
  n.set("name", Node::scalar(d.name));
  n.set("compute_units", Node::scalar(std::to_string(d.compute_units)));
  n.set("clock_ghz", Node::scalar(format_double(d.clock_ghz)));
  n.set("memory_bytes", Node::scalar(std::to_string(d.memory_bytes)));
  n.set("mem_bandwidth_gbps",
        Node::scalar(format_double(d.mem_bandwidth_gbps)));
  n.set("pcie_bandwidth_gbps",
        Node::scalar(format_double(d.pcie_bandwidth_gbps)));
  n.set("p2p_bandwidth_gbps",
        Node::scalar(format_double(d.p2p_bandwidth_gbps)));
  n.set("kernel_launch_latency_us",
        Node::scalar(format_double(d.kernel_launch_latency_us)));
  n.set("copy_latency_us", Node::scalar(format_double(d.copy_latency_us)));
  n.set("peak_tflops_fp64", Node::scalar(format_double(d.peak_tflops_fp64)));
  n.set("max_threads_per_block",
        Node::scalar(std::to_string(d.max_threads_per_block)));
  n.set("warp_size", Node::scalar(std::to_string(d.warp_size)));
  return n;
}

gpusim::DeviceDescriptor descriptor_from_yaml(const Node& n) {
  static const std::set<std::string> known_keys = {
      "vendor",          "name",
      "compute_units",   "clock_ghz",
      "memory_bytes",    "mem_bandwidth_gbps",
      "pcie_bandwidth_gbps", "p2p_bandwidth_gbps",
      "kernel_launch_latency_us",
      "copy_latency_us", "peak_tflops_fp64",
      "max_threads_per_block", "warp_size",
  };
  for (const auto& [key, value] : n.as_mapping()) {
    if (!known_keys.contains(key)) {
      throw TypeError("unknown device-descriptor key '" + key + "'");
    }
  }

  const auto vendor = parse_vendor(n.at("vendor").as_string());
  if (!vendor) {
    throw TypeError("bad vendor: " + n.at("vendor").as_string());
  }
  gpusim::DeviceDescriptor d = gpusim::descriptor_for(*vendor);

  if (const Node* v = n.find("name")) d.name = v->as_string();
  if (const Node* v = n.find("compute_units")) {
    d.compute_units = static_cast<int>(v->as_int());
  }
  if (const Node* v = n.find("clock_ghz")) d.clock_ghz = v->as_double();
  if (const Node* v = n.find("memory_bytes")) {
    d.memory_bytes = static_cast<std::size_t>(v->as_int());
  }
  if (const Node* v = n.find("mem_bandwidth_gbps")) {
    d.mem_bandwidth_gbps = v->as_double();
  }
  if (const Node* v = n.find("pcie_bandwidth_gbps")) {
    d.pcie_bandwidth_gbps = v->as_double();
  }
  if (const Node* v = n.find("p2p_bandwidth_gbps")) {
    d.p2p_bandwidth_gbps = v->as_double();
  }
  if (const Node* v = n.find("kernel_launch_latency_us")) {
    d.kernel_launch_latency_us = v->as_double();
  }
  if (const Node* v = n.find("copy_latency_us")) {
    d.copy_latency_us = v->as_double();
  }
  if (const Node* v = n.find("peak_tflops_fp64")) {
    d.peak_tflops_fp64 = v->as_double();
  }
  if (const Node* v = n.find("max_threads_per_block")) {
    d.max_threads_per_block = static_cast<std::uint32_t>(v->as_int());
  }
  if (const Node* v = n.find("warp_size")) {
    d.warp_size = static_cast<std::uint32_t>(v->as_int());
  }
  return d;
}

std::string descriptor_to_yaml_text(const gpusim::DeviceDescriptor& d) {
  return emit(descriptor_to_yaml(d));
}

gpusim::DeviceDescriptor descriptor_from_yaml_text(const std::string& text) {
  return descriptor_from_yaml(parse(text));
}

}  // namespace mcmm::yamlx
