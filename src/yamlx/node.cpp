#include "yamlx/node.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace mcmm::yamlx {

const std::string& Node::as_string() const {
  if (!is_scalar()) throw TypeError("node is not a scalar");
  return std::get<std::string>(value_);
}

std::int64_t Node::as_int() const {
  const std::string& s = as_string();
  std::int64_t out{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw TypeError("scalar '" + s + "' is not an integer");
  }
  return out;
}

double Node::as_double() const {
  const std::string& s = as_string();
  std::size_t pos = 0;
  double out{};
  try {
    out = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw TypeError("scalar '" + s + "' is not a number");
  }
  if (pos != s.size()) throw TypeError("scalar '" + s + "' is not a number");
  return out;
}

bool Node::as_bool() const {
  std::string s = as_string();
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "true" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "no" || s == "off") return false;
  throw TypeError("scalar '" + as_string() + "' is not a boolean");
}

const Sequence& Node::as_sequence() const {
  if (!is_sequence()) throw TypeError("node is not a sequence");
  return std::get<Sequence>(value_);
}

Sequence& Node::as_sequence() {
  if (!is_sequence()) throw TypeError("node is not a sequence");
  return std::get<Sequence>(value_);
}

const Mapping& Node::as_mapping() const {
  if (!is_mapping()) throw TypeError("node is not a mapping");
  return std::get<Mapping>(value_);
}

Mapping& Node::as_mapping() {
  if (!is_mapping()) throw TypeError("node is not a mapping");
  return std::get<Mapping>(value_);
}

const Node* Node::find(std::string_view key) const {
  for (const auto& [k, v] : as_mapping()) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Node& Node::at(std::string_view key) const {
  const Node* n = find(key);
  if (n == nullptr) throw TypeError("missing key '" + std::string(key) + "'");
  return *n;
}

void Node::push_back(Node n) { as_sequence().push_back(std::move(n)); }

void Node::set(std::string key, Node n) {
  for (auto& [k, v] : as_mapping()) {
    if (k == key) {
      v = std::move(n);
      return;
    }
  }
  as_mapping().emplace_back(std::move(key), std::move(n));
}

std::size_t Node::size() const {
  if (is_sequence()) return as_sequence().size();
  if (is_mapping()) return as_mapping().size();
  return as_string().size();
}

}  // namespace mcmm::yamlx
