#pragma once
// YAML binding for simulated-device descriptors: lets users define their
// own GPU configurations (a future-generation part, a laptop iGPU, ...)
// and run the whole benchmark suite against them — the "living overview"
// applied to hardware that does not exist yet.

#include <string>

#include "gpusim/descriptor.hpp"
#include "yamlx/node.hpp"

namespace mcmm::yamlx {

/// Serializes a descriptor to a YAML node tree.
[[nodiscard]] Node descriptor_to_yaml(const gpusim::DeviceDescriptor& d);

/// Rebuilds a descriptor. Unknown keys throw TypeError (catching typos in
/// hand-written configs); missing keys fall back to the vendor preset.
[[nodiscard]] gpusim::DeviceDescriptor descriptor_from_yaml(const Node& n);

[[nodiscard]] std::string descriptor_to_yaml_text(
    const gpusim::DeviceDescriptor& d);
[[nodiscard]] gpusim::DeviceDescriptor descriptor_from_yaml_text(
    const std::string& text);

}  // namespace mcmm::yamlx
