#pragma once
// yamlx: a small, self-contained YAML-subset document model. The paper's
// underlying dataset is maintained "in YAML form with conversion to HTML and
// TeX" (Acknowledgments); this module reproduces that pipeline without an
// external dependency.
//
// Supported subset: block mappings, block sequences, plain / single- /
// double-quoted scalars, comments, blank lines, nested structures.
// Not supported (throws ParseError): anchors, aliases, tags, flow
// collections, multi-document streams, block scalars.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace mcmm::yamlx {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, int line)
      : std::runtime_error("yaml parse error at line " + std::to_string(line) +
                           ": " + message),
        line_(line) {}

  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  int line_;
};

class TypeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Node;

/// Mapping preserves insertion order (like the author's YAML source, where
/// column/row order is meaningful).
using Mapping = std::vector<std::pair<std::string, Node>>;
using Sequence = std::vector<Node>;

class Node {
 public:
  Node() : value_(std::string{}) {}
  explicit Node(std::string scalar) : value_(std::move(scalar)) {}
  explicit Node(Sequence seq) : value_(std::move(seq)) {}
  explicit Node(Mapping map) : value_(std::move(map)) {}

  [[nodiscard]] static Node scalar(std::string s) { return Node(std::move(s)); }
  [[nodiscard]] static Node sequence() { return Node(Sequence{}); }
  [[nodiscard]] static Node mapping() { return Node(Mapping{}); }

  [[nodiscard]] bool is_scalar() const noexcept {
    return std::holds_alternative<std::string>(value_);
  }
  [[nodiscard]] bool is_sequence() const noexcept {
    return std::holds_alternative<Sequence>(value_);
  }
  [[nodiscard]] bool is_mapping() const noexcept {
    return std::holds_alternative<Mapping>(value_);
  }

  /// Scalar accessors; throw TypeError on kind mismatch.
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] bool as_bool() const;

  [[nodiscard]] const Sequence& as_sequence() const;
  [[nodiscard]] Sequence& as_sequence();
  [[nodiscard]] const Mapping& as_mapping() const;
  [[nodiscard]] Mapping& as_mapping();

  /// Mapping lookup; nullptr when the key is absent. Throws TypeError when
  /// the node is not a mapping.
  [[nodiscard]] const Node* find(std::string_view key) const;
  /// Mapping lookup; throws TypeError when absent.
  [[nodiscard]] const Node& at(std::string_view key) const;

  /// Appends to a sequence / mapping (builder style).
  void push_back(Node n);
  void set(std::string key, Node n);

  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] bool operator==(const Node& other) const = default;

 private:
  std::variant<std::string, Sequence, Mapping> value_;
};

}  // namespace mcmm::yamlx
