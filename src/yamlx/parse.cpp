#include "yamlx/parse.hpp"

#include <cctype>
#include <vector>

namespace mcmm::yamlx {
namespace {

struct Line {
  int indent{};
  std::string content;  ///< comment-stripped, trailing-whitespace-trimmed
  int number{};         ///< 1-based source line
};

[[nodiscard]] bool is_blank(std::string_view s) {
  return s.find_first_not_of(" \t") == std::string_view::npos;
}

/// Strips a trailing comment that is outside quotes and preceded by a space
/// (or starts the content).
[[nodiscard]] std::string strip_comment(std::string_view s, int line) {
  std::string out;
  char quote = '\0';
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote != '\0') {
      out += c;
      if (c == quote) {
        // '' escapes a quote inside single-quoted scalars.
        if (quote == '\'' && i + 1 < s.size() && s[i + 1] == '\'') {
          out += s[++i];
        } else {
          quote = '\0';
        }
      } else if (quote == '"' && c == '\\' && i + 1 < s.size()) {
        out += s[++i];
      }
      continue;
    }
    // A quote only opens a quoted scalar at the start of a token (start of
    // line or after whitespace); a mid-word apostrophe ("AMD's") is plain
    // scalar content.
    if ((c == '\'' || c == '"') &&
        (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      quote = c;
      out += c;
      continue;
    }
    if (c == '#' && (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      break;  // comment until end of line
    }
    out += c;
  }
  if (quote != '\0') throw ParseError("unterminated quoted scalar", line);
  // Trim trailing whitespace.
  const std::size_t end = out.find_last_not_of(" \t");
  return end == std::string::npos ? std::string{} : out.substr(0, end + 1);
}

[[nodiscard]] std::vector<Line> split_lines(std::string_view text) {
  std::vector<Line> lines;
  int number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view raw =
        text.substr(pos, nl == std::string_view::npos ? nl : nl - pos);
    ++number;
    pos = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    if (is_blank(raw)) continue;
    std::size_t indent = 0;
    while (indent < raw.size() && raw[indent] == ' ') ++indent;
    if (indent < raw.size() && raw[indent] == '\t') {
      throw ParseError("tab indentation is not supported", number);
    }
    const std::string content = strip_comment(raw.substr(indent), number);
    if (content.empty()) continue;  // comment-only line
    lines.push_back(Line{static_cast<int>(indent), content, number});
  }
  return lines;
}

/// Unquotes a scalar token.
[[nodiscard]] std::string parse_scalar(std::string_view s, int line) {
  if (s.empty()) return {};
  if (s.front() == '\'' || s.front() == '"') {
    const char quote = s.front();
    if (s.size() < 2 || s.back() != quote) {
      throw ParseError("unterminated quoted scalar", line);
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < s.size(); ++i) {
      const char c = s[i];
      if (quote == '\'' && c == '\'') {
        if (i + 2 >= s.size() || s[i + 1] != '\'') {
          throw ParseError("bad quote escape", line);
        }
        out += '\'';
        ++i;
      } else if (quote == '"' && c == '\\') {
        if (i + 2 >= s.size()) throw ParseError("bad escape", line);
        const char e = s[++i];
        switch (e) {
          case 'n':
            out += '\n';
            break;
          case 't':
            out += '\t';
            break;
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          default:
            throw ParseError(std::string("unknown escape \\") + e, line);
        }
      } else {
        out += c;
      }
    }
    return out;
  }
  if (s.front() == '&' || s.front() == '*' || s.front() == '!') {
    throw ParseError("anchors/aliases/tags are not supported", line);
  }
  if (s.front() == '[' || s.front() == '{') {
    throw ParseError("flow collections are not supported", line);
  }
  if (s.front() == '|' || s.front() == '>') {
    throw ParseError("block scalars are not supported", line);
  }
  return std::string(s);
}

/// Finds the position of the `: ` key separator outside quotes; npos if the
/// content is not a mapping entry.
[[nodiscard]] std::size_t find_key_separator(std::string_view s) {
  char quote = '\0';
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      continue;
    }
    if (c == ':' && (i + 1 == s.size() || s[i + 1] == ' ')) return i;
  }
  return std::string_view::npos;
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  [[nodiscard]] Node parse_document() {
    if (lines_.empty()) return Node::mapping();
    if (lines_.front().content == "---") ++pos_;
    if (pos_ >= lines_.size()) return Node::mapping();
    Node root = parse_block(lines_[pos_].indent);
    if (pos_ < lines_.size()) {
      throw ParseError("trailing content (multi-document streams are not "
                       "supported)",
                       lines_[pos_].number);
    }
    return root;
  }

 private:
  [[nodiscard]] Node parse_block(int indent) {
    const Line& first = lines_[pos_];
    if (first.indent != indent) {
      throw ParseError("unexpected indentation", first.number);
    }
    if (first.content == "---") {
      throw ParseError("multi-document streams are not supported",
                       first.number);
    }
    if (first.content.rfind("- ", 0) == 0 || first.content == "-") {
      return parse_sequence(indent);
    }
    return parse_mapping(indent);
  }

  [[nodiscard]] Node parse_sequence(int indent) {
    Node seq = Node::sequence();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           (lines_[pos_].content.rfind("- ", 0) == 0 ||
            lines_[pos_].content == "-")) {
      const Line item = lines_[pos_];
      if (item.content == "-") {
        ++pos_;
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          seq.push_back(parse_block(lines_[pos_].indent));
        } else {
          seq.push_back(Node::scalar(""));
        }
        continue;
      }
      const std::string_view rest =
          std::string_view(item.content).substr(2);
      const std::size_t sep = find_key_separator(rest);
      if (sep != std::string_view::npos && rest.front() != '\'' &&
          rest.front() != '"') {
        // "- key: value" starts an inline mapping whose keys sit at the
        // column of `rest`.
        const int map_indent = indent + 2;
        lines_[pos_] = Line{map_indent, std::string(rest), item.number};
        seq.push_back(parse_mapping(map_indent));
      } else {
        ++pos_;
        seq.push_back(Node::scalar(parse_scalar(rest, item.number)));
      }
    }
    if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
      throw ParseError("unexpected deeper indentation after sequence",
                       lines_[pos_].number);
    }
    return seq;
  }

  [[nodiscard]] Node parse_mapping(int indent) {
    Node map = Node::mapping();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
      const Line& line = lines_[pos_];
      if (line.content.rfind("- ", 0) == 0 || line.content == "-") break;
      const std::size_t sep = find_key_separator(line.content);
      if (sep == std::string_view::npos) {
        throw ParseError("expected 'key:' mapping entry", line.number);
      }
      std::string key =
          parse_scalar(std::string_view(line.content).substr(0, sep),
                       line.number);
      std::string_view rest = std::string_view(line.content).substr(sep + 1);
      while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
      if (map.find(key) != nullptr) {
        throw ParseError("duplicate key '" + key + "'", line.number);
      }
      if (!rest.empty()) {
        map.set(std::move(key), Node::scalar(parse_scalar(rest, line.number)));
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
        map.set(std::move(key), parse_block(lines_[pos_].indent));
      } else if (pos_ < lines_.size() && lines_[pos_].indent == indent &&
                 (lines_[pos_].content.rfind("- ", 0) == 0 ||
                  lines_[pos_].content == "-")) {
        // Sequences are commonly indented at the same level as their key.
        map.set(std::move(key), parse_sequence(indent));
      } else {
        map.set(std::move(key), Node::scalar(""));
      }
    }
    if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
      throw ParseError("unexpected deeper indentation", lines_[pos_].number);
    }
    return map;
  }

  std::vector<Line> lines_;
  std::size_t pos_{0};
};

}  // namespace

Node parse(std::string_view text) {
  return Parser(split_lines(text)).parse_document();
}

}  // namespace mcmm::yamlx
