#pragma once
// Parser for the yamlx YAML subset (see node.hpp for the supported grammar).

#include <string_view>

#include "yamlx/node.hpp"

namespace mcmm::yamlx {

/// Parses a complete document. Throws ParseError with a line number on any
/// construct outside the supported subset.
[[nodiscard]] Node parse(std::string_view text);

}  // namespace mcmm::yamlx
