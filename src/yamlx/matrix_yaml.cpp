#include "yamlx/matrix_yaml.hpp"

#include <string>

#include "core/error.hpp"
#include "yamlx/emit.hpp"
#include "yamlx/parse.hpp"

namespace mcmm::yamlx {
namespace {

[[nodiscard]] Node string_sequence(const std::vector<std::string>& items) {
  Node seq = Node::sequence();
  for (const std::string& s : items) seq.push_back(Node::scalar(s));
  return seq;
}

[[nodiscard]] std::vector<std::string> to_string_vector(const Node& seq) {
  std::vector<std::string> out;
  for (const Node& n : seq.as_sequence()) out.push_back(n.as_string());
  return out;
}

[[nodiscard]] Node rating_to_yaml(const Rating& r) {
  Node n = Node::mapping();
  n.set("category", Node::scalar(std::string(category_name(r.category))));
  n.set("provider", Node::scalar(std::string(to_string(r.provider))));
  n.set("rationale", Node::scalar(r.rationale));
  return n;
}

[[nodiscard]] Rating rating_from_yaml(const Node& n) {
  Rating r;
  const auto cat = parse_category(n.at("category").as_string());
  if (!cat) throw TypeError("bad category: " + n.at("category").as_string());
  const auto prov = parse_provider(n.at("provider").as_string());
  if (!prov) throw TypeError("bad provider: " + n.at("provider").as_string());
  r.category = *cat;
  r.provider = *prov;
  r.rationale = n.at("rationale").as_string();
  return r;
}

[[nodiscard]] Node route_to_yaml(const Route& r) {
  Node n = Node::mapping();
  n.set("name", Node::scalar(r.name));
  n.set("kind", Node::scalar(std::string(to_string(r.kind))));
  n.set("provider", Node::scalar(std::string(to_string(r.provider))));
  n.set("maturity", Node::scalar(std::string(to_string(r.maturity))));
  n.set("toolchain", Node::scalar(r.toolchain));
  if (!r.flags.empty()) n.set("flags", string_sequence(r.flags));
  if (!r.environment.empty()) {
    n.set("environment", string_sequence(r.environment));
  }
  if (!r.notes.empty()) n.set("notes", Node::scalar(r.notes));
  return n;
}

[[nodiscard]] Route route_from_yaml(const Node& n) {
  Route r;
  r.name = n.at("name").as_string();
  const auto kind = parse_route_kind(n.at("kind").as_string());
  if (!kind) throw TypeError("bad route kind: " + n.at("kind").as_string());
  r.kind = *kind;
  const auto prov = parse_provider(n.at("provider").as_string());
  if (!prov) throw TypeError("bad provider: " + n.at("provider").as_string());
  r.provider = *prov;
  const auto mat = parse_maturity(n.at("maturity").as_string());
  if (!mat) throw TypeError("bad maturity: " + n.at("maturity").as_string());
  r.maturity = *mat;
  r.toolchain = n.at("toolchain").as_string();
  if (const Node* flags = n.find("flags")) r.flags = to_string_vector(*flags);
  if (const Node* env = n.find("environment")) {
    r.environment = to_string_vector(*env);
  }
  if (const Node* notes = n.find("notes")) r.notes = notes->as_string();
  return r;
}

}  // namespace

Node matrix_to_yaml(const CompatibilityMatrix& m) {
  Node root = Node::mapping();

  Node descs = Node::sequence();
  for (const Description* d : m.descriptions()) {
    Node n = Node::mapping();
    n.set("id", Node::scalar(std::to_string(d->id)));
    n.set("title", Node::scalar(d->title));
    n.set("text", Node::scalar(d->text));
    if (!d->references.empty()) {
      n.set("references", string_sequence(d->references));
    }
    descs.push_back(std::move(n));
  }
  root.set("descriptions", std::move(descs));

  Node cells = Node::sequence();
  for (const SupportEntry* e : m.entries()) {
    Node n = Node::mapping();
    n.set("vendor", Node::scalar(std::string(to_string(e->combo.vendor))));
    n.set("model", Node::scalar(std::string(to_string(e->combo.model))));
    n.set("language",
          Node::scalar(std::string(to_string(e->combo.language))));
    n.set("description", Node::scalar(std::to_string(e->description_id)));
    n.set("inferred", Node::scalar(e->inferred ? "true" : "false"));
    Node ratings = Node::sequence();
    for (const Rating& r : e->ratings) ratings.push_back(rating_to_yaml(r));
    n.set("ratings", std::move(ratings));
    if (!e->routes.empty()) {
      Node routes = Node::sequence();
      for (const Route& r : e->routes) routes.push_back(route_to_yaml(r));
      n.set("routes", std::move(routes));
    }
    cells.push_back(std::move(n));
  }
  root.set("cells", std::move(cells));
  return root;
}

CompatibilityMatrix matrix_from_yaml(const Node& root) {
  CompatibilityMatrix m;
  for (const Node& n : root.at("descriptions").as_sequence()) {
    Description d;
    d.id = static_cast<int>(n.at("id").as_int());
    d.title = n.at("title").as_string();
    d.text = n.at("text").as_string();
    if (const Node* refs = n.find("references")) {
      d.references = to_string_vector(*refs);
    }
    m.add_description(std::move(d));
  }
  for (const Node& n : root.at("cells").as_sequence()) {
    SupportEntry e;
    const auto vendor = parse_vendor(n.at("vendor").as_string());
    const auto model = parse_model(n.at("model").as_string());
    const auto language = parse_language(n.at("language").as_string());
    if (!vendor || !model || !language) {
      throw TypeError("bad combination in cell");
    }
    e.combo = Combination{*vendor, *model, *language};
    e.description_id = static_cast<int>(n.at("description").as_int());
    e.inferred = n.at("inferred").as_bool();
    for (const Node& r : n.at("ratings").as_sequence()) {
      e.ratings.push_back(rating_from_yaml(r));
    }
    if (const Node* routes = n.find("routes")) {
      for (const Node& r : routes->as_sequence()) {
        e.routes.push_back(route_from_yaml(r));
      }
    }
    m.add_entry(std::move(e));
  }
  m.validate();
  return m;
}

std::string matrix_to_yaml_text(const CompatibilityMatrix& m) {
  return emit(matrix_to_yaml(m));
}

CompatibilityMatrix matrix_from_yaml_text(const std::string& s) {
  return matrix_from_yaml(parse(s));
}

}  // namespace mcmm::yamlx
