#pragma once
// YAML binding for the compatibility matrix — the reproduction of the
// author's "source data in YAML form" pipeline: the full dataset can be
// exported to YAML, edited, and re-imported (with validation).

#include <string>

#include "core/matrix.hpp"
#include "yamlx/node.hpp"

namespace mcmm::yamlx {

/// Serializes the full matrix (descriptions + cells + routes) to a node tree.
[[nodiscard]] Node matrix_to_yaml(const CompatibilityMatrix& m);

/// Rebuilds a validated matrix from a node tree produced by matrix_to_yaml
/// (or hand-written in the same schema). Throws TypeError / IntegrityError on
/// malformed input.
[[nodiscard]] CompatibilityMatrix matrix_from_yaml(const Node& root);

/// Convenience: full text round trip.
[[nodiscard]] std::string matrix_to_yaml_text(const CompatibilityMatrix& m);
[[nodiscard]] CompatibilityMatrix matrix_from_yaml_text(const std::string& s);

}  // namespace mcmm::yamlx
