#pragma once
// Matrix diffing: the paper is "a living overview of the evolving field,
// with snapshots in paper form at regular intervals" (Acknowledgments),
// tracked in a GitHub repository [55]. This module compares two snapshots
// of the compatibility matrix and reports what changed — the tooling a
// living overview needs.

#include <string>
#include <vector>

#include "core/matrix.hpp"

namespace mcmm {

/// One cell whose rating changed between snapshots.
struct RatingChange {
  Combination combo{};
  SupportCategory before{};
  SupportCategory after{};

  /// Positive = support improved.
  [[nodiscard]] int delta() const noexcept {
    return score(after) - score(before);
  }
};

/// One route added or removed on a cell.
struct RouteChange {
  Combination combo{};
  std::string route_name;
  bool added{};  ///< false = removed
};

struct MatrixDiff {
  std::vector<RatingChange> rating_changes;
  std::vector<RouteChange> route_changes;
  std::vector<Combination> cells_only_in_before;
  std::vector<Combination> cells_only_in_after;

  [[nodiscard]] bool empty() const noexcept {
    return rating_changes.empty() && route_changes.empty() &&
           cells_only_in_before.empty() && cells_only_in_after.empty();
  }
  [[nodiscard]] int improvements() const noexcept;
  [[nodiscard]] int regressions() const noexcept;
};

/// Structural diff between two snapshots (compares best categories and
/// route name sets per cell).
[[nodiscard]] MatrixDiff diff_matrices(const CompatibilityMatrix& before,
                                       const CompatibilityMatrix& after);

/// Human-readable changelog (the release-notes text of a snapshot bump).
[[nodiscard]] std::string format_diff(const MatrixDiff& diff);

}  // namespace mcmm
