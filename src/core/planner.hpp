#pragma once
// RoutePlanner: the "guide for scientific programmers" the paper's abstract
// promises, as an API. Given a language, target platform(s), and policy
// constraints, it enumerates and ranks the concrete routes recorded in the
// knowledge base.

#include <optional>
#include <string>
#include <vector>

#include "core/matrix.hpp"

namespace mcmm {

/// Constraints a user brings to the table.
struct PlannerQuery {
  Language language{Language::Cpp};
  /// Platforms the code must run on. Empty = any single platform is fine.
  std::vector<Vendor> must_run_on;
  /// Restrict to specific models (empty = all models considered).
  std::vector<Model> allowed_models;
  /// Require at least this support tier on every requested platform.
  SupportCategory minimum_category{SupportCategory::Limited};
  /// Drop routes that are unmaintained or retired.
  bool require_maintained{true};
  /// Only accept support provided by the platform vendor itself.
  bool require_vendor_support{false};
  /// Accept one-shot source-translation routes (HIPIFY, SYCLomatic, the
  /// OpenACC migration tool). Teams planning a maintained single source
  /// usually want this off.
  bool allow_translators{true};
};

/// One ranked recommendation.
struct PlannedRoute {
  Model model{};
  /// Per requested vendor: the cell and the best concrete route on it.
  struct PerVendor {
    Vendor vendor{};
    SupportCategory category{};
    Route route;
  };
  std::vector<PerVendor> platforms;
  /// Aggregate rank (higher is better): min cell score across platforms,
  /// tie-broken by route ranks.
  int rank{};
  /// Human-readable explanation of the ranking.
  std::string rationale;
};

class RoutePlanner {
 public:
  explicit RoutePlanner(const CompatibilityMatrix& matrix) : matrix_(&matrix) {}

  /// Returns recommendations sorted best-first. Empty result means no model
  /// satisfies the constraints (e.g. OpenACC-only + must_run_on Intel).
  [[nodiscard]] std::vector<PlannedRoute> plan(const PlannerQuery& q) const;

 private:
  const CompatibilityMatrix* matrix_;
};

}  // namespace mcmm
