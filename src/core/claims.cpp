#include "core/claims.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"
#include "core/statistics.hpp"

namespace mcmm {
namespace {

struct ClaimDef {
  const char* id;
  const char* statement;
  std::function<ClaimResult(const CompatibilityMatrix&)> eval;
};

[[nodiscard]] bool usable_cell(const CompatibilityMatrix& m, Vendor v,
                               Model mo, Language l) {
  const SupportEntry* e = m.find(Combination{v, mo, l});
  return e != nullptr && e->usable();
}

[[nodiscard]] bool vendor_cell(const CompatibilityMatrix& m, Vendor v,
                               Model mo, Language l) {
  const SupportEntry* e = m.find(Combination{v, mo, l});
  if (e == nullptr) return false;
  return std::any_of(e->ratings.begin(), e->ratings.end(), [](const Rating& r) {
    return vendor_provided(r.category);
  });
}

const std::vector<ClaimDef>& claim_defs() {
  static const std::vector<ClaimDef> defs = {
      {"cell-count",
       "51 possible combinations are explored (abstract, Sec. 3)",
       [](const CompatibilityMatrix& m) {
         std::ostringstream ev;
         ev << m.entry_count() << " cells in matrix";
         return ClaimResult{"", "", m.entry_count() == 51, ev.str()};
       }},
      {"description-count",
       "the combinations are explained in 44 unique descriptions (Sec. 3)",
       [](const CompatibilityMatrix& m) {
         std::ostringstream ev;
         ev << m.description_count() << " descriptions";
         return ClaimResult{"", "", m.description_count() == 44, ev.str()};
       }},
      {"routes-over-50",
       "more than 50 routes for programming a GPU device are identified "
       "(Sec. 1)",
       [](const CompatibilityMatrix& m) {
         std::ostringstream ev;
         ev << m.total_route_count() << " concrete routes recorded";
         return ClaimResult{"", "", m.total_route_count() > 50, ev.str()};
       }},
      {"openmp-everywhere",
       "OpenMP is supported on all three platforms, for both C++ and Fortran "
       "(Sec. 6)",
       [](const CompatibilityMatrix& m) {
         bool ok = true;
         std::ostringstream ev;
         for (const Vendor v : kAllVendors) {
           for (const Language l : {Language::Cpp, Language::Fortran}) {
             const bool u = vendor_cell(m, v, Model::OpenMP, l);
             ev << to_string(v) << "/" << to_string(l) << "="
                << (u ? "vendor" : "NO") << " ";
             ok = ok && u;
           }
         }
         return ClaimResult{"", "", ok, ev.str()};
       }},
      {"openmp-only-native-fortran",
       "the only natively (vendor-)supported programming model for Fortran "
       "on all three platforms is OpenMP (Sec. 6)",
       [](const CompatibilityMatrix& m) {
         std::ostringstream ev;
         bool ok = true;
         for (const Model mo : kAllModels) {
           if (mo == Model::Python) continue;
           int vendors = 0;
           for (const Vendor v : kAllVendors) {
             if (vendor_cell(m, v, mo, Language::Fortran)) ++vendors;
           }
           if (vendors == 3) {
             ev << to_string(mo) << " native-Fortran on all 3; ";
             if (mo != Model::OpenMP) ok = false;
           }
         }
         const bool omp_everywhere = [&] {
           for (const Vendor v : kAllVendors) {
             if (!vendor_cell(m, v, Model::OpenMP, Language::Fortran)) {
               return false;
             }
           }
           return true;
         }();
         return ClaimResult{"", "", ok && omp_everywhere, ev.str()};
       }},
      {"sycl-all-platforms",
       "SYCL supports all three GPU platforms for C++ (Sec. 6)",
       [](const CompatibilityMatrix& m) {
         bool ok = true;
         std::ostringstream ev;
         for (const Vendor v : kAllVendors) {
           const bool u = usable_cell(m, v, Model::SYCL, Language::Cpp);
           ev << to_string(v) << "=" << (u ? "yes" : "no") << " ";
           ok = ok && u;
         }
         return ClaimResult{"", "", ok, ev.str()};
       }},
      {"kokkos-alpaka-all-platforms",
       "Kokkos and Alpaka support all three platforms for C++ (Sec. 6)",
       [](const CompatibilityMatrix& m) {
         bool ok = true;
         std::ostringstream ev;
         for (const Model mo : {Model::Kokkos, Model::Alpaka}) {
           for (const Vendor v : kAllVendors) {
             const bool u = usable_cell(m, v, mo, Language::Cpp);
             ev << to_string(mo) << "/" << to_string(v) << "="
                << (u ? "yes" : "no") << " ";
             ok = ok && u;
           }
         }
         return ClaimResult{"", "", ok, ev.str()};
       }},
      {"openacc-no-intel",
       "OpenACC can be used on NVIDIA and AMD GPUs, but (real) support for "
       "Intel GPUs does not exist (Sec. 6)",
       [](const CompatibilityMatrix& m) {
         const bool nv = usable_cell(m, Vendor::NVIDIA, Model::OpenACC,
                                     Language::Cpp);
         const bool amd =
             usable_cell(m, Vendor::AMD, Model::OpenACC, Language::Cpp);
         const SupportEntry* intel =
             m.find(Combination{Vendor::Intel, Model::OpenACC, Language::Cpp});
         // Intel offers only a one-shot migration tool; the cell must be at
         // best "limited".
         const bool intel_weak =
             intel != nullptr &&
             score(intel->best_category()) <= score(SupportCategory::Limited);
         std::ostringstream ev;
         ev << "NVIDIA=" << nv << " AMD=" << amd
            << " Intel-category=" << category_name(intel->best_category());
         return ClaimResult{"", "", nv && amd && intel_weak, ev.str()};
       }},
      {"nvidia-most-comprehensive",
       "the support for NVIDIA GPUs can be considered most comprehensive "
       "(Sec. 6)",
       [](const CompatibilityMatrix& m) {
         const Statistics stats(m);
         std::ostringstream ev;
         for (const VendorStats& vs : stats.vendors()) {
           ev << to_string(vs.vendor) << "=" << vs.coverage_score << " ";
         }
         return ClaimResult{
             "", "", stats.most_comprehensive_vendor() == Vendor::NVIDIA,
             ev.str()};
       }},
      {"fortran-severely-thinner",
       "while C++ support is well on the way, the situation looks severely "
       "different for Fortran (Sec. 6)",
       [](const CompatibilityMatrix& m) {
         const Statistics stats(m);
         const LanguageStats& cpp = stats.language(Language::Cpp);
         const LanguageStats& f = stats.language(Language::Fortran);
         std::ostringstream ev;
         ev << "C++ coverage=" << cpp.coverage_score
            << " Fortran coverage=" << f.coverage_score;
         // "Severely": Fortran's mean score is at most 60 % of C++'s.
         return ClaimResult{
             "", "", f.coverage_score <= 0.6 * cpp.coverage_score, ev.str()};
       }},
      {"python-all-platforms",
       "Python is well-supported on all three platforms (Sec. 6)",
       [](const CompatibilityMatrix& m) {
         bool ok = true;
         std::ostringstream ev;
         for (const Vendor v : kAllVendors) {
           const bool u =
               usable_cell(m, v, Model::Python, Language::Python);
           ev << to_string(v) << "=" << (u ? "yes" : "no") << " ";
           ok = ok && u;
         }
         return ClaimResult{"", "", ok, ev.str()};
       }},
      {"cuda-hip-shared-source",
       "NVIDIA and AMD GPUs can be used from the same HIP source code "
       "(Sec. 6)",
       [](const CompatibilityMatrix& m) {
         const bool nv =
             usable_cell(m, Vendor::NVIDIA, Model::HIP, Language::Cpp);
         const bool amd =
             usable_cell(m, Vendor::AMD, Model::HIP, Language::Cpp);
         std::ostringstream ev;
         ev << "HIP C++: NVIDIA=" << nv << " AMD=" << amd;
         return ClaimResult{"", "", nv && amd, ev.str()};
       }},
      {"amd-community-carried",
       "much of the support is driven by the community, especially for "
       "the AMD platform (Sec. 5, Topicality)",
       [](const CompatibilityMatrix& m) {
         std::ostringstream ev;
         std::map<Vendor, int> non_vendor_cells;
         for (const SupportEntry* e : m.entries()) {
           if (!e->usable()) continue;
           if (e->primary().provider != Provider::PlatformVendor) {
             non_vendor_cells[e->combo.vendor]++;
           }
         }
         for (const Vendor v : kAllVendors) {
           ev << to_string(v) << "=" << non_vendor_cells[v] << " ";
         }
         const bool ok =
             non_vendor_cells[Vendor::AMD] >
                 non_vendor_cells[Vendor::Intel] &&
             non_vendor_cells[Vendor::AMD] >=
                 non_vendor_cells[Vendor::NVIDIA];
         return ClaimResult{"", "", ok, ev.str()};
       }},
      {"llvm-key-component",
       "a key component in the ecosystem is the LLVM toolchain: the "
       "native-model compilers of all three vendors are LLVM-based "
       "(Sec. 6)",
       [](const CompatibilityMatrix& m) {
         // Toolchains known to be LLVM-based (the paper's Sec. 6
         // discussion: AMD Clang behind hipcc, Intel's DPC++/icpx/ifx,
         // NVIDIA's NVHPC backends, Clang/Flang themselves).
         const auto is_llvm = [](const Route& r) {
           for (const char* marker :
                {"clang", "hipcc", "icpx", "ifx", "flang", "llvm",
                 "aomp", "syclcc", "c2s", "cuspv", "dpct"}) {
             if (r.toolchain.find(marker) != std::string::npos ||
                 r.name.find("LLVM") != std::string::npos ||
                 r.name.find("Clang") != std::string::npos ||
                 r.name.find("DPC++") != std::string::npos) {
               return true;
             }
           }
           return false;
         };
         std::ostringstream ev;
         bool ok = true;
         // The native model of each vendor must have an LLVM-based route.
         const struct {
           Vendor vendor;
           Model model;
         } natives[] = {{Vendor::NVIDIA, Model::CUDA},
                        {Vendor::AMD, Model::HIP},
                        {Vendor::Intel, Model::SYCL}};
         for (const auto& nat : natives) {
           const SupportEntry& e =
               m.at(nat.vendor, nat.model, Language::Cpp);
           const bool any = std::any_of(e.routes.begin(), e.routes.end(),
                                        is_llvm);
           ev << to_string(nat.vendor) << "=" << (any ? "llvm" : "NO")
              << " ";
           ok = ok && any;
         }
         // And LLVM-based routes must make up a substantial share of the
         // whole table ("through LLVM, many third-party projects are
         // enabled").
         std::size_t llvm_routes = 0, total = 0;
         for (const SupportEntry* e : m.entries()) {
           for (const Route& r : e->routes) {
             ++total;
             if (is_llvm(r)) ++llvm_routes;
           }
         }
         ev << "(" << llvm_routes << "/" << total << " routes LLVM-based)";
         ok = ok && llvm_routes * 5 >= total * 2;  // at least 40 %
         return ClaimResult{"", "", ok, ev.str()};
       }},
      {"sycl-fortran-nowhere",
       "SYCL, a C++-based model, has no Fortran support on any platform "
       "(Sec. 4, item 6)",
       [](const CompatibilityMatrix& m) {
         bool ok = true;
         std::ostringstream ev;
         for (const Vendor v : kAllVendors) {
           const SupportEntry* e =
               m.find(Combination{v, Model::SYCL, Language::Fortran});
           const bool none =
               e != nullptr && e->best_category() == SupportCategory::None;
           ev << to_string(v) << "=" << (none ? "none" : "SUPPORT?") << " ";
           ok = ok && none;
         }
         return ClaimResult{"", "", ok, ev.str()};
       }},
  };
  return defs;
}

}  // namespace

std::vector<ClaimResult> Claims::evaluate_all() const {
  std::vector<ClaimResult> out;
  out.reserve(claim_defs().size());
  for (const ClaimDef& def : claim_defs()) {
    ClaimResult r = def.eval(*matrix_);
    r.id = def.id;
    r.statement = def.statement;
    out.push_back(std::move(r));
  }
  return out;
}

ClaimResult Claims::evaluate(const std::string& id) const {
  for (const ClaimDef& def : claim_defs()) {
    if (id == def.id) {
      ClaimResult r = def.eval(*matrix_);
      r.id = def.id;
      r.statement = def.statement;
      return r;
    }
  }
  throw LookupError("unknown claim id: " + id);
}

std::vector<std::string> Claims::ids() const {
  std::vector<std::string> out;
  for (const ClaimDef& def : claim_defs()) out.emplace_back(def.id);
  return out;
}

}  // namespace mcmm
