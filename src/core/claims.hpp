#pragma once
// Machine-checkable versions of the structural claims the paper makes in its
// abstract, Sec. 1, and the conclusion (Sec. 6). Each claim evaluates against
// a CompatibilityMatrix so the "results" of the paper can be regenerated and
// regression-tested.

#include <functional>
#include <string>
#include <vector>

#include "core/matrix.hpp"

namespace mcmm {

struct ClaimResult {
  std::string id;       ///< short stable identifier, e.g. "openmp-everywhere"
  std::string statement;  ///< the claim as phrased by the paper
  bool holds{};
  std::string evidence;  ///< counts / cells backing the verdict
};

class Claims {
 public:
  explicit Claims(const CompatibilityMatrix& matrix) : matrix_(&matrix) {}

  /// Evaluates all registered paper claims.
  [[nodiscard]] std::vector<ClaimResult> evaluate_all() const;

  /// Evaluates one claim by id; throws LookupError for unknown ids.
  [[nodiscard]] ClaimResult evaluate(const std::string& id) const;

  [[nodiscard]] std::vector<std::string> ids() const;

 private:
  const CompatibilityMatrix* matrix_;
};

}  // namespace mcmm
