#include "core/route.hpp"

namespace mcmm {

std::string_view to_string(RouteKind k) noexcept {
  switch (k) {
    case RouteKind::Compiler:
      return "compiler";
    case RouteKind::Translator:
      return "translator";
    case RouteKind::Bindings:
      return "bindings";
    case RouteKind::Library:
      return "library";
    case RouteKind::Runtime:
      return "runtime";
  }
  return "?";
}

std::string_view to_string(Maturity m) noexcept {
  switch (m) {
    case Maturity::Production:
      return "production";
    case Maturity::Stable:
      return "stable";
    case Maturity::Experimental:
      return "experimental";
    case Maturity::Unmaintained:
      return "unmaintained";
    case Maturity::Retired:
      return "retired";
  }
  return "?";
}

std::optional<RouteKind> parse_route_kind(std::string_view s) noexcept {
  if (s == "compiler") return RouteKind::Compiler;
  if (s == "translator") return RouteKind::Translator;
  if (s == "bindings") return RouteKind::Bindings;
  if (s == "library") return RouteKind::Library;
  if (s == "runtime") return RouteKind::Runtime;
  return std::nullopt;
}

std::optional<Maturity> parse_maturity(std::string_view s) noexcept {
  if (s == "production") return Maturity::Production;
  if (s == "stable") return Maturity::Stable;
  if (s == "experimental") return Maturity::Experimental;
  if (s == "unmaintained") return Maturity::Unmaintained;
  if (s == "retired") return Maturity::Retired;
  return std::nullopt;
}

int route_rank(const Route& r) noexcept {
  int rank = 0;
  switch (r.maturity) {
    case Maturity::Production:
      rank += 400;
      break;
    case Maturity::Stable:
      rank += 300;
      break;
    case Maturity::Experimental:
      rank += 150;
      break;
    case Maturity::Unmaintained:
      rank += 50;
      break;
    case Maturity::Retired:
      rank += 0;
      break;
  }
  switch (r.provider) {
    case Provider::PlatformVendor:
      rank += 8;
      break;
    case Provider::OtherVendor:
      rank += 5;
      break;
    case Provider::Community:
      rank += 4;
      break;
    case Provider::Nobody:
      break;
  }
  // Direct compilation beats translation pipelines and raw bindings.
  switch (r.kind) {
    case RouteKind::Compiler:
      rank += 3;
      break;
    case RouteKind::Runtime:
    case RouteKind::Library:
      rank += 2;
      break;
    case RouteKind::Bindings:
      rank += 1;
      break;
    case RouteKind::Translator:
      break;
  }
  return rank;
}

}  // namespace mcmm
