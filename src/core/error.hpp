#pragma once
// Exception taxonomy shared by the knowledge base and the simulated
// programming-model runtimes.

#include <stdexcept>
#include <string>

#include "core/types.hpp"

namespace mcmm {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The knowledge base was asked for a cell/description that does not exist.
class LookupError : public Error {
 public:
  using Error::Error;
};

/// A dataset failed a structural integrity check (wrong counts, duplicate
/// cells, dangling description ids, ...).
class IntegrityError : public Error {
 public:
  using Error::Error;
};

/// A programming-model runtime was asked to run on a platform where Fig. 1
/// records "no support" (or where the requested backend does not exist).
class UnsupportedCombination : public Error {
 public:
  UnsupportedCombination(const Combination& combo, std::string detail)
      : Error("unsupported combination: " + to_string(combo) +
              (detail.empty() ? "" : " (" + detail + ")")),
        combo_(combo) {}

  [[nodiscard]] const Combination& combo() const noexcept { return combo_; }

 private:
  Combination combo_;
};

/// A specific feature is missing on a route whose overall rating is
/// "some support" / "limited support".
class UnsupportedFeature : public Error {
 public:
  UnsupportedFeature(std::string feature, std::string detail)
      : Error("unsupported feature: " + feature +
              (detail.empty() ? "" : " (" + detail + ")")),
        feature_(std::move(feature)) {}

  [[nodiscard]] const std::string& feature() const noexcept { return feature_; }

 private:
  std::string feature_;
};

}  // namespace mcmm
