#include "core/statistics.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace mcmm {

Statistics::Statistics(const CompatibilityMatrix& matrix) {
  for (const Vendor v : kAllVendors) {
    VendorStats vs;
    vs.vendor = v;
    double total_score = 0;
    int cells = 0;
    for (const SupportEntry* e : matrix.by_vendor(v)) {
      const SupportCategory best = e->best_category();
      vs.histogram[e->primary().category]++;
      if (usable(best)) vs.usable_cells++;
      if (comprehensive(best)) vs.comprehensive_cells++;
      const bool vendor_route = std::any_of(
          e->ratings.begin(), e->ratings.end(),
          [](const Rating& r) { return vendor_provided(r.category); });
      if (vendor_route) vs.vendor_provided_cells++;
      total_score += score(best);
      ++cells;
    }
    vs.coverage_score = cells > 0 ? total_score / cells : 0.0;
    vendor_stats_.push_back(std::move(vs));
  }

  for (const Language l :
       {Language::Cpp, Language::Fortran, Language::Python}) {
    LanguageStats ls;
    ls.language = l;
    double total_score = 0;
    for (const SupportEntry* e : matrix.by_language(l)) {
      ls.total_cells++;
      if (e->usable()) ls.usable_cells++;
      total_score += score(e->best_category());
    }
    ls.coverage_score =
        ls.total_cells > 0 ? total_score / ls.total_cells : 0.0;
    language_stats_.push_back(ls);
  }

  for (const Model m : kAllModels) {
    ModelStats ms;
    ms.model = m;
    for (const Vendor v : kAllVendors) {
      const Language lang =
          (m == Model::Python) ? Language::Python : Language::Cpp;
      const SupportEntry* cpp = matrix.find(Combination{v, m, lang});
      if (cpp != nullptr && cpp->usable()) ms.vendors_usable_cpp++;
      if (cpp != nullptr &&
          std::any_of(cpp->ratings.begin(), cpp->ratings.end(),
                      [](const Rating& r) {
                        return vendor_provided(r.category);
                      })) {
        ms.vendors_vendor_native++;
      }
      if (m != Model::Python) {
        const SupportEntry* f =
            matrix.find(Combination{v, m, Language::Fortran});
        if (f != nullptr && f->usable()) ms.vendors_usable_fortran++;
      }
    }
    model_stats_.push_back(ms);
  }

  for (const SupportEntry* e : matrix.entries()) {
    overall_[e->primary().category]++;
    providers_[e->primary().provider]++;
    if (e->usable()) ++usable_;
    if (e->ratings.size() > 1) ++dual_rated_;
  }
}

const VendorStats& Statistics::vendor(Vendor v) const {
  for (const VendorStats& vs : vendor_stats_) {
    if (vs.vendor == v) return vs;
  }
  throw LookupError("no stats for vendor");
}

const LanguageStats& Statistics::language(Language l) const {
  for (const LanguageStats& ls : language_stats_) {
    if (ls.language == l) return ls;
  }
  throw LookupError("no stats for language");
}

const ModelStats& Statistics::model(Model m) const {
  for (const ModelStats& ms : model_stats_) {
    if (ms.model == m) return ms;
  }
  throw LookupError("no stats for model");
}

Vendor Statistics::most_comprehensive_vendor() const {
  const auto it = std::max_element(
      vendor_stats_.begin(), vendor_stats_.end(),
      [](const VendorStats& a, const VendorStats& b) {
        return a.coverage_score < b.coverage_score;
      });
  return it->vendor;
}

}  // namespace mcmm
