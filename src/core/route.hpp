#pragma once
// A "route" is one concrete way to use a programming model on a platform:
// a compiler, a bindings package, a source-to-source translator, ... The
// paper's Sec. 4 descriptions enumerate these; the route planner ranks them.

#include <string>
#include <vector>

#include "core/support.hpp"
#include "core/types.hpp"

namespace mcmm {

/// Kind of software artifact a route is built around.
enum class RouteKind : std::uint8_t {
  Compiler,    ///< a compiler (toolchain) with direct codegen for the device
  Translator,  ///< a source-to-source translation tool (HIPIFY, SYCLomatic, ...)
  Bindings,    ///< pre-made language bindings (hipfort, FLCL, dpctl, ...)
  Library,     ///< a library implementation (oneDPL, CuPy, ...)
  Runtime,     ///< a runtime/backend plugin (roc-stdpar, Level Zero, ...)
};

/// Maturity of the route, as described in the paper's text.
enum class Maturity : std::uint8_t {
  Production,    ///< production grade, vendor- or community-maintained
  Stable,        ///< usable and maintained, not the reference path
  Experimental,  ///< explicitly experimental / in development
  Unmaintained,  ///< exists but no longer maintained (GPUFORT, ZLUDA, ...)
  Retired,       ///< discontinued (ComputeCpp, C++AMP, ...)
};

[[nodiscard]] std::string_view to_string(RouteKind k) noexcept;
[[nodiscard]] std::string_view to_string(Maturity m) noexcept;

[[nodiscard]] std::optional<RouteKind> parse_route_kind(
    std::string_view s) noexcept;
[[nodiscard]] std::optional<Maturity> parse_maturity(
    std::string_view s) noexcept;

/// One concrete way to use (model, language) on a vendor platform.
struct Route {
  std::string name;        ///< e.g. "NVIDIA HPC SDK (nvc++)", "Open SYCL"
  RouteKind kind{RouteKind::Compiler};
  Provider provider{Provider::Community};
  Maturity maturity{Maturity::Stable};
  std::string toolchain;   ///< driving executable, e.g. "nvc++", "hipcc"
  std::vector<std::string> flags;     ///< enabling compiler options
  std::vector<std::string> environment;  ///< required env vars, e.g. HIP_PLATFORM=nvidia
  std::string notes;       ///< free-form caveats from the paper text

  [[nodiscard]] friend bool operator==(const Route&, const Route&) = default;
};

/// Ranking weight of a route for the planner: production vendor compilers
/// first, retired/unmaintained tools last.
[[nodiscard]] int route_rank(const Route& r) noexcept;

}  // namespace mcmm
