#pragma once
// Derived statistics over the compatibility matrix — the counts behind the
// paper's narrative claims ("support for NVIDIA GPUs is most comprehensive",
// "the situation looks severely different for Fortran", ...).

#include <map>
#include <string>
#include <vector>

#include "core/matrix.hpp"

namespace mcmm {

/// Histogram of primary-rating categories.
using CategoryHistogram = std::map<SupportCategory, int>;

struct VendorStats {
  Vendor vendor{};
  CategoryHistogram histogram;         ///< over all 17 cells of the vendor row
  int usable_cells{};                  ///< cells rated better than None
  int comprehensive_cells{};           ///< Full / IndirectGood / NonVendorGood
  int vendor_provided_cells{};         ///< Full / IndirectGood / Some
  double coverage_score{};             ///< mean score() over the row (0..5)
};

struct LanguageStats {
  Language language{};
  int usable_cells{};
  int total_cells{};
  double coverage_score{};
};

struct ModelStats {
  Model model{};
  int vendors_usable_cpp{};      ///< vendors with usable C++ support
  int vendors_usable_fortran{};  ///< vendors with usable Fortran support
  int vendors_vendor_native{};   ///< vendors providing support themselves (C++)
};

class Statistics {
 public:
  explicit Statistics(const CompatibilityMatrix& matrix);

  [[nodiscard]] const std::vector<VendorStats>& vendors() const noexcept {
    return vendor_stats_;
  }
  [[nodiscard]] const std::vector<LanguageStats>& languages() const noexcept {
    return language_stats_;
  }
  [[nodiscard]] const std::vector<ModelStats>& models() const noexcept {
    return model_stats_;
  }

  [[nodiscard]] const VendorStats& vendor(Vendor v) const;
  [[nodiscard]] const LanguageStats& language(Language l) const;
  [[nodiscard]] const ModelStats& model(Model m) const;

  /// Vendor with the highest coverage score (the paper: NVIDIA).
  [[nodiscard]] Vendor most_comprehensive_vendor() const;

  /// Category histogram over the full matrix (primary ratings).
  [[nodiscard]] const CategoryHistogram& overall_histogram() const noexcept {
    return overall_;
  }

  /// Count of usable (vendor, model, language) combinations — the ">50
  /// routes" framing counts distinct software routes; this counts cells.
  [[nodiscard]] int usable_combinations() const noexcept { return usable_; }

  /// Cells carrying two ratings (the paper's dual-rated cells: Python on
  /// NVIDIA, CUDA C++ on Intel).
  [[nodiscard]] int dual_rated_cells() const noexcept { return dual_rated_; }

  /// Histogram of primary-rating providers over all cells.
  [[nodiscard]] const std::map<Provider, int>& provider_histogram()
      const noexcept {
    return providers_;
  }

 private:
  std::vector<VendorStats> vendor_stats_;
  std::vector<LanguageStats> language_stats_;
  std::vector<ModelStats> model_stats_;
  CategoryHistogram overall_;
  std::map<Provider, int> providers_;
  int usable_{};
  int dual_rated_{};
};

}  // namespace mcmm
