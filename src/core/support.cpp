#include "core/support.hpp"

#include <algorithm>
#include <cctype>

namespace mcmm {
namespace {

[[nodiscard]] std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::string_view category_name(SupportCategory c) noexcept {
  switch (c) {
    case SupportCategory::Full:
      return "full support";
    case SupportCategory::IndirectGood:
      return "indirect good support";
    case SupportCategory::Some:
      return "some support";
    case SupportCategory::NonVendorGood:
      return "non-vendor good support";
    case SupportCategory::Limited:
      return "limited support";
    case SupportCategory::None:
      return "no support";
  }
  return "?";
}

std::string_view category_symbol(SupportCategory c) noexcept {
  switch (c) {
    case SupportCategory::Full:
      return "●";  // ● filled circle
    case SupportCategory::IndirectGood:
      return "◑";  // ◑ half-filled circle
    case SupportCategory::Some:
      return "◐";  // ◐ half-filled circle (left)
    case SupportCategory::NonVendorGood:
      return "◉";  // ◉ fisheye (ring with core): comprehensive, non-vendor
    case SupportCategory::Limited:
      return "△";  // △ open triangle
    case SupportCategory::None:
      return "–";  // – en-dash
  }
  return "?";
}

std::string_view category_symbol_ascii(SupportCategory c) noexcept {
  switch (c) {
    case SupportCategory::Full:
      return "F";
    case SupportCategory::IndirectGood:
      return "I";
    case SupportCategory::Some:
      return "S";
    case SupportCategory::NonVendorGood:
      return "N";
    case SupportCategory::Limited:
      return "L";
    case SupportCategory::None:
      return "-";
  }
  return "?";
}

std::string_view to_string(Provider p) noexcept {
  switch (p) {
    case Provider::PlatformVendor:
      return "platform vendor";
    case Provider::OtherVendor:
      return "other vendor";
    case Provider::Community:
      return "community";
    case Provider::Nobody:
      return "nobody";
  }
  return "?";
}

std::optional<SupportCategory> parse_category(std::string_view s) noexcept {
  const std::string k = lowered(s);
  if (k == "full" || k == "full support") return SupportCategory::Full;
  if (k == "indirect" || k == "indirect good support")
    return SupportCategory::IndirectGood;
  if (k == "some" || k == "some support") return SupportCategory::Some;
  if (k == "nonvendor" || k == "non-vendor" || k == "non-vendor good support")
    return SupportCategory::NonVendorGood;
  if (k == "limited" || k == "limited support") return SupportCategory::Limited;
  if (k == "none" || k == "no support") return SupportCategory::None;
  return std::nullopt;
}

std::optional<Provider> parse_provider(std::string_view s) noexcept {
  const std::string k = lowered(s);
  if (k == "vendor" || k == "platform vendor") return Provider::PlatformVendor;
  if (k == "other vendor" || k == "othervendor") return Provider::OtherVendor;
  if (k == "community") return Provider::Community;
  if (k == "nobody" || k == "none") return Provider::Nobody;
  return std::nullopt;
}

int score(SupportCategory c) noexcept {
  switch (c) {
    case SupportCategory::Full:
      return 5;
    case SupportCategory::IndirectGood:
      return 4;
    case SupportCategory::Some:
      return 3;
    case SupportCategory::NonVendorGood:
      return 3;
    case SupportCategory::Limited:
      return 1;
    case SupportCategory::None:
      return 0;
  }
  return 0;
}

}  // namespace mcmm
