#include "core/matrix.hpp"

#include <algorithm>
#include <set>

#include "core/error.hpp"

namespace mcmm {

void CompatibilityMatrix::add_entry(SupportEntry entry) {
  if (!language_applies(entry.combo.model, entry.combo.language)) {
    throw IntegrityError("language " +
                         std::string(to_string(entry.combo.language)) +
                         " does not apply to model " +
                         std::string(to_string(entry.combo.model)));
  }
  if (entry.ratings.empty()) {
    throw IntegrityError("entry without ratings: " + to_string(entry.combo));
  }
  if (entry.ratings.size() > 2) {
    throw IntegrityError("entry with more than two ratings: " +
                         to_string(entry.combo));
  }
  const auto [it, inserted] = entries_.emplace(entry.combo, std::move(entry));
  if (!inserted) {
    throw IntegrityError("duplicate entry: " + to_string(it->first));
  }
}

void CompatibilityMatrix::add_description(Description d) {
  if (d.id <= 0) throw IntegrityError("description id must be positive");
  const auto [it, inserted] = descriptions_.emplace(d.id, std::move(d));
  if (!inserted) {
    throw IntegrityError("duplicate description id " +
                         std::to_string(it->first));
  }
}

void CompatibilityMatrix::validate() const {
  if (entries_.size() != static_cast<std::size_t>(kCombinationCount)) {
    throw IntegrityError("expected " + std::to_string(kCombinationCount) +
                         " cells, got " + std::to_string(entries_.size()));
  }
  if (descriptions_.size() != static_cast<std::size_t>(kDescriptionCount)) {
    throw IntegrityError("expected " + std::to_string(kDescriptionCount) +
                         " descriptions, got " +
                         std::to_string(descriptions_.size()));
  }
  std::set<int> referenced;
  for (const auto& [combo, entry] : entries_) {
    if (!descriptions_.contains(entry.description_id)) {
      throw IntegrityError("cell " + to_string(combo) +
                           " references missing description " +
                           std::to_string(entry.description_id));
    }
    referenced.insert(entry.description_id);
    if (entry.usable() && entry.routes.empty()) {
      throw IntegrityError("usable cell without routes: " + to_string(combo));
    }
    for (const Rating& r : entry.ratings) {
      const bool vendor_cat = vendor_provided(r.category);
      if (vendor_cat && r.provider != Provider::PlatformVendor) {
        throw IntegrityError("cell " + to_string(combo) +
                             ": vendor-tier category '" +
                             std::string(category_name(r.category)) +
                             "' requires platform-vendor provider");
      }
      if (r.category == SupportCategory::NonVendorGood &&
          r.provider == Provider::PlatformVendor) {
        throw IntegrityError("cell " + to_string(combo) +
                             ": non-vendor category with platform-vendor "
                             "provider");
      }
      if (r.category == SupportCategory::None &&
          r.provider != Provider::Nobody) {
        throw IntegrityError("cell " + to_string(combo) +
                             ": 'no support' must have provider nobody");
      }
    }
  }
  for (const auto& [id, d] : descriptions_) {
    if (!referenced.contains(id)) {
      throw IntegrityError("description " + std::to_string(id) +
                           " ('" + d.title + "') not referenced by any cell");
    }
  }
}

const SupportEntry& CompatibilityMatrix::at(const Combination& c) const {
  const auto it = entries_.find(c);
  if (it == entries_.end()) {
    throw LookupError("no entry for " + to_string(c));
  }
  return it->second;
}

const SupportEntry* CompatibilityMatrix::find(
    const Combination& c) const noexcept {
  const auto it = entries_.find(c);
  return it == entries_.end() ? nullptr : &it->second;
}

const Description& CompatibilityMatrix::description(int id) const {
  const auto it = descriptions_.find(id);
  if (it == descriptions_.end()) {
    throw LookupError("no description with id " + std::to_string(id));
  }
  return it->second;
}

std::vector<const SupportEntry*> CompatibilityMatrix::entries() const {
  std::vector<const SupportEntry*> out;
  out.reserve(entries_.size());
  for (const auto& [combo, entry] : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(),
            [](const SupportEntry* a, const SupportEntry* b) {
              return combination_index(a->combo) < combination_index(b->combo);
            });
  return out;
}

std::vector<const Description*> CompatibilityMatrix::descriptions() const {
  std::vector<const Description*> out;
  out.reserve(descriptions_.size());
  for (const auto& [id, d] : descriptions_) out.push_back(&d);
  return out;
}

std::vector<const SupportEntry*> CompatibilityMatrix::by_vendor(
    Vendor v) const {
  return where([v](const SupportEntry& e) { return e.combo.vendor == v; });
}

std::vector<const SupportEntry*> CompatibilityMatrix::by_model(Model m) const {
  return where([m](const SupportEntry& e) { return e.combo.model == m; });
}

std::vector<const SupportEntry*> CompatibilityMatrix::by_language(
    Language l) const {
  return where([l](const SupportEntry& e) { return e.combo.language == l; });
}

std::vector<const SupportEntry*> CompatibilityMatrix::where(
    const std::function<bool(const SupportEntry&)>& pred) const {
  std::vector<const SupportEntry*> out;
  for (const SupportEntry* e : entries()) {
    if (pred(*e)) out.push_back(e);
  }
  return out;
}

std::vector<const SupportEntry*> CompatibilityMatrix::cells_of_description(
    int id) const {
  return where(
      [id](const SupportEntry& e) { return e.description_id == id; });
}

std::size_t CompatibilityMatrix::total_route_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [combo, entry] : entries_) n += entry.routes.size();
  return n;
}

}  // namespace mcmm
