#pragma once
// The six-level support-category rating scheme of the paper (Sec. 3) and the
// provider taxonomy used to distinguish vendor-driven from community-driven
// support.

#include <array>
#include <optional>
#include <string>
#include <string_view>

namespace mcmm {

/// The paper's six rating categories, ordered from strongest to weakest.
/// The ordering is meaningful: `score()` maps it to a 0..5 scale used by
/// statistics and the route planner.
enum class SupportCategory : std::uint8_t {
  Full,           ///< "full support": vendor-complete, documented, maintained
  IndirectGood,   ///< "indirect good support": vendor maps/translates to a native model
  Some,           ///< "some support": vendor support, not (yet) comprehensive
  NonVendorGood,  ///< "non-vendor good support": comprehensive, community-driven
  Limited,        ///< "limited support": very incomplete and/or high-effort
  None,           ///< "no support"
};

inline constexpr std::array<SupportCategory, 6> kAllCategories{
    SupportCategory::Full,          SupportCategory::IndirectGood,
    SupportCategory::Some,          SupportCategory::NonVendorGood,
    SupportCategory::Limited,       SupportCategory::None,
};

/// Who provides the support for a combination.
enum class Provider : std::uint8_t {
  PlatformVendor,  ///< the vendor of the GPU device itself
  OtherVendor,     ///< a different hardware/software vendor (e.g. AMD's HIP on NVIDIA)
  Community,       ///< community / open-source third party
  Nobody,
};

/// Long-form names as used in Sec. 3 ("Category Name: ...").
[[nodiscard]] std::string_view category_name(SupportCategory c) noexcept;

/// Single-character Unicode symbol used in our rendition of Fig. 1.
[[nodiscard]] std::string_view category_symbol(SupportCategory c) noexcept;

/// Pure-ASCII fallback symbol (for terminals without Unicode).
[[nodiscard]] std::string_view category_symbol_ascii(SupportCategory c) noexcept;

[[nodiscard]] std::string_view to_string(Provider p) noexcept;

[[nodiscard]] std::optional<SupportCategory> parse_category(
    std::string_view s) noexcept;
[[nodiscard]] std::optional<Provider> parse_provider(std::string_view s) noexcept;

/// Numeric score for ranking: Full=5 ... None=0. `NonVendorGood` scores above
/// `Some`? No: the paper orders categories by *comprehensiveness first,
/// provider second*; we score Full=5, IndirectGood=4, Some=3, NonVendorGood=3,
/// Limited=1, None=0 and break the Some/NonVendorGood tie by provider
/// preference in the planner.
[[nodiscard]] int score(SupportCategory c) noexcept;

/// True when any practical route exists (anything better than None).
[[nodiscard]] constexpr bool usable(SupportCategory c) noexcept {
  return c != SupportCategory::None;
}

/// True when the support counts as "comprehensive" in the paper's sense
/// (full, indirect-good, or non-vendor-good).
[[nodiscard]] constexpr bool comprehensive(SupportCategory c) noexcept {
  return c == SupportCategory::Full || c == SupportCategory::IndirectGood ||
         c == SupportCategory::NonVendorGood;
}

/// True when the support is provided by the platform vendor itself
/// (full, indirect-good, or some).
[[nodiscard]] constexpr bool vendor_provided(SupportCategory c) noexcept {
  return c == SupportCategory::Full || c == SupportCategory::IndirectGood ||
         c == SupportCategory::Some;
}

/// One rating of a cell. A cell can carry up to two ratings (the paper
/// double-rates e.g. Python-on-NVIDIA and CUDA-on-Intel).
struct Rating {
  SupportCategory category{SupportCategory::None};
  Provider provider{Provider::Nobody};
  /// Short justification, paraphrasing the paper's description.
  std::string rationale;

  [[nodiscard]] friend bool operator==(const Rating&, const Rating&) = default;
};

}  // namespace mcmm
