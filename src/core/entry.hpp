#pragma once
// A SupportEntry is one cell of the overview table; a Description is one of
// the 44 numbered items of the paper's Sec. 4 (an item can describe several
// cells, e.g. item 6 covers SYCL/Fortran on all three vendors).

#include <string>
#include <vector>

#include "core/route.hpp"
#include "core/support.hpp"
#include "core/types.hpp"

namespace mcmm {

/// One numbered description of the paper's Sec. 4.
struct Description {
  int id{};                 ///< 1..44, the paper's item number
  std::string title;        ///< e.g. "NVIDIA - CUDA - C++"
  std::string text;         ///< condensed description body
  std::vector<std::string> references;  ///< bibliography keys / URLs
};

/// One cell of Fig. 1.
struct SupportEntry {
  Combination combo{};
  /// 1 or 2 ratings; the paper double-rates a few cells (Python on NVIDIA,
  /// CUDA C++ on Intel). The first rating is the primary one.
  std::vector<Rating> ratings;
  int description_id{};  ///< the Sec. 4 item explaining this cell
  std::vector<Route> routes;
  /// True when the rating was reconstructed from the description text rather
  /// than read off the (unavailable) figure PDF; see DESIGN.md Sec. 5.
  bool inferred{true};

  [[nodiscard]] const Rating& primary() const { return ratings.front(); }
  [[nodiscard]] SupportCategory best_category() const noexcept;
  [[nodiscard]] bool usable() const noexcept;
  /// Highest route rank among the entry's routes (0 when none).
  [[nodiscard]] int best_route_rank() const noexcept;
};

}  // namespace mcmm
