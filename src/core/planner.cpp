#include "core/planner.hpp"

#include <algorithm>
#include <limits>

namespace mcmm {
namespace {

[[nodiscard]] bool route_acceptable(const Route& r, const PlannerQuery& q) {
  if (q.require_maintained && (r.maturity == Maturity::Unmaintained ||
                               r.maturity == Maturity::Retired)) {
    return false;
  }
  if (q.require_vendor_support && r.provider != Provider::PlatformVendor) {
    return false;
  }
  if (!q.allow_translators && r.kind == RouteKind::Translator) {
    return false;
  }
  return true;
}

/// Best acceptable route on an entry, or nullopt.
[[nodiscard]] std::optional<Route> best_route(const SupportEntry& e,
                                              const PlannerQuery& q) {
  const Route* best = nullptr;
  for (const Route& r : e.routes) {
    if (!route_acceptable(r, q)) continue;
    if (best == nullptr || route_rank(r) > route_rank(*best)) best = &r;
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

[[nodiscard]] bool category_acceptable(const SupportEntry& e,
                                       const PlannerQuery& q) {
  if (q.require_vendor_support) {
    return std::any_of(e.ratings.begin(), e.ratings.end(),
                       [&](const Rating& r) {
                         return vendor_provided(r.category) &&
                                score(r.category) >= score(q.minimum_category);
                       });
  }
  return score(e.best_category()) >= score(q.minimum_category) && e.usable();
}

}  // namespace

std::vector<PlannedRoute> RoutePlanner::plan(const PlannerQuery& q) const {
  std::vector<Vendor> targets = q.must_run_on;
  if (targets.empty()) {
    targets.assign(kAllVendors.begin(), kAllVendors.end());
  }

  std::vector<PlannedRoute> out;
  for (const Model m : kAllModels) {
    if (!q.allowed_models.empty() &&
        std::find(q.allowed_models.begin(), q.allowed_models.end(), m) ==
            q.allowed_models.end()) {
      continue;
    }
    if (!language_applies(m, q.language)) continue;

    PlannedRoute plan;
    plan.model = m;
    bool feasible = true;
    int min_cell_score = std::numeric_limits<int>::max();
    int route_rank_sum = 0;
    for (const Vendor v : targets) {
      const SupportEntry* e = matrix_->find(Combination{v, m, q.language});
      if (e == nullptr || !category_acceptable(*e, q)) {
        // When the user did not pin platforms, a model only needs to work
        // somewhere; when platforms are pinned, it must work on all of them.
        if (!q.must_run_on.empty()) {
          feasible = false;
          break;
        }
        continue;
      }
      const std::optional<Route> r = best_route(*e, q);
      if (!r.has_value()) {
        if (!q.must_run_on.empty()) {
          feasible = false;
          break;
        }
        continue;
      }
      plan.platforms.push_back(PlannedRoute::PerVendor{
          v, e->best_category(), *r});
      min_cell_score = std::min(min_cell_score, score(e->best_category()));
      route_rank_sum += route_rank(*r);
    }
    if (!feasible || plan.platforms.empty()) continue;

    plan.rank = min_cell_score * 1000 +
                static_cast<int>(plan.platforms.size()) * 100 +
                route_rank_sum / static_cast<int>(plan.platforms.size());
    plan.rationale = std::string(to_string(m)) + ": covers " +
                     std::to_string(plan.platforms.size()) +
                     " platform(s); weakest cell is '" +
                     std::string(category_name(static_cast<SupportCategory>(
                         [&] {
                           SupportCategory weakest = SupportCategory::Full;
                           for (const auto& p : plan.platforms) {
                             if (score(p.category) < score(weakest)) {
                               weakest = p.category;
                             }
                           }
                           return weakest;
                         }()))) +
                     "'";
    out.push_back(std::move(plan));
  }

  std::sort(out.begin(), out.end(),
            [](const PlannedRoute& a, const PlannedRoute& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              return a.model < b.model;
            });
  return out;
}

}  // namespace mcmm
