#include "core/diff.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace mcmm {

int MatrixDiff::improvements() const noexcept {
  return static_cast<int>(std::count_if(
      rating_changes.begin(), rating_changes.end(),
      [](const RatingChange& c) { return c.delta() > 0; }));
}

int MatrixDiff::regressions() const noexcept {
  return static_cast<int>(std::count_if(
      rating_changes.begin(), rating_changes.end(),
      [](const RatingChange& c) { return c.delta() < 0; }));
}

MatrixDiff diff_matrices(const CompatibilityMatrix& before,
                         const CompatibilityMatrix& after) {
  MatrixDiff diff;

  for (const SupportEntry* old_entry : before.entries()) {
    const SupportEntry* new_entry = after.find(old_entry->combo);
    if (new_entry == nullptr) {
      diff.cells_only_in_before.push_back(old_entry->combo);
      continue;
    }
    if (old_entry->best_category() != new_entry->best_category()) {
      diff.rating_changes.push_back(RatingChange{
          old_entry->combo, old_entry->best_category(),
          new_entry->best_category()});
    }
    std::set<std::string> old_routes, new_routes;
    for (const Route& r : old_entry->routes) old_routes.insert(r.name);
    for (const Route& r : new_entry->routes) new_routes.insert(r.name);
    for (const std::string& name : new_routes) {
      if (!old_routes.contains(name)) {
        diff.route_changes.push_back(
            RouteChange{old_entry->combo, name, true});
      }
    }
    for (const std::string& name : old_routes) {
      if (!new_routes.contains(name)) {
        diff.route_changes.push_back(
            RouteChange{old_entry->combo, name, false});
      }
    }
  }
  for (const SupportEntry* new_entry : after.entries()) {
    if (before.find(new_entry->combo) == nullptr) {
      diff.cells_only_in_after.push_back(new_entry->combo);
    }
  }
  return diff;
}

std::string format_diff(const MatrixDiff& diff) {
  std::ostringstream out;
  if (diff.empty()) {
    out << "No changes between snapshots.\n";
    return out.str();
  }
  if (!diff.rating_changes.empty()) {
    out << "Rating changes:\n";
    for (const RatingChange& c : diff.rating_changes) {
      out << "  " << to_string(c.combo) << ": "
          << category_name(c.before) << " -> " << category_name(c.after)
          << (c.delta() > 0 ? "  (improved)" :
              c.delta() < 0 ? "  (regressed)" : "")
          << "\n";
    }
  }
  if (!diff.route_changes.empty()) {
    out << "Route changes:\n";
    for (const RouteChange& c : diff.route_changes) {
      out << "  " << (c.added ? "+ " : "- ") << to_string(c.combo) << ": "
          << c.route_name << "\n";
    }
  }
  for (const Combination& c : diff.cells_only_in_before) {
    out << "  cell removed: " << to_string(c) << "\n";
  }
  for (const Combination& c : diff.cells_only_in_after) {
    out << "  cell added: " << to_string(c) << "\n";
  }
  out << diff.improvements() << " improvement(s), " << diff.regressions()
      << " regression(s)\n";
  return out.str();
}

}  // namespace mcmm
