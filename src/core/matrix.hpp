#pragma once
// CompatibilityMatrix: the in-memory form of the paper's Fig. 1 plus the
// Sec. 4 descriptions — a validated, queryable knowledge base.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/entry.hpp"
#include "core/types.hpp"

namespace mcmm {

class CompatibilityMatrix {
 public:
  CompatibilityMatrix() = default;

  /// Adds a cell. Throws IntegrityError on duplicates or on a combination
  /// whose language does not apply to its model.
  void add_entry(SupportEntry entry);

  /// Adds a Sec. 4 description. Throws IntegrityError on duplicate ids.
  void add_description(Description d);

  /// Validates the structural invariants stated in the paper: 51 cells,
  /// 44 descriptions, every cell references an existing description, every
  /// description referenced by at least one cell, every cell has >= 1 rating
  /// and usable cells have >= 1 route. Throws IntegrityError on violation.
  void validate() const;

  [[nodiscard]] const SupportEntry& at(const Combination& c) const;
  [[nodiscard]] const SupportEntry& at(Vendor v, Model m, Language l) const {
    return at(Combination{v, m, l});
  }
  [[nodiscard]] const SupportEntry* find(const Combination& c) const noexcept;

  [[nodiscard]] const Description& description(int id) const;

  /// All entries in figure order (row-major).
  [[nodiscard]] std::vector<const SupportEntry*> entries() const;
  /// All descriptions ordered by id.
  [[nodiscard]] std::vector<const Description*> descriptions() const;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] std::size_t description_count() const noexcept {
    return descriptions_.size();
  }

  /// Filtered views.
  [[nodiscard]] std::vector<const SupportEntry*> by_vendor(Vendor v) const;
  [[nodiscard]] std::vector<const SupportEntry*> by_model(Model m) const;
  [[nodiscard]] std::vector<const SupportEntry*> by_language(Language l) const;
  [[nodiscard]] std::vector<const SupportEntry*> where(
      const std::function<bool(const SupportEntry&)>& pred) const;

  /// Cells whose description is a given Sec. 4 item.
  [[nodiscard]] std::vector<const SupportEntry*> cells_of_description(
      int id) const;

  /// Count of programming routes across the whole matrix — the paper's
  /// "more than 50 routes ... when no further limitations (pre-)exist".
  [[nodiscard]] std::size_t total_route_count() const noexcept;

 private:
  std::map<Combination, SupportEntry> entries_;
  std::map<int, Description> descriptions_;
};

}  // namespace mcmm
