#pragma once
// Core vocabulary of the compatibility overview: GPU vendors, programming
// models, and programming languages, exactly as enumerated in the paper
// (Herten, SC-W 2023, Sec. 3).

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mcmm {

/// The three vendors of dedicated HPC GPUs covered by the overview table.
enum class Vendor : std::uint8_t { AMD, Intel, NVIDIA };

/// Programming models covered by the overview table (Fig. 1 columns).
/// `Python` is the per-vendor summary column ("etc - Python" in the paper).
enum class Model : std::uint8_t {
  CUDA,
  HIP,
  SYCL,
  OpenACC,
  OpenMP,
  Standard,  ///< standard-language parallelism (pSTL / `do concurrent`)
  Kokkos,
  Alpaka,
  Python,
};

/// Programming languages distinguished by the table's sub-columns.
enum class Language : std::uint8_t { Cpp, Fortran, Python };

inline constexpr std::array<Vendor, 3> kAllVendors{Vendor::AMD, Vendor::Intel,
                                                   Vendor::NVIDIA};

inline constexpr std::array<Model, 9> kAllModels{
    Model::CUDA,   Model::HIP,      Model::SYCL,
    Model::OpenACC, Model::OpenMP,  Model::Standard,
    Model::Kokkos, Model::Alpaka,   Model::Python,
};

/// Column order used by Fig. 1 (native models first, then directive-based,
/// then standard parallelism, then portability layers, then Python).
inline constexpr std::array<Model, 9> kFigureColumnOrder{
    Model::CUDA,   Model::HIP,      Model::SYCL,
    Model::OpenACC, Model::OpenMP,  Model::Standard,
    Model::Kokkos, Model::Alpaka,   Model::Python,
};

/// Row order used by Fig. 1.
inline constexpr std::array<Vendor, 3> kFigureRowOrder{
    Vendor::NVIDIA, Vendor::AMD, Vendor::Intel};

[[nodiscard]] std::string_view to_string(Vendor v) noexcept;
[[nodiscard]] std::string_view to_string(Model m) noexcept;
[[nodiscard]] std::string_view to_string(Language l) noexcept;

[[nodiscard]] std::optional<Vendor> parse_vendor(std::string_view s) noexcept;
[[nodiscard]] std::optional<Model> parse_model(std::string_view s) noexcept;
[[nodiscard]] std::optional<Language> parse_language(
    std::string_view s) noexcept;

/// Languages applicable to a model column: every model has C++ and Fortran
/// sub-columns except the Python summary column.
[[nodiscard]] constexpr bool language_applies(Model m, Language l) noexcept {
  if (m == Model::Python) return l == Language::Python;
  return l == Language::Cpp || l == Language::Fortran;
}

/// A single cell of the overview table: (vendor, model, language).
struct Combination {
  Vendor vendor{};
  Model model{};
  Language language{};

  [[nodiscard]] friend constexpr auto operator<=>(const Combination&,
                                                  const Combination&) = default;
};

/// Total number of cells in Fig. 1: 3 vendors x (8 models x 2 languages + 1
/// Python column) = 51, as stated in the paper's abstract and Sec. 3.
inline constexpr int kCombinationCount = 51;

/// Number of unique description items in Sec. 4 of the paper.
inline constexpr int kDescriptionCount = 44;

/// Stable ordering key for a combination (row-major in figure order).
[[nodiscard]] int combination_index(const Combination& c) noexcept;

[[nodiscard]] std::string to_string(const Combination& c);

}  // namespace mcmm
