#include "core/types.hpp"

#include <algorithm>
#include <cctype>

namespace mcmm {
namespace {

[[nodiscard]] std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

}  // namespace

std::string_view to_string(Vendor v) noexcept {
  switch (v) {
    case Vendor::AMD:
      return "AMD";
    case Vendor::Intel:
      return "Intel";
    case Vendor::NVIDIA:
      return "NVIDIA";
  }
  return "?";
}

std::string_view to_string(Model m) noexcept {
  switch (m) {
    case Model::CUDA:
      return "CUDA";
    case Model::HIP:
      return "HIP";
    case Model::SYCL:
      return "SYCL";
    case Model::OpenACC:
      return "OpenACC";
    case Model::OpenMP:
      return "OpenMP";
    case Model::Standard:
      return "Standard";
    case Model::Kokkos:
      return "Kokkos";
    case Model::Alpaka:
      return "Alpaka";
    case Model::Python:
      return "Python";
  }
  return "?";
}

std::string_view to_string(Language l) noexcept {
  switch (l) {
    case Language::Cpp:
      return "C++";
    case Language::Fortran:
      return "Fortran";
    case Language::Python:
      return "Python";
  }
  return "?";
}

std::optional<Vendor> parse_vendor(std::string_view s) noexcept {
  const std::string k = lowered(s);
  if (k == "amd") return Vendor::AMD;
  if (k == "intel") return Vendor::Intel;
  if (k == "nvidia") return Vendor::NVIDIA;
  return std::nullopt;
}

std::optional<Model> parse_model(std::string_view s) noexcept {
  const std::string k = lowered(s);
  if (k == "cuda") return Model::CUDA;
  if (k == "hip") return Model::HIP;
  if (k == "sycl") return Model::SYCL;
  if (k == "openacc" || k == "acc") return Model::OpenACC;
  if (k == "openmp" || k == "omp") return Model::OpenMP;
  if (k == "standard" || k == "stdpar" || k == "pstl") return Model::Standard;
  if (k == "kokkos") return Model::Kokkos;
  if (k == "alpaka") return Model::Alpaka;
  if (k == "python") return Model::Python;
  return std::nullopt;
}

std::optional<Language> parse_language(std::string_view s) noexcept {
  const std::string k = lowered(s);
  if (k == "c++" || k == "cpp" || k == "cxx" || k == "c") return Language::Cpp;
  if (k == "fortran" || k == "f" || k == "f90") return Language::Fortran;
  if (k == "python" || k == "py") return Language::Python;
  return std::nullopt;
}

int combination_index(const Combination& c) noexcept {
  // Row-major over kFigureRowOrder x kFigureColumnOrder, with the two
  // language sub-columns (C++ then Fortran) for non-Python models.
  int row = 0;
  for (std::size_t i = 0; i < kFigureRowOrder.size(); ++i) {
    if (kFigureRowOrder[i] == c.vendor) row = static_cast<int>(i);
  }
  int col = 0;
  for (const Model m : kFigureColumnOrder) {
    if (m == c.model) break;
    col += (m == Model::Python) ? 1 : 2;
  }
  if (c.model != Model::Python && c.language == Language::Fortran) col += 1;
  constexpr int kColumnsPerRow = 8 * 2 + 1;
  return row * kColumnsPerRow + col;
}

std::string to_string(const Combination& c) {
  std::string out;
  out += to_string(c.vendor);
  out += " / ";
  out += to_string(c.model);
  out += " / ";
  out += to_string(c.language);
  return out;
}

}  // namespace mcmm
