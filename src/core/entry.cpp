#include "core/entry.hpp"

#include <algorithm>

namespace mcmm {

SupportCategory SupportEntry::best_category() const noexcept {
  SupportCategory best = SupportCategory::None;
  for (const Rating& r : ratings) {
    if (score(r.category) > score(best)) best = r.category;
  }
  return best;
}

bool SupportEntry::usable() const noexcept {
  return std::any_of(ratings.begin(), ratings.end(), [](const Rating& r) {
    return mcmm::usable(r.category);
  });
}

int SupportEntry::best_route_rank() const noexcept {
  int best = 0;
  for (const Route& r : routes) best = std::max(best, route_rank(r));
  return best;
}

}  // namespace mcmm
