#pragma once
// The event-driven upstream side of the mcmm gateway. One ProxyTask is the
// state machine for one proxied client request: it lives entirely on the
// gateway's readiness loop (DESIGN.md §3.3), so an upstream round-trip —
// connect, send, await, retry, hedge — never parks a worker thread. The
// client connection is held via the HttpListener async seam (ResponseToken)
// and answered with complete_async() when one upstream leg wins.
//
// Threading contract: every ProxyTask/ProxyLeg method runs on the loop
// thread. Gateway::dispatch_async (a worker thread) only allocates the task
// and posts start(); from then on the loop owns it, and the task deletes
// itself through a posted op after finish() (deferred one drain cycle so
// stale events from the same epoll batch cannot touch a freed leg).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gateway/upstream.hpp"
#include "serve/event_loop.hpp"
#include "serve/server.hpp"

namespace mcmm::gateway {

class Gateway;
class ProxyTask;

/// One upstream socket of an in-flight proxied request. At most two are
/// live per task: the primary attempt (slot 0) and a latency hedge
/// (slot 1). Registered directly on the gateway's event loop.
struct ProxyLeg final : serve::EpollHandler {
  enum class Phase : std::uint8_t {
    Idle,        ///< no socket; slot unused
    Waiting,     ///< queued for a per-replica connection slot
    Connecting,  ///< non-blocking connect pending EPOLLOUT
    Sending,     ///< writing the request wire
    Receiving,   ///< reading/parsing the response
  };

  ProxyTask* task{nullptr};
  std::size_t slot{0};  ///< 0 = primary, 1 = hedge
  Phase phase{Phase::Idle};
  int fd{-1};
  std::size_t idx{0};  ///< replica index
  std::size_t sent{0};
  bool from_pool{false};
  bool replayed{false};
  bool no_replay{false};  ///< deadline/garble: never replay on a fresh dial
  bool counted{false};    ///< replica in_flight gauge incremented
  std::int64_t start_ms{0};
  ResponseParser parser;
  serve::Timer connect_timer;

  void on_io(std::uint32_t events) override;
  [[nodiscard]] bool active() const noexcept { return phase != Phase::Idle; }
};

/// Drives one proxied request to completion: replica selection, pooled or
/// fresh non-blocking connects, retries of idempotent requests on other
/// replicas, latency hedging, per-attempt deadlines — all of it timer- and
/// readiness-driven. Mirrors the retry/hedge/breaker semantics of the old
/// blocking run_exchange() path.
class ProxyTask {
 public:
  ProxyTask(Gateway& gw, serve::ResponseToken token, std::string wire,
            bool head, bool idempotent, bool hedgeable);

  ProxyTask(const ProxyTask&) = delete;
  ProxyTask& operator=(const ProxyTask&) = delete;

  /// First loop-thread entry; begins attempt 0.
  void start();

 private:
  friend struct ProxyLeg;
  friend class Gateway;  // resume_leg() from the waiter queue

  void begin_attempt();
  /// Leases a pooled connection or dials; may park the leg in the
  /// replica's waiter queue when its connection cap is reached.
  void open_leg(ProxyLeg& leg, std::size_t replica);
  /// The dial/lease half of open_leg, also re-entered on pooled replay
  /// and when a waiter is resumed.
  void lease_or_dial(ProxyLeg& leg);
  void leg_io(ProxyLeg& leg, std::uint32_t events);
  void leg_send(ProxyLeg& leg);
  void leg_recv(ProxyLeg& leg);
  void leg_won(ProxyLeg& leg);
  /// Transport failure: pooled legs that died before a byte replay once on
  /// a fresh dial with no breaker penalty; real failures penalise the
  /// breaker, join `excluded_`, and trigger the next attempt once no leg
  /// is left active.
  void leg_failed(ProxyLeg& leg);
  void abandon_leg(ProxyLeg& leg);
  /// Immediate dial failure: breaker penalty + exclusion, then the next
  /// attempt if no other leg is live.
  void leg_unopenable(ProxyLeg& leg);
  /// Re-entry for a leg popped off a replica's waiter queue.
  void resume_leg(ProxyLeg& leg);
  /// Closes the socket and returns the replica's connection slot.
  void drop_socket(ProxyLeg& leg);
  void unqueue(ProxyLeg& leg);
  void exclude(std::size_t replica);
  void next_attempt();
  void on_deadline();
  void on_hedge();
  /// No attempt left: best stored answer, 503 (never reached a replica),
  /// or 502.
  void settle();
  void finish(serve::Response resp);

  Gateway& gw_;
  serve::ResponseToken token_;
  std::string wire_;
  bool head_;
  bool idempotent_;
  bool hedgeable_;
  int attempt_{0};
  bool attempted_{false};
  bool finished_{false};
  /// True while a deadline tears both legs down, deferring next_attempt()
  /// until every leg has been failed.
  bool teardown_{false};
  std::vector<std::size_t> excluded_;
  std::optional<serve::Response> last_overload_;
  ProxyLeg legs_[2];
  serve::Timer deadline_timer_;
  serve::Timer hedge_timer_;
};

}  // namespace mcmm::gateway
