#pragma once
// Gateway observability: the client-facing side reuses serve::Metrics
// (same counter/histogram family, so dashboards work unchanged against a
// replica or the gateway), and the upstream side adds per-replica request
// outcomes and latency, plus retry / hedge / breaker / ejection counters.
// GET /metrics on the gateway emits both families in one document.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/metrics.hpp"

namespace mcmm::gateway {

class ReplicaRegistry;

/// Outcome + latency counters for one upstream replica. Lock-free, same
/// bucket bounds as the serve-side histogram.
struct UpstreamStats {
  static constexpr std::array<std::uint64_t, 7> kBucketMicros{
      100, 500, 1000, 5000, 25000, 100000, 1000000};

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> error{0};
  std::array<std::atomic<std::uint64_t>, kBucketMicros.size() + 1> buckets{};
  std::atomic<std::uint64_t> latency_sum_micros{0};

  void record(bool success, std::uint64_t micros) noexcept;
};

class GatewayMetrics {
 public:
  explicit GatewayMetrics(std::size_t upstream_count);

  /// Client-facing counters (connections, status codes, latency,
  /// in-flight) — recorded by the HttpListener hooks.
  serve::Metrics client;

  void record_upstream(std::size_t upstream, bool success,
                       std::uint64_t micros) noexcept {
    upstreams_[upstream]->record(success, micros);
  }
  void record_retry() noexcept {
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_budget_exhausted() noexcept {
    budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_hedge() noexcept {
    hedges_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_hedge_win() noexcept {
    hedge_wins_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t retries_total() const noexcept {
    return retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t budget_exhausted_total() const noexcept {
    return budget_exhausted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hedges_total() const noexcept {
    return hedges_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t hedge_wins_total() const noexcept {
    return hedge_wins_.load(std::memory_order_relaxed);
  }

  /// The full gateway /metrics document (client family + upstream family +
  /// live health/breaker gauges read from `registry`).
  [[nodiscard]] std::string prometheus_text(
      const ReplicaRegistry& registry) const;

 private:
  std::vector<std::unique_ptr<UpstreamStats>> upstreams_;
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> budget_exhausted_{0};
  std::atomic<std::uint64_t> hedges_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
};

}  // namespace mcmm::gateway
