#pragma once
// The gateway's view of the replica fleet: per-replica health + load state
// plus a background prober that GETs each replica's /healthz. Health
// transitions (eject after N consecutive probe failures, readmit through a
// half-open probation after M successes) are pure functions of probe
// outcomes — record_probe() — so tests drive the state machine without a
// prober thread or sockets.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gateway/breaker.hpp"
#include "gateway/upstream.hpp"

namespace mcmm::gateway {

struct ReplicaEndpoint {
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};
};

enum class ReplicaHealth : std::uint8_t { Healthy, Ejected, HalfOpen };

[[nodiscard]] const char* to_string(ReplicaHealth health) noexcept;

/// One upstream replica. The hot-path fields (in-flight counts, health)
/// are atomics read by the balancer on every pick; probe bookkeeping is
/// only touched by the prober thread.
struct Replica {
  explicit Replica(ReplicaEndpoint ep, BreakerConfig breaker_config)
      : endpoint(std::move(ep)), breaker(breaker_config) {}

  ReplicaEndpoint endpoint;
  CircuitBreaker breaker;
  ConnectionPool pool;

  /// Requests this gateway currently has outstanding against the replica.
  std::atomic<std::uint64_t> in_flight{0};
  /// The replica's own in-flight gauge from its last /healthz response
  /// (captures load from other clients / other gateways).
  std::atomic<std::uint64_t> reported_in_flight{0};
  /// The replica's pid from /healthz (-1 until first successful probe).
  /// Fault injection (loadgen --fault) targets this.
  std::atomic<long> pid{-1};
  std::atomic<ReplicaHealth> health{ReplicaHealth::Healthy};

  // Prober-thread-only state (no concurrent access).
  int probe_failures{0};
  int probe_successes{0};

  /// The balancing signal: local view + replica-reported load.
  [[nodiscard]] std::uint64_t load() const noexcept {
    return in_flight.load(std::memory_order_relaxed) +
           reported_in_flight.load(std::memory_order_relaxed);
  }
};

struct RegistryConfig {
  int probe_interval_ms{200};
  int probe_timeout_ms{500};
  /// Consecutive probe failures before a Healthy replica is ejected.
  int eject_after{3};
  /// Consecutive probe successes a HalfOpen replica needs to be readmitted.
  int readmit_after{2};
  BreakerConfig breaker{};
};

/// Fixed-membership registry (replica set is decided at startup; health is
/// dynamic). Owns the prober thread.
class ReplicaRegistry {
 public:
  ReplicaRegistry(std::vector<ReplicaEndpoint> endpoints,
                  RegistryConfig config = {});
  ~ReplicaRegistry();

  ReplicaRegistry(const ReplicaRegistry&) = delete;
  ReplicaRegistry& operator=(const ReplicaRegistry&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return replicas_.size(); }
  [[nodiscard]] Replica& at(std::size_t i) noexcept { return *replicas_[i]; }
  [[nodiscard]] const Replica& at(std::size_t i) const noexcept {
    return *replicas_[i];
  }

  /// Applies one probe outcome to replica `i`:
  ///   Healthy  --eject_after consecutive failures-->  Ejected
  ///   Ejected  --any success-->                       HalfOpen
  ///   HalfOpen --readmit_after consecutive successes--> Healthy
  ///   HalfOpen --any failure-->                       Ejected
  /// On success also refreshes reported_in_flight and pid.
  void record_probe(std::size_t i, bool success,
                    std::uint64_t reported_in_flight, long pid);

  /// Indices of Healthy replicas (the balancer's candidate set).
  void eligible(std::vector<std::size_t>& out) const;
  [[nodiscard]] std::size_t healthy_count() const noexcept;
  [[nodiscard]] std::uint64_t ejections_total() const noexcept {
    return ejections_total_.load(std::memory_order_relaxed);
  }

  void start_probing();
  void stop_probing();

  [[nodiscard]] const RegistryConfig& config() const noexcept {
    return config_;
  }

 private:
  void probe_loop();
  /// One HTTP GET /healthz against replica `i`; fills the outputs on
  /// success. A non-200 answer (e.g. 503 while draining) is a failure.
  bool probe_once(std::size_t i, std::uint64_t* reported, long* pid);

  RegistryConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::atomic<std::uint64_t> ejections_total_{0};

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_{false};
  std::thread prober_;
};

}  // namespace mcmm::gateway
