#include "gateway/upstream.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace mcmm::gateway {
namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

int connect_with_timeout(const std::string& host, std::uint16_t port,
                         int timeout_ms) noexcept {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);

  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    do {
      rc = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
    } while (rc < 0 && errno == EINTR);
    if (rc <= 0) {
      ::close(fd);
      return -1;
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      ::close(fd);
      return -1;
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking; callers poll themselves
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

int dial_nonblocking(const std::string& host, std::uint16_t port,
                     bool* in_progress) noexcept {
  *in_progress = false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return -1;

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  static const bool nodelay = std::getenv("MCMM_NO_NODELAY") == nullptr;
  if (nodelay) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
  const int rc =
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return -1;
    }
    *in_progress = true;
  }
  return fd;
}

// --- ResponseParser ------------------------------------------------------

ResponseParser::Status ResponseParser::fail() noexcept {
  state_ = State::Done;
  status_ = Status::Error;
  return status_;
}

ResponseParser::Status ResponseParser::feed(std::string_view data) {
  if (state_ == State::Done) return status_;
  if (!data.empty()) saw_bytes_ = true;
  buffer_.append(data);
  return parse();
}

ResponseParser::Status ResponseParser::parse() {
  if (state_ == State::StatusLine) {
    const std::size_t eol = buffer_.find("\r\n", consumed_);
    if (eol == std::string::npos) {
      if (buffer_.size() - consumed_ > kMaxHeaderBytes) return fail();
      return status_;
    }
    const std::string_view line(buffer_.data() + consumed_, eol - consumed_);
    // "HTTP/1.x NNN reason"
    if (line.size() < 12 || line.compare(0, 7, "HTTP/1.") != 0 ||
        line[8] != ' ') {
      return fail();
    }
    version_minor_ = line[7] - '0';
    int code = 0;
    for (int i = 9; i < 12; ++i) {
      const char c = line[static_cast<std::size_t>(i)];
      if (c < '0' || c > '9') return fail();
      code = code * 10 + (c - '0');
    }
    status_code_ = code;
    consumed_ = eol + 2;
    state_ = State::Headers;
  }

  if (state_ == State::Headers) {
    for (;;) {
      const std::size_t eol = buffer_.find("\r\n", consumed_);
      if (eol == std::string::npos) {
        if (buffer_.size() - consumed_ > kMaxHeaderBytes) return fail();
        return status_;
      }
      if (eol == consumed_) {  // blank line: end of headers
        consumed_ += 2;
        const std::string* te = header("transfer-encoding");
        if (te != nullptr) return fail();  // serve never chunks; reject
        const bool bodiless = head_ || status_code_ == 204 ||
                              status_code_ == 304 ||
                              (status_code_ >= 100 && status_code_ < 200);
        content_length_ = 0;
        if (!bodiless) {
          if (const std::string* cl = header("content-length")) {
            std::size_t value = 0;
            if (cl->empty()) return fail();
            for (const char c : *cl) {
              if (c < '0' || c > '9') return fail();
              value = value * 10 + static_cast<std::size_t>(c - '0');
              if (value > kMaxBody) return fail();
            }
            content_length_ = value;
          }
        }
        state_ = State::Body;
        break;
      }
      if (eol - consumed_ > kMaxHeaderBytes ||
          headers_.size() >= 128) {
        return fail();
      }
      const std::string_view line(buffer_.data() + consumed_,
                                  eol - consumed_);
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos || colon == 0) return fail();
      headers_.emplace_back(to_lower(line.substr(0, colon)),
                            std::string(trim(line.substr(colon + 1))));
      consumed_ = eol + 2;
    }
  }

  if (state_ == State::Body) {
    const std::size_t have = buffer_.size() - consumed_;
    if (have < content_length_) return status_;
    body_.assign(buffer_, consumed_, content_length_);
    consumed_ += content_length_;
    state_ = State::Done;
    status_ = Status::Complete;
  }
  return status_;
}

const std::string* ResponseParser::header(
    std::string_view name) const noexcept {
  for (const auto& [key, value] : headers_) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool ResponseParser::keep_alive() const noexcept {
  const std::string* conn = header("connection");
  if (conn != nullptr) {
    const std::string lowered = to_lower(*conn);
    if (lowered.find("close") != std::string::npos) return false;
    if (lowered.find("keep-alive") != std::string::npos) return true;
  }
  return version_minor_ >= 1;
}

// --- ConnectionPool ------------------------------------------------------

int ConnectionPool::acquire() noexcept {
  for (;;) {
    int fd = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (idle_.empty()) return -1;
      fd = idle_.back();
      idle_.pop_back();
    }
    // A quiet idle connection has nothing to read; data or HUP means the
    // replica closed (or garbled) it while pooled — drop and try the next.
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int r = ::poll(&pfd, 1, 0);
    if (r == 0) return fd;
    ::close(fd);
  }
}

void ConnectionPool::release(int fd) noexcept {
  if (fd < 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (idle_.size() < max_idle_) {
      idle_.push_back(fd);
      return;
    }
  }
  ::close(fd);
}

void ConnectionPool::close_all() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  for (const int fd : idle_) ::close(fd);
  idle_.clear();
}

}  // namespace mcmm::gateway
