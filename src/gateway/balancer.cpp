#include "gateway/balancer.hpp"

#include <algorithm>

namespace mcmm::gateway {

std::optional<Policy> parse_policy(std::string_view name) {
  if (name == "rr") return Policy::RoundRobin;
  if (name == "p2c") return Policy::PowerOfTwo;
  return std::nullopt;
}

const char* to_string(Policy policy) noexcept {
  switch (policy) {
    case Policy::RoundRobin:
      return "rr";
    case Policy::PowerOfTwo:
      return "p2c";
  }
  return "unknown";
}

std::uint64_t Balancer::next_random() noexcept {
  // xorshift64* advanced with a CAS so concurrent pickers never observe
  // the same state twice (a duplicated draw would correlate their picks).
  std::uint64_t x = rng_state_.load(std::memory_order_relaxed);
  for (;;) {
    std::uint64_t next = x;
    next ^= next >> 12;
    next ^= next << 25;
    next ^= next >> 27;
    if (rng_state_.compare_exchange_weak(x, next,
                                         std::memory_order_relaxed)) {
      return next * 0x2545f4914f6cdd1dull;
    }
  }
}

std::optional<std::size_t> Balancer::pick(
    const ReplicaRegistry& registry,
    const std::vector<std::size_t>& candidates,
    const std::vector<std::size_t>& excluded) {
  std::vector<std::size_t> pool;
  pool.reserve(candidates.size());
  for (const std::size_t i : candidates) {
    if (std::find(excluded.begin(), excluded.end(), i) == excluded.end()) {
      pool.push_back(i);
    }
  }
  if (pool.empty()) return std::nullopt;
  if (pool.size() == 1) return pool.front();

  if (policy_ == Policy::RoundRobin) {
    const std::uint64_t n = rr_.fetch_add(1, std::memory_order_relaxed);
    return pool[n % pool.size()];
  }

  const std::size_t a = next_random() % pool.size();
  std::size_t b = next_random() % (pool.size() - 1);
  if (b >= a) ++b;  // distinct second sample
  const std::size_t ia = pool[a];
  const std::size_t ib = pool[b];
  return registry.at(ia).load() <= registry.at(ib).load() ? ia : ib;
}

}  // namespace mcmm::gateway
