#pragma once
// Upstream-side plumbing for the mcmm gateway: bounded-time connects, an
// incremental HTTP/1.1 *response* parser (the mirror of serve's hardened
// request parser, socket-free for the same testability reasons), and a
// keep-alive connection pool per replica.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mcmm::gateway {

/// Connects to host:port within `timeout_ms` (non-blocking connect +
/// poll), returning a blocking fd with TCP_NODELAY, or -1 on failure.
/// Used by the registry prober, which runs on its own thread and may block.
[[nodiscard]] int connect_with_timeout(const std::string& host,
                                       std::uint16_t port,
                                       int timeout_ms) noexcept;

/// Starts a non-blocking connect for the readiness loop: returns a
/// SOCK_NONBLOCK|SOCK_CLOEXEC fd with TCP_NODELAY (unless MCMM_NO_NODELAY
/// is set), or -1 on immediate failure. `*in_progress` is true when the
/// handshake is still pending — the caller must wait for EPOLLOUT and
/// check SO_ERROR before writing.
[[nodiscard]] int dial_nonblocking(const std::string& host,
                                   std::uint16_t port,
                                   bool* in_progress) noexcept;

/// Incremental HTTP/1.1 response parser. Framing: Content-Length (the only
/// body framing mcmm serve emits); a missing Content-Length means an empty
/// body; 1xx/204/304 and HEAD exchanges never carry one (RFC 9112 §6.3).
/// Hard caps mirror serve's request limits so a misbehaving upstream
/// cannot balloon gateway memory.
class ResponseParser {
 public:
  enum class Status : std::uint8_t { NeedMore, Complete, Error };

  /// `head` marks the exchange as a HEAD request (bodiless by definition).
  explicit ResponseParser(bool head = false) : head_(head) {}

  Status feed(std::string_view data);

  [[nodiscard]] Status status() const noexcept { return status_; }
  [[nodiscard]] int status_code() const noexcept { return status_code_; }
  [[nodiscard]] bool saw_bytes() const noexcept { return saw_bytes_; }
  /// First header with that lowercase name; nullptr when absent.
  [[nodiscard]] const std::string* header(
      std::string_view name) const noexcept;
  /// Connection persistence of the upstream side after this response.
  [[nodiscard]] bool keep_alive() const noexcept;
  /// Moves the body out. Only valid when status() == Complete.
  [[nodiscard]] std::string take_body() { return std::move(body_); }

 private:
  enum class State : std::uint8_t { StatusLine, Headers, Body, Done };

  Status fail() noexcept;
  Status parse();

  static constexpr std::size_t kMaxHeaderBytes = 32 * 1024;
  static constexpr std::size_t kMaxBody = 8u << 20;

  bool head_;
  bool saw_bytes_{false};
  State state_{State::StatusLine};
  Status status_{Status::NeedMore};
  int status_code_{0};
  int version_minor_{1};
  std::vector<std::pair<std::string, std::string>> headers_;
  std::string body_;
  std::string buffer_;
  std::size_t consumed_{0};
  std::size_t content_length_{0};
};

/// Keep-alive connections to one replica. acquire() hands back a pooled fd
/// after a zero-timeout poll proves it is still quiet (a readable or
/// hung-up idle connection is stale — the replica died or timed us out —
/// and is closed instead of reused); -1 means the caller should dial.
class ConnectionPool {
 public:
  explicit ConnectionPool(std::size_t max_idle = 16) : max_idle_(max_idle) {}
  ~ConnectionPool() { close_all(); }

  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  [[nodiscard]] int acquire() noexcept;
  /// Returns a healthy keep-alive connection; closes it if the pool is
  /// already holding max_idle.
  void release(int fd) noexcept;
  void close_all() noexcept;

 private:
  std::mutex mu_;
  std::vector<int> idle_;
  std::size_t max_idle_;
};

}  // namespace mcmm::gateway
