#include "gateway/registry.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>

namespace mcmm::gateway {
namespace {

/// Extracts the integer after `"key":` in a tiny flat JSON object.
/// Returns false when the key is missing or malformed. Good enough for
/// the /healthz bodies serve emits; not a JSON parser.
bool json_int_field(const std::string& body, const char* key, long* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = body.find(needle);
  if (at == std::string::npos) return false;
  const char* p = body.c_str() + at + needle.size();
  char* end = nullptr;
  const long value = std::strtol(p, &end, 10);
  if (end == p) return false;
  *out = value;
  return true;
}

}  // namespace

const char* to_string(ReplicaHealth health) noexcept {
  switch (health) {
    case ReplicaHealth::Healthy:
      return "healthy";
    case ReplicaHealth::Ejected:
      return "ejected";
    case ReplicaHealth::HalfOpen:
      return "half-open";
  }
  return "unknown";
}

ReplicaRegistry::ReplicaRegistry(std::vector<ReplicaEndpoint> endpoints,
                                 RegistryConfig config)
    : config_(config) {
  replicas_.reserve(endpoints.size());
  for (ReplicaEndpoint& ep : endpoints) {
    replicas_.push_back(
        std::make_unique<Replica>(std::move(ep), config_.breaker));
  }
}

ReplicaRegistry::~ReplicaRegistry() { stop_probing(); }

void ReplicaRegistry::record_probe(std::size_t i, bool success,
                                   std::uint64_t reported_in_flight,
                                   long pid) {
  Replica& r = at(i);
  if (success) {
    r.probe_failures = 0;
    r.reported_in_flight.store(reported_in_flight,
                               std::memory_order_relaxed);
    r.pid.store(pid, std::memory_order_relaxed);
    switch (r.health.load(std::memory_order_relaxed)) {
      case ReplicaHealth::Healthy:
        break;
      case ReplicaHealth::Ejected:
        // First sign of life: probation, not full traffic.
        r.probe_successes = 1;
        r.health.store(config_.readmit_after <= 1 ? ReplicaHealth::Healthy
                                                  : ReplicaHealth::HalfOpen,
                       std::memory_order_relaxed);
        break;
      case ReplicaHealth::HalfOpen:
        if (++r.probe_successes >= config_.readmit_after) {
          r.health.store(ReplicaHealth::Healthy, std::memory_order_relaxed);
        }
        break;
    }
    return;
  }
  r.probe_successes = 0;
  switch (r.health.load(std::memory_order_relaxed)) {
    case ReplicaHealth::Healthy:
      if (++r.probe_failures >= config_.eject_after) {
        r.health.store(ReplicaHealth::Ejected, std::memory_order_relaxed);
        ejections_total_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    case ReplicaHealth::HalfOpen:
      // Relapsed during probation: straight back out.
      r.health.store(ReplicaHealth::Ejected, std::memory_order_relaxed);
      ejections_total_.fetch_add(1, std::memory_order_relaxed);
      r.probe_failures = config_.eject_after;
      break;
    case ReplicaHealth::Ejected:
      break;
  }
}

void ReplicaRegistry::eligible(std::vector<std::size_t>& out) const {
  out.clear();
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (replicas_[i]->health.load(std::memory_order_relaxed) ==
        ReplicaHealth::Healthy) {
      out.push_back(i);
    }
  }
}

std::size_t ReplicaRegistry::healthy_count() const noexcept {
  std::size_t n = 0;
  for (const auto& r : replicas_) {
    if (r->health.load(std::memory_order_relaxed) ==
        ReplicaHealth::Healthy) {
      ++n;
    }
  }
  return n;
}

void ReplicaRegistry::start_probing() {
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    probe_stop_ = false;
  }
  prober_ = std::thread([this] { probe_loop(); });
}

void ReplicaRegistry::stop_probing() {
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

void ReplicaRegistry::probe_loop() {
  for (;;) {
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      std::uint64_t reported = 0;
      long pid = -1;
      const bool ok = probe_once(i, &reported, &pid);
      record_probe(i, ok, reported, pid);
    }
    std::unique_lock<std::mutex> lock(probe_mu_);
    probe_cv_.wait_for(lock,
                       std::chrono::milliseconds(config_.probe_interval_ms),
                       [this] { return probe_stop_; });
    if (probe_stop_) return;
  }
}

bool ReplicaRegistry::probe_once(std::size_t i, std::uint64_t* reported,
                                 long* pid) {
  const Replica& r = at(i);
  const int fd = connect_with_timeout(r.endpoint.host, r.endpoint.port,
                                      config_.probe_timeout_ms);
  if (fd < 0) return false;
  const std::string request =
      "GET /healthz HTTP/1.1\r\nHost: " + r.endpoint.host +
      "\r\nConnection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }

  ResponseParser parser;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.probe_timeout_ms);
  char buf[4096];
  while (parser.status() == ResponseParser::Status::NeedMore) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline - std::chrono::steady_clock::now())
                          .count();
    if (left <= 0) {
      ::close(fd);
      return false;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0 && errno == EINTR) continue;
    if (pr <= 0) {
      ::close(fd);
      return false;
    }
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF: let the parser state decide
    parser.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
  ::close(fd);
  if (parser.status() != ResponseParser::Status::Complete ||
      parser.status_code() != 200) {
    return false;
  }
  const std::string body = parser.take_body();
  long in_flight = 0;
  if (json_int_field(body, "in_flight", &in_flight) && in_flight >= 0) {
    *reported = static_cast<std::uint64_t>(in_flight);
  }
  long reported_pid = -1;
  if (json_int_field(body, "pid", &reported_pid)) *pid = reported_pid;
  return true;
}

}  // namespace mcmm::gateway
