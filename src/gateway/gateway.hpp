#pragma once
// mcmm gateway: an HTTP/1.1 reverse proxy in front of a fleet of mcmm
// serve replicas (DESIGN.md §3.3). It reuses the serve HttpListener loop
// on the client side and multiplexes the upstream side on the same
// readiness loop: every proxied request is a ProxyTask whose sockets,
// deadlines, retries, and hedges are event-driven, so no thread is ever
// parked on an upstream round-trip. On top of that sit health-checked
// replica selection (round-robin or power-of-two-choices on live load),
// per-replica keep-alive connection caches, circuit breakers, a global
// retry budget, transparent retries of idempotent requests, and optional
// latency hedging for hot read paths. Responses are fully buffered in the
// gateway, which is what makes retry and hedging safe: nothing is sent to
// the client until one upstream has answered completely.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "gateway/balancer.hpp"
#include "gateway/breaker.hpp"
#include "gateway/metrics.hpp"
#include "gateway/proxy_task.hpp"
#include "gateway/registry.hpp"
#include "gateway/upstream.hpp"
#include "serve/server.hpp"

namespace mcmm::gateway {

using serve::Request;
using serve::Response;

struct GatewayConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{8081};  ///< 0 picks an ephemeral port
  unsigned threads{0};       ///< worker threads; 0 = min(hw concurrency, 8)
  int backlog{1024};
  int request_timeout_ms{5000};
  int idle_timeout_ms{5000};
  int connect_timeout_ms{1000};   ///< upstream dial budget
  int upstream_timeout_ms{5000};  ///< full upstream exchange budget
  /// Hedge a slow GET under any of `hedge_prefixes` after this long;
  /// <= 0 disables.
  int hedge_after_ms{30};
  /// Hot immutable read paths worth a duplicate upstream leg: cached on
  /// the replica, so a hedge costs a lookup, never recomputation.
  std::vector<std::string> hedge_prefixes{"/v1/matrix", "/v1/perf"};
  /// Extra attempts (on other replicas) for idempotent requests.
  int max_retries{2};
  /// Ceiling on sockets (in-use + idle) per replica; proxy legs beyond it
  /// queue on the loop until a slot frees instead of dialing unbounded.
  int max_upstream_connections{256};
  /// Keep-alive connections cached per replica once a leg completes.
  int max_upstream_idle{64};
  /// Print the probed fd limit / connection ceiling at startup.
  bool log_fd_limit{false};
  Policy policy{Policy::PowerOfTwo};
  std::uint64_t balancer_seed{0x9e3779b97f4a7c15ull};
  RegistryConfig registry{};
  RetryBudgetConfig retry_budget{};
  serve::Limits limits{};
};

/// The reverse proxy. Client-side routes:
///   /metrics          gateway + upstream Prometheus families
///   /gateway/healthz  aggregate fleet health (503 when no replica is up)
///   /gateway/replicas per-replica health/breaker/load/pid as JSON
///   anything else     proxied to a replica
class Gateway : public serve::HttpListener {
 public:
  Gateway(std::vector<ReplicaEndpoint> replicas, GatewayConfig config = {});
  ~Gateway() override;

  [[nodiscard]] ReplicaRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const GatewayMetrics& gateway_metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] RetryBudget& retry_budget() noexcept { return budget_; }

 protected:
  Response handle_request(const Request& req,
                          const std::string& request_id) override;
  /// Proxied paths are taken async: the client connection parks while a
  /// ProxyTask drives the upstream exchange on the readiness loop. Local
  /// routes (/metrics, /gateway/*) decline and fall back to
  /// handle_request() on the worker.
  bool dispatch_async(const Request& req, const std::string& request_id,
                      serve::ResponseToken token) override;
  void on_connection() noexcept override {
    metrics_.client.record_connection();
  }
  void on_request_begin() noexcept override {
    metrics_.client.begin_request();
  }
  void on_request_end() noexcept override { metrics_.client.end_request(); }
  void on_request_done(int status, std::uint64_t micros) noexcept override {
    metrics_.client.record_request(status, micros);
  }

 private:
  friend class ProxyTask;
  friend struct ProxyLeg;

  /// Loop-thread-only connection accounting for one replica: cached idle
  /// keep-alive sockets, the count of every socket currently open against
  /// it (idle + leased + dialing), and legs parked for a free slot.
  struct UpstreamConns {
    std::vector<int> idle;
    std::size_t open{0};
    std::deque<ProxyLeg*> waiters;
  };

  static serve::ListenerConfig to_listener_config(
      const GatewayConfig& config);

  /// Replica choice for one attempt: half-open breakers get their single
  /// trial request first (real traffic is the probe that closes them);
  /// otherwise the balancing policy runs over closed-breaker healthy
  /// replicas.
  [[nodiscard]] std::optional<std::size_t> pick_replica(
      const std::vector<std::size_t>& excluded, std::int64_t now_ms);
  /// The serve-side Response for a completed upstream exchange.
  Response translate_response(ResponseParser& parser);
  /// The upstream request bytes: client headers minus hop-by-hop ones,
  /// recomputed Content-Length, canonical X-Request-Id.
  [[nodiscard]] std::string upstream_wire(const Request& req,
                                          const std::string& request_id);

  // ProxyTask's doorway to the protected HttpListener seam.
  [[nodiscard]] serve::EventLoop& proxy_loop() noexcept { return loop(); }
  void proxy_complete(serve::ResponseToken token, Response resp) {
    complete_async(token, std::move(resp));
  }
  /// Hands a freed connection slot of replica `i` to the oldest waiting
  /// leg. Loop thread only.
  void resume_waiter(std::size_t i);

  Response handle_metrics(const Request& req);
  Response handle_gateway_healthz();
  Response handle_gateway_replicas();

  GatewayConfig config_;
  ReplicaRegistry registry_;
  Balancer balancer_;
  RetryBudget budget_;
  GatewayMetrics metrics_;
  std::vector<UpstreamConns> upstream_;  ///< loop-thread-only
};

}  // namespace mcmm::gateway
