#include "gateway/breaker.hpp"

#include <algorithm>
#include <chrono>

namespace mcmm::gateway {

std::int64_t steady_now_ms() noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CircuitBreaker::State CircuitBreaker::state(std::int64_t now_ms) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::Open &&
      now_ms - opened_at_ms_ >= config_.open_cooldown_ms) {
    return State::HalfOpen;
  }
  return state_;
}

bool CircuitBreaker::allow(std::int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::Closed:
      return true;
    case State::Open:
      if (now_ms - opened_at_ms_ < config_.open_cooldown_ms) return false;
      state_ = State::HalfOpen;
      trial_in_flight_ = true;
      return true;
    case State::HalfOpen:
      if (trial_in_flight_) return false;
      trial_in_flight_ = true;
      return true;
  }
  return false;  // unreachable
}

void CircuitBreaker::record_success(std::int64_t /*now_ms*/) {
  std::lock_guard<std::mutex> lock(mu_);
  state_ = State::Closed;
  consecutive_failures_ = 0;
  trial_in_flight_ = false;
}

void CircuitBreaker::record_failure(std::int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  trial_in_flight_ = false;
  if (state_ == State::HalfOpen) {
    // The trial failed: back to Open for a fresh cooldown.
    state_ = State::Open;
    opened_at_ms_ = now_ms;
    return;
  }
  if (state_ == State::Open) return;  // already failing fast
  if (++consecutive_failures_ >= config_.failure_threshold) {
    state_ = State::Open;
    opened_at_ms_ = now_ms;
  }
}

void CircuitBreaker::record_abandoned() {
  std::lock_guard<std::mutex> lock(mu_);
  trial_in_flight_ = false;
}

RetryBudget::RetryBudget(RetryBudgetConfig config)
    : config_(config),
      cap_milli_(static_cast<std::int64_t>(config.burst) * 1000),
      milli_tokens_(cap_milli_) {}

void RetryBudget::on_request() noexcept {
  const auto deposit = static_cast<std::int64_t>(config_.ratio * 1000.0);
  std::int64_t current = milli_tokens_.load(std::memory_order_relaxed);
  for (;;) {
    const std::int64_t next = std::min(current + deposit, cap_milli_);
    if (next == current) return;
    if (milli_tokens_.compare_exchange_weak(current, next,
                                            std::memory_order_relaxed)) {
      return;
    }
  }
}

bool RetryBudget::try_withdraw() noexcept {
  std::int64_t current = milli_tokens_.load(std::memory_order_relaxed);
  for (;;) {
    if (current < 1000) return false;
    if (milli_tokens_.compare_exchange_weak(current, current - 1000,
                                            std::memory_order_relaxed)) {
      return true;
    }
  }
}

std::uint64_t RetryBudget::balance() const noexcept {
  const std::int64_t milli = milli_tokens_.load(std::memory_order_relaxed);
  return milli < 0 ? 0 : static_cast<std::uint64_t>(milli / 1000);
}

}  // namespace mcmm::gateway
