#include "gateway/metrics.hpp"

#include <cstdio>

#include "gateway/registry.hpp"

namespace mcmm::gateway {

void UpstreamStats::record(bool success, std::uint64_t micros) noexcept {
  (success ? ok : error).fetch_add(1, std::memory_order_relaxed);
  std::size_t bucket = kBucketMicros.size();  // +Inf
  for (std::size_t i = 0; i < kBucketMicros.size(); ++i) {
    if (micros <= kBucketMicros[i]) {
      bucket = i;
      break;
    }
  }
  buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_sum_micros.fetch_add(micros, std::memory_order_relaxed);
}

GatewayMetrics::GatewayMetrics(std::size_t upstream_count) {
  upstreams_.reserve(upstream_count);
  for (std::size_t i = 0; i < upstream_count; ++i) {
    upstreams_.push_back(std::make_unique<UpstreamStats>());
  }
}

std::string GatewayMetrics::prometheus_text(
    const ReplicaRegistry& registry) const {
  std::string out = client.prometheus_text();
  out.reserve(out.size() + 4096);

  auto upstream_label = [&registry](std::size_t i) {
    const Replica& r = registry.at(i);
    return r.endpoint.host + ":" + std::to_string(r.endpoint.port);
  };

  out +=
      "# HELP mcmm_gateway_upstream_requests_total Proxied exchanges per "
      "upstream, by result.\n"
      "# TYPE mcmm_gateway_upstream_requests_total counter\n";
  for (std::size_t i = 0; i < upstreams_.size(); ++i) {
    const UpstreamStats& s = *upstreams_[i];
    const std::uint64_t ok = s.ok.load(std::memory_order_relaxed);
    const std::uint64_t err = s.error.load(std::memory_order_relaxed);
    if (ok != 0) {
      out += "mcmm_gateway_upstream_requests_total{upstream=\"" +
             upstream_label(i) + "\",result=\"ok\"} ";
      out += std::to_string(ok);
      out += '\n';
    }
    if (err != 0) {
      out += "mcmm_gateway_upstream_requests_total{upstream=\"" +
             upstream_label(i) + "\",result=\"error\"} ";
      out += std::to_string(err);
      out += '\n';
    }
  }

  out +=
      "# HELP mcmm_gateway_upstream_duration_seconds Upstream exchange "
      "latency per replica.\n"
      "# TYPE mcmm_gateway_upstream_duration_seconds histogram\n";
  char label[32];
  for (std::size_t i = 0; i < upstreams_.size(); ++i) {
    const UpstreamStats& s = *upstreams_[i];
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < UpstreamStats::kBucketMicros.size(); ++b) {
      cumulative += s.buckets[b].load(std::memory_order_relaxed);
      std::snprintf(label, sizeof label, "%g",
                    static_cast<double>(UpstreamStats::kBucketMicros[b]) /
                        1e6);
      out += "mcmm_gateway_upstream_duration_seconds_bucket{upstream=\"" +
             upstream_label(i) + "\",le=\"";
      out += label;
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    cumulative += s.buckets[UpstreamStats::kBucketMicros.size()].load(
        std::memory_order_relaxed);
    out += "mcmm_gateway_upstream_duration_seconds_bucket{upstream=\"" +
           upstream_label(i) + "\",le=\"+Inf\"} ";
    out += std::to_string(cumulative);
    out += '\n';
    std::snprintf(
        label, sizeof label, "%.6f",
        static_cast<double>(
            s.latency_sum_micros.load(std::memory_order_relaxed)) /
            1e6);
    out += "mcmm_gateway_upstream_duration_seconds_sum{upstream=\"" +
           upstream_label(i) + "\"} ";
    out += label;
    out += '\n';
    out += "mcmm_gateway_upstream_duration_seconds_count{upstream=\"" +
           upstream_label(i) + "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }

  const auto counter = [&out](const char* name, const char* help,
                              std::uint64_t value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  counter("mcmm_gateway_retries_total",
          "Transparent retries sent to a different replica.",
          retries_.load(std::memory_order_relaxed));
  counter("mcmm_gateway_retry_budget_exhausted_total",
          "Retries or hedges suppressed by the global retry budget.",
          budget_exhausted_.load(std::memory_order_relaxed));
  counter("mcmm_gateway_hedges_total", "Latency hedges issued.",
          hedges_.load(std::memory_order_relaxed));
  counter("mcmm_gateway_hedge_wins_total",
          "Hedged requests where the hedge answered first.",
          hedge_wins_.load(std::memory_order_relaxed));
  counter("mcmm_gateway_ejections_total",
          "Replicas ejected by the health prober.",
          registry.ejections_total());

  out +=
      "# HELP mcmm_gateway_replica_health Replica health "
      "(1 healthy, 0.5 half-open, 0 ejected).\n"
      "# TYPE mcmm_gateway_replica_health gauge\n";
  const std::int64_t now_ms = steady_now_ms();
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const char* value = "0";
    switch (registry.at(i).health.load(std::memory_order_relaxed)) {
      case ReplicaHealth::Healthy:
        value = "1";
        break;
      case ReplicaHealth::HalfOpen:
        value = "0.5";
        break;
      case ReplicaHealth::Ejected:
        value = "0";
        break;
    }
    out += "mcmm_gateway_replica_health{upstream=\"" + upstream_label(i) +
           "\"} ";
    out += value;
    out += '\n';
  }

  out +=
      "# HELP mcmm_gateway_breaker_state Circuit breaker state per replica "
      "(0 closed, 1 open, 2 half-open).\n"
      "# TYPE mcmm_gateway_breaker_state gauge\n";
  for (std::size_t i = 0; i < registry.size(); ++i) {
    int value = 0;
    switch (registry.at(i).breaker.state(now_ms)) {
      case CircuitBreaker::State::Closed:
        value = 0;
        break;
      case CircuitBreaker::State::Open:
        value = 1;
        break;
      case CircuitBreaker::State::HalfOpen:
        value = 2;
        break;
    }
    out += "mcmm_gateway_breaker_state{upstream=\"" + upstream_label(i) +
           "\"} ";
    out += std::to_string(value);
    out += '\n';
  }

  out +=
      "# HELP mcmm_gateway_healthy_replicas Replicas currently taking "
      "traffic.\n"
      "# TYPE mcmm_gateway_healthy_replicas gauge\n"
      "mcmm_gateway_healthy_replicas ";
  out += std::to_string(registry.healthy_count());
  out += '\n';
  return out;
}

}  // namespace mcmm::gateway
