#pragma once
// Replica selection for the mcmm gateway: round-robin, and
// power-of-two-choices over live load (Mitzenmacher's "power of two
// choices" — sample two distinct replicas uniformly, send to the less
// loaded; near-best-of-N balance for O(1) work and no global scan).

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gateway/registry.hpp"

namespace mcmm::gateway {

enum class Policy : std::uint8_t { RoundRobin, PowerOfTwo };

/// Parses "rr" / "p2c"; nullopt for anything else.
[[nodiscard]] std::optional<Policy> parse_policy(std::string_view name);
[[nodiscard]] const char* to_string(Policy policy) noexcept;

/// Thread-safe picker over a candidate index set. The RNG is a seedable
/// atomic xorshift so tests get deterministic pick sequences.
class Balancer {
 public:
  explicit Balancer(Policy policy, std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : policy_(policy), rng_state_(seed == 0 ? 1 : seed) {}

  [[nodiscard]] Policy policy() const noexcept { return policy_; }

  /// Picks one of `candidates` (replica indices into `registry`), skipping
  /// any listed in `excluded` (replicas this request already failed on).
  /// nullopt when nothing remains.
  [[nodiscard]] std::optional<std::size_t> pick(
      const ReplicaRegistry& registry,
      const std::vector<std::size_t>& candidates,
      const std::vector<std::size_t>& excluded);

 private:
  [[nodiscard]] std::uint64_t next_random() noexcept;

  Policy policy_;
  std::atomic<std::uint64_t> rr_{0};
  std::atomic<std::uint64_t> rng_state_;
};

}  // namespace mcmm::gateway
