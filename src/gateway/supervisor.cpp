#include "gateway/supervisor.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "core/error.hpp"
#include "data/dataset.hpp"
#include "serve/server.hpp"

namespace mcmm::gateway {
namespace {

serve::Server* g_replica_server = nullptr;

extern "C" void replica_signal_handler(int) {
  if (g_replica_server != nullptr) g_replica_server->shutdown();
}

/// Binds + listens on host:0; returns {fd, kernel-assigned port}.
std::pair<int, std::uint16_t> bind_ephemeral(const std::string& host,
                                             int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw Error(std::string("socket: ") + std::strerror(errno));
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("not an IPv4 listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    throw Error(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw Error(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  return {fd, ntohs(bound.sin_port)};
}

[[noreturn]] void replica_main(int listen_fd, const SupervisorConfig& cfg) {
  serve::ServerConfig server_cfg;
  server_cfg.host = cfg.host;
  server_cfg.threads = cfg.threads_per_replica;
  server_cfg.max_in_flight = cfg.max_in_flight;
  server_cfg.adopt_fd = listen_fd;
  server_cfg.enable_perf = cfg.enable_perf;
  try {
    serve::Server server(data::paper_matrix(), server_cfg);
    server.start();
    g_replica_server = &server;
    std::signal(SIGTERM, replica_signal_handler);
    std::signal(SIGINT, SIG_IGN);  // the supervisor owns ^C handling
    server.join();
    g_replica_server = nullptr;
  } catch (...) {
    _exit(1);
  }
  _exit(0);
}

}  // namespace

std::vector<ReplicaProcess> spawn_replicas(unsigned count,
                                           const SupervisorConfig& config) {
  std::vector<int> fds;
  std::vector<ReplicaProcess> out;
  fds.reserve(count);
  out.reserve(count);
  try {
    for (unsigned i = 0; i < count; ++i) {
      // Deep backlog: the gateway dials replicas in bursts of up to its
      // per-replica connection cap, and a dropped SYN costs a 1s kernel
      // retransmit — longer than the dial deadline.
      auto [fd, port] = bind_ephemeral(config.host, 1024);
      fds.push_back(fd);
      out.push_back(ReplicaProcess{-1, port});
    }
    for (unsigned i = 0; i < count; ++i) {
      const pid_t pid = ::fork();
      if (pid < 0) throw Error(std::string("fork: ") + std::strerror(errno));
      if (pid == 0) {
        // Child: keep only this replica's listener.
        for (unsigned j = 0; j < count; ++j) {
          if (j != i) ::close(fds[j]);
        }
        replica_main(fds[i], config);  // never returns
      }
      out[i].pid = pid;
    }
  } catch (...) {
    for (const int fd : fds) ::close(fd);
    for (ReplicaProcess& r : out) {
      if (r.pid > 0) ::kill(r.pid, SIGKILL);
    }
    throw;
  }
  // Parent: the children own the listeners now.
  for (const int fd : fds) ::close(fd);
  return out;
}

int terminate_replicas(std::vector<ReplicaProcess>& replicas, int grace_ms) {
  for (const ReplicaProcess& r : replicas) {
    if (r.pid > 0) ::kill(r.pid, SIGTERM);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(grace_ms);
  int killed = 0;
  for (ReplicaProcess& r : replicas) {
    if (r.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t w = ::waitpid(r.pid, &status, WNOHANG);
      if (w == r.pid || (w < 0 && errno == ECHILD)) {
        r.pid = -1;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::kill(r.pid, SIGKILL);
        ::waitpid(r.pid, &status, 0);
        r.pid = -1;
        ++killed;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return killed;
}

}  // namespace mcmm::gateway
