#pragma once
// Replica supervision for `mcmm cluster N`: fork one mcmm serve process
// per replica and hand each an already-bound listening socket. Binding in
// the parent (port 0 -> kernel-assigned) means the replica set's ports are
// known before any child runs — no port files, no retry races — and a
// replica that dies can never lose its address.
//
// fork() happens before the gateway spawns any threads; a post-thread fork
// would clone a process whose locks may be held by threads that do not
// exist in the child.

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace mcmm::gateway {

struct ReplicaProcess {
  pid_t pid{-1};
  std::uint16_t port{0};
};

struct SupervisorConfig {
  std::string host{"127.0.0.1"};
  unsigned threads_per_replica{2};
  unsigned max_in_flight{0};  ///< per-replica overload cap; 0 = uncapped
  /// Each replica runs the perf-portability campaign at startup and serves
  /// GET /v1/perf (see serve::ServerConfig::enable_perf). Off by default:
  /// test fleets fork dozens of replicas and must not pay the campaign per
  /// child; `mcmm cluster` turns it on.
  bool enable_perf{false};
};

/// Binds `count` ephemeral listeners and forks one serve replica per
/// socket. Returns the children (pid + bound port); throws mcmm::Error
/// when a bind or fork fails. Call from a single-threaded process only.
[[nodiscard]] std::vector<ReplicaProcess> spawn_replicas(
    unsigned count, const SupervisorConfig& config = {});

/// Graceful stop: SIGTERM each live child, wait up to `grace_ms` for all
/// to exit, SIGKILL stragglers. Returns the number that needed SIGKILL.
int terminate_replicas(std::vector<ReplicaProcess>& replicas, int grace_ms);

}  // namespace mcmm::gateway
