#include "gateway/gateway.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace mcmm::gateway {
namespace {

/// Request headers that must not cross the proxy hop (RFC 9110 §7.6.1,
/// plus Connection-nominated ones serve never emits).
bool hop_by_hop(const std::string& name) noexcept {
  static constexpr const char* kNames[] = {
      "connection", "keep-alive",        "proxy-connection", "te",
      "trailer",    "transfer-encoding", "upgrade"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

bool send_wire(int fd, std::string_view data) noexcept {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace

/// One in-flight upstream leg of a proxied request.
struct Gateway::Stream {
  std::size_t idx{0};
  int fd{-1};
  bool from_pool{false};
  bool replayed{false};
  bool active{false};
  std::int64_t start_ms{0};
  ResponseParser parser;
};

serve::ListenerConfig Gateway::to_listener_config(
    const GatewayConfig& config) {
  serve::ListenerConfig out;
  out.host = config.host;
  out.port = config.port;
  out.threads = config.threads;
  out.backlog = config.backlog;
  out.request_timeout_ms = config.request_timeout_ms;
  out.idle_timeout_ms = config.idle_timeout_ms;
  out.limits = config.limits;
  return out;
}

Gateway::Gateway(std::vector<ReplicaEndpoint> replicas, GatewayConfig config)
    : serve::HttpListener(to_listener_config(config)),
      config_(std::move(config)),
      registry_(std::move(replicas), config_.registry),
      balancer_(config_.policy, config_.balancer_seed),
      budget_(config_.retry_budget),
      metrics_(registry_.size()) {
  registry_.start_probing();
}

Gateway::~Gateway() {
  shutdown();
  join();
  registry_.stop_probing();
}

Response Gateway::handle_request(const Request& req,
                                 const std::string& request_id) {
  if (req.path == "/metrics") return handle_metrics(req);
  if (req.path == "/gateway/healthz") return handle_gateway_healthz();
  if (req.path == "/gateway/replicas") return handle_gateway_replicas();
  return proxy(req, request_id);
}

Response Gateway::handle_metrics(const Request& req) {
  if (req.method != "GET" && req.method != "HEAD") {
    Response resp = serve::error_response(405, "use GET");
    resp.extra_headers.emplace_back("Allow", "GET, HEAD");
    return resp;
  }
  Response resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = metrics_.prometheus_text(registry_);
  return resp;
}

Response Gateway::handle_gateway_healthz() {
  const std::size_t healthy = registry_.healthy_count();
  Response resp;
  resp.body = std::string("{\"status\":\"") +
              (healthy > 0 ? "ok" : "unavailable") +
              "\",\"healthy\":" + std::to_string(healthy) +
              ",\"replicas\":" + std::to_string(registry_.size()) +
              ",\"draining\":" + (draining() ? "true" : "false") + "}\n";
  if (healthy == 0) {
    resp.status = 503;
    resp.extra_headers.emplace_back("Retry-After", "1");
  }
  return resp;
}

Response Gateway::handle_gateway_replicas() {
  const std::int64_t now_ms = steady_now_ms();
  std::string body = "{\"replicas\":[";
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    const Replica& r = registry_.at(i);
    const char* breaker = "closed";
    switch (r.breaker.state(now_ms)) {
      case CircuitBreaker::State::Closed:
        breaker = "closed";
        break;
      case CircuitBreaker::State::Open:
        breaker = "open";
        break;
      case CircuitBreaker::State::HalfOpen:
        breaker = "half-open";
        break;
    }
    if (i != 0) body += ',';
    body += "{\"host\":\"" + r.endpoint.host +
            "\",\"port\":" + std::to_string(r.endpoint.port) +
            ",\"pid\":" +
            std::to_string(r.pid.load(std::memory_order_relaxed)) +
            ",\"health\":\"" +
            to_string(r.health.load(std::memory_order_relaxed)) +
            "\",\"breaker\":\"" + breaker + "\",\"in_flight\":" +
            std::to_string(r.in_flight.load(std::memory_order_relaxed)) +
            ",\"reported_in_flight\":" +
            std::to_string(
                r.reported_in_flight.load(std::memory_order_relaxed)) +
            "}";
  }
  body += "]}\n";
  Response resp;
  resp.body = std::move(body);
  return resp;
}

std::string Gateway::upstream_wire(const Request& req,
                                   const std::string& request_id) {
  std::string wire;
  wire.reserve(256 + req.body.size());
  wire += req.method;
  wire += ' ';
  wire += req.target;
  wire += " HTTP/1.1\r\n";
  bool have_host = false;
  for (const auto& [name, value] : req.headers) {
    if (hop_by_hop(name) || name == "content-length" ||
        name == "x-request-id") {
      continue;
    }
    if (name == "host") have_host = true;
    wire += name;
    wire += ": ";
    wire += value;
    wire += "\r\n";
  }
  if (!have_host) wire += "host: gateway\r\n";
  if (!req.body.empty() || req.method == "POST" || req.method == "PUT") {
    wire += "content-length: " + std::to_string(req.body.size()) + "\r\n";
  }
  wire += "x-request-id: " + request_id + "\r\n";
  wire += "connection: keep-alive\r\n\r\n";
  wire += req.body;
  return wire;
}

Response Gateway::translate_response(ResponseParser& parser) {
  Response resp;
  resp.status = parser.status_code();
  if (const std::string* ct = parser.header("content-type")) {
    resp.content_type = *ct;
  }
  if (const std::string* etag = parser.header("etag")) resp.etag = *etag;
  if (const std::string* ra = parser.header("retry-after")) {
    resp.extra_headers.emplace_back("Retry-After", *ra);
  }
  if (const std::string* allow = parser.header("allow")) {
    resp.extra_headers.emplace_back("Allow", *allow);
  }
  resp.body = parser.take_body();
  return resp;
}

std::optional<std::size_t> Gateway::pick_replica(
    const std::vector<std::size_t>& excluded, std::int64_t now_ms) {
  std::vector<std::size_t> healthy;
  registry_.eligible(healthy);
  std::vector<std::size_t> closed;
  closed.reserve(healthy.size());
  for (const std::size_t i : healthy) {
    if (std::find(excluded.begin(), excluded.end(), i) != excluded.end()) {
      continue;
    }
    Replica& r = registry_.at(i);
    switch (r.breaker.state(now_ms)) {
      case CircuitBreaker::State::Closed:
        closed.push_back(i);
        break;
      case CircuitBreaker::State::HalfOpen:
        // Offer the single half-open trial to real traffic first.
        if (r.breaker.allow(now_ms)) return i;
        break;
      case CircuitBreaker::State::Open:
        break;
    }
  }
  static const std::vector<std::size_t> kNone;
  return balancer_.pick(registry_, closed, kNone);
}

bool Gateway::open_stream(Stream& s, std::size_t idx,
                          const std::string& wire, bool head) {
  Replica& r = registry_.at(idx);
  for (int attempt = 0; attempt < 2; ++attempt) {
    int fd = -1;
    bool pooled = false;
    if (attempt == 0) {
      fd = r.pool.acquire();
      pooled = fd >= 0;
    }
    if (fd < 0) {
      fd = connect_with_timeout(r.endpoint.host, r.endpoint.port,
                                config_.connect_timeout_ms);
      if (fd < 0) return false;
    }
    if (!send_wire(fd, wire)) {
      ::close(fd);
      if (pooled) continue;  // stale pooled socket: dial fresh once
      return false;
    }
    s.idx = idx;
    s.fd = fd;
    s.from_pool = pooled;
    s.replayed = false;
    s.active = true;
    s.start_ms = steady_now_ms();
    s.parser = ResponseParser(head);
    r.in_flight.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Gateway::stream_failed(Stream& s, const std::string& wire, bool head,
                            std::vector<std::size_t>& excluded) {
  ::close(s.fd);
  s.fd = -1;
  if (s.from_pool && !s.parser.saw_bytes() && !s.replayed) {
    // A pooled connection that died before yielding a byte most likely hit
    // the replica's idle-timeout race, not a sick replica: replay once on
    // a fresh dial, with no breaker penalty.
    const int fd =
        connect_with_timeout(registry_.at(s.idx).endpoint.host,
                             registry_.at(s.idx).endpoint.port,
                             config_.connect_timeout_ms);
    if (fd >= 0 && send_wire(fd, wire)) {
      s.fd = fd;
      s.from_pool = false;
      s.replayed = true;
      s.start_ms = steady_now_ms();
      s.parser = ResponseParser(head);
      return;
    }
    if (fd >= 0) ::close(fd);
  }
  s.active = false;
  Replica& r = registry_.at(s.idx);
  r.in_flight.fetch_sub(1, std::memory_order_relaxed);
  const std::int64_t now_ms = steady_now_ms();
  r.breaker.record_failure(now_ms);
  metrics_.record_upstream(
      s.idx, false,
      static_cast<std::uint64_t>((now_ms - s.start_ms) * 1000));
  if (std::find(excluded.begin(), excluded.end(), s.idx) == excluded.end()) {
    excluded.push_back(s.idx);
  }
}

void Gateway::abandon_stream(Stream& s) {
  if (!s.active) return;
  ::close(s.fd);  // mid-response: the connection cannot be pooled
  s.fd = -1;
  s.active = false;
  Replica& r = registry_.at(s.idx);
  r.in_flight.fetch_sub(1, std::memory_order_relaxed);
  r.breaker.record_abandoned();
}

Gateway::Exchange Gateway::run_exchange(std::size_t primary,
                                        const std::string& wire, bool head,
                                        bool allow_hedge,
                                        std::vector<std::size_t>& excluded) {
  Exchange out;
  Stream streams[2];
  if (!open_stream(streams[0], primary, wire, head)) {
    Replica& r = registry_.at(primary);
    r.breaker.record_failure(steady_now_ms());
    metrics_.record_upstream(primary, false, 0);
    if (std::find(excluded.begin(), excluded.end(), primary) ==
        excluded.end()) {
      excluded.push_back(primary);
    }
    return out;
  }
  const std::int64_t deadline =
      streams[0].start_ms + config_.upstream_timeout_ms;
  std::int64_t hedge_at =
      allow_hedge ? streams[0].start_ms + config_.hedge_after_ms : -1;

  for (;;) {
    pollfd pfds[2];
    std::size_t map[2];
    int n = 0;
    for (std::size_t i = 0; i < 2; ++i) {
      if (!streams[i].active) continue;
      pfds[n].fd = streams[i].fd;
      pfds[n].events = POLLIN;
      pfds[n].revents = 0;
      map[n] = i;
      ++n;
    }
    if (n == 0) return out;

    std::int64_t now = steady_now_ms();
    if (now >= deadline) {
      for (Stream& s : streams) {
        if (!s.active) continue;
        s.replayed = true;  // no fresh-dial replay on a deadline
        stream_failed(s, wire, head, excluded);
      }
      return out;
    }
    std::int64_t wait = deadline - now;
    if (hedge_at >= 0 && !streams[1].active) {
      wait = std::min(wait, std::max<std::int64_t>(hedge_at - now, 0));
    }
    const int pr = ::poll(pfds, static_cast<nfds_t>(n),
                          static_cast<int>(wait));
    if (pr < 0) {
      if (errno == EINTR) continue;
      for (Stream& s : streams) {
        if (s.active) stream_failed(s, wire, head, excluded);
      }
      return out;
    }
    now = steady_now_ms();
    if (hedge_at >= 0 && !streams[1].active && now >= hedge_at) {
      hedge_at = -1;
      std::vector<std::size_t> avoid = excluded;
      avoid.push_back(streams[0].idx);
      const std::optional<std::size_t> second = pick_replica(avoid, now);
      if (second) {
        if (!budget_.try_withdraw()) {
          metrics_.record_budget_exhausted();
          registry_.at(*second).breaker.record_abandoned();
        } else if (open_stream(streams[1], *second, wire, head)) {
          metrics_.record_hedge();
        } else {
          registry_.at(*second).breaker.record_failure(now);
          metrics_.record_upstream(*second, false, 0);
        }
      }
    }
    if (pr == 0) continue;

    for (int k = 0; k < n; ++k) {
      if (pfds[k].revents == 0) continue;
      Stream& s = streams[map[k]];
      if (!s.active) continue;
      char buf[16384];
      const ssize_t r = ::recv(s.fd, buf, sizeof buf, 0);
      if (r < 0 && errno == EINTR) continue;
      if (r <= 0) {
        stream_failed(s, wire, head, excluded);
        continue;
      }
      const ResponseParser::Status st =
          s.parser.feed(std::string_view(buf, static_cast<std::size_t>(r)));
      if (st == ResponseParser::Status::Error) {
        s.replayed = true;  // a garbled response is a real failure
        stream_failed(s, wire, head, excluded);
        continue;
      }
      if (st != ResponseParser::Status::Complete) continue;

      // Winner.
      const std::size_t winner = map[k];
      const std::int64_t done = steady_now_ms();
      Replica& rep = registry_.at(s.idx);
      rep.in_flight.fetch_sub(1, std::memory_order_relaxed);
      rep.breaker.record_success(done);
      metrics_.record_upstream(
          s.idx, true,
          static_cast<std::uint64_t>((done - s.start_ms) * 1000));
      if (s.parser.keep_alive()) {
        rep.pool.release(s.fd);
      } else {
        ::close(s.fd);
      }
      s.fd = -1;
      s.active = false;
      if (winner == 1) metrics_.record_hedge_win();
      abandon_stream(streams[winner == 0 ? 1 : 0]);
      out.ok = true;
      out.winner = s.idx;
      out.parser = std::move(s.parser);
      return out;
    }
  }
}

Response Gateway::proxy(const Request& req, const std::string& request_id) {
  budget_.on_request();
  const bool head = req.method == "HEAD";
  const bool idempotent = req.method == "GET" || head;
  const std::string wire = upstream_wire(req, request_id);
  const bool hedgeable = config_.hedge_after_ms > 0 &&
                         req.method == "GET" &&
                         req.path.rfind(config_.hedge_prefix, 0) == 0;

  std::vector<std::size_t> excluded;
  const int attempts = 1 + (idempotent ? config_.max_retries : 0);
  std::optional<Response> last_overload;
  bool attempted = false;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (!budget_.try_withdraw()) {
        metrics_.record_budget_exhausted();
        break;
      }
      metrics_.record_retry();
    }
    const std::optional<std::size_t> picked =
        pick_replica(excluded, steady_now_ms());
    if (!picked) break;
    attempted = true;
    Exchange out = run_exchange(*picked, wire, head,
                                hedgeable && attempt == 0, excluded);
    if (!out.ok) continue;  // transport failure: try another replica
    Response resp = translate_response(out.parser);
    if (resp.status == 503 && idempotent && attempt + 1 < attempts) {
      // Overloaded replica: keep its answer as a fallback, retry elsewhere.
      last_overload = std::move(resp);
      if (std::find(excluded.begin(), excluded.end(), out.winner) ==
          excluded.end()) {
        excluded.push_back(out.winner);
      }
      continue;
    }
    return resp;
  }
  if (last_overload) return *std::move(last_overload);
  if (!attempted) {
    Response resp = serve::error_response(503, "no healthy upstream");
    resp.extra_headers.emplace_back("Retry-After", "1");
    return resp;
  }
  return serve::error_response(502, "all upstream attempts failed");
}

}  // namespace mcmm::gateway
