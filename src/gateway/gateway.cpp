#include "gateway/gateway.hpp"

#include <unistd.h>

#include <algorithm>

namespace mcmm::gateway {
namespace {

/// Request headers that must not cross the proxy hop (RFC 9110 §7.6.1,
/// plus Connection-nominated ones serve never emits).
bool hop_by_hop(const std::string& name) noexcept {
  static constexpr const char* kNames[] = {
      "connection", "keep-alive",        "proxy-connection", "te",
      "trailer",    "transfer-encoding", "upgrade"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

}  // namespace

serve::ListenerConfig Gateway::to_listener_config(
    const GatewayConfig& config) {
  serve::ListenerConfig out;
  out.host = config.host;
  out.port = config.port;
  out.threads = config.threads;
  out.backlog = config.backlog;
  out.request_timeout_ms = config.request_timeout_ms;
  out.idle_timeout_ms = config.idle_timeout_ms;
  out.log_fd_limit = config.log_fd_limit;
  out.limits = config.limits;
  return out;
}

Gateway::Gateway(std::vector<ReplicaEndpoint> replicas, GatewayConfig config)
    : serve::HttpListener(to_listener_config(config)),
      config_(std::move(config)),
      registry_(std::move(replicas), config_.registry),
      balancer_(config_.policy, config_.balancer_seed),
      budget_(config_.retry_budget),
      metrics_(registry_.size()),
      upstream_(registry_.size()) {
  metrics_.client.attach_loop(&loop_counters());
  registry_.start_probing();
}

Gateway::~Gateway() {
  shutdown();
  join();  // the loop has exited: every ProxyTask is done, upstream_ is ours
  registry_.stop_probing();
  for (UpstreamConns& u : upstream_) {
    for (const int fd : u.idle) ::close(fd);
    u.idle.clear();
  }
}

Response Gateway::handle_request(const Request& req,
                                 const std::string& request_id) {
  if (req.path == "/metrics") return handle_metrics(req);
  if (req.path == "/gateway/healthz") return handle_gateway_healthz();
  if (req.path == "/gateway/replicas") return handle_gateway_replicas();
  // Proxied paths are owned by dispatch_async(); reaching here means the
  // async seam was bypassed, which has no upstream path to offer.
  (void)request_id;
  Response resp = serve::error_response(503, "proxy path is async-only");
  resp.extra_headers.emplace_back("Retry-After", "1");
  return resp;
}

bool Gateway::dispatch_async(const Request& req,
                             const std::string& request_id,
                             serve::ResponseToken token) {
  if (req.path == "/metrics" || req.path == "/gateway/healthz" ||
      req.path == "/gateway/replicas") {
    return false;  // local routes answer synchronously on the worker
  }
  budget_.on_request();
  const bool head = req.method == "HEAD";
  const bool idempotent = req.method == "GET" || head;
  bool hedge_path = false;
  for (const std::string& prefix : config_.hedge_prefixes) {
    if (req.path.rfind(prefix, 0) == 0) {
      hedge_path = true;
      break;
    }
  }
  const bool hedgeable =
      config_.hedge_after_ms > 0 && req.method == "GET" && hedge_path;
  auto* task = new ProxyTask(*this, token, upstream_wire(req, request_id),
                             head, idempotent, hedgeable);
  // All task state is loop-thread-only; hop there before touching it.
  loop().post([task] { task->start(); });
  return true;
}

void Gateway::resume_waiter(std::size_t i) {
  UpstreamConns& u = upstream_[i];
  while (!u.waiters.empty() &&
         (!u.idle.empty() ||
          u.open <
              static_cast<std::size_t>(config_.max_upstream_connections))) {
    ProxyLeg* leg = u.waiters.front();
    u.waiters.pop_front();
    leg->task->resume_leg(*leg);
  }
}

Response Gateway::handle_metrics(const Request& req) {
  if (req.method != "GET" && req.method != "HEAD") {
    Response resp = serve::error_response(405, "use GET");
    resp.extra_headers.emplace_back("Allow", "GET, HEAD");
    return resp;
  }
  Response resp;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = metrics_.prometheus_text(registry_);
  return resp;
}

Response Gateway::handle_gateway_healthz() {
  const std::size_t healthy = registry_.healthy_count();
  Response resp;
  resp.body = std::string("{\"status\":\"") +
              (healthy > 0 ? "ok" : "unavailable") +
              "\",\"healthy\":" + std::to_string(healthy) +
              ",\"replicas\":" + std::to_string(registry_.size()) +
              ",\"draining\":" + (draining() ? "true" : "false") + "}\n";
  if (healthy == 0) {
    resp.status = 503;
    resp.extra_headers.emplace_back("Retry-After", "1");
  }
  return resp;
}

Response Gateway::handle_gateway_replicas() {
  const std::int64_t now_ms = steady_now_ms();
  std::string body = "{\"replicas\":[";
  for (std::size_t i = 0; i < registry_.size(); ++i) {
    const Replica& r = registry_.at(i);
    const char* breaker = "closed";
    switch (r.breaker.state(now_ms)) {
      case CircuitBreaker::State::Closed:
        breaker = "closed";
        break;
      case CircuitBreaker::State::Open:
        breaker = "open";
        break;
      case CircuitBreaker::State::HalfOpen:
        breaker = "half-open";
        break;
    }
    if (i != 0) body += ',';
    body += "{\"host\":\"" + r.endpoint.host +
            "\",\"port\":" + std::to_string(r.endpoint.port) +
            ",\"pid\":" +
            std::to_string(r.pid.load(std::memory_order_relaxed)) +
            ",\"health\":\"" +
            to_string(r.health.load(std::memory_order_relaxed)) +
            "\",\"breaker\":\"" + breaker + "\",\"in_flight\":" +
            std::to_string(r.in_flight.load(std::memory_order_relaxed)) +
            ",\"reported_in_flight\":" +
            std::to_string(
                r.reported_in_flight.load(std::memory_order_relaxed)) +
            "}";
  }
  body += "]}\n";
  Response resp;
  resp.body = std::move(body);
  return resp;
}

std::string Gateway::upstream_wire(const Request& req,
                                   const std::string& request_id) {
  std::string wire;
  wire.reserve(256 + req.body.size());
  wire += req.method;
  wire += ' ';
  wire += req.target;
  wire += " HTTP/1.1\r\n";
  bool have_host = false;
  for (const auto& [name, value] : req.headers) {
    if (hop_by_hop(name) || name == "content-length" ||
        name == "x-request-id") {
      continue;
    }
    if (name == "host") have_host = true;
    wire += name;
    wire += ": ";
    wire += value;
    wire += "\r\n";
  }
  if (!have_host) wire += "host: gateway\r\n";
  if (!req.body.empty() || req.method == "POST" || req.method == "PUT") {
    wire += "content-length: " + std::to_string(req.body.size()) + "\r\n";
  }
  wire += "x-request-id: " + request_id + "\r\n";
  wire += "connection: keep-alive\r\n\r\n";
  wire += req.body;
  return wire;
}

Response Gateway::translate_response(ResponseParser& parser) {
  Response resp;
  resp.status = parser.status_code();
  if (const std::string* ct = parser.header("content-type")) {
    resp.content_type = *ct;
  }
  if (const std::string* etag = parser.header("etag")) resp.etag = *etag;
  if (const std::string* ra = parser.header("retry-after")) {
    resp.extra_headers.emplace_back("Retry-After", *ra);
  }
  if (const std::string* allow = parser.header("allow")) {
    resp.extra_headers.emplace_back("Allow", *allow);
  }
  resp.body = parser.take_body();
  return resp;
}

std::optional<std::size_t> Gateway::pick_replica(
    const std::vector<std::size_t>& excluded, std::int64_t now_ms) {
  std::vector<std::size_t> healthy;
  registry_.eligible(healthy);
  std::vector<std::size_t> closed;
  closed.reserve(healthy.size());
  for (const std::size_t i : healthy) {
    if (std::find(excluded.begin(), excluded.end(), i) != excluded.end()) {
      continue;
    }
    Replica& r = registry_.at(i);
    switch (r.breaker.state(now_ms)) {
      case CircuitBreaker::State::Closed:
        closed.push_back(i);
        break;
      case CircuitBreaker::State::HalfOpen:
        // Offer the single half-open trial to real traffic first.
        if (r.breaker.allow(now_ms)) return i;
        break;
      case CircuitBreaker::State::Open:
        break;
    }
  }
  static const std::vector<std::size_t> kNone;
  return balancer_.pick(registry_, closed, kNone);
}


}  // namespace mcmm::gateway
