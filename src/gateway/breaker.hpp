#pragma once
// Failure-isolation primitives for the mcmm gateway (DESIGN.md §3.3):
// a per-replica circuit breaker and a global retry budget. Both are pure
// state machines — time is injected as a steady-clock millisecond count —
// so tests/gateway/test_breaker.cpp drives every transition without
// sleeping or touching a socket.

#include <atomic>
#include <cstdint>
#include <mutex>

namespace mcmm::gateway {

/// Milliseconds on the steady clock (the time base every gateway state
/// machine uses; wall-clock jumps must not open or close breakers).
[[nodiscard]] std::int64_t steady_now_ms() noexcept;

struct BreakerConfig {
  int failure_threshold{5};   ///< consecutive transport failures -> Open
  int open_cooldown_ms{1000};  ///< Open -> HalfOpen after this long
};

/// Classic closed -> open -> half-open -> closed breaker over transport
/// failures to one replica. Open fails fast (no connect attempt burns a
/// worker); after the cooldown exactly one trial request is admitted —
/// its outcome closes or re-opens the breaker. Thread-safe; the critical
/// sections are a few loads/stores under an uncontended mutex.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed, Open, HalfOpen };

  explicit CircuitBreaker(BreakerConfig config = {}) : config_(config) {}

  /// The effective state at `now_ms` (an elapsed cooldown reads HalfOpen).
  [[nodiscard]] State state(std::int64_t now_ms) const;

  /// True when a request may be sent. In HalfOpen this *claims* the single
  /// trial slot — the caller must route the request and report the outcome
  /// via record_success/record_failure/record_abandoned.
  [[nodiscard]] bool allow(std::int64_t now_ms);

  void record_success(std::int64_t now_ms);
  void record_failure(std::int64_t now_ms);
  /// The request was started but never resolved against this replica
  /// (e.g. a hedge won elsewhere): releases a claimed trial slot.
  void record_abandoned();

 private:
  BreakerConfig config_;
  mutable std::mutex mu_;
  State state_{State::Closed};
  int consecutive_failures_{0};
  std::int64_t opened_at_ms_{0};
  bool trial_in_flight_{false};
};

struct RetryBudgetConfig {
  /// Retry tokens earned per proxied request: a sustained retry rate above
  /// this fraction of traffic is rejected instead of amplifying an outage.
  double ratio{0.1};
  /// Startup / burst allowance (whole tokens, also the bucket cap).
  std::uint32_t burst{10};
};

/// Global token bucket bounding retries + hedges across all replicas
/// (the Finagle "retry budget" shape). Lock-free: a CAS loop over a
/// milli-token counter.
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetConfig config = {});

  /// Deposit for one incoming proxied request.
  void on_request() noexcept;
  /// Withdraw one token for a retry or hedge; false when the budget is
  /// exhausted (the caller must fail over to the already-received answer
  /// or an error, not keep hammering the fleet).
  [[nodiscard]] bool try_withdraw() noexcept;
  /// Whole tokens currently available (for metrics and tests).
  [[nodiscard]] std::uint64_t balance() const noexcept;

 private:
  RetryBudgetConfig config_;
  std::int64_t cap_milli_;
  std::atomic<std::int64_t> milli_tokens_;
};

}  // namespace mcmm::gateway
