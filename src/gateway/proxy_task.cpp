#include "gateway/proxy_task.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "gateway/gateway.hpp"

namespace mcmm::gateway {

using Phase = ProxyLeg::Phase;

void ProxyLeg::on_io(std::uint32_t events) {
  if (task != nullptr) task->leg_io(*this, events);
}

ProxyTask::ProxyTask(Gateway& gw, serve::ResponseToken token,
                     std::string wire, bool head, bool idempotent,
                     bool hedgeable)
    : gw_(gw),
      token_(token),
      wire_(std::move(wire)),
      head_(head),
      idempotent_(idempotent),
      hedgeable_(hedgeable) {
  for (std::size_t i = 0; i < 2; ++i) {
    legs_[i].task = this;
    legs_[i].slot = i;
    legs_[i].connect_timer.on_fire = [this, i] {
      ProxyLeg& leg = legs_[i];
      if (!finished_ && leg.phase == Phase::Connecting) leg_failed(leg);
    };
  }
  deadline_timer_.on_fire = [this] { on_deadline(); };
  hedge_timer_.on_fire = [this] { on_hedge(); };
}

void ProxyTask::start() { begin_attempt(); }

void ProxyTask::begin_attempt() {
  serve::EventLoop& loop = gw_.proxy_loop();
  const std::optional<std::size_t> picked =
      gw_.pick_replica(excluded_, serve::EventLoop::steady_ms());
  if (!picked) {
    settle();
    return;
  }
  attempted_ = true;
  loop.wheel().arm(deadline_timer_, loop.now_ms(),
                   gw_.config_.upstream_timeout_ms);
  if (hedgeable_ && attempt_ == 0) {
    loop.wheel().arm(hedge_timer_, loop.now_ms(),
                     gw_.config_.hedge_after_ms);
  }
  open_leg(legs_[0], *picked);
}

void ProxyTask::open_leg(ProxyLeg& leg, std::size_t replica) {
  leg.idx = replica;
  leg.sent = 0;
  leg.from_pool = false;
  leg.replayed = false;
  leg.no_replay = false;
  leg.counted = false;
  leg.parser = ResponseParser(head_);
  leg.start_ms = serve::EventLoop::steady_ms();
  lease_or_dial(leg);
  if (!leg.active()) leg_unopenable(leg);
}

void ProxyTask::leg_unopenable(ProxyLeg& leg) {
  gw_.registry_.at(leg.idx).breaker.record_failure(
      serve::EventLoop::steady_ms());
  gw_.metrics_.record_upstream(leg.idx, false, 0);
  exclude(leg.idx);
  if (!teardown_ && !finished_ && !legs_[0].active() && !legs_[1].active()) {
    next_attempt();
  }
}

void ProxyTask::resume_leg(ProxyLeg& leg) {
  leg.phase = Phase::Idle;
  if (finished_) return;  // finish() unqueues its waiters; defensive only
  lease_or_dial(leg);
  if (!leg.active()) leg_unopenable(leg);
}

void ProxyTask::lease_or_dial(ProxyLeg& leg) {
  serve::EventLoop& loop = gw_.proxy_loop();
  Gateway::UpstreamConns& u = gw_.upstream_[leg.idx];
  while (!u.idle.empty()) {
    const int fd = u.idle.back();
    u.idle.pop_back();
    // An idle keep-alive socket must be quiet: readable (the replica's
    // idle-timeout FIN, or bytes out of turn) means stale.
    char probe = 0;
    const ssize_t r = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
    if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      leg.fd = fd;
      leg.from_pool = true;
      leg.phase = Phase::Sending;
      loop.add(fd, &leg, EPOLLOUT);
      leg_send(leg);
      return;
    }
    ::close(fd);
    --u.open;
  }
  if (u.open >=
      static_cast<std::size_t>(gw_.config_.max_upstream_connections)) {
    leg.phase = Phase::Waiting;
    u.waiters.push_back(&leg);
    return;
  }
  const Replica& r = gw_.registry_.at(leg.idx);
  bool in_progress = false;
  const int fd =
      dial_nonblocking(r.endpoint.host, r.endpoint.port, &in_progress);
  if (fd < 0) return;  // leg stays Idle; caller records the failure
  ++u.open;
  leg.fd = fd;
  if (in_progress) {
    leg.phase = Phase::Connecting;
    loop.add(fd, &leg, EPOLLOUT);
    loop.wheel().arm(leg.connect_timer, loop.now_ms(),
                     gw_.config_.connect_timeout_ms);
  } else {
    leg.phase = Phase::Sending;
    loop.add(fd, &leg, EPOLLOUT);
    leg_send(leg);
  }
}

void ProxyTask::leg_io(ProxyLeg& leg, std::uint32_t events) {
  if (finished_) return;
  switch (leg.phase) {
    case Phase::Connecting: {
      gw_.proxy_loop().wheel().cancel(leg.connect_timer);
      int err = 0;
      socklen_t len = sizeof err;
      if ((events & (EPOLLERR | EPOLLHUP)) != 0 ||
          ::getsockopt(leg.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        leg_failed(leg);
        return;
      }
      leg.phase = Phase::Sending;
      leg_send(leg);
      return;
    }
    case Phase::Sending:
      if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
        leg_failed(leg);
        return;
      }
      leg_send(leg);
      return;
    case Phase::Receiving:
      // recv() surfaces ERR/HUP/RDHUP as 0/-1 after draining any data.
      leg_recv(leg);
      return;
    case Phase::Idle:
    case Phase::Waiting:
      return;
  }
}

void ProxyTask::leg_send(ProxyLeg& leg) {
  while (leg.sent < wire_.size()) {
    const ssize_t n = ::send(leg.fd, wire_.data() + leg.sent,
                             wire_.size() - leg.sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Level-triggered EPOLLOUT is still armed; the loop resumes us.
        gw_.proxy_loop().counters().epollout_rearms_total.fetch_add(
            1, std::memory_order_relaxed);
        return;
      }
      leg_failed(leg);
      return;
    }
    leg.sent += static_cast<std::size_t>(n);
  }
  leg.phase = Phase::Receiving;
  gw_.registry_.at(leg.idx).in_flight.fetch_add(1,
                                                std::memory_order_relaxed);
  leg.counted = true;
  gw_.proxy_loop().mod(leg.fd, &leg, EPOLLIN | EPOLLRDHUP);
}

void ProxyTask::leg_recv(ProxyLeg& leg) {
  char buf[16384];
  for (;;) {
    const ssize_t r = ::recv(leg.fd, buf, sizeof buf, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      leg_failed(leg);
      return;
    }
    if (r == 0) {
      leg_failed(leg);
      return;
    }
    const ResponseParser::Status st =
        leg.parser.feed(std::string_view(buf, static_cast<std::size_t>(r)));
    if (st == ResponseParser::Status::Error) {
      leg.no_replay = true;  // a garbled response is a real failure
      leg_failed(leg);
      return;
    }
    if (st == ResponseParser::Status::Complete) {
      leg_won(leg);
      return;
    }
  }
}

void ProxyTask::unqueue(ProxyLeg& leg) {
  auto& w = gw_.upstream_[leg.idx].waiters;
  w.erase(std::remove(w.begin(), w.end(), &leg), w.end());
}

void ProxyTask::exclude(std::size_t replica) {
  if (std::find(excluded_.begin(), excluded_.end(), replica) ==
      excluded_.end()) {
    excluded_.push_back(replica);
  }
}

void ProxyTask::drop_socket(ProxyLeg& leg) {
  gw_.proxy_loop().wheel().cancel(leg.connect_timer);
  if (leg.phase == Phase::Waiting) unqueue(leg);
  if (leg.fd >= 0) {
    gw_.proxy_loop().del(leg.fd);
    ::close(leg.fd);
    leg.fd = -1;
    --gw_.upstream_[leg.idx].open;
    gw_.resume_waiter(leg.idx);
  }
}

void ProxyTask::leg_failed(ProxyLeg& leg) {
  const std::int64_t now = serve::EventLoop::steady_ms();
  const bool replay = leg.from_pool && !leg.parser.saw_bytes() &&
                      !leg.replayed && !leg.no_replay;
  if (std::getenv("MCMM_GW_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "leg_failed slot=%zu idx=%zu phase=%d errno=%d pooled=%d "
                 "saw=%d replayed=%d sent=%zu age=%lldms\n",
                 leg.slot, leg.idx, static_cast<int>(leg.phase), errno,
                 leg.from_pool ? 1 : 0, leg.parser.saw_bytes() ? 1 : 0,
                 leg.replayed ? 1 : 0, leg.sent,
                 static_cast<long long>(now - leg.start_ms));
  }
  drop_socket(leg);
  if (leg.counted) {
    gw_.registry_.at(leg.idx).in_flight.fetch_sub(1,
                                                  std::memory_order_relaxed);
    leg.counted = false;
  }
  if (replay) {
    // A pooled connection that died before yielding a byte most likely hit
    // the replica's idle-timeout race, not a sick replica: replay once on
    // a fresh connection, with no breaker penalty.
    leg.replayed = true;
    leg.from_pool = false;
    leg.sent = 0;
    leg.parser = ResponseParser(head_);
    leg.start_ms = now;
    leg.phase = Phase::Idle;
    lease_or_dial(leg);
    if (leg.active()) return;
  }
  Replica& r = gw_.registry_.at(leg.idx);
  r.breaker.record_failure(now);
  gw_.metrics_.record_upstream(
      leg.idx, false,
      static_cast<std::uint64_t>((now - leg.start_ms) * 1000));
  exclude(leg.idx);
  leg.phase = Phase::Idle;
  if (!teardown_ && !legs_[0].active() && !legs_[1].active()) {
    next_attempt();
  }
}

void ProxyTask::abandon_leg(ProxyLeg& leg) {
  if (!leg.active()) return;
  if (leg.phase == Phase::Waiting) {
    unqueue(leg);
  } else {
    drop_socket(leg);  // mid-exchange: the connection cannot be cached
  }
  if (leg.counted) {
    gw_.registry_.at(leg.idx).in_flight.fetch_sub(1,
                                                  std::memory_order_relaxed);
    leg.counted = false;
  }
  gw_.registry_.at(leg.idx).breaker.record_abandoned();
  leg.phase = Phase::Idle;
}

void ProxyTask::leg_won(ProxyLeg& leg) {
  const std::int64_t now = serve::EventLoop::steady_ms();
  serve::EventLoop& loop = gw_.proxy_loop();
  Replica& rep = gw_.registry_.at(leg.idx);
  if (leg.counted) {
    rep.in_flight.fetch_sub(1, std::memory_order_relaxed);
    leg.counted = false;
  }
  rep.breaker.record_success(now);
  gw_.metrics_.record_upstream(
      leg.idx, true,
      static_cast<std::uint64_t>((now - leg.start_ms) * 1000));

  Gateway::UpstreamConns& u = gw_.upstream_[leg.idx];
  loop.del(leg.fd);
  if (leg.parser.keep_alive() &&
      u.idle.size() <
          static_cast<std::size_t>(gw_.config_.max_upstream_idle)) {
    u.idle.push_back(leg.fd);  // still counts toward u.open
  } else {
    ::close(leg.fd);
    --u.open;
  }
  leg.fd = -1;
  leg.phase = Phase::Idle;
  gw_.resume_waiter(leg.idx);

  if (leg.slot == 1) gw_.metrics_.record_hedge_win();
  abandon_leg(legs_[leg.slot == 0 ? 1 : 0]);
  loop.wheel().cancel(deadline_timer_);
  loop.wheel().cancel(hedge_timer_);

  Response resp = gw_.translate_response(leg.parser);
  const int attempts = 1 + (idempotent_ ? gw_.config_.max_retries : 0);
  if (resp.status == 503 && idempotent_ && attempt_ + 1 < attempts) {
    // Overloaded replica: keep its answer as a fallback, retry elsewhere.
    last_overload_ = std::move(resp);
    exclude(leg.idx);
    next_attempt();
    return;
  }
  finish(std::move(resp));
}

void ProxyTask::next_attempt() {
  serve::TimerWheel& wheel = gw_.proxy_loop().wheel();
  wheel.cancel(deadline_timer_);
  wheel.cancel(hedge_timer_);
  ++attempt_;
  const int attempts = 1 + (idempotent_ ? gw_.config_.max_retries : 0);
  if (attempt_ >= attempts) {
    settle();
    return;
  }
  if (!gw_.budget_.try_withdraw()) {
    gw_.metrics_.record_budget_exhausted();
    settle();
    return;
  }
  gw_.metrics_.record_retry();
  begin_attempt();
}

void ProxyTask::on_deadline() {
  if (finished_) return;
  legs_[0].no_replay = true;  // no fresh-dial replay on a deadline
  legs_[1].no_replay = true;
  teardown_ = true;
  if (legs_[1].active()) leg_failed(legs_[1]);
  if (legs_[0].active()) leg_failed(legs_[0]);
  teardown_ = false;
  if (!finished_ && !legs_[0].active() && !legs_[1].active()) next_attempt();
}

void ProxyTask::on_hedge() {
  if (finished_ || attempt_ != 0 || legs_[1].active() ||
      !legs_[0].active()) {
    return;
  }
  std::vector<std::size_t> avoid = excluded_;
  avoid.push_back(legs_[0].idx);
  const std::optional<std::size_t> second =
      gw_.pick_replica(avoid, serve::EventLoop::steady_ms());
  if (!second) return;
  if (!gw_.budget_.try_withdraw()) {
    gw_.metrics_.record_budget_exhausted();
    gw_.registry_.at(*second).breaker.record_abandoned();
    return;
  }
  gw_.metrics_.record_hedge();
  open_leg(legs_[1], *second);
}

void ProxyTask::settle() {
  if (last_overload_) {
    finish(std::move(*last_overload_));
    return;
  }
  if (!attempted_) {
    Response resp = serve::error_response(503, "no healthy upstream");
    resp.extra_headers.emplace_back("Retry-After", "1");
    finish(std::move(resp));
    return;
  }
  finish(serve::error_response(502, "all upstream attempts failed"));
}

void ProxyTask::finish(serve::Response resp) {
  finished_ = true;
  serve::EventLoop& loop = gw_.proxy_loop();
  loop.wheel().cancel(deadline_timer_);
  loop.wheel().cancel(hedge_timer_);
  abandon_leg(legs_[0]);
  abandon_leg(legs_[1]);
  gw_.proxy_complete(token_, std::move(resp));
  // Deferred delete: events already harvested in this epoll batch may
  // still reference a leg; the posted op runs after the batch drains.
  loop.post([this] { delete this; });
}

}  // namespace mcmm::gateway
