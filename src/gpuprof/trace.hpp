#pragma once
// The gpuprof timeline data model: one TraceEvent per queue operation,
// carrying both the simulated span (from the analytic cost model) and the
// host wall-time span (from the fork-join engine), plus everything needed
// to derive roofline counters offline — declared traffic, work-item count,
// and the owning device's peak numbers captured at trace time.

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace mcmm::gpuprof {

/// What kind of queue operation an event records.
enum class OpKind : std::uint8_t {
  Kernel,
  MemcpyH2D,
  MemcpyD2H,
  MemcpyD2D,
  MemcpyP2P,    ///< peer-to-peer copy over the inter-device link
  Memset,
  EventRecord,  ///< Queue::record() marker (zero duration)
  Sync,         ///< Queue::synchronize() marker (zero duration)
  GraphReplay,  ///< one ExecutableGraph replay (whole-graph span)
};

[[nodiscard]] std::string_view to_string(OpKind k) noexcept;

/// One completed queue operation on the timeline.
struct TraceEvent {
  std::uint64_t id{0};        ///< correlation id, unique within a trace
  OpKind kind{OpKind::Kernel};
  Vendor vendor{Vendor::NVIDIA};
  std::string device;         ///< simulated device name
  std::uint32_t queue_id{0};  ///< per-queue timeline (chrome tid)
  std::string name;           ///< kernel label / op mnemonic
  std::string model;          ///< backend-profile label (the model route)
  std::string launch;         ///< "grid=(..) block=(..) schedule=.." (kernels)
  std::uint64_t items{0};     ///< work items (kernels only)
  double bytes_read{0};       ///< declared / transferred traffic
  double bytes_written{0};
  double flops{0};
  double sim_begin_us{0};     ///< simulated span (analytic cost model)
  double sim_end_us{0};
  double host_begin_us{0};    ///< host wall-time span, relative to enable()
  double host_end_us{0};
  /// Roofline reference of the owning device at trace time.
  double peak_gbps{0};            ///< nominal DRAM bandwidth
  double launch_latency_us{0};    ///< per-launch latency incl. route extra

  [[nodiscard]] double total_bytes() const noexcept {
    return bytes_read + bytes_written;
  }
  [[nodiscard]] double sim_duration_us() const noexcept {
    return sim_end_us - sim_begin_us;
  }
  [[nodiscard]] double host_duration_us() const noexcept {
    return host_end_us - host_begin_us;
  }
};

/// Aggregated per-kernel counters: one row per (device, name, model).
struct KernelSummary {
  Vendor vendor{Vendor::NVIDIA};
  std::string device;
  std::string name;
  std::string model;
  std::uint64_t launches{0};
  std::uint64_t items{0};        ///< total work items across launches
  double bytes{0};               ///< total declared traffic
  double sim_us{0};              ///< total simulated time
  double host_us{0};             ///< total host wall time
  double achieved_gbps{0};       ///< bytes / simulated time
  double pct_of_peak{0};         ///< achieved vs the device's nominal peak
  double launch_overhead_pct{0}; ///< launch latency share of simulated time
};

/// A snapshot of the recorded timeline plus bookkeeping counters.
struct Trace {
  std::vector<TraceEvent> events;
  std::uint64_t dropped{0};     ///< ops beyond the event cap
  std::uint64_t incomplete{0};  ///< begun ops with no end at snapshot time
  /// Pre-aggregated per-kernel rows contributed by graph replays: a replay
  /// produces one GraphReplay timeline event plus bulk per-node attribution
  /// folded here (no per-node timeline events — that per-node traffic is
  /// the overhead replay removes). Rows carry *raw sums* in the same
  /// interim convention kernel_summaries() uses while accumulating
  /// (pct_of_peak holds the device peak, launch_overhead_pct the latency
  /// sum); kernel_summaries() merges and finalizes them.
  std::vector<KernelSummary> folded;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// Per-kernel roofline attribution, grouped by (device, name, model),
  /// kernels and memsets only (copies have no kernel roofline). Includes
  /// the folded graph-replay contributions.
  [[nodiscard]] std::vector<KernelSummary> kernel_summaries() const;

  /// chrome://tracing JSON ("X" complete events on the simulated
  /// timeline, pid = vendor, tid = queue, metadata names attached).
  [[nodiscard]] std::string chrome_json() const;

  /// CSV: one row per aggregated kernel summary.
  [[nodiscard]] std::string summary_csv() const;

  /// Human-readable report: vendor roofline reference + per-kernel table.
  [[nodiscard]] std::string text_report() const;

  /// Machine-readable aggregate (schema mcmm-gpuprof-v1) for the
  /// `mcmm profile` wrapper and CI.
  [[nodiscard]] std::string summary_json() const;
};

}  // namespace mcmm::gpuprof
