#include "gpuprof/gpuprof.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <tuple>
#include <unordered_map>

#include "gpusim/device.hpp"
#include "gpusim/profiler.hpp"
#include "gpusim/queue.hpp"

namespace mcmm::gpuprof {
namespace {

using Clock = std::chrono::steady_clock;

/// Singleton tracer state. Leaked deliberately: hooks and the at-exit
/// writer may run during static destruction, after a normal static's
/// lifetime would have ended.
struct State {
  std::mutex mu;
  Config cfg;
  bool enabled{false};
  Clock::time_point t0{};
  std::uint64_t next_id{1};
  std::uint32_t next_queue_id{1};
  std::unordered_map<const void*, std::uint32_t> queue_ids;
  std::map<std::uint64_t, TraceEvent> open;  ///< begun, end not yet seen
  std::vector<TraceEvent> events;
  std::uint64_t dropped{0};
  /// Graph-replay per-node attribution, folded in bulk at replay end.
  /// Raw-sum convention of Trace::folded (peak parked in pct_of_peak,
  /// latency sum in launch_overhead_pct).
  std::map<std::tuple<std::string, std::string, std::string>, KernelSummary>
      folded;
};

State& state() {
  static State* s = new State;
  return *s;
}

/// Host microseconds since the trace epoch (s.mu held).
[[nodiscard]] double host_now_us(const State& s) {
  return std::chrono::duration<double, std::micro>(Clock::now() - s.t0)
      .count();
}

/// The per-queue timeline id, assigned on first sight (s.mu held).
[[nodiscard]] std::uint32_t queue_id(State& s, const gpusim::Queue& q) {
  const auto [it, inserted] = s.queue_ids.emplace(&q, s.next_queue_id);
  if (inserted) ++s.next_queue_id;
  return it->second;
}

[[nodiscard]] std::string dim3_str(const gpusim::Dim3& d) {
  return "(" + std::to_string(d.x) + "," + std::to_string(d.y) + "," +
         std::to_string(d.z) + ")";
}

/// Opens a new event with everything known at begin time: identity,
/// device roofline reference, model tag, host begin timestamp (s.mu
/// held). Returns 0 when the timeline is full.
[[nodiscard]] std::uint64_t open_event(State& s, const gpusim::Queue& q,
                                       OpKind kind, std::string name) {
  if (s.events.size() + s.open.size() >= s.cfg.max_events) {
    ++s.dropped;
    return 0;
  }
  const gpusim::DeviceDescriptor& dev = q.device().descriptor();
  TraceEvent e;
  e.id = s.next_id++;
  e.kind = kind;
  e.vendor = dev.vendor;
  e.device = dev.name;
  e.queue_id = queue_id(s, q);
  e.name = std::move(name);
  e.model = q.backend_profile().label;
  e.peak_gbps = dev.mem_bandwidth_gbps;
  e.launch_latency_us = dev.kernel_launch_latency_us +
                        q.backend_profile().extra_launch_latency_us;
  e.host_begin_us = host_now_us(s);
  const std::uint64_t id = e.id;
  s.open.emplace(id, std::move(e));
  return id;
}

/// Completes an open event with its simulated span (s.mu held).
void close_event(State& s, std::uint64_t id, const gpusim::Event& sim) {
  const auto it = s.open.find(id);
  if (it == s.open.end()) return;  // dropped or reset in between
  TraceEvent e = std::move(it->second);
  s.open.erase(it);
  e.sim_begin_us = sim.sim_begin_us;
  e.sim_end_us = sim.sim_end_us;
  e.host_end_us = host_now_us(s);
  s.events.push_back(std::move(e));
}

/// Records a zero-duration marker (record/sync) directly (s.mu held).
void add_marker(State& s, const gpusim::Queue& q, OpKind kind,
                const char* name, double sim_us) {
  if (s.events.size() + s.open.size() >= s.cfg.max_events) {
    ++s.dropped;
    return;
  }
  const gpusim::DeviceDescriptor& dev = q.device().descriptor();
  TraceEvent e;
  e.id = s.next_id++;
  e.kind = kind;
  e.vendor = dev.vendor;
  e.device = dev.name;
  e.queue_id = queue_id(s, q);
  e.name = name;
  e.model = q.backend_profile().label;
  e.peak_gbps = dev.mem_bandwidth_gbps;
  e.sim_begin_us = sim_us;
  e.sim_end_us = sim_us;
  e.host_begin_us = host_now_us(s);
  e.host_end_us = e.host_begin_us;
  s.events.push_back(std::move(e));
}

// --- hook entry points (installed into gpusim) ---------------------------

std::uint64_t hook_launch_begin(void*, gpusim::Queue& queue,
                                const gpusim::LaunchConfig& cfg,
                                gpusim::Schedule schedule,
                                const gpusim::KernelCosts& costs,
                                const char* label) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return 0;
  const std::uint64_t id = open_event(
      s, queue, OpKind::Kernel, label != nullptr ? label : "kernel");
  if (id == 0) return 0;
  TraceEvent& e = s.open.at(id);
  e.launch = "grid=" + dim3_str(cfg.grid) + " block=" + dim3_str(cfg.block) +
             " schedule=" +
             (schedule == gpusim::Schedule::Static ? "static" : "dynamic");
  e.items = cfg.total_threads();
  e.bytes_read = costs.bytes_read;
  e.bytes_written = costs.bytes_written;
  e.flops = costs.flops;
  return id;
}

void hook_launch_end(void*, gpusim::Queue&, std::uint64_t id,
                     const gpusim::Event& sim) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  close_event(s, id, sim);
}

std::uint64_t hook_copy_begin(void*, gpusim::Queue& queue,
                              gpusim::CopyKind kind, std::size_t bytes) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return 0;
  OpKind op = OpKind::MemcpyH2D;
  if (kind == gpusim::CopyKind::DeviceToHost) op = OpKind::MemcpyD2H;
  if (kind == gpusim::CopyKind::DeviceToDevice) op = OpKind::MemcpyD2D;
  if (kind == gpusim::CopyKind::PeerToPeer) op = OpKind::MemcpyP2P;
  const std::uint64_t id =
      open_event(s, queue, op, std::string(to_string(op)));
  if (id == 0) return 0;
  TraceEvent& e = s.open.at(id);
  // Traffic as the cost model bills it: D2H reads device DRAM, H2D writes
  // it, D2D does both, P2P reads the source device (the event lives on the
  // source queue; the destination device's DRAM is not this account).
  if (op != OpKind::MemcpyH2D) e.bytes_read = static_cast<double>(bytes);
  if (op != OpKind::MemcpyD2H && op != OpKind::MemcpyP2P) {
    e.bytes_written = static_cast<double>(bytes);
  }
  return id;
}

void hook_copy_end(void*, gpusim::Queue&, std::uint64_t id,
                   const gpusim::Event& sim) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  close_event(s, id, sim);
}

std::uint64_t hook_fill_begin(void*, gpusim::Queue& queue,
                              std::size_t bytes) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return 0;
  const std::uint64_t id = open_event(s, queue, OpKind::Memset, "Memset");
  if (id == 0) return 0;
  s.open.at(id).bytes_written = static_cast<double>(bytes);
  return id;
}

void hook_fill_end(void*, gpusim::Queue&, std::uint64_t id,
                   const gpusim::Event& sim) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  close_event(s, id, sim);
}

void hook_event_record(void*, const gpusim::Queue& queue, double sim_us) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return;
  add_marker(s, queue, OpKind::EventRecord, "EventRecord", sim_us);
}

void hook_sync(void*, gpusim::Queue& queue, double sim_us) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return;
  add_marker(s, queue, OpKind::Sync, "Sync", sim_us);
}

std::uint64_t hook_graph_replay_begin(void*, gpusim::Queue& queue,
                                      std::size_t node_count) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  if (!s.enabled) return 0;
  const std::uint64_t id =
      open_event(s, queue, OpKind::GraphReplay, "GraphReplay");
  if (id == 0) return 0;
  s.open.at(id).items = node_count;  // nodes dispatched, not work items
  return id;
}

void hook_graph_replay_end(void*, gpusim::Queue& queue, std::uint64_t id,
                           const gpusim::Event& sim,
                           const gpusim::GraphNodeSample* nodes,
                           std::size_t count) {
  State& s = state();
  const std::lock_guard lock(s.mu);
  // Fold per-node attribution into the summary rows the way the eager path
  // would have accumulated per-launch events: same (device, name, model)
  // key, same traffic and simulated spans, so roofline numbers line up.
  // Host time is not attributed per node (the replay's host span lives on
  // the single GraphReplay event).
  const gpusim::DeviceDescriptor& dev = queue.device().descriptor();
  const double latency_us = dev.kernel_launch_latency_us +
                            queue.backend_profile().extra_launch_latency_us;
  const std::string& model = queue.backend_profile().label;
  for (std::size_t i = 0; i < count; ++i) {
    const gpusim::GraphNodeSample& n = nodes[i];
    const bool is_kernel = n.kind == gpusim::GraphNodeKind::Kernel;
    if (!is_kernel && n.kind != gpusim::GraphNodeKind::Memset) continue;
    const char* name =
        n.label != nullptr ? n.label : (is_kernel ? "kernel" : "Memset");
    KernelSummary& row = s.folded[{dev.name, name, model}];
    row.vendor = dev.vendor;
    row.device = dev.name;
    row.name = name;
    row.model = model;
    ++row.launches;
    row.items += n.items;
    row.bytes += n.bytes_read + n.bytes_written;
    row.sim_us += n.sim_end_us - n.sim_begin_us;
    row.pct_of_peak = dev.mem_bandwidth_gbps;  // temporarily holds peak
    row.launch_overhead_pct += latency_us;     // temporarily a sum
  }
  close_event(s, id, sim);
}

constexpr gpusim::ProfilerHooks kHooks{
    nullptr,
    &hook_launch_begin,
    &hook_launch_end,
    &hook_copy_begin,
    &hook_copy_end,
    &hook_fill_begin,
    &hook_fill_end,
    &hook_event_record,
    &hook_sync,
    &hook_graph_replay_begin,
    &hook_graph_replay_end,
};

/// Builds a trace snapshot (s.mu held).
[[nodiscard]] Trace make_snapshot(const State& s) {
  Trace t;
  t.events = s.events;
  t.dropped = s.dropped;
  t.incomplete = s.open.size();
  t.folded.reserve(s.folded.size());
  for (const auto& [key, row] : s.folded) t.folded.push_back(row);
  return t;
}

}  // namespace

void enable(const Config& config) {
  State& s = state();
  {
    const std::lock_guard lock(s.mu);
    s.cfg = config;
    if (!s.enabled) s.t0 = Clock::now();
    s.enabled = true;
  }
  gpusim::install_profiler_hooks(&kHooks);
}

void disable() {
  gpusim::install_profiler_hooks(nullptr);
  State& s = state();
  const std::lock_guard lock(s.mu);
  s.enabled = false;
}

bool enabled() noexcept {
  State& s = state();
  const std::lock_guard lock(s.mu);
  return s.enabled;
}

Config current_config() {
  State& s = state();
  const std::lock_guard lock(s.mu);
  return s.cfg;
}

Trace snapshot() {
  State& s = state();
  const std::lock_guard lock(s.mu);
  return make_snapshot(s);
}

Trace finalize() {
  gpusim::install_profiler_hooks(nullptr);
  State& s = state();
  const std::lock_guard lock(s.mu);
  s.enabled = false;
  return make_snapshot(s);
}

void reset() {
  State& s = state();
  const std::lock_guard lock(s.mu);
  s.events.clear();
  s.open.clear();
  s.folded.clear();
  s.queue_ids.clear();
  s.dropped = 0;
  s.next_id = 1;
  s.next_queue_id = 1;
  s.t0 = Clock::now();
}

Trace capture_trace(const std::function<void()>& work) {
  const bool was_enabled = enabled();
  const Config prior_cfg = current_config();
  reset();
  enable(prior_cfg);
  work();
  Trace trace = snapshot();
  if (!was_enabled) {
    disable();
    reset();
  }
  return trace;
}

std::vector<KernelSummary> capture_kernel_summaries(
    const std::function<void()>& work) {
  return capture_trace(work).kernel_summaries();
}

void init_from_env() {
  const char* spec = std::getenv("MCMM_GPUPROF");
  if (spec == nullptr || *spec == '\0' || std::string_view(spec) == "0") {
    return;
  }
  // Construct the Platform now so its static destructor is registered
  // before our at-exit writer: atexit runs LIFO, so the writer then runs
  // before the devices are torn down.
  (void)gpusim::Platform::instance();
  enable();
  std::atexit(+[] {
    const Trace trace = finalize();
    const auto write = [](const char* env, const std::string& content) {
      if (const char* path = std::getenv(env);
          path != nullptr && *path != '\0') {
        std::ofstream out(path);
        out << content;
      }
    };
    write("MCMM_GPUPROF_TRACE", trace.chrome_json());
    write("MCMM_GPUPROF_CSV", trace.summary_csv());
    write("MCMM_GPUPROF_REPORT", trace.summary_json());
    std::fputs(trace.text_report().c_str(), stderr);
  });
}

}  // namespace mcmm::gpuprof
