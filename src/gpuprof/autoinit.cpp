// Environment-driven gpuprof activation, as a standalone object file.
//
// Same pattern as gpusan's autoinit: a static initializer inside a static
// library member is only linked in when some symbol of that member is
// referenced, and a binary wrapped by `mcmm profile -- <command>` does not
// reference gpuprof at all. CMake injects this object directly into each
// wrappable target's link ($<TARGET_OBJECTS:mcmm_gpuprof_autoinit>, see
// mcmm_make_profilable), which unconditionally runs the initializer.

#include "gpuprof/gpuprof.hpp"

namespace {

const bool g_env_initialized = [] {
  mcmm::gpuprof::init_from_env();
  return true;
}();

}  // namespace
