#pragma once
// gpuprof: a CUPTI/rocprof-style tracing & profiling layer for the
// simulated GPU. Every vendor column of the paper's Figure 1 ships a
// profiler next to its compiler (Nsight/CUPTI, rocprof, VTune/unitrace);
// gpuprof is that tool for gpusim, so the per-kernel bandwidth attribution
// that performance-portability studies lean on (Reguly's SYCL evaluation,
// Fridman et al.'s OpenMP-offload study) is measurable on all three
// simulated vendors at once — against each DeviceDescriptor's roofline.
//
// It installs a ProfilerHooks table into gpusim (the seam mirrors the
// sanitizer's) and records a per-queue event timeline: kernel launches
// (grid/block/schedule, model tag, declared costs), memcpy/memset, event
// records, and syncs — each with its simulated span from the analytic
// cost model and its host wall-time span from the fork-join engine.
// Derived per-kernel counters (work items, bytes moved, achieved simulated
// GB/s, % of the vendor's peak bandwidth, launch-overhead share) export
// three ways: chrome://tracing JSON, CSV summary, and a text report.
//
// Enable programmatically (enable/finalize) or via the environment
// (MCMM_GPUPROF=1), which any binary linking the autoinit object honours —
// that is how `mcmm profile -- <binary>` wraps unmodified examples.
// Output paths, all written at exit by the env activation:
//   MCMM_GPUPROF_TRACE=<path>    chrome://tracing JSON
//   MCMM_GPUPROF_CSV=<path>      per-kernel CSV summary
//   MCMM_GPUPROF_REPORT=<path>   JSON aggregate (mcmm-gpuprof-v1)
//
// When no hooks are installed the gpusim launch hot path stays
// allocation-free and lock-free (one atomic load + branch per op, no
// clock reads) — verified by the A/B harness in micro_benchmarks.

#include <functional>

#include "gpuprof/trace.hpp"

namespace mcmm::gpuprof {

struct Config {
  /// Timeline cap; operations beyond it are counted as dropped.
  std::size_t max_events{1u << 20};
};

/// Installs the profiler hooks and starts a fresh host-time epoch.
/// Idempotent re-enable replaces the config but keeps recorded events
/// (use reset() to clear).
void enable(const Config& config = {});

/// Uninstalls the hooks; the recorded timeline is kept for snapshot().
void disable();

[[nodiscard]] bool enabled() noexcept;
[[nodiscard]] Config current_config();

/// Copy of the timeline recorded so far.
[[nodiscard]] Trace snapshot();

/// Uninstalls the hooks and returns the full timeline.
[[nodiscard]] Trace finalize();

/// Clears the timeline and counters (runs back to back).
void reset();

/// Scoped measurement: clears the timeline, enables tracing, runs `work`,
/// and returns the trace it produced, restoring the profiler's prior
/// enabled/disabled state afterwards. This is the measurement layer for
/// perf-portability campaigns (ROADMAP item 1): callers get achieved-
/// GB/s-vs-peak per kernel without re-instrumenting. Takes exclusive use
/// of the profiler — any timeline recorded before the call is discarded,
/// so do not interleave with an ambient MCMM_GPUPROF trace you intend to
/// keep.
[[nodiscard]] Trace capture_trace(const std::function<void()>& work);

/// Convenience over capture_trace: just the per-kernel roofline rows.
[[nodiscard]] std::vector<KernelSummary> capture_kernel_summaries(
    const std::function<void()>& work);

/// Reads MCMM_GPUPROF / MCMM_GPUPROF_{TRACE,CSV,REPORT} and, when set,
/// enables tracing and registers an at-exit writer. Called from a static
/// initializer in the autoinit object, so linking it makes a binary
/// wrappable by `mcmm profile -- <command>`.
void init_from_env();

}  // namespace mcmm::gpuprof
