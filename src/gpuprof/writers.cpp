// Trace exporters: chrome://tracing JSON, per-kernel CSV summary, the
// aggregated text report, and the machine-readable JSON aggregate the
// `mcmm profile` wrapper consumes. All string output is escaped here —
// kernel labels are caller-controlled and may contain quotes, backslashes,
// control characters, or arbitrary UTF-8 (the trace-validation tests fuzz
// exactly that).

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "gpuprof/trace.hpp"
#include "gpusim/descriptor.hpp"

namespace mcmm::gpuprof {
namespace {

/// JSON string escaping. UTF-8 multi-byte sequences pass through verbatim
/// (JSON strings are UTF-8); everything below 0x20 plus quote/backslash is
/// escaped.
void json_escape(std::string& out, std::string_view in) {
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

[[nodiscard]] std::string json_str(std::string_view in) {
  std::string out = "\"";
  json_escape(out, in);
  out += "\"";
  return out;
}

/// Numbers in JSON must be finite and locale-independent.
[[nodiscard]] std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

/// RFC-4180 CSV field: quoted when it contains a separator, quote, or
/// newline; embedded quotes doubled.
[[nodiscard]] std::string csv_field(std::string_view in) {
  if (in.find_first_of(",\"\n\r") == std::string_view::npos) {
    return std::string(in);
  }
  std::string out = "\"";
  for (const char c : in) {
    if (c == '"') out += '"';
    out += c;
  }
  out += "\"";
  return out;
}

[[nodiscard]] const char* chrome_category(OpKind k) noexcept {
  switch (k) {
    case OpKind::Kernel:
      return "kernel";
    case OpKind::MemcpyH2D:
    case OpKind::MemcpyD2H:
    case OpKind::MemcpyD2D:
    case OpKind::MemcpyP2P:
      return "memcpy";
    case OpKind::Memset:
      return "memset";
    case OpKind::GraphReplay:
      return "graph";
    case OpKind::EventRecord:
    case OpKind::Sync:
      break;
  }
  return "marker";
}

}  // namespace

std::string_view to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::Kernel:
      return "Kernel";
    case OpKind::MemcpyH2D:
      return "MemcpyH2D";
    case OpKind::MemcpyD2H:
      return "MemcpyD2H";
    case OpKind::MemcpyD2D:
      return "MemcpyD2D";
    case OpKind::MemcpyP2P:
      return "MemcpyP2P";
    case OpKind::Memset:
      return "Memset";
    case OpKind::EventRecord:
      return "EventRecord";
    case OpKind::Sync:
      return "Sync";
    case OpKind::GraphReplay:
      return "GraphReplay";
  }
  return "?";
}

std::vector<KernelSummary> Trace::kernel_summaries() const {
  // Keyed by (device, kernel name, model route) — the attribution grain a
  // roofline study needs. Ordered map for deterministic row order.
  std::map<std::tuple<std::string, std::string, std::string>, KernelSummary>
      rows;
  // Graph replays arrive pre-aggregated (see Trace::folded): merge their
  // raw sums first, then fold the timeline events on top.
  for (const KernelSummary& f : folded) {
    KernelSummary& row = rows[{f.device, f.name, f.model}];
    row.vendor = f.vendor;
    row.device = f.device;
    row.name = f.name;
    row.model = f.model;
    row.launches += f.launches;
    row.items += f.items;
    row.bytes += f.bytes;
    row.sim_us += f.sim_us;
    row.host_us += f.host_us;
    row.pct_of_peak = f.pct_of_peak;              // temporarily holds peak
    row.launch_overhead_pct += f.launch_overhead_pct;  // temporarily a sum
  }
  for (const TraceEvent& e : events) {
    if (e.kind != OpKind::Kernel && e.kind != OpKind::Memset) continue;
    KernelSummary& row = rows[{e.device, e.name, e.model}];
    row.vendor = e.vendor;
    row.device = e.device;
    row.name = e.name;
    row.model = e.model;
    ++row.launches;
    row.items += e.items;
    row.bytes += e.total_bytes();
    row.sim_us += e.sim_duration_us();
    row.host_us += e.host_duration_us();
    // Peak is a device constant; folding the latest event keeps the row
    // correct even if a device was reset with a new descriptor mid-trace.
    row.pct_of_peak = e.peak_gbps;  // temporarily holds peak, fixed below
    row.launch_overhead_pct += e.launch_latency_us;  // temporarily a sum
  }
  std::vector<KernelSummary> out;
  out.reserve(rows.size());
  for (auto& [key, row] : rows) {
    const double peak = row.pct_of_peak;
    const double latency_sum = row.launch_overhead_pct;
    row.achieved_gbps =
        row.sim_us > 0 ? row.bytes / (row.sim_us * 1e3) : 0.0;
    row.pct_of_peak = peak > 0 ? 100.0 * row.achieved_gbps / peak : 0.0;
    row.launch_overhead_pct =
        row.sim_us > 0 ? 100.0 * latency_sum / row.sim_us : 0.0;
    out.push_back(std::move(row));
  }
  return out;
}

std::string Trace::chrome_json() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ",";
    first = false;
    out += "\n";
    out += event;
  };

  // Metadata: name the per-vendor processes and per-queue threads once.
  std::set<int> pids;
  std::set<std::pair<int, std::uint32_t>> tids;
  for (const TraceEvent& e : events) {
    const int pid = static_cast<int>(e.vendor);
    if (pids.insert(pid).second) {
      emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":" +
           json_str(std::string(to_string(e.vendor)) + " \xc2\xb7 " +
                    e.device) +
           "}}");
    }
    if (tids.emplace(pid, e.queue_id).second) {
      emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) + ",\"tid\":" +
           std::to_string(e.queue_id) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           json_str("queue " + std::to_string(e.queue_id)) + "}}");
    }
  }

  for (const TraceEvent& e : events) {
    const int pid = static_cast<int>(e.vendor);
    std::string ev;
    const bool instant =
        e.kind == OpKind::EventRecord || e.kind == OpKind::Sync;
    ev += instant ? "{\"ph\":\"i\",\"s\":\"t\"" : "{\"ph\":\"X\"";
    ev += ",\"pid\":" + std::to_string(pid);
    ev += ",\"tid\":" + std::to_string(e.queue_id);
    ev += ",\"ts\":" + json_num(e.sim_begin_us);
    if (!instant) ev += ",\"dur\":" + json_num(e.sim_duration_us());
    ev += ",\"cat\":\"";
    ev += chrome_category(e.kind);
    ev += "\",\"name\":" + json_str(e.name);
    ev += ",\"args\":{";
    ev += "\"op\":" + json_str(to_string(e.kind));
    ev += ",\"model\":" + json_str(e.model);
    if (!e.launch.empty()) ev += ",\"launch\":" + json_str(e.launch);
    if (e.items != 0) ev += ",\"items\":" + std::to_string(e.items);
    if (e.total_bytes() > 0) {
      ev += ",\"bytes\":" + json_num(e.total_bytes());
      if (e.sim_duration_us() > 0) {
        ev += ",\"achieved_gbps\":" +
              json_num(e.total_bytes() / (e.sim_duration_us() * 1e3));
      }
    }
    if (e.flops > 0) ev += ",\"flops\":" + json_num(e.flops);
    ev += ",\"host_duration_us\":" + json_num(e.host_duration_us());
    ev += "}}";
    emit(ev);
  }
  out += first ? "]" : "\n]";
  out += ",\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":"
         "\"simulated_us\",\"dropped\":" +
         std::to_string(dropped) + "}}\n";
  return out;
}

std::string Trace::summary_csv() const {
  std::string out =
      "vendor,device,kernel,model,launches,items,bytes,sim_us,host_us,"
      "achieved_gbps,pct_of_peak,launch_overhead_pct\n";
  for (const KernelSummary& r : kernel_summaries()) {
    out += csv_field(to_string(r.vendor));
    out += ',';
    out += csv_field(r.device);
    out += ',';
    out += csv_field(r.name);
    out += ',';
    out += csv_field(r.model);
    out += ',';
    out += std::to_string(r.launches);
    out += ',';
    out += std::to_string(r.items);
    out += ',';
    out += json_num(r.bytes);
    out += ',';
    out += json_num(r.sim_us);
    out += ',';
    out += json_num(r.host_us);
    out += ',';
    out += json_num(r.achieved_gbps);
    out += ',';
    out += json_num(r.pct_of_peak);
    out += ',';
    out += json_num(r.launch_overhead_pct);
    out += '\n';
  }
  return out;
}

std::string Trace::text_report() const {
  std::ostringstream out;
  out << "========= gpuprof =========\n";
  out << events.size() << " event(s) recorded";
  if (dropped != 0) out << " (" << dropped << " dropped at the cap)";
  if (incomplete != 0) out << ", " << incomplete << " still open";
  out << "\n\n";

  out << "device roofline reference (nominal DRAM bandwidth):\n";
  for (const Vendor v : {Vendor::AMD, Vendor::Intel, Vendor::NVIDIA}) {
    const gpusim::DeviceDescriptor d = gpusim::descriptor_for(v);
    out << "  " << std::left << std::setw(8) << to_string(v) << std::setw(34)
        << d.name << std::right << std::fixed << std::setprecision(0)
        << std::setw(6) << d.mem_bandwidth_gbps << " GB/s\n";
  }
  out << "\n";

  const std::vector<KernelSummary> rows = kernel_summaries();
  if (rows.empty()) {
    out << "no kernel launches recorded\n";
    return std::move(out).str();
  }
  out << "per-kernel attribution (simulated time):\n";
  out << std::left << std::setw(8) << "Vendor" << std::setw(22) << "Kernel"
      << std::setw(22) << "Model" << std::right << std::setw(9) << "Launches"
      << std::setw(12) << "Items" << std::setw(12) << "MiB" << std::setw(12)
      << "Sim us" << std::setw(10) << "GB/s" << std::setw(8) << "%peak"
      << std::setw(9) << "launch%" << "\n";
  out << std::string(124, '-') << "\n";
  for (const KernelSummary& r : rows) {
    // Control characters in adversarial labels would corrupt the table.
    std::string name = r.name.substr(0, 21);
    std::replace_if(
        name.begin(), name.end(),
        [](char c) { return static_cast<unsigned char>(c) < 0x20; }, '?');
    out << std::left << std::setw(8) << to_string(r.vendor) << std::setw(22)
        << name << std::setw(22) << r.model.substr(0, 21) << std::right
        << std::setw(9) << r.launches << std::setw(12) << r.items
        << std::setw(12) << std::fixed << std::setprecision(2)
        << r.bytes / (1024.0 * 1024.0) << std::setw(12)
        << std::setprecision(2) << r.sim_us << std::setw(10)
        << std::setprecision(1) << r.achieved_gbps << std::setw(8)
        << std::setprecision(1) << r.pct_of_peak << std::setw(9)
        << std::setprecision(1) << r.launch_overhead_pct << "\n";
  }
  return std::move(out).str();
}

std::string Trace::summary_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"mcmm-gpuprof-v1\",\n";
  out += "  \"events\": " + std::to_string(events.size()) + ",\n";
  out += "  \"dropped\": " + std::to_string(dropped) + ",\n";
  out += "  \"incomplete\": " + std::to_string(incomplete) + ",\n";
  out += "  \"kernels\": [";
  bool first = true;
  for (const KernelSummary& r : kernel_summaries()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"vendor\": " + json_str(to_string(r.vendor));
    out += ", \"device\": " + json_str(r.device);
    out += ", \"kernel\": " + json_str(r.name);
    out += ", \"model\": " + json_str(r.model);
    out += ", \"launches\": " + std::to_string(r.launches);
    out += ", \"items\": " + std::to_string(r.items);
    out += ", \"bytes\": " + json_num(r.bytes);
    out += ", \"sim_us\": " + json_num(r.sim_us);
    out += ", \"host_us\": " + json_num(r.host_us);
    out += ", \"achieved_gbps\": " + json_num(r.achieved_gbps);
    out += ", \"pct_of_peak\": " + json_num(r.pct_of_peak);
    out += ", \"launch_overhead_pct\": " + json_num(r.launch_overhead_pct);
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace mcmm::gpuprof
