#pragma once
// validate: miniature validation & verification suites in the spirit of
// the ECP SOLLVE OpenMP V&V suite and the OpenACC V&V suite the paper
// cites ([8], [9], [50], [51]). Each suite runs a battery of
// feature-directed functional tests through the directive embeddings and
// produces the feature x compiler compliance matrix that the 2022 ECP
// Community BoF table (paper item 9's reference [7]) reports.

#include <string>
#include <vector>

#include "models/accx/accx.hpp"
#include "models/ompx/ompx.hpp"

namespace mcmm::validate {

enum class Verdict {
  Pass,         ///< feature claimed and functionally correct
  Fail,         ///< feature claimed but produced a wrong result
  Unsupported,  ///< compiler does not claim the feature (clean reject)
};

[[nodiscard]] std::string_view to_string(Verdict v) noexcept;

struct CaseResult {
  std::string name;        ///< e.g. "teams reduction correctness"
  ompx::Feature feature{}; ///< the OpenMP feature exercised
  Verdict verdict{};
  std::string detail;
};

/// Runs the OpenMP feature battery on (vendor, compiler). A combination
/// the compiler cannot target at all throws UnsupportedCombination — the
/// caller decides whether that is an error (the V&V suites simply do not
/// list such columns).
[[nodiscard]] std::vector<CaseResult> run_openmp_suite(
    Vendor vendor, ompx::Compiler compiler);

struct AccCaseResult {
  std::string name;
  Verdict verdict{};
  std::string detail;
};

/// Runs the OpenACC battery on (vendor, compiler).
[[nodiscard]] std::vector<AccCaseResult> run_openacc_suite(
    Vendor vendor, accx::Compiler compiler);

/// One row of the compliance matrix: compiler + per-feature verdicts.
struct ComplianceRow {
  ompx::Compiler compiler{};
  Vendor vendor{};
  int passed{};
  int failed{};
  int unsupported{};
};

/// The feature x compiler compliance matrix over every (compiler, vendor)
/// pairing that exists, formatted like the ECP BoF support table.
[[nodiscard]] std::string openmp_compliance_table();

/// Aggregated rows (used by tests).
[[nodiscard]] std::vector<ComplianceRow> openmp_compliance_rows();

}  // namespace mcmm::validate
