#include "validate/validate.hpp"

#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>

namespace mcmm::validate {
namespace {

using ompx::Compiler;
using ompx::Feature;
using ompx::TargetDevice;

/// Runs one feature case: `Unsupported` when the compiler does not claim
/// the feature, otherwise Pass/Fail from the functional check.
template <typename Check>
CaseResult run_case(TargetDevice& dev, std::string name, Feature feature,
                    Check&& check) {
  CaseResult result;
  result.name = std::move(name);
  result.feature = feature;
  if (!dev.has(feature)) {
    result.verdict = Verdict::Unsupported;
    result.detail = std::string(ompx::to_string(dev.compiler())) +
                    " implements only " +
                    ompx::compiler_info(dev.compiler()).version_claim;
    return result;
  }
  try {
    const bool ok = check(dev);
    result.verdict = ok ? Verdict::Pass : Verdict::Fail;
    if (!ok) result.detail = "functional check produced a wrong result";
  } catch (const std::exception& e) {
    result.verdict = Verdict::Fail;
    result.detail = e.what();
  }
  return result;
}

[[nodiscard]] bool check_target_offload(TargetDevice& dev) {
  constexpr std::size_t n = 512;
  std::vector<int> x(n, 0);
  {
    ompx::target_data data(dev);
    int* dx = data.map_tofrom(x.data(), n);
    ompx::target_teams_distribute_parallel_for(
        dev, n, gpusim::KernelCosts{},
        [dx](std::size_t i) { dx[i] = static_cast<int>(2 * i); });
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] != static_cast<int>(2 * i)) return false;
  }
  return true;
}

[[nodiscard]] bool check_teams_reduction(TargetDevice& dev) {
  constexpr std::size_t n = 4321;
  std::vector<double> x(n);
  std::iota(x.begin(), x.end(), 1.0);
  ompx::target_data data(dev);
  const double* dx = data.map_to(x.data(), n);
  const double sum = ompx::target_teams_reduce(
      dev, n, 0.0, gpusim::KernelCosts{},
      [dx](std::size_t i) { return dx[i]; });
  return std::fabs(sum - n * (n + 1) / 2.0) < 1e-9;
}

[[nodiscard]] bool check_collapse(TargetDevice& dev) {
  constexpr std::size_t rows = 31, cols = 17;
  std::vector<int> grid(rows * cols, 0);
  {
    ompx::target_data data(dev);
    int* dg = data.map_tofrom(grid.data(), rows * cols);
    ompx::target_teams_distribute_parallel_for_collapse2(
        dev, rows, cols, gpusim::KernelCosts{},
        [dg](std::size_t i, std::size_t j) { dg[i * cols + j] += 1; });
  }
  for (const int v : grid) {
    if (v != 1) return false;
  }
  return true;
}

[[nodiscard]] bool check_target_update(TargetDevice& dev) {
  std::vector<int> x(16, 1);
  ompx::target_data data(dev);
  int* dx = data.map_to(x.data(), 16);
  ompx::target_teams_distribute_parallel_for(
      dev, 16, gpusim::KernelCosts{}, [dx](std::size_t i) { dx[i] = 5; });
  data.update_from(x.data());
  for (const int v : x) {
    if (v != 5) return false;
  }
  x.assign(16, 9);
  data.update_to(x.data());
  const int sum = ompx::target_teams_reduce(
      dev, 16, 0, gpusim::KernelCosts{},
      [dx](std::size_t i) { return dx[i]; });
  return sum == 16 * 9;
}

/// Availability-level checks for features whose functional surface is not
/// modelled (the V&V suites also contain presence/compile-only tests).
[[nodiscard]] bool check_presence(TargetDevice& dev, Feature f) {
  dev.require(f);  // throws if absent, but run_case guards with has()
  return true;
}

}  // namespace

std::string_view to_string(Verdict v) noexcept {
  switch (v) {
    case Verdict::Pass:
      return "pass";
    case Verdict::Fail:
      return "FAIL";
    case Verdict::Unsupported:
      return "unsupported";
  }
  return "?";
}

std::vector<CaseResult> run_openmp_suite(Vendor vendor, Compiler compiler) {
  TargetDevice dev(vendor, compiler);
  std::vector<CaseResult> results;
  results.push_back(run_case(dev, "basic target offload",
                             Feature::TargetOffload, check_target_offload));
  results.push_back(run_case(dev, "teams reduction correctness",
                             Feature::TeamsReduction,
                             check_teams_reduction));
  results.push_back(
      run_case(dev, "collapse(2) iteration space", Feature::Collapse,
               check_collapse));
  results.push_back(run_case(dev, "target update to/from",
                             Feature::TargetUpdate, check_target_update));
  results.push_back(run_case(
      dev, "unified shared memory requirement",
      Feature::UnifiedSharedMemory, [](TargetDevice& d) {
        return check_presence(d, Feature::UnifiedSharedMemory);
      }));
  results.push_back(run_case(dev, "declare mapper", Feature::DeclareMapper,
                             [](TargetDevice& d) {
                               return check_presence(
                                   d, Feature::DeclareMapper);
                             }));
  results.push_back(run_case(dev, "loop directive", Feature::LoopDirective,
                             [](TargetDevice& d) {
                               return check_presence(
                                   d, Feature::LoopDirective);
                             }));
  results.push_back(run_case(
      dev, "metadirective", Feature::Metadirective, [](TargetDevice& d) {
        // Functional: the device variant must be chosen and must run.
        std::vector<int> x(32, 0);
        ompx::target_data data(d);
        int* dx = data.map_tofrom(x.data(), 32);
        const bool on_device = ompx::metadirective_target_or_host(
            d, 32, gpusim::KernelCosts{},
            [dx](std::size_t i) { dx[i] = 1; });
        data.update_from(x.data());
        return on_device &&
               std::all_of(x.begin(), x.end(),
                           [](int v) { return v == 1; });
      }));
  return results;
}

std::vector<AccCaseResult> run_openacc_suite(Vendor vendor,
                                             accx::Compiler compiler) {
  accx::Accelerator acc(vendor, compiler);
  std::vector<AccCaseResult> results;

  {
    AccCaseResult r;
    r.name = "parallel loop";
    constexpr std::size_t n = 256;
    std::vector<double> x(n, 1.0);
    {
      accx::data_region data(acc);
      double* dx = data.copy(x.data(), n);
      acc.parallel_loop(n, gpusim::KernelCosts{},
                        [dx](std::size_t i) { dx[i] += 1.0; });
    }
    r.verdict = std::all_of(x.begin(), x.end(),
                            [](double v) { return v == 2.0; })
                    ? Verdict::Pass
                    : Verdict::Fail;
    results.push_back(std::move(r));
  }
  {
    AccCaseResult r;
    r.name = "data clauses copyin/copyout";
    constexpr std::size_t n = 128;
    std::vector<double> in(n, 3.0), out(n, 0.0);
    {
      accx::data_region data(acc);
      const double* din = data.copyin(in.data(), n);
      double* dout = data.copyout(out.data(), n);
      acc.parallel_loop(n, gpusim::KernelCosts{},
                        [din, dout](std::size_t i) { dout[i] = 2 * din[i]; });
    }
    r.verdict = std::all_of(out.begin(), out.end(),
                            [](double v) { return v == 6.0; })
                    ? Verdict::Pass
                    : Verdict::Fail;
    results.push_back(std::move(r));
  }
  {
    AccCaseResult r;
    r.name = "reduction(+)";
    constexpr std::size_t n = 999;
    std::vector<double> x(n, 2.0);
    accx::data_region data(acc);
    const double* dx = data.copyin(x.data(), n);
    const double sum = acc.parallel_loop_reduce(
        n, 0.0, gpusim::KernelCosts{},
        [dx](std::size_t i) { return dx[i]; });
    r.verdict = std::fabs(sum - 2.0 * n) < 1e-9 ? Verdict::Pass
                                                : Verdict::Fail;
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<ComplianceRow> openmp_compliance_rows() {
  std::vector<ComplianceRow> rows;
  for (const Compiler c :
       {Compiler::NVHPC, Compiler::GCC, Compiler::Clang, Compiler::Cray,
        Compiler::AOMP, Compiler::ICPX}) {
    for (const Vendor v : kAllVendors) {
      if (!ompx::compiler_info(c).targets.contains(v)) continue;
      ComplianceRow row;
      row.compiler = c;
      row.vendor = v;
      for (const CaseResult& r : run_openmp_suite(v, c)) {
        switch (r.verdict) {
          case Verdict::Pass:
            ++row.passed;
            break;
          case Verdict::Fail:
            ++row.failed;
            break;
          case Verdict::Unsupported:
            ++row.unsupported;
            break;
        }
      }
      rows.push_back(row);
    }
  }
  return rows;
}

std::string openmp_compliance_table() {
  std::ostringstream out;
  // Feature columns in a stable order.
  const Feature features[] = {
      Feature::TargetOffload,  Feature::TeamsReduction,
      Feature::Collapse,       Feature::TargetUpdate,
      Feature::UnifiedSharedMemory, Feature::DeclareMapper,
      Feature::LoopDirective,  Feature::Metadirective,
  };
  out << std::left << std::setw(18) << "compiler/vendor";
  for (const Feature f : features) {
    std::string header(ompx::to_string(f));
    if (header.size() > 12) header = header.substr(0, 12);
    out << std::setw(14) << header;
  }
  out << "\n" << std::string(18 + 14 * std::size(features), '-') << "\n";

  for (const ompx::Compiler c :
       {Compiler::NVHPC, Compiler::GCC, Compiler::Clang, Compiler::Cray,
        Compiler::AOMP, Compiler::ICPX}) {
    for (const Vendor v : kAllVendors) {
      if (!ompx::compiler_info(c).targets.contains(v)) continue;
      const auto results = run_openmp_suite(v, c);
      out << std::left << std::setw(18)
          << (std::string(ompx::to_string(c)) + "/" +
              std::string(mcmm::to_string(v)));
      for (const Feature f : features) {
        std::string_view cell = "?";
        for (const CaseResult& r : results) {
          if (r.feature == f) cell = to_string(r.verdict);
        }
        out << std::setw(14) << cell;
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace mcmm::validate
