#pragma once
// pstlx host-side fallback: the same blocked/two-pass/merge-path cores
// as the device surface (src/pstlx/pstlx.hpp), executed directly on the
// process-wide fork-join engine with no simulated device, queue, or
// policy gate. This is what "the CPU fallback of a -stdpar compiler"
// looks like in the simulation, and it is what the repo dogfoods on its
// own hot host paths (loadgen's percentile sort, gpusan's shadow-log
// conflict scan).
//
// Depends only on gpusim (ThreadPool), never on the model layers, so
// mcmm_gpusan can use it without growing its dependency set.
//
// Determinism contract: identical results for identical inputs across
// MCMM_NUM_THREADS and Schedule settings — tile geometry is a function
// of n alone and tiles combine in index order (see detail.hpp).

#include <cstddef>
#include <functional>
#include <iterator>
#include <memory>
#include <vector>

#include "gpusim/thread_pool.hpp"
#include "pstlx/detail.hpp"

namespace mcmm::pstlx {

/// Execution knobs for the host fallback. Scheduling never changes
/// results, only how tiles are handed to workers. Inputs shorter than
/// `serial_cutoff` run the plain serial algorithm — below that, the
/// fork-join handoff costs more than it buys.
struct host_policy {
  gpusim::Schedule schedule{gpusim::Schedule::Dynamic};
  std::uint64_t grain{0};
  std::size_t serial_cutoff{2048};
};

namespace detail {

/// Task executor over the global fork-join pool: runs body(t) for every
/// task index, chunked per the policy's schedule.
template <typename Body>
void host_exec(const host_policy& pol, std::size_t tasks,
               const Body& body) {
  gpusim::ThreadPool::global().parallel_for_chunks(
      tasks,
      [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t t = begin; t < end; ++t) {
          body(static_cast<std::size_t>(t));
        }
      },
      pol.schedule, pol.grain);
}

template <typename It>
[[nodiscard]] auto* contiguous_data(It it) {
  return std::to_address(it);
}

}  // namespace detail

/// Parallel sort over a contiguous range (blocked merge sort; not
/// stable — use stable_sort for that).
template <typename RandomIt,
          typename Comp = std::less<
              typename std::iterator_traits<RandomIt>::value_type>>
void sort(const host_policy& pol, RandomIt first, RandomIt last,
          Comp comp = {}) {
  using T = typename std::iterator_traits<RandomIt>::value_type;
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n < 2) return;
  if (n <= pol.serial_cutoff) {
    std::sort(first, last, comp);
    return;
  }
  T* data = detail::contiguous_data(first);
  std::vector<T> tmp(n);
  detail::blocked_merge_sort<false, T, Comp, detail::NoteNothing>(
      data, n, comp, tmp.data(), [&](std::size_t tasks, const auto& body) {
        detail::host_exec(pol, tasks, body);
      });
}

/// Parallel stable sort (blocked stable merge sort: std::stable_sort
/// per tile, stable merge-path rounds — equal elements keep their input
/// order, matching std::stable_sort).
template <typename RandomIt,
          typename Comp = std::less<
              typename std::iterator_traits<RandomIt>::value_type>>
void stable_sort(const host_policy& pol, RandomIt first, RandomIt last,
                 Comp comp = {}) {
  using T = typename std::iterator_traits<RandomIt>::value_type;
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n < 2) return;
  if (n <= pol.serial_cutoff) {
    std::stable_sort(first, last, comp);
    return;
  }
  T* data = detail::contiguous_data(first);
  std::vector<T> tmp(n);
  detail::blocked_merge_sort<true, T, Comp, detail::NoteNothing>(
      data, n, comp, tmp.data(), [&](std::size_t tasks, const auto& body) {
        detail::host_exec(pol, tasks, body);
      });
}

/// Stable parallel merge of two sorted contiguous ranges into `out`
/// (std::merge semantics: ties take from the first range first).
template <typename RandomIt, typename OutIt,
          typename Comp = std::less<
              typename std::iterator_traits<RandomIt>::value_type>>
void merge(const host_policy& pol, RandomIt first1, RandomIt last1,
           RandomIt first2, RandomIt last2, OutIt out, Comp comp = {}) {
  using T = typename std::iterator_traits<RandomIt>::value_type;
  const std::size_t na = static_cast<std::size_t>(last1 - first1);
  const std::size_t nb = static_cast<std::size_t>(last2 - first2);
  if (na + nb == 0) return;
  if (na + nb <= pol.serial_cutoff) {
    std::merge(first1, last1, first2, last2, out, comp);
    return;
  }
  detail::parallel_merge<T, Comp, detail::NoteNothing>(
      detail::contiguous_data(first1), na, detail::contiguous_data(first2),
      nb, detail::contiguous_data(out), comp,
      [&](std::size_t tasks, const auto& body) {
        detail::host_exec(pol, tasks, body);
      });
}

/// Blocked parallel reduce (deterministic combine order; see
/// detail::blocked_reduce).
template <typename RandomIt, typename R,
          typename Combine = std::plus<R>>
[[nodiscard]] R reduce(const host_policy& pol, RandomIt first,
                       RandomIt last, R init, Combine combine = {}) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n <= pol.serial_cutoff) {
    R acc = init;
    for (std::size_t i = 0; i < n; ++i) {
      acc = combine(acc, static_cast<R>(first[i]));
    }
    return acc;
  }
  return detail::blocked_reduce(
      n, init, [&](std::size_t i) { return static_cast<R>(first[i]); },
      combine, [](std::size_t, std::size_t) {},
      [&](std::size_t tasks, const auto& body) {
        detail::host_exec(pol, tasks, body);
      });
}

/// Blocked parallel transform_reduce over one range.
template <typename RandomIt, typename R, typename Transform,
          typename Combine = std::plus<R>>
[[nodiscard]] R transform_reduce(const host_policy& pol, RandomIt first,
                                 RandomIt last, R init, Transform transform,
                                 Combine combine = {}) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n <= pol.serial_cutoff) {
    R acc = init;
    for (std::size_t i = 0; i < n; ++i) {
      acc = combine(acc, static_cast<R>(transform(first[i])));
    }
    return acc;
  }
  return detail::blocked_reduce(
      n, init,
      [&](std::size_t i) { return static_cast<R>(transform(first[i])); },
      combine, [](std::size_t, std::size_t) {},
      [&](std::size_t tasks, const auto& body) {
        detail::host_exec(pol, tasks, body);
      });
}

/// Two-pass parallel inclusive scan (out[i] = in[0] op ... op in[i]).
template <typename RandomIt, typename OutIt, typename Op = std::plus<>>
void inclusive_scan(const host_policy& pol, RandomIt first, RandomIt last,
                    OutIt out, Op op = {}) {
  using U = typename std::iterator_traits<OutIt>::value_type;
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  if (n <= pol.serial_cutoff) {
    U acc = static_cast<U>(first[0]);
    out[0] = acc;
    for (std::size_t i = 1; i < n; ++i) {
      acc = op(acc, static_cast<U>(first[i]));
      out[i] = acc;
    }
    return;
  }
  detail::two_pass_scan<true, typename std::iterator_traits<
                                  RandomIt>::value_type,
                        U, Op, detail::NoteNothing>(
      detail::contiguous_data(first), detail::contiguous_data(out), n, U{},
      op, [&](std::size_t tasks, const auto& body) {
        detail::host_exec(pol, tasks, body);
      });
}

/// Two-pass parallel exclusive scan (out[i] = init op in[0] op ... op
/// in[i-1]; out[0] = init).
template <typename RandomIt, typename OutIt, typename U,
          typename Op = std::plus<>>
void exclusive_scan(const host_policy& pol, RandomIt first, RandomIt last,
                    OutIt out, U init, Op op = {}) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  if (n <= pol.serial_cutoff) {
    U acc = init;
    for (std::size_t i = 0; i < n; ++i) {
      const U next = op(acc, static_cast<U>(first[i]));
      out[i] = acc;
      acc = next;
    }
    return;
  }
  detail::two_pass_scan<false, typename std::iterator_traits<
                                   RandomIt>::value_type,
                        U, Op, detail::NoteNothing>(
      detail::contiguous_data(first), detail::contiguous_data(out), n, init,
      op, [&](std::size_t tasks, const auto& body) {
        detail::host_exec(pol, tasks, body);
      });
}

/// Parallel for_each over a contiguous range.
template <typename RandomIt, typename F>
void for_each(const host_policy& pol, RandomIt first, RandomIt last,
              F&& f) {
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  if (n <= pol.serial_cutoff) {
    for (std::size_t i = 0; i < n; ++i) f(first[i]);
    return;
  }
  gpusim::ThreadPool::global().parallel_for_chunks(
      n,
      [&](std::uint64_t begin, std::uint64_t end) {
        for (std::uint64_t i = begin; i < end; ++i) f(first[i]);
      },
      pol.schedule, pol.grain);
}

}  // namespace mcmm::pstlx
