#pragma once
// pstlx: device-executed parallel algorithms over the simulated GPU —
// the pSTL column of Figure 1 made runnable. Every algorithm takes a
// stdparx::execution_policy (NVHPC / oneDPL / roc-stdpar / Open SYCL
// per-vendor gate) and dispatches through gpusim::Queue launches, so
// the gpusan shadow log and the gpuprof roofline summaries observe
// every access and every launch with no pstlx-specific plumbing.
//
// Algorithm cores live in src/pstlx/detail.hpp and are shared with the
// host fallback (src/pstlx/host.hpp):
//   reduce / transform_reduce  blocked 64-chunk reduce (bitwise equal
//                              to stdparx::detail::chunked_reduce)
//   inclusive/exclusive_scan   two-pass block scan
//   sort / stable_sort         blocked merge sort + merge-path rounds
//   merge                      co-rank segmented stable merge
//   for_each / transform       flat per-item kernels
//
// Gate semantics (satellite of ISSUE 8): policies re-validate at every
// algorithm entry via execution_policy::validate(). The roc-stdpar
// opt-in is a process-global switch that can be turned off *after* a
// policy was built; validating before the first launch means a newly
// unsupported combination throws without consuming any simulated queue
// time — no partially-executed algorithm is left on the timeline.

#include <concepts>
#include <functional>
#include <string_view>

#include "models/stdparx/stdparx.hpp"
#include "pstlx/detail.hpp"

namespace mcmm::pstlx {

/// Figure 1 Standard-column support tier for a (runtime, vendor) cell,
/// mirrored by the execution_policy gate (see tier_for in pstlx.cpp).
enum class SupportTier {
  VendorComplete,      ///< NVHPC on NVIDIA: production, std:: namespace
  CustomNamespace,     ///< oneDPL on Intel: production, oneapi::dpl::
  OptInExperimental,   ///< roc-stdpar on AMD: requires explicit opt-in
  Experimental,        ///< Open SYCL everywhere, oneDPL plugin routes
  Unsupported,         ///< combination rejected by the gate
};

[[nodiscard]] std::string_view to_string(SupportTier tier) noexcept;

/// The tier the execution_policy gate enforces for (vendor, runtime).
/// Pure lookup: never throws, ignores the roc-stdpar opt-in switch
/// (OptInExperimental is the tier *because* the switch exists).
[[nodiscard]] SupportTier tier_for(Vendor vendor,
                                   stdparx::Runtime runtime) noexcept;

namespace detail {

/// Host-side schedule used by pstlx launches on this thread. Purely an
/// execution knob (like gpusim::LaunchPolicy itself): it never changes
/// results or simulated time, only how tiles are handed to workers.
inline thread_local gpusim::Schedule t_schedule = gpusim::Schedule::Dynamic;

/// RAII device scratch allocation (sort ping-pong buffer).
template <typename T>
class device_buffer {
 public:
  device_buffer(gpusim::Device& device, std::size_t count,
                std::string_view origin)
      : device_(&device),
        data_(static_cast<T*>(device.allocate(count * sizeof(T), origin))) {}
  ~device_buffer() {
    if (data_ != nullptr) device_->deallocate(data_);
  }
  device_buffer(const device_buffer&) = delete;
  device_buffer& operator=(const device_buffer&) = delete;

  [[nodiscard]] T* data() const noexcept { return data_; }

 private:
  gpusim::Device* device_;
  T* data_;
};

/// Task executor backed by a queue launch: one work item per task,
/// self-scheduled (dynamic, grain 1) like stdparx's chunked launches.
/// Each call is one launch carrying `costs`, so sim time and profiler
/// attribution follow the declared traffic, not the task count.
struct queue_exec {
  gpusim::Queue* queue;
  gpusim::KernelCosts costs;

  template <typename Body>
  void operator()(std::size_t tasks, const Body& body) const {
    queue->launch(gpusim::launch_1d(tasks, 1), costs,
                  [&](const gpusim::WorkItem& item) {
                    const std::size_t t = item.global_x();
                    if (t < tasks) body(t);
                  },
                  gpusim::LaunchPolicy{t_schedule, 1});
  }
};

[[nodiscard]] inline gpusim::KernelCosts streaming_costs(
    double bytes_read, double bytes_written, double flops = 0) {
  gpusim::KernelCosts costs;
  costs.bytes_read = bytes_read;
  costs.bytes_written = bytes_written;
  costs.flops = flops;
  return costs;
}

}  // namespace detail

/// RAII override of the host-side schedule pstlx launches use on this
/// thread (racecheck fixtures prove cleanliness under both schedules;
/// results and simulated time are schedule-independent by design).
class schedule_guard {
 public:
  explicit schedule_guard(gpusim::Schedule s) noexcept
      : prev_(detail::t_schedule) {
    detail::t_schedule = s;
  }
  ~schedule_guard() { detail::t_schedule = prev_; }
  schedule_guard(const schedule_guard&) = delete;
  schedule_guard& operator=(const schedule_guard&) = delete;

 private:
  gpusim::Schedule prev_;
};

// --- Flat per-item kernels ----------------------------------------------

template <typename T, typename F>
void for_each(const stdparx::execution_policy& pol, T* first, T* last,
              F&& f) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  const auto costs = detail::streaming_costs(
      static_cast<double>(n * sizeof(T)), static_cast<double>(n * sizeof(T)));
  pol.queue().launch(gpusim::launch_1d(n, 256), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t i = item.global_x();
                       if (i >= n) return;
                       detail::NoteDevice::read(first + i, sizeof(T));
                       detail::NoteDevice::write(first + i, sizeof(T));
                       f(first[i]);
                     },
                     gpusim::LaunchPolicy{detail::t_schedule, 0});
}

template <typename T, typename U, typename F>
void transform(const stdparx::execution_policy& pol, const T* first,
               const T* last, U* out, F&& f) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  const auto costs = detail::streaming_costs(
      static_cast<double>(n * sizeof(T)), static_cast<double>(n * sizeof(U)));
  pol.queue().launch(gpusim::launch_1d(n, 256), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t i = item.global_x();
                       if (i >= n) return;
                       detail::NoteDevice::read(first + i, sizeof(T));
                       detail::NoteDevice::write(out + i, sizeof(U));
                       out[i] = f(first[i]);
                     },
                     gpusim::LaunchPolicy{detail::t_schedule, 0});
}

template <typename T, typename U, typename V, typename F>
void transform(const stdparx::execution_policy& pol, const T* first1,
               const T* last1, const U* first2, V* out, F&& f) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last1 - first1);
  if (n == 0) return;
  const auto costs = detail::streaming_costs(
      static_cast<double>(n * (sizeof(T) + sizeof(U))),
      static_cast<double>(n * sizeof(V)));
  pol.queue().launch(gpusim::launch_1d(n, 256), costs,
                     [&](const gpusim::WorkItem& item) {
                       const std::size_t i = item.global_x();
                       if (i >= n) return;
                       detail::NoteDevice::read(first1 + i, sizeof(T));
                       detail::NoteDevice::read(first2 + i, sizeof(U));
                       detail::NoteDevice::write(out + i, sizeof(V));
                       out[i] = f(first1[i], first2[i]);
                     },
                     gpusim::LaunchPolicy{detail::t_schedule, 0});
}

// --- Blocked reductions --------------------------------------------------

/// Device reduce. Same decomposition, combine order, and KernelCosts as
/// stdparx::reduce, so replacing one with the other changes neither the
/// simulated timeline nor the floating-point sum.
template <typename T, typename R, typename Combine>
[[nodiscard]] R reduce(const stdparx::execution_policy& pol, const T* first,
                       const T* last, R init, Combine&& combine) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last - first);
  const auto costs =
      detail::streaming_costs(static_cast<double>(n * sizeof(T)), 0,
                              static_cast<double>(n));
  return detail::blocked_reduce(
      n, init, [&](std::size_t i) { return static_cast<R>(first[i]); },
      std::forward<Combine>(combine),
      [&](std::size_t begin, std::size_t end) {
        detail::NoteDevice::read(first + begin, (end - begin) * sizeof(T));
      },
      detail::queue_exec{&pol.queue(), costs});
}

template <typename T, typename R>
[[nodiscard]] R reduce(const stdparx::execution_policy& pol, const T* first,
                       const T* last, R init) {
  return reduce(pol, first, last, init,
                [](const R& a, const R& b) { return a + b; });
}

/// Device inner product (the BabelStream Dot shape): bitwise equal to
/// stdparx::transform_reduce with identical costs and one launch.
template <typename T, typename U, typename R>
[[nodiscard]] R transform_reduce(const stdparx::execution_policy& pol,
                                 const T* first1, const T* last1,
                                 const U* first2, R init) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last1 - first1);
  const auto costs = detail::streaming_costs(
      static_cast<double>(n * (sizeof(T) + sizeof(U))), 0,
      static_cast<double>(2 * n));
  return detail::blocked_reduce(
      n, init,
      [&](std::size_t i) { return static_cast<R>(first1[i] * first2[i]); },
      [](const R& a, const R& b) { return a + b; },
      [&](std::size_t begin, std::size_t end) {
        detail::NoteDevice::read(first1 + begin, (end - begin) * sizeof(T));
        detail::NoteDevice::read(first2 + begin, (end - begin) * sizeof(U));
      },
      detail::queue_exec{&pol.queue(), costs});
}

/// Unary-transform reduce (sum of f(x) over the range).
template <typename T, typename R, typename Transform,
          typename Combine = std::plus<R>>
  requires std::invocable<Transform&, const T&>
[[nodiscard]] R transform_reduce(const stdparx::execution_policy& pol,
                                 const T* first, const T* last, R init,
                                 Transform transform, Combine combine = {}) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last - first);
  const auto costs =
      detail::streaming_costs(static_cast<double>(n * sizeof(T)), 0,
                              static_cast<double>(2 * n));
  return detail::blocked_reduce(
      n, init,
      [&](std::size_t i) { return static_cast<R>(transform(first[i])); },
      combine,
      [&](std::size_t begin, std::size_t end) {
        detail::NoteDevice::read(first + begin, (end - begin) * sizeof(T));
      },
      detail::queue_exec{&pol.queue(), costs});
}

// --- Two-pass block scans ------------------------------------------------

template <typename T, typename U, typename Op = std::plus<>>
void inclusive_scan(const stdparx::execution_policy& pol, const T* first,
                    const T* last, U* out, Op op = {}) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  const auto costs = detail::streaming_costs(
      static_cast<double>(n * sizeof(T)), static_cast<double>(n * sizeof(U)),
      static_cast<double>(n));
  detail::two_pass_scan<true, T, U, Op, detail::NoteDevice>(
      first, out, n, U{}, op, detail::queue_exec{&pol.queue(), costs});
}

template <typename T, typename U, typename Op = std::plus<>>
void exclusive_scan(const stdparx::execution_policy& pol, const T* first,
                    const T* last, U* out, U init, Op op = {}) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n == 0) return;
  const auto costs = detail::streaming_costs(
      static_cast<double>(n * sizeof(T)), static_cast<double>(n * sizeof(U)),
      static_cast<double>(n));
  detail::two_pass_scan<false, T, U, Op, detail::NoteDevice>(
      first, out, n, init, op, detail::queue_exec{&pol.queue(), costs});
}

// --- Blocked merge sort + merge ------------------------------------------

namespace detail {

template <bool Stable, typename T, typename Comp>
void device_sort(const stdparx::execution_policy& pol, T* first, T* last,
                 Comp comp) {
  pol.validate();
  const std::size_t n = static_cast<std::size_t>(last - first);
  if (n < 2) return;
  // Each pass (tile sort, every merge round, copy-back) streams the
  // full array once: read n, write n, ~n compare-flops.
  const auto costs = streaming_costs(static_cast<double>(n * sizeof(T)),
                                     static_cast<double>(n * sizeof(T)),
                                     static_cast<double>(n));
  device_buffer<T> tmp(pol.device(), n, "pstlx::sort scratch");
  blocked_merge_sort<Stable, T, Comp, NoteDevice>(
      first, n, comp, tmp.data(), queue_exec{&pol.queue(), costs});
}

}  // namespace detail

template <typename T, typename Comp = std::less<T>>
void sort(const stdparx::execution_policy& pol, T* first, T* last,
          Comp comp = {}) {
  detail::device_sort<false>(pol, first, last, comp);
}

template <typename T, typename Comp = std::less<T>>
void stable_sort(const stdparx::execution_policy& pol, T* first, T* last,
                 Comp comp = {}) {
  detail::device_sort<true>(pol, first, last, comp);
}

/// Stable device merge of two sorted ranges into out (std::merge
/// semantics: ties take from the first range first).
template <typename T, typename Comp = std::less<T>>
void merge(const stdparx::execution_policy& pol, const T* first1,
           const T* last1, const T* first2, const T* last2, T* out,
           Comp comp = {}) {
  pol.validate();
  const std::size_t na = static_cast<std::size_t>(last1 - first1);
  const std::size_t nb = static_cast<std::size_t>(last2 - first2);
  if (na + nb == 0) return;
  const auto costs = detail::streaming_costs(
      static_cast<double>((na + nb) * sizeof(T)),
      static_cast<double>((na + nb) * sizeof(T)),
      static_cast<double>(na + nb));
  detail::parallel_merge<T, Comp, detail::NoteDevice>(
      first1, na, first2, nb, out, comp,
      detail::queue_exec{&pol.queue(), costs});
}

}  // namespace mcmm::pstlx
