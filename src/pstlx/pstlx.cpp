#include "pstlx/pstlx.hpp"

namespace mcmm::pstlx {

std::string_view to_string(SupportTier tier) noexcept {
  switch (tier) {
    case SupportTier::VendorComplete:
      return "vendor-complete";
    case SupportTier::CustomNamespace:
      return "custom-namespace";
    case SupportTier::OptInExperimental:
      return "opt-in-experimental";
    case SupportTier::Experimental:
      return "experimental";
    case SupportTier::Unsupported:
      return "unsupported";
  }
  return "?";
}

SupportTier tier_for(Vendor vendor, stdparx::Runtime runtime) noexcept {
  switch (runtime) {
    case stdparx::Runtime::NVHPC:
      return vendor == Vendor::NVIDIA ? SupportTier::VendorComplete
                                      : SupportTier::Unsupported;
    case stdparx::Runtime::OneDPL:
      return vendor == Vendor::Intel ? SupportTier::CustomNamespace
                                     : SupportTier::Experimental;
    case stdparx::Runtime::RocStdpar:
      return vendor == Vendor::AMD ? SupportTier::OptInExperimental
                                   : SupportTier::Unsupported;
    case stdparx::Runtime::OpenSYCL:
      return SupportTier::Experimental;
  }
  return SupportTier::Unsupported;
}

}  // namespace mcmm::pstlx
