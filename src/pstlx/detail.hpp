#pragma once
// Shared algorithm cores for pstlx (src/pstlx/pstlx.hpp is the
// device-executed surface, src/pstlx/host.hpp the host-side fallback).
//
// Everything here is deterministic by construction: tile geometry is a
// pure function of the problem size (never of the worker count), tiles
// are combined in index order, and the merge path is resolved by binary
// search on the data — so results are bitwise identical across
// MCMM_NUM_THREADS settings and Schedule::Static/Dynamic.
//
// The three idioms (ROADMAP attributes them to the oneDPL pattern
// headers; implemented from scratch here):
//   * blocked reduce/sort: fixed tile grid, per-tile serial work,
//     deterministic combine;
//   * two-pass scan: per-tile sums -> host prefix over tile sums ->
//     per-tile re-scan with offsets;
//   * parallel_merge: co-rank (merge-path) binary search splits the
//     output range into independent segments.
//
// Execution is abstracted behind `Exec`: a callable
// `exec(num_tasks, body)` that runs body(t) for every t in
// [0, num_tasks), in any order, on any number of threads. The device
// surface backs it with a gpusim::Queue launch (so gpusan and gpuprof
// observe the work); the host surface backs it with the fork-join
// engine directly. `Note` is a static policy that forwards per-task
// range accesses to the sanitizer seam (device) or does nothing (host).

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>

#include "gpusim/sanitizer.hpp"

namespace mcmm::pstlx::detail {

/// Reduce/scan use the same 64-way decomposition as stdparx's
/// chunked_reduce so pstlx results are bitwise identical to the stdparx
/// primitives they replace in the perfport campaign.
inline constexpr std::size_t kReduceTiles = 64;
inline constexpr std::size_t kScanTiles = 64;

/// Sort/merge tile geometry: enough tiles to spread, but tiles never
/// drop below kSortMinTile elements (per-tile std::sort amortizes).
inline constexpr std::size_t kSortMaxTiles = 64;
inline constexpr std::size_t kSortMinTile = 1024;

[[nodiscard]] constexpr std::size_t ceil_div(std::size_t n,
                                             std::size_t d) noexcept {
  return d == 0 ? 0 : (n + d - 1) / d;
}

/// Number of sort/merge tiles for n elements (0 when n == 0). Depends
/// only on n: the tiling — and therefore the result — is independent of
/// the worker count.
[[nodiscard]] constexpr std::size_t sort_tiles(std::size_t n) noexcept {
  if (n == 0) return 0;
  const std::size_t by_grain = ceil_div(n, kSortMinTile);
  return by_grain < kSortMaxTiles ? by_grain : kSortMaxTiles;
}

/// No-op access policy (host fallback: nothing to shadow-log).
struct NoteNothing {
  static void read(const void*, std::size_t) noexcept {}
  static void write(const void*, std::size_t) noexcept {}
};

/// Device access policy: forwards each task's input/output ranges to the
/// sanitizer seam, so gpusan's memcheck bounds-checks them and racecheck
/// sees which work item touched which range.
struct NoteDevice {
  static void read(const void* p, std::size_t bytes) noexcept {
    if (bytes != 0) {
      gpusim::note_device_access(p, bytes, gpusim::AccessKind::Read);
    }
  }
  static void write(const void* p, std::size_t bytes) noexcept {
    if (bytes != 0) {
      gpusim::note_device_access(p, bytes, gpusim::AccessKind::Write);
    }
  }
};

/// Merge-path co-rank: the number of elements taken from `a` by the
/// first `d` outputs of a stable merge of (a, na) and (b, nb). Stability
/// means ties take from `a` first (std::merge semantics). O(log min(na,
/// nb, d)) comparisons, no side effects — every task can compute its own
/// split independently.
template <typename ItA, typename ItB, typename Comp>
[[nodiscard]] std::size_t co_rank(std::size_t d, ItA a, std::size_t na,
                                  ItB b, std::size_t nb, Comp comp) {
  std::size_t lo = d > nb ? d - nb : 0;
  std::size_t hi = d < na ? d : na;
  while (lo < hi) {
    const std::size_t i = lo + (hi - lo) / 2;  // candidate take-from-a
    const std::size_t j = d - i - 1;           // last taken b index
    if (comp(b[j], a[i])) {
      hi = i;  // b[j] precedes a[i]: taking i from a is feasible
    } else {
      lo = i + 1;  // a[i] precedes (or ties) b[j]: must take a[i] too
    }
  }
  return lo;
}

/// Serial stable merge of a[ia, ia_end) and b[ib, ib_end) into
/// out[io, ...). Ties take from `a` first.
template <typename ItA, typename ItB, typename ItOut, typename Comp>
void merge_serial(ItA a, std::size_t ia, std::size_t ia_end, ItB b,
                  std::size_t ib, std::size_t ib_end, ItOut out,
                  std::size_t io, Comp comp) {
  while (ia < ia_end && ib < ib_end) {
    if (comp(b[ib], a[ia])) {
      out[io++] = b[ib++];
    } else {
      out[io++] = a[ia++];
    }
  }
  while (ia < ia_end) out[io++] = a[ia++];
  while (ib < ib_end) out[io++] = b[ib++];
}

/// Stable parallel merge of (a, na) and (b, nb) into out: the output
/// range is cut into sort_tiles(na + nb) equal segments; each task
/// co-ranks its segment's endpoints and merges its slice serially.
/// Segments partition the inputs and the output, so tasks are disjoint.
template <typename T, typename Comp, typename Note, typename Exec>
void parallel_merge(const T* a, std::size_t na, const T* b, std::size_t nb,
                    T* out, Comp comp, Exec&& exec) {
  const std::size_t total = na + nb;
  const std::size_t segs = sort_tiles(total);
  if (segs == 0) return;
  const std::size_t seg = ceil_div(total, segs);
  exec(segs, [&](std::size_t s) {
    const std::size_t d0 = std::min(total, s * seg);
    const std::size_t d1 = std::min(total, d0 + seg);
    if (d0 >= d1) return;
    const std::size_t i0 = co_rank(d0, a, na, b, nb, comp);
    const std::size_t i1 = co_rank(d1, a, na, b, nb, comp);
    const std::size_t j0 = d0 - i0;
    const std::size_t j1 = d1 - i1;
    Note::read(a + i0, (i1 - i0) * sizeof(T));
    Note::read(b + j0, (j1 - j0) * sizeof(T));
    Note::write(out + d0, (d1 - d0) * sizeof(T));
    merge_serial(a, i0, i1, b, j0, j1, out, d0, comp);
  });
}

/// Blocked merge sort over data[0, n): per-tile std::sort (or
/// std::stable_sort when Stable), then log2(tiles) rounds of
/// width-doubling pair merges, each round's output segments split by
/// co-rank into independent tasks. `tmp` must hold n elements; rounds
/// ping-pong between data and tmp with a tiled copy-back if the final
/// round lands in tmp.
template <bool Stable, typename T, typename Comp, typename Note,
          typename Exec>
void blocked_merge_sort(T* data, std::size_t n, Comp comp, T* tmp,
                        Exec&& exec) {
  const std::size_t tiles = sort_tiles(n);
  if (tiles == 0) return;
  const std::size_t tile = ceil_div(n, tiles);

  // Pass 0: independent in-place tile sorts.
  exec(tiles, [&](std::size_t t) {
    const std::size_t b = std::min(n, t * tile);
    const std::size_t e = std::min(n, b + tile);
    if (b >= e) return;
    Note::read(data + b, (e - b) * sizeof(T));
    Note::write(data + b, (e - b) * sizeof(T));
    if constexpr (Stable) {
      std::stable_sort(data + b, data + e, comp);
    } else {
      std::sort(data + b, data + e, comp);
    }
  });

  // Merge rounds: pairs of width-sized sorted runs merge into 2*width
  // runs. Each pair's output is further split into co-rank segments so
  // one huge final merge still spreads over the pool. The flattened
  // (pair, segment) grid keeps every round a single task batch.
  T* src = data;
  T* dst = tmp;
  for (std::size_t width = tile; width < n; width *= 2) {
    const std::size_t pairs = ceil_div(n, 2 * width);
    const std::size_t segs = sort_tiles(std::min(n, 2 * width));
    exec(pairs * segs, [&](std::size_t task) {
      const std::size_t p = task / segs;
      const std::size_t s = task % segs;
      const std::size_t base = p * 2 * width;
      if (base >= n) return;
      const T* a = src + base;
      const std::size_t na = std::min(width, n - base);
      const T* b = src + base + na;
      const std::size_t nb = base + na < n
                                 ? std::min(width, n - base - na)
                                 : std::size_t{0};
      const std::size_t total = na + nb;
      const std::size_t seg = ceil_div(total, segs);
      const std::size_t d0 = std::min(total, s * seg);
      const std::size_t d1 = std::min(total, d0 + seg);
      if (d0 >= d1) return;
      const std::size_t i0 = co_rank(d0, a, na, b, nb, comp);
      const std::size_t i1 = co_rank(d1, a, na, b, nb, comp);
      const std::size_t j0 = d0 - i0;
      const std::size_t j1 = d1 - i1;
      Note::read(a + i0, (i1 - i0) * sizeof(T));
      Note::read(b + j0, (j1 - j0) * sizeof(T));
      Note::write(dst + base + d0, (d1 - d0) * sizeof(T));
      merge_serial(a, i0, i1, b, j0, j1, dst + base, d0, comp);
    });
    std::swap(src, dst);
  }

  if (src != data) {
    exec(tiles, [&](std::size_t t) {
      const std::size_t b = std::min(n, t * tile);
      const std::size_t e = std::min(n, b + tile);
      if (b >= e) return;
      Note::read(src + b, (e - b) * sizeof(T));
      Note::write(data + b, (e - b) * sizeof(T));
      std::copy(src + b, src + e, data + b);
    });
  }
}

/// Blocked reduce: the exact stdparx::detail::chunked_reduce
/// decomposition (64 ceil-split chunks, partials combined in chunk
/// order, init first) so routing the perfport campaign's Dot/Reduce
/// through pstlx reproduces the stdparx sums bit for bit.
template <typename R, typename Transform, typename Combine,
          typename NoteChunk, typename Exec>
[[nodiscard]] R blocked_reduce(std::size_t n, R init, Transform&& transform,
                               Combine&& combine, NoteChunk&& note_chunk,
                               Exec&& exec) {
  constexpr std::size_t kTiles = kReduceTiles;
  std::array<R, kTiles> partials;
  std::array<bool, kTiles> used{};
  const std::size_t chunk = ceil_div(n, kTiles);
  exec(kTiles, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) return;
    note_chunk(begin, end);
    R acc = transform(begin);
    for (std::size_t i = begin + 1; i < end; ++i) {
      acc = combine(acc, transform(i));
    }
    partials[c] = acc;
    used[c] = true;
  });
  R result = init;
  for (std::size_t c = 0; c < kTiles; ++c) {
    if (used[c]) result = combine(result, partials[c]);
  }
  return result;
}

/// Two-pass blocked scan. Pass 1 computes per-tile sums; the submitter
/// folds them into per-tile offsets (64 combines, trivially serial);
/// pass 2 re-scans each tile seeded with its offset. `Inclusive` picks
/// out[i] = prefix-including-i, else the exclusive form seeded by
/// `init`. Generic over the combine op, so no identity element is
/// assumed: tile 0 of an inclusive scan starts from in[0] itself.
template <bool Inclusive, typename T, typename U, typename Op,
          typename Note, typename Exec>
void two_pass_scan(const T* in, U* out, std::size_t n, U init, Op op,
                   Exec&& exec) {
  if (n == 0) return;
  constexpr std::size_t kTiles = kScanTiles;
  const std::size_t tile = ceil_div(n, kTiles);
  std::array<U, kTiles> sums{};
  std::array<U, kTiles> offsets{};

  exec(kTiles, [&](std::size_t c) {
    const std::size_t b = c * tile;
    const std::size_t e = std::min(n, b + tile);
    if (b >= e) return;
    Note::read(in + b, (e - b) * sizeof(T));
    U acc = static_cast<U>(in[b]);
    for (std::size_t i = b + 1; i < e; ++i) {
      acc = op(acc, static_cast<U>(in[i]));
    }
    sums[c] = acc;
  });

  // Host prefix over tile sums. Empty tiles exist only past the data,
  // so for every non-empty tile c > 0 the running value is well-formed.
  if constexpr (Inclusive) {
    U running = sums[0];
    for (std::size_t c = 1; c < kTiles; ++c) {
      offsets[c] = running;
      if (c * tile < n) running = op(running, sums[c]);
    }
  } else {
    U running = init;
    for (std::size_t c = 0; c < kTiles; ++c) {
      offsets[c] = running;
      if (c * tile < n) running = op(running, sums[c]);
    }
  }

  exec(kTiles, [&](std::size_t c) {
    const std::size_t b = c * tile;
    const std::size_t e = std::min(n, b + tile);
    if (b >= e) return;
    Note::read(in + b, (e - b) * sizeof(T));
    Note::write(out + b, (e - b) * sizeof(U));
    if constexpr (Inclusive) {
      U acc = c == 0 ? static_cast<U>(in[b])
                     : op(offsets[c], static_cast<U>(in[b]));
      out[b] = acc;
      for (std::size_t i = b + 1; i < e; ++i) {
        acc = op(acc, static_cast<U>(in[i]));
        out[i] = acc;
      }
    } else {
      U acc = offsets[c];
      for (std::size_t i = b; i < e; ++i) {
        const U next = op(acc, static_cast<U>(in[i]));
        out[i] = acc;
        acc = next;
      }
    }
  });
}

}  // namespace mcmm::pstlx::detail
