#include "serve/metrics.hpp"

#include <cstdio>

namespace mcmm::serve {

void Metrics::record_request(int status, std::uint64_t micros) noexcept {
  std::size_t slot = kStatusCodes.size();  // "other"
  for (std::size_t i = 0; i < kStatusCodes.size(); ++i) {
    if (kStatusCodes[i] == status) {
      slot = i;
      break;
    }
  }
  by_status_[slot].fetch_add(1, std::memory_order_relaxed);

  std::size_t bucket = kBucketMicros.size();  // +Inf
  for (std::size_t i = 0; i < kBucketMicros.size(); ++i) {
    if (micros <= kBucketMicros[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  latency_sum_micros_.fetch_add(micros, std::memory_order_relaxed);
  latency_count_.fetch_add(1, std::memory_order_relaxed);
}

void Metrics::record_endpoint(std::string_view path) noexcept {
  if (path == "/v1") path = "/";  // the index is served at both
  if (path.rfind("/v1/cell/", 0) == 0) path = "/v1/cell";
  std::size_t slot = kEndpoints.size();  // "other"
  for (std::size_t i = 0; i < kEndpoints.size(); ++i) {
    if (kEndpoints[i] == path) {
      slot = i;
      break;
    }
  }
  by_endpoint_[slot].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Metrics::requests_total() const noexcept {
  std::uint64_t total = 0;
  for (const auto& counter : by_status_) {
    total += counter.load(std::memory_order_relaxed);
  }
  return total;
}

std::string Metrics::prometheus_text() const {
  std::string out;
  out.reserve(2048);

  out +=
      "# HELP mcmm_http_requests_total Requests served, by response status.\n"
      "# TYPE mcmm_http_requests_total counter\n";
  for (std::size_t i = 0; i < kStatusCodes.size(); ++i) {
    const std::uint64_t n = by_status_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out += "mcmm_http_requests_total{code=\"";
    out += std::to_string(kStatusCodes[i]);
    out += "\"} ";
    out += std::to_string(n);
    out += '\n';
  }
  const std::uint64_t other =
      by_status_[kStatusCodes.size()].load(std::memory_order_relaxed);
  if (other != 0) {
    out += "mcmm_http_requests_total{code=\"other\"} ";
    out += std::to_string(other);
    out += '\n';
  }

  out +=
      "# HELP mcmm_http_requests_by_endpoint_total Requests routed, by "
      "endpoint family.\n"
      "# TYPE mcmm_http_requests_by_endpoint_total counter\n";
  for (std::size_t i = 0; i < kEndpoints.size(); ++i) {
    const std::uint64_t n = by_endpoint_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    out += "mcmm_http_requests_by_endpoint_total{endpoint=\"";
    out += kEndpoints[i];
    out += "\"} ";
    out += std::to_string(n);
    out += '\n';
  }
  const std::uint64_t other_endpoint =
      by_endpoint_[kEndpoints.size()].load(std::memory_order_relaxed);
  if (other_endpoint != 0) {
    out += "mcmm_http_requests_by_endpoint_total{endpoint=\"other\"} ";
    out += std::to_string(other_endpoint);
    out += '\n';
  }

  out +=
      "# HELP mcmm_http_connections_total Accepted TCP connections.\n"
      "# TYPE mcmm_http_connections_total counter\n"
      "mcmm_http_connections_total ";
  out += std::to_string(connections_.load(std::memory_order_relaxed));
  out += '\n';

  out +=
      "# HELP mcmm_http_in_flight_requests Requests currently being "
      "handled.\n"
      "# TYPE mcmm_http_in_flight_requests gauge\n"
      "mcmm_http_in_flight_requests ";
  out += std::to_string(in_flight_.load(std::memory_order_relaxed));
  out += '\n';

  out +=
      "# HELP mcmm_http_request_duration_seconds Request handling latency.\n"
      "# TYPE mcmm_http_request_duration_seconds histogram\n";
  std::uint64_t cumulative = 0;
  char label[32];
  for (std::size_t i = 0; i < kBucketMicros.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    std::snprintf(label, sizeof label, "%g",
                  static_cast<double>(kBucketMicros[i]) / 1e6);
    out += "mcmm_http_request_duration_seconds_bucket{le=\"";
    out += label;
    out += "\"} ";
    out += std::to_string(cumulative);
    out += '\n';
  }
  cumulative += buckets_[kBucketMicros.size()].load(std::memory_order_relaxed);
  out += "mcmm_http_request_duration_seconds_bucket{le=\"+Inf\"} ";
  out += std::to_string(cumulative);
  out += '\n';
  const auto sum_micros = latency_sum_micros_.load(std::memory_order_relaxed);
  std::snprintf(label, sizeof label, "%.6f",
                static_cast<double>(sum_micros) / 1e6);
  out += "mcmm_http_request_duration_seconds_sum ";
  out += label;
  out += '\n';
  out += "mcmm_http_request_duration_seconds_count ";
  out += std::to_string(latency_count_.load(std::memory_order_relaxed));
  out += '\n';

  if (loop_ != nullptr) {
    const LoopStats ls = snapshot(*loop_);
    out +=
        "# HELP mcmm_eventloop_open_connections Sockets currently held by "
        "the readiness loop.\n"
        "# TYPE mcmm_eventloop_open_connections gauge\n"
        "mcmm_eventloop_open_connections ";
    out += std::to_string(ls.open_connections);
    out +=
        "\n# HELP mcmm_eventloop_wakeups_total epoll_wait returns.\n"
        "# TYPE mcmm_eventloop_wakeups_total counter\n"
        "mcmm_eventloop_wakeups_total ";
    out += std::to_string(ls.wakeups_total);
    out +=
        "\n# HELP mcmm_eventloop_accepts_total Connections accepted by the "
        "loop.\n"
        "# TYPE mcmm_eventloop_accepts_total counter\n"
        "mcmm_eventloop_accepts_total ";
    out += std::to_string(ls.accepts_total);
    out +=
        "\n# HELP mcmm_eventloop_dispatches_total Ready events handed to "
        "the parse/compute pool.\n"
        "# TYPE mcmm_eventloop_dispatches_total counter\n"
        "mcmm_eventloop_dispatches_total ";
    out += std::to_string(ls.dispatches_total);
    out +=
        "\n# HELP mcmm_eventloop_epollout_rearms_total Partial writes that "
        "re-armed for EPOLLOUT.\n"
        "# TYPE mcmm_eventloop_epollout_rearms_total counter\n"
        "mcmm_eventloop_epollout_rearms_total ";
    out += std::to_string(ls.epollout_rearms_total);
    out +=
        "\n# HELP mcmm_eventloop_timer_evictions_total Connections evicted "
        "by the timer wheel.\n"
        "# TYPE mcmm_eventloop_timer_evictions_total counter\n"
        "mcmm_eventloop_timer_evictions_total ";
    out += std::to_string(ls.timer_evictions_total);
    out += '\n';
  }
  return out;
}

}  // namespace mcmm::serve
