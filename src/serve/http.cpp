#include "serve/http.hpp"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <functional>
#include <thread>

#include "serve/json.hpp"

namespace mcmm::serve {
namespace {

std::string lowered(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim_ows(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_token_char(unsigned char c) noexcept {
  if (std::isalnum(c) != 0) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool is_token(std::string_view s) noexcept {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return is_token_char(static_cast<unsigned char>(c));
  });
}

int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Splits "k=v&k2=v2" into decoded pairs; false on a bad escape.
bool parse_query(std::string_view raw,
                 std::vector<std::pair<std::string, std::string>>& out) {
  while (!raw.empty()) {
    const std::size_t amp = raw.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? raw : raw.substr(0, amp);
    raw = amp == std::string_view::npos ? std::string_view{}
                                        : raw.substr(amp + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    const std::string_view key =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    const std::string_view value = eq == std::string_view::npos
                                       ? std::string_view{}
                                       : pair.substr(eq + 1);
    auto dk = percent_decode(key);
    auto dv = percent_decode(value);
    if (!dk || !dv) return false;
    out.emplace_back(std::move(*dk), std::move(*dv));
  }
  return true;
}

}  // namespace

std::optional<std::string> percent_decode(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] != '%') {
      out += in[i];
      continue;
    }
    if (i + 2 >= in.size()) return std::nullopt;
    const int hi = hex_digit(in[i + 1]);
    const int lo = hex_digit(in[i + 2]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out += static_cast<char>((hi << 4) | lo);
    i += 2;
  }
  return out;
}

const std::string* Request::header(std::string_view name) const noexcept {
  const std::string key = lowered(name);
  for (const auto& [n, v] : headers) {
    if (n == key) return &v;
  }
  return nullptr;
}

std::string_view Request::query_param(std::string_view key,
                                      std::string_view fallback)
    const noexcept {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return fallback;
}

bool Request::keep_alive() const noexcept {
  const std::string* connection = header("connection");
  if (connection != nullptr) {
    const std::string value = lowered(*connection);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  return version_minor >= 1;  // HTTP/1.1 defaults to persistent
}

RequestParser::Status RequestParser::fail(int http_status,
                                          std::string reason) {
  status_ = Status::Error;
  error_status_ = http_status;
  error_reason_ = std::move(reason);
  return status_;
}

bool RequestParser::mid_request() const noexcept {
  return status_ == Status::NeedMore &&
         (buffer_.size() > consumed_ || state_ != State::RequestLine ||
          consumed_ > 0);
}

RequestParser::Status RequestParser::feed(std::string_view data) {
  if (status_ != Status::NeedMore) return status_;
  buffer_.append(data);
  return parse();
}

RequestParser::Status RequestParser::parse() {
  while (status_ == Status::NeedMore) {
    if (state_ == State::Body) {
      const std::size_t available = buffer_.size() - consumed_;
      if (available < content_length_) return status_;
      request_.body = buffer_.substr(consumed_, content_length_);
      consumed_ += content_length_;
      state_ = State::Done;
      status_ = Status::Complete;
      return status_;
    }
    // Line-oriented states: find the next LF (tolerating bare-LF input,
    // stripping the CR of a CRLF).
    const std::size_t lf = buffer_.find('\n', consumed_);
    if (lf == std::string::npos) {
      const std::size_t pending = buffer_.size() - consumed_;
      if (state_ == State::RequestLine && pending > limits_.max_request_line) {
        return fail(414, "request line too long");
      }
      if (state_ == State::Headers &&
          header_bytes_ + pending > limits_.max_header_bytes) {
        return fail(431, "header section too large");
      }
      return status_;
    }
    std::string_view line(buffer_.data() + consumed_, lf - consumed_);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t line_span = lf + 1 - consumed_;
    consumed_ = lf + 1;
    if (state_ == State::RequestLine) {
      if (line.empty()) continue;  // tolerate leading blank lines (RFC 9112)
      if (line.size() > limits_.max_request_line) {
        return fail(414, "request line too long");
      }
      if (parse_request_line(line) == Status::Error) return status_;
      state_ = State::Headers;
    } else {  // State::Headers
      header_bytes_ += line_span;
      if (header_bytes_ > limits_.max_header_bytes) {
        return fail(431, "header section too large");
      }
      if (line.empty()) {
        if (finish_headers() == Status::Error) return status_;
        continue;
      }
      if (request_.headers.size() >= limits_.max_header_count) {
        return fail(431, "too many header fields");
      }
      if (parse_header_line(line) == Status::Error) return status_;
    }
  }
  return status_;
}

RequestParser::Status RequestParser::parse_request_line(
    std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return fail(400, "malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!is_token(method) || method.size() > 16) {
    return fail(400, "malformed method");
  }
  if (target.empty() || target.front() != '/') {
    return fail(400, "only origin-form targets are served");
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else {
    return fail(505, "unsupported HTTP version");
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  const std::size_t qmark = target.find('?');
  const std::string_view raw_path =
      qmark == std::string_view::npos ? target : target.substr(0, qmark);
  auto decoded = percent_decode(raw_path);
  if (!decoded) return fail(400, "bad percent-escape in path");
  request_.path = std::move(*decoded);
  if (qmark != std::string_view::npos &&
      !parse_query(target.substr(qmark + 1), request_.query)) {
    return fail(400, "bad percent-escape in query");
  }
  return status_;
}

RequestParser::Status RequestParser::parse_header_line(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    return fail(400, "header line without ':'");
  }
  const std::string_view name = line.substr(0, colon);
  if (!is_token(name)) {
    // Covers whitespace before the colon too (request smuggling vector).
    return fail(400, "malformed header name");
  }
  request_.headers.emplace_back(lowered(name),
                                std::string(trim_ows(line.substr(colon + 1))));
  return status_;
}

RequestParser::Status RequestParser::finish_headers() {
  const std::string* te = request_.header("transfer-encoding");
  if (te != nullptr) {
    return fail(501, "transfer codings are not implemented");
  }
  content_length_ = 0;
  const std::string* cl = nullptr;
  for (const auto& [n, v] : request_.headers) {
    if (n != "content-length") continue;
    if (cl != nullptr && v != *cl) {
      return fail(400, "conflicting content-length headers");
    }
    cl = &v;
  }
  if (cl != nullptr) {
    if (cl->empty() ||
        !std::all_of(cl->begin(), cl->end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        }) ||
        cl->size() > 12) {
      return fail(400, "malformed content-length");
    }
    content_length_ = std::stoul(*cl);
    if (content_length_ > limits_.max_body) {
      return fail(413, "request body too large");
    }
  }
  if (content_length_ == 0) {
    state_ = State::Done;
    status_ = Status::Complete;
  } else {
    state_ = State::Body;
  }
  return status_;
}

Request RequestParser::take_request() { return std::move(request_); }

void RequestParser::reset() {
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  header_bytes_ = 0;
  content_length_ = 0;
  state_ = State::RequestLine;
  status_ = Status::NeedMore;
  error_status_ = 0;
  error_reason_.clear();
  request_ = Request{};
  if (!buffer_.empty()) parse();  // pipelined bytes may already complete
}

std::string_view status_reason(int code) noexcept {
  switch (code) {
    case 200: return "OK";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string serialize_response(const Response& r, bool head,
                               bool keep_alive) {
  std::string out;
  out.reserve(r.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(r.status);
  out += ' ';
  out += status_reason(r.status);
  out += "\r\nServer: mcmm-serve/1\r\n";
  if (r.status == 304) {
    // A 304 carries validator headers but never a body (RFC 9110 §15.4.5).
    if (!r.etag.empty()) {
      out += "ETag: ";
      out += r.etag;
      out += "\r\n";
    }
  } else {
    out += "Content-Type: ";
    out += r.content_type;
    out += "\r\nContent-Length: ";
    out += std::to_string(r.body.size());
    out += "\r\n";
    if (!r.etag.empty()) {
      out += "ETag: ";
      out += r.etag;
      out += "\r\nCache-Control: max-age=0, must-revalidate\r\n";
    }
  }
  for (const auto& [name, value] : r.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  if (!head && r.status != 304) out += r.body;
  return out;
}

Response error_response(int status, std::string_view detail) {
  Response r;
  r.status = status;
  std::string body = "{\"error\":";
  body += std::to_string(status);
  body += ",\"reason\":";
  body += json_quote(status_reason(status));
  body += ",\"detail\":";
  body += json_quote(detail);
  body += "}\n";
  r.body = std::move(body);
  return r;
}

std::string generate_request_id() {
  // Thread-local xorshift64* seeded once per thread from the clock and the
  // thread identity; ids only need process-level uniqueness, not secrecy.
  thread_local std::uint64_t state = [] {
    std::uint64_t seed = static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed ^= std::hash<std::thread::id>{}(std::this_thread::get_id());
    seed ^= static_cast<std::uint64_t>(::getpid()) << 32;
    return seed | 1;  // xorshift must not start at zero
  }();
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  const std::uint64_t value = state * 2685821657736338717ULL;
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(hex, 16);
}

bool valid_request_id(std::string_view id) noexcept {
  if (id.empty() || id.size() > 128) return false;
  return std::all_of(id.begin(), id.end(), [](unsigned char c) {
    return c > 0x20 && c < 0x7f;
  });
}

}  // namespace mcmm::serve
