#pragma once
// The readiness core of the serving layer (DESIGN.md §3.2): one epoll(7)
// instance, an eventfd wake channel, a cross-thread operation queue, and a
// hashed timer wheel, packaged so HttpListener (and, through it, the
// gateway's upstream legs) can multiplex tens of thousands of sockets on a
// single loop thread.
//
// Threading contract:
//   - run() executes on exactly one thread ("the loop thread"). Handlers,
//     timers, and posted operations all fire there; anything they touch
//     without synchronisation is loop-thread-local by construction.
//   - add()/mod()/del() wrap epoll_ctl(2), which is thread-safe, so worker
//     threads re-arm their own EPOLLONESHOT registrations directly on the
//     hot path without a loop hop.
//   - post() and wake() are safe from any thread; wake() is additionally
//     async-signal-safe (a single write(2) on the eventfd), which is what
//     lets a SIGTERM handler nudge the loop.
//
// The timer wheel is intrusive: a Timer is embedded in its owner and links
// itself into a slot's doubly-linked list, so arm/cancel are O(1) with no
// allocation, and destroying the owner after cancel() leaves no dangling
// reference behind.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace mcmm::serve {

/// Event-loop observability counters, exported through /metrics. Relaxed
/// atomics: the scrape needs eventual consistency only.
struct LoopCounters {
  std::atomic<std::uint64_t> open_connections{0};   ///< live sockets (gauge)
  std::atomic<std::uint64_t> wakeups_total{0};      ///< epoll_wait returns
  std::atomic<std::uint64_t> accepts_total{0};      ///< accept4 successes
  std::atomic<std::uint64_t> dispatches_total{0};   ///< ready-events handed off
  std::atomic<std::uint64_t> epollout_rearms_total{0};  ///< partial writes
  std::atomic<std::uint64_t> timer_evictions_total{0};  ///< wheel-expired conns
};

/// Plain snapshot of LoopCounters for metrics rendering.
struct LoopStats {
  std::uint64_t open_connections{0};
  std::uint64_t wakeups_total{0};
  std::uint64_t accepts_total{0};
  std::uint64_t dispatches_total{0};
  std::uint64_t epollout_rearms_total{0};
  std::uint64_t timer_evictions_total{0};
};

[[nodiscard]] LoopStats snapshot(const LoopCounters& c) noexcept;

/// Receives readiness events for one registered fd.
class EpollHandler {
 public:
  virtual void on_io(std::uint32_t events) = 0;

 protected:
  ~EpollHandler() = default;
};

class TimerWheel;

/// Intrusive timer-wheel node. Embed one per deadline; arm via
/// TimerWheel::arm(). `on_timer` fires on the loop thread. An armed timer
/// MUST be cancelled before its owner is destroyed.
class Timer {
 public:
  Timer() = default;
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  [[nodiscard]] bool armed() const noexcept { return prev_ != nullptr; }

  std::function<void()> on_fire;  ///< set once by the owner before arming

 private:
  friend class TimerWheel;
  Timer* prev_{nullptr};
  Timer* next_{nullptr};
  std::int64_t deadline_ms_{0};
};

/// Hashed wheel of intrusive timers: kSlots buckets of kTickMs each. A
/// deadline beyond the horizon simply re-enters the wheel when its slot
/// comes around (the fire check compares against the real deadline), so
/// arbitrary delays are handled without a rounds counter on the hot path.
class TimerWheel {
 public:
  static constexpr int kTickMs = 10;
  static constexpr std::size_t kSlots = 1024;  // power of two; ~10s horizon

  TimerWheel();
  ~TimerWheel();

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// (Re-)arms `t` to fire at now_ms + delay_ms (min one tick). Loop
  /// thread only.
  void arm(Timer& t, std::int64_t now_ms, std::int64_t delay_ms) noexcept;
  /// Unlinks `t` if armed; idempotent. Loop thread only.
  void cancel(Timer& t) noexcept;
  /// Fires every timer whose deadline has passed. Loop thread only.
  void advance(std::int64_t now_ms);

  [[nodiscard]] std::size_t armed_count() const noexcept { return armed_; }

 private:
  struct Slot {
    Timer sentinel;  // circular list head; sentinel.prev_ == nullptr never
  };

  void unlink(Timer& t) noexcept;
  void link(std::size_t slot, Timer& t) noexcept;

  std::vector<Slot> slots_;
  std::int64_t last_tick_{0};
  std::size_t armed_{0};
};

/// The epoll loop. One instance per listener; run() is the loop thread.
class EventLoop {
 public:
  explicit EventLoop(LoopCounters* counters);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // epoll_ctl wrappers; safe from any thread. `events` is the EPOLL* mask.
  void add(int fd, EpollHandler* handler, std::uint32_t events) noexcept;
  void mod(int fd, EpollHandler* handler, std::uint32_t events) noexcept;
  void del(int fd) noexcept;

  /// Enqueues `fn` to run on the loop thread and wakes it. Any thread.
  void post(std::function<void()> fn);
  /// Wakes the loop without queueing work. Async-signal-safe.
  void wake() noexcept;

  /// Runs until `should_exit()` returns true (checked once per iteration,
  /// after IO, posted ops, and timers have been processed).
  void run(const std::function<bool()>& should_exit);

  /// Monotonic milliseconds, cached once per loop iteration.
  [[nodiscard]] std::int64_t now_ms() const noexcept { return now_ms_; }
  /// Fresh monotonic milliseconds (any thread).
  [[nodiscard]] static std::int64_t steady_ms() noexcept;

  [[nodiscard]] TimerWheel& wheel() noexcept { return wheel_; }
  [[nodiscard]] LoopCounters& counters() noexcept { return *counters_; }

 private:
  void drain_ops();

  int epoll_fd_{-1};
  int wake_fd_{-1};
  LoopCounters* counters_;
  TimerWheel wheel_;
  std::int64_t now_ms_{0};

  std::mutex ops_mu_;
  std::vector<std::function<void()>> ops_;
};

}  // namespace mcmm::serve
